// Unit tests: base schedule (stake-weighted permutation), LeaderSwapTable
// (bad/good selection, deterministic ties) and ScheduleHistory (epoch
// resolution, retroactive lookups).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "hammerhead/core/schedule.h"

namespace hammerhead::core {
namespace {

crypto::Committee equal(std::size_t n) {
  return crypto::Committee::make_equal_stake(n, 1);
}

ReputationScores scores_of(const std::vector<std::int64_t>& points) {
  ReputationScores s(points.size());
  for (std::size_t i = 0; i < points.size(); ++i)
    s.add(static_cast<ValidatorIndex>(i), points[i]);
  return s;
}

// ----------------------------------------------------------- base schedule

TEST(BaseSchedule, EqualStakeHasOneSlotEach) {
  const auto committee = equal(7);
  const BaseSchedule base = BaseSchedule::make(committee, 3);
  EXPECT_EQ(base.num_slots(), 7u);
  std::set<ValidatorIndex> seen(base.slots().begin(), base.slots().end());
  EXPECT_EQ(seen.size(), 7u);
}

TEST(BaseSchedule, StakeWeightedSlotsAreProportional) {
  const auto committee = crypto::Committee::make_with_stakes({1, 2, 3, 4}, 1);
  const BaseSchedule base = BaseSchedule::make(committee, 3);
  EXPECT_EQ(base.num_slots(), 10u);
  std::map<ValidatorIndex, int> count;
  for (auto v : base.slots()) count[v]++;
  EXPECT_EQ(count[0], 1);
  EXPECT_EQ(count[1], 2);
  EXPECT_EQ(count[2], 3);
  EXPECT_EQ(count[3], 4);
}

TEST(BaseSchedule, StakesNormalizedByGcd) {
  const auto committee =
      crypto::Committee::make_with_stakes({100, 200, 300, 400}, 1);
  const BaseSchedule base = BaseSchedule::make(committee, 3);
  EXPECT_EQ(base.num_slots(), 10u);  // same as 1,2,3,4
}

TEST(BaseSchedule, SameSeedSamePermutation) {
  const auto committee = equal(10);
  EXPECT_EQ(BaseSchedule::make(committee, 5).slots(),
            BaseSchedule::make(committee, 5).slots());
  EXPECT_NE(BaseSchedule::make(committee, 5).slots(),
            BaseSchedule::make(committee, 6).slots());
}

TEST(BaseSchedule, SlotWrapsAround) {
  const auto committee = equal(4);
  const BaseSchedule base = BaseSchedule::make(committee, 1);
  EXPECT_EQ(base.slot(0), base.slot(4));
  EXPECT_EQ(base.slot(3), base.slot(7));
}

// ------------------------------------------------------------- swap table

TEST(SwapTable, IdentityByDefault) {
  LeaderSwapTable t;
  EXPECT_TRUE(t.is_identity());
  EXPECT_EQ(t.apply(3, 10), 3u);
}

TEST(SwapTable, SelectsWorstAndBest) {
  const auto committee = equal(10);  // f = 3
  // Validators 7,8,9 performed worst; 0,1,2 best.
  const auto s = scores_of({30, 29, 28, 20, 20, 20, 20, 2, 1, 0});
  const LeaderSwapTable t =
      LeaderSwapTable::from_scores(committee, s, 1.0 / 3.0);
  EXPECT_EQ(t.bad(), (std::vector<ValidatorIndex>{7, 8, 9}));
  EXPECT_EQ(t.good(), (std::vector<ValidatorIndex>{0, 1, 2}));
}

TEST(SwapTable, BadLeadersAreReplacedByGood) {
  const auto committee = equal(10);
  const auto s = scores_of({30, 29, 28, 20, 20, 20, 20, 2, 1, 0});
  const LeaderSwapTable t =
      LeaderSwapTable::from_scores(committee, s, 1.0 / 3.0);
  for (Round r = 0; r < 40; r += 2) {
    for (ValidatorIndex bad : t.bad()) {
      const ValidatorIndex repl = t.apply(bad, r);
      EXPECT_NE(repl, bad);
      EXPECT_TRUE(std::find(t.good().begin(), t.good().end(), repl) !=
                  t.good().end());
    }
  }
  // Non-bad leaders stay.
  EXPECT_EQ(t.apply(4, 2), 4u);
}

TEST(SwapTable, ReplacementRotatesThroughGoodSet) {
  const auto committee = equal(10);
  const auto s = scores_of({30, 29, 28, 20, 20, 20, 20, 2, 1, 0});
  const LeaderSwapTable t =
      LeaderSwapTable::from_scores(committee, s, 1.0 / 3.0);
  std::set<ValidatorIndex> used;
  for (Round r = 0; r < 6; r += 2) used.insert(t.apply(9, r));
  EXPECT_EQ(used.size(), 3u);  // all three good validators get slots
}

TEST(SwapTable, TiesResolveDeterministicallyByIndex) {
  const auto committee = equal(10);
  const auto s = scores_of({5, 5, 5, 5, 5, 5, 5, 5, 5, 5});  // all tied
  const LeaderSwapTable t =
      LeaderSwapTable::from_scores(committee, s, 1.0 / 3.0);
  // Worst-to-best tie-break by index: bad = {0,1,2}; good = best three
  // among the rest = {3,4,5}.
  EXPECT_EQ(t.bad(), (std::vector<ValidatorIndex>{0, 1, 2}));
  EXPECT_EQ(t.good(), (std::vector<ValidatorIndex>{3, 4, 5}));
}

TEST(SwapTable, ExcludeFractionCappedAtFaultBound) {
  const auto committee = equal(10);  // f = 3
  const auto s = scores_of({9, 8, 7, 6, 5, 4, 3, 2, 1, 0});
  // Asking for 90% exclusion must still evict at most f validators.
  const LeaderSwapTable t = LeaderSwapTable::from_scores(committee, s, 0.9);
  EXPECT_EQ(t.bad().size(), 3u);
}

TEST(SwapTable, SmallerExclusionFraction) {
  const auto committee = equal(10);
  const auto s = scores_of({9, 8, 7, 6, 5, 4, 3, 2, 1, 0});
  // Sui mainnet style: 20% => 2 validators.
  const LeaderSwapTable t = LeaderSwapTable::from_scores(committee, s, 0.2);
  EXPECT_EQ(t.bad(), (std::vector<ValidatorIndex>{8, 9}));
  EXPECT_EQ(t.good().size(), 2u);
}

TEST(SwapTable, ZeroFractionIsIdentity) {
  const auto committee = equal(10);
  const auto s = scores_of({9, 8, 7, 6, 5, 4, 3, 2, 1, 0});
  EXPECT_TRUE(LeaderSwapTable::from_scores(committee, s, 0.0).is_identity());
}

TEST(SwapTable, WeightedStakeBudgetIsPrefixOfWorst) {
  // total = 100, f = 33. B must be a *prefix* of the worst-to-best ranking
  // ("the validators with the lowest reputation scores"): if the worst
  // scorer's stake alone exceeds the budget, nobody is evicted — we never
  // skip past a worse validator to evict a better one.
  const auto committee =
      crypto::Committee::make_with_stakes({40, 30, 20, 10}, 1);
  const auto s = scores_of({0, 10, 20, 30});
  const LeaderSwapTable over =
      LeaderSwapTable::from_scores(committee, s, 1.0 / 3.0);
  EXPECT_TRUE(over.is_identity());

  // With v3 (stake 10) worst, it fits the 33-stake budget and is evicted;
  // v2 (stake 20) also fits (10 + 20 <= 33); v1 (30) would overflow.
  const auto s2 = scores_of({30, 20, 10, 0});
  const LeaderSwapTable t =
      LeaderSwapTable::from_scores(committee, s2, 1.0 / 3.0);
  EXPECT_EQ(t.bad(), (std::vector<ValidatorIndex>{2, 3}));
}

TEST(SwapTable, GoodAndBadAreDisjoint) {
  const auto committee = equal(10);
  for (int variant = 0; variant < 5; ++variant) {
    std::vector<std::int64_t> pts(10, variant);  // heavy ties
    const LeaderSwapTable t = LeaderSwapTable::from_scores(
        committee, scores_of(pts), 1.0 / 3.0);
    for (ValidatorIndex b : t.bad())
      EXPECT_TRUE(std::find(t.good().begin(), t.good().end(), b) ==
                  t.good().end());
  }
}

// --------------------------------------------------------- schedule history

TEST(History, StartsWithIdentityEpochAtRoundZero) {
  const auto committee = equal(4);
  ScheduleHistory h(BaseSchedule::make(committee, 1));
  EXPECT_EQ(h.num_epochs(), 1u);
  EXPECT_EQ(h.current().initial_round, 0u);
  EXPECT_TRUE(h.current().table.is_identity());
}

TEST(History, LeaderUsesAnchorSlot) {
  const auto committee = equal(4);
  const BaseSchedule base = BaseSchedule::make(committee, 1);
  ScheduleHistory h(base);
  // Rounds 2k and 2k+1 share the same slot (anchors live at even rounds).
  EXPECT_EQ(h.leader(0), base.slot(0));
  EXPECT_EQ(h.leader(1), base.slot(0));
  EXPECT_EQ(h.leader(2), base.slot(1));
  EXPECT_EQ(h.leader(9), base.slot(4));
}

TEST(History, EpochResolutionByRound) {
  const auto committee = equal(10);
  ScheduleHistory h(BaseSchedule::make(committee, 1));
  const auto s = scores_of({9, 8, 7, 6, 5, 4, 3, 2, 1, 0});
  h.push_epoch(20, LeaderSwapTable::from_scores(committee, s, 1.0 / 3.0));

  EXPECT_EQ(h.epoch_for(0).epoch_index, 0u);
  EXPECT_EQ(h.epoch_for(19).epoch_index, 0u);
  EXPECT_EQ(h.epoch_for(20).epoch_index, 1u);
  EXPECT_EQ(h.epoch_for(1000).epoch_index, 1u);
}

TEST(History, RetroactiveLookupUsesOldEpoch) {
  // A validator that catches up late must resolve old rounds under the old
  // schedule (Section 3.1 retroactive application).
  const auto committee = equal(10);
  const BaseSchedule base = BaseSchedule::make(committee, 1);
  ScheduleHistory h(base);
  const std::vector<ValidatorIndex> before{h.leader(0), h.leader(2),
                                           h.leader(4)};
  const auto s = scores_of({9, 8, 7, 6, 5, 4, 3, 2, 1, 0});
  h.push_epoch(6, LeaderSwapTable::from_scores(committee, s, 1.0 / 3.0));
  EXPECT_EQ(h.leader(0), before[0]);
  EXPECT_EQ(h.leader(2), before[1]);
  EXPECT_EQ(h.leader(4), before[2]);
}

TEST(History, PushEpochRejectsRegression) {
  const auto committee = equal(4);
  ScheduleHistory h(BaseSchedule::make(committee, 1));
  h.push_epoch(10, LeaderSwapTable{});
  EXPECT_THROW(h.push_epoch(5, LeaderSwapTable{}), InvariantViolation);
}

TEST(History, EpochIndicesIncrement) {
  const auto committee = equal(4);
  ScheduleHistory h(BaseSchedule::make(committee, 1));
  h.push_epoch(10, LeaderSwapTable{});
  h.push_epoch(10, LeaderSwapTable{});  // same round allowed
  h.push_epoch(14, LeaderSwapTable{});
  EXPECT_EQ(h.current().epoch_index, 3u);
  EXPECT_EQ(h.num_epochs(), 4u);
}

TEST(History, SwappedLeaderVisibleAfterEpochStart) {
  const auto committee = equal(10);
  const BaseSchedule base = BaseSchedule::make(committee, 1);
  ScheduleHistory h(base);
  // Make every validator "bad" except three: find a round whose base leader
  // is evicted and check the change is visible only from the epoch start.
  const auto s = scores_of({9, 8, 7, 6, 5, 4, 3, 2, 1, 0});
  const LeaderSwapTable table =
      LeaderSwapTable::from_scores(committee, s, 1.0 / 3.0);
  h.push_epoch(50, table);
  bool any_swapped = false;
  for (Round r = 50; r < 70; r += 2) {
    if (h.leader(r) != base.slot(anchor_slot(r))) any_swapped = true;
    // Whatever the leader is, it is never a bad validator.
    for (ValidatorIndex bad : table.bad()) EXPECT_NE(h.leader(r), bad);
  }
  EXPECT_TRUE(any_swapped);
}

}  // namespace
}  // namespace hammerhead::core

// DAG pruning interacting with commit state: prune_below +
// prune_ordered_below followed by a snapshot/install round-trip must
// preserve the total order — the rebuilt instance continues the commit
// sequence exactly where the original left off — and must rebuild an
// identical incremental index from the retained certificates (the
// state-sync and recovery paths rely on both properties).
#include <gtest/gtest.h>

#include <memory>

#include "hammerhead/consensus/committer.h"
#include "hammerhead/core/policies.h"
#include "test_util.h"

namespace hammerhead::consensus {
namespace {

using test::DagBuilder;

struct Pipeline {
  Pipeline(const DagBuilder& b, std::unique_ptr<core::LeaderSchedulePolicy> p)
      : dag(b.committee()), policy(std::move(p)) {
    committer = std::make_unique<BullsharkCommitter>(
        b.committee(), dag, *policy,
        [this](const CommittedSubDag& sd) {
          for (const auto& v : sd.vertices) delivered.push_back(v->digest());
        });
  }

  void feed(const std::vector<dag::CertPtr>& certs) {
    for (const auto& cert : certs)
      if (dag.insert(cert)) committer->on_cert_inserted(cert);
  }

  dag::Dag dag;
  std::unique_ptr<core::LeaderSchedulePolicy> policy;
  std::unique_ptr<BullsharkCommitter> committer;
  std::vector<Digest> delivered;
};

/// Full round r certificates referencing all of `prev`.
std::vector<dag::CertPtr> full_round(DagBuilder& b, Round r,
                                     const std::vector<Digest>& prev) {
  std::vector<dag::CertPtr> certs;
  for (ValidatorIndex a = 0; a < b.committee().size(); ++a)
    certs.push_back(b.make_cert(r, a, prev));
  return certs;
}

void expect_identical_indices(const dag::Dag& a, const dag::Dag& be,
                              Round floor, Round top) {
  EXPECT_EQ(a.index().entries(), be.index().entries());
  EXPECT_EQ(a.index().bitmap_words(), be.index().bitmap_words());
  EXPECT_EQ(a.index().supported_rounds(), be.index().supported_rounds());
  for (Round r = floor; r <= top; ++r) {
    for (const auto& cert : a.round_certs(r)) {
      ASSERT_TRUE(be.contains(cert->digest()));
      ASSERT_EQ(a.direct_support(*cert), be.direct_support(*cert));
      ASSERT_EQ(be.direct_support(*cert), be.direct_support_scan(*cert));
    }
  }
  // Path answers agree between the original and rebuilt index (and with the
  // scan) for walks from the top round down to the floor.
  for (const auto& from : a.round_certs(top)) {
    for (Round r = floor; r < top; ++r) {
      for (const auto& to : a.round_certs(r)) {
        ASSERT_EQ(a.has_path(*from, *to), be.has_path(*from, *to));
        ASSERT_EQ(be.has_path(*from, *to), be.has_path_scan(*from, *to));
      }
    }
  }
}

void run_round_trip(bool hammerhead) {
  DagBuilder b(4);
  auto make_policy = [&]() -> std::unique_ptr<core::LeaderSchedulePolicy> {
    if (hammerhead) {
      core::HammerHeadConfig cfg;
      cfg.cadence = core::ScheduleCadence::commits(3);
      return std::make_unique<core::HammerHeadPolicy>(b.committee(), 1, cfg);
    }
    return std::make_unique<core::RoundRobinPolicy>(b.committee(), 1);
  };

  // Original pipeline: 21 full rounds, then GC below round 10.
  Pipeline a(b, make_policy());
  std::vector<Digest> prev;
  std::vector<dag::CertPtr> history;
  for (Round r = 0; r <= 20; ++r) {
    auto certs = full_round(b, r, prev);
    a.feed(certs);
    prev = DagBuilder::digests_of(certs);
    history.insert(history.end(), certs.begin(), certs.end());
  }
  ASSERT_GE(a.committer->last_anchor_round(), 16);
  const Round floor = 10;
  a.dag.prune_below(floor);
  a.committer->prune_ordered_below(floor);
  EXPECT_FALSE(a.committer->is_ordered(history.front()->digest()));

  // Snapshot/install round-trip into a fresh pipeline, state-sync style:
  // set the gc floor, replay the retained certificates, install the
  // positioning (and, for stateful policies, the schedule state).
  const CommitterSnapshot snap = a.committer->snapshot(floor);
  Pipeline bb(b, make_policy());
  bb.policy->install_snapshot(a.policy->snapshot());
  bb.dag.prune_below(floor);
  bb.committer->install_snapshot(snap);
  for (const auto& cert : history)
    if (cert->round() >= floor) bb.dag.insert(cert);
  bb.committer->process();

  // Nothing above the installed horizon can commit yet: the rebuilt
  // instance must not re-deliver anything the snapshot already covered.
  EXPECT_TRUE(bb.delivered.empty());
  EXPECT_EQ(bb.committer->commit_index(), a.committer->commit_index());
  EXPECT_EQ(bb.committer->last_anchor_round(),
            a.committer->last_anchor_round());

  // Continue both pipelines with identical rounds; they must deliver the
  // same sub-DAGs in the same order.
  const std::size_t baseline = a.delivered.size();
  for (Round r = 21; r <= 26; ++r) {
    auto certs = full_round(b, r, prev);
    a.feed(certs);
    bb.feed(certs);
    prev = DagBuilder::digests_of(certs);
  }
  ASSERT_GT(a.delivered.size(), baseline);
  const std::vector<Digest> tail(a.delivered.begin() +
                                     static_cast<std::ptrdiff_t>(baseline),
                                 a.delivered.end());
  EXPECT_EQ(bb.delivered, tail);
  EXPECT_EQ(bb.committer->commit_index(), a.committer->commit_index());
  EXPECT_EQ(bb.committer->last_anchor_round(),
            a.committer->last_anchor_round());

  // The replayed instance rebuilt the exact same index.
  expect_identical_indices(a.dag, bb.dag, floor, 26);
}

TEST(PruneSnapshot, RoundTripPreservesOrderAndIndex_RoundRobin) {
  run_round_trip(/*hammerhead=*/false);
}

TEST(PruneSnapshot, RoundTripPreservesOrderAndIndex_HammerHead) {
  run_round_trip(/*hammerhead=*/true);
}

}  // namespace
}  // namespace hammerhead::consensus

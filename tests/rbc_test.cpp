// Unit tests: Bracha reliable broadcast against Definition 1 of the paper
// (Agreement, Integrity, Validity) including an equivocating origin.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "hammerhead/rbc/bracha.h"

namespace hammerhead::rbc {
namespace {

struct DeliveryRecord {
  Payload payload;
  Round round;
  ValidatorIndex origin;
};

struct RbcFixture {
  explicit RbcFixture(std::size_t n, net::NetConfig cfg = {})
      : sim(5),
        committee(crypto::Committee::make_equal_stake(n, 5)),
        net(sim,
            std::make_unique<net::UniformLatencyModel>(millis(5), millis(20)),
            cfg, n),
        delivered(n) {
    for (ValidatorIndex v = 0; v < n; ++v) {
      nodes.push_back(std::make_unique<BrachaBroadcaster>(
          net, committee, v,
          [this, v](const Payload& p, Round r, ValidatorIndex origin) {
            delivered[v].push_back({p, r, origin});
          }));
    }
  }

  sim::Simulator sim;
  crypto::Committee committee;
  net::Network net;
  std::vector<std::unique_ptr<BrachaBroadcaster>> nodes;
  std::vector<std::vector<DeliveryRecord>> delivered;
};

Payload payload_of(const std::string& s) {
  return Payload(s.begin(), s.end());
}

TEST(Rbc, ValidityEveryHonestPartyDelivers) {
  RbcFixture f(4);
  f.nodes[0]->r_bcast(payload_of("hello"), 1);
  f.sim.run_to_completion();
  for (ValidatorIndex v = 0; v < 4; ++v) {
    ASSERT_EQ(f.delivered[v].size(), 1u) << "node " << v;
    EXPECT_EQ(f.delivered[v][0].payload, payload_of("hello"));
    EXPECT_EQ(f.delivered[v][0].round, 1u);
    EXPECT_EQ(f.delivered[v][0].origin, 0u);
  }
}

TEST(Rbc, IntegrityAtMostOneDeliveryPerSlot) {
  RbcFixture f(4);
  // The origin "re-broadcasts" the same slot; only one delivery may happen.
  f.nodes[1]->r_bcast(payload_of("x"), 3);
  f.sim.run_until(seconds(5));
  f.nodes[1]->r_bcast(payload_of("x"), 3);
  f.sim.run_to_completion();
  for (ValidatorIndex v = 0; v < 4; ++v)
    EXPECT_EQ(f.delivered[v].size(), 1u) << "node " << v;
}

TEST(Rbc, DistinctRoundsAreDistinctSlots) {
  RbcFixture f(4);
  f.nodes[0]->r_bcast(payload_of("a"), 1);
  f.nodes[0]->r_bcast(payload_of("b"), 2);
  f.sim.run_to_completion();
  for (ValidatorIndex v = 0; v < 4; ++v)
    EXPECT_EQ(f.delivered[v].size(), 2u);
}

TEST(Rbc, ConcurrentBroadcastersAllDeliver) {
  RbcFixture f(7);
  for (ValidatorIndex v = 0; v < 7; ++v)
    f.nodes[v]->r_bcast(payload_of("m" + std::to_string(v)), 1);
  f.sim.run_to_completion();
  for (ValidatorIndex v = 0; v < 7; ++v)
    EXPECT_EQ(f.delivered[v].size(), 7u) << "node " << v;
}

TEST(Rbc, ToleratesOneCrashedReceiver) {
  RbcFixture f(4);
  f.net.crash(3);
  f.nodes[0]->r_bcast(payload_of("m"), 1);
  f.sim.run_to_completion();
  for (ValidatorIndex v = 0; v < 3; ++v)
    EXPECT_EQ(f.delivered[v].size(), 1u);
  EXPECT_TRUE(f.delivered[3].empty());
}

TEST(Rbc, ToleratesFSilentParties) {
  // n = 10, f = 3 silent (crashed): remaining 7 = 2f+1 still deliver.
  RbcFixture f(10);
  for (ValidatorIndex v = 7; v < 10; ++v) f.net.crash(v);
  f.nodes[0]->r_bcast(payload_of("m"), 1);
  f.sim.run_to_completion();
  for (ValidatorIndex v = 0; v < 7; ++v)
    EXPECT_EQ(f.delivered[v].size(), 1u) << "node " << v;
}

TEST(Rbc, AgreementUnderEquivocatingOrigin) {
  // A Byzantine origin hand-crafts conflicting SEND messages to two halves.
  // Definition 1 Agreement: if any honest party delivers (m, r, origin),
  // every honest party delivers the same m.
  RbcFixture f(4);
  auto send_a = std::make_shared<RbcMessage>();
  send_a->phase = RbcPhase::Send;
  send_a->origin = 3;
  send_a->round = 1;
  send_a->payload = payload_of("AAA");
  auto send_b = std::make_shared<RbcMessage>();
  send_b->phase = RbcPhase::Send;
  send_b->origin = 3;
  send_b->round = 1;
  send_b->payload = payload_of("BBB");
  // Byzantine node 3 sends A to {0,1} and B to {2}.
  f.net.send(3, 0, send_a);
  f.net.send(3, 1, send_a);
  f.net.send(3, 2, send_b);
  f.sim.run_to_completion();

  std::map<std::string, int> delivered_payloads;
  for (ValidatorIndex v = 0; v < 3; ++v) {
    for (const auto& d : f.delivered[v]) {
      delivered_payloads[std::string(d.payload.begin(), d.payload.end())]++;
    }
  }
  // At most one payload value may ever be delivered; if delivered, all three
  // honest parties deliver it (eventually).
  EXPECT_LE(delivered_payloads.size(), 1u);
  for (const auto& [payload, count] : delivered_payloads)
    EXPECT_EQ(count, 3) << payload;
}

TEST(Rbc, SpoofedSendIsIgnored) {
  // Node 2 forges a SEND claiming origin 0; authenticated channels reject it
  // (the transport knows the real sender).
  RbcFixture f(4);
  auto spoof = std::make_shared<RbcMessage>();
  spoof->phase = RbcPhase::Send;
  spoof->origin = 0;
  spoof->round = 1;
  spoof->payload = payload_of("forged");
  f.net.send(2, 1, spoof);
  f.sim.run_to_completion();
  for (ValidatorIndex v = 0; v < 4; ++v) EXPECT_TRUE(f.delivered[v].empty());
}

TEST(Rbc, DeliversDespitePartitionAfterHeal) {
  RbcFixture f(4);
  f.net.partition({0, 1});
  f.nodes[0]->r_bcast(payload_of("m"), 1);
  f.sim.run_until(seconds(30));
  // {0,1} alone cannot reach the 2f+1 = 3 ready threshold.
  EXPECT_TRUE(f.delivered[0].empty());
  f.net.heal();
  f.sim.run_to_completion();
  for (ValidatorIndex v = 0; v < 4; ++v)
    EXPECT_EQ(f.delivered[v].size(), 1u) << "node " << v;
}

TEST(Rbc, LargeCommitteeStress) {
  RbcFixture f(31);
  for (ValidatorIndex v = 0; v < 5; ++v)
    f.nodes[v]->r_bcast(payload_of("m" + std::to_string(v)), 1);
  f.sim.run_to_completion();
  for (ValidatorIndex v = 0; v < 31; ++v)
    EXPECT_EQ(f.delivered[v].size(), 5u) << "node " << v;
}

TEST(Rbc, DeliveredCountTracksSlots) {
  RbcFixture f(4);
  f.nodes[0]->r_bcast(payload_of("a"), 1);
  f.nodes[1]->r_bcast(payload_of("b"), 1);
  f.sim.run_to_completion();
  EXPECT_EQ(f.nodes[2]->delivered_count(), 2u);
}

}  // namespace
}  // namespace hammerhead::rbc

// Tests: the parallel sweep driver (grid expansion, seed derivation,
// jobs-count invariance) and the scenario library (partition windows sever
// delivery and heal, churned validators recover via state sync and commit
// again).
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>

#include "cluster_util.h"
#include "hammerhead/harness/sweep.h"

namespace hammerhead {
namespace {

using harness::ExperimentConfig;
using harness::ExperimentResult;
using harness::SweepCell;
using harness::SweepOptions;
using harness::SweepResult;
using harness::SweepSpec;

TEST(SeedDerivation, DependsOnlyOnInputs) {
  const std::uint64_t a = harness::derive_run_seed(1, 7, 0);
  EXPECT_EQ(a, harness::derive_run_seed(1, 7, 0));
  EXPECT_NE(a, harness::derive_run_seed(2, 7, 0));   // salt matters
  EXPECT_NE(a, harness::derive_run_seed(1, 8, 0));   // axis seed matters
  EXPECT_NE(a, harness::derive_run_seed(1, 7, 1));   // grid index matters
}

TEST(SeedDerivation, SplitmixReference) {
  // splitmix64(0) from the reference implementation (Steele et al.). The
  // single shared mixer (common/rng.h) also seeds the Rng and the key PRF.
  EXPECT_EQ(splitmix64(0), 0xE220A8397B1DCDAFULL);
}

SweepSpec small_spec() {
  SweepSpec spec;
  spec.name = "test";
  spec.base.num_validators = 4;
  spec.base.duration = seconds(8);
  spec.base.warmup = seconds(2);
  spec.base.load_tps = 300;
  spec.base.latency = harness::LatencyKind::Uniform;
  // Protocol-speed runs: no CPU model, tight round cadence.
  spec.base.node.model_cpu = false;
  spec.base.node.min_round_delay = millis(20);
  spec.base.node.leader_timeout = millis(300);
  spec.policies = {harness::PolicyKind::HammerHead,
                   harness::PolicyKind::RoundRobin};
  spec.committee_sizes = {4};
  spec.seeds = {1, 2};
  spec.scenarios = {harness::scenario_faultless(),
                    harness::scenario_partition()};
  return spec;
}

TEST(SweepExpansion, CartesianGridWithExtras) {
  SweepSpec spec = small_spec();
  ExperimentConfig extra = spec.base;
  extra.seed = 99;
  spec.extra.emplace_back("pinned", extra);

  const auto cells = harness::expand_sweep(spec);
  ASSERT_EQ(cells.size(), 2u * 1u * 2u * 2u + 1u);
  EXPECT_EQ(cells[0].label, "policy=hammerhead/n=4/fault=faultless/seed=1");
  EXPECT_EQ(cells[1].label, "policy=hammerhead/n=4/fault=faultless/seed=2");
  EXPECT_EQ(cells[2].label, "policy=hammerhead/n=4/fault=partition/seed=1");
  EXPECT_EQ(cells.back().label, "extra/pinned");
  // Explicit configs keep their own seed; grid cells derive theirs.
  EXPECT_EQ(cells.back().config.seed, 99u);
  EXPECT_EQ(cells[0].config.seed,
            harness::derive_run_seed(spec.seed_salt, 1, 0));
  EXPECT_NE(cells[0].config.seed, cells[1].config.seed);
  // Grid indices are assigned in expansion order.
  for (std::size_t i = 0; i < cells.size(); ++i)
    EXPECT_EQ(cells[i].grid_index, i);
  // The partition scenario materialized a window on those cells only.
  EXPECT_TRUE(cells[0].config.partitions.empty());
  ASSERT_EQ(cells[2].config.partitions.size(), 1u);
  EXPECT_TRUE(cells[2].config.partitions[0].symmetric);
}

TEST(SweepExpansion, DeriveSeedsOffUsesAxisVerbatim) {
  SweepSpec spec = small_spec();
  spec.derive_seeds = false;
  const auto cells = harness::expand_sweep(spec);
  EXPECT_EQ(cells[0].config.seed, 1u);
  EXPECT_EQ(cells[1].config.seed, 2u);
}

TEST(SweepDriver, ResultsBitIdenticalAcrossJobsCounts) {
  const SweepSpec spec = small_spec();

  SweepOptions serial;
  serial.jobs = 1;
  const SweepResult one = harness::run_sweep(spec, serial);

  SweepOptions parallel;
  parallel.jobs = 8;
  const SweepResult eight = harness::run_sweep(spec, parallel);

  ASSERT_EQ(one.results.size(), eight.results.size());
  ASSERT_EQ(one.cells.size(), eight.cells.size());
  for (std::size_t i = 0; i < one.results.size(); ++i) {
    EXPECT_EQ(one.cells[i].label, eight.cells[i].label);
    EXPECT_EQ(one.cells[i].config.seed, eight.cells[i].config.seed);
    EXPECT_EQ(harness::deterministic_signature(one.results[i]),
              harness::deterministic_signature(eight.results[i]))
        << "cell " << one.cells[i].label;
  }
  // The runs did real work and the aggregation grouped the seed axis away.
  for (const auto& r : one.results) EXPECT_GT(r.committed, 0u);
  ASSERT_EQ(one.groups.size(), 4u);  // 2 policies x 2 scenarios
  for (const auto& g : one.groups) {
    EXPECT_EQ(g.runs, 2u);
    EXPECT_GT(g.throughput_mean, 0.0);
    EXPECT_GE(g.throughput_stddev, 0.0);
  }
}

TEST(SweepDriver, IntraJobsComposeWithSweepJobsBitIdentically) {
  // The hardest scheduling mix: sweep worker threads each driving a
  // Simulator that runs ITS own sharded worker pool. Cell results must
  // match the fully serial (--jobs=1, intra_jobs=1) reference bit for bit,
  // trace hash included.
  SweepSpec spec = small_spec();
  spec.base.node.model_cpu = true;  // dispatch slotting needs the CPU model
  spec.base.exec_slot = 256;
  spec.base.intra_jobs = 1;

  SweepOptions serial;
  serial.jobs = 1;
  const SweepResult reference = harness::run_sweep(spec, serial);

  spec.base.intra_jobs = 4;
  SweepOptions parallel;
  parallel.jobs = 4;
  const SweepResult mixed = harness::run_sweep(spec, parallel);

  ASSERT_EQ(reference.results.size(), mixed.results.size());
  for (std::size_t i = 0; i < reference.results.size(); ++i) {
    EXPECT_EQ(harness::deterministic_signature(reference.results[i]),
              harness::deterministic_signature(mixed.results[i]))
        << "cell " << reference.cells[i].label;
    EXPECT_EQ(reference.results[i].trace_hash, mixed.results[i].trace_hash);
  }
  for (const auto& r : reference.results) EXPECT_GT(r.committed, 0u);
}

TEST(SweepExpansion, CellFilterDropsCellsButKeepsSeeds) {
  SweepSpec spec = small_spec();
  const auto full = expand_sweep(spec);
  spec.cell_filter = [](const SweepCell& cell) {
    return cell.scenario == "partition";
  };
  const auto filtered = expand_sweep(spec);
  ASSERT_EQ(full.size(), 8u);
  ASSERT_EQ(filtered.size(), 4u);
  // Kept cells carry the exact grid indices and derived seeds of the full
  // grid (quick-mode subsets stay comparable with full mode).
  std::size_t fi = 0;
  for (const auto& cell : full) {
    if (cell.scenario != "partition") continue;
    EXPECT_EQ(filtered[fi].label, cell.label);
    EXPECT_EQ(filtered[fi].grid_index, cell.grid_index);
    EXPECT_EQ(filtered[fi].config.seed, cell.config.seed);
    ++fi;
  }
  EXPECT_EQ(fi, filtered.size());
}

TEST(SweepScenario, SlowValidatorsWindowSlowsTopMinority) {
  SweepSpec spec = small_spec();
  ExperimentConfig cfg = spec.base;
  cfg.num_validators = 10;
  harness::scenario_slow_validators(6.0, 0.25, 0.75).apply(cfg);
  ASSERT_EQ(cfg.slow_windows.size(), 1u);
  const auto& w = cfg.slow_windows[0];
  EXPECT_EQ(w.factor, 6.0);
  EXPECT_EQ(w.nodes, (std::vector<ValidatorIndex>{9, 8, 7}));
  EXPECT_EQ(w.from, cfg.duration / 4);
  EXPECT_EQ(w.to, cfg.duration * 3 / 4);
  EXPECT_LT(w.from, w.to);
}

TEST(SweepDriver, BadCellIsContainedNotFatal) {
  SweepSpec spec = small_spec();
  spec.policies = {harness::PolicyKind::HammerHead};
  spec.seeds = {1};
  spec.scenarios = {harness::scenario_faultless()};
  ExperimentConfig bad = spec.base;
  bad.num_validators = 2;  // violates the n >= 4 invariant
  spec.extra.emplace_back("bad", bad);
  SweepOptions options;
  options.jobs = 2;
  const SweepResult sweep = harness::run_sweep(spec, options);
  ASSERT_EQ(sweep.errors.size(), 1u);
  EXPECT_NE(sweep.errors[0].find("extra/bad"), std::string::npos);
  ASSERT_EQ(sweep.failed_cells.size(), 1u);
  EXPECT_EQ(sweep.failed_cells[0], 1u);
  // The healthy cell still ran to completion.
  EXPECT_GT(sweep.results[0].committed, 0u);
  EXPECT_EQ(sweep.results[1].committed, 0u);  // default-constructed
  // The failed cell's all-zero result must not poison the aggregates or
  // the JSON the CI gate diffs.
  ASSERT_EQ(sweep.groups.size(), 1u);  // bad extra's group dropped
  EXPECT_GT(sweep.groups[0].throughput_mean, 0.0);
  const std::string path =
      harness::write_sweep_json(sweep, ::testing::TempDir());
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str().find("extra/bad"), std::string::npos);
  EXPECT_NE(ss.str().find("\"failed_cells\": 1"), std::string::npos);
}

TEST(SweepDriver, OnCellReportsEveryCell) {
  SweepSpec spec = small_spec();
  spec.seeds = {1};
  SweepOptions options;
  options.jobs = 4;
  std::vector<std::string> seen;
  options.on_cell = [&seen](const SweepCell& cell, const ExperimentResult&) {
    seen.push_back(cell.label);  // serialized by the driver's mutex
  };
  const SweepResult sweep = harness::run_sweep(spec, options);
  EXPECT_EQ(seen.size(), sweep.cells.size());
}

TEST(SweepDriver, WritesJsonArtifact) {
  SweepSpec spec = small_spec();
  spec.seeds = {1};
  spec.scenarios = {harness::scenario_faultless()};
  SweepOptions options;
  options.jobs = 2;
  const SweepResult sweep = harness::run_sweep(spec, options);
  const std::string path =
      harness::write_sweep_json(sweep, ::testing::TempDir());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string body = ss.str();
  EXPECT_NE(body.find("\"bench\": \"sweep_test\""), std::string::npos);
  EXPECT_NE(body.find("policy=hammerhead/n=4/fault=faultless/seed=1"),
            std::string::npos);
  EXPECT_NE(body.find("agg/policy=hammerhead/n=4/fault=faultless"),
            std::string::npos);
  EXPECT_NE(body.find("throughput_mean"), std::string::npos);
}

// --- partition windows ------------------------------------------------------

/// A symmetric cut on a live cluster stops the isolated node's commit stream
/// cold (both directions severed), and healing lets it catch back up.
TEST(PartitionWindow, SeversBothWaysAndHeals) {
  test::ClusterOptions options;
  options.n = 4;
  options.seed = 7;
  options.node = test::fast_node_config();
  test::Cluster cluster(options);
  cluster.start();
  cluster.run_for(seconds(2));
  ASSERT_GT(cluster.delivered(0).size(), 0u);

  cluster.network().cut_links({0}, {1, 2, 3}, /*symmetric=*/true);
  // Grace period: arrivals already in flight at cut time still land.
  cluster.run_for(millis(200));
  const std::size_t frozen = cluster.delivered(0).size();
  const std::size_t others = cluster.delivered(1).size();
  cluster.run_for(seconds(3));
  // Nothing more reached the isolated node; the 2f+1 majority kept going.
  EXPECT_EQ(cluster.delivered(0).size(), frozen);
  EXPECT_GT(cluster.delivered(1).size(), others);
  EXPECT_GT(cluster.network().stats().messages_held, 0u);

  cluster.network().restore_links({0}, {1, 2, 3}, /*symmetric=*/true);
  cluster.run_for(seconds(3));
  EXPECT_GT(cluster.delivered(0).size(), frozen);
  std::string details;
  EXPECT_TRUE(cluster.total_order_holds(&details)) << details;
}

/// Asymmetric cut: the minority still hears the majority (its DAG grows)
/// but its own traffic is severed until the link is restored.
TEST(PartitionWindow, AsymmetricCutSeversOneDirection) {
  test::ClusterOptions options;
  options.n = 4;
  options.seed = 11;
  options.node = test::fast_node_config();
  test::Cluster cluster(options);
  cluster.start();
  cluster.run_for(seconds(2));

  // Cut only 3 -> {0,1,2}: node 3 goes mute but keeps listening.
  cluster.network().cut_links({3}, {0, 1, 2}, /*symmetric=*/false);
  EXPECT_TRUE(cluster.network().link_blocked(3, 0));
  EXPECT_FALSE(cluster.network().link_blocked(0, 3));
  cluster.run_for(millis(200));
  const std::size_t mute_delivered = cluster.delivered(3).size();
  cluster.run_for(seconds(3));
  // The mute node still receives the majority's commits...
  EXPECT_GT(cluster.delivered(3).size(), mute_delivered);
  // ...while its own held traffic waits behind the one-way cut.
  EXPECT_GT(cluster.network().stats().messages_held, 0u);

  cluster.network().restore_links({3}, {0, 1, 2}, /*symmetric=*/false);
  EXPECT_EQ(cluster.network().links_cut(), 0u);
  cluster.run_for(seconds(2));
  std::string details;
  EXPECT_TRUE(cluster.total_order_holds(&details)) << details;
}

/// Overlapping cuts compose: a link stays blocked until every window
/// covering it is restored.
TEST(PartitionWindow, OverlappingCutsAreRefCounted) {
  sim::Simulator sim(1);
  net::Network network(sim,
                       std::make_unique<net::UniformLatencyModel>(
                           millis(1), millis(2)),
                       net::NetConfig{}, 4);
  network.cut_links({0}, {1});
  network.cut_links({0}, {1, 2});
  EXPECT_TRUE(network.link_blocked(0, 1));
  network.restore_links({0}, {1});
  EXPECT_TRUE(network.link_blocked(0, 1));  // second window still active
  EXPECT_TRUE(network.link_blocked(2, 0));  // symmetric default
  network.restore_links({0}, {1, 2});
  EXPECT_FALSE(network.link_blocked(0, 1));
  EXPECT_EQ(network.links_cut(), 0u);
}

/// End-to-end: a PartitionWindow in the ExperimentConfig holds traffic and
/// the committee commits through and after the window.
TEST(PartitionWindow, ExperimentConfigWindowHealsAndCommits) {
  ExperimentConfig cfg;
  cfg.num_validators = 4;
  cfg.seed = 5;
  cfg.duration = seconds(10);
  cfg.warmup = seconds(2);
  cfg.load_tps = 300;
  harness::PartitionWindow w;
  w.side_a = {3};
  w.from = seconds(3);
  w.until = seconds(5);
  cfg.partitions.push_back(w);
  const ExperimentResult r = harness::run_experiment(cfg);
  EXPECT_GT(r.messages_held, 0u);
  EXPECT_GT(r.committed, 0u);
  EXPECT_GT(r.throughput_tps, 0.0);
}

// --- validator churn --------------------------------------------------------

/// A churned validator whose outage crosses the GC horizon re-enters via
/// state sync and keeps committing after recovery.
TEST(Churn, RecoversViaStateSyncAndCommitsAgain) {
  ExperimentConfig cfg;
  cfg.num_validators = 4;
  cfg.seed = 9;
  cfg.duration = seconds(20);
  cfg.warmup = seconds(2);
  cfg.load_tps = 300;
  cfg.latency = harness::LatencyKind::Uniform;
  // Fast rounds + a small GC window so a 3 s outage crosses the horizon.
  cfg.node.model_cpu = false;
  cfg.node.min_round_delay = millis(20);
  cfg.node.leader_timeout = millis(300);
  cfg.node.gc_depth = 10;
  harness::ChurnSpec churn;
  churn.nodes = {3};
  churn.start = seconds(4);
  churn.period = seconds(7);
  churn.downtime = seconds(3);
  churn.cycles = 2;
  cfg.churn.push_back(churn);

  const ExperimentResult r = harness::run_experiment(cfg);
  EXPECT_EQ(r.restarts, 2u);
  EXPECT_GE(r.state_syncs_completed, 1u);
  EXPECT_GT(r.committed, 0u);

  // Stateless schedules must state-sync too: their snapshot carries no
  // policy epochs, which the installer used to refuse (leaving round-robin
  // validators stranded behind the GC horizon forever).
  cfg.policy = harness::PolicyKind::RoundRobin;
  const ExperimentResult rr = harness::run_experiment(cfg);
  EXPECT_EQ(rr.restarts, 2u);
  EXPECT_GE(rr.state_syncs_completed, 1u);
  EXPECT_GT(rr.committed, 0u);
}

/// Cluster-level: after every churn cycle the node's own delivery stream
/// grows again — it genuinely rejoins, not just restarts.
TEST(Churn, DeliveryResumesAfterEachCycle) {
  test::ClusterOptions options;
  options.n = 4;
  options.seed = 13;
  options.node = test::fast_node_config();
  options.node.gc_depth = 20;
  test::Cluster cluster(options);
  cluster.start();
  cluster.run_for(seconds(2));

  for (int cycle = 0; cycle < 2; ++cycle) {
    cluster.validator(3).crash();
    cluster.run_for(seconds(4));  // >> gc window at test speeds
    const std::size_t at_restart = cluster.delivered(3).size();
    cluster.validator(3).restart();
    cluster.run_for(seconds(4));
    EXPECT_GT(cluster.delivered(3).size(), at_restart)
        << "no commits after recovery in cycle " << cycle;
  }
  EXPECT_GE(cluster.validator(3).stats().restarts, 2u);
  EXPECT_GE(cluster.validator(3).state_syncs_completed(), 1u);
  // No total-order check across the synced validator: a checkpoint install
  // leaves a hole in its delivery log by design (see state_sync_test).
}

}  // namespace
}  // namespace hammerhead

// Unit tests: reputation scores (accumulation, deterministic ranking, reset).
#include <gtest/gtest.h>

#include "hammerhead/core/reputation.h"

namespace hammerhead::core {
namespace {

TEST(Reputation, StartsAtZero) {
  ReputationScores s(5);
  for (ValidatorIndex v = 0; v < 5; ++v) EXPECT_EQ(s.score_of(v), 0);
}

TEST(Reputation, AddAccumulates) {
  ReputationScores s(3);
  s.add(1);
  s.add(1);
  s.add(2, 5);
  EXPECT_EQ(s.score_of(0), 0);
  EXPECT_EQ(s.score_of(1), 2);
  EXPECT_EQ(s.score_of(2), 5);
}

TEST(Reputation, NegativeDeltasAllowed) {
  // The Shoal-like policy subtracts points for skipped leaders.
  ReputationScores s(2);
  s.add(0, -3);
  EXPECT_EQ(s.score_of(0), -3);
}

TEST(Reputation, ResetZeroesEverything) {
  ReputationScores s(3);
  s.add(0, 7);
  s.add(2, -1);
  s.reset();
  for (ValidatorIndex v = 0; v < 3; ++v) EXPECT_EQ(s.score_of(v), 0);
}

TEST(Reputation, RankedWorstToBest) {
  ReputationScores s(4);
  s.add(0, 5);
  s.add(1, 1);
  s.add(2, 9);
  s.add(3, 3);
  EXPECT_EQ(s.ranked_worst_to_best(),
            (std::vector<ValidatorIndex>{1, 3, 0, 2}));
}

TEST(Reputation, RankedBestToWorst) {
  ReputationScores s(4);
  s.add(0, 5);
  s.add(1, 1);
  s.add(2, 9);
  s.add(3, 3);
  EXPECT_EQ(s.ranked_best_to_worst(),
            (std::vector<ValidatorIndex>{2, 0, 3, 1}));
}

TEST(Reputation, TiesBreakByIndexBothDirections) {
  // "Any ties ... are deterministically resolved" (Section 3).
  ReputationScores s(4);
  s.add(0, 2);
  s.add(1, 2);
  s.add(2, 2);
  s.add(3, 2);
  EXPECT_EQ(s.ranked_worst_to_best(),
            (std::vector<ValidatorIndex>{0, 1, 2, 3}));
  EXPECT_EQ(s.ranked_best_to_worst(),
            (std::vector<ValidatorIndex>{0, 1, 2, 3}));
}

TEST(Reputation, OutOfRangeThrows) {
  ReputationScores s(2);
  EXPECT_THROW(s.add(2), InvariantViolation);
  EXPECT_THROW(s.score_of(2), InvariantViolation);
}

TEST(Reputation, ToStringListsAllValidators) {
  ReputationScores s(2);
  s.add(1, 4);
  const std::string str = s.to_string();
  EXPECT_NE(str.find("v0=0"), std::string::npos);
  EXPECT_NE(str.find("v1=4"), std::string::npos);
}

}  // namespace
}  // namespace hammerhead::core

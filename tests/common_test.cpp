// Unit tests: common substrate (digest, hex, rng, logging, assertions).
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <unordered_set>

#include "hammerhead/common/assert.h"
#include "hammerhead/common/digest.h"
#include "hammerhead/common/epoch.h"
#include "hammerhead/common/hex.h"
#include "hammerhead/common/logging.h"
#include "hammerhead/common/rng.h"
#include "hammerhead/common/serde.h"
#include "hammerhead/common/types.h"

namespace hammerhead {
namespace {

// ------------------------------------------------------------------- types

TEST(Types, DurationLiterals) {
  EXPECT_EQ(micros(7), 7);
  EXPECT_EQ(millis(3), 3'000);
  EXPECT_EQ(seconds(2), 2'000'000);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(5)), 5.0);
  EXPECT_DOUBLE_EQ(to_millis(millis(5)), 5.0);
}

// ------------------------------------------------------------------ assert

TEST(Assert, PassingConditionIsSilent) {
  EXPECT_NO_THROW(HH_ASSERT(1 + 1 == 2));
}

TEST(Assert, FailingConditionThrowsInvariantViolation) {
  EXPECT_THROW(HH_ASSERT(false), InvariantViolation);
}

TEST(Assert, MessageCarriesContext) {
  try {
    HH_ASSERT_MSG(false, "round " << 42);
    FAIL() << "should have thrown";
  } catch (const InvariantViolation& e) {
    EXPECT_NE(std::string(e.what()).find("round 42"), std::string::npos);
  }
}

// --------------------------------------------------------------------- hex

TEST(Hex, RoundTrip) {
  const std::vector<std::uint8_t> bytes = {0x00, 0x01, 0xab, 0xff, 0x7e};
  EXPECT_EQ(to_hex(bytes), "0001abff7e");
  EXPECT_EQ(from_hex("0001abff7e"), bytes);
  EXPECT_EQ(from_hex("0001ABFF7E"), bytes);  // uppercase accepted
}

TEST(Hex, EmptyIsEmpty) {
  EXPECT_EQ(to_hex(std::vector<std::uint8_t>{}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(Hex, RejectsOddLength) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
}

TEST(Hex, RejectsNonHexCharacters) {
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
}

// ------------------------------------------------------------------ digest

TEST(Digest, DefaultIsZero) {
  Digest d;
  EXPECT_TRUE(d.is_zero());
  EXPECT_EQ(d.prefix64(), 0u);
}

TEST(Digest, OfStringIsDeterministicAndSensitive) {
  const Digest a = Digest::of_string("hello");
  const Digest b = Digest::of_string("hello");
  const Digest c = Digest::of_string("hellp");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_FALSE(a.is_zero());
}

TEST(Digest, HexFormatting) {
  const Digest d = Digest::of_string("x");
  EXPECT_EQ(d.to_hex().size(), 64u);
  EXPECT_EQ(d.brief(), d.to_hex().substr(0, 8));
}

TEST(Digest, WorksAsHashAndTreeKey) {
  std::unordered_set<Digest> hset;
  std::set<Digest> oset;
  for (int i = 0; i < 100; ++i) {
    const Digest d = Digest::of_string("key-" + std::to_string(i));
    hset.insert(d);
    oset.insert(d);
  }
  EXPECT_EQ(hset.size(), 100u);
  EXPECT_EQ(oset.size(), 100u);
}

// ------------------------------------------------------------------- serde

TEST(Serde, EncodesDistinctStructuresDistinctly) {
  ByteWriter a, b;
  a.str("ab");
  a.str("c");
  b.str("a");
  b.str("bc");
  // Length prefixes make the encoding injective.
  EXPECT_NE(a.data(), b.data());
}

TEST(Serde, IntegerWidths) {
  ByteWriter w;
  w.u8(0xff);
  w.u32(1);
  w.u64(2);
  w.i64(-3);
  EXPECT_EQ(w.data().size(), 1u + 4u + 8u + 8u);
}

// --------------------------------------------------------------------- rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1'000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextInInclusiveBounds) {
  Rng rng(9);
  for (int i = 0; i < 10'000; ++i) {
    const auto v = rng.next_in(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10'000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ExponentialMeanIsApproximatelyRight) {
  Rng rng(13);
  double sum = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.next_exponential(250.0);
  EXPECT_NEAR(sum / n, 250.0, 5.0);
}

TEST(Rng, NormalMomentsAreApproximatelyRight) {
  Rng rng(17);
  double sum = 0, sq = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.next_normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto copy = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent(23);
  Rng child = parent.fork();
  // Forking must not replay the parent stream.
  EXPECT_NE(parent.next(), child.next());
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

// ----------------------------------------------------------------- logging

TEST(Logging, SinkReceivesMessagesAtOrAboveLevel) {
  std::vector<std::pair<LogLevel, std::string>> captured;
  const LogLevel old_level = log_level();
  auto old_sink = set_log_sink([&](LogLevel l, const std::string& m) {
    captured.emplace_back(l, m);
  });
  set_log_level(LogLevel::Info);

  HH_DEBUG("dropped");
  HH_INFO("kept-info");
  HH_ERROR("kept-error " << 5);

  set_log_sink(old_sink);
  set_log_level(old_level);

  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0].second, "kept-info");
  EXPECT_EQ(captured[1].second, "kept-error 5");
  EXPECT_EQ(captured[1].first, LogLevel::Error);
}

TEST(Logging, LevelNames) {
  EXPECT_STREQ(log_level_name(LogLevel::Debug), "DEBUG");
  EXPECT_STREQ(log_level_name(LogLevel::Error), "ERROR");
}

// ------------------------------------------------------------------- epoch

TEST(Epoch, AdvanceBumpsEpochAndCounts) {
  epoch::Domain d;
  const std::uint64_t start = d.epoch();
  d.advance();
  d.advance();
  EXPECT_EQ(d.epoch(), start + 2);
  EXPECT_EQ(d.stats().advances, 2u);
}

TEST(Epoch, RetireeSurvivesWhilePinnedAndFreesAfterGrace) {
  epoch::Domain d;
  epoch::Reader reader(d);
  int* obj = new int(7);
  {
    epoch::Guard guard(reader);
    d.retire(
        obj, [](void* p) { delete static_cast<int*>(p); }, sizeof(int));
    d.advance();  // reader still pinned at the retire epoch: must NOT free
    EXPECT_EQ(d.stats().freed_objects, 0u);
    EXPECT_EQ(d.stats().pending_objects, 1u);
    EXPECT_EQ(*obj, 7);  // still alive (ASan would flag a lie here)
  }
  d.advance();  // pin released: the grace period has passed
  EXPECT_EQ(d.stats().freed_objects, 1u);
  EXPECT_EQ(d.stats().pending_objects, 0u);
  EXPECT_EQ(d.stats().freed_bytes, sizeof(int));
}

TEST(Epoch, UnpinnedRetireeFreesOnNextAdvance) {
  epoch::Domain d;
  bool freed = false;
  static bool* freed_flag;
  freed_flag = &freed;
  d.retire(
      &freed, [](void*) { *freed_flag = true; }, 0);
  d.advance();
  EXPECT_TRUE(freed);
}

TEST(Epoch, SynchronizeReclaimsWithoutReaders) {
  epoch::Domain d;
  int* obj = new int(1);
  d.retire(
      obj, [](void* p) { delete static_cast<int*>(p); }, sizeof(int));
  d.synchronize();
  EXPECT_EQ(d.stats().freed_objects, 1u);
}

TEST(Epoch, DeferredClosuresRunAtAdvanceInOrder) {
  epoch::Domain d;
  epoch::Reader reader(d);
  std::vector<int> order;
  {
    epoch::Guard guard(reader);
    EXPECT_EQ(epoch::current(), &d);  // guard exposes the domain
    d.defer([&] { order.push_back(1); });
    d.defer([&] { order.push_back(2); });
  }
  EXPECT_EQ(epoch::current(), nullptr);
  EXPECT_TRUE(order.empty());  // nothing runs before the boundary
  d.advance();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(d.stats().deferred_run, 2u);
}

TEST(Epoch, DeferWithoutGuardUsesOrphanQueue) {
  epoch::Domain d;
  bool ran = false;
  d.defer([&] { ran = true; });  // no guard: the orphan path
  EXPECT_FALSE(ran);
  d.advance();
  EXPECT_TRUE(ran);
}

TEST(Epoch, ReaderDestructionPreservesDeferredWork) {
  epoch::Domain d;
  bool ran = false;
  {
    epoch::Reader reader(d);
    epoch::Guard guard(reader);
    d.defer([&] { ran = true; });
  }  // reader dies with the closure still queued
  d.advance();
  EXPECT_TRUE(ran);
}

TEST(Epoch, QuiescentHooksFireEveryAdvanceUntilRemoved) {
  epoch::Domain d;
  int fired = 0;
  const epoch::Domain::HookId id = d.add_quiescent_hook([&] { ++fired; });
  d.advance();
  d.advance();
  EXPECT_EQ(fired, 2);
  d.remove_quiescent_hook(id);
  d.advance();
  EXPECT_EQ(fired, 2);
}

TEST(Epoch, GuardEntryPerformsNoAtomicRmw) {
  epoch::Domain d;
  epoch::Reader reader(d);  // registration CAS happens here, not in guards
  const std::uint64_t before = epoch::rmw_op_count();
  for (int i = 0; i < 100; ++i) {
    epoch::Guard guard(reader);
  }
#ifndef NDEBUG
  EXPECT_EQ(epoch::rmw_op_count(), before);
#else
  (void)before;  // probe compiled out in release builds
#endif
}

TEST(Epoch, StatsTrackReaderRegistration) {
  epoch::Domain d;
  EXPECT_EQ(d.stats().readers, 0u);
  {
    epoch::Reader a(d);
    epoch::Reader b(d);
    EXPECT_EQ(d.stats().readers, 2u);
  }
  EXPECT_EQ(d.stats().readers, 0u);
}

}  // namespace
}  // namespace hammerhead

// Randomized differential suite: the arena-backed Dag against a simple
// digest-map reference model. The reference mirrors the pre-arena store
// (unordered digest map + round->author maps + digest-BFS traversals); the
// arena must agree on insert/duplicate outcomes, lookups, round views,
// structural queries, pruning and snapshot installs — including wraparound
// of the slab ring across several GC cycles (the ring's initial depth is
// far smaller than the total round span driven here).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <deque>
#include <map>
#include <span>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "hammerhead/common/epoch.h"
#include "hammerhead/common/rng.h"
#include "hammerhead/dag/dag.h"
#include "hammerhead/dag/resolve.h"
#include "test_util.h"

namespace hammerhead::dag {
namespace {

using test::DagBuilder;

/// The pre-arena storage design, kept deliberately naive: digest-keyed maps
/// and per-call visited sets. Slow but obviously correct.
struct ReferenceDag {
  std::unordered_map<Digest, CertPtr> by_digest;
  std::map<Round, std::map<ValidatorIndex, CertPtr>> rounds;
  Round gc_floor = 0;

  bool insert(const CertPtr& cert) {
    if (cert->round() < gc_floor) return false;
    if (by_digest.count(cert->digest())) return false;
    auto& slot_map = rounds[cert->round()];
    if (slot_map.count(cert->author())) return false;
    by_digest.emplace(cert->digest(), cert);
    slot_map.emplace(cert->author(), cert);
    return true;
  }

  CertPtr get(const Digest& d) const {
    auto it = by_digest.find(d);
    return it == by_digest.end() ? nullptr : it->second;
  }

  CertPtr get(Round r, ValidatorIndex a) const {
    auto it = rounds.find(r);
    if (it == rounds.end()) return nullptr;
    auto jt = it->second.find(a);
    return jt == it->second.end() ? nullptr : jt->second;
  }

  std::vector<CertPtr> round_certs(Round r) const {
    std::vector<CertPtr> out;
    auto it = rounds.find(r);
    if (it == rounds.end()) return out;
    for (const auto& [a, c] : it->second) out.push_back(c);
    return out;  // author-ascending (std::map)
  }

  Stake direct_support(const Certificate& anchor,
                       const crypto::Committee& committee) const {
    Stake s = 0;
    for (const auto& c : round_certs(anchor.round() + 1))
      if (c->has_parent(anchor.digest())) s += committee.stake_of(c->author());
    return s;
  }

  bool has_path(const Certificate& from, const Certificate& to) const {
    if (from.digest() == to.digest()) return true;
    if (from.round() <= to.round()) return false;
    std::unordered_set<Digest> visited{from.digest()};
    std::deque<const Certificate*> frontier{&from};
    while (!frontier.empty()) {
      const Certificate* cur = frontier.front();
      frontier.pop_front();
      for (const auto& pd : cur->parents()) {
        if (pd == to.digest()) return true;
        if (!visited.insert(pd).second) continue;
        auto it = by_digest.find(pd);
        if (it == by_digest.end()) continue;
        if (it->second->round() > to.round())
          frontier.push_back(it->second.get());
      }
    }
    return false;
  }

  std::vector<Digest> causal_history(const Certificate& root) const {
    std::vector<Digest> out;
    std::unordered_set<Digest> visited{root.digest()};
    std::deque<CertPtr> frontier{get(root.digest())};
    while (!frontier.empty()) {
      CertPtr cur = frontier.front();
      frontier.pop_front();
      out.push_back(cur->digest());
      for (const auto& pd : cur->parents()) {
        if (!visited.insert(pd).second) continue;
        if (auto p = get(pd)) frontier.push_back(p);
      }
    }
    return out;
  }

  void prune_below(Round floor) {
    if (floor <= gc_floor) return;
    for (auto it = rounds.begin();
         it != rounds.end() && it->first < floor;) {
      for (const auto& [a, c] : it->second) by_digest.erase(c->digest());
      it = rounds.erase(it);
    }
    gc_floor = floor;
  }
};

std::optional<Round> ref_max_round(const ReferenceDag& ref) {
  if (ref.rounds.empty()) return std::nullopt;
  return ref.rounds.rbegin()->first;
}

/// Full-state comparison plus sampled structural queries.
void expect_equivalent(const Dag& dag, const ReferenceDag& ref,
                       const crypto::Committee& committee,
                       const std::vector<CertPtr>& sample, Rng& rng) {
  ASSERT_EQ(dag.total_certs(), ref.by_digest.size());
  ASSERT_EQ(dag.gc_floor(), ref.gc_floor);
  const auto max_r = ref_max_round(ref);
  if (max_r) {
    ASSERT_TRUE(dag.max_round().has_value());
    // Dag::max_round is a high-water mark and survives pruning of the top
    // rounds only if certificates remain; here the generator never prunes
    // above live rounds, so the values must agree.
    ASSERT_EQ(*dag.max_round(), *max_r);
  }
  for (Round r = ref.gc_floor; max_r && r <= *max_r; ++r) {
    const auto expected = ref.round_certs(r);
    const auto got = dag.round_certs(r);
    ASSERT_EQ(got.size(), expected.size()) << "round " << r;
    for (std::size_t i = 0; i < got.size(); ++i)
      ASSERT_EQ(got[i], expected[i]) << "round " << r << " position " << i;
    ASSERT_EQ(dag.round_size(r), expected.size());
    Stake stake = 0;
    for (const auto& c : expected) stake += committee.stake_of(c->author());
    ASSERT_EQ(dag.round_stake(r), stake);
  }

  for (const auto& c : sample) {
    const bool resident = ref.by_digest.count(c->digest()) > 0;
    ASSERT_EQ(dag.contains(c->digest()), resident);
    ASSERT_EQ(dag.get(c->digest()), ref.get(c->digest()));
    if (!resident || c->round() < ref.gc_floor) continue;
    ASSERT_EQ(dag.get(c->round(), c->author()), c);
    const VertexId id = dag.id_of(c->digest());
    ASSERT_NE(id, kInvalidVertex);
    ASSERT_EQ(dag.id_of(c->round(), c->author()), id);
    ASSERT_EQ(dag.cert_of(id), c);

    ASSERT_EQ(dag.direct_support_scan(*c), ref.direct_support(*c, committee));
    ASSERT_EQ(dag.direct_support(*c), ref.direct_support(*c, committee));
    ASSERT_EQ(dag.direct_support(id), ref.direct_support(*c, committee));

    auto hist = dag.causal_history(
        *c, [](const Certificate&) { return true; });
    auto hist_by_id =
        dag.causal_history(id, [](const Certificate&) { return true; });
    const auto expected_hist = ref.causal_history(*c);
    ASSERT_EQ(hist.size(), expected_hist.size());
    ASSERT_EQ(hist_by_id.size(), expected_hist.size());
    std::unordered_set<Digest> expected_set(expected_hist.begin(),
                                            expected_hist.end());
    for (const auto& h : hist) ASSERT_TRUE(expected_set.count(h->digest()));
  }

  // Sampled path queries (quadratic, so subsample).
  for (int i = 0; i < 64; ++i) {
    const auto& from = sample[rng.next_below(sample.size())];
    const auto& to = sample[rng.next_below(sample.size())];
    if (!ref.by_digest.count(from->digest()) ||
        !ref.by_digest.count(to->digest()))
      continue;
    if (to->round() < ref.gc_floor) continue;
    const bool expected = ref.has_path(*from, *to);
    ASSERT_EQ(dag.has_path_scan(*from, *to), expected);
    ASSERT_EQ(dag.has_path(*from, *to), expected);
    const VertexId vf = dag.id_of(from->digest());
    const VertexId vt = dag.id_of(to->digest());
    ASSERT_EQ(dag.has_path(vf, vt), expected);
    ASSERT_EQ(dag.has_path_scan(vf, vt), expected);
  }
}

TEST(DagArena, DifferentialRandomOps) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    DagBuilder b(5, /*seed=*/2);
    Dag dag(b.committee());
    ReferenceDag ref;
    const auto certs = test::generate_random_certs(b, rng, 30);

    std::vector<CertPtr> inserted;
    for (std::size_t i = 0; i < certs.size(); ++i) {
      const auto& c = certs[i];
      ASSERT_EQ(dag.insert(c), ref.insert(c)) << "insert #" << i;
      inserted.push_back(c);
      // Duplicate insert of a random earlier certificate: both reject.
      if (rng.next_below(4) == 0) {
        const auto& dup = inserted[rng.next_below(inserted.size())];
        ASSERT_EQ(dag.insert(dup), ref.insert(dup));
      }
      // Occasional prune a few rounds below the frontier.
      if (i % 37 == 36) {
        const Round frontier = c->round();
        if (frontier > 6) {
          const Round floor = frontier - 4 - rng.next_below(3);
          dag.prune_below(floor);
          ref.prune_below(floor);
        }
      }
      if (i % 23 == 22) expect_equivalent(dag, ref, b.committee(), certs, rng);
    }
    expect_equivalent(dag, ref, b.committee(), certs, rng);
  }
}

TEST(DagArena, RingWraparoundAcrossGcCycles) {
  // Drive far more rounds than the ring's initial depth while pruning so the
  // live span stays narrow: slab positions are reused many times over.
  Rng rng(7);
  DagBuilder b(4);
  Dag dag(b.committee());
  ReferenceDag ref;

  std::vector<CertPtr> prev;
  std::vector<CertPtr> live;
  for (ValidatorIndex a = 0; a < 4; ++a)
    prev.push_back(b.make_cert(0, a, {}));
  for (const auto& c : prev) {
    ASSERT_TRUE(dag.insert(c));
    ref.insert(c);
    live.push_back(c);
  }
  for (Round r = 1; r <= 150; ++r) {
    std::vector<CertPtr> cur;
    const auto parents = DagBuilder::digests_of(prev);
    for (ValidatorIndex a = 0; a < 4; ++a) {
      auto c = b.make_cert(r, a, parents);
      ASSERT_TRUE(dag.insert(c)) << "round " << r;
      ref.insert(c);
      cur.push_back(c);
      live.push_back(c);
    }
    prev = std::move(cur);
    if (r % 10 == 0 && r > 8) {
      dag.prune_below(r - 6);
      ref.prune_below(r - 6);
      // Handles of pruned rounds stop resolving; no aliasing across reuse.
      for (const auto& c : live)
        if (c->round() < dag.gc_floor()) {
          ASSERT_EQ(dag.id_of(c->digest()), kInvalidVertex);
          ASSERT_EQ(dag.cert_of(dag.arena().id(c->round(), c->author())),
                    nullptr);
        }
      live.erase(std::remove_if(live.begin(), live.end(),
                                [&](const CertPtr& c) {
                                  return c->round() < dag.gc_floor();
                                }),
                 live.end());
      expect_equivalent(dag, ref, b.committee(), live, rng);
    }
  }
  // The ring never needed to grow past the widest live span even though 151
  // rounds passed through it.
  EXPECT_LE(dag.arena().ring_depth(), 32u);
  expect_equivalent(dag, ref, b.committee(), live, rng);
}

TEST(DagArena, SnapshotInstallMatchesReference) {
  // Mirror the state-sync install path: a fresh DAG pruned to a remote
  // floor, then loaded with the snapshot's certificates (floor round first,
  // missing parents tolerated there).
  Rng rng(11);
  DagBuilder b(4);
  Dag source(b.committee());
  b.add_full_rounds(source, 12);

  const Round floor = 8;
  Dag installed(b.committee());
  installed.prune_below(floor);
  ReferenceDag ref;
  ref.prune_below(floor);
  std::vector<CertPtr> shipped;
  for (Round r = floor; r <= 12; ++r)
    for (const auto& c : source.round_certs(r)) shipped.push_back(c);
  for (const auto& c : shipped) {
    ASSERT_TRUE(installed.parents_present(*c));
    ASSERT_EQ(installed.insert(c), ref.insert(c));
  }
  expect_equivalent(installed, ref, b.committee(), shipped, rng);

  // And the installed DAG keeps operating: extend a round and prune again.
  auto next = b.add_round(installed, 13, {0, 1, 2, 3},
                          DagBuilder::digests_of(source.round_certs(12)));
  for (const auto& c : next) ref.insert(c);
  installed.prune_below(10);
  ref.prune_below(10);
  for (const auto& c : next) shipped.push_back(c);
  expect_equivalent(installed, ref, b.committee(), shipped, rng);
}

TEST(DagArena, ColdTieringDifferentialAndStraggler) {
  // Aggressively small cold lag so most resident rounds compress, then run
  // the full differential battery: every query path (resolve, slab scans,
  // causal history, path scans, support) must rehydrate transparently and
  // answer exactly like an untiered twin and the reference model.
  Rng rng(13);
  DagBuilder b(4);
  IndexConfig tiered;
  tiered.cold_round_lag = 4;
  Dag dag(b.committee(), tiered);
  IndexConfig untiered;
  untiered.cold_round_lag = 0;
  Dag twin(b.committee(), untiered);
  ReferenceDag ref;

  std::vector<CertPtr> live;
  auto insert_all = [&](const std::vector<CertPtr>& certs) {
    for (const auto& c : certs) {
      ASSERT_TRUE(twin.insert(c));
      ref.insert(c);
      live.push_back(c);
    }
  };
  auto prev = b.add_round(dag, 0, {0, 1, 2, 3}, {});
  insert_all(prev);
  for (Round r = 1; r <= 40; ++r) {
    // Author 3 skips round 20; its vertex arrives later as a straggler into
    // a round that has long gone cold by then.
    const std::vector<ValidatorIndex> authors =
        r == 20 ? std::vector<ValidatorIndex>{0, 1, 2}
                : std::vector<ValidatorIndex>{0, 1, 2, 3};
    auto cur = b.add_round(dag, r, authors, DagBuilder::digests_of(prev));
    insert_all(cur);
    prev = std::move(cur);
  }

  const Arena::MemoryStats& mem = dag.arena().memory_stats();
  EXPECT_GT(mem.rounds_compressed, 20u);
  EXPECT_GT(mem.cold_parent_bytes, 0u);
  EXPECT_GT(dag.index().cold_bitmap_bytes(), 0u);
  EXPECT_EQ(twin.arena().memory_stats().rounds_compressed, 0u);
  // Compression must actually shrink the structural footprint.
  EXPECT_LT(dag.bytes_per_vertex(), twin.bytes_per_vertex());

  // Straggler insert: the arena and index restore round 20 (and the index
  // its round-19 parent entries) before admitting the vertex.
  auto straggler =
      b.make_cert(20, 3, DagBuilder::digests_of(dag.round_certs(19)));
  ASSERT_TRUE(dag.insert(straggler));
  ASSERT_TRUE(twin.insert(straggler));
  ref.insert(straggler);
  live.push_back(straggler);
  EXPECT_GT(mem.rounds_rehydrated, 0u);
  ASSERT_EQ(dag.get(20, 3), straggler);

  expect_equivalent(dag, ref, b.committee(), live, rng);

  // Pruning drops cold blobs directly; everything below the floor is gone
  // from both tiers.
  dag.prune_below(38);
  twin.prune_below(38);
  ref.prune_below(38);
  EXPECT_EQ(mem.cold_parent_bytes, 0u);
  EXPECT_EQ(dag.index().cold_bitmap_bytes(), 0u);
  live.erase(std::remove_if(
                 live.begin(), live.end(),
                 [&](const CertPtr& c) { return c->round() < dag.gc_floor(); }),
             live.end());
  expect_equivalent(dag, ref, b.committee(), live, rng);
  EXPECT_EQ(dag.bytes_per_vertex(), twin.bytes_per_vertex());
}

TEST(DagArena, HandleEncodingAndStability) {
  DagBuilder b(4);
  Dag dag(b.committee());
  auto r0 = b.add_round(dag, 0, {0, 1, 2, 3}, {});
  auto r1 = b.add_round(dag, 1, {0, 1, 2, 3}, DagBuilder::digests_of(r0));

  const VertexId v = dag.id_of(1, 2);
  ASSERT_NE(v, kInvalidVertex);
  EXPECT_EQ(dag.round_of(v), 1u);
  EXPECT_EQ(dag.author_of(v), 2u);
  EXPECT_EQ(dag.cert_of(v), r1[2]);
  EXPECT_EQ(dag.id_of(r1[2]->digest()), v);

  // Parent edges were resolved at insert: r1[2]'s slot lists all of round 0.
  const Arena::Slot* slot = dag.arena().resolve(v);
  ASSERT_NE(slot, nullptr);
  EXPECT_EQ(slot->parents.size(), 4u);
  for (const VertexId p : slot->parents) EXPECT_EQ(dag.round_of(p), 0u);

  // Unoccupied slots and out-of-range authors do not resolve.
  EXPECT_EQ(dag.id_of(5, 0), kInvalidVertex);
  EXPECT_EQ(dag.id_of(0, 99), kInvalidVertex);
}

// --------------------------------------------------------- digest resolver

Digest synthetic_digest(std::uint64_t i) {
  const std::uint64_t key = 0x9e3779b97f4a7c15ull * (i + 1);
  return Digest::of_bytes(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(&key), sizeof(key)));
}

TEST(DigestResolver, InsertFindEraseRoundTrip) {
  DigestResolver r;
  const Digest a = synthetic_digest(1), b = synthetic_digest(2);
  EXPECT_EQ(r.find(a), kInvalidVertex);
  EXPECT_TRUE(r.insert(a, 10));
  EXPECT_TRUE(r.insert(b, 20));
  EXPECT_EQ(r.size(), 2u);
  EXPECT_EQ(r.find(a), 10u);
  EXPECT_EQ(r.find(b), 20u);
  EXPECT_FALSE(r.insert(a, 99));  // duplicate digest rejected
  EXPECT_EQ(r.find(a), 10u);     // original mapping untouched
  EXPECT_TRUE(r.erase(a));
  EXPECT_FALSE(r.erase(a));  // already gone
  EXPECT_EQ(r.find(a), kInvalidVertex);
  EXPECT_EQ(r.find(b), 20u);  // erase must not break b's probe chain
  EXPECT_EQ(r.size(), 1u);
}

TEST(DigestResolver, GrowthKeepsEveryEntryFindable) {
  DigestResolver r(4);  // tiny initial capacity: force many rebuilds
  constexpr std::uint64_t kCount = 1000;
  for (std::uint64_t i = 0; i < kCount; ++i)
    ASSERT_TRUE(r.insert(synthetic_digest(i), i));
  for (std::uint64_t i = 0; i < kCount; ++i)
    ASSERT_EQ(r.find(synthetic_digest(i)), i) << "entry " << i;
  EXPECT_GT(r.stats().rebuilds, 0u);
}

TEST(DigestResolver, FindPublishedSeesOnlyPublishedState) {
  epoch::Domain domain;
  epoch::Reader reader(domain);
  DigestResolver r;
  const Digest a = synthetic_digest(1), b = synthetic_digest(2);
  r.insert(a, 10);
  {
    epoch::Guard guard(reader);
    // Nothing published yet: the reader sees an empty snapshot even though
    // the writer already holds a.
    EXPECT_EQ(r.find_published(a), kInvalidVertex);
  }
  r.publish(domain);
  {
    epoch::Guard guard(reader);
    EXPECT_EQ(r.find_published(a), 10u);
    EXPECT_EQ(r.find_published(b), kInvalidVertex);
  }
  // Mutations after a publish stay invisible until the next publish —
  // including erases (the snapshot is at most one batch stale, never torn).
  r.erase(a);
  r.insert(b, 20);
  {
    epoch::Guard guard(reader);
    EXPECT_EQ(r.find_published(a), 10u);
    EXPECT_EQ(r.find_published(b), kInvalidVertex);
  }
  r.publish(domain);
  domain.advance();
  {
    epoch::Guard guard(reader);
    EXPECT_EQ(r.find_published(a), kInvalidVertex);
    EXPECT_EQ(r.find_published(b), 20u);
  }
}

TEST(DigestResolver, ChurnWithPublishesStaysCompactAndCorrect) {
  epoch::Domain domain;
  DigestResolver r;
  // Sliding window of 64 live digests churned through 4096 ids with a
  // publish per step: tombstone reuse and compaction must keep capacity
  // bounded near the live count, not the cumulative insert count.
  constexpr std::uint64_t kWindow = 64, kSteps = 4096;
  for (std::uint64_t i = 0; i < kSteps; ++i) {
    ASSERT_TRUE(r.insert(synthetic_digest(i), i));
    if (i >= kWindow) {
      ASSERT_TRUE(r.erase(synthetic_digest(i - kWindow)));
    }
    r.publish(domain);
    domain.advance();
  }
  EXPECT_EQ(r.size(), kWindow);
  for (std::uint64_t i = kSteps - kWindow; i < kSteps; ++i)
    ASSERT_EQ(r.find(synthetic_digest(i)), i);
  EXPECT_LE(r.stats().capacity, 512u);  // bounded by the window, not kSteps
  EXPECT_GT(r.stats().publishes, 0u);
  // Geometry-changing publishes retired their superseded tables through the
  // domain; after the advances above, grace has passed and they are freed.
  const epoch::Domain::Stats ds = domain.stats();
  EXPECT_GT(ds.retired_bytes, 0u);
  EXPECT_EQ(ds.pending_bytes, 0u);
}

// TSan stress: reader threads resolve random digests against the published
// snapshot while the driver inserts, erases, publishes and advances the
// epoch for 10k rounds — the exact interleaving the sharded simulator
// produces at batch boundaries. Correctness contract checked per lookup:
// a successful resolution returns the one id ever associated with that
// digest (ids are a pure function of the digest index here). Use-after-free
// of a retired snapshot is what TSan/ASan would flag; the zero-RMW reader
// invariant is asserted inside find_published in debug builds.
TEST(DigestResolver, ConcurrentReadersVsDriverChurn) {
  epoch::Domain domain;
  DigestResolver resolver;
  constexpr std::uint64_t kIds = 1 << 14;
  constexpr std::uint64_t kWindow = 256;
  constexpr std::uint64_t kRounds = 10'000;
  constexpr int kReaders = 3;

  std::vector<Digest> digests;
  digests.reserve(kIds);
  for (std::uint64_t i = 0; i < kIds; ++i)
    digests.push_back(synthetic_digest(i));

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> hits{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      epoch::Reader reader(domain);
      Rng rng(0xfeedull * (t + 1));
      while (!stop.load(std::memory_order_acquire)) {
        std::uint64_t session_hits = 0;
        {
          epoch::Guard guard(reader);
          for (int i = 0; i < 64; ++i) {
            const std::uint64_t idx = rng.next_below(kIds);
            const VertexId got = resolver.find_published(digests[idx]);
            if (got == kInvalidVertex) continue;
            ASSERT_EQ(got, idx);  // stale is allowed, wrong is not
            ++session_hits;
          }
        }
        // Published outside the guard: the driver watches this counter to
        // decide when the readers have seen enough, and the reader lookup
        // path itself must stay free of atomic RMW.
        hits.fetch_add(session_hits, std::memory_order_relaxed);
        // Unpinned breather between guard sessions: on an oversubscribed
        // host a reader that never yields holds its pin across a whole
        // preemption timeslice, serializing the writer's synchronize() on
        // scheduler latency instead of on actual read activity.
        std::this_thread::yield();
      }
    });
  }

  for (std::uint64_t r = 0; r < kRounds; ++r) {
    const std::uint64_t id = r % kIds;
    if (resolver.find(digests[id]) == kInvalidVertex)
      resolver.insert(digests[id], id);
    if (r >= kWindow) {
      const std::uint64_t old = (r - kWindow) % kIds;
      resolver.erase(digests[old]);
    }
    resolver.publish(domain);
    domain.advance();
  }
  // The churn may outrun the readers on a loaded host; the final snapshot
  // still holds kWindow live entries, so hold it steady until every reader
  // has demonstrably resolved against published state.
  while (hits.load(std::memory_order_relaxed) < 4 * kWindow)
    std::this_thread::yield();
  stop.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();

  EXPECT_GE(hits.load(), 4 * kWindow);
  EXPECT_GT(domain.stats().freed_objects, 0u);  // reclamation actually ran
}

}  // namespace
}  // namespace hammerhead::dag

// Stake-weighted committees end to end. Section 1 motivates HammerHead with
// stake: "in real blockchains, validators vary in stake and thus leader
// election frequency. Some high-stake validators act as leaders more often
// than others, but when they briefly fail or undergo maintenance,
// performance suffers." These tests check stake-proportional leader slots,
// stake-weighted quorums in the live protocol, and the eviction of a failed
// high-stake leader.
#include <gtest/gtest.h>

#include "hammerhead/harness/experiment.h"

namespace hammerhead {
namespace {

harness::ExperimentConfig weighted_config() {
  harness::ExperimentConfig cfg;
  // 8 validators; v0 holds 30% of the stake.
  cfg.stakes = {30, 10, 10, 10, 10, 10, 10, 10};
  cfg.num_validators = cfg.stakes.size();
  cfg.seed = 5;
  cfg.latency = harness::LatencyKind::Uniform;
  cfg.uniform_latency_min = millis(10);
  cfg.uniform_latency_max = millis(30);
  cfg.node.min_round_delay = millis(50);
  cfg.node.leader_timeout = millis(400);
  cfg.duration = seconds(20);
  cfg.warmup = seconds(4);
  cfg.load_tps = 200;
  cfg.hh.cadence = core::ScheduleCadence::commits(10);
  return cfg;
}

TEST(Stake, HighStakeValidatorLeadsProportionally) {
  harness::ExperimentConfig cfg = weighted_config();
  cfg.policy = harness::PolicyKind::RoundRobin;
  const auto r = harness::run_experiment(cfg);
  std::uint64_t total = 0;
  for (auto c : r.anchors_by_author) total += c;
  ASSERT_GT(total, 30u);
  // v0 has 3x the stake of anyone else: its committed-anchor share should
  // be roughly 30% (round-robin over stake-weighted slots).
  const double share =
      static_cast<double>(r.anchors_by_author[0]) / static_cast<double>(total);
  EXPECT_GT(share, 0.18);
  EXPECT_LT(share, 0.42);
}

TEST(Stake, WeightedQuorumToleratesLowStakeCrashes) {
  // Crashing three 10%-stake validators (30% < 1/3 of stake) must not stop
  // the protocol.
  harness::ExperimentConfig cfg = weighted_config();
  cfg.policy = harness::PolicyKind::HammerHead;
  cfg.faults = 3;  // highest indices: v5, v6, v7 => 30 stake of 100
  const auto r = harness::run_experiment(cfg);
  EXPECT_GT(r.committed_anchors, 20u);
  EXPECT_GT(r.throughput_tps, 100.0);
}

TEST(Stake, FailedHighStakeLeaderIsEvicted) {
  // The paper's motivating pain: a high-stake validator going down hurts a
  // lot under static schedules. Under HammerHead it is evicted like anyone
  // else (its stake exceeds no budget: 30 <= max_faulty_stake 33).
  harness::ExperimentConfig cfg = weighted_config();
  cfg.policy = harness::PolicyKind::HammerHead;
  cfg.crashes.push_back(harness::CrashEvent{0, seconds(2), std::nullopt});
  cfg.clients_avoid_crashed = false;  // explicit event, not start-crash set
  const auto hh = harness::run_experiment(cfg);

  cfg.policy = harness::PolicyKind::RoundRobin;
  const auto rr = harness::run_experiment(cfg);

  // Round-robin keeps giving ~30% of slots to the dead whale: many skips.
  // HammerHead evicts it after the first epochs.
  EXPECT_LT(hh.skipped_anchors * 2, rr.skipped_anchors);
  EXPECT_GT(hh.committed_anchors, rr.committed_anchors);
}

TEST(Stake, ExclusionBudgetRespectsStake) {
  // A 40%-stake validator cannot be evicted (bad set stays within the
  // f-stake budget), even when it is the worst scorer.
  const auto committee = crypto::Committee::make_with_stakes(
      {40, 12, 12, 12, 12, 12}, 1);
  core::ReputationScores scores(6);
  for (ValidatorIndex v = 1; v < 6; ++v) scores.add(v, 10);
  // v0 has score 0 (worst) but stake 40 > 33: prefix rule evicts nobody.
  const auto table =
      core::LeaderSwapTable::from_scores(committee, scores, 1.0 / 3.0);
  EXPECT_TRUE(table.is_identity());
}

}  // namespace
}  // namespace hammerhead

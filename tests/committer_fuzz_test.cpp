// Differential fuzzing of the committer: randomized DAGs (missing vertices,
// partial parent sets, shuffled insertion) are processed incrementally and
// compared against a from-scratch batch recomputation. Any divergence means
// the incremental trigger/walk-back machinery depends on arrival order —
// which would be a consensus bug, since validators see different orders.
#include <gtest/gtest.h>

#include "hammerhead/common/rng.h"
#include "hammerhead/consensus/committer.h"
#include "hammerhead/core/policies.h"
#include "test_util.h"

namespace hammerhead::consensus {
namespace {

using test::DagBuilder;

struct GeneratedDag {
  std::vector<dag::CertPtr> certs;  // causally ordered (parents first)
};

GeneratedDag generate(DagBuilder& b, Rng& rng, Round rounds) {
  return {test::generate_random_certs(b, rng, rounds)};
}

std::vector<Digest> run_committer(const DagBuilder& b,
                                  const std::vector<dag::CertPtr>& sequence,
                                  bool hammerhead) {
  dag::Dag dag(b.committee());
  std::unique_ptr<core::LeaderSchedulePolicy> policy;
  if (hammerhead) {
    core::HammerHeadConfig cfg;
    cfg.cadence = core::ScheduleCadence::commits(3);
    policy = std::make_unique<core::HammerHeadPolicy>(b.committee(), 1, cfg);
  } else {
    policy = std::make_unique<core::RoundRobinPolicy>(b.committee(), 1);
  }
  std::vector<Digest> delivered;
  BullsharkCommitter committer(
      b.committee(), dag, *policy,
      [&](const CommittedSubDag& sd) {
        for (const auto& v : sd.vertices) delivered.push_back(v->digest());
      });
  // Insert respecting causal completeness: repeatedly sweep the sequence.
  std::vector<dag::CertPtr> pending = sequence;
  while (!pending.empty()) {
    std::vector<dag::CertPtr> next;
    bool progress = false;
    for (auto& cert : pending) {
      if (dag.parents_present(*cert)) {
        if (dag.insert(cert)) committer.on_cert_inserted(cert);
        progress = true;
      } else {
        next.push_back(cert);
      }
    }
    if (!progress) break;  // remaining certs reference dropped vertices
    pending = std::move(next);
  }
  return delivered;
}

class CommitterFuzz : public testing::TestWithParam<std::uint64_t> {};

TEST_P(CommitterFuzz, ArrivalOrderIndependence) {
  Rng rng(GetParam());
  DagBuilder b(7, /*seed=*/3);
  const GeneratedDag gen = generate(b, rng, 20);

  for (bool hammerhead : {false, true}) {
    const auto reference = run_committer(b, gen.certs, hammerhead);
    // Replay several random permutations of arrival order.
    for (int replay = 0; replay < 3; ++replay) {
      auto shuffled = gen.certs;
      rng.shuffle(shuffled);
      const auto delivered = run_committer(b, shuffled, hammerhead);
      ASSERT_EQ(delivered, reference)
          << "delivery depends on arrival order (seed " << GetParam()
          << ", hammerhead=" << hammerhead << ", replay " << replay << ")";
    }
  }
}

TEST_P(CommitterFuzz, PrefixConsistencyUnderTruncatedInput) {
  // A validator with fewer certificates must deliver a prefix of what a
  // validator with more certificates delivers.
  Rng rng(GetParam() ^ 0xABCD);
  DagBuilder b(7, /*seed=*/3);
  const GeneratedDag gen = generate(b, rng, 20);

  const auto full = run_committer(b, gen.certs, true);
  for (double fraction : {0.5, 0.75, 0.9}) {
    auto truncated = gen.certs;
    truncated.resize(static_cast<std::size_t>(
        static_cast<double>(truncated.size()) * fraction));
    const auto partial = run_committer(b, truncated, true);
    ASSERT_LE(partial.size(), full.size());
    for (std::size_t i = 0; i < partial.size(); ++i)
      ASSERT_EQ(partial[i], full[i])
          << "prefix divergence at " << i << " (fraction " << fraction << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CommitterFuzz,
                         testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                         12));

}  // namespace
}  // namespace hammerhead::consensus

// Unit tests: the persistent store substrate (typed tables, ordered scans,
// schema discipline, stats).
#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "hammerhead/storage/store.h"

namespace hammerhead::storage {
namespace {

TEST(Store, PutGetRoundTrip) {
  Store store;
  auto& t = store.open_table<int, std::string>("t");
  t.put(1, "one");
  t.put(2, "two");
  EXPECT_EQ(t.get(1), "one");
  EXPECT_EQ(t.get(2), "two");
  EXPECT_EQ(t.get(3), std::nullopt);
}

TEST(Store, OverwriteReplacesValue) {
  Store store;
  auto& t = store.open_table<int, int>("t");
  t.put(1, 10);
  t.put(1, 20);
  EXPECT_EQ(t.get(1), 20);
  EXPECT_EQ(t.size(), 1u);
}

TEST(Store, EraseRemoves) {
  Store store;
  auto& t = store.open_table<int, int>("t");
  t.put(5, 50);
  EXPECT_TRUE(t.contains(5));
  t.erase(5);
  EXPECT_FALSE(t.contains(5));
  EXPECT_TRUE(t.empty());
}

TEST(Store, ReopenReturnsSameTable) {
  Store store;
  store.open_table<int, int>("t").put(1, 1);
  EXPECT_EQ((store.open_table<int, int>("t").get(1)), 1);
}

TEST(Store, SchemaMismatchThrows) {
  Store store;
  store.open_table<int, int>("t");
  EXPECT_THROW((store.open_table<int, std::string>("t")), InvariantViolation);
}

TEST(Store, OrderedIterationByKey) {
  // Recovery replays certificates in (round, author) order; the table's
  // ordered scan is what makes that possible.
  Store store;
  auto& t = store.open_table<std::pair<int, int>, int>("certs");
  t.put({2, 1}, 21);
  t.put({1, 9}, 19);
  t.put({1, 2}, 12);
  t.put({3, 0}, 30);
  std::vector<int> order;
  t.for_each([&](const std::pair<int, int>&, const int& v) {
    order.push_back(v);
  });
  EXPECT_EQ(order, (std::vector<int>{12, 19, 21, 30}));
}

TEST(Store, LastKey) {
  Store store;
  auto& t = store.open_table<int, int>("t");
  EXPECT_EQ(t.last_key(), std::nullopt);
  t.put(3, 0);
  t.put(7, 0);
  t.put(5, 0);
  EXPECT_EQ(t.last_key(), 7);
}

TEST(Store, StatsCountOperations) {
  Store store;
  auto& t = store.open_table<int, int>("t");
  t.put(1, 1);
  t.put(2, 2);
  t.get(1);
  t.get(9);
  t.erase(1);
  EXPECT_EQ(store.stats().writes, 2u);
  EXPECT_EQ(store.stats().reads, 2u);
  EXPECT_EQ(store.stats().erases, 1u);
}

TEST(Store, MultipleTablesAreIndependent) {
  Store store;
  auto& a = store.open_table<int, int>("a");
  auto& b = store.open_table<int, int>("b");
  a.put(1, 100);
  EXPECT_FALSE(b.contains(1));
  EXPECT_TRUE(store.has_table("a"));
  EXPECT_FALSE(store.has_table("zzz"));
}

TEST(Store, WipeDropsEverything) {
  Store store;
  store.open_table<int, int>("t").put(1, 1);
  store.wipe();
  EXPECT_FALSE(store.has_table("t"));
  EXPECT_EQ((store.open_table<int, int>("t").get(1)), std::nullopt);
}

TEST(Store, SurvivesAsDurableStateAcrossLogicalCrash) {
  // The crash-recovery model: volatile state dies, the Store object lives.
  // Simulate by keeping only the Store across a "process lifetime".
  Store store;
  {
    auto& votes =
        store.open_table<std::pair<int, int>, std::string>("voted");
    votes.put({0, 4}, "digest-a");
  }
  // "restart": reopen tables and observe the durable vote.
  auto& votes = store.open_table<std::pair<int, int>, std::string>("voted");
  EXPECT_EQ(votes.get({0, 4}), "digest-a");
}

}  // namespace
}  // namespace hammerhead::storage

// Unit tests: the Bullshark committer — direct-commit rules, walk-back
// chains, skips, deterministic ordering, schedule-change interplay, pruning.
#include <gtest/gtest.h>

#include "hammerhead/consensus/committer.h"
#include "test_util.h"

namespace hammerhead::consensus {
namespace {

using test::DagBuilder;

/// A policy whose leaders are scripted per anchor round — lets tests control
/// exactly which vertex is the anchor.
class ScriptedPolicy final : public core::LeaderSchedulePolicy {
 public:
  explicit ScriptedPolicy(std::vector<ValidatorIndex> script)
      : script_(std::move(script)) {}

  ValidatorIndex leader(Round round) const override {
    return script_[core::anchor_slot(round) % script_.size()];
  }
  std::string name() const override { return "scripted"; }

 private:
  std::vector<ValidatorIndex> script_;
};

struct Fixture {
  explicit Fixture(std::size_t n, std::vector<ValidatorIndex> script,
                   CommitRule rule = CommitRule::DirectSupport)
      : builder(n),
        dag(builder.committee()),
        policy(std::move(script)),
        committer(builder.committee(), dag, policy,
                  [this](const CommittedSubDag& sd) { commits.push_back(sd); },
                  rule) {}

  /// Insert and notify, as the node layer does.
  void feed(const dag::CertPtr& cert) {
    dag.insert(cert);
    committer.on_cert_inserted(cert);
  }

  std::vector<ValidatorIndex> all() const {
    std::vector<ValidatorIndex> v(builder.committee().size());
    for (std::size_t i = 0; i < v.size(); ++i)
      v[i] = static_cast<ValidatorIndex>(i);
    return v;
  }

  /// Feed full rounds 0..last (every validator, full parent links).
  std::vector<dag::CertPtr> feed_full_rounds(Round last) {
    std::vector<dag::CertPtr> prev;
    for (ValidatorIndex a : all()) {
      auto c = builder.make_cert(0, a, {});
      feed(c);
      prev.push_back(c);
    }
    for (Round r = 1; r <= last; ++r) {
      std::vector<dag::CertPtr> cur;
      const auto parents = DagBuilder::digests_of(prev);
      for (ValidatorIndex a : all()) {
        auto c = builder.make_cert(r, a, parents);
        feed(c);
        cur.push_back(c);
      }
      prev = std::move(cur);
    }
    return prev;
  }

  DagBuilder builder;
  dag::Dag dag;
  ScriptedPolicy policy;
  BullsharkCommitter committer;
  std::vector<CommittedSubDag> commits;
};

TEST(Committer, NoCommitWithoutSupport) {
  Fixture f(4, {0});
  // Rounds 0 and 1 but round-1 vertices do NOT reference the anchor (0,0).
  std::vector<dag::CertPtr> r0;
  for (ValidatorIndex a : f.all()) {
    auto c = f.builder.make_cert(0, a, {});
    f.feed(c);
    r0.push_back(c);
  }
  std::vector<Digest> without_anchor;
  for (const auto& c : r0)
    if (c->author() != 0) without_anchor.push_back(c->digest());
  for (ValidatorIndex a : f.all())
    f.feed(f.builder.make_cert(1, a, without_anchor));
  EXPECT_TRUE(f.commits.empty());
  EXPECT_EQ(f.committer.last_anchor_round(), -2);
}

TEST(Committer, CommitsAnchorWithValidityThresholdSupport) {
  Fixture f(4, {0});  // anchor of round 0 is validator 0
  f.feed_full_rounds(1);
  // 4 round-1 vertices all reference the anchor: support 4 >= f+1 = 2.
  ASSERT_EQ(f.commits.size(), 1u);
  EXPECT_EQ(f.commits[0].anchor->author(), 0u);
  EXPECT_EQ(f.commits[0].anchor->round(), 0u);
  // Sub-DAG = the anchor itself (its causal history is just itself).
  EXPECT_EQ(f.commits[0].vertices.size(), 1u);
  EXPECT_EQ(f.committer.last_anchor_round(), 0);
}

TEST(Committer, ExactlyValidityThresholdSuffices) {
  Fixture f(4, {0});
  std::vector<dag::CertPtr> r0;
  for (ValidatorIndex a : f.all()) {
    auto c = f.builder.make_cert(0, a, {});
    f.feed(c);
    r0.push_back(c);
  }
  const Digest anchor_digest = r0[0]->digest();
  std::vector<Digest> with_anchor{anchor_digest, r0[1]->digest(),
                                  r0[2]->digest()};
  std::vector<Digest> without{r0[1]->digest(), r0[2]->digest(),
                              r0[3]->digest()};
  // One vote: not enough (f+1 = 2).
  f.feed(f.builder.make_cert(1, 1, with_anchor));
  EXPECT_TRUE(f.commits.empty());
  f.feed(f.builder.make_cert(1, 2, without));
  EXPECT_TRUE(f.commits.empty());
  // Second vote: commit.
  f.feed(f.builder.make_cert(1, 3, with_anchor));
  ASSERT_EQ(f.commits.size(), 1u);
}

TEST(Committer, SuccessiveAnchorsCommitInOrder) {
  Fixture f(4, {0, 1, 2, 3});
  f.feed_full_rounds(7);
  // Anchors at rounds 0,2,4,6 all committed (round 7 votes for round 6).
  ASSERT_EQ(f.commits.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(f.commits[i].anchor->round(), 2 * i);
    EXPECT_EQ(f.commits[i].commit_index, i + 1);
  }
}

TEST(Committer, SubDagsPartitionTheDag) {
  Fixture f(4, {0, 1, 2, 3});
  f.feed_full_rounds(7);
  // Every vertex is delivered exactly once across all sub-DAGs.
  std::set<Digest> seen;
  std::size_t total = 0;
  for (const auto& sd : f.commits) {
    for (const auto& v : sd.vertices) {
      EXPECT_TRUE(seen.insert(v->digest()).second) << "duplicate delivery";
      ++total;
    }
  }
  // Committed anchors cover rounds 0..6; everything in rounds 0..5 plus the
  // round-6 anchor is ordered (round 6 non-anchors + round 7 await later
  // anchors).
  EXPECT_EQ(total, 4u * 6u + 1u);
}

TEST(Committer, DeliveryOrderIsRoundThenAuthor) {
  Fixture f(4, {0, 1, 2, 3});
  f.feed_full_rounds(7);
  for (const auto& sd : f.commits) {
    for (std::size_t i = 1; i < sd.vertices.size(); ++i) {
      const auto& a = sd.vertices[i - 1];
      const auto& b = sd.vertices[i];
      EXPECT_TRUE(a->round() < b->round() ||
                  (a->round() == b->round() && a->author() < b->author()));
    }
  }
}

TEST(Committer, MissingAnchorIsSkippedAndLaterAnchorCollectsHistory) {
  // Anchor of round 2 (validator 1) never produces a vertex; the round-4
  // anchor commits and sweeps rounds 1-3 into its sub-DAG.
  Fixture f(4, {0, 1, 2, 3});
  std::vector<dag::CertPtr> prev;
  for (ValidatorIndex a : f.all()) {
    auto c = f.builder.make_cert(0, a, {});
    f.feed(c);
    prev.push_back(c);
  }
  for (Round r = 1; r <= 5; ++r) {
    std::vector<dag::CertPtr> cur;
    const auto parents = DagBuilder::digests_of(prev);
    for (ValidatorIndex a : f.all()) {
      if (r == 2 && a == 1) continue;  // crashed leader of round 2
      auto c = f.builder.make_cert(r, a, parents);
      f.feed(c);
      cur.push_back(c);
    }
    prev = std::move(cur);
  }
  ASSERT_EQ(f.commits.size(), 2u);
  EXPECT_EQ(f.commits[0].anchor->round(), 0u);
  EXPECT_EQ(f.commits[1].anchor->round(), 4u);
  EXPECT_EQ(f.committer.stats().skipped_anchors, 1u);
  // The round-4 sub-DAG contains rounds 1,2,3 vertices.
  bool saw_round2 = false;
  for (const auto& v : f.commits[1].vertices)
    if (v->round() == 2) saw_round2 = true;
  EXPECT_TRUE(saw_round2);
}

TEST(Committer, WalkBackCommitsEarlierAnchorViaPath) {
  // Round-2 anchor gets NO direct votes (nobody at round 3 links it... but
  // links at round 3 go to all parents of round 2 vertices).  Construct:
  // round-3 vertices reference only 3 of the 4 round-2 vertices, excluding
  // the anchor, so the round-2 anchor lacks direct support. The round-4
  // anchor direct-commits and reaches the round-2 anchor via a path
  // (round-4 anchor -> round 3 -> round 2? no: the excluded vertex has no
  // incoming edges from round 3). Instead exclude only ONE voter so support
  // stays below threshold: f+1 = 2, so allow exactly 1 vote.
  Fixture f(4, {0, 0, 0});  // validator 0 leads every anchor round
  std::vector<dag::CertPtr> r0, r1, r2, r3;
  for (ValidatorIndex a : f.all()) {
    auto c = f.builder.make_cert(0, a, {});
    f.feed(c);
    r0.push_back(c);
  }
  for (ValidatorIndex a : f.all()) {
    auto c = f.builder.make_cert(1, a, DagBuilder::digests_of(r0));
    f.feed(c);
    r1.push_back(c);
  }
  // round 0 anchor (0,0) already committed by r1 votes. Now round 2:
  for (ValidatorIndex a : f.all()) {
    auto c = f.builder.make_cert(2, a, DagBuilder::digests_of(r1));
    f.feed(c);
    r2.push_back(c);
  }
  // Round 3: only validator 1 votes for the round-2 anchor (support 1 < 2);
  // others reference the non-anchor round-2 vertices.
  std::vector<Digest> with_anchor{r2[0]->digest(), r2[1]->digest(),
                                  r2[2]->digest()};
  std::vector<Digest> without{r2[1]->digest(), r2[2]->digest(),
                              r2[3]->digest()};
  f.feed(f.builder.make_cert(3, 1, with_anchor));
  for (ValidatorIndex a : {0u, 2u, 3u})
    f.feed(f.builder.make_cert(3, a, without));
  const std::size_t commits_before = f.commits.size();

  // Round 4 anchor (0,4) references ALL round-3 vertices, and round 5 gives
  // it direct support. Walk-back: path from (0,4) -> (1,3) -> (0,2) exists,
  // so the round-2 anchor commits transitively before it.
  std::vector<dag::CertPtr> full_r3 = f.dag.round_certs(3);
  for (ValidatorIndex a : f.all())
    f.feed(f.builder.make_cert(4, a, DagBuilder::digests_of(full_r3)));
  auto r4 = f.dag.round_certs(4);
  for (ValidatorIndex a : f.all())
    f.feed(f.builder.make_cert(5, a, DagBuilder::digests_of(r4)));

  ASSERT_GE(f.commits.size(), commits_before + 2);
  EXPECT_EQ(f.commits[commits_before].anchor->round(), 2u);
  EXPECT_EQ(f.commits[commits_before + 1].anchor->round(), 4u);
  EXPECT_EQ(f.committer.stats().skipped_anchors, 0u);
}

TEST(Committer, PaperTriggerRequiresSingleVertexQuorum) {
  // PaperTrigger: commit only when one round-(a+2) vertex carries >= f+1
  // stake of round-(a+1) parents voting for the anchor.
  Fixture f(4, {0}, CommitRule::PaperTrigger);
  f.feed_full_rounds(1);
  EXPECT_TRUE(f.commits.empty());  // needs round a+2 vertex
  auto r1 = f.dag.round_certs(1);
  f.feed(f.builder.make_cert(2, 0, DagBuilder::digests_of(r1)));
  ASSERT_EQ(f.commits.size(), 1u);
  EXPECT_EQ(f.commits[0].anchor->round(), 0u);
}

TEST(Committer, PaperTriggerNotFooledByNonVotingParents) {
  Fixture f(4, {0}, CommitRule::PaperTrigger);
  std::vector<dag::CertPtr> r0;
  for (ValidatorIndex a : f.all()) {
    auto c = f.builder.make_cert(0, a, {});
    f.feed(c);
    r0.push_back(c);
  }
  // Only validator 1 votes for the anchor at round 1.
  std::vector<Digest> with_anchor{r0[0]->digest(), r0[1]->digest(),
                                  r0[2]->digest()};
  std::vector<Digest> without{r0[1]->digest(), r0[2]->digest(),
                              r0[3]->digest()};
  std::vector<dag::CertPtr> r1;
  r1.push_back(f.builder.make_cert(1, 1, with_anchor));
  for (ValidatorIndex a : {0u, 2u, 3u})
    r1.push_back(f.builder.make_cert(1, a, without));
  for (auto& c : r1) f.feed(c);
  // Round-2 vertex referencing all round-1: only 1 of its parents votes.
  f.feed(f.builder.make_cert(2, 0, DagBuilder::digests_of(r1)));
  EXPECT_TRUE(f.commits.empty());
}

TEST(Committer, IgnoresCertsBelowLastAnchor) {
  Fixture f(4, {0, 1, 2, 3});
  f.feed_full_rounds(3);
  const auto commits = f.commits.size();
  // A late vertex at round 0 (new author slot impossible — use a fresh
  // digest at an old round via different parents): the committer must not
  // reprocess.
  auto stale = f.builder.make_cert(0, 0, {});
  f.committer.on_cert_inserted(stale);  // already ordered rounds
  EXPECT_EQ(f.commits.size(), commits);
}

TEST(Committer, CommitTimeUsesClock) {
  DagBuilder b(4);
  dag::Dag dag(b.committee());
  ScriptedPolicy policy({0});
  SimTime fake_now = 12345;
  std::vector<CommittedSubDag> commits;
  BullsharkCommitter committer(
      b.committee(), dag, policy,
      [&](const CommittedSubDag& sd) { commits.push_back(sd); },
      CommitRule::DirectSupport, [&] { return fake_now; });
  std::vector<dag::CertPtr> r0;
  for (ValidatorIndex a = 0; a < 4; ++a) {
    auto c = b.make_cert(0, a, {});
    dag.insert(c);
    committer.on_cert_inserted(c);
    r0.push_back(c);
  }
  for (ValidatorIndex a = 0; a < 4; ++a) {
    auto c = b.make_cert(1, a, DagBuilder::digests_of(r0));
    dag.insert(c);
    committer.on_cert_inserted(c);
  }
  ASSERT_EQ(commits.size(), 1u);
  EXPECT_EQ(commits[0].commit_time, 12345);
}

TEST(Committer, PruneOrderedBelowForgetsMarkers) {
  Fixture f(4, {0, 1, 2, 3});
  f.feed_full_rounds(7);
  const Digest old_digest = f.commits[0].anchor->digest();
  EXPECT_TRUE(f.committer.is_ordered(old_digest));
  f.committer.prune_ordered_below(2);
  EXPECT_FALSE(f.committer.is_ordered(old_digest));
  // Recent markers survive.
  EXPECT_TRUE(f.committer.is_ordered(f.commits.back().anchor->digest()));
}

// ---------------------------------------------- schedule-change interplay

struct HammerHeadFixture {
  HammerHeadFixture(std::size_t n, core::HammerHeadConfig cfg)
      : builder(n),
        dag(builder.committee()),
        policy(builder.committee(), 9, cfg),
        committer(builder.committee(), dag, policy,
                  [this](const CommittedSubDag& sd) {
                    commits.push_back(sd);
                  }) {
  }

  void feed_full_rounds(Round last) {
    std::vector<dag::CertPtr> prev;
    for (ValidatorIndex a = 0; a < builder.committee().size(); ++a) {
      auto c = builder.make_cert(0, a, {});
      dag.insert(c);
      committer.on_cert_inserted(c);
      prev.push_back(c);
    }
    for (Round r = 1; r <= last; ++r) {
      std::vector<dag::CertPtr> cur;
      const auto parents = DagBuilder::digests_of(prev);
      for (ValidatorIndex a = 0; a < builder.committee().size(); ++a) {
        auto c = builder.make_cert(r, a, parents);
        dag.insert(c);
        committer.on_cert_inserted(c);
        cur.push_back(c);
      }
      prev = std::move(cur);
    }
  }

  DagBuilder builder;
  dag::Dag dag;
  core::HammerHeadPolicy policy;
  BullsharkCommitter committer;
  std::vector<CommittedSubDag> commits;
};

TEST(Committer, RoundsCadenceChangesScheduleAndKeepsDeliveryUnique) {
  core::HammerHeadConfig cfg;
  cfg.cadence = core::ScheduleCadence::rounds(4);
  HammerHeadFixture f(4, cfg);
  f.feed_full_rounds(21);
  EXPECT_GE(f.committer.stats().schedule_changes, 3u);
  EXPECT_GE(f.policy.history()->num_epochs(), 4u);
  // Despite retroactive re-evaluation, no vertex is delivered twice.
  std::set<Digest> seen;
  for (const auto& sd : f.commits)
    for (const auto& v : sd.vertices)
      EXPECT_TRUE(seen.insert(v->digest()).second);
  // And anchors are strictly increasing in round.
  for (std::size_t i = 1; i < f.commits.size(); ++i)
    EXPECT_GT(f.commits[i].anchor->round(), f.commits[i - 1].anchor->round());
}

TEST(Committer, CommitsCadenceEpochStartsAfterBoundaryAnchor) {
  core::HammerHeadConfig cfg;
  cfg.cadence = core::ScheduleCadence::commits(3);
  HammerHeadFixture f(4, cfg);
  f.feed_full_rounds(21);
  ASSERT_GE(f.committer.stats().schedule_changes, 2u);
  // With full rounds every anchor commits: boundary anchors are commits
  // 3, 6, 9, ... at rounds 4, 10, 16 (2*(k-1)); epochs start 2 rounds later.
  const auto& epochs = f.policy.history()->epochs();
  ASSERT_GE(epochs.size(), 3u);
  EXPECT_EQ(epochs[1].initial_round, 6u);
  EXPECT_EQ(epochs[2].initial_round, 12u);
  std::set<Digest> seen;
  for (const auto& sd : f.commits)
    for (const auto& v : sd.vertices)
      EXPECT_TRUE(seen.insert(v->digest()).second);
}

TEST(Committer, StatsTrackProgress) {
  Fixture f(4, {0, 1, 2, 3});
  f.feed_full_rounds(7);
  const auto& s = f.committer.stats();
  EXPECT_EQ(s.committed_anchors, 4u);
  EXPECT_EQ(s.skipped_anchors, 0u);
  EXPECT_EQ(s.ordered_vertices, 4u * 6u + 1u);
  EXPECT_EQ(s.schedule_changes, 0u);
}

}  // namespace
}  // namespace hammerhead::consensus

// End-to-end harness tests: whole-system runs through run_experiment.
#include <gtest/gtest.h>

#include "hammerhead/harness/experiment.h"

namespace hammerhead::harness {
namespace {

ExperimentConfig small_config() {
  ExperimentConfig cfg;
  cfg.num_validators = 7;
  cfg.seed = 7;
  cfg.latency = LatencyKind::Uniform;
  cfg.uniform_latency_min = millis(10);
  cfg.uniform_latency_max = millis(30);
  cfg.node.leader_timeout = millis(300);
  cfg.node.min_round_delay = millis(50);
  cfg.duration = seconds(10);
  cfg.warmup = seconds(2);
  cfg.load_tps = 200;
  return cfg;
}

TEST(Harness, FaultlessHammerHeadCommitsLoad) {
  ExperimentConfig cfg = small_config();
  cfg.policy = PolicyKind::HammerHead;
  const ExperimentResult r = run_experiment(cfg);
  EXPECT_GT(r.committed_anchors, 20u);
  EXPECT_GT(r.committed, 1000u);
  EXPECT_GT(r.throughput_tps, 100.0);
  EXPECT_GT(r.avg_latency_s, 0.0);
  EXPECT_LT(r.avg_latency_s, 5.0);
  // Commits cadence of 10 over dozens of commits => several epochs.
  EXPECT_GE(r.schedule_changes, 2u);
}

TEST(Harness, FaultlessRoundRobinCommitsLoad) {
  ExperimentConfig cfg = small_config();
  cfg.policy = PolicyKind::RoundRobin;
  const ExperimentResult r = run_experiment(cfg);
  EXPECT_GT(r.committed_anchors, 20u);
  EXPECT_GT(r.throughput_tps, 100.0);
  EXPECT_EQ(r.schedule_changes, 0u);
}

TEST(Harness, CrashFaultsHammerHeadKeepsThroughput) {
  ExperimentConfig cfg = small_config();
  cfg.num_validators = 10;
  cfg.faults = 3;
  cfg.duration = seconds(15);

  cfg.policy = PolicyKind::HammerHead;
  const ExperimentResult hh = run_experiment(cfg);
  cfg.policy = PolicyKind::RoundRobin;
  const ExperimentResult rr = run_experiment(cfg);

  // Both still commit (f faults tolerated) ...
  EXPECT_GT(hh.committed_anchors, 10u);
  EXPECT_GT(rr.committed_anchors, 5u);
  // ... but HammerHead stops electing the crashed leaders, so it commits
  // strictly more anchors and with lower latency.
  EXPECT_GT(hh.committed_anchors, rr.committed_anchors);
  EXPECT_LT(hh.avg_latency_s, rr.avg_latency_s);
}

TEST(Harness, AnchorsByAuthorAvoidCrashedUnderHammerHead) {
  ExperimentConfig cfg = small_config();
  cfg.num_validators = 10;
  cfg.faults = 3;
  cfg.duration = seconds(15);
  cfg.policy = PolicyKind::HammerHead;
  const ExperimentResult r = run_experiment(cfg);
  // Crashed validators are the 3 highest indices; crashed at t=0 they never
  // produce certificates, so they can author no committed anchors.
  std::uint64_t crashed_anchors = 0, live_anchors = 0;
  for (std::size_t v = 0; v < 10; ++v) {
    if (v >= 7)
      crashed_anchors += r.anchors_by_author[v];
    else
      live_anchors += r.anchors_by_author[v];
  }
  EXPECT_EQ(crashed_anchors, 0u);
  EXPECT_GT(live_anchors, 10u);
}

TEST(Harness, ResultRowFormats) {
  ExperimentResult r;
  r.policy = "hammerhead";
  r.offered_load_tps = 1000;
  r.throughput_tps = 999.5;
  r.avg_latency_s = 1.234;
  EXPECT_FALSE(result_header().empty());
  EXPECT_NE(result_row(r).find("hammerhead"), std::string::npos);
}

}  // namespace
}  // namespace hammerhead::harness

// Tests: monitoring substrate (counters, gauges, histograms, exposition).
#include <gtest/gtest.h>

#include "hammerhead/monitor/metrics_registry.h"

namespace hammerhead::monitor {
namespace {

TEST(Counter, IncrementsMonotonically) {
  Counter c;
  c.increment();
  c.increment(2.5);
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
  EXPECT_THROW(c.increment(-1), InvariantViolation);
}

TEST(Gauge, SetAndAdd) {
  Gauge g;
  g.set(10);
  g.add(-3);
  EXPECT_DOUBLE_EQ(g.value(), 7);
}

TEST(Histogram, BucketsObservations) {
  Histogram h({1.0, 2.0, 5.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(1.5);
  h.observe(10.0);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 13.5);
  EXPECT_EQ(h.bucket_counts()[0], 1u);  // <= 1
  EXPECT_EQ(h.bucket_counts()[1], 2u);  // (1, 2]
  EXPECT_EQ(h.bucket_counts()[2], 0u);  // (2, 5]
  EXPECT_EQ(h.bucket_counts()[3], 1u);  // > 5 (overflow)
}

TEST(Histogram, BoundaryGoesToLowerBucket) {
  Histogram h({1.0, 2.0});
  h.observe(1.0);  // 'le' semantics: lands in the <=1 bucket
  EXPECT_EQ(h.bucket_counts()[0], 1u);
}

TEST(Histogram, QuantileInterpolates) {
  Histogram h({1.0, 2.0, 4.0});
  for (int i = 0; i < 100; ++i) h.observe(0.5);   // <=1
  for (int i = 0; i < 100; ++i) h.observe(1.5);   // <=2
  const double median = h.quantile(0.5);
  EXPECT_GE(median, 0.5);
  EXPECT_LE(median, 1.5);
  const double p99 = h.quantile(0.99);
  EXPECT_GT(p99, 1.0);
  EXPECT_LE(p99, 2.0);
}

TEST(Histogram, QuantileOnEmptyIsZero) {
  Histogram h({1.0});
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(Histogram, RejectsUnsortedBounds) {
  EXPECT_THROW(Histogram({2.0, 1.0}), InvariantViolation);
}

TEST(LatencyBuckets, CoverPaperRange) {
  const auto buckets = latency_seconds_buckets();
  EXPECT_GE(buckets.size(), 10u);
  EXPECT_LE(buckets.front(), 0.1);   // sub-100ms resolution
  EXPECT_GE(buckets.back(), 15.0);   // covers Figure 2's worst latencies
  EXPECT_TRUE(std::is_sorted(buckets.begin(), buckets.end()));
}

TEST(Registry, GetOrCreateReturnsSameInstrument) {
  MetricsRegistry reg;
  reg.counter("commits_total").increment();
  reg.counter("commits_total").increment();
  EXPECT_DOUBLE_EQ(reg.counter("commits_total").value(), 2.0);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(Registry, LabelsDistinguishSeries) {
  MetricsRegistry reg;
  reg.counter("commits_total", {{"validator", "0"}}).increment();
  reg.counter("commits_total", {{"validator", "1"}}).increment(5);
  EXPECT_DOUBLE_EQ(
      reg.counter("commits_total", {{"validator", "0"}}).value(), 1.0);
  EXPECT_DOUBLE_EQ(
      reg.counter("commits_total", {{"validator", "1"}}).value(), 5.0);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(Registry, KindMismatchThrows) {
  MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), InvariantViolation);
}

TEST(Registry, ExposesPrometheusTextFormat) {
  MetricsRegistry reg;
  reg.counter("commits_total", {{"validator", "3"}}).increment(7);
  reg.gauge("round").set(42);
  reg.histogram("latency_seconds", {1.0, 2.0}).observe(1.5);
  const std::string text = reg.expose();
  EXPECT_NE(text.find("commits_total{validator=\"3\"} 7"), std::string::npos);
  EXPECT_NE(text.find("round 42"), std::string::npos);
  EXPECT_NE(text.find("latency_seconds_bucket{le=\"2\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("latency_seconds_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("latency_seconds_sum 1.5"), std::string::npos);
  EXPECT_NE(text.find("latency_seconds_count 1"), std::string::npos);
}

TEST(Registry, HistogramBucketsAreCumulativeInExposition) {
  MetricsRegistry reg;
  auto& h = reg.histogram("lat", {1.0, 2.0});
  h.observe(0.5);
  h.observe(1.5);
  const std::string text = reg.expose();
  EXPECT_NE(text.find("lat_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"2\"} 2"), std::string::npos);
}

}  // namespace
}  // namespace hammerhead::monitor

// ------------------------------------------------------- validator export

#include "cluster_util.h"
#include "hammerhead/node/monitoring.h"

namespace hammerhead::node {
namespace {

TEST(ValidatorExporter, ScrapesLiveCommittee) {
  test::ClusterOptions o;
  o.n = 4;
  o.node = test::fast_node_config();
  test::Cluster c(o);
  c.start();
  c.run_for(seconds(3));

  monitor::MetricsRegistry reg;
  for (ValidatorIndex v = 0; v < 4; ++v)
    export_validator_metrics(c.validator(v), reg);

  const std::string text = reg.expose();
  EXPECT_NE(text.find("hh_commit_index{validator=\"0\"}"), std::string::npos);
  EXPECT_NE(text.find("hh_headers_proposed{validator=\"3\"}"),
            std::string::npos);
  // Values reflect actual progress.
  EXPECT_GT(reg.gauge("hh_commit_index", {{"validator", "0"}}).value(), 5.0);
  EXPECT_GT(reg.gauge("hh_last_proposed_round", {{"validator", "1"}}).value(),
            10.0);
  EXPECT_DOUBLE_EQ(reg.gauge("hh_crashed", {{"validator", "2"}}).value(), 0.0);
}

TEST(ValidatorExporter, ScrapeIsIdempotentAndTracksCrash) {
  test::ClusterOptions o;
  o.n = 4;
  o.node = test::fast_node_config();
  test::Cluster c(o);
  c.start();
  c.run_for(seconds(1));
  monitor::MetricsRegistry reg;
  export_validator_metrics(c.validator(2), reg);
  const std::size_t series = reg.size();
  c.validator(2).crash();
  export_validator_metrics(c.validator(2), reg);
  EXPECT_EQ(reg.size(), series);  // same series updated, none duplicated
  EXPECT_DOUBLE_EQ(reg.gauge("hh_crashed", {{"validator", "2"}}).value(), 1.0);
}

}  // namespace
}  // namespace hammerhead::node

// Property-based safety tests: across randomized executions (seeds x fault
// patterns x cadences), every pair of honest validators delivers the same
// vertex sequence (BAB Total Order) and derives the same schedule epochs
// (Proposition 1). Parameterized gtest sweeps play the role of a fuzzer with
// reproducible seeds.
#include <gtest/gtest.h>

#include "cluster_util.h"

namespace hammerhead {
namespace {

using test::Cluster;
using test::ClusterOptions;
using test::fast_node_config;

struct SafetyCase {
  std::uint64_t seed;
  std::size_t n;
  std::size_t crashes;       // crashed at t=1s
  bool rounds_cadence;       // rounds(8) vs commits(4)
  bool adversarial_pre_gst;  // GST at 3s with adversarial delays before
};

std::string case_name(const testing::TestParamInfo<SafetyCase>& info) {
  const auto& c = info.param;
  std::string s = "seed" + std::to_string(c.seed) + "_n" + std::to_string(c.n) +
                  "_f" + std::to_string(c.crashes);
  s += c.rounds_cadence ? "_rounds" : "_commits";
  if (c.adversarial_pre_gst) s += "_adv";
  return s;
}

class SafetySweep : public testing::TestWithParam<SafetyCase> {};

TEST_P(SafetySweep, TotalOrderAndScheduleAgreement) {
  const SafetyCase& p = GetParam();
  ClusterOptions o;
  o.n = p.n;
  o.seed = p.seed;
  o.node = fast_node_config();
  o.hh.cadence = p.rounds_cadence ? core::ScheduleCadence::rounds(8)
                                  : core::ScheduleCadence::commits(4);
  if (p.adversarial_pre_gst) {
    o.net.gst = seconds(3);
    o.net.delta = seconds(1);
    o.net.max_adversarial_delay = seconds(2);
  }
  Cluster c(o);
  c.start();
  c.run_for(seconds(1));
  for (std::size_t i = 0; i < p.crashes; ++i)
    c.validator(static_cast<ValidatorIndex>(p.n - 1 - i)).crash();
  c.run_for(seconds(11));

  std::vector<ValidatorIndex> honest;
  for (std::size_t v = 0; v < p.n - p.crashes; ++v)
    honest.push_back(static_cast<ValidatorIndex>(v));

  std::string why;
  EXPECT_TRUE(c.total_order_holds(&why)) << why;
  EXPECT_TRUE(c.schedules_agree(honest));
  // The runs must be non-trivial.
  EXPECT_GT(c.min_delivered(honest), 30u);
}

std::vector<SafetyCase> make_cases() {
  std::vector<SafetyCase> cases;
  // Seeds x committee sizes x crash counts, both cadences.
  for (std::uint64_t seed : {11ull, 22ull, 33ull}) {
    cases.push_back({seed, 4, 0, false, false});
    cases.push_back({seed, 4, 1, false, false});
    cases.push_back({seed, 7, 2, false, false});
    cases.push_back({seed, 7, 2, true, false});
    cases.push_back({seed, 10, 3, false, false});
    cases.push_back({seed, 10, 3, true, false});
  }
  // Adversarial pre-GST scheduling.
  for (std::uint64_t seed : {44ull, 55ull}) {
    cases.push_back({seed, 7, 0, false, true});
    cases.push_back({seed, 7, 2, false, true});
    cases.push_back({seed, 7, 2, true, true});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Executions, SafetySweep,
                         testing::ValuesIn(make_cases()), case_name);

// ---------------------------------------------------------------- replays

TEST(SafetyDeterminism, IdenticalSeedsProduceIdenticalDeliveries) {
  auto run = [](std::uint64_t seed) {
    ClusterOptions o;
    o.n = 7;
    o.seed = seed;
    o.node = fast_node_config();
    Cluster c(o);
    c.start();
    c.validator(6).crash();
    c.run_for(seconds(5));
    return std::vector<Digest>(c.delivered(0));
  };
  EXPECT_EQ(run(99), run(99));
  EXPECT_NE(run(99), run(100));
}

TEST(SafetyDeterminism, CommitSequenceIndependentOfObserver) {
  // Each validator's deliveries are a prefix of the longest sequence; the
  // longest sequences across validators are permutation-free and identical
  // where they overlap (already covered by total_order_holds); here assert
  // the strongest variant on a faultless run: at the end of a quiesced run,
  // all validators delivered the exact same sequence.
  ClusterOptions o;
  o.n = 4;
  o.node = fast_node_config();
  Cluster c(o);
  c.start();
  c.run_for(seconds(5));
  // Quiesce: stop proposing by crashing everyone, then drain the network.
  // (Deliveries can differ only by in-flight tail; draining removes it.)
  c.sim().run_until(c.sim().now() + seconds(2));
  const std::size_t min_len = c.min_delivered({0, 1, 2, 3});
  for (ValidatorIndex v = 0; v < 4; ++v)
    for (std::size_t i = 0; i < min_len; ++i)
      EXPECT_EQ(c.delivered(v)[i], c.delivered(0)[i]);
}

TEST(SafetyProperty, NoEquivocationInAnyDag) {
  // Vote uniqueness means no two certificates can exist for one (author,
  // round). Verify across a run with faults: every validator's DAG has at
  // most one vertex per slot — this is structural in Dag, so check the
  // deeper property: the same slot resolves to the same digest across
  // validators' DAGs.
  ClusterOptions o;
  o.n = 7;
  o.node = fast_node_config();
  Cluster c(o);
  c.start();
  c.run_for(seconds(5));
  const auto max0 = c.validator(0).dag().max_round();
  ASSERT_TRUE(max0.has_value());
  for (Round r = c.validator(0).dag().gc_floor(); r <= *max0; ++r) {
    for (ValidatorIndex a = 0; a < 7; ++a) {
      const auto c0 = c.validator(0).dag().get(r, a);
      if (!c0) continue;
      for (ValidatorIndex v = 1; v < 7; ++v) {
        const auto cv = c.validator(v).dag().get(r, a);
        if (cv) {
          EXPECT_EQ(cv->digest(), c0->digest())
              << "slot (" << r << "," << a << ")";
        }
      }
    }
  }
}

}  // namespace
}  // namespace hammerhead

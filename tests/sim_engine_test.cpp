// Engine-swap safety net: seeded golden-replay determinism (event traces and
// commit sequences are bit-identical run over run, and the pure-integer
// engine trace matches a recorded golden hash), a 1M-timer cancel storm
// proving O(1) memory, two-tier wheel/heap ordering across the horizon, and
// the events/sec + allocations/event monitor gauges.
#include <gtest/gtest.h>

#include <vector>

#include "hammerhead/harness/experiment.h"
#include "hammerhead/harness/sweep.h"
#include "hammerhead/monitor/metrics_registry.h"
#include "hammerhead/node/monitoring.h"
#include "hammerhead/sim/simulator.h"

namespace hammerhead {
namespace {

// ------------------------------------------------------- golden replay

/// Pure-integer engine workload: random timers, cascades and cancels driven
/// by the engine's own seeded Rng. Returns an FNV-1a hash over the
/// (time, counter) execution trace — platform-independent (no floats).
std::uint64_t engine_trace_hash(std::uint64_t seed) {
  sim::Simulator sim(seed);
  std::uint64_t hash = 1469598103934665603ull;
  const auto mix = [&hash](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      hash ^= (v >> (8 * b)) & 0xff;
      hash *= 1099511628211ull;
    }
  };
  std::uint64_t fired = 0;
  std::vector<std::uint64_t> cancellable;
  std::function<void()> tick = [&] {
    mix(static_cast<std::uint64_t>(sim.now()));
    mix(++fired);
    if (fired >= 5'000) return;
    // Fan out 1-3 timers at mixed horizons (some within the wheel, some in
    // the far heap), and cancel a pending one every few events.
    const int fan = 1 + static_cast<int>(sim.rng().next_below(3));
    for (int i = 0; i < fan; ++i) {
      const SimTime delay =
          1 + static_cast<SimTime>(sim.rng().next_below(400'000));
      cancellable.push_back(sim.schedule_after(delay, tick));
    }
    if (fired % 3 == 0 && !cancellable.empty()) {
      const std::size_t pick = static_cast<std::size_t>(
          sim.rng().next_below(cancellable.size()));
      sim.cancel(cancellable[pick]);
      cancellable[pick] = cancellable.back();
      cancellable.pop_back();
    }
  };
  sim.schedule_after(1, tick);
  sim.run_to_completion();
  mix(fired);
  mix(sim.executed_events());
  return hash;
}

TEST(SimEngine, GoldenReplayTraceIsBitIdentical) {
  EXPECT_EQ(engine_trace_hash(2024), engine_trace_hash(2024));
  EXPECT_NE(engine_trace_hash(2024), engine_trace_hash(2025));
}

TEST(SimEngine, GoldenReplayMatchesRecordedRun) {
  // Recorded from the batched slab/time-wheel engine at its introduction; a
  // changed value means the engine no longer replays the (time, seq) total
  // order the determinism contract promises.
  EXPECT_EQ(engine_trace_hash(2024), 8742382262275477464ull);
}

TEST(SimEngine, ClusterCommitSequenceReplaysBitIdentical) {
  auto run = [] {
    harness::ExperimentConfig cfg;
    cfg.num_validators = 7;
    cfg.seed = 99;
    cfg.duration = seconds(20);
    cfg.warmup = seconds(2);
    cfg.load_tps = 200;
    return harness::run_experiment(cfg);
  };
  const auto a = run();
  const auto b = run();
  // Same seed => same event schedule => identical commit sequence and event
  // count, bit for bit.
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.committed_anchors, b.committed_anchors);
  EXPECT_EQ(a.skipped_anchors, b.skipped_anchors);
  EXPECT_EQ(a.last_anchor_round, b.last_anchor_round);
  EXPECT_EQ(a.anchors_by_author, b.anchors_by_author);
  EXPECT_GT(a.committed_anchors, 0u);
}

// --------------------------------------------------------- cancel storm

TEST(SimEngine, CancelStormOneMillionTimersIsO1Memory) {
  sim::Simulator sim(7);
  std::size_t max_cancelled_pending = 0;
  std::size_t max_slab = 0;
  for (int i = 0; i < 1'000'000; ++i) {
    const auto id = sim.schedule_after(
        seconds(1) + (i % 9973), [] {});
    sim.cancel(id);
    if (i % 10'000 == 0) {
      max_cancelled_pending =
          std::max(max_cancelled_pending, sim.cancelled_pending());
      max_slab = std::max(max_slab, sim.slab_slots());
    }
  }
  // Cancel frees the slot immediately (generation bump), so the slab never
  // grows past the live high-water mark, and the compaction sweep keeps the
  // stale-reference backlog bounded by the threshold — O(1) memory however
  // long the storm runs.
  EXPECT_LE(sim.slab_slots(), 4u);
  EXPECT_LE(max_slab, 4u);
  EXPECT_LE(max_cancelled_pending, 2'048u);
  EXPECT_LE(sim.cancelled_pending(), 2'048u);
  EXPECT_EQ(sim.pending_events(), 0u);

  // Nothing fires; the gauge drains to zero once the queue is walked.
  EXPECT_EQ(sim.run_to_completion(), 0u);
  EXPECT_EQ(sim.executed_events(), 0u);
  EXPECT_EQ(sim.cancelled_pending(), 0u);
}

TEST(SimEngine, ScheduleCancelFireInterleavingStaysBounded) {
  sim::Simulator sim(11);
  std::uint64_t fired = 0;
  for (int batch = 0; batch < 1'000; ++batch) {
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 100; ++i)
      ids.push_back(sim.schedule_after(1 + (i % 50), [&] { ++fired; }));
    for (std::size_t i = 0; i < ids.size(); i += 2) sim.cancel(ids[i]);
    sim.run_to_completion();
  }
  EXPECT_EQ(fired, 50'000u);
  EXPECT_LE(sim.slab_slots(), 128u);
  EXPECT_EQ(sim.cancelled_pending(), 0u);
}

// ------------------------------------------------- two-tier time wheel

TEST(SimEngine, OrderingAcrossWheelHorizonAndTies) {
  // Mix near-future (wheel) and far-future (heap) events, including exact
  // time ties across the two tiers: execution must follow (time, seq).
  sim::Simulator sim(3);
  std::vector<int> order;
  sim.schedule_after(seconds(300), [&] { order.push_back(5); });  // heap
  sim.schedule_after(millis(1), [&] { order.push_back(1); });     // wheel
  sim.schedule_after(seconds(300), [&] { order.push_back(6); });  // heap tie
  sim.schedule_after(millis(200), [&] { order.push_back(3); });   // heap
  sim.schedule_after(millis(2), [&] { order.push_back(2); });     // wheel
  sim.schedule_after(millis(200), [&] { order.push_back(4); });   // tie
  sim.run_to_completion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5, 6}));
  EXPECT_EQ(sim.stats().batches, 4u);  // 1ms, 2ms, 200ms, 300s
}

TEST(SimEngine, RawEventsInterleaveWithCallbacks) {
  sim::Simulator sim(4);
  std::vector<int> order;
  struct Ctx {
    std::vector<int>* order;
  } ctx{&order};
  sim.schedule_after(millis(5), [&] { order.push_back(2); });
  sim.schedule_raw_at(
      millis(5),
      [](void* c, std::uint64_t arg) {
        static_cast<Ctx*>(c)->order->push_back(static_cast<int>(arg));
      },
      &ctx, 3);
  sim.schedule_after(millis(1), [&] { order.push_back(1); });
  sim.run_to_completion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.stats().raw_events, 1u);
  EXPECT_EQ(sim.stats().callback_events, 2u);
}

TEST(SimEngine, ReservedOrderKeysPreserveTotalOrder) {
  // A reserved seq scheduled later still fires in its reserved position
  // among same-time events — the mechanism behind the multicast fanout.
  sim::Simulator sim(5);
  std::vector<int> order;
  struct Ctx {
    std::vector<int>* order;
  } ctx{&order};
  const auto fire = [](void* c, std::uint64_t arg) {
    static_cast<Ctx*>(c)->order->push_back(static_cast<int>(arg));
  };
  const std::uint64_t early_key = sim.reserve_seq();
  sim.schedule_after(millis(1), [&] { order.push_back(2); });
  // Scheduled after the callback above, but keyed before it.
  sim.schedule_raw_keyed(millis(1), early_key, fire, &ctx, 1);
  sim.run_to_completion();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

// --------------------------------------------------- sharded execution

/// A full cluster run with slotting + the given worker count; returns the
/// deterministic replay fingerprint (hash(jobs=1) must equal hash(jobs=K)).
harness::ExperimentResult sharded_cluster_run(
    std::size_t n, std::size_t intra_jobs,
    const std::function<void(harness::ExperimentConfig&)>& mutate = {}) {
  harness::ExperimentConfig cfg;
  cfg.num_validators = n;
  cfg.seed = 77;
  cfg.duration = seconds(4);
  cfg.warmup = seconds(1);
  cfg.load_tps = 400;
  cfg.exec_slot = 256;  // delivery/dispatch slotting: dense sharded batches
  cfg.intra_jobs = intra_jobs;
  if (mutate) mutate(cfg);
  return harness::run_experiment(cfg);
}

TEST(ShardedEngine, TraceHashIdenticalAcrossWorkerCounts) {
  const auto serial = sharded_cluster_run(10, 1);
  ASSERT_GT(serial.committed, 0u);
  for (const std::size_t jobs : {2u, 4u, 8u}) {
    const auto r = sharded_cluster_run(10, jobs);
    EXPECT_EQ(r.trace_hash, serial.trace_hash) << "jobs=" << jobs;
    EXPECT_EQ(r.sim_events, serial.sim_events) << "jobs=" << jobs;
    EXPECT_EQ(r.committed, serial.committed) << "jobs=" << jobs;
    EXPECT_EQ(r.committed_anchors, serial.committed_anchors);
    EXPECT_EQ(r.anchors_by_author, serial.anchors_by_author);
    EXPECT_GT(r.parallel_events, 0u) << "jobs=" << jobs;
  }
}

TEST(ShardedEngine, Fig1N100TraceIdenticalSerialVsSharded) {
  // The acceptance workload: fig1 at n=100. Commit counts, event counts
  // and the trace hash must be identical between jobs=1 and jobs=4.
  const auto mutate = [](harness::ExperimentConfig& cfg) {
    cfg.duration = seconds(3);
    cfg.load_tps = 1'000;
  };
  const auto serial = sharded_cluster_run(100, 1, mutate);
  const auto sharded = sharded_cluster_run(100, 4, mutate);
  ASSERT_GT(serial.committed, 0u);
  EXPECT_EQ(sharded.trace_hash, serial.trace_hash);
  EXPECT_EQ(sharded.sim_events, serial.sim_events);
  EXPECT_EQ(sharded.committed, serial.committed);
  EXPECT_EQ(sharded.committed_anchors, serial.committed_anchors);
  // The sharded run really exercised the worker pool.
  EXPECT_GT(sharded.parallel_events, serial.sim_events / 2);
}

TEST(ShardedEngine, TreeFanoutTraceIdenticalAcrossWorkerCounts) {
  // With relay trees enabled (fanout_degree > 0) the relay hops draw RNG,
  // reserve order keys and account egress from inside fanout_advance — all
  // of which replays through the staged-effect FIFO. The whole run must
  // still be bit-identical between serial and sharded execution, and the
  // relays must actually have fired.
  const auto mutate = [](harness::ExperimentConfig& cfg) {
    cfg.net.fanout_degree = 3;
  };
  const auto serial = sharded_cluster_run(10, 1, mutate);
  ASSERT_GT(serial.committed, 0u);
  for (const std::size_t jobs : {2u, 4u}) {
    const auto r = sharded_cluster_run(10, jobs, mutate);
    EXPECT_EQ(r.trace_hash, serial.trace_hash) << "jobs=" << jobs;
    EXPECT_EQ(r.sim_events, serial.sim_events) << "jobs=" << jobs;
    EXPECT_EQ(r.committed, serial.committed) << "jobs=" << jobs;
    EXPECT_EQ(r.committed_anchors, serial.committed_anchors);
    EXPECT_GT(r.parallel_events, 0u) << "jobs=" << jobs;
  }
}

TEST(ShardedEngine, TreeFanoutCommitsLikeFlatFaultless) {
  // Degree>0 reshapes delivery timing but not protocol outcomes in a
  // faultless run: the committee still commits, with message volume equal
  // to flat fanout (every recipient receives exactly once).
  const auto flat = sharded_cluster_run(10, 1);
  const auto tree = sharded_cluster_run(
      10, 1, [](harness::ExperimentConfig& cfg) { cfg.net.fanout_degree = 2; });
  ASSERT_GT(tree.committed, 0u);
  EXPECT_GT(tree.committed_anchors, flat.committed_anchors / 2);
}

TEST(ShardedEngine, ChurnAndPartitionScenariosIdenticalUnderWorkers) {
  // The sweep library's fault scenarios (link cuts + crash/recover cycles,
  // incl. the state-sync path) replay bit-identically under workers.
  for (const auto& scenario :
       {harness::scenario_partition(), harness::scenario_churn_deep()}) {
    const auto mutate = [&](harness::ExperimentConfig& cfg) {
      scenario.apply(cfg);
    };
    const auto serial = sharded_cluster_run(10, 1, mutate);
    const auto sharded = sharded_cluster_run(10, 4, mutate);
    EXPECT_EQ(sharded.trace_hash, serial.trace_hash) << scenario.name;
    EXPECT_EQ(sharded.sim_events, serial.sim_events) << scenario.name;
    EXPECT_EQ(sharded.restarts, serial.restarts) << scenario.name;
    EXPECT_EQ(sharded.state_syncs_completed, serial.state_syncs_completed);
    EXPECT_EQ(sharded.messages_held, serial.messages_held) << scenario.name;
  }
}

TEST(ShardedEngine, AllEventsOneShardRunSequentiallyInSeqOrder) {
  // Edge case: a batch whose events all share one shard has no parallelism
  // to exploit; it must fall back to the exact serial order.
  sim::Simulator sim(1, /*workers=*/4);
  std::vector<int> order;
  struct Ctx {
    std::vector<int>* order;
  } ctx{&order};
  for (int i = 0; i < 16; ++i)
    sim.schedule_raw_at(
        millis(1),
        [](void* c, std::uint64_t arg) {
          static_cast<Ctx*>(c)->order->push_back(static_cast<int>(arg));
        },
        &ctx, static_cast<std::uint64_t>(i), /*shard=*/7);
  sim.run_to_completion();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(ShardedEngine, OneEventPerShardReplaysEffectsInSeqOrder) {
  // Edge case: every event on its own shard — maximal fan-out. The events
  // run concurrently, but their staged effects (defer) must replay in
  // exact seq order, and follow-up timers must fire.
  sim::Simulator sim(2, /*workers=*/4);
  std::vector<int> replay_order;
  std::uint64_t timers_fired = 0;
  for (int i = 0; i < 16; ++i) {
    sim.schedule_after(
        millis(2),
        [&sim, &replay_order, &timers_fired, i] {
          EXPECT_TRUE(sim.staging());
          sim.defer([&replay_order, i] { replay_order.push_back(i); });
          // The follow-up tick also runs sharded, so its own shared-counter
          // effect rides the defer channel too.
          sim.schedule_after(
              millis(1),
              [&sim, &timers_fired] {
                sim.defer([&timers_fired] { ++timers_fired; });
              },
              /*shard=*/static_cast<sim::ShardId>(i));
        },
        /*shard=*/static_cast<sim::ShardId>(i));
  }
  sim.run_to_completion();
  ASSERT_EQ(replay_order.size(), 16u);
  for (int i = 0; i < 16; ++i)
    EXPECT_EQ(replay_order[static_cast<size_t>(i)], i);
  EXPECT_EQ(timers_fired, 16u);
  EXPECT_GE(sim.stats().parallel_segments, 2u);
  // Both the fan-out wave and the follow-up timer wave ran sharded.
  EXPECT_EQ(sim.stats().parallel_events, 32u);
}

TEST(ShardedEngine, StagedCancelOfPendingTimerApplies) {
  // A sharded event cancels a timer armed earlier from serial context: the
  // cancel is staged and must take effect at replay, before the timer's
  // tick arrives.
  sim::Simulator sim(3, /*workers=*/2);
  bool fired = false;
  const auto id = sim.schedule_after(millis(10), [&fired] { fired = true; });
  for (int i = 0; i < 8; ++i)
    sim.schedule_after(
        millis(1),
        [&sim, id, i] {
          if (i == 3) sim.cancel(id);
        },
        /*shard=*/static_cast<sim::ShardId>(i % 4));
  sim.run_to_completion();
  EXPECT_FALSE(fired);
  EXPECT_GT(sim.stats().staged_ops, 0u);
}

TEST(ShardedEngine, CancelStormUnderWorkersStaysO1Memory) {
  // The cancel-storm regression with an active worker pool: storms come
  // from serial context, so the slab/backlog bounds must hold unchanged.
  sim::Simulator sim(7, /*workers=*/4);
  for (int i = 0; i < 200'000; ++i) {
    const auto id = sim.schedule_after(seconds(1) + (i % 9973), [] {});
    sim.cancel(id);
  }
  EXPECT_LE(sim.slab_slots(), 4u);
  EXPECT_LE(sim.cancelled_pending(), 2'048u);
  EXPECT_EQ(sim.run_to_completion(), 0u);
  EXPECT_EQ(sim.executed_events(), 0u);
}

// -------------------------------------------------------------- gauges

TEST(SimEngine, EngineGaugesExport) {
  harness::ExperimentConfig cfg;
  cfg.num_validators = 4;
  cfg.seed = 5;
  cfg.duration = seconds(5);
  cfg.warmup = seconds(1);
  cfg.load_tps = 50;
  const auto r = harness::run_experiment(cfg);
  EXPECT_GT(r.sim_events, 0u);
  EXPECT_GT(r.events_per_sec_wall, 0.0);
  EXPECT_GE(r.allocs_per_event, 0.0);
  // Engine-structure allocations amortize away: far less than one per event.
  EXPECT_LT(r.allocs_per_event, 1.0);
}

TEST(SimEngine, MonitorExportsEngineSeries) {
  sim::Simulator sim(1);
  net::Network net(sim,
                   std::make_unique<net::UniformLatencyModel>(millis(1),
                                                              millis(2)),
                   net::NetConfig{}, 4);
  sim.schedule_after(1, [] {});
  sim.run_to_completion();
  monitor::MetricsRegistry registry;
  node::export_engine_metrics(sim, net, 123.0, registry);
  const std::string text = registry.expose();
  EXPECT_NE(text.find("hh_sim_events_executed"), std::string::npos);
  EXPECT_NE(text.find("hh_sim_allocs_per_event"), std::string::npos);
  EXPECT_NE(text.find("hh_sim_events_per_sec_wall"), std::string::npos);
  EXPECT_NE(text.find("hh_net_fanouts_pooled"), std::string::npos);
  EXPECT_EQ(registry.gauge("hh_sim_events_per_sec_wall").value(), 123.0);
  EXPECT_EQ(registry.gauge("hh_sim_events_executed").value(), 1.0);
}

}  // namespace
}  // namespace hammerhead

// Tests: execution substrate — deterministic state machines, checkpointing,
// and replica state agreement on top of live committees (SMR end to end).
#include <gtest/gtest.h>

#include "cluster_util.h"
#include "hammerhead/exec/state_machine.h"
#include "test_util.h"

namespace hammerhead::exec {
namespace {

dag::Transaction tx(TxId id) { return dag::Transaction{id, 0, 0}; }

TEST(SharedCounter, CountsApplications) {
  SharedCounter sm;
  for (TxId i = 0; i < 10; ++i) sm.apply(tx(i));
  EXPECT_EQ(sm.value(), 10u);
  EXPECT_EQ(sm.applied_count(), 10u);
}

TEST(SharedCounter, DigestIsOrderSensitive) {
  SharedCounter a, b;
  a.apply(tx(1));
  a.apply(tx(2));
  b.apply(tx(2));
  b.apply(tx(1));
  EXPECT_NE(a.state_digest(), b.state_digest());
}

TEST(SharedCounter, SameSequenceSameDigest) {
  SharedCounter a, b;
  for (TxId i = 0; i < 50; ++i) {
    a.apply(tx(i * 7));
    b.apply(tx(i * 7));
  }
  EXPECT_EQ(a.state_digest(), b.state_digest());
}

TEST(KvStateMachine, RoutesByKey) {
  KvStateMachine sm(4);
  sm.apply(tx(0));
  sm.apply(tx(4));
  sm.apply(tx(1));
  EXPECT_EQ(sm.cell_count(0), 2u);
  EXPECT_EQ(sm.cell_count(1), 1u);
  EXPECT_EQ(sm.cell_count(2), 0u);
  EXPECT_EQ(sm.applied_count(), 3u);
}

TEST(KvStateMachine, DetectsCrossCellReordering) {
  KvStateMachine a(4), b(4);
  a.apply(tx(1));
  a.apply(tx(5));  // same cell as 1: order matters inside the cell
  b.apply(tx(5));
  b.apply(tx(1));
  EXPECT_NE(a.state_digest(), b.state_digest());
}

TEST(ExecutionEngine, AppliesSubdagsAndCheckpoints) {
  // Feed hand-made sub-DAGs through the engine.
  test::DagBuilder builder(4);
  ExecutionEngine engine(std::make_unique<SharedCounter>(),
                         /*checkpoint_interval=*/2);
  for (std::uint64_t index = 1; index <= 4; ++index) {
    consensus::CommittedSubDag sd;
    sd.commit_index = index;
    sd.anchor = builder.make_cert(index * 2, 0, {},
                                  {tx(index * 10), tx(index * 10 + 1)});
    sd.vertices = {sd.anchor};
    engine.on_subdag_committed(sd);
  }
  EXPECT_EQ(engine.machine().applied_count(), 8u);
  EXPECT_EQ(engine.checkpoints().size(), 2u);  // indices 2 and 4
  EXPECT_TRUE(engine.checkpoints().count(2));
  EXPECT_TRUE(engine.checkpoints().count(4));
}

TEST(ExecutionEngine, RejectsCommitIndexGaps) {
  test::DagBuilder builder(4);
  ExecutionEngine engine(std::make_unique<SharedCounter>());
  consensus::CommittedSubDag sd;
  sd.commit_index = 2;  // gap: expected 1
  sd.anchor = builder.make_cert(2, 0, {});
  EXPECT_THROW(engine.on_subdag_committed(sd), InvariantViolation);
}

TEST(ExecutionEngine, CheckpointConsistencyDetectsDivergence) {
  test::DagBuilder builder(4);
  ExecutionEngine a(std::make_unique<SharedCounter>(), 1);
  ExecutionEngine b(std::make_unique<SharedCounter>(), 1);
  consensus::CommittedSubDag sd;
  sd.commit_index = 1;
  sd.anchor = builder.make_cert(2, 0, {}, {tx(1)});
  sd.vertices = {sd.anchor};
  a.on_subdag_committed(sd);
  consensus::CommittedSubDag sd2 = sd;
  sd2.anchor = builder.make_cert(2, 0, {}, {tx(2)});
  sd2.vertices = {sd2.anchor};
  b.on_subdag_committed(sd2);
  EXPECT_FALSE(ExecutionEngine::checkpoints_consistent(a, b));
}

// --------------------------------------------------- end-to-end SMR checks

TEST(StateMachineReplication, ReplicasConvergeUnderLoadAndFaults) {
  // The strongest safety statement: every live validator's executed state
  // digests agree at every common checkpoint, under crash faults and
  // schedule changes.
  test::ClusterOptions o;
  o.n = 7;
  o.node = test::fast_node_config();
  o.node.gc_depth = 1'000;  // keep all payloads resolvable for the check
  o.hh.cadence = core::ScheduleCadence::commits(4);
  test::Cluster c(o);
  c.start();
  for (TxId i = 0; i < 500; ++i)
    c.validator(static_cast<ValidatorIndex>(i % 7)).submit_tx(
        {i, static_cast<ValidatorIndex>(i % 7), 0});
  c.validator(6).crash();
  c.run_for(seconds(6));

  // Reconstruct each validator's executed sequence from its delivered
  // digests (DAG payloads), apply to fresh state machines, compare.
  std::vector<Digest> digests;
  for (ValidatorIndex v = 0; v < 6; ++v) {
    KvStateMachine sm;
    for (const auto& d : c.delivered(v)) {
      const auto cert = c.validator(v).dag().get(d);
      if (!cert || !cert->header->payload) continue;
      for (const auto& t : cert->header->payload->txs) sm.apply(t);
    }
    digests.push_back(sm.state_digest());
  }
  // All validators that delivered the same prefix length have equal state;
  // compare the shortest prefix by recomputing: since sequences are prefix-
  // consistent (total_order_holds), equal delivered counts => equal state.
  for (ValidatorIndex a = 0; a < 6; ++a)
    for (ValidatorIndex b = a + 1; b < 6; ++b)
      if (c.delivered(a).size() == c.delivered(b).size()) {
        EXPECT_EQ(digests[a], digests[b]) << "v" << a << " vs v" << b;
      }
  std::string why;
  EXPECT_TRUE(c.total_order_holds(&why)) << why;
}

}  // namespace
}  // namespace hammerhead::exec

// Tests: state sync — rejoining after an outage longer than the GC window,
// where certificate-by-certificate fetch can no longer reconnect the DAG.
#include <gtest/gtest.h>

#include "cluster_util.h"
#include "test_util.h"

namespace hammerhead {
namespace {

using test::Cluster;
using test::ClusterOptions;
using test::fast_node_config;

ClusterOptions deep_outage_options() {
  ClusterOptions o;
  o.n = 7;
  o.seed = 21;
  o.node = fast_node_config();
  // Small GC window so a short outage already crosses the horizon.
  o.node.gc_depth = 30;
  o.hh.cadence = core::ScheduleCadence::commits(4);
  return o;
}

TEST(StateSync, SnapshotRoundTripOnPolicy) {
  const auto committee = crypto::Committee::make_equal_stake(7, 1);
  core::HammerHeadPolicy source(committee, 1);
  core::ReputationScores scores(7);
  // Exercise: fabricate state by pushing scores + an epoch via snapshot of a
  // mutated policy. Simplest: snapshot fresh, install into another, compare.
  const core::PolicySnapshot snap = source.snapshot();
  core::HammerHeadPolicy target(committee, 1);
  target.install_snapshot(snap);
  for (Round r = 0; r < 50; ++r)
    EXPECT_EQ(target.leader(r), source.leader(r));
}

TEST(StateSync, CommitterSnapshotRestoresPositioning) {
  test::DagBuilder b(4);
  dag::Dag dag(b.committee());
  core::RoundRobinPolicy policy(b.committee(), 1);
  consensus::BullsharkCommitter source(b.committee(), dag, policy, nullptr);
  // Drive some commits.
  std::vector<dag::CertPtr> prev;
  for (ValidatorIndex a = 0; a < 4; ++a) {
    auto c = b.make_cert(0, a, {});
    dag.insert(c);
    source.on_cert_inserted(c);
    prev.push_back(c);
  }
  for (Round r = 1; r <= 5; ++r) {
    std::vector<dag::CertPtr> cur;
    for (ValidatorIndex a = 0; a < 4; ++a) {
      auto c = b.make_cert(r, a, test::DagBuilder::digests_of(prev));
      dag.insert(c);
      source.on_cert_inserted(c);
      cur.push_back(c);
    }
    prev = std::move(cur);
  }
  ASSERT_GT(source.commit_index(), 0u);

  const consensus::CommitterSnapshot snap = source.snapshot(0);
  consensus::BullsharkCommitter target(b.committee(), dag, policy, nullptr);
  target.install_snapshot(snap);
  EXPECT_EQ(target.last_anchor_round(), source.last_anchor_round());
  EXPECT_EQ(target.commit_index(), source.commit_index());
  // Ordered markers carried over.
  EXPECT_TRUE(target.is_ordered(dag.get(0, 0)->digest()));
}

TEST(StateSync, InstallOnNonFreshCommitterThrows) {
  test::DagBuilder b(4);
  dag::Dag dag(b.committee());
  core::RoundRobinPolicy policy(b.committee(), 1);
  consensus::BullsharkCommitter committer(b.committee(), dag, policy, nullptr);
  consensus::CommitterSnapshot snap;
  snap.commit_index = 5;
  committer.install_snapshot(snap);  // fresh: fine
  EXPECT_THROW(committer.install_snapshot(snap), InvariantViolation);
}

TEST(StateSync, DeepOutageTriggersSyncAndRejoin) {
  Cluster c(deep_outage_options());
  c.start();
  c.run_for(seconds(2));
  c.validator(6).crash();
  // Stay down for >> gc window (30 rounds ~ 1.3 s at test speeds).
  c.run_for(seconds(6));
  c.validator(6).restart();
  c.run_for(seconds(6));

  EXPECT_GE(c.validator(6).stats().state_syncs_requested, 1u);
  EXPECT_GE(c.validator(6).state_syncs_completed(), 1u);
  // Fully caught up and participating again.
  const auto live_max = *c.validator(0).dag().max_round();
  const auto rec_max = *c.validator(6).dag().max_round();
  EXPECT_GE(rec_max + 5, live_max);
  EXPECT_LT(c.validator(6).buffered_certs(), 30u);
}

TEST(StateSync, PostSyncDeliveriesMatchLiveValidators) {
  Cluster c(deep_outage_options());
  c.start();
  c.run_for(seconds(2));
  c.validator(6).crash();
  c.run_for(seconds(6));
  const std::size_t pre_sync_len = c.delivered(6).size();
  c.validator(6).restart();
  c.run_for(seconds(6));
  ASSERT_GE(c.validator(6).state_syncs_completed(), 1u);

  // The synced validator's log has a hole (checkpoint install), so global
  // prefix-consistency does not apply to it; instead its post-sync suffix
  // must be a contiguous subsequence of a live validator's log.
  const auto& live = c.delivered(0);
  const auto& synced = c.delivered(6);
  ASSERT_GT(synced.size(), pre_sync_len);
  const Digest& first_post_sync = synced[pre_sync_len];
  auto it = std::find(live.begin(), live.end(), first_post_sync);
  ASSERT_NE(it, live.end()) << "post-sync delivery unknown to live validator";
  for (std::size_t i = pre_sync_len; i < synced.size(); ++i) {
    const std::size_t live_pos =
        static_cast<std::size_t>(it - live.begin()) + (i - pre_sync_len);
    if (live_pos >= live.size()) break;  // live validator may lag at the end
    EXPECT_EQ(synced[i], live[live_pos]) << "divergence at suffix index " << i;
  }
  // And the live validators among themselves still hold total order.
  for (ValidatorIndex a = 0; a < 6; ++a) {
    const auto& x = c.delivered(a);
    const std::size_t common = std::min(x.size(), live.size());
    for (std::size_t i = 0; i < common; ++i)
      ASSERT_EQ(x[i], live[i]) << "live divergence at " << i;
  }
}

TEST(StateSync, ScheduleAgreesAfterSync) {
  Cluster c(deep_outage_options());
  c.start();
  c.run_for(seconds(2));
  c.validator(6).crash();
  c.run_for(seconds(6));
  c.validator(6).restart();
  c.run_for(seconds(6));
  ASSERT_GE(c.validator(6).state_syncs_completed(), 1u);
  EXPECT_TRUE(c.schedules_agree({0, 1, 2, 3, 4, 5, 6}));
}

TEST(StateSync, CrashAfterSyncRecoversFromPersistedHorizon) {
  Cluster c(deep_outage_options());
  c.start();
  c.run_for(seconds(2));
  c.validator(6).crash();
  c.run_for(seconds(6));
  c.validator(6).restart();
  c.run_for(seconds(4));
  ASSERT_GE(c.validator(6).state_syncs_completed(), 1u);
  // Crash again shortly after the sync; replay must start from the synced
  // horizon (the pre-sync certificate prefix is gone from the store).
  c.validator(6).crash();
  c.run_for(millis(500));
  c.validator(6).restart();
  c.run_for(seconds(4));
  const auto live_max = *c.validator(0).dag().max_round();
  const auto rec_max = *c.validator(6).dag().max_round();
  EXPECT_GE(rec_max + 5, live_max);
  EXPECT_TRUE(c.schedules_agree({0, 1, 2, 3, 4, 5, 6}));
}

}  // namespace
}  // namespace hammerhead

// Unit/behaviour tests for a single networked validator and small clusters:
// proposing, voting rules, certificate formation, leader timeouts, fetch.
#include <gtest/gtest.h>

#include "cluster_util.h"

namespace hammerhead::node {
namespace {

using test::Cluster;
using test::ClusterOptions;
using test::fast_node_config;

ClusterOptions small(std::size_t n = 4) {
  ClusterOptions o;
  o.n = n;
  o.node = fast_node_config();
  return o;
}

TEST(Validator, ProposesGenesisOnStart) {
  Cluster c(small());
  c.start();
  for (ValidatorIndex v = 0; v < 4; ++v) {
    EXPECT_EQ(c.validator(v).last_proposed_round(), 0u);
    EXPECT_EQ(c.validator(v).stats().headers_proposed, 1u);
  }
}

TEST(Validator, RoundsAdvanceUnderNormalOperation) {
  Cluster c(small());
  c.start();
  c.run_for(seconds(5));
  for (ValidatorIndex v = 0; v < 4; ++v)
    EXPECT_GT(c.validator(v).last_proposed_round(), 10u) << "v" << v;
}

TEST(Validator, CertificatesFormWithQuorumSigners) {
  Cluster c(small());
  c.start();
  c.run_for(seconds(2));
  const auto& dag = c.validator(0).dag();
  ASSERT_TRUE(dag.max_round().has_value());
  for (const auto& cert : dag.round_certs(1)) {
    EXPECT_TRUE(cert->verify(c.committee()));
    EXPECT_GE(cert->signers.size(), 3u);
  }
}

TEST(Validator, CommitsHappenAndSpreadToAll) {
  Cluster c(small());
  c.start();
  c.run_for(seconds(5));
  for (ValidatorIndex v = 0; v < 4; ++v) {
    EXPECT_GT(c.validator(v).committer().commit_index(), 5u) << "v" << v;
    EXPECT_FALSE(c.delivered(v).empty());
  }
}

TEST(Validator, TxSubmissionFlowsIntoCommittedPayload) {
  Cluster c(small());
  c.start();
  dag::Transaction tx;
  tx.id = 77;
  tx.submitted_to = 1;
  tx.submit_time = 0;
  c.validator(1).submit_tx(tx);
  // Short run: long enough to commit, short enough that GC has not pruned
  // the early rounds we scan below.
  c.run_for(seconds(1));
  // The tx must appear in some delivered vertex on every validator: scan
  // validator 3's DAG ordering for it.
  bool found = false;
  for (const auto& d : c.delivered(3)) {
    const auto cert = c.validator(3).dag().get(d);
    if (!cert || !cert->header->payload) continue;
    for (const auto& t : cert->header->payload->txs)
      if (t.id == 77) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Validator, MempoolDrainsIntoBatches) {
  Cluster c(small());
  c.start();
  for (TxId i = 0; i < 50; ++i)
    c.validator(0).submit_tx({i, 0, 0});
  c.run_for(seconds(3));
  EXPECT_EQ(c.validator(0).mempool_size(), 0u);
}

TEST(Validator, CrashedValidatorRefusesTransactions) {
  Cluster c(small());
  c.start();
  c.validator(2).crash();
  c.validator(2).submit_tx({1, 2, 0});
  EXPECT_EQ(c.validator(2).mempool_size(), 0u);
}

TEST(Validator, LeaderTimeoutsFireWhenLeaderCrashed) {
  // Round-robin with one crashed validator: even rounds led by the crashed
  // node stall until the leader timeout.
  ClusterOptions o = small(4);
  o.use_hammerhead = false;
  Cluster c(o);
  c.start();
  c.validator(3).crash();
  c.run_for(seconds(5));
  std::uint64_t timeouts = 0;
  for (ValidatorIndex v = 0; v < 3; ++v)
    timeouts += c.validator(v).stats().leader_timeouts;
  EXPECT_GT(timeouts, 0u);
}

TEST(Validator, NoTimeoutsInFaultlessSmallLatencyRun) {
  Cluster c(small());
  c.start();
  c.run_for(seconds(5));
  for (ValidatorIndex v = 0; v < 4; ++v)
    EXPECT_EQ(c.validator(v).stats().leader_timeouts, 0u) << "v" << v;
}

TEST(Validator, ProgressDespiteFCrashedValidators) {
  Cluster c(small(7));  // f = 2
  c.start();
  c.validator(5).crash();
  c.validator(6).crash();
  c.run_for(seconds(8));
  for (ValidatorIndex v = 0; v < 5; ++v) {
    EXPECT_GT(c.validator(v).committer().commit_index(), 3u) << "v" << v;
  }
}

TEST(Validator, NoProgressBeyondFaultBound) {
  // f+1 = 2 crashed out of 4: quorums are impossible, rounds stop advancing
  // (safety over liveness).
  Cluster c(small(4));
  c.start();
  c.run_for(seconds(1));
  const Round before_2 = c.validator(0).last_proposed_round();
  c.validator(2).crash();
  c.validator(3).crash();
  c.run_for(seconds(5));
  // At most one more round can complete with in-flight certificates.
  EXPECT_LE(c.validator(0).last_proposed_round(), before_2 + 2);
}

TEST(Validator, GarbageCollectionBoundsDagSize) {
  ClusterOptions o = small(4);
  o.node.gc_depth = 10;
  Cluster c(o);
  c.start();
  c.run_for(seconds(20));
  const auto& dag = c.validator(0).dag();
  EXPECT_GT(dag.gc_floor(), 0u);
  // Retained rounds: roughly gc_depth plus the in-flight frontier.
  const Round span = *dag.max_round() - dag.gc_floor();
  EXPECT_LT(span, 40u);
  EXPECT_LT(dag.total_certs(), 4 * 45u);
}

TEST(Validator, GcCanBeDisabled) {
  ClusterOptions o = small(4);
  o.node.gc_enabled = false;
  Cluster c(o);
  c.start();
  c.run_for(seconds(10));
  EXPECT_EQ(c.validator(0).dag().gc_floor(), 0u);
}

TEST(Validator, BufferedCertsAreBounded) {
  Cluster c(small(4));
  c.start();
  c.run_for(seconds(5));
  for (ValidatorIndex v = 0; v < 4; ++v)
    EXPECT_LT(c.validator(v).buffered_certs(), 20u);
}

TEST(Validator, StartTwiceIsAnError) {
  Cluster c(small());
  c.start();
  EXPECT_THROW(c.validator(0).start(), InvariantViolation);
}

TEST(Validator, RestartOfLiveValidatorIsAnError) {
  Cluster c(small());
  c.start();
  EXPECT_THROW(c.validator(0).restart(), InvariantViolation);
}

TEST(Validator, CpuModelAddsQueueingDelay) {
  // With the CPU model on and an expensive per-tx cost, round progression
  // under heavy payload is slower than without.
  ClusterOptions with_cpu = small(4);
  with_cpu.node.model_cpu = true;
  with_cpu.node.cost_per_tx_verify = micros(500);
  with_cpu.node.cost_per_tx_execute = micros(500);
  ClusterOptions no_cpu = small(4);

  auto run = [](ClusterOptions o) {
    Cluster c(o);
    c.start();
    for (ValidatorIndex v = 0; v < 4; ++v)
      for (TxId i = 0; i < 2'000; ++i)
        c.validator(v).submit_tx({i + 10'000ull * v, v, 0});
    c.run_for(seconds(5));
    return c.validator(0).last_proposed_round();
  };
  EXPECT_LT(run(with_cpu), run(no_cpu));
}

}  // namespace
}  // namespace hammerhead::node

// Differential suite for the dispatched SHA-256 pipeline: every kernel the
// host supports (SHA-NI, AVX2 multi-buffer) must produce bit-identical
// digests to the scalar reference across message sizes straddling block and
// padding boundaries, under arbitrary streaming chunkings, and through
// BatchHasher's cohort scheduling. Also covers batch_verify's per-lane
// verdicts: corrupting exactly one lane must fail exactly that lane.
//
// Content digests feed trace hashes, so any divergence here would silently
// fork the committed --verify baselines; this suite is the cheap tripwire.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "hammerhead/common/rng.h"
#include "hammerhead/crypto/batch_hasher.h"
#include "hammerhead/crypto/sha256.h"
#include "hammerhead/dag/types.h"
#include "test_util.h"

namespace hammerhead {
namespace {

using crypto::sha::Level;

/// Pin a dispatch level for one test, restoring the probed maximum on exit.
class LevelGuard {
 public:
  explicit LevelGuard(Level level) : ok_(crypto::sha::set_level(level) == level) {}
  ~LevelGuard() { crypto::sha::set_level(crypto::sha::max_level()); }
  /// False when the host cannot run `level` (the test should skip).
  bool ok() const { return ok_; }

 private:
  bool ok_;
};

/// The accelerated levels to test against scalar; filtered by LevelGuard::ok.
const Level kAccelLevels[] = {Level::kAvx2, Level::kShaNi};

/// Sizes straddling every interesting boundary: empty, sub-block, the
/// 55/56 padding split (bit-length no longer fits the final block), the
/// 63/64/65 block edge, the same edges around two blocks, and a bulk size.
const std::size_t kBoundarySizes[] = {0,   1,   55,  56,  57,  63,  64,
                                      65,  119, 120, 127, 128, 129, 4096};

std::vector<std::uint8_t> pattern_bytes(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint8_t> out(n);
  for (std::size_t i = 0; i < n; ++i)
    out[i] = static_cast<std::uint8_t>(splitmix64(seed + i));
  return out;
}

TEST(CryptoDispatch, BoundarySizesMatchScalar) {
  // Scalar digests first, then re-hash at each accelerated level.
  std::vector<Digest> expected;
  {
    LevelGuard g(Level::kScalar);
    ASSERT_TRUE(g.ok());
    for (std::size_t n : kBoundarySizes)
      expected.push_back(crypto::Sha256::hash(pattern_bytes(n, n)));
  }
  for (Level level : kAccelLevels) {
    LevelGuard g(level);
    if (!g.ok()) continue;
    for (std::size_t i = 0; i < std::size(kBoundarySizes); ++i) {
      const std::size_t n = kBoundarySizes[i];
      EXPECT_EQ(crypto::Sha256::hash(pattern_bytes(n, n)), expected[i])
          << "level=" << crypto::sha::level_name(level) << " size=" << n;
    }
  }
}

TEST(CryptoDispatch, RandomizedSizesMatchScalar) {
  Rng rng(0xd15ba7c4);
  for (int iter = 0; iter < 200; ++iter) {
    const std::size_t n = static_cast<std::size_t>(rng.next_below(8192));
    const auto msg = pattern_bytes(n, rng.next());
    Digest expected;
    {
      LevelGuard g(Level::kScalar);
      expected = crypto::Sha256::hash(msg);
    }
    for (Level level : kAccelLevels) {
      LevelGuard g(level);
      if (!g.ok()) continue;
      EXPECT_EQ(crypto::Sha256::hash(msg), expected)
          << "level=" << crypto::sha::level_name(level) << " size=" << n;
    }
  }
}

TEST(CryptoDispatch, RandomChunkedStreamingMatchesOneShot) {
  // Incremental update() must be chunking-invariant at every level: the
  // buffered-tail handoff into the multi-block fast path is where a
  // dispatch bug would hide.
  Rng rng(77);
  for (int iter = 0; iter < 50; ++iter) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng.next_below(4096));
    const auto msg = pattern_bytes(n, rng.next());
    Digest expected;
    {
      LevelGuard g(Level::kScalar);
      expected = crypto::Sha256::hash(msg);
    }
    for (Level level : kAccelLevels) {
      LevelGuard g(level);
      if (!g.ok()) continue;
      crypto::Sha256 h;
      std::size_t off = 0;
      while (off < n) {
        const std::size_t chunk = std::min(
            n - off, 1 + static_cast<std::size_t>(rng.next_below(200)));
        h.update({msg.data() + off, chunk});
        off += chunk;
      }
      EXPECT_EQ(h.finalize(), expected)
          << "level=" << crypto::sha::level_name(level) << " size=" << n;
    }
  }
}

TEST(CryptoDispatch, NistVectorsAtEveryLevel) {
  const struct {
    std::string msg;
    const char* hex;
  } kVectors[] = {
      {"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"},
      {"abc",
       "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"},
      {"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
       "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"},
      {std::string(1000000, 'a'),
       "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"},
  };
  for (Level level : {Level::kScalar, Level::kAvx2, Level::kShaNi}) {
    LevelGuard g(level);
    if (!g.ok()) continue;
    for (const auto& v : kVectors)
      EXPECT_EQ(crypto::Sha256::hash(v.msg).to_hex(), v.hex)
          << "level=" << crypto::sha::level_name(level);
  }
}

TEST(CryptoDispatch, BatchHasherMatchesScalarAcrossLaneCounts) {
  // Lane counts crossing the 8/4-wide cohort splits and mixed lengths that
  // force cohort regrouping by block count (including empty messages).
  Rng rng(42);
  for (std::size_t lanes : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 12u, 16u, 31u}) {
    std::vector<std::vector<std::uint8_t>> msgs;
    for (std::size_t l = 0; l < lanes; ++l) {
      const std::size_t n =
          l == 0 ? 0 : static_cast<std::size_t>(rng.next_below(2048));
      msgs.push_back(pattern_bytes(n, rng.next()));
    }
    std::vector<Digest> expected;
    {
      LevelGuard g(Level::kScalar);
      for (const auto& m : msgs) expected.push_back(crypto::Sha256::hash(m));
    }
    for (Level level : {Level::kScalar, Level::kAvx2, Level::kShaNi}) {
      LevelGuard g(level);
      if (!g.ok()) continue;
      crypto::BatchHasher hasher;
      for (const auto& m : msgs) hasher.add(m);
      ASSERT_EQ(hasher.size(), lanes);
      std::vector<Digest> out(lanes);
      hasher.run(out.data());
      EXPECT_TRUE(hasher.empty());
      for (std::size_t l = 0; l < lanes; ++l)
        EXPECT_EQ(out[l], expected[l])
            << "level=" << crypto::sha::level_name(level) << " lanes=" << lanes
            << " lane=" << l;
    }
  }
}

TEST(CryptoDispatch, BatchHasherUniformLanesHitMultiBufferKernels) {
  // Equal-length lanes form maximal cohorts: 8 x 512 B drives the 8-wide
  // AVX2 kernel end to end, 4 x 512 B the 4-wide one.
  for (std::size_t lanes : {4u, 8u}) {
    std::vector<std::vector<std::uint8_t>> msgs;
    for (std::size_t l = 0; l < lanes; ++l)
      msgs.push_back(pattern_bytes(512, 1000 + l));
    std::vector<Digest> expected;
    {
      LevelGuard g(Level::kScalar);
      for (const auto& m : msgs) expected.push_back(crypto::Sha256::hash(m));
    }
    for (Level level : kAccelLevels) {
      LevelGuard g(level);
      if (!g.ok()) continue;
      crypto::BatchHasher hasher;
      for (const auto& m : msgs) hasher.add(m);
      std::vector<Digest> out(lanes);
      hasher.run(out.data());
      for (std::size_t l = 0; l < lanes; ++l)
        EXPECT_EQ(out[l], expected[l])
            << "level=" << crypto::sha::level_name(level) << " lane=" << l;
    }
  }
}

TEST(CryptoDispatch, SetLevelClampsToHostMaximum) {
  const Level max = crypto::sha::max_level();
  EXPECT_LE(crypto::sha::set_level(Level::kShaNi), max);
  EXPECT_EQ(crypto::sha::set_level(Level::kScalar), Level::kScalar);
  crypto::sha::set_level(max);
  EXPECT_EQ(crypto::sha::active_level(), max);
}

// ------------------------------------------------------------ batch_verify

std::vector<dag::CertPtr> build_certs(test::DagBuilder& b, std::size_t count) {
  std::vector<dag::CertPtr> certs;
  for (std::size_t i = 0; i < count; ++i)
    certs.push_back(b.make_cert(1, static_cast<ValidatorIndex>(i % 4),
                                {Digest::of_string("p" + std::to_string(i))},
                                {dag::Transaction{i + 1}}));
  return certs;
}

TEST(BatchVerify, AllValidCertsVerify) {
  test::DagBuilder b(4);
  const auto certs = build_certs(b, 9);
  for (Level level : {Level::kScalar, Level::kAvx2, Level::kShaNi}) {
    LevelGuard g(level);
    if (!g.ok()) continue;
    const auto fresh = build_certs(b, 9);  // memos start cold per level
    EXPECT_EQ(dag::batch_verify(fresh, b.committee()), fresh.size())
        << "level=" << crypto::sha::level_name(level);
    for (const auto& c : fresh) EXPECT_TRUE(c->verify(b.committee()));
  }
  EXPECT_EQ(dag::batch_verify(certs, b.committee()), certs.size());
}

TEST(BatchVerify, TamperedSignatureFailsExactlyThatLane) {
  for (Level level : {Level::kScalar, Level::kAvx2, Level::kShaNi}) {
    LevelGuard g(level);
    if (!g.ok()) continue;
    for (std::size_t victim = 0; victim < 8; ++victim) {
      test::DagBuilder b(4);
      auto certs = build_certs(b, 8);
      // Rebuild the victim with a corrupted author signature (content digest
      // still matches, so only the signature check can catch it).
      {
        auto header = std::make_shared<dag::Header>();
        const dag::Header& orig = *certs[victim]->header;
        header->author = orig.author;
        header->round = orig.round;
        header->parents = orig.parents;
        header->payload = orig.payload;
        header->digest = orig.digest;
        header->signature = orig.signature;
        header->signature.bytes[victim % 32] ^= 0x01;
        certs[victim] = dag::Certificate::make(
            std::move(header), std::vector<ValidatorIndex>{0, 1, 2});
      }
      EXPECT_EQ(dag::batch_verify(certs, b.committee()), certs.size() - 1)
          << "level=" << crypto::sha::level_name(level)
          << " victim=" << victim;
      for (std::size_t i = 0; i < certs.size(); ++i)
        EXPECT_EQ(certs[i]->verify(b.committee()), i != victim)
            << "level=" << crypto::sha::level_name(level)
            << " victim=" << victim << " lane=" << i;
    }
  }
}

TEST(BatchVerify, TamperedContentFailsExactlyThatLane) {
  for (Level level : {Level::kScalar, Level::kAvx2, Level::kShaNi}) {
    LevelGuard g(level);
    if (!g.ok()) continue;
    test::DagBuilder b(4);
    auto certs = build_certs(b, 8);
    const std::size_t victim = 3;
    // Mutate a digested field after signing: the batch-recomputed digest no
    // longer matches the claimed one.
    {
      auto header = std::make_shared<dag::Header>();
      const dag::Header& orig = *certs[victim]->header;
      header->author = orig.author;
      header->round = orig.round + 1;  // not what was signed
      header->parents = orig.parents;
      header->payload = orig.payload;
      header->digest = orig.digest;
      header->signature = orig.signature;
      certs[victim] = dag::Certificate::make(
          std::move(header), std::vector<ValidatorIndex>{0, 1, 2});
    }
    EXPECT_EQ(dag::batch_verify(certs, b.committee()), certs.size() - 1)
        << "level=" << crypto::sha::level_name(level);
    for (std::size_t i = 0; i < certs.size(); ++i)
      EXPECT_EQ(certs[i]->verify(b.committee()), i != victim)
          << "level=" << crypto::sha::level_name(level) << " lane=" << i;
  }
}

TEST(BatchVerify, NullEntriesAndWarmMemosAreHandled) {
  test::DagBuilder b(4);
  auto certs = build_certs(b, 5);
  // Pre-warm two memos through the scalar single path, then batch the rest.
  EXPECT_TRUE(certs[0]->verify(b.committee()));
  EXPECT_TRUE(certs[1]->verify(b.committee()));
  certs.push_back(nullptr);
  EXPECT_EQ(dag::batch_verify(certs, b.committee()), 5u);
}

}  // namespace
}  // namespace hammerhead

// Unit tests: the discrete-event simulator (ordering, determinism, timers).
#include <gtest/gtest.h>

#include <vector>

#include "hammerhead/sim/simulator.h"

namespace hammerhead::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim(1);
  EXPECT_EQ(sim.now(), 0);
  EXPECT_TRUE(sim.empty());
}

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator sim(1);
  std::vector<int> order;
  sim.schedule_after(millis(30), [&] { order.push_back(3); });
  sim.schedule_after(millis(10), [&] { order.push_back(1); });
  sim.schedule_after(millis(20), [&] { order.push_back(2); });
  sim.run_to_completion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), millis(30));
}

TEST(Simulator, SimultaneousEventsFireInScheduleOrder) {
  Simulator sim(1);
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    sim.schedule_after(millis(5), [&order, i] { order.push_back(i); });
  sim.run_to_completion();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, NowAdvancesToEventTime) {
  Simulator sim(1);
  SimTime seen = -1;
  sim.schedule_after(seconds(2), [&] { seen = sim.now(); });
  sim.run_to_completion();
  EXPECT_EQ(seen, seconds(2));
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim(1);
  int fired = 0;
  sim.schedule_after(millis(10), [&] { ++fired; });
  sim.schedule_after(millis(50), [&] { ++fired; });
  const auto count = sim.run_until(millis(20));
  EXPECT_EQ(count, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), millis(20));  // clock lands on the deadline
  sim.run_to_completion();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim(1);
  int depth = 0;
  std::function<void()> recur = [&] {
    if (++depth < 5) sim.schedule_after(millis(1), recur);
  };
  sim.schedule_after(millis(1), recur);
  sim.run_to_completion();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), millis(5));
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim(1);
  bool fired = false;
  const auto id = sim.schedule_after(millis(10), [&] { fired = true; });
  sim.cancel(id);
  sim.run_to_completion();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelUnknownIdIsNoop) {
  Simulator sim(1);
  sim.cancel(987654);
  bool fired = false;
  sim.schedule_after(millis(1), [&] { fired = true; });
  sim.run_to_completion();
  EXPECT_TRUE(fired);
}

TEST(Simulator, CancelOneOfSimultaneous) {
  Simulator sim(1);
  std::vector<int> order;
  sim.schedule_after(millis(5), [&] { order.push_back(0); });
  const auto id = sim.schedule_after(millis(5), [&] { order.push_back(1); });
  sim.schedule_after(millis(5), [&] { order.push_back(2); });
  sim.cancel(id);
  sim.run_to_completion();
  EXPECT_EQ(order, (std::vector<int>{0, 2}));
}

TEST(Simulator, CancelOfFiredIdRetainsNoState) {
  // Regression: cancelling an id whose event already fired used to insert it
  // into the cancelled-set forever — unbounded growth for long simulations
  // with timer races.
  Simulator sim(1);
  const auto id = sim.schedule_after(millis(1), [] {});
  sim.run_to_completion();
  for (int i = 0; i < 1'000; ++i) sim.cancel(id);
  EXPECT_EQ(sim.cancelled_pending(), 0u);
}

TEST(Simulator, CancelOfUnknownIdRetainsNoState) {
  Simulator sim(1);
  for (std::uint64_t id = 1'000; id < 2'000; ++id) sim.cancel(id);
  EXPECT_EQ(sim.cancelled_pending(), 0u);
}

TEST(Simulator, CancelledPendingIsReapedOnPop) {
  Simulator sim(1);
  const auto id = sim.schedule_after(millis(10), [] {});
  sim.cancel(id);
  EXPECT_EQ(sim.cancelled_pending(), 1u);
  sim.cancel(id);  // double-cancel is a no-op, not a second entry
  EXPECT_EQ(sim.cancelled_pending(), 1u);
  sim.run_to_completion();
  EXPECT_EQ(sim.cancelled_pending(), 0u);
  EXPECT_EQ(sim.executed_events(), 0u);
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator sim(1);
  sim.schedule_after(millis(10), [] {});
  sim.run_to_completion();
  EXPECT_THROW(sim.schedule_at(millis(5), [] {}), InvariantViolation);
  EXPECT_THROW(sim.schedule_after(-1, [] {}), InvariantViolation);
}

TEST(Simulator, StepExecutesExactlyOne) {
  Simulator sim(1);
  int fired = 0;
  sim.schedule_after(1, [&] { ++fired; });
  sim.schedule_after(2, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, ExecutedEventsCounter) {
  Simulator sim(1);
  for (int i = 0; i < 7; ++i) sim.schedule_after(i, [] {});
  sim.run_to_completion();
  EXPECT_EQ(sim.executed_events(), 7u);
}

TEST(Simulator, DeterministicReplayWithSameSeed) {
  auto run = [](std::uint64_t seed) {
    Simulator sim(seed);
    std::vector<std::uint64_t> trace;
    std::function<void()> tick = [&] {
      trace.push_back(sim.rng().next());
      if (trace.size() < 50)
        sim.schedule_after(
            static_cast<SimTime>(1 + sim.rng().next_below(1000)), tick);
    };
    sim.schedule_after(1, tick);
    sim.run_to_completion();
    return trace;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(Simulator, ManyEventsStressOrdering) {
  Simulator sim(3);
  SimTime last = -1;
  bool monotone = true;
  for (int i = 0; i < 10'000; ++i) {
    const SimTime t = static_cast<SimTime>(sim.rng().next_below(1'000'000));
    sim.schedule_at(t, [&, t] {
      if (sim.now() < last) monotone = false;
      last = sim.now();
    });
  }
  sim.run_to_completion();
  EXPECT_TRUE(monotone);
}

}  // namespace
}  // namespace hammerhead::sim

// Crash-recovery tests: durable state discipline (never equivocate after a
// restart), deterministic replay, catch-up through fetch, and repeated
// crash/recover cycles. The paper stresses its implementation is
// "production-ready and fully-featured (crash-recovery, monitoring tools)".
#include <gtest/gtest.h>

#include "cluster_util.h"

namespace hammerhead {
namespace {

using test::Cluster;
using test::ClusterOptions;
using test::fast_node_config;

ClusterOptions recovery_options(std::size_t n = 7) {
  ClusterOptions o;
  o.n = n;
  o.node = fast_node_config();
  // Recovery within the GC window; beyond-horizon rejoin would need state
  // sync outside BAB.
  o.node.gc_depth = 10'000;
  return o;
}

TEST(Recovery, RestartResumesParticipation) {
  Cluster c(recovery_options());
  c.start();
  c.run_for(seconds(2));
  c.validator(3).crash();
  c.run_for(seconds(3));
  const Round frontier = c.validator(0).last_proposed_round();
  c.validator(3).restart();
  c.run_for(seconds(4));
  // The recovered validator catches up past the crash-time frontier and
  // proposes fresh rounds again.
  EXPECT_GT(c.validator(3).last_proposed_round(), frontier);
  EXPECT_EQ(c.validator(3).stats().restarts, 1u);
  std::string why;
  EXPECT_TRUE(c.total_order_holds(&why)) << why;
}

TEST(Recovery, NeverProposesBelowPreCrashRound) {
  Cluster c(recovery_options());
  c.start();
  c.run_for(seconds(3));
  const Round before = c.validator(2).last_proposed_round();
  ASSERT_GT(before, 5u);
  c.validator(2).crash();
  c.validator(2).restart();  // immediate restart
  // Right after replay the validator must remember its proposing round.
  EXPECT_GE(c.validator(2).last_proposed_round(), before);
  c.run_for(seconds(3));
  std::string why;
  EXPECT_TRUE(c.total_order_holds(&why)) << why;
}

TEST(Recovery, ReplayRebuildsCommitState) {
  Cluster c(recovery_options());
  c.start();
  c.run_for(seconds(4));
  const auto commits_before = c.validator(1).committer().commit_index();
  ASSERT_GT(commits_before, 10u);
  c.validator(1).crash();
  c.validator(1).restart();
  // Replay reconstructs at least the pre-crash committed prefix (the exact
  // index can lag by in-flight certificates not yet persisted at crash).
  EXPECT_GE(c.validator(1).committer().commit_index() + 5, commits_before);
  c.run_for(seconds(3));
  EXPECT_GT(c.validator(1).committer().commit_index(), commits_before);
}

TEST(Recovery, ReplayedCommitsAreNotReReported) {
  // The harness-facing commit callback must not fire again for replayed
  // sub-DAGs (would double-count transactions).
  Cluster c(recovery_options());
  c.start();
  c.run_for(seconds(4));
  const std::size_t delivered_before = c.delivered(1).size();
  c.validator(1).crash();
  c.validator(1).restart();
  EXPECT_EQ(c.delivered(1).size(), delivered_before);
}

TEST(Recovery, ScheduleStateIsReconstructedDeterministically) {
  ClusterOptions o = recovery_options();
  o.hh.cadence = core::ScheduleCadence::commits(4);
  Cluster c(o);
  c.start();
  c.run_for(seconds(5));
  c.validator(4).crash();
  c.validator(4).restart();
  c.run_for(seconds(4));
  // The recovered validator's epoch sequence agrees with everyone else's.
  EXPECT_TRUE(c.schedules_agree({0, 1, 2, 3, 4, 5, 6}));
  const auto* h = c.validator(4).policy().history();
  ASSERT_NE(h, nullptr);
  EXPECT_GE(h->num_epochs(), 3u);
}

TEST(Recovery, VoteUniquenessSurvivesRestart) {
  // The acid test for the durable vote table: no validator ever certifies
  // two headers for one (author, round), even across restarts of voters.
  Cluster c(recovery_options());
  c.start();
  c.run_for(seconds(2));
  for (ValidatorIndex v = 0; v < 3; ++v) {
    c.validator(v).crash();
    c.run_for(millis(300));
    c.validator(v).restart();
    c.run_for(seconds(1));
  }
  c.run_for(seconds(3));
  // Cross-validator slot consistency (same slot -> same digest everywhere).
  const auto& dag0 = c.validator(0).dag();
  const auto max0 = dag0.max_round();
  ASSERT_TRUE(max0.has_value());
  for (Round r = dag0.gc_floor(); r <= *max0; ++r) {
    for (ValidatorIndex a = 0; a < 7; ++a) {
      const auto c0 = dag0.get(r, a);
      if (!c0) continue;
      for (ValidatorIndex v = 1; v < 7; ++v) {
        const auto cv = c.validator(v).dag().get(r, a);
        if (cv) {
          EXPECT_EQ(cv->digest(), c0->digest())
              << "equivocation in slot (" << r << "," << a << ")";
        }
      }
    }
  }
  std::string why;
  EXPECT_TRUE(c.total_order_holds(&why)) << why;
}

TEST(Recovery, RepeatedCrashRecoverCycles) {
  Cluster c(recovery_options());
  c.start();
  for (int cycle = 0; cycle < 4; ++cycle) {
    c.run_for(seconds(2));
    c.validator(5).crash();
    c.run_for(seconds(1));
    c.validator(5).restart();
  }
  c.run_for(seconds(4));
  EXPECT_EQ(c.validator(5).stats().restarts, 4u);
  // Still live and consistent.
  EXPECT_GT(c.validator(5).committer().commit_index(), 20u);
  std::string why;
  EXPECT_TRUE(c.total_order_holds(&why)) << why;
}

TEST(Recovery, SimultaneousCrashOfFValidators) {
  Cluster c(recovery_options(10));  // f = 3
  c.start();
  c.run_for(seconds(2));
  for (ValidatorIndex v : {7u, 8u, 9u}) c.validator(v).crash();
  c.run_for(seconds(3));
  for (ValidatorIndex v : {7u, 8u, 9u}) c.validator(v).restart();
  c.run_for(seconds(6));
  for (ValidatorIndex v : {7u, 8u, 9u}) {
    EXPECT_GT(c.validator(v).committer().commit_index(), 10u) << "v" << v;
  }
  std::string why;
  EXPECT_TRUE(c.total_order_holds(&why)) << why;
}

TEST(Recovery, CatchUpDrainsBufferedCertificates) {
  Cluster c(recovery_options());
  c.start();
  c.run_for(seconds(2));
  c.validator(6).crash();
  c.run_for(seconds(4));
  c.validator(6).restart();
  c.run_for(seconds(5));
  // After catch-up the buffer is (nearly) empty and the DAG frontier matches
  // the rest of the committee.
  EXPECT_LT(c.validator(6).buffered_certs(), 30u);
  const auto live_max = *c.validator(0).dag().max_round();
  const auto rec_max = *c.validator(6).dag().max_round();
  EXPECT_GE(rec_max + 5, live_max);
}

}  // namespace
}  // namespace hammerhead

// Tests: the checkpoint/resume subsystem (harness/checkpoint.h) and the live
// control plane (harness/control.h).
//
// The core contract under test is the replay-cut determinism proof: for a
// seeded config, `trace hash(resume at checkpoint k, jobs=J)` equals
// `trace hash(straight-through, jobs=1)` for every k and J, and the resumed
// run's recomputed state blob is byte-identical to the snapshot at the cut
// (verify_resume). Around it: on-disk format validation (magic / version /
// truncation / tamper rejection, torn-write recovery), trace-neutrality of
// observation (checkpointing, segmentation and an idle control socket change
// nothing), and hostile-state cuts — mid-GC churn, mid-eclipse, pending
// equivocation directives, cold-tiered DAG rounds.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "hammerhead/harness/adversary.h"
#include "hammerhead/harness/checkpoint.h"
#include "hammerhead/harness/control.h"
#include "hammerhead/harness/experiment.h"

namespace hammerhead {
namespace {

namespace fs = std::filesystem;

using harness::Checkpoint;
using harness::ExperimentConfig;
using harness::ExperimentResult;
using harness::ExperimentRun;

/// Unique scratch directory, removed on scope exit.
struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag) {
    path = fs::temp_directory_path() /
           ("hh_ckpt_" + tag + "_" + std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string str() const { return path.string(); }
};

/// Protocol-speed 5-validator run, long enough for several checkpoint cuts.
ExperimentConfig base_config(std::uint64_t seed = 21) {
  ExperimentConfig cfg;
  cfg.num_validators = 5;
  cfg.seed = seed;
  cfg.duration = seconds(6);
  cfg.warmup = seconds(1);
  cfg.load_tps = 200;
  cfg.latency = harness::LatencyKind::Uniform;
  cfg.node.model_cpu = false;
  cfg.node.min_round_delay = millis(20);
  cfg.node.leader_timeout = millis(400);
  return cfg;
}

Checkpoint sample_checkpoint() {
  Checkpoint c;
  c.config_fingerprint = 0x1234'5678'9abc'def0ull;
  c.index = 7;
  c.cut_time = seconds(3);
  c.executed_events = 123'456;
  c.seq_counter = 222'333;
  c.submitted = 900;
  c.committed = 850;
  c.committed_anchors = 40;
  c.conflicting_certs = 0;
  c.latency_sample_hash = 0xfeed'beefull;
  for (int i = 0; i < 1000; ++i)
    c.state.push_back(static_cast<std::uint8_t>(i * 37));
  c.state_hash = harness::fnv1a_bytes(c.state);
  return c;
}

TEST(CheckpointFormat, EncodeDecodeRoundTrip) {
  const Checkpoint c = sample_checkpoint();
  const std::vector<std::uint8_t> bytes = harness::encode_checkpoint(c);
  const Checkpoint d = harness::decode_checkpoint(bytes);
  EXPECT_EQ(d.version, harness::kCheckpointVersion);
  EXPECT_EQ(d.config_fingerprint, c.config_fingerprint);
  EXPECT_EQ(d.index, c.index);
  EXPECT_EQ(d.cut_time, c.cut_time);
  EXPECT_EQ(d.executed_events, c.executed_events);
  EXPECT_EQ(d.seq_counter, c.seq_counter);
  EXPECT_EQ(d.submitted, c.submitted);
  EXPECT_EQ(d.committed, c.committed);
  EXPECT_EQ(d.committed_anchors, c.committed_anchors);
  EXPECT_EQ(d.latency_sample_hash, c.latency_sample_hash);
  EXPECT_EQ(d.state, c.state);
  EXPECT_EQ(d.state_hash, c.state_hash);
}

TEST(CheckpointFormat, RejectsBadMagicAndVersion) {
  const Checkpoint c = sample_checkpoint();
  std::vector<std::uint8_t> bytes = harness::encode_checkpoint(c);
  std::vector<std::uint8_t> bad_magic = bytes;
  bad_magic[0] ^= 0xff;
  EXPECT_THROW(harness::decode_checkpoint(bad_magic), SerdeError);

  Checkpoint skewed = c;
  skewed.version = harness::kCheckpointVersion + 1;
  EXPECT_THROW(harness::decode_checkpoint(harness::encode_checkpoint(skewed)),
               SerdeError);
}

TEST(CheckpointFormat, RejectsTruncationAtAnyBoundary) {
  const std::vector<std::uint8_t> bytes =
      harness::encode_checkpoint(sample_checkpoint());
  // Every strict prefix must fail loudly (torn write after SIGKILL): the
  // whole-file checksum rides the final 8 bytes, so no prefix can validate.
  for (const std::size_t cut :
       {std::size_t{0}, std::size_t{3}, std::size_t{16}, bytes.size() / 2,
        bytes.size() - 9, bytes.size() - 1}) {
    const std::span<const std::uint8_t> prefix{bytes.data(), cut};
    EXPECT_THROW(harness::decode_checkpoint(prefix), SerdeError) << cut;
  }
}

TEST(CheckpointFormat, RejectsSingleFlippedByte) {
  const std::vector<std::uint8_t> bytes =
      harness::encode_checkpoint(sample_checkpoint());
  for (const std::size_t pos : {std::size_t{9}, bytes.size() / 2,
                                bytes.size() - 12, bytes.size() - 1}) {
    std::vector<std::uint8_t> tampered = bytes;
    tampered[pos] ^= 0x20;
    EXPECT_THROW(harness::decode_checkpoint(tampered), SerdeError) << pos;
  }
}

TEST(CheckpointFiles, FindLatestSkipsTornNewest) {
  TempDir dir("torn");
  Checkpoint c = sample_checkpoint();
  c.index = 0;
  harness::write_checkpoint_file(harness::checkpoint_path(dir.str(), 0), c);
  c.index = 1;
  harness::write_checkpoint_file(harness::checkpoint_path(dir.str(), 1), c);
  // Tear checkpoint 1 the way a SIGKILL mid-write would (the atomic rename
  // normally prevents this; simulate a filesystem that lost the tail).
  const std::string newest = harness::checkpoint_path(dir.str(), 1);
  const auto full_size = fs::file_size(newest);
  fs::resize_file(newest, full_size / 2);

  const auto found = harness::find_latest_checkpoint(dir.str());
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->checkpoint.index, 0u);
  EXPECT_TRUE(found->path.ends_with("ckpt_000000.hhcp"));
}

TEST(CheckpointFiles, PruneKeepsNewestN) {
  TempDir dir("prune");
  Checkpoint c = sample_checkpoint();
  for (std::uint32_t i = 0; i < 5; ++i) {
    c.index = i;
    harness::write_checkpoint_file(harness::checkpoint_path(dir.str(), i), c);
  }
  harness::prune_checkpoints(dir.str(), 4, 2);
  EXPECT_FALSE(fs::exists(harness::checkpoint_path(dir.str(), 2)));
  EXPECT_TRUE(fs::exists(harness::checkpoint_path(dir.str(), 3)));
  EXPECT_TRUE(fs::exists(harness::checkpoint_path(dir.str(), 4)));
  const auto found = harness::find_latest_checkpoint(dir.str());
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->checkpoint.index, 4u);
}

// ---- trace neutrality -------------------------------------------------------

TEST(CheckpointNeutrality, CheckpointedRunMatchesPlainRun) {
  const ExperimentResult plain = run_experiment(base_config());

  TempDir dir("neutral");
  ExperimentConfig cfg = base_config();
  cfg.checkpoint.dir = dir.str();
  cfg.checkpoint.interval = seconds(1);
  const ExperimentResult observed = run_experiment(cfg);

  // Capturing snapshots is read-only: same trace, same counters.
  EXPECT_EQ(observed.trace_hash, plain.trace_hash);
  EXPECT_EQ(observed.committed, plain.committed);
  EXPECT_EQ(observed.checkpoints_written, 5u);  // cuts at 1..5s, not 6s
  EXPECT_EQ(plain.checkpoints_written, 0u);
  EXPECT_EQ(observed.resumed_from, -1);
  // Sidecars rode along for the soak harness.
  EXPECT_TRUE(fs::exists(harness::checkpoint_path(dir.str(), 0) + ".json"));
}

TEST(CheckpointNeutrality, SegmentedAdvanceMatchesSingleRunUntil) {
  // The engine substrate of every cut: repeated run_until(t_k) must execute
  // the identical event sequence as one run_until(duration). This is the
  // regression gate for the staged-effects audit (raw fn-pointer events and
  // pooled fanout TreeStates are replay-reconstructed, never persisted, so
  // segmentation must not perturb them).
  ExperimentRun straight(base_config());
  straight.advance_to(straight.duration());
  const ExperimentResult a = straight.finish();

  ExperimentRun segmented(base_config());
  while (!segmented.finished())
    segmented.advance_to(segmented.now() + millis(317));
  const ExperimentResult b = segmented.finish();
  EXPECT_EQ(a.trace_hash, b.trace_hash);
  EXPECT_EQ(a.sim_events, b.sim_events);
}

// ---- resume -----------------------------------------------------------------

/// Straight-through hash once, then resume from every checkpoint index at
/// the given worker count and demand the identical final trace. With
/// verify_resume on, each resume also proves the replayed state blob is
/// byte-identical to the snapshot at the cut.
void expect_resume_identity(const ExperimentConfig& base,
                            const std::string& dir, std::size_t resume_jobs) {
  ExperimentConfig cfg = base;
  cfg.checkpoint.dir = dir;
  cfg.checkpoint.interval = seconds(1);
  const ExperimentResult straight = run_experiment(cfg);
  ASSERT_GT(straight.checkpoints_written, 1u);

  for (std::uint32_t k = 0; k < straight.checkpoints_written; ++k) {
    ExperimentConfig resume = cfg;
    resume.intra_jobs = resume_jobs;
    resume.checkpoint.resume_from = harness::checkpoint_path(dir, k);
    resume.checkpoint.verify_resume = true;
    const ExperimentResult r = run_experiment(resume);
    EXPECT_EQ(r.trace_hash, straight.trace_hash)
        << "resume at checkpoint " << k << ", jobs=" << resume_jobs;
    EXPECT_EQ(r.resumed_from, static_cast<std::int64_t>(k));
    EXPECT_EQ(r.committed, straight.committed);
  }
}

TEST(CheckpointResume, EveryCutMatchesStraightThrough) {
  TempDir dir("resume");
  expect_resume_identity(base_config(), dir.str(), /*resume_jobs=*/1);
}

TEST(CheckpointResume, ResumeAtHigherWorkerCountMatches) {
  // config_fingerprint excludes intra_jobs: a checkpoint cut at jobs=1
  // resumes at jobs=2 with the same trace (the PR 5 contract carried
  // through the cut).
  TempDir dir("resume_jobs");
  expect_resume_identity(base_config(), dir.str(), /*resume_jobs=*/2);
}

TEST(CheckpointResume, LatestResumesNewestAndColdStartsEmptyDir) {
  TempDir dir("latest");
  ExperimentConfig cfg = base_config();
  cfg.checkpoint.dir = dir.str();
  cfg.checkpoint.interval = seconds(1);
  cfg.checkpoint.resume_from = "latest";
  // Empty dir: cold start, full run, checkpoints written.
  const ExperimentResult first = run_experiment(cfg);
  EXPECT_EQ(first.resumed_from, -1);
  ASSERT_GT(first.checkpoints_written, 0u);
  // Second cycle: picks the newest cut (the soak harness loop).
  const ExperimentResult second = run_experiment(cfg);
  EXPECT_EQ(second.resumed_from,
            static_cast<std::int64_t>(first.checkpoints_written - 1));
  EXPECT_EQ(second.trace_hash, first.trace_hash);
}

TEST(CheckpointResume, RefusesForeignConfig) {
  TempDir dir("foreign");
  ExperimentConfig cfg = base_config(/*seed=*/21);
  cfg.checkpoint.dir = dir.str();
  cfg.checkpoint.interval = seconds(2);
  run_experiment(cfg);

  ExperimentConfig other = base_config(/*seed=*/22);  // different trace
  other.checkpoint.dir = dir.str();
  other.checkpoint.resume_from = harness::checkpoint_path(dir.str(), 0);
  EXPECT_THROW(run_experiment(other), std::runtime_error);
}

TEST(CheckpointResume, RefusesMissingFile) {
  ExperimentConfig cfg = base_config();
  cfg.checkpoint.resume_from = "/nonexistent/ckpt_000000.hhcp";
  EXPECT_THROW(run_experiment(cfg), std::runtime_error);
}

// ---- hostile-state cuts -----------------------------------------------------

TEST(CheckpointHostile, MidChurnAcrossGcHorizon) {
  // Churn cycles long enough that outages cross the GC horizon (state-sync
  // re-entry), with cuts landing mid-outage: serialized crashed-validator
  // state (durable tables only) must round-trip and replay identically.
  ExperimentConfig cfg = base_config(/*seed=*/31);
  cfg.node.gc_depth = 12;
  harness::ChurnSpec churn;
  churn.nodes = {3, 4};
  churn.start = seconds(1);
  churn.period = seconds(2);
  churn.downtime = millis(1'500);
  cfg.churn.push_back(churn);
  TempDir dir("churn");
  expect_resume_identity(cfg, dir.str(), /*resume_jobs=*/1);
}

TEST(CheckpointHostile, MidEclipseAdversary) {
  // Cuts land inside eclipse windows: the link-cut refcount matrix, held
  // envelopes and the scheduled restore must all replay to the same bytes.
  ExperimentConfig cfg = base_config(/*seed=*/32);
  cfg.adversaries.push_back(
      harness::adversary_eclipse(/*window_frac=*/0.1, /*period_frac=*/0.3));
  TempDir dir("eclipse");
  expect_resume_identity(cfg, dir.str(), /*resume_jobs=*/1);
}

TEST(CheckpointHostile, PendingEquivocationDirectives) {
  // Cuts with live Byzantine directives in the DirectiveBook; safety must
  // hold through every resume (no certified conflict ever).
  ExperimentConfig cfg = base_config(/*seed=*/33);
  cfg.adversaries.push_back(harness::adversary_equivocate());
  cfg.checkpoint.dir.clear();

  TempDir dir("equiv");
  ExperimentConfig ckpt = cfg;
  ckpt.checkpoint.dir = dir.str();
  ckpt.checkpoint.interval = seconds(1);
  const ExperimentResult straight = run_experiment(ckpt);
  ASSERT_GT(straight.checkpoints_written, 1u);
  EXPECT_GT(straight.equivocations_sent, 0u);
  EXPECT_EQ(straight.conflicting_certs, 0u);

  for (std::uint32_t k = 0; k < straight.checkpoints_written; ++k) {
    ExperimentConfig resume = ckpt;
    resume.checkpoint.resume_from = harness::checkpoint_path(dir.str(), k);
    const ExperimentResult r = run_experiment(resume);
    EXPECT_EQ(r.trace_hash, straight.trace_hash) << "checkpoint " << k;
    EXPECT_EQ(r.conflicting_certs, 0u) << "checkpoint " << k;
  }
}

TEST(CheckpointHostile, ColdTierRoundsSerializeByteIdentical) {
  // Dag::serialize_content is representation-independent: a run whose old
  // rounds were compressed into the cold tier serializes the same bytes as
  // one that kept everything hot (the tiering knob is trace-neutral, so the
  // two runs execute identical traces; only the arena representation
  // differs at the cut).
  ExperimentConfig hot = base_config(/*seed=*/34);
  hot.node.index.cold_round_lag = 1'000'000;  // nothing ever goes cold
  ExperimentConfig cold = hot;
  cold.node.index.cold_round_lag = 8;  // aggressive cold tiering

  ExperimentRun hot_run(hot);
  ExperimentRun cold_run(cold);
  hot_run.advance_to(hot.duration / 2);
  cold_run.advance_to(cold.duration / 2);
  EXPECT_EQ(hot_run.serialize_state(), cold_run.serialize_state());
}

// ---- control plane ----------------------------------------------------------

TEST(ControlPlane, HandleLineDispatchesCommands) {
  int stops = 0;
  harness::ControlHooks hooks;
  hooks.status = [] { return std::string("t_us=1 committed=2"); };
  hooks.gauges = [] { return std::string("a 1\nb 2\n"); };
  hooks.checkpoint = [] { return std::string("/tmp/x/ckpt_000000.hhcp"); };
  hooks.inject = [](const std::vector<std::string>& args) {
    if (args.empty() || args[0] != "crash")
      throw std::runtime_error("bad inject");
    return std::string("crash scheduled");
  };
  hooks.stop = [&stops] { ++stops; };
  TempDir dir("ctl");
  harness::ControlServer server((dir.path / "ctl.sock").string(),
                                std::move(hooks));

  EXPECT_EQ(server.handle_line("ping"), "pong\nok\n");
  EXPECT_EQ(server.handle_line("status"), "t_us=1 committed=2\nok\n");
  EXPECT_EQ(server.handle_line("gauges"), "a 1\nb 2\nok\n");
  EXPECT_EQ(server.handle_line("checkpoint"),
            "/tmp/x/ckpt_000000.hhcp\nok\n");
  EXPECT_EQ(server.handle_line("inject crash 3"), "crash scheduled\nok\n");
  EXPECT_EQ(server.handle_line("inject flood"), "err bad inject\n");
  EXPECT_EQ(server.handle_line("stop"), "stopping\nok\n");
  EXPECT_EQ(stops, 1);
  EXPECT_TRUE(server.handle_line("bogus").starts_with("err unknown"));
  EXPECT_TRUE(server.handle_line("help").find("checkpoint") !=
              std::string::npos);
}

TEST(ControlPlane, SocketRoundTrip) {
  harness::ControlHooks hooks;
  hooks.status = [] { return std::string("alive"); };
  TempDir dir("sock");
  const std::string path = (dir.path / "ctl.sock").string();
  harness::ControlServer server(path, std::move(hooks));

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  ASSERT_EQ(::send(fd, "status\n", 7, 0), 7);
  // One poll accepts the client and buffers the line; handlers run inline.
  std::size_t executed = 0;
  for (int i = 0; i < 10 && executed == 0; ++i) executed = server.poll();
  EXPECT_EQ(executed, 1u);
  char buf[64] = {};
  const ssize_t n = ::recv(fd, buf, sizeof(buf) - 1, 0);
  EXPECT_EQ(std::string(buf, static_cast<std::size_t>(n)), "alive\nok\n");
  ::close(fd);
}

TEST(ControlPlane, IdleSocketIsTraceNeutral) {
  const ExperimentResult plain = run_experiment(base_config());
  TempDir dir("idle");
  ExperimentConfig cfg = base_config();
  cfg.control_socket = (dir.path / "ctl.sock").string();
  cfg.control_poll_interval = millis(100);
  const ExperimentResult observed = run_experiment(cfg);
  // Polling an idle socket happens outside the engine: identical trace.
  EXPECT_EQ(observed.trace_hash, plain.trace_hash);
}

TEST(ControlPlane, InjectCrashChangesTraceAndRecovers) {
  // inject() schedules real serial-shard events: crashing a validator
  // mid-run must change the trace versus the unperturbed run, and the
  // restart path must bring the victim back (restarts counted).
  ExperimentConfig cfg = base_config(/*seed=*/35);
  const ExperimentResult plain = run_experiment(cfg);

  ExperimentRun run{cfg};
  run.advance_to(seconds(2));
  run.inject({"crash", "4"});
  run.advance_to(seconds(3));
  run.inject({"recover", "4"});
  run.advance_to(run.duration());
  const ExperimentResult r = run.finish();
  EXPECT_NE(r.trace_hash, plain.trace_hash);
  EXPECT_GE(r.restarts, 1u);
  EXPECT_GT(r.committed_anchors, 0u);
  EXPECT_THROW(run.inject({"crash", "99"}), std::runtime_error);
  EXPECT_THROW(run.inject({"warp", "1"}), std::runtime_error);
}

}  // namespace
}  // namespace hammerhead

// Unit tests: DAG types (headers, votes, certificates) and the Dag store
// (causal completeness, path queries, support counting, garbage collection).
#include <gtest/gtest.h>

#include "hammerhead/dag/dag.h"
#include "test_util.h"

namespace hammerhead::dag {
namespace {

using test::DagBuilder;

std::vector<ValidatorIndex> all_of(std::size_t n) {
  std::vector<ValidatorIndex> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<ValidatorIndex>(i);
  return v;
}

// ------------------------------------------------------------------- types

TEST(Types, HeaderDigestCommitsToAllFields) {
  DagBuilder b(4);
  auto base = b.make_cert(1, 0, {});
  auto other_author = b.make_cert(1, 1, {});
  auto other_round = b.make_cert(2, 0, {});
  EXPECT_NE(base->digest(), other_author->digest());
  EXPECT_NE(base->digest(), other_round->digest());
}

TEST(Types, HeaderDigestCommitsToPayload) {
  DagBuilder b(4);
  Transaction tx1{1, 0, 0};
  Transaction tx2{2, 0, 0};
  auto with_tx1 = b.make_cert(1, 0, {}, {tx1});
  auto with_tx2 = b.make_cert(1, 0, {}, {tx2});
  EXPECT_NE(with_tx1->digest(), with_tx2->digest());
}

TEST(Types, HeaderVerifyContentAcceptsValid) {
  DagBuilder b(4);
  auto cert = b.make_cert(1, 0, {});
  EXPECT_TRUE(cert->header->verify_content(b.committee()));
}

TEST(Types, HeaderVerifyContentRejectsTamperedSignature) {
  DagBuilder b(4);
  auto payload = std::make_shared<BlockPayload>();
  auto header = std::make_shared<Header>();
  header->author = 0;
  header->round = 1;
  header->payload = payload;
  header->finalize(crypto::Keypair::derive(1, 0));
  // Break the signature.
  auto tampered = std::make_shared<Header>(*header);
  tampered->signature.bytes[0] ^= 0xff;
  EXPECT_FALSE(tampered->verify_content(b.committee()));
}

TEST(Types, VoteRoundTrip) {
  DagBuilder b(4);
  auto cert = b.make_cert(1, 0, {});
  const crypto::Keypair voter_key = crypto::Keypair::derive(1, 2);
  const Vote vote = Vote::make(*cert->header, 2, voter_key);
  EXPECT_TRUE(vote.verify(b.committee()));
  EXPECT_EQ(vote.round, 1u);
  EXPECT_EQ(vote.header_author, 0u);
}

TEST(Types, VoteWithWrongKeyFailsVerification) {
  DagBuilder b(4);
  auto cert = b.make_cert(1, 0, {});
  // Voter 2 signs but the vote claims voter 3.
  Vote vote = Vote::make(*cert->header, 2, crypto::Keypair::derive(1, 2));
  vote.voter = 3;
  EXPECT_FALSE(vote.verify(b.committee()));
}

TEST(Types, CertificateVerifyAcceptsQuorum) {
  DagBuilder b(4);
  auto cert = b.make_cert(1, 0, {});
  EXPECT_TRUE(cert->verify(b.committee()));
  EXPECT_EQ(cert->signer_stake(b.committee()), 3u);
}

TEST(Types, CertificateVerifyRejectsSubQuorum) {
  DagBuilder b(4);
  auto good = b.make_cert(1, 0, {});
  auto bad = Certificate::make(good->header, {0, 1});  // only 2 of 4
  EXPECT_FALSE(bad->verify(b.committee()));
}

// Clone-and-tamper regression: the copy constructor must clear EVERY memo
// (verification flag, parent handles, ancestor bitmap) via the single
// reset_memos() path — a tampered clone inheriting a cached verify=ok, or a
// stale shared memo, would forge validity. The original's caches stay.
TEST(Types, CertificateCopyResetsAllMemos) {
  DagBuilder b(4);
  auto p0 = b.make_cert(0, 0, {});
  auto p1 = b.make_cert(0, 1, {});
  auto cert = b.make_cert(1, 0, {p0->digest(), p1->digest()});
  EXPECT_TRUE(cert->verify(b.committee()));  // caches verify=ok
  cert->memoize_parent_handles({0, 1});
  cert->memoize_ancestor_bitmap(0, 1, {0x3});
  ASSERT_NE(cert->parent_handle_memo(), nullptr);
  ASSERT_NE(cert->ancestor_bitmap_memo(0, 1), nullptr);

  auto clone = std::make_shared<Certificate>(*cert);
  EXPECT_EQ(clone->parent_handle_memo(), nullptr);
  EXPECT_EQ(clone->ancestor_bitmap_memo(0, 1), nullptr);
  // Tamper: strip the signer set below quorum. Were verify_state_ copied,
  // this would still report valid from the original's cached result.
  clone->signers = {0};
  EXPECT_FALSE(clone->verify(b.committee()));

  // The original is untouched: still valid, memos intact.
  EXPECT_TRUE(cert->verify(b.committee()));
  EXPECT_NE(cert->parent_handle_memo(), nullptr);
}

TEST(Types, CertificateMakeDeduplicatesAndSortsSigners) {
  DagBuilder b(4);
  auto good = b.make_cert(1, 0, {});
  auto cert = Certificate::make(good->header, {2, 0, 1, 2, 0});
  EXPECT_EQ(cert->signers, (std::vector<ValidatorIndex>{0, 1, 2}));
}

TEST(Types, CertificateParentLookup) {
  DagBuilder b(4);
  auto p0 = b.make_cert(0, 0, {});
  auto p1 = b.make_cert(0, 1, {});
  auto child = b.make_cert(1, 0, {p0->digest(), p1->digest()});
  EXPECT_TRUE(child->has_parent(p0->digest()));
  EXPECT_TRUE(child->has_parent(p1->digest()));
  EXPECT_FALSE(child->has_parent(Digest::of_string("nope")));
}

TEST(Types, WireSizesScaleWithContent) {
  DagBuilder b(4);
  auto small = b.make_cert(1, 0, {});
  auto big = b.make_cert(1, 0, {}, std::vector<Transaction>(10));
  EXPECT_GT(big->wire_size(), small->wire_size());
  EXPECT_GE(big->wire_size() - small->wire_size(),
            10 * Transaction::kWireSize);
}

// --------------------------------------------------------------------- dag

TEST(DagStore, InsertAndLookup) {
  DagBuilder b(4);
  Dag dag(b.committee());
  auto cert = b.make_cert(0, 2, {});
  EXPECT_TRUE(dag.insert(cert));
  EXPECT_TRUE(dag.contains(cert->digest()));
  EXPECT_TRUE(dag.contains(0, 2));
  EXPECT_EQ(dag.get(0, 2), cert);
  EXPECT_EQ(dag.get(cert->digest()), cert);
  EXPECT_EQ(dag.max_round(), 0u);
  EXPECT_EQ(dag.total_certs(), 1u);
}

TEST(DagStore, DuplicateInsertIsRejectedNotFatal) {
  DagBuilder b(4);
  Dag dag(b.committee());
  auto cert = b.make_cert(0, 2, {});
  EXPECT_TRUE(dag.insert(cert));
  EXPECT_FALSE(dag.insert(cert));
  EXPECT_EQ(dag.total_certs(), 1u);
}

TEST(DagStore, CausallyIncompleteInsertThrows) {
  DagBuilder b(4);
  Dag dag(b.committee());
  auto parent = b.make_cert(0, 0, {});  // never inserted
  auto child = b.make_cert(1, 0, {parent->digest()});
  EXPECT_FALSE(dag.parents_present(*child));
  EXPECT_EQ(dag.missing_parents(*child).size(), 1u);
  EXPECT_THROW(dag.insert(child), InvariantViolation);
}

TEST(DagStore, RoundAccounting) {
  DagBuilder b(4);
  Dag dag(b.committee());
  b.add_round(dag, 0, {0, 1, 2}, {});
  EXPECT_EQ(dag.round_size(0), 3u);
  EXPECT_EQ(dag.round_stake(0), 3u);
  EXPECT_EQ(dag.round_size(5), 0u);
  EXPECT_EQ(dag.round_certs(0).size(), 3u);
}

TEST(DagStore, DirectSupportCountsVotes) {
  DagBuilder b(4);
  Dag dag(b.committee());
  auto r0 = b.add_round(dag, 0, all_of(4), {});
  const CertPtr anchor = r0[1];  // vertex by validator 1 at round 0
  // Round 1: validators 0 and 2 reference the anchor; validator 3 does not.
  auto v0 = b.make_cert(1, 0, {anchor->digest(), r0[0]->digest()});
  auto v2 = b.make_cert(1, 2, {anchor->digest(), r0[2]->digest()});
  auto v3 = b.make_cert(1, 3, {r0[0]->digest(), r0[2]->digest()});
  dag.insert(v0);
  EXPECT_EQ(dag.direct_support(*anchor), 1u);
  dag.insert(v2);
  EXPECT_EQ(dag.direct_support(*anchor), 2u);
  dag.insert(v3);
  EXPECT_EQ(dag.direct_support(*anchor), 2u);  // v3 is not a vote
}

TEST(DagStore, PathFollowsParentEdges) {
  DagBuilder b(4);
  Dag dag(b.committee());
  auto last = b.add_full_rounds(dag, 3);
  auto first = dag.get(0, 0);
  ASSERT_NE(first, nullptr);
  EXPECT_TRUE(dag.has_path(*last[0], *first));
}

TEST(DagStore, PathToSelfIsTrue) {
  DagBuilder b(4);
  Dag dag(b.committee());
  auto r0 = b.add_round(dag, 0, {0}, {});
  EXPECT_TRUE(dag.has_path(*r0[0], *r0[0]));
}

TEST(DagStore, NoPathAcrossDisconnectedBranches) {
  DagBuilder b(4);
  Dag dag(b.committee());
  auto r0 = b.add_round(dag, 0, all_of(4), {});
  // Vertex at round 1 referencing only vertices {0,1,2}; no path to 3's.
  auto child =
      b.make_cert(1, 0, {r0[0]->digest(), r0[1]->digest(), r0[2]->digest()});
  dag.insert(child);
  EXPECT_TRUE(dag.has_path(*child, *r0[0]));
  EXPECT_FALSE(dag.has_path(*child, *r0[3]));
}

TEST(DagStore, PathNotFoundUpward) {
  DagBuilder b(4);
  Dag dag(b.committee());
  auto r0 = b.add_round(dag, 0, all_of(4), {});
  auto r1 = b.add_round(dag, 1, all_of(4), DagBuilder::digests_of(r0));
  EXPECT_FALSE(dag.has_path(*r0[0], *r1[0]));  // edges point down only
}

TEST(DagStore, CausalHistoryCollectsEverythingReachable) {
  DagBuilder b(4);
  Dag dag(b.committee());
  auto last = b.add_full_rounds(dag, 2);  // rounds 0,1,2 fully linked
  auto history =
      dag.causal_history(*last[0], [](const Certificate&) { return true; });
  // last[0] + 4 vertices in round 1 + 4 in round 0.
  EXPECT_EQ(history.size(), 9u);
}

TEST(DagStore, CausalHistoryRespectsKeepFilter) {
  DagBuilder b(4);
  Dag dag(b.committee());
  auto last = b.add_full_rounds(dag, 2);
  // Filter out round 0: traversal must stop there.
  auto history = dag.causal_history(*last[1], [](const Certificate& c) {
    return c.round() >= 1;
  });
  EXPECT_EQ(history.size(), 5u);  // 1 at round 2 + 4 at round 1
}

TEST(DagStore, CausalHistoryEmptyWhenRootFiltered) {
  DagBuilder b(4);
  Dag dag(b.committee());
  auto r0 = b.add_round(dag, 0, {0}, {});
  auto history =
      dag.causal_history(*r0[0], [](const Certificate&) { return false; });
  EXPECT_TRUE(history.empty());
}

TEST(DagStore, PruneBelowDropsOldRounds) {
  DagBuilder b(4);
  Dag dag(b.committee());
  b.add_full_rounds(dag, 5);
  const std::size_t before = dag.total_certs();
  dag.prune_below(3);
  EXPECT_EQ(dag.gc_floor(), 3u);
  EXPECT_EQ(dag.total_certs(), before - 3 * 4);
  EXPECT_EQ(dag.round_size(2), 0u);
  EXPECT_EQ(dag.round_size(3), 4u);
}

TEST(DagStore, InsertAtGcFloorToleratesMissingParents) {
  DagBuilder b(4);
  Dag dag(b.committee());
  auto last = b.add_full_rounds(dag, 4);
  dag.prune_below(3);
  // A certificate at the floor whose parents are pruned must be insertable
  // (recovering peers fetch history only above the floor).
  auto extra = b.make_cert(3, 0, {Digest::of_string("pruned-parent")});
  EXPECT_TRUE(dag.parents_present(*extra));
  (void)last;
}

TEST(DagStore, PruneIsIdempotentAndMonotone) {
  DagBuilder b(4);
  Dag dag(b.committee());
  b.add_full_rounds(dag, 4);
  dag.prune_below(2);
  dag.prune_below(2);
  dag.prune_below(1);  // lower floor: no-op
  EXPECT_EQ(dag.gc_floor(), 2u);
}

}  // namespace
}  // namespace hammerhead::dag

// Shared fixture for networked protocol tests: a full committee of Validators
// over the simulated network, with hooks for fault injection and for checking
// the paper's correctness properties (total order, schedule agreement).
#pragma once

#include <memory>
#include <vector>

#include "hammerhead/core/policies.h"
#include "hammerhead/net/network.h"
#include "hammerhead/node/byzantine.h"
#include "hammerhead/node/validator.h"
#include "hammerhead/sim/simulator.h"
#include "hammerhead/storage/store.h"

namespace hammerhead::test {

struct ClusterOptions {
  std::size_t n = 4;
  std::uint64_t seed = 1;
  net::NetConfig net;
  node::NodeConfig node;
  core::HammerHeadConfig hh;
  bool use_hammerhead = true;  // false = round-robin baseline
  SimTime latency_min = millis(5);
  SimTime latency_max = millis(25);
};

inline node::NodeConfig fast_node_config() {
  // Protocol-logic tests don't need the CPU model or slow production pacing.
  node::NodeConfig cfg;
  cfg.model_cpu = false;
  cfg.min_round_delay = millis(20);
  cfg.leader_timeout = millis(200);
  return cfg;
}

class Cluster {
 public:
  explicit Cluster(ClusterOptions options)
      : options_(options),
        sim_(options.seed),
        committee_(
            crypto::Committee::make_equal_stake(options.n, options.seed)),
        network_(sim_,
                 std::make_unique<net::UniformLatencyModel>(
                     options.latency_min, options.latency_max),
                 options.net, options.n),
        delivered_(options.n) {
    options_.node.key_seed = options.seed;
    for (ValidatorIndex v = 0; v < options.n; ++v) {
      stores_.push_back(std::make_unique<storage::Store>());
      validators_.push_back(std::make_unique<node::Validator>(
          sim_, network_, committee_, v, *stores_[v], options_.node,
          policy_factory(),
          [this](ValidatorIndex self, const consensus::CommittedSubDag& sd) {
            for (const auto& vert : sd.vertices)
              delivered_[self].push_back(vert->digest());
          }));
    }
  }

  node::Validator::PolicyFactory policy_factory() const {
    const std::uint64_t seed = options_.seed;
    if (options_.use_hammerhead) {
      const core::HammerHeadConfig hh = options_.hh;
      return [seed, hh](const crypto::Committee& c) {
        return std::make_unique<core::HammerHeadPolicy>(c, seed, hh);
      };
    }
    return [seed](const crypto::Committee& c) {
      return std::make_unique<core::RoundRobinPolicy>(c, seed);
    };
  }

  void set_behavior(ValidatorIndex v, node::Behavior behavior) {
    // Must be called before start(); rebuild the validator with the config.
    node::NodeConfig cfg = options_.node;
    cfg.behavior = behavior;
    validators_[v] = std::make_unique<node::Validator>(
        sim_, network_, committee_, v, *stores_[v], cfg, policy_factory(),
        [this](ValidatorIndex self, const consensus::CommittedSubDag& sd) {
          for (const auto& vert : sd.vertices)
            delivered_[self].push_back(vert->digest());
        });
  }

  void start() {
    for (auto& v : validators_) v->start();
  }

  void run_for(SimTime duration) { sim_.run_until(sim_.now() + duration); }

  /// BAB Total Order: every pair of delivery sequences is prefix-consistent.
  /// Returns true and fills `details` otherwise.
  bool total_order_holds(std::string* details = nullptr) const {
    for (std::size_t a = 0; a < delivered_.size(); ++a) {
      for (std::size_t b = a + 1; b < delivered_.size(); ++b) {
        const auto& x = delivered_[a];
        const auto& y = delivered_[b];
        const std::size_t common = std::min(x.size(), y.size());
        for (std::size_t i = 0; i < common; ++i) {
          if (x[i] != y[i]) {
            if (details)
              *details = "divergence between v" + std::to_string(a) + " and v" +
                         std::to_string(b) + " at position " +
                         std::to_string(i);
            return false;
          }
        }
      }
    }
    return true;
  }

  /// Schedule Agreement (Proposition 1): honest validators' epoch sequences
  /// agree on their common prefix.
  bool schedules_agree(const std::vector<ValidatorIndex>& honest) const {
    const core::ScheduleHistory* ref = nullptr;
    for (ValidatorIndex v : honest) {
      const auto* h = validators_[v]->policy().history();
      if (h == nullptr) continue;
      if (ref == nullptr) {
        ref = h;
        continue;
      }
      const std::size_t common = std::min(ref->num_epochs(), h->num_epochs());
      for (std::size_t i = 0; i < common; ++i) {
        const auto& ea = ref->epochs()[i];
        const auto& eb = h->epochs()[i];
        if (ea.initial_round != eb.initial_round) return false;
        if (ea.table.bad() != eb.table.bad()) return false;
        if (ea.table.good() != eb.table.good()) return false;
      }
    }
    return true;
  }

  sim::Simulator& sim() { return sim_; }
  net::Network& network() { return network_; }
  const crypto::Committee& committee() const { return committee_; }
  node::Validator& validator(ValidatorIndex v) { return *validators_[v]; }
  const std::vector<Digest>& delivered(ValidatorIndex v) const {
    return delivered_[v];
  }
  std::size_t min_delivered(const std::vector<ValidatorIndex>& nodes) const {
    std::size_t m = SIZE_MAX;
    for (ValidatorIndex v : nodes) m = std::min(m, delivered_[v].size());
    return m;
  }

 private:
  ClusterOptions options_;
  sim::Simulator sim_;
  crypto::Committee committee_;
  net::Network network_;
  std::vector<std::unique_ptr<storage::Store>> stores_;
  std::vector<std::unique_ptr<node::Validator>> validators_;
  std::vector<std::vector<Digest>> delivered_;
};

}  // namespace test

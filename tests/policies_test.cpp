// Unit tests: leader-schedule policies (round-robin, static, HammerHead
// scoring + cadences, Shoal-like scoring).
#include <gtest/gtest.h>

#include "hammerhead/core/policies.h"
#include "test_util.h"

namespace hammerhead::core {
namespace {

using test::DagBuilder;

// ------------------------------------------------------------- round robin

TEST(RoundRobin, MatchesBaseSchedule) {
  DagBuilder b(7);
  RoundRobinPolicy policy(b.committee(), 9);
  const BaseSchedule base = BaseSchedule::make(b.committee(), 9);
  for (Round r = 0; r < 40; ++r)
    EXPECT_EQ(policy.leader(r), base.slot(anchor_slot(r)));
}

TEST(RoundRobin, EveryValidatorGetsSlots) {
  DagBuilder b(7);
  RoundRobinPolicy policy(b.committee(), 9);
  std::set<ValidatorIndex> leaders;
  for (Round r = 0; r < 14; r += 2) leaders.insert(policy.leader(r));
  EXPECT_EQ(leaders.size(), 7u);
}

TEST(RoundRobin, NeverChangesSchedule) {
  DagBuilder b(4);
  RoundRobinPolicy policy(b.committee(), 9);
  EXPECT_FALSE(policy.maybe_change_schedule(1000));
  auto cert = b.make_cert(0, 0, {});
  EXPECT_FALSE(policy.on_anchor_committed(*cert));
  EXPECT_EQ(policy.history()->num_epochs(), 1u);
}

// ------------------------------------------------------------------ static

TEST(StaticLeader, AlwaysSameLeader) {
  StaticLeaderPolicy policy(3);
  for (Round r = 0; r < 100; ++r) EXPECT_EQ(policy.leader(r), 3u);
  EXPECT_EQ(policy.history(), nullptr);
}

// -------------------------------------------------------------- hammerhead

struct HammerHeadFixture {
  explicit HammerHeadFixture(std::size_t n, HammerHeadConfig cfg = {})
      : builder(n), dag(builder.committee()),
        policy(builder.committee(), 9, cfg) {}

  DagBuilder builder;
  dag::Dag dag;
  HammerHeadPolicy policy;
};

TEST(HammerHead, VoteForLeaderEarnsOnePoint) {
  HammerHeadFixture f(4);
  auto r0 = f.builder.add_round(f.dag, 0, {0, 1, 2, 3}, {});
  const ValidatorIndex leader0 = f.policy.leader(0);
  const dag::CertPtr leader_cert = f.dag.get(0, leader0);
  ASSERT_NE(leader_cert, nullptr);

  // Vertex by validator 2 at round 1 referencing the round-0 leader: +1.
  auto voter = f.builder.make_cert(
      1, 2, {leader_cert->digest(), r0[(leader0 + 1) % 4]->digest()});
  f.dag.insert(voter);
  f.policy.on_vertex_ordered(f.dag, *voter);
  EXPECT_EQ(f.policy.scores().score_of(2), 1);

  // Vertex by validator 3 NOT referencing the leader: no point.
  std::vector<Digest> non_leader_parents;
  for (const auto& c : r0)
    if (c->author() != leader0) non_leader_parents.push_back(c->digest());
  auto abstainer = f.builder.make_cert(1, 3, non_leader_parents);
  f.dag.insert(abstainer);
  f.policy.on_vertex_ordered(f.dag, *abstainer);
  EXPECT_EQ(f.policy.scores().score_of(3), 0);
}

TEST(HammerHead, RoundZeroVerticesScoreNothing) {
  HammerHeadFixture f(4);
  auto r0 = f.builder.add_round(f.dag, 0, {0, 1, 2, 3}, {});
  for (const auto& c : r0) f.policy.on_vertex_ordered(f.dag, *c);
  for (ValidatorIndex v = 0; v < 4; ++v)
    EXPECT_EQ(f.policy.scores().score_of(v), 0);
}

TEST(HammerHead, CommitsCadenceChangesAfterKCommits) {
  HammerHeadConfig cfg;
  cfg.cadence = ScheduleCadence::commits(3);
  HammerHeadFixture f(4, cfg);
  auto last = f.builder.add_full_rounds(f.dag, 8);
  (void)last;

  int changes = 0;
  for (Round r = 0; r <= 8; r += 2) {
    auto anchor = f.dag.get(r, f.policy.leader(r));
    ASSERT_NE(anchor, nullptr);
    if (f.policy.on_anchor_committed(*anchor)) {
      ++changes;
      // New epoch starts at the NEXT anchor round.
      EXPECT_EQ(f.policy.history()->current().initial_round, r + 2);
    }
  }
  EXPECT_EQ(changes, 1);  // 5 commits -> one change after the 3rd
  EXPECT_EQ(f.policy.commits_in_epoch(), 2u);
}

TEST(HammerHead, CommitsCadenceIgnoresMaybeChange) {
  HammerHeadConfig cfg;
  cfg.cadence = ScheduleCadence::commits(3);
  HammerHeadFixture f(4, cfg);
  EXPECT_FALSE(f.policy.maybe_change_schedule(100));
}

TEST(HammerHead, RoundsCadenceChangesAtBoundaryAnchor) {
  HammerHeadConfig cfg;
  cfg.cadence = ScheduleCadence::rounds(10);
  HammerHeadFixture f(4, cfg);
  EXPECT_FALSE(f.policy.maybe_change_schedule(8));
  EXPECT_TRUE(f.policy.maybe_change_schedule(10));
  // Epoch starts AT the boundary round (Algorithm 2).
  EXPECT_EQ(f.policy.history()->current().initial_round, 10u);
  // Next change requires another T rounds.
  EXPECT_FALSE(f.policy.maybe_change_schedule(14));
  EXPECT_TRUE(f.policy.maybe_change_schedule(20));
}

TEST(HammerHead, RoundsCadenceIgnoresCommitHook) {
  HammerHeadConfig cfg;
  cfg.cadence = ScheduleCadence::rounds(10);
  HammerHeadFixture f(4, cfg);
  auto cert = f.builder.make_cert(0, f.policy.leader(0), {});
  EXPECT_FALSE(f.policy.on_anchor_committed(*cert));
}

TEST(HammerHead, ScoresResetAtEpochBoundary) {
  HammerHeadConfig cfg;
  cfg.cadence = ScheduleCadence::rounds(4);
  HammerHeadFixture f(4, cfg);
  auto r0 = f.builder.add_round(f.dag, 0, {0, 1, 2, 3}, {});
  const ValidatorIndex leader0 = f.policy.leader(0);
  auto voter = f.builder.make_cert(1, 1, {f.dag.get(0, leader0)->digest()});
  f.dag.insert(voter);
  f.policy.on_vertex_ordered(f.dag, *voter);
  EXPECT_EQ(f.policy.scores().score_of(1), 1);
  EXPECT_TRUE(f.policy.maybe_change_schedule(4));
  EXPECT_EQ(f.policy.scores().score_of(1), 0);
}

TEST(HammerHead, LowScorersLoseSlots) {
  // After an epoch in which validators {0,1,2} voted and {3} never did, the
  // new schedule must never elect 3... on a 4-validator committee f=1, so
  // only the single worst (v3) is evicted.
  HammerHeadConfig cfg;
  cfg.cadence = ScheduleCadence::rounds(2);
  HammerHeadFixture f(4, cfg);
  auto r0 = f.builder.add_round(f.dag, 0, {0, 1, 2, 3}, {});
  const ValidatorIndex leader0 = f.policy.leader(0);
  for (ValidatorIndex v = 0; v < 3; ++v) {
    auto voter = f.builder.make_cert(1, v, {f.dag.get(0, leader0)->digest()});
    f.dag.insert(voter);
    f.policy.on_vertex_ordered(f.dag, *voter);
  }
  ASSERT_TRUE(f.policy.maybe_change_schedule(2));
  for (Round r = 2; r < 30; r += 2) EXPECT_NE(f.policy.leader(r), 3u);
}

// -------------------------------------------------------------- shoal-like

TEST(ShoalLike, CommittedLeadersGainSkippedLose) {
  DagBuilder b(4);
  ShoalLikePolicy policy(b.committee(), 9);
  auto anchor = b.make_cert(0, 2, {});
  policy.on_anchor_committed(*anchor);
  policy.on_anchor_committed(*anchor);
  policy.on_anchor_skipped(2, 1);
  EXPECT_EQ(policy.scores().score_of(2), 2);
  EXPECT_EQ(policy.scores().score_of(1), -1);
  EXPECT_EQ(policy.scores().score_of(0), 0);
}

TEST(ShoalLike, IgnoresVoteActivity) {
  // The Section 7 contrast: Shoal-like scoring does not reward voters.
  DagBuilder b(4);
  dag::Dag dag(b.committee());
  ShoalLikePolicy policy(b.committee(), 9);
  auto r0 = b.add_round(dag, 0, {0, 1, 2, 3}, {});
  auto voter = b.make_cert(1, 1, {dag.get(0, policy.leader(0))->digest()});
  dag.insert(voter);
  policy.on_vertex_ordered(dag, *voter);
  EXPECT_EQ(policy.scores().score_of(1), 0);
}

TEST(ShoalLike, CommitsCadenceEvictsSkippedLeader) {
  HammerHeadConfig cfg;
  cfg.cadence = ScheduleCadence::commits(2);
  DagBuilder b(4);
  ShoalLikePolicy policy(b.committee(), 9, cfg);
  // Pick a victim that is not one of the committed leaders, so its -1 score
  // is strictly the worst.
  ValidatorIndex victim = 0;
  while (victim == policy.leader(0) || victim == policy.leader(4)) ++victim;
  auto a0 = b.make_cert(0, policy.leader(0), {});
  policy.on_anchor_skipped(2, victim);
  EXPECT_FALSE(policy.on_anchor_committed(*a0));
  auto a4 = b.make_cert(4, policy.leader(4), {});
  EXPECT_TRUE(policy.on_anchor_committed(*a4));
  // The skipped victim (score -1) must be evicted in the new epoch.
  const Round start = policy.history()->current().initial_round;
  for (Round r = start; r < start + 20; r += 2)
    EXPECT_NE(policy.leader(r), victim);
}

}  // namespace
}  // namespace hammerhead::core

// Unit tests: the incremental commit index (dag/index.h) against the
// scan-based reference implementations. The index must answer has_path and
// direct_support exactly like the scans on arbitrary DAGs, across window
// fallbacks and garbage collection, and its trigger-candidate bookkeeping
// (supported rounds, crossing counter) must track threshold crossings.
// The SIMD bitmap kernels behind those sweeps (common/simd.h) are checked
// differentially here too: every dispatch level the host can execute must
// reproduce the scalar reference bit-exactly on random rows, including tail
// lengths no vector lane covers evenly and the 16-word rows of n=1000.
#include <gtest/gtest.h>

#include "hammerhead/common/rng.h"
#include "hammerhead/common/simd.h"
#include "hammerhead/dag/dag.h"
#include "test_util.h"

namespace hammerhead::dag {
namespace {

using test::DagBuilder;

std::vector<ValidatorIndex> all_of(std::size_t n) {
  std::vector<ValidatorIndex> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<ValidatorIndex>(i);
  return v;
}

/// Exhaustively compare index-backed queries against the scans.
void expect_index_matches_scan(const Dag& dag,
                               const std::vector<CertPtr>& certs) {
  for (const auto& from : certs) {
    if (!dag.contains(from->digest())) continue;
    ASSERT_EQ(dag.direct_support(*from), dag.direct_support_scan(*from))
        << "support mismatch for r" << from->round() << " by "
        << from->author();
    for (const auto& to : certs) {
      if (!dag.contains(to->digest())) continue;
      if (to->round() < dag.gc_floor()) continue;
      ASSERT_EQ(dag.has_path(*from, *to), dag.has_path_scan(*from, *to))
          << "path mismatch r" << from->round() << "/" << from->author()
          << " -> r" << to->round() << "/" << to->author();
    }
  }
}

TEST(DagIndex, MatchesScanOnRandomDags) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    DagBuilder b(7, /*seed=*/3);
    Dag dag(b.committee());
    const auto certs = test::generate_random_certs(b, rng, 15);
    for (const auto& c : certs) dag.insert(c);
    expect_index_matches_scan(dag, certs);
  }
}

TEST(DagIndex, WindowFallbackStaysExact) {
  DagBuilder b(4);
  Dag dag(b.committee(), IndexConfig{.ancestor_window = 3});
  b.add_full_rounds(dag, 10);
  std::vector<CertPtr> all;
  for (Round r = 0; r <= 10; ++r)
    for (const auto& c : dag.round_certs(r)) all.push_back(c);
  expect_index_matches_scan(dag, all);
  // Queries more than 3 rounds down must have taken the BFS fallback.
  EXPECT_GT(dag.index().stats().path_fallbacks, 0u);
  EXPECT_GT(dag.index().stats().path_hits, 0u);
}

TEST(DagIndex, SupportAccumulatesLikeTheScan) {
  DagBuilder b(4);
  Dag dag(b.committee());
  auto r0 = b.add_round(dag, 0, all_of(4), {});
  const CertPtr anchor = r0[1];
  auto v0 = b.make_cert(1, 0, {anchor->digest(), r0[0]->digest()});
  auto v2 = b.make_cert(1, 2, {anchor->digest(), r0[2]->digest()});
  auto v3 = b.make_cert(1, 3, {r0[0]->digest(), r0[2]->digest()});
  dag.insert(v0);
  EXPECT_EQ(dag.direct_support(*anchor), 1u);
  dag.insert(v2);
  EXPECT_EQ(dag.direct_support(*anchor), 2u);
  dag.insert(v3);
  EXPECT_EQ(dag.direct_support(*anchor), 2u);  // v3 is not a vote
  EXPECT_EQ(dag.direct_support(*anchor), dag.direct_support_scan(*anchor));
}

TEST(DagIndex, DuplicateParentDigestCountsAsOneVote) {
  // A Byzantine voter listing the same anchor digest twice must contribute
  // its stake once, exactly like the scan (which counts supporting
  // vertices, not references). Double-counting would let a single voter
  // cross the f+1 threshold and directly commit an unsupported anchor.
  DagBuilder b(4);  // validity threshold = 2
  Dag dag(b.committee());
  auto r0 = b.add_round(dag, 0, all_of(4), {});
  const CertPtr anchor = r0[0];
  auto double_ref =
      b.make_cert(1, 0, {anchor->digest(), anchor->digest(), r0[1]->digest()});
  ASSERT_EQ(double_ref->parents().size(), 3u);  // duplicate survives make()
  dag.insert(double_ref);
  EXPECT_EQ(dag.direct_support(*anchor), 1u);
  EXPECT_EQ(dag.direct_support(*anchor), dag.direct_support_scan(*anchor));
  EXPECT_EQ(dag.index().crossings(), 0u);  // threshold NOT crossed
}

TEST(DagIndex, SupportedRoundsTrackThresholdCrossings) {
  DagBuilder b(4);  // f = 1, validity threshold = 2
  Dag dag(b.committee());
  auto r0 = b.add_round(dag, 0, all_of(4), {});
  EXPECT_TRUE(dag.index().supported_rounds().empty());
  EXPECT_EQ(dag.index().crossings(), 0u);

  const CertPtr anchor = r0[0];
  dag.insert(b.make_cert(1, 0, {anchor->digest()}));
  EXPECT_EQ(dag.index().crossings(), 0u);  // support 1 < 2
  dag.insert(b.make_cert(1, 1, {anchor->digest()}));
  EXPECT_EQ(dag.index().crossings(), 1u);  // anchor crossed
  EXPECT_TRUE(dag.index().round_supported(0));

  // Further votes for the same vertex do not re-cross.
  dag.insert(b.make_cert(1, 2, {anchor->digest()}));
  EXPECT_EQ(dag.index().crossings(), 1u);

  // A second round-0 vertex crossing bumps the counter but the round is
  // already a candidate.
  dag.insert(b.make_cert(1, 3, {r0[1]->digest(), anchor->digest()}));
  EXPECT_EQ(dag.index().crossings(), 1u);  // r0[1] has support 1 only
  EXPECT_EQ(dag.index().supported_rounds(),
            (std::set<Round>{0}));
}

TEST(DagIndex, PruneDropsEntriesAndCandidateRounds) {
  DagBuilder b(4);
  Dag dag(b.committee());
  b.add_full_rounds(dag, 6);
  const std::size_t entries_before = dag.index().entries();
  const std::size_t words_before = dag.index().bitmap_words();
  EXPECT_EQ(entries_before, dag.total_certs());
  EXPECT_TRUE(dag.index().round_supported(0));

  dag.prune_below(3);
  EXPECT_EQ(dag.index().entries(), dag.total_certs());
  EXPECT_LT(dag.index().entries(), entries_before);
  EXPECT_LT(dag.index().bitmap_words(), words_before);
  EXPECT_FALSE(dag.index().round_supported(0));
  EXPECT_FALSE(dag.index().round_supported(2));
  EXPECT_TRUE(dag.index().round_supported(3));

  // Queries above the floor stay exact after pruning.
  std::vector<CertPtr> retained;
  for (Round r = 3; r <= 6; ++r)
    for (const auto& c : dag.round_certs(r)) retained.push_back(c);
  expect_index_matches_scan(dag, retained);
}

TEST(DagIndex, SlotCollisionFallsBackToScan) {
  // A certificate that is NOT in the DAG but occupies the same (round,
  // author) slot as a real ancestor must not borrow the in-DAG vertex's
  // bitmap bit.
  DagBuilder b(4);
  Dag dag(b.committee());
  auto r0 = b.add_round(dag, 0, all_of(4), {});
  auto child = b.make_cert(1, 0, DagBuilder::digests_of(r0));
  dag.insert(child);

  // Same slot (0, 1) as r0[1], different digest (different payload).
  auto impostor = b.make_cert(0, 1, {}, {dag::Transaction{42, 0, 0}});
  ASSERT_NE(impostor->digest(), r0[1]->digest());
  EXPECT_TRUE(dag.has_path(*child, *r0[1]));
  EXPECT_FALSE(dag.has_path(*child, *impostor));
  EXPECT_EQ(dag.has_path(*child, *impostor),
            dag.has_path_scan(*child, *impostor));
}

/// Pin a dispatch level for one scope; restores the host's best level on
/// exit so later tests exercise the production path again.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(simd::Level level) {
    active_ = simd::set_level(level);
  }
  ~ScopedSimdLevel() { simd::set_level(simd::max_level()); }
  simd::Level active() const { return active_; }

 private:
  simd::Level active_;
};

/// Word counts that stress every lane shape: sub-lane tails (1..3), exact
/// 128/256-bit multiples (2, 4, 8, 16 = the n=1000 row), and off-by-one
/// around them. 0 must be a no-op.
constexpr std::size_t kWordCounts[] = {0, 1,  2,  3,  4,  5,  7,
                                       8, 9, 15, 16, 17, 31, 33};

std::vector<std::uint64_t> random_row(Rng& rng, std::size_t words) {
  std::vector<std::uint64_t> row(words);
  for (auto& w : row) w = rng.next() | (rng.next() << 32);
  return row;
}

TEST(SimdKernels, AllLevelsMatchScalarOnRandomRows) {
  for (int lvl = 0; lvl <= static_cast<int>(simd::max_level()); ++lvl) {
    ScopedSimdLevel scoped(static_cast<simd::Level>(lvl));
    ASSERT_EQ(scoped.active(), static_cast<simd::Level>(lvl));
    Rng rng(0xC0FFEE + static_cast<std::uint64_t>(lvl));
    for (const std::size_t words : kWordCounts) {
      for (int iter = 0; iter < 16; ++iter) {
        const auto src = random_row(rng, words);
        const auto base = random_row(rng, words);

        // clear: dispatched result must equal an all-zero row. Guard words
        // flanking the buffer catch out-of-bounds lane stores.
        std::vector<std::uint64_t> guarded(words + 2, 0xDEADBEEFCAFEF00Dull);
        std::copy(base.begin(), base.end(), guarded.begin() + 1);
        simd::bitmap_clear(guarded.data() + 1, words);
        EXPECT_EQ(guarded.front(), 0xDEADBEEFCAFEF00Dull);
        EXPECT_EQ(guarded.back(), 0xDEADBEEFCAFEF00Dull);
        for (std::size_t w = 0; w < words; ++w) EXPECT_EQ(guarded[w + 1], 0u);

        // or_into: dispatched vs scalar on independent copies.
        auto dst_simd = base;
        auto dst_ref = base;
        simd::bitmap_or_into(dst_simd.data(), src.data(), words);
        simd::scalar::bitmap_or_into(dst_ref.data(), src.data(), words);
        EXPECT_EQ(dst_simd, dst_ref);

        // equals: identical rows, then one flipped bit (biased toward the
        // last word so tail handling is exercised).
        EXPECT_TRUE(
            simd::bitmap_equals(dst_simd.data(), dst_ref.data(), words));
        if (words > 0) {
          auto tweaked = dst_ref;
          const std::size_t word =
              (iter % 2 == 0) ? words - 1 : rng.next_below(words);
          tweaked[word] ^= 1ull << (rng.next() % 64);
          EXPECT_FALSE(
              simd::bitmap_equals(dst_simd.data(), tweaked.data(), words));
          EXPECT_EQ(simd::bitmap_equals(dst_simd.data(), tweaked.data(), words),
                    simd::scalar::bitmap_equals(dst_simd.data(), tweaked.data(),
                                                words));
        }

        // Fused or_into_equals: saturating case (ref == the union) and a
        // non-saturating one (ref with an extra bit the union lacks).
        auto fused_simd = base;
        auto fused_ref = base;
        const bool sat_simd = simd::bitmap_or_into_equals(
            fused_simd.data(), src.data(), dst_ref.data(), words);
        const bool sat_ref = simd::scalar::bitmap_or_into_equals(
            fused_ref.data(), src.data(), dst_ref.data(), words);
        EXPECT_EQ(sat_simd, sat_ref);
        EXPECT_TRUE(sat_simd);  // ref IS the union computed above
        EXPECT_EQ(fused_simd, fused_ref);
        if (words > 0) {
          auto over = dst_ref;
          const std::size_t word = rng.next_below(words);
          const std::uint64_t bit = 1ull << (rng.next() % 64);
          if ((over[word] & bit) == 0) {
            over[word] |= bit;
            auto d1 = base;
            auto d2 = base;
            EXPECT_EQ(simd::bitmap_or_into_equals(d1.data(), src.data(),
                                                  over.data(), words),
                      simd::scalar::bitmap_or_into_equals(
                          d2.data(), src.data(), over.data(), words));
            EXPECT_EQ(d1, d2);
          }
        }
      }
    }
  }
}

TEST(SimdKernels, DispatchPathsAgreeOnWideCommitteeRows) {
  // The n=1000 shape: 16-word rows, ORed in long chains like the index's
  // parent-union loop. Every available level must produce the same final
  // row and the same saturation verdicts as scalar.
  constexpr std::size_t kWords = 16;  // ceil(1000 / 64)
  Rng seed_rng(2024);
  std::vector<std::vector<std::uint64_t>> parents;
  for (int i = 0; i < 64; ++i) parents.push_back(random_row(seed_rng, kWords));
  std::vector<std::uint64_t> full(kWords, ~0ull);

  std::vector<std::uint64_t> expected;
  std::vector<bool> expected_sat;
  for (int lvl = 0; lvl <= static_cast<int>(simd::max_level()); ++lvl) {
    ScopedSimdLevel scoped(static_cast<simd::Level>(lvl));
    std::vector<std::uint64_t> row(kWords, 0);
    std::vector<bool> sat;
    for (const auto& p : parents)
      sat.push_back(simd::bitmap_or_into_equals(row.data(), p.data(),
                                                full.data(), kWords));
    if (lvl == 0) {
      expected = row;
      expected_sat = sat;
    } else {
      EXPECT_EQ(row, expected) << "level " << simd::level_name(scoped.active());
      EXPECT_EQ(sat, expected_sat);
    }
  }
}

TEST(DagIndex, QueryStatsAreCounted) {
  DagBuilder b(4);
  Dag dag(b.committee());
  auto last = b.add_full_rounds(dag, 4);
  auto first = dag.get(0, 0);
  ASSERT_NE(first, nullptr);
  EXPECT_TRUE(dag.has_path(*last[0], *first));
  EXPECT_EQ(dag.index().stats().path_hits, 1u);
  dag.direct_support(*first);
  EXPECT_EQ(dag.index().stats().support_hits, 1u);
}

}  // namespace
}  // namespace hammerhead::dag

// Integration tests: whole-committee behaviour across modules — total order
// under churn, schedule agreement, leader eviction end-to-end, partitions,
// GST transitions.
#include <gtest/gtest.h>

#include "cluster_util.h"

namespace hammerhead {
namespace {

using test::Cluster;
using test::ClusterOptions;
using test::fast_node_config;

std::vector<ValidatorIndex> range(std::size_t n) {
  std::vector<ValidatorIndex> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<ValidatorIndex>(i);
  return v;
}

TEST(Integration, TotalOrderFaultless) {
  ClusterOptions o;
  o.n = 7;
  o.node = fast_node_config();
  Cluster c(o);
  c.start();
  c.run_for(seconds(8));
  std::string why;
  EXPECT_TRUE(c.total_order_holds(&why)) << why;
  EXPECT_GT(c.min_delivered(range(7)), 100u);
}

TEST(Integration, ScheduleAgreementFaultless) {
  ClusterOptions o;
  o.n = 7;
  o.node = fast_node_config();
  o.hh.cadence = core::ScheduleCadence::commits(5);
  Cluster c(o);
  c.start();
  c.run_for(seconds(8));
  EXPECT_TRUE(c.schedules_agree(range(7)));
  // Several epochs must actually have happened for this to mean anything.
  const auto* h = c.validator(0).policy().history();
  ASSERT_NE(h, nullptr);
  EXPECT_GE(h->num_epochs(), 4u);
}

TEST(Integration, HammerHeadEvictsCrashedLeadersEndToEnd) {
  ClusterOptions o;
  o.n = 10;
  o.node = fast_node_config();
  o.hh.cadence = core::ScheduleCadence::commits(5);
  Cluster c(o);
  c.start();
  c.validator(8).crash();
  c.validator(9).crash();
  c.run_for(seconds(12));

  // After convergence, live validators' current schedules never elect the
  // crashed validators.
  for (ValidatorIndex v = 0; v < 8; ++v) {
    const auto* h = c.validator(v).policy().history();
    ASSERT_NE(h, nullptr);
    ASSERT_GE(h->num_epochs(), 2u) << "v" << v;
    const auto& bad = h->current().table.bad();
    EXPECT_TRUE(std::find(bad.begin(), bad.end(), 8u) != bad.end())
        << "v" << v << " did not evict crashed validator 8";
    EXPECT_TRUE(std::find(bad.begin(), bad.end(), 9u) != bad.end())
        << "v" << v << " did not evict crashed validator 9";
  }
  std::string why;
  EXPECT_TRUE(c.total_order_holds(&why)) << why;
  EXPECT_TRUE(c.schedules_agree(range(8)));
}

TEST(Integration, RoundRobinKeepsElectingCrashedLeaders) {
  // The baseline contrast: round-robin never adapts, so crashed validators
  // keep owning anchor slots and every such round times out.
  ClusterOptions o;
  o.n = 10;
  o.node = fast_node_config();
  o.use_hammerhead = false;
  Cluster c(o);
  c.start();
  c.validator(8).crash();
  c.validator(9).crash();
  c.run_for(seconds(12));
  std::uint64_t timeouts = 0;
  for (ValidatorIndex v = 0; v < 8; ++v)
    timeouts += c.validator(v).stats().leader_timeouts;
  EXPECT_GT(timeouts, 20u);
  std::string why;
  EXPECT_TRUE(c.total_order_holds(&why)) << why;
}

TEST(Integration, TotalOrderWithRoundsCadence) {
  // Algorithm 2 verbatim (rounds cadence): the boundary anchor itself is
  // re-evaluated under the new schedule; total order must still hold.
  ClusterOptions o;
  o.n = 7;
  o.node = fast_node_config();
  o.hh.cadence = core::ScheduleCadence::rounds(8);
  Cluster c(o);
  c.start();
  c.validator(6).crash();
  c.run_for(seconds(10));
  std::string why;
  EXPECT_TRUE(c.total_order_holds(&why)) << why;
  EXPECT_TRUE(c.schedules_agree(range(6)));
  const auto* h = c.validator(0).policy().history();
  EXPECT_GE(h->num_epochs(), 2u);
}

TEST(Integration, PartitionHealsAndCommitsResume) {
  ClusterOptions o;
  o.n = 7;
  o.node = fast_node_config();
  Cluster c(o);
  c.start();
  c.run_for(seconds(2));
  const auto before = c.validator(0).committer().commit_index();

  // Partition 3 vs 4: neither side has a quorum of 5.
  c.network().partition({0, 1, 2});
  c.run_for(seconds(3));
  const auto during = c.validator(0).committer().commit_index();
  EXPECT_LE(during, before + 2);  // in-flight only

  c.network().heal();
  c.run_for(seconds(5));
  EXPECT_GT(c.validator(0).committer().commit_index(), during + 5);
  std::string why;
  EXPECT_TRUE(c.total_order_holds(&why)) << why;
}

TEST(Integration, MinoritySideCatchesUpAfterHeal) {
  ClusterOptions o;
  o.n = 7;
  o.node = fast_node_config();
  Cluster c(o);
  c.start();
  c.run_for(seconds(1));
  c.network().partition({5, 6});  // majority of 5 keeps committing
  c.run_for(seconds(4));
  const auto majority = c.validator(0).committer().commit_index();
  const auto minority = c.validator(5).committer().commit_index();
  EXPECT_GT(majority, minority);
  c.network().heal();
  c.run_for(seconds(6));
  EXPECT_GE(c.validator(5).committer().commit_index(), majority);
  std::string why;
  EXPECT_TRUE(c.total_order_holds(&why)) << why;
}

TEST(Integration, AdversarialPreGstDelaysDoNotBreakSafety) {
  ClusterOptions o;
  o.n = 7;
  o.node = fast_node_config();
  o.net.gst = seconds(4);
  o.net.delta = seconds(1);
  o.net.max_adversarial_delay = seconds(3);
  o.hh.cadence = core::ScheduleCadence::commits(3);
  Cluster c(o);
  c.start();
  c.run_for(seconds(12));
  std::string why;
  EXPECT_TRUE(c.total_order_holds(&why)) << why;
  EXPECT_TRUE(c.schedules_agree(range(7)));
  // Liveness after GST: commits happened well beyond the pre-GST mess.
  EXPECT_GT(c.validator(0).committer().commit_index(), 10u);
}

TEST(Integration, SlowValidatorLosesReputation) {
  // A degraded (not crashed) validator — the Sui incident scenario — votes
  // late, scores poorly, and ends up in the bad set.
  ClusterOptions o;
  o.n = 7;
  o.node = fast_node_config();
  o.hh.cadence = core::ScheduleCadence::commits(5);
  Cluster c(o);
  c.start();
  c.network().set_slowdown(6, 12.0);
  c.validator(6).set_cpu_slowdown(12.0);
  c.run_for(seconds(12));
  const auto* h = c.validator(0).policy().history();
  ASSERT_GE(h->num_epochs(), 2u);
  const auto& bad = h->current().table.bad();
  EXPECT_TRUE(std::find(bad.begin(), bad.end(), 6u) != bad.end());
}

TEST(Integration, StakeWeightedCommitteeStillOrdersTotally) {
  ClusterOptions o;
  o.n = 4;
  o.node = fast_node_config();
  Cluster c(o);
  // Cluster uses equal stakes internally; weighted stakes go through the
  // harness (covered there). Here: sanity that 4-committee total order holds
  // with hammerhead cadence pressure.
  c.start();
  c.run_for(seconds(6));
  std::string why;
  EXPECT_TRUE(c.total_order_holds(&why)) << why;
}

}  // namespace
}  // namespace hammerhead

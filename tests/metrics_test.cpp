// Unit tests: harness measurement utilities (latency histogram percentiles,
// the transaction metrics collector's dedupe/warm-up semantics).
#include <gtest/gtest.h>

#include <cmath>

#include "hammerhead/harness/metrics.h"
#include "test_util.h"

namespace hammerhead::harness {
namespace {

TEST(LatencyHistogram, EmptyIsZeroEverywhere) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean_s(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile_s(50), 0.0);
  EXPECT_DOUBLE_EQ(h.max_s(), 0.0);
  EXPECT_DOUBLE_EQ(h.stdev_s(), 0.0);
}

TEST(LatencyHistogram, MeanAndMax) {
  LatencyHistogram h;
  h.record(seconds(1));
  h.record(seconds(2));
  h.record(seconds(3));
  EXPECT_DOUBLE_EQ(h.mean_s(), 2.0);
  EXPECT_DOUBLE_EQ(h.max_s(), 3.0);
  EXPECT_EQ(h.count(), 3u);
}

TEST(LatencyHistogram, PercentilesInterpolate) {
  LatencyHistogram h;
  for (int i = 1; i <= 100; ++i) h.record(seconds(i));
  EXPECT_NEAR(h.percentile_s(0), 1.0, 1e-9);
  EXPECT_NEAR(h.percentile_s(100), 100.0, 1e-9);
  EXPECT_NEAR(h.percentile_s(50), 50.5, 0.01);
  EXPECT_NEAR(h.percentile_s(95), 95.05, 0.1);
}

TEST(LatencyHistogram, SingleSample) {
  LatencyHistogram h;
  h.record(millis(1500));
  EXPECT_DOUBLE_EQ(h.percentile_s(50), 1.5);
  EXPECT_DOUBLE_EQ(h.stdev_s(), 0.0);
}

TEST(LatencyHistogram, StdevOfKnownSet) {
  LatencyHistogram h;
  h.record(seconds(2));
  h.record(seconds(4));
  h.record(seconds(4));
  h.record(seconds(4));
  h.record(seconds(5));
  h.record(seconds(5));
  h.record(seconds(7));
  h.record(seconds(9));
  // Sample stdev of {2,4,4,4,5,5,7,9} = sqrt(32/7).
  EXPECT_NEAR(h.stdev_s(), std::sqrt(32.0 / 7.0), 1e-9);
}

TEST(LatencyHistogram, RecordingAfterQueryKeepsSorting) {
  LatencyHistogram h;
  h.record(seconds(5));
  (void)h.percentile_s(50);
  h.record(seconds(1));
  EXPECT_DOUBLE_EQ(h.percentile_s(0), 1.0);
}

// --------------------------------------------------------------- collector

consensus::CommittedSubDag make_subdag(test::DagBuilder& b, Round round,
                                       std::vector<dag::Transaction> txs,
                                       std::uint64_t index, SimTime time) {
  consensus::CommittedSubDag sd;
  sd.anchor = b.make_cert(round, 0, {}, std::move(txs));
  sd.vertices = {sd.anchor};
  sd.commit_index = index;
  sd.commit_time = time;
  return sd;
}

TEST(MetricsCollector, RecordsLatencyForSubmittingValidatorOnly) {
  test::DagBuilder b(4);
  MetricsCollector collector(0);
  dag::Transaction tx{1, /*submitted_to=*/2, /*submit_time=*/seconds(1)};
  collector.on_tx_submitted(tx);

  const auto sd = make_subdag(b, 2, {tx}, 1, seconds(3));
  collector.on_commit(/*reporter=*/0, sd, 0);  // wrong reporter: ignored
  EXPECT_EQ(collector.committed(), 0u);
  collector.on_commit(/*reporter=*/2, sd, 0);
  EXPECT_EQ(collector.committed(), 1u);
  EXPECT_NEAR(collector.latency().mean_s(), 2.0, 1e-9);
}

TEST(MetricsCollector, CountsEachTransactionOnce) {
  test::DagBuilder b(4);
  MetricsCollector collector(0);
  dag::Transaction tx{1, 2, 0};
  collector.on_tx_submitted(tx);
  const auto sd = make_subdag(b, 2, {tx}, 1, seconds(1));
  collector.on_commit(2, sd, 0);
  collector.on_commit(2, sd, 0);  // duplicate report (e.g. replay)
  EXPECT_EQ(collector.committed(), 1u);
  EXPECT_EQ(collector.latency().count(), 1u);
}

TEST(MetricsCollector, WarmupExcludedFromLatencyButCounted) {
  test::DagBuilder b(4);
  MetricsCollector collector(/*measure_from=*/seconds(10));
  dag::Transaction early{1, 0, seconds(5)};
  dag::Transaction late{2, 0, seconds(15)};
  collector.on_tx_submitted(early);
  collector.on_tx_submitted(late);
  collector.on_commit(0, make_subdag(b, 2, {early, late}, 1, seconds(16)), 0);
  EXPECT_EQ(collector.committed(), 2u);            // both committed
  EXPECT_EQ(collector.measured_committed(), 1u);   // only the late one timed
  EXPECT_NEAR(collector.latency().mean_s(), 1.0, 1e-9);
}

TEST(MetricsCollector, ClientReturnLatencyIncluded) {
  test::DagBuilder b(4);
  MetricsCollector collector(0);
  dag::Transaction tx{1, 0, 0};
  collector.on_tx_submitted(tx);
  collector.on_commit(0, make_subdag(b, 2, {tx}, 1, seconds(2)), millis(500));
  EXPECT_NEAR(collector.latency().mean_s(), 2.5, 1e-9);
}

TEST(MetricsCollector, UnknownTransactionIgnored) {
  test::DagBuilder b(4);
  MetricsCollector collector(0);
  dag::Transaction tx{99, 0, 0};  // never submitted
  collector.on_commit(0, make_subdag(b, 2, {tx}, 1, seconds(1)), 0);
  EXPECT_EQ(collector.committed(), 0u);
}

}  // namespace
}  // namespace hammerhead::harness

// Shared helpers for protocol-layer tests: hand-construction of valid
// certificates and whole DAG rounds without running the networked stack.
#pragma once

#include <memory>
#include <set>
#include <vector>

#include "hammerhead/common/rng.h"
#include "hammerhead/crypto/committee.h"
#include "hammerhead/dag/dag.h"
#include "hammerhead/dag/types.h"

namespace hammerhead::test {

class DagBuilder {
 public:
  explicit DagBuilder(std::size_t n, std::uint64_t seed = 1)
      : committee_(crypto::Committee::make_equal_stake(n, seed)) {
    for (ValidatorIndex v = 0; v < n; ++v)
      keypairs_.push_back(crypto::Keypair::derive(seed, v));
  }

  const crypto::Committee& committee() const { return committee_; }

  /// A fully signed certificate (signed by the first 2f+1 validators).
  dag::CertPtr make_cert(Round round, ValidatorIndex author,
                         std::vector<Digest> parents,
                         std::vector<dag::Transaction> txs = {}) {
    auto payload = std::make_shared<dag::BlockPayload>();
    payload->txs = std::move(txs);
    auto header = std::make_shared<dag::Header>();
    header->author = author;
    header->round = round;
    std::sort(parents.begin(), parents.end());
    header->parents = std::move(parents);
    header->payload = std::move(payload);
    header->finalize(keypairs_[author]);

    std::vector<ValidatorIndex> signers;
    const std::size_t quorum =
        committee_.size() - committee_.max_faulty_count();
    for (ValidatorIndex v = 0; v < quorum; ++v) signers.push_back(v);
    return dag::Certificate::make(std::move(header), std::move(signers));
  }

  static std::vector<Digest> digests_of(
      const std::vector<dag::CertPtr>& certs) {
    std::vector<Digest> out;
    out.reserve(certs.size());
    for (const auto& c : certs) out.push_back(c->digest());
    return out;
  }

  /// Build round `round` vertices for `authors`, each referencing all of
  /// `parents` (digests), and insert them into `dag`.
  std::vector<dag::CertPtr> add_round(dag::Dag& dag, Round round,
                                      const std::vector<ValidatorIndex>&
                                          authors,
                                      const std::vector<Digest>& parents) {
    std::vector<dag::CertPtr> certs;
    for (ValidatorIndex a : authors) {
      auto cert = make_cert(round, a, parents);
      dag.insert(cert);
      certs.push_back(std::move(cert));
    }
    return certs;
  }

  /// Build rounds 0..last_round with every validator present and full parent
  /// links; returns the certificates of the last round.
  std::vector<dag::CertPtr> add_full_rounds(dag::Dag& dag, Round last_round) {
    std::vector<ValidatorIndex> all;
    for (ValidatorIndex v = 0; v < committee_.size(); ++v) all.push_back(v);
    std::vector<dag::CertPtr> prev = add_round(dag, 0, all, {});
    for (Round r = 1; r <= last_round; ++r)
      prev = add_round(dag, r, all, digests_of(prev));
    return prev;
  }

 private:
  crypto::Committee committee_;
  std::vector<crypto::Keypair> keypairs_;
};

/// Random DAG in causal order (parents first): each round keeps a random
/// quorum-or-more subset of authors; each vertex picks a random >= 2f+1
/// subset of the previous round as parents. Shared by the committer fuzz,
/// the index-correctness and the indexed/rescan equivalence tests.
inline std::vector<dag::CertPtr> generate_random_certs(DagBuilder& b, Rng& rng,
                                                       Round rounds) {
  std::vector<dag::CertPtr> out;
  const std::size_t n = b.committee().size();
  const std::size_t quorum = n - b.committee().max_faulty_count();

  std::vector<dag::CertPtr> prev;
  for (ValidatorIndex a = 0; a < n; ++a)
    prev.push_back(b.make_cert(0, a, {}));
  out = prev;

  for (Round r = 1; r <= rounds; ++r) {
    // Choose how many authors produce a vertex this round.
    const std::size_t authors =
        quorum + static_cast<std::size_t>(rng.next_below(n - quorum + 1));
    std::vector<ValidatorIndex> pool(n);
    for (std::size_t i = 0; i < n; ++i)
      pool[i] = static_cast<ValidatorIndex>(i);
    rng.shuffle(pool);
    pool.resize(authors);

    std::vector<dag::CertPtr> cur;
    for (ValidatorIndex a : pool) {
      // Random parent subset of size >= quorum.
      std::vector<dag::CertPtr> parent_pool = prev;
      rng.shuffle(parent_pool);
      const std::size_t num_parents =
          std::min(parent_pool.size(),
                   quorum + static_cast<std::size_t>(rng.next_below(
                                parent_pool.size() - quorum + 1)));
      parent_pool.resize(num_parents);
      auto cert = b.make_cert(r, a, DagBuilder::digests_of(parent_pool));
      cur.push_back(cert);
      out.push_back(cert);
    }
    prev = std::move(cur);
    if (prev.size() < quorum) break;  // cannot extend further
  }
  return out;
}

}  // namespace hammerhead::test

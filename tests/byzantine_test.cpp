// Byzantine-behaviour tests: equivocation attempts, vote withholding (the
// strategy HammerHead's scoring punishes, Section 7), and the "just slow
// enough" proposer from the static-leader discussion.
#include <gtest/gtest.h>

#include "cluster_util.h"

namespace hammerhead {
namespace {

using test::Cluster;
using test::ClusterOptions;
using test::fast_node_config;

ClusterOptions byz_options(std::size_t n = 7) {
  ClusterOptions o;
  o.n = n;
  o.node = fast_node_config();
  o.hh.cadence = core::ScheduleCadence::commits(4);
  return o;
}

TEST(Byzantine, EquivocatorCannotSplitTheDag) {
  Cluster c(byz_options());
  c.set_behavior(6, node::Behavior::Equivocator);
  c.start();
  c.run_for(seconds(6));

  // At most one certificate may exist for any (author, round) slot, and the
  // slot must resolve to the same digest in every honest DAG.
  const auto& dag0 = c.validator(0).dag();
  const auto max0 = dag0.max_round();
  ASSERT_TRUE(max0.has_value());
  for (Round r = dag0.gc_floor(); r <= *max0; ++r) {
    const auto c0 = dag0.get(r, 6);
    if (!c0) continue;
    for (ValidatorIndex v = 1; v < 6; ++v) {
      const auto cv = c.validator(v).dag().get(r, 6);
      if (cv) {
        EXPECT_EQ(cv->digest(), c0->digest())
            << "conflicting certificates for equivocator at round " << r;
      }
    }
  }
  std::string why;
  EXPECT_TRUE(c.total_order_holds(&why)) << why;
}

TEST(Byzantine, HonestValidatorsRefuseSecondVote) {
  Cluster c(byz_options());
  c.set_behavior(6, node::Behavior::Equivocator);
  c.start();
  c.run_for(seconds(4));
  std::uint64_t refusals = 0;
  for (ValidatorIndex v = 0; v < 6; ++v)
    refusals += c.validator(v).stats().equivocations_observed;
  EXPECT_GT(refusals, 0u);
}

TEST(Byzantine, ProgressDespiteEquivocator) {
  Cluster c(byz_options());
  c.set_behavior(6, node::Behavior::Equivocator);
  c.start();
  c.run_for(seconds(6));
  EXPECT_GT(c.validator(0).committer().commit_index(), 20u);
}

TEST(Byzantine, VoteWithholderLosesReputation) {
  // Section 7: "HammerHead assigns scores based on the frequency of votes
  // for leaders, discouraging Byzantine actors from withholding their
  // votes". A withholder still proposes (its vertices carry parent edges
  // chosen from whatever certificates it holds), but because it votes for
  // nobody, it never lends support... its score comes from its own vertices'
  // parent edges to leaders, which it still produces. The true signal: the
  // withholder's *votes* are missing, so leaders' certificates form without
  // it and other validators vote earlier. Its reputation relative to honest
  // peers drops because its vertices reach the leader less reliably.
  // The stronger, directly-testable effect of withholding is on OTHERS'
  // certificate formation latency, and on the withholder being scored like
  // any crashed-ish node when it also stops linking leaders. Here we check
  // the protocol tolerates it and keeps total order.
  Cluster c(byz_options());
  c.set_behavior(5, node::Behavior::VoteWithholder);
  c.start();
  c.run_for(seconds(6));
  EXPECT_GT(c.validator(0).committer().commit_index(), 15u);
  std::string why;
  EXPECT_TRUE(c.total_order_holds(&why)) << why;
  // The withholder sent no votes (only its implicit self-votes).
  EXPECT_EQ(c.validator(5).stats().votes_sent, 0u);
}

TEST(Byzantine, WithholderStillCertifiesOwnHeaders) {
  // With n=7 and one withholder, quorums of 5 exist without it; and its own
  // headers still gather votes from the honest 6.
  Cluster c(byz_options());
  c.set_behavior(5, node::Behavior::VoteWithholder);
  c.start();
  c.run_for(seconds(4));
  EXPECT_GT(c.validator(5).stats().certs_formed, 10u);
}

TEST(Byzantine, SlowProposerDragsRoundsWhenLeader) {
  // A proposer delaying its headers by 400 ms (vs 20 ms round delay) slows
  // every anchor round it leads under round-robin.
  ClusterOptions o = byz_options();
  o.use_hammerhead = false;
  Cluster slow(o);
  slow.set_behavior(0, node::Behavior::SlowProposer);
  slow.start();
  slow.run_for(seconds(6));

  Cluster healthy(byz_options());
  healthy.start();
  healthy.run_for(seconds(6));

  EXPECT_LT(slow.validator(1).last_proposed_round() + 10,
            healthy.validator(1).last_proposed_round());
}

TEST(Byzantine, HammerHeadEvictsSlowProposer) {
  // Under HammerHead the slow proposer's vertices arrive late, it votes
  // late, its score collapses, and it loses its leader slots — the dynamic-
  // schedule answer to the static-leader risk of Section 7.
  ClusterOptions o = byz_options();
  o.node.slow_proposer_delay = millis(400);
  Cluster c(o);
  c.set_behavior(2, node::Behavior::SlowProposer);
  c.start();
  c.run_for(seconds(10));
  const auto* h = c.validator(0).policy().history();
  ASSERT_NE(h, nullptr);
  ASSERT_GE(h->num_epochs(), 2u);
  const auto& bad = h->current().table.bad();
  EXPECT_TRUE(std::find(bad.begin(), bad.end(), 2u) != bad.end())
      << "slow proposer should be scored out of the schedule";
}

TEST(Byzantine, MixedFaultsStillSafeAndLive) {
  // f = 3 budget on n = 10: one equivocator, one withholder, one crash.
  ClusterOptions o = byz_options(10);
  Cluster c(o);
  c.set_behavior(9, node::Behavior::Equivocator);
  c.set_behavior(8, node::Behavior::VoteWithholder);
  c.start();
  c.validator(7).crash();
  c.run_for(seconds(8));
  EXPECT_GT(c.validator(0).committer().commit_index(), 15u);
  std::string why;
  EXPECT_TRUE(c.total_order_holds(&why)) << why;
  EXPECT_TRUE(c.schedules_agree({0, 1, 2, 3, 4, 5, 6}));
}

}  // namespace
}  // namespace hammerhead

// Property-based liveness tests: after GST, rounds advance and commits keep
// happening (Lemmas 3-4), and HammerHead achieves Leader Utilization
// (Lemma 6: rounds without a commit are bounded ~O(T * f), not linear in the
// execution length as with round-robin).
#include <gtest/gtest.h>

#include "cluster_util.h"

namespace hammerhead {
namespace {

using test::Cluster;
using test::ClusterOptions;
using test::fast_node_config;

struct LivenessCase {
  std::uint64_t seed;
  std::size_t n;
  std::size_t crashes;
  bool use_hammerhead;
};

std::string case_name(const testing::TestParamInfo<LivenessCase>& info) {
  const auto& c = info.param;
  return std::string(c.use_hammerhead ? "hh" : "rr") + "_seed" +
         std::to_string(c.seed) + "_n" + std::to_string(c.n) + "_f" +
         std::to_string(c.crashes);
}

class LivenessSweep : public testing::TestWithParam<LivenessCase> {};

TEST_P(LivenessSweep, CommitsKeepHappening) {
  const LivenessCase& p = GetParam();
  ClusterOptions o;
  o.n = p.n;
  o.seed = p.seed;
  o.node = fast_node_config();
  o.use_hammerhead = p.use_hammerhead;
  o.hh.cadence = core::ScheduleCadence::commits(4);
  Cluster c(o);
  c.start();
  for (std::size_t i = 0; i < p.crashes; ++i)
    c.validator(static_cast<ValidatorIndex>(p.n - 1 - i)).crash();

  // Commits strictly increase over consecutive observation windows.
  std::uint64_t last = 0;
  for (int window = 0; window < 4; ++window) {
    c.run_for(seconds(3));
    const std::uint64_t now_idx = c.validator(0).committer().commit_index();
    EXPECT_GT(now_idx, last) << "window " << window;
    last = now_idx;
  }
  // Rounds advance on every live validator.
  for (std::size_t v = 0; v < p.n - p.crashes; ++v)
    EXPECT_GT(c.validator(static_cast<ValidatorIndex>(v)).last_proposed_round(),
              40u);
}

std::vector<LivenessCase> make_cases() {
  std::vector<LivenessCase> cases;
  for (std::uint64_t seed : {3ull, 5ull}) {
    for (bool hh : {true, false}) {
      cases.push_back({seed, 4, 1, hh});
      cases.push_back({seed, 7, 2, hh});
      cases.push_back({seed, 10, 3, hh});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Executions, LivenessSweep,
                         testing::ValuesIn(make_cases()), case_name);

// ------------------------------------------------------- leader utilization

TEST(LeaderUtilization, HammerHeadBoundsSkippedAnchors) {
  // Lemma 6: with f crashed validators, HammerHead skips O(T * f) anchors in
  // total (the crashed ones are evicted after at most ~T commits each);
  // round-robin skips a constant fraction of all anchors forever. Compare
  // skip counts over a long run.
  auto run = [](bool hammerhead) {
    ClusterOptions o;
    o.n = 10;
    o.seed = 7;
    o.node = fast_node_config();
    o.use_hammerhead = hammerhead;
    o.hh.cadence = core::ScheduleCadence::commits(5);
    Cluster c(o);
    c.start();
    c.validator(7).crash();
    c.validator(8).crash();
    c.validator(9).crash();
    c.run_for(seconds(25));
    return c.validator(0).committer().stats();
  };
  const auto hh = run(true);
  const auto rr = run(false);

  // Round-robin: 3 of 10 slots stay crashed => skips scale with commits.
  EXPECT_GT(rr.skipped_anchors, rr.committed_anchors / 5);
  // HammerHead: skips happen only during the first epochs (bounded), then
  // stop; over a long run the total stays far below round-robin's.
  EXPECT_LT(hh.skipped_anchors * 3, rr.skipped_anchors);
  // And HammerHead commits more anchors overall.
  EXPECT_GT(hh.committed_anchors, rr.committed_anchors);
}

TEST(LeaderUtilization, SkipsStopAfterEviction) {
  ClusterOptions o;
  o.n = 7;
  o.seed = 13;
  o.node = fast_node_config();
  o.hh.cadence = core::ScheduleCadence::commits(4);
  Cluster c(o);
  c.start();
  c.validator(6).crash();
  // Let the schedule learn.
  c.run_for(seconds(10));
  const auto skipped_after_learning =
      c.validator(0).committer().stats().skipped_anchors;
  // From here on, no new skips should accumulate (crashed leader evicted).
  c.run_for(seconds(10));
  EXPECT_EQ(c.validator(0).committer().stats().skipped_anchors,
            skipped_after_learning);
}

TEST(LeaderUtilization, RecoveredValidatorIsReintegrated) {
  // Section 1: HammerHead "swiftly reintegrates them when they recover".
  // A validator crashes, gets evicted, recovers — eventually it earns its
  // way back into the schedule (not in the bad set any more).
  ClusterOptions o;
  o.n = 7;
  o.seed = 17;
  o.node = fast_node_config();
  // Keep the whole outage inside the GC window: a validator that falls
  // behind the garbage-collection horizon needs state sync (outside BAB) to
  // rejoin, which recovery_test covers separately.
  o.node.gc_depth = 1'000;
  o.hh.cadence = core::ScheduleCadence::commits(4);
  Cluster c(o);
  c.start();
  c.run_for(seconds(2));
  c.validator(6).crash();
  c.run_for(seconds(8));
  {
    const auto* h = c.validator(0).policy().history();
    const auto& bad = h->current().table.bad();
    ASSERT_TRUE(std::find(bad.begin(), bad.end(), 6u) != bad.end())
        << "crashed validator should be evicted first";
  }
  c.validator(6).restart();
  c.run_for(seconds(15));
  {
    const auto* h = c.validator(0).policy().history();
    const auto& bad = h->current().table.bad();
    EXPECT_TRUE(std::find(bad.begin(), bad.end(), 6u) == bad.end())
        << "recovered validator should re-enter the schedule";
  }
}

TEST(Liveness, ZeroLoadStillAdvances) {
  // The protocol is not transaction-driven: empty blocks keep the DAG and
  // the commit sequence moving.
  ClusterOptions o;
  o.n = 4;
  o.node = fast_node_config();
  Cluster c(o);
  c.start();
  c.run_for(seconds(5));
  EXPECT_GT(c.validator(0).committer().commit_index(), 10u);
}

TEST(Liveness, LateGstRunEventuallyCommits) {
  ClusterOptions o;
  o.n = 7;
  o.node = fast_node_config();
  o.net.gst = seconds(6);
  o.net.delta = seconds(1);
  o.net.max_adversarial_delay = seconds(4);
  Cluster c(o);
  c.start();
  c.run_for(seconds(14));
  // Well after GST: commits happened (Lemma 4).
  EXPECT_GT(c.validator(0).committer().commit_index(), 5u);
  std::string why;
  EXPECT_TRUE(c.total_order_holds(&why)) << why;
}

}  // namespace
}  // namespace hammerhead

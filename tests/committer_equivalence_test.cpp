// Equivalence tests for the incremental commit index: the Indexed committer
// (trigger events + O(1) index queries) must produce bit-identical commit
// sequences — same anchors, same CommittedSubDag contents, same commit
// indices — as the Rescan reference path, on seeded random DAGs (both commit
// rules, arbitrary arrival orders) and on full networked runs with Byzantine
// behaviours, crashes and recoveries.
#include <gtest/gtest.h>

#include "cluster_util.h"
#include "hammerhead/common/rng.h"
#include "hammerhead/consensus/committer.h"
#include "hammerhead/core/policies.h"
#include "test_util.h"

namespace hammerhead::consensus {
namespace {

using test::Cluster;
using test::ClusterOptions;
using test::DagBuilder;

/// One committer run over `sequence`, recording the full commit trace:
/// (anchor digest, commit index, ordered vertex digests) per sub-DAG.
struct CommitTrace {
  std::vector<Digest> anchors;
  std::vector<std::uint64_t> commit_indices;
  std::vector<Digest> vertices;
  std::uint64_t skipped = 0;
  std::uint64_t schedule_changes = 0;

  bool operator==(const CommitTrace&) const = default;
};

CommitTrace run_committer(const DagBuilder& b,
                          const std::vector<dag::CertPtr>& sequence,
                          CommitRule rule, TriggerScan scan, bool hammerhead) {
  dag::Dag dag(b.committee());
  std::unique_ptr<core::LeaderSchedulePolicy> policy;
  if (hammerhead) {
    core::HammerHeadConfig cfg;
    cfg.cadence = core::ScheduleCadence::commits(3);
    policy = std::make_unique<core::HammerHeadPolicy>(b.committee(), 1, cfg);
  } else {
    policy = std::make_unique<core::RoundRobinPolicy>(b.committee(), 1);
  }
  CommitTrace trace;
  BullsharkCommitter committer(
      b.committee(), dag, *policy,
      [&](const CommittedSubDag& sd) {
        trace.anchors.push_back(sd.anchor->digest());
        trace.commit_indices.push_back(sd.commit_index);
        for (const auto& v : sd.vertices) trace.vertices.push_back(v->digest());
      },
      rule, nullptr, scan);
  // Insert respecting causal completeness: repeatedly sweep the sequence.
  std::vector<dag::CertPtr> pending = sequence;
  while (!pending.empty()) {
    std::vector<dag::CertPtr> next;
    bool progress = false;
    for (auto& cert : pending) {
      if (dag.parents_present(*cert)) {
        if (dag.insert(cert)) committer.on_cert_inserted(cert);
        progress = true;
      } else {
        next.push_back(cert);
      }
    }
    if (!progress) break;  // remaining certs reference dropped vertices
    pending = std::move(next);
  }
  trace.skipped = committer.stats().skipped_anchors;
  trace.schedule_changes = committer.stats().schedule_changes;
  return trace;
}

class CommitterEquivalence : public testing::TestWithParam<std::uint64_t> {};

TEST_P(CommitterEquivalence, IndexedMatchesRescanOnRandomDags) {
  Rng rng(GetParam());
  DagBuilder b(7, /*seed=*/3);
  const auto certs = test::generate_random_certs(b, rng, 20);

  for (CommitRule rule :
       {CommitRule::DirectSupport, CommitRule::PaperTrigger}) {
    for (bool hammerhead : {false, true}) {
      const auto reference =
          run_committer(b, certs, rule, TriggerScan::Rescan, hammerhead);
      const auto indexed =
          run_committer(b, certs, rule, TriggerScan::Indexed, hammerhead);
      ASSERT_EQ(indexed, reference)
          << "indexed/rescan divergence (seed " << GetParam()
          << ", paper_rule=" << (rule == CommitRule::PaperTrigger)
          << ", hammerhead=" << hammerhead << ")";
      // And across arrival orders, against the same reference.
      auto shuffled = certs;
      rng.shuffle(shuffled);
      const auto replay =
          run_committer(b, shuffled, rule, TriggerScan::Indexed, hammerhead);
      ASSERT_EQ(replay, reference)
          << "indexed path depends on arrival order (seed " << GetParam()
          << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CommitterEquivalence,
                         testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

/// Full-stack Byzantine run: two identical clusters — one Indexed, one
/// Rescan — with a parent-withholder, a slow proposer and a crash/recovery,
/// must deliver bit-identical streams on every validator.
std::vector<std::vector<Digest>> run_byzantine_cluster(TriggerScan scan) {
  ClusterOptions options;
  options.n = 7;
  options.seed = 11;
  options.node = test::fast_node_config();
  options.node.trigger_scan = scan;
  options.hh.cadence = core::ScheduleCadence::commits(4);
  Cluster cluster(options);
  cluster.set_behavior(5, node::Behavior::ParentWithholder);
  cluster.set_behavior(6, node::Behavior::SlowProposer);
  cluster.sim().schedule_at(seconds(2), [&] { cluster.validator(4).crash(); });
  cluster.sim().schedule_at(seconds(5),
                            [&] { cluster.validator(4).restart(); });
  cluster.start();
  cluster.run_for(seconds(12));

  std::vector<std::vector<Digest>> delivered;
  for (ValidatorIndex v = 0; v < options.n; ++v)
    delivered.push_back(cluster.delivered(v));
  return delivered;
}

TEST(CommitterEquivalenceCluster, ByzantineRunIsBitIdentical) {
  const auto rescan = run_byzantine_cluster(TriggerScan::Rescan);
  const auto indexed = run_byzantine_cluster(TriggerScan::Indexed);
  ASSERT_EQ(rescan.size(), indexed.size());
  std::size_t total = 0;
  for (std::size_t v = 0; v < rescan.size(); ++v) {
    ASSERT_EQ(indexed[v], rescan[v]) << "divergence on validator " << v;
    total += rescan[v].size();
  }
  EXPECT_GT(total, 0u) << "cluster committed nothing; test is vacuous";
}

}  // namespace
}  // namespace hammerhead::consensus

// Tests: the adaptive-adversary framework (harness/adversary.h) — canned
// strategies move their counters while safety holds (conflicting_certs
// stays 0 under f < n/3 equivocators), withheld votes slow but never stop
// commits, eclipse windows heal and the victim recovers, per-link delay
// respects the partial-synchrony bound — plus the trace-hash determinism
// contract with adversaries active (jobs=1 == jobs=K, intra_jobs=1 == K)
// and the WAN latency-matrix loader feeding net::MatrixLatencyModel.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "hammerhead/harness/adversary.h"
#include "hammerhead/net/latency.h"

namespace hammerhead {
namespace {

using harness::AdversarySpec;
using harness::ExperimentConfig;
using harness::ExperimentResult;
using harness::SweepOptions;
using harness::SweepSpec;

/// Protocol-speed 7-validator run (f = 2): long enough that every strategy
/// fires several times, short enough for a unit-test budget.
ExperimentConfig adversary_config(std::uint64_t seed = 11) {
  ExperimentConfig cfg;
  cfg.num_validators = 7;
  cfg.seed = seed;
  cfg.duration = seconds(12);
  cfg.warmup = seconds(2);
  cfg.load_tps = 300;
  cfg.latency = harness::LatencyKind::Uniform;
  cfg.node.model_cpu = false;
  cfg.node.min_round_delay = millis(20);
  cfg.node.leader_timeout = millis(400);
  return cfg;
}

TEST(AdversaryEquivocation, DetectedAndSafe) {
  ExperimentConfig cfg = adversary_config();
  cfg.adversaries.push_back(harness::adversary_equivocate());
  const ExperimentResult r = harness::run_experiment(cfg);
  // The corrupted minority equivocated and honest nodes saw it...
  EXPECT_GT(r.adversary_ticks, 0u);
  EXPECT_GT(r.equivocations_sent, 0u);
  EXPECT_GT(r.equivocations_observed, 0u);
  // ...but vote uniqueness kept every equivocation out of the certified
  // DAG: no slot ever held two certificates (the safety property).
  EXPECT_EQ(r.conflicting_certs, 0u);
  // And the honest 2f+1 majority kept committing.
  EXPECT_GT(r.committed_anchors, 0u);
}

TEST(AdversaryWithholding, DelaysButCommits) {
  ExperimentConfig cfg = adversary_config();
  cfg.adversaries.push_back(harness::adversary_withhold_votes());
  const ExperimentResult r = harness::run_experiment(cfg);
  EXPECT_GT(r.votes_withheld, 0u);
  // n - f = 5 >= 2f + 1 honest votes still certify every anchor: commits
  // continue despite the starved leaders.
  EXPECT_GT(r.committed_anchors, 0u);
  EXPECT_EQ(r.conflicting_certs, 0u);
}

TEST(AdversaryEclipse, HealsAndRecovers) {
  ExperimentConfig cfg = adversary_config();
  // Fixed victim, one long window per quarter: links sever (messages are
  // held by the reliable channels) and restore on schedule.
  cfg.adversaries.push_back(
      harness::adversary_eclipse(/*window_frac=*/0.1, /*period_frac=*/0.3,
                                 /*fixed_victim=*/6));
  const ExperimentResult r = harness::run_experiment(cfg);
  EXPECT_GT(r.adversary_actions, 0u);
  EXPECT_GT(r.messages_held, 0u);   // the windows actually severed links
  EXPECT_GT(r.committed_anchors, 0u);  // quorum never included the victim
  EXPECT_EQ(r.conflicting_certs, 0u);
}

TEST(AdversaryDelay, BoundedByPartialSynchrony) {
  ExperimentConfig cfg = adversary_config();
  cfg.adversaries.push_back(harness::adversary_delay(/*delta_fraction=*/1.0));
  const ExperimentResult r = harness::run_experiment(cfg);
  EXPECT_GT(r.adversary_actions, 0u);
  // Even at the full delta stretch the fabric caps arrivals at
  // max(GST, send) + delta, so rounds advance and anchors commit.
  EXPECT_GT(r.committed_anchors, 0u);

  const ExperimentResult honest = harness::run_experiment(adversary_config());
  // The stretch is visible: worst-case latency at or above the honest run.
  EXPECT_GE(r.p95_latency_s, honest.p95_latency_s);
}

TEST(AdversaryComposition, StrategiesStack) {
  ExperimentConfig cfg = adversary_config();
  // scenario_adversary composes: withholding AND delay in one scenario.
  harness::scenario_adversary(
      {harness::adversary_withhold_votes(), harness::adversary_delay()})
      .apply(cfg);
  ASSERT_EQ(cfg.adversaries.size(), 2u);
  const ExperimentResult r = harness::run_experiment(cfg);
  EXPECT_GT(r.votes_withheld, 0u);
  EXPECT_GT(r.committed_anchors, 0u);
  EXPECT_EQ(r.conflicting_certs, 0u);
}

// --- determinism contract ---------------------------------------------------

TEST(AdversaryDeterminism, TraceHashInvariantAcrossIntraJobs) {
  for (const AdversarySpec& spec :
       {harness::adversary_equivocate(), harness::adversary_withhold_votes(),
        harness::adversary_eclipse(), harness::adversary_delay()}) {
    ExperimentConfig cfg = adversary_config();
    cfg.adversaries.push_back(spec);
    const ExperimentResult serial = harness::run_experiment(cfg);
    cfg.intra_jobs = 4;
    const ExperimentResult sharded = harness::run_experiment(cfg);
    EXPECT_EQ(harness::deterministic_signature(serial),
              harness::deterministic_signature(sharded))
        << "adversary " << spec.name;
  }
}

TEST(AdversaryDeterminism, SweepInvariantAcrossJobs) {
  SweepSpec spec;
  spec.name = "adv_determinism";
  spec.base = adversary_config();
  spec.base.duration = seconds(8);
  spec.committee_sizes = {7};
  spec.seeds = {1, 2};
  spec.adversaries = {AdversarySpec{},  // honest control rides along
                      harness::adversary_equivocate(),
                      harness::adversary_withhold_votes(),
                      harness::adversary_eclipse(),
                      harness::adversary_delay()};

  SweepOptions serial;
  serial.jobs = 1;
  const auto a = harness::run_sweep(spec, serial);
  SweepOptions wide;
  wide.jobs = 8;
  const auto b = harness::run_sweep(spec, wide);

  ASSERT_EQ(a.results.size(), b.results.size());
  ASSERT_TRUE(a.errors.empty()) << a.errors.front();
  ASSERT_TRUE(b.errors.empty()) << b.errors.front();
  for (std::size_t i = 0; i < a.results.size(); ++i)
    EXPECT_EQ(harness::deterministic_signature(a.results[i]),
              harness::deterministic_signature(b.results[i]))
        << a.cells[i].label;
  // Worst-case rows aggregate deterministically too.
  ASSERT_EQ(a.adversary_worst.size(), 4u);
  for (std::size_t i = 0; i < a.adversary_worst.size(); ++i) {
    EXPECT_EQ(a.adversary_worst[i].label, b.adversary_worst[i].label);
    EXPECT_EQ(a.adversary_worst[i].worst_p95_latency_s,
              b.adversary_worst[i].worst_p95_latency_s);
    EXPECT_EQ(a.adversary_worst[i].conflicting_certs, 0.0);
  }
}

TEST(AdversarySweepAxis, HonestSentinelPreservesGrid) {
  SweepSpec spec;
  spec.name = "axis";
  spec.base = adversary_config();
  spec.committee_sizes = {7};
  spec.seeds = {1, 2};

  // No axis vs an explicit honest sentinel: identical labels and seeds.
  const auto none = harness::expand_sweep(spec);
  spec.adversaries = {AdversarySpec{}};
  const auto sentinel = harness::expand_sweep(spec);
  ASSERT_EQ(none.size(), sentinel.size());
  for (std::size_t i = 0; i < none.size(); ++i) {
    EXPECT_EQ(none[i].label, sentinel[i].label);
    EXPECT_EQ(none[i].config.seed, sentinel[i].config.seed);
    EXPECT_TRUE(sentinel[i].config.adversaries.empty());
  }

  // A named adversary adds the /adv= fragment before /seed= and lands its
  // spec in the cell config.
  spec.adversaries = {AdversarySpec{}, harness::adversary_delay()};
  const auto cells = harness::expand_sweep(spec);
  ASSERT_EQ(cells.size(), 2u * none.size());
  EXPECT_EQ(cells[2].label, "policy=hammerhead/n=7/fault=faultless/adv=delay/seed=1");
  EXPECT_EQ(cells[2].adversary, "delay");
  ASSERT_EQ(cells[2].config.adversaries.size(), 1u);
}

// --- WAN latency matrix -----------------------------------------------------

TEST(LatencyMatrix, ParsesTraceText) {
  // 3 sites, one-way ms, '#' comments and blank lines ignored.
  const net::LatencyMatrix m = net::parse_latency_matrix(
      "# us-east  eu-west  ap-south\n"
      "0.1  40   110\n"
      "40   0.1  150\n"
      "110  150  0.1\n");
  ASSERT_EQ(m.sites(), 3u);
  EXPECT_EQ(m.one_way_us[0][1], millis(40));
  EXPECT_EQ(m.one_way_us[2][1], millis(150));
  EXPECT_THROW(net::parse_latency_matrix("0 1\n2\n"), InvariantViolation);
  EXPECT_THROW(net::parse_latency_matrix("0 x\ny 0\n"), InvariantViolation);
}

TEST(LatencyMatrix, LoadsFromFileAndDrivesRuns) {
  const std::string path = ::testing::TempDir() + "hh_latency_matrix.txt";
  {
    std::ofstream out(path);
    out << "1 30 90\n30 1 120\n90 120 1\n";
  }
  const net::LatencyMatrix m = net::load_latency_matrix(path);
  ASSERT_EQ(m.sites(), 3u);

  ExperimentConfig cfg = adversary_config();
  cfg.latency = harness::LatencyKind::Matrix;
  cfg.latency_matrix = m;
  const ExperimentResult r = harness::run_experiment(cfg);
  EXPECT_GT(r.committed_anchors, 0u);
  // Trace-driven latency is deterministic like every other model.
  const ExperimentResult again = harness::run_experiment(cfg);
  EXPECT_EQ(r.trace_hash, again.trace_hash);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hammerhead

// Unit tests: SHA-256 against FIPS 180-4 vectors, simulated signatures,
// committee stake arithmetic.
#include <gtest/gtest.h>

#include <string>

#include "hammerhead/common/hex.h"
#include "hammerhead/crypto/committee.h"
#include "hammerhead/crypto/keys.h"
#include "hammerhead/crypto/sha256.h"

namespace hammerhead::crypto {
namespace {

// ------------------------------------------------------------------ sha256

// Official NIST test vectors.
TEST(Sha256, EmptyString) {
  EXPECT_EQ(Sha256::hash(std::string("")).to_hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(Sha256::hash(std::string("abc")).to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(Sha256::hash(std::string(
                             "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmno"
                             "mnopnopq"))
                .to_hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(1'000, 'a');
  for (int i = 0; i < 1'000; ++i) h.update(chunk);
  EXPECT_EQ(h.finalize().to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, ExactBlockBoundary) {
  // 64 bytes: padding goes entirely into a second block.
  const std::string msg(64, 'x');
  const Digest whole = Sha256::hash(msg);
  Sha256 h;
  h.update(msg.substr(0, 31));
  h.update(msg.substr(31));
  EXPECT_EQ(h.finalize(), whole);
}

TEST(Sha256, FiftyFiveAndFiftySixBytes) {
  // 55 bytes: length fits the first block; 56: spills into a second.
  for (std::size_t len : {55u, 56u, 63u, 65u}) {
    const std::string msg(len, 'q');
    Sha256 a;
    a.update(msg);
    Sha256 b;
    for (char c : msg) b.update(std::string(1, c));
    EXPECT_EQ(a.finalize(), b.finalize()) << "length " << len;
  }
}

TEST(Sha256, StreamingEqualsOneShot) {
  const std::string msg = "the quick brown fox jumps over the lazy dog";
  Sha256 h;
  h.update(msg.substr(0, 10));
  h.update(msg.substr(10, 20));
  h.update(msg.substr(30));
  EXPECT_EQ(h.finalize(), Sha256::hash(msg));
}

TEST(Sha256, ResetStartsFresh) {
  Sha256 h;
  h.update(std::string("garbage"));
  h.reset();
  h.update(std::string("abc"));
  EXPECT_EQ(h.finalize().to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

// -------------------------------------------------------------------- keys

TEST(Keys, DerivationIsDeterministic) {
  const Keypair a = Keypair::derive(42, 3);
  const Keypair b = Keypair::derive(42, 3);
  EXPECT_EQ(a.public_key(), b.public_key());
}

TEST(Keys, DistinctSeedsAndIndicesGiveDistinctKeys) {
  EXPECT_NE(Keypair::derive(42, 3).public_key(),
            Keypair::derive(42, 4).public_key());
  EXPECT_NE(Keypair::derive(42, 3).public_key(),
            Keypair::derive(43, 3).public_key());
}

TEST(Keys, SignVerifyRoundTrip) {
  const Keypair kp = Keypair::derive(1, 0);
  const Digest msg = Digest::of_string("message");
  const Signature sig = kp.sign("ctx", msg);
  EXPECT_TRUE(verify(kp.public_key(), "ctx", msg, sig));
}

TEST(Keys, VerifyRejectsWrongMessage) {
  const Keypair kp = Keypair::derive(1, 0);
  const Signature sig = kp.sign("ctx", Digest::of_string("m1"));
  EXPECT_FALSE(verify(kp.public_key(), "ctx", Digest::of_string("m2"), sig));
}

TEST(Keys, VerifyRejectsWrongContext) {
  const Keypair kp = Keypair::derive(1, 0);
  const Digest msg = Digest::of_string("m");
  const Signature sig = kp.sign("header", msg);
  EXPECT_FALSE(verify(kp.public_key(), "vote", msg, sig));
}

TEST(Keys, VerifyRejectsWrongSigner) {
  const Keypair kp1 = Keypair::derive(1, 0);
  const Keypair kp2 = Keypair::derive(1, 1);
  const Digest msg = Digest::of_string("m");
  const Signature sig = kp1.sign("ctx", msg);
  EXPECT_FALSE(verify(kp2.public_key(), "ctx", msg, sig));
}

TEST(Keys, ZeroSignatureIsInvalid) {
  const Keypair kp = Keypair::derive(1, 0);
  Signature zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_FALSE(verify(kp.public_key(), "ctx", Digest::of_string("m"), zero));
}

// --------------------------------------------------------------- committee

TEST(Committee, EqualStakeThresholds) {
  // n = 3f + 1 -> f faulty, quorum 2f+1, validity f+1.
  const Committee c4 = Committee::make_equal_stake(4, 1);
  EXPECT_EQ(c4.total_stake(), 4u);
  EXPECT_EQ(c4.max_faulty_stake(), 1u);
  EXPECT_EQ(c4.quorum_threshold(), 3u);
  EXPECT_EQ(c4.validity_threshold(), 2u);

  const Committee c10 = Committee::make_equal_stake(10, 1);
  EXPECT_EQ(c10.max_faulty_stake(), 3u);
  EXPECT_EQ(c10.quorum_threshold(), 7u);
  EXPECT_EQ(c10.validity_threshold(), 4u);

  const Committee c100 = Committee::make_equal_stake(100, 1);
  EXPECT_EQ(c100.max_faulty_stake(), 33u);
  EXPECT_EQ(c100.quorum_threshold(), 67u);
  EXPECT_EQ(c100.validity_threshold(), 34u);
}

TEST(Committee, WeightedStakes) {
  const Committee c = Committee::make_with_stakes({10, 20, 30, 40}, 1);
  EXPECT_EQ(c.total_stake(), 100u);
  EXPECT_EQ(c.max_faulty_stake(), 33u);
  EXPECT_EQ(c.quorum_threshold(), 67u);
  EXPECT_EQ(c.validity_threshold(), 34u);
  EXPECT_EQ(c.stake_of(3), 40u);
  EXPECT_EQ(c.stake_of_set({0, 2}), 40u);
}

TEST(Committee, QuorumsAlwaysIntersectInHonestParty) {
  // Structural check over several sizes: two quorums overlap in > f stake.
  for (std::size_t n : {4u, 7u, 10u, 31u, 100u}) {
    const Committee c = Committee::make_equal_stake(n, 1);
    EXPECT_GT(2 * c.quorum_threshold(), c.total_stake() + c.max_faulty_stake())
        << "n=" << n;
  }
}

TEST(Committee, ValidatorKeysMatchDerivation) {
  const Committee c = Committee::make_equal_stake(4, 99);
  for (ValidatorIndex i = 0; i < 4; ++i)
    EXPECT_EQ(c.validator(i).key, Keypair::derive(99, i).public_key());
}

TEST(Committee, RejectsTooSmall) {
  EXPECT_THROW(Committee::make_equal_stake(3, 1), InvariantViolation);
}

TEST(Committee, RejectsZeroStake) {
  EXPECT_THROW(Committee::make_with_stakes({1, 0, 1, 1}, 1),
               InvariantViolation);
}

TEST(Committee, OutOfRangeValidatorThrows) {
  const Committee c = Committee::make_equal_stake(4, 1);
  EXPECT_THROW(c.validator(4), InvariantViolation);
}

}  // namespace
}  // namespace hammerhead::crypto

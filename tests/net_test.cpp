// Unit tests: latency models and the partially synchronous network
// (GST bound, adversarial delay, crash/slowdown/partition injection,
// bandwidth serialization).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "hammerhead/net/latency.h"
#include "hammerhead/net/network.h"
#include "hammerhead/sim/simulator.h"

namespace hammerhead::net {
namespace {

struct TestMsg final : Message {
  int value = 0;
  std::size_t size = 100;
  std::size_t wire_size() const override { return size; }
  const char* type_name() const override { return "test"; }
};

MessagePtr make_msg(int value, std::size_t size = 100) {
  auto m = std::make_shared<TestMsg>();
  m->value = value;
  m->size = size;
  return m;
}

int value_of(const MessagePtr& m) {
  return static_cast<const TestMsg&>(*m).value;
}

struct Delivery {
  ValidatorIndex to;
  ValidatorIndex from;
  int value;
  SimTime at;
};

struct Fixture {
  explicit Fixture(NetConfig cfg = {}, std::size_t n = 4,
                   SimTime lat_min = millis(10), SimTime lat_max = millis(10))
      : sim(1),
        net(sim, std::make_unique<UniformLatencyModel>(lat_min, lat_max), cfg,
            n) {
    for (ValidatorIndex v = 0; v < n; ++v) {
      net.register_handler(v, [this, v](ValidatorIndex from,
                                        const MessagePtr& msg) {
        deliveries.push_back({v, from, value_of(msg), sim.now()});
      });
    }
  }
  sim::Simulator sim;
  Network net;
  std::vector<Delivery> deliveries;
};

// ---------------------------------------------------------- latency models

TEST(LatencyModel, UniformWithinBounds) {
  UniformLatencyModel m(millis(5), millis(15));
  Rng rng(1);
  for (int i = 0; i < 1'000; ++i) {
    const SimTime l = m.sample(0, 1, rng);
    EXPECT_GE(l, millis(5));
    EXPECT_LE(l, millis(15));
  }
  EXPECT_EQ(m.expected(0, 1), millis(10));
}

TEST(LatencyModel, ThirteenAwsRegions) {
  EXPECT_EQ(aws_regions().size(), 13u);
  EXPECT_EQ(aws_regions()[0].name, "us-east-1");
}

TEST(LatencyModel, GeoStructureIsPlausible) {
  // Intra-region < intra-continent < trans-pacific.
  GeoLatencyModel geo(13);
  const SimTime same = GeoLatencyModel::region_rtt(0, 0);
  const SimTime us_east_west = GeoLatencyModel::region_rtt(0, 1);
  const SimTime london_paris = GeoLatencyModel::region_rtt(5, 6);
  const SimTime virginia_sydney = GeoLatencyModel::region_rtt(0, 10);
  EXPECT_LT(same, millis(2));
  EXPECT_GT(us_east_west, millis(30));
  EXPECT_LT(us_east_west, millis(110));
  EXPECT_LT(london_paris, millis(20));
  EXPECT_GT(virginia_sydney, millis(130));
}

TEST(LatencyModel, GeoIsSymmetric) {
  for (std::size_t a = 0; a < 13; ++a)
    for (std::size_t b = 0; b < 13; ++b)
      EXPECT_EQ(GeoLatencyModel::region_rtt(a, b),
                GeoLatencyModel::region_rtt(b, a));
}

TEST(LatencyModel, GeoValidatorsMapRoundRobinToRegions) {
  GeoLatencyModel geo(30);
  EXPECT_EQ(geo.region_of(0), 0u);
  EXPECT_EQ(geo.region_of(13), 0u);
  EXPECT_EQ(geo.region_of(14), 1u);
}

TEST(LatencyModel, GeoSampleJitterStaysNearExpected) {
  GeoLatencyModel geo(13, 0.05);
  Rng rng(2);
  const SimTime expected = geo.expected(0, 10);
  for (int i = 0; i < 500; ++i) {
    const SimTime s = geo.sample(0, 10, rng);
    EXPECT_GT(s, expected / 2);
    EXPECT_LT(s, expected * 2);
  }
}

// ----------------------------------------------------------------- network

TEST(Network, DeliversPointToPoint) {
  Fixture f;
  f.net.send(0, 1, make_msg(42));
  f.sim.run_to_completion();
  ASSERT_EQ(f.deliveries.size(), 1u);
  EXPECT_EQ(f.deliveries[0].to, 1u);
  EXPECT_EQ(f.deliveries[0].from, 0u);
  EXPECT_EQ(f.deliveries[0].value, 42);
  EXPECT_GE(f.deliveries[0].at, millis(10));
}

TEST(Network, BroadcastExcludesSender) {
  Fixture f;
  f.net.broadcast(2, make_msg(7));
  f.sim.run_to_completion();
  EXPECT_EQ(f.deliveries.size(), 3u);
  for (const auto& d : f.deliveries) EXPECT_NE(d.to, 2u);
}

TEST(Network, CrashedSenderSendsNothing) {
  Fixture f;
  f.net.crash(0);
  f.net.send(0, 1, make_msg(1));
  f.sim.run_to_completion();
  EXPECT_TRUE(f.deliveries.empty());
}

TEST(Network, CrashedReceiverDropsInFlight) {
  Fixture f;
  f.net.send(0, 1, make_msg(1));
  f.net.crash(1);  // crashes before delivery
  f.sim.run_to_completion();
  EXPECT_TRUE(f.deliveries.empty());
  EXPECT_EQ(f.net.stats().messages_dropped_crash, 1u);
}

TEST(Network, RecoveryRestoresDelivery) {
  Fixture f;
  f.net.crash(1);
  EXPECT_TRUE(f.net.is_crashed(1));
  f.net.recover(1);
  EXPECT_FALSE(f.net.is_crashed(1));
  f.net.send(0, 1, make_msg(5));
  f.sim.run_to_completion();
  EXPECT_EQ(f.deliveries.size(), 1u);
}

TEST(Network, SlowdownInflatesLatency) {
  Fixture f;
  f.net.set_slowdown(1, 4.0);
  f.net.send(0, 1, make_msg(1));
  f.sim.run_to_completion();
  ASSERT_EQ(f.deliveries.size(), 1u);
  EXPECT_GE(f.deliveries[0].at, millis(40));
  f.deliveries.clear();
  f.net.clear_slowdown(1);
  f.net.send(0, 1, make_msg(2));
  f.sim.run_to_completion();
  EXPECT_LT(f.deliveries[0].at - millis(40), millis(20));
}

TEST(Network, PartitionBuffersAndHealDelivers) {
  Fixture f;
  f.net.partition({0, 1});  // {0,1} vs {2,3}
  f.net.send(0, 2, make_msg(9));   // cross: held
  f.net.send(0, 1, make_msg(10));  // same side: flows
  f.sim.run_to_completion();
  ASSERT_EQ(f.deliveries.size(), 1u);
  EXPECT_EQ(f.deliveries[0].value, 10);

  f.net.heal();
  f.sim.run_to_completion();
  ASSERT_EQ(f.deliveries.size(), 2u);
  EXPECT_EQ(f.deliveries[1].value, 9);  // reliable channels: late, not lost
}

TEST(Network, PartialSynchronyBoundsPreGstDelay) {
  NetConfig cfg;
  cfg.gst = seconds(10);
  cfg.delta = seconds(1);
  cfg.max_adversarial_delay = seconds(100);  // adversary wants huge delays
  Fixture f(cfg);
  f.net.send(0, 1, make_msg(1));  // sent at t=0 < GST
  f.sim.run_to_completion();
  ASSERT_EQ(f.deliveries.size(), 1u);
  // Must arrive by max(GST, send) + delta = 11s.
  EXPECT_LE(f.deliveries[0].at, seconds(11));
  // And the adversary really did delay it past the raw latency.
  EXPECT_GT(f.deliveries[0].at, millis(10));
}

TEST(Network, AfterGstDeliveryWithinDelta) {
  NetConfig cfg;
  cfg.gst = millis(5);
  cfg.delta = seconds(1);
  cfg.max_adversarial_delay = seconds(100);
  Fixture f(cfg);
  f.sim.schedule_at(millis(50), [&] { f.net.send(0, 1, make_msg(2)); });
  f.sim.run_to_completion();
  ASSERT_EQ(f.deliveries.size(), 1u);
  EXPECT_LE(f.deliveries[0].at, millis(50) + seconds(1));
}

TEST(Network, BandwidthSerializesEgress) {
  NetConfig cfg;
  cfg.bandwidth_bytes_per_us = 1.0;  // 1 B/us: easy arithmetic
  Fixture f(cfg);
  // Two 10 KB messages: second waits for the first to clear the sender link.
  f.net.send(0, 1, make_msg(1, 10'000));
  f.net.send(0, 2, make_msg(2, 10'000));
  f.sim.run_to_completion();
  ASSERT_EQ(f.deliveries.size(), 2u);
  // First: tx 10ms + lat 10ms = 20ms. Second: tx ends at 20ms + lat = 30ms.
  EXPECT_NEAR(static_cast<double>(f.deliveries[0].at), millis(20), 1000.0);
  EXPECT_NEAR(static_cast<double>(f.deliveries[1].at), millis(30), 1000.0);
}

TEST(Network, UnlimitedBandwidthSkipsSerialization) {
  NetConfig cfg;
  cfg.unlimited_bandwidth = true;
  Fixture f(cfg);
  f.net.send(0, 1, make_msg(1, 1'000'000));
  f.net.send(0, 2, make_msg(2, 1'000'000));
  f.sim.run_to_completion();
  ASSERT_EQ(f.deliveries.size(), 2u);
  EXPECT_LE(f.deliveries[1].at, millis(11));
}

TEST(Network, StatsCountTraffic) {
  Fixture f;
  f.net.broadcast(0, make_msg(1, 250));
  f.sim.run_to_completion();
  EXPECT_EQ(f.net.stats().messages_sent, 3u);
  EXPECT_EQ(f.net.stats().messages_delivered, 3u);
  EXPECT_EQ(f.net.stats().bytes_sent, 750u);
}

// ------------------------------------------------- multicast fabric / sinks

TEST(Network, MulticastToExplicitRecipients) {
  Fixture f;
  f.net.multicast(0, make_msg(5), {1, 3});
  f.sim.run_to_completion();
  ASSERT_EQ(f.deliveries.size(), 2u);
  for (const auto& d : f.deliveries) {
    EXPECT_TRUE(d.to == 1 || d.to == 3);
    EXPECT_EQ(d.value, 5);
  }
}

TEST(Network, MulticastSkipsSenderAndOutOfRange) {
  Fixture f;
  f.net.multicast(2, make_msg(7), {2, 9, 1});
  f.sim.run_to_completion();
  ASSERT_EQ(f.deliveries.size(), 1u);
  EXPECT_EQ(f.deliveries[0].to, 1u);
}

TEST(Network, MulticastSharesOneFanoutRecord) {
  Fixture f;
  const std::uint64_t pooled = f.net.stats().fanouts_pooled;
  EXPECT_GT(pooled, 0u);  // records are pre-pooled at construction
  f.net.broadcast(0, make_msg(9));
  EXPECT_EQ(f.net.stats().fanouts_active, 1u);  // one record, three arrivals
  EXPECT_EQ(f.net.stats().fanouts_pooled, pooled - 1);
  f.sim.run_to_completion();
  EXPECT_EQ(f.deliveries.size(), 3u);
  EXPECT_EQ(f.net.stats().fanouts_active, 0u);
  EXPECT_EQ(f.net.stats().fanouts_pooled, pooled);  // recycled, not freed
  f.net.broadcast(1, make_msg(10));
  EXPECT_EQ(f.net.stats().fanouts_active, 1u);
  EXPECT_EQ(f.net.stats().fanouts_pooled, pooled - 1);  // reused a record
  f.sim.run_to_completion();
  EXPECT_EQ(f.deliveries.size(), 6u);
}

// ------------------------------------------------------------- tree fanout

TEST(Network, TreeFanoutDeliversToAllViaRelays) {
  NetConfig cfg;
  cfg.fanout_degree = 2;
  Fixture f(cfg, /*n=*/10);
  f.net.broadcast(0, make_msg(9));
  f.sim.run_to_completion();
  ASSERT_EQ(f.deliveries.size(), 9u);
  std::vector<bool> got(10, false);
  for (const auto& d : f.deliveries) {
    EXPECT_FALSE(got[d.to]) << "duplicate delivery to " << d.to;
    got[d.to] = true;
    EXPECT_EQ(d.value, 9);
  }
  // Every transmission serves exactly one recipient; with degree 2 the
  // origin only sends two of them itself, the rest ride relay hops.
  EXPECT_EQ(f.net.stats().messages_sent, 9u);
  EXPECT_EQ(f.net.stats().relay_sends, 7u);
  EXPECT_EQ(f.net.stats().tree_fallbacks, 0u);
  EXPECT_EQ(f.net.stats().fanouts_active, 0u);
}

TEST(Network, TreeFanoutWideDegreeMatchesFlatExactly) {
  // With degree >= n-1 the whole tree is the root hop: same recipients,
  // same accounting order, so the delivery schedule is bit-identical to
  // flat mode (same seed).
  Fixture flat({}, /*n=*/6);
  NetConfig cfg;
  cfg.fanout_degree = 5;
  Fixture tree(cfg, /*n=*/6);
  flat.net.broadcast(2, make_msg(4));
  tree.net.broadcast(2, make_msg(4));
  flat.sim.run_to_completion();
  tree.sim.run_to_completion();
  ASSERT_EQ(flat.deliveries.size(), tree.deliveries.size());
  for (std::size_t i = 0; i < flat.deliveries.size(); ++i) {
    EXPECT_EQ(flat.deliveries[i].to, tree.deliveries[i].to);
    EXPECT_EQ(flat.deliveries[i].from, tree.deliveries[i].from);
    EXPECT_EQ(flat.deliveries[i].at, tree.deliveries[i].at);
  }
  EXPECT_EQ(tree.net.stats().relay_sends, 0u);
}

TEST(Network, TreeFanoutCrashedRelaySubtreeFallsBackToOrigin) {
  // Positions for broadcast(0) at n=7: order = [1..6]; degree 2 makes
  // nodes 1 and 2 relays, with node 1's subtree {3, 4}. Crashing node 1
  // must not strand its subtree — it is re-expanded flat from the origin.
  NetConfig cfg;
  cfg.fanout_degree = 2;
  Fixture f(cfg, /*n=*/7);
  f.net.crash(1);
  f.net.broadcast(0, make_msg(3));
  f.sim.run_to_completion();
  ASSERT_EQ(f.deliveries.size(), 5u);
  std::vector<bool> got(7, false);
  for (const auto& d : f.deliveries) got[d.to] = true;
  for (ValidatorIndex v = 2; v < 7; ++v)
    EXPECT_TRUE(got[v]) << "node " << v << " starved by crashed relay";
  EXPECT_EQ(f.net.stats().tree_fallbacks, 1u);
  EXPECT_EQ(f.net.stats().messages_dropped_crash, 1u);
  // Fallback sends come from the origin, not the dead relay.
  for (const auto& d : f.deliveries) {
    if (d.to == 3 || d.to == 4) {
      EXPECT_EQ(d.from, 0u);
    }
  }
}

TEST(Network, TreeFanoutCutRelayLinkFallsBackToOrigin) {
  // Cut only the relay->child link 1->3: node 3 (and its empty subtree)
  // falls back to a flat origin send while node 4 still rides the relay.
  NetConfig cfg;
  cfg.fanout_degree = 2;
  Fixture f(cfg, /*n=*/7);
  f.net.cut_links({1}, {3}, /*symmetric=*/false);
  f.net.broadcast(0, make_msg(8));
  f.sim.run_to_completion();
  ASSERT_EQ(f.deliveries.size(), 6u);
  std::vector<int> count(7, 0);
  for (const auto& d : f.deliveries) ++count[d.to];
  for (ValidatorIndex v = 1; v < 7; ++v)
    EXPECT_EQ(count[v], 1) << "node " << v;
  EXPECT_EQ(f.net.stats().tree_fallbacks, 1u);
  EXPECT_EQ(f.net.stats().messages_held, 0u);
  for (const auto& d : f.deliveries) {
    if (d.to == 3) {
      EXPECT_EQ(d.from, 0u);
    }
  }
}

TEST(Network, TreeFanoutHeldFallbackFlushesOnRestore) {
  // Cut the origin->recipient link too: the fallback send is held exactly
  // like flat mode, and flushes on restore.
  NetConfig cfg;
  cfg.fanout_degree = 2;
  Fixture f(cfg, /*n=*/7);
  f.net.cut_links({1, 0}, {3}, /*symmetric=*/false);
  f.net.broadcast(0, make_msg(6));
  f.sim.run_to_completion();
  EXPECT_EQ(f.deliveries.size(), 5u);
  EXPECT_EQ(f.net.stats().messages_held, 1u);
  f.net.restore_links({1, 0}, {3}, /*symmetric=*/false);
  f.sim.run_to_completion();
  ASSERT_EQ(f.deliveries.size(), 6u);
  EXPECT_EQ(f.deliveries.back().to, 3u);
  EXPECT_EQ(f.deliveries.back().from, 0u);
}

TEST(Network, TreeFanoutRecipientListAndPoolRecycling) {
  NetConfig cfg;
  cfg.fanout_degree = 1;  // degenerate chain: worst case for relay depth
  Fixture f(cfg, /*n=*/8);
  f.net.multicast(0, make_msg(5), {1, 2, 3, 4, 5, 6, 7});
  f.sim.run_to_completion();
  ASSERT_EQ(f.deliveries.size(), 7u);
  EXPECT_EQ(f.net.stats().relay_sends, 6u);
  EXPECT_EQ(f.net.stats().fanouts_active, 0u);
  // The tree state must be recycled: a second multicast reuses it.
  f.net.multicast(0, make_msg(6), {1, 2, 3});
  f.sim.run_to_completion();
  EXPECT_EQ(f.deliveries.size(), 10u);
  EXPECT_EQ(f.net.stats().fanouts_active, 0u);
}

TEST(Network, SinkInterfaceDeliversLikeHandlers) {
  struct RecordingSink final : MsgSink {
    std::vector<int> values;
    void deliver(ValidatorIndex, const MessagePtr& msg) override {
      values.push_back(value_of(msg));
    }
  };
  sim::Simulator sim(1);
  Network net(sim, std::make_unique<UniformLatencyModel>(millis(5), millis(5)),
              NetConfig{}, 4);
  RecordingSink sink;
  net.register_sink(1, &sink);
  net.send(0, 1, make_msg(11));
  net.broadcast(3, make_msg(12));
  sim.run_to_completion();
  ASSERT_EQ(sink.values.size(), 2u);
  EXPECT_EQ(sink.values[0], 11);
  EXPECT_EQ(sink.values[1], 12);
}

TEST(Network, MulticastRespectsPartitionPerRecipient) {
  Fixture f;
  f.net.partition({0, 1});
  f.net.broadcast(0, make_msg(13));  // 1 same side; 2, 3 across
  f.sim.run_to_completion();
  ASSERT_EQ(f.deliveries.size(), 1u);
  EXPECT_EQ(f.deliveries[0].to, 1u);
  f.net.heal();
  f.sim.run_to_completion();
  EXPECT_EQ(f.deliveries.size(), 3u);
}

}  // namespace
}  // namespace hammerhead::net

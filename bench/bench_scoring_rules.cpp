// Scoring-rule comparison (Section 7, Related Work): HammerHead's vote-based
// reputation vs a Shoal-like rule (+1 committed leader, -1 skipped leader)
// vs the static-leader extreme, under two fault mixes:
//   (a) clean crash-faults — every adaptive rule should find them;
//   (b) a "just slow enough" proposer — the case the paper argues makes a
//       static leader too risky, and where vote-frequency scoring shines
//       because the sluggish validator bleeds points continuously even when
//       its anchors are eventually committed.
#include "bench_util.h"

using namespace hammerhead;
using namespace hammerhead::bench;

namespace {

void sweep(const char* title, std::size_t n, std::size_t crash_faults,
           bool add_slow_proposer, SimTime duration) {
  std::cout << "\n--- " << title << " ---\n";
  std::printf("%-14s %8s %8s %8s %9s %9s\n", "policy", "tput", "avg_s",
              "p95_s", "skipped", "epochs");
  for (auto policy :
       {harness::PolicyKind::HammerHead, harness::PolicyKind::ShoalLike,
        harness::PolicyKind::RoundRobin, harness::PolicyKind::StaticLeader}) {
    auto cfg = paper_config(n, /*load=*/500.0, crash_faults, policy);
    cfg.duration = duration;
    cfg.static_leader = 0;
    if (add_slow_proposer) {
      cfg.behaviors.push_back({0, node::Behavior::SlowProposer});
      cfg.node.slow_proposer_delay = millis(900);
    }
    const auto r = harness::run_experiment(cfg);
    std::printf("%-14s %8.0f %8.2f %8.2f %9llu %9llu\n",
                harness::policy_name(policy), r.throughput_tps,
                r.avg_latency_s, r.p95_latency_s,
                static_cast<unsigned long long>(r.skipped_anchors),
                static_cast<unsigned long long>(r.schedule_changes));
  }
}

}  // namespace

int main() {
  hammerhead::bench::JsonReport::instance().init("scoring_rules");
  const std::size_t n = quick_mode() ? 10 : 20;
  const SimTime duration = bench_duration(seconds(120));
  std::cout << "Scoring-rule ablation (Section 7): n=" << n << "\n";

  sweep("crash faults only", n, (n - 1) / 3, /*slow=*/false, duration);
  sweep("a 'just slow enough' proposer (v0), no crashes", n, 0,
        /*slow=*/true, duration);

  std::cout << "\nExpected shape: hammerhead and shoal-like both recover "
               "from crashes; the slow proposer case favours vote-frequency "
               "scoring (the laggard keeps landing anchors occasionally, so "
               "commit-based scores stay deceptively healthy); the static "
               "leader collapses whenever v0 is the degraded one.\n";
  return 0;
}

// Section 1 incident reproduction: the Sui mainnet event of August 29th,
// where ~10% of validators became less responsive for two hours under low
// load (~130 tx/s) and p95 latency rose from 3.0 s to 4.6 s (p50 from 1.9 s
// to 2.2 s) because round-robin kept electing the degraded validators.
//
// We run a 100-validator geo committee at low load, degrade 10 validators
// (CPU + links slowed) during a mid-run window, and report latency inside
// vs outside the window for round-robin Bullshark and HammerHead. The
// reproduction target: a visible p95 (and milder p50) penalty for
// round-robin during the window, largely absent under HammerHead, which
// evicts the degraded validators from the schedule and reintegrates them
// after recovery.
#include "bench_util.h"

using namespace hammerhead;
using namespace hammerhead::bench;

namespace {

struct WindowStats {
  double p50_before, p95_before, p50_during, p95_during;
};

WindowStats run(harness::PolicyKind policy, std::size_t n, SimTime window_from,
                SimTime window_to, SimTime duration) {
  // Run twice with identical seeds: once measuring only the pre-window
  // steady state, once measuring only the degradation window. (The harness
  // reports one histogram per run; the slow window is what differs.)
  auto base = paper_config(n, /*load=*/130.0, /*faults=*/0, policy);
  base.duration = duration;
  harness::SlowWindow w;
  for (ValidatorIndex v = 0; v < n / 10; ++v)
    w.nodes.push_back(static_cast<ValidatorIndex>(v * 10 + 3));
  w.factor = 8.0;
  w.from = window_from;
  w.to = window_to;

  // Phase A: measure [warmup, window_from) — no degradation yet.
  auto cfg_before = base;
  cfg_before.duration = window_from;
  cfg_before.slow_windows = {};
  const auto before = harness::run_experiment(cfg_before);

  // Phase B: same run with the window active, measuring from window start.
  auto cfg_during = base;
  cfg_during.warmup = window_from;  // measure inside the window only
  cfg_during.slow_windows = {w};
  const auto during = harness::run_experiment(cfg_during);

  return {before.p50_latency_s, before.p95_latency_s, during.p50_latency_s,
          during.p95_latency_s};
}

}  // namespace

int main() {
  hammerhead::bench::JsonReport::instance().init("incident_slow_validators");
  const std::size_t n = quick_mode() ? 20 : 100;
  const SimTime duration = bench_duration(seconds(120));
  const SimTime window_from = duration / 3;
  const SimTime window_to = duration;

  std::cout << "Section 1 incident: " << n / 10 << "/" << n
            << " validators degraded mid-run at 130 tx/s\n"
            << "(paper: p50 1.9->2.2 s, p95 3.0->4.6 s on mainnet under "
               "round-robin)\n\n";
  std::cout << "policy          p50_before  p95_before  p50_during  "
               "p95_during\n";
  for (auto policy :
       {harness::PolicyKind::RoundRobin, harness::PolicyKind::HammerHead}) {
    const WindowStats s = run(policy, n, window_from, window_to, duration);
    std::printf("%-14s  %9.2fs  %9.2fs  %9.2fs  %9.2fs\n",
                harness::policy_name(policy), s.p50_before, s.p95_before,
                s.p50_during, s.p95_during);
  }
  std::cout << "\nExpected shape: round-robin p95 inflates during the window; "
               "hammerhead stays near its baseline.\n";
  return 0;
}

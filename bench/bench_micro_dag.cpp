// Microbenchmarks: DAG insertion, support counting and path queries at the
// committee sizes of the paper's evaluation (plus 200 to probe beyond it).
//
// The *_Indexed/_Scan pairs quantify the incremental commit index
// (dag/index.h): direct_support drops from an O(n) round rescan to an O(1)
// accumulator lookup, and has_path from an O(V+E) BFS to an O(n/64) word
// test, at the cost of bitmap propagation folded into insert.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench_dag_util.h"
#include "bench_json.h"

using namespace hammerhead;
using hammerhead::bench::CertFactory;

static void BM_DagInsertRound(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  CertFactory b(n);
  for (auto _ : state) {
    state.PauseTiming();
    dag::Dag d(b.committee);
    std::vector<Digest> parents;
    std::vector<dag::CertPtr> round0, round1;
    for (ValidatorIndex a = 0; a < n; ++a) round0.push_back(b.cert(0, a, {}));
    for (const auto& c : round0) parents.push_back(c->digest());
    for (ValidatorIndex a = 0; a < n; ++a)
      round1.push_back(b.cert(1, a, parents));
    state.ResumeTiming();
    for (auto& c : round0) d.insert(c);
    for (auto& c : round1) d.insert(c);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2 *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_DagInsertRound)->Arg(10)->Arg(50)->Arg(100)->Arg(200);

// Steady-state insert cost including bitmap propagation over a deep DAG
// (the index maintenance the query speedups are paid for with).
static void BM_DagInsertDeep(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  CertFactory b(n);
  dag::Dag d(b.committee);
  std::vector<Digest> prev = b.fill(d, 10);
  Round r = 11;
  std::vector<dag::CertPtr> next;
  for (auto _ : state) {
    state.PauseTiming();
    next.clear();
    for (ValidatorIndex a = 0; a < n; ++a) next.push_back(b.cert(r, a, prev));
    state.ResumeTiming();
    for (auto& c : next) d.insert(c);
    state.PauseTiming();
    prev.clear();
    for (const auto& c : next) prev.push_back(c->digest());
    ++r;
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_DagInsertDeep)->Arg(10)->Arg(50)->Arg(100)->Arg(200);

static void BM_DagDirectSupportIndexed(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  CertFactory b(n);
  dag::Dag d(b.committee);
  b.fill(d, 4);
  const auto anchor = d.get(2, 0);
  for (auto _ : state) benchmark::DoNotOptimize(d.direct_support(*anchor));
}
BENCHMARK(BM_DagDirectSupportIndexed)->Arg(10)->Arg(50)->Arg(100)->Arg(200);

static void BM_DagDirectSupportScan(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  CertFactory b(n);
  dag::Dag d(b.committee);
  b.fill(d, 4);
  const auto anchor = d.get(2, 0);
  for (auto _ : state)
    benchmark::DoNotOptimize(d.direct_support_scan(*anchor));
}
BENCHMARK(BM_DagDirectSupportScan)->Arg(10)->Arg(50)->Arg(100)->Arg(200);

static void BM_DagPathQueryIndexed(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  CertFactory b(n);
  dag::Dag d(b.committee);
  b.fill(d, 10);
  const auto from = d.get(10, 0);
  const auto to = d.get(2, n > 1 ? 1 : 0);
  for (auto _ : state) benchmark::DoNotOptimize(d.has_path(*from, *to));
}
BENCHMARK(BM_DagPathQueryIndexed)->Arg(10)->Arg(50)->Arg(100)->Arg(200);

static void BM_DagPathQueryScan(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  CertFactory b(n);
  dag::Dag d(b.committee);
  b.fill(d, 10);
  const auto from = d.get(10, 0);
  const auto to = d.get(2, n > 1 ? 1 : 0);
  for (auto _ : state) benchmark::DoNotOptimize(d.has_path_scan(*from, *to));
}
BENCHMARK(BM_DagPathQueryScan)->Arg(10)->Arg(50)->Arg(100)->Arg(200);

static void BM_DagCausalHistory(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  CertFactory b(n);
  dag::Dag d(b.committee);
  b.fill(d, 10);
  const auto root = d.get(10, 0);
  for (auto _ : state) {
    auto h = d.causal_history(*root, [](const dag::Certificate&) {
      return true;
    });
    benchmark::DoNotOptimize(h);
  }
}
BENCHMARK(BM_DagCausalHistory)->Arg(10)->Arg(50)->Arg(100)->Arg(200);

// Handle-rooted variant: the committer's delivery path (walk-back resolved
// the anchor to a handle already).
static void BM_DagCausalHistoryById(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  CertFactory b(n);
  dag::Dag d(b.committee);
  b.fill(d, 10);
  const dag::VertexId root = d.id_of(10, 0);
  for (auto _ : state) {
    auto h = d.causal_history(root, [](const dag::Certificate&) {
      return true;
    });
    benchmark::DoNotOptimize(h);
  }
}
BENCHMARK(BM_DagCausalHistoryById)->Arg(10)->Arg(50)->Arg(100)->Arg(200);

static void BM_DagRoundCerts(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  CertFactory b(n);
  dag::Dag d(b.committee);
  b.fill(d, 6);
  for (auto _ : state) {
    auto certs = d.round_certs(3);
    benchmark::DoNotOptimize(certs);
  }
}
BENCHMARK(BM_DagRoundCerts)->Arg(10)->Arg(50)->Arg(100)->Arg(200);

// Copy-free slab walk (what the proposer / state-sync server now use).
static void BM_DagRoundView(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  CertFactory b(n);
  dag::Dag d(b.committee);
  b.fill(d, 6);
  for (auto _ : state) {
    std::size_t count = 0;
    d.for_each_round_cert(3, [&](const dag::CertPtr& c) {
      count += c->signers.size();
    });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_DagRoundView)->Arg(10)->Arg(50)->Arg(100)->Arg(200);

// Per-certificate parent-lookup memory at n=100: the sorted index-permutation
// that replaced Certificate's parent_set_ (an unordered_set<Digest>
// duplicating header->parents). The old cost is estimated from libstdc++
// node layout: per node 32B digest + 8B next pointer + ~16B allocator
// overhead, plus the 8B/bucket array.
static void report_parent_index_memory() {
  constexpr std::size_t kN = 100;
  CertFactory b(kN);
  std::vector<Digest> parents;
  {
    dag::Dag d(b.committee);
    parents = b.fill(d, 1);
  }
  const auto cert = b.cert(2, 0, parents);
  const std::size_t now_bytes = cert->parent_index_bytes();
  const std::size_t node_bytes = Digest::kSize + 8 + 16;
  const std::size_t buckets = 127;  // libstdc++ prime >= 100
  const std::size_t before_bytes =
      parents.size() * node_bytes + buckets * sizeof(void*);
  std::printf(
      "parent lookup memory per certificate at n=%zu (%zu parents): "
      "%zu B sorted index vs ~%zu B unordered_set (est.) — %.1fx smaller\n",
      kN, parents.size(), now_bytes, before_bytes,
      static_cast<double>(before_bytes) / static_cast<double>(now_bytes));
  hammerhead::bench::JsonReport::instance().row(
      "parent_index_memory_n100",
      {{"parents", static_cast<double>(parents.size())},
       {"sorted_index_bytes", static_cast<double>(now_bytes)},
       {"unordered_set_bytes_est", static_cast<double>(before_bytes)}});
}

int main(int argc, char** argv) {
  hammerhead::bench::JsonReport::instance().init("micro_dag_memory");
  report_parent_index_memory();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

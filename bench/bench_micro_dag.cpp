// Microbenchmarks: DAG insertion, support counting and path queries at the
// committee sizes of the paper's evaluation (plus 200 to probe beyond it).
//
// The *_Indexed/_Scan pairs quantify the incremental commit index
// (dag/index.h): direct_support drops from an O(n) round rescan to an O(1)
// accumulator lookup, and has_path from an O(V+E) BFS to an O(n/64) word
// test, at the cost of bitmap propagation folded into insert.
#include <benchmark/benchmark.h>

#include "bench_dag_util.h"

using namespace hammerhead;
using hammerhead::bench::CertFactory;

static void BM_DagInsertRound(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  CertFactory b(n);
  for (auto _ : state) {
    state.PauseTiming();
    dag::Dag d(b.committee);
    std::vector<Digest> parents;
    std::vector<dag::CertPtr> round0, round1;
    for (ValidatorIndex a = 0; a < n; ++a) round0.push_back(b.cert(0, a, {}));
    for (const auto& c : round0) parents.push_back(c->digest());
    for (ValidatorIndex a = 0; a < n; ++a)
      round1.push_back(b.cert(1, a, parents));
    state.ResumeTiming();
    for (auto& c : round0) d.insert(c);
    for (auto& c : round1) d.insert(c);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2 *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_DagInsertRound)->Arg(10)->Arg(50)->Arg(100)->Arg(200);

// Steady-state insert cost including bitmap propagation over a deep DAG
// (the index maintenance the query speedups are paid for with).
static void BM_DagInsertDeep(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  CertFactory b(n);
  dag::Dag d(b.committee);
  std::vector<Digest> prev = b.fill(d, 10);
  Round r = 11;
  std::vector<dag::CertPtr> next;
  for (auto _ : state) {
    state.PauseTiming();
    next.clear();
    for (ValidatorIndex a = 0; a < n; ++a) next.push_back(b.cert(r, a, prev));
    state.ResumeTiming();
    for (auto& c : next) d.insert(c);
    state.PauseTiming();
    prev.clear();
    for (const auto& c : next) prev.push_back(c->digest());
    ++r;
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_DagInsertDeep)->Arg(10)->Arg(50)->Arg(100)->Arg(200);

static void BM_DagDirectSupportIndexed(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  CertFactory b(n);
  dag::Dag d(b.committee);
  b.fill(d, 4);
  const auto anchor = d.get(2, 0);
  for (auto _ : state) benchmark::DoNotOptimize(d.direct_support(*anchor));
}
BENCHMARK(BM_DagDirectSupportIndexed)->Arg(10)->Arg(50)->Arg(100)->Arg(200);

static void BM_DagDirectSupportScan(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  CertFactory b(n);
  dag::Dag d(b.committee);
  b.fill(d, 4);
  const auto anchor = d.get(2, 0);
  for (auto _ : state)
    benchmark::DoNotOptimize(d.direct_support_scan(*anchor));
}
BENCHMARK(BM_DagDirectSupportScan)->Arg(10)->Arg(50)->Arg(100)->Arg(200);

static void BM_DagPathQueryIndexed(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  CertFactory b(n);
  dag::Dag d(b.committee);
  b.fill(d, 10);
  const auto from = d.get(10, 0);
  const auto to = d.get(2, n > 1 ? 1 : 0);
  for (auto _ : state) benchmark::DoNotOptimize(d.has_path(*from, *to));
}
BENCHMARK(BM_DagPathQueryIndexed)->Arg(10)->Arg(50)->Arg(100)->Arg(200);

static void BM_DagPathQueryScan(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  CertFactory b(n);
  dag::Dag d(b.committee);
  b.fill(d, 10);
  const auto from = d.get(10, 0);
  const auto to = d.get(2, n > 1 ? 1 : 0);
  for (auto _ : state) benchmark::DoNotOptimize(d.has_path_scan(*from, *to));
}
BENCHMARK(BM_DagPathQueryScan)->Arg(10)->Arg(50)->Arg(100)->Arg(200);

static void BM_DagCausalHistory(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  CertFactory b(n);
  dag::Dag d(b.committee);
  b.fill(d, 10);
  const auto root = d.get(10, 0);
  for (auto _ : state) {
    auto h = d.causal_history(*root, [](const dag::Certificate&) {
      return true;
    });
    benchmark::DoNotOptimize(h);
  }
}
BENCHMARK(BM_DagCausalHistory)->Arg(10)->Arg(50);

BENCHMARK_MAIN();

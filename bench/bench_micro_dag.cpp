// Microbenchmarks: DAG insertion, support counting and path queries at the
// committee sizes of the paper's evaluation (plus 200 to probe beyond it).
//
// The *_Indexed/_Scan pairs quantify the incremental commit index
// (dag/index.h): direct_support drops from an O(n) round rescan to an O(1)
// accumulator lookup, and has_path from an O(V+E) BFS to an O(n/64) word
// test, at the cost of bitmap propagation folded into insert.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench_dag_util.h"
#include "bench_json.h"
#include "hammerhead/common/epoch.h"
#include "hammerhead/dag/resolve.h"

using namespace hammerhead;
using hammerhead::bench::CertFactory;

static void BM_DagInsertRound(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  CertFactory b(n);
  for (auto _ : state) {
    state.PauseTiming();
    dag::Dag d(b.committee);
    std::vector<Digest> parents;
    std::vector<dag::CertPtr> round0, round1;
    for (ValidatorIndex a = 0; a < n; ++a) round0.push_back(b.cert(0, a, {}));
    for (const auto& c : round0) parents.push_back(c->digest());
    for (ValidatorIndex a = 0; a < n; ++a)
      round1.push_back(b.cert(1, a, parents));
    state.ResumeTiming();
    for (auto& c : round0) d.insert(c);
    for (auto& c : round1) d.insert(c);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2 *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_DagInsertRound)->Arg(10)->Arg(50)->Arg(100)->Arg(200);

// Steady-state insert cost including bitmap propagation over a deep DAG
// (the index maintenance the query speedups are paid for with).
static void BM_DagInsertDeep(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  CertFactory b(n);
  dag::Dag d(b.committee);
  std::vector<Digest> prev = b.fill(d, 10);
  Round r = 11;
  std::vector<dag::CertPtr> next;
  for (auto _ : state) {
    state.PauseTiming();
    next.clear();
    for (ValidatorIndex a = 0; a < n; ++a) next.push_back(b.cert(r, a, prev));
    state.ResumeTiming();
    for (auto& c : next) d.insert(c);
    state.PauseTiming();
    prev.clear();
    for (const auto& c : next) prev.push_back(c->digest());
    ++r;
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_DagInsertDeep)->Arg(10)->Arg(50)->Arg(100)->Arg(200);

static void BM_DagDirectSupportIndexed(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  CertFactory b(n);
  dag::Dag d(b.committee);
  b.fill(d, 4);
  const auto anchor = d.get(2, 0);
  for (auto _ : state) benchmark::DoNotOptimize(d.direct_support(*anchor));
}
BENCHMARK(BM_DagDirectSupportIndexed)->Arg(10)->Arg(50)->Arg(100)->Arg(200);

static void BM_DagDirectSupportScan(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  CertFactory b(n);
  dag::Dag d(b.committee);
  b.fill(d, 4);
  const auto anchor = d.get(2, 0);
  for (auto _ : state)
    benchmark::DoNotOptimize(d.direct_support_scan(*anchor));
}
BENCHMARK(BM_DagDirectSupportScan)->Arg(10)->Arg(50)->Arg(100)->Arg(200);

static void BM_DagPathQueryIndexed(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  CertFactory b(n);
  dag::Dag d(b.committee);
  b.fill(d, 10);
  const auto from = d.get(10, 0);
  const auto to = d.get(2, n > 1 ? 1 : 0);
  for (auto _ : state) benchmark::DoNotOptimize(d.has_path(*from, *to));
}
BENCHMARK(BM_DagPathQueryIndexed)->Arg(10)->Arg(50)->Arg(100)->Arg(200);

static void BM_DagPathQueryScan(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  CertFactory b(n);
  dag::Dag d(b.committee);
  b.fill(d, 10);
  const auto from = d.get(10, 0);
  const auto to = d.get(2, n > 1 ? 1 : 0);
  for (auto _ : state) benchmark::DoNotOptimize(d.has_path_scan(*from, *to));
}
BENCHMARK(BM_DagPathQueryScan)->Arg(10)->Arg(50)->Arg(100)->Arg(200);

static void BM_DagCausalHistory(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  CertFactory b(n);
  dag::Dag d(b.committee);
  b.fill(d, 10);
  const auto root = d.get(10, 0);
  for (auto _ : state) {
    auto h = d.causal_history(*root, [](const dag::Certificate&) {
      return true;
    });
    benchmark::DoNotOptimize(h);
  }
}
BENCHMARK(BM_DagCausalHistory)->Arg(10)->Arg(50)->Arg(100)->Arg(200);

// Handle-rooted variant: the committer's delivery path (walk-back resolved
// the anchor to a handle already).
static void BM_DagCausalHistoryById(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  CertFactory b(n);
  dag::Dag d(b.committee);
  b.fill(d, 10);
  const dag::VertexId root = d.id_of(10, 0);
  for (auto _ : state) {
    auto h = d.causal_history(root, [](const dag::Certificate&) {
      return true;
    });
    benchmark::DoNotOptimize(h);
  }
}
BENCHMARK(BM_DagCausalHistoryById)->Arg(10)->Arg(50)->Arg(100)->Arg(200);

static void BM_DagRoundCerts(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  CertFactory b(n);
  dag::Dag d(b.committee);
  b.fill(d, 6);
  for (auto _ : state) {
    auto certs = d.round_certs(3);
    benchmark::DoNotOptimize(certs);
  }
}
BENCHMARK(BM_DagRoundCerts)->Arg(10)->Arg(50)->Arg(100)->Arg(200);

// Copy-free slab walk (what the proposer / state-sync server now use).
static void BM_DagRoundView(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  CertFactory b(n);
  dag::Dag d(b.committee);
  b.fill(d, 6);
  for (auto _ : state) {
    std::size_t count = 0;
    d.for_each_round_cert(3, [&](const dag::CertPtr& c) {
      count += c->signers.size();
    });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_DagRoundView)->Arg(10)->Arg(50)->Arg(100)->Arg(200);

// Per-certificate parent-lookup memory at n=100: the sorted index-permutation
// that replaced Certificate's parent_set_ (an unordered_set<Digest>
// duplicating header->parents). The old cost is estimated from libstdc++
// node layout: per node 32B digest + 8B next pointer + ~16B allocator
// overhead, plus the 8B/bucket array.
static void report_parent_index_memory() {
  constexpr std::size_t kN = 100;
  CertFactory b(kN);
  std::vector<Digest> parents;
  {
    dag::Dag d(b.committee);
    parents = b.fill(d, 1);
  }
  const auto cert = b.cert(2, 0, parents);
  const std::size_t now_bytes = cert->parent_index_bytes();
  const std::size_t node_bytes = Digest::kSize + 8 + 16;
  const std::size_t buckets = 127;  // libstdc++ prime >= 100
  const std::size_t before_bytes =
      parents.size() * node_bytes + buckets * sizeof(void*);
  std::printf(
      "parent lookup memory per certificate at n=%zu (%zu parents): "
      "%zu B sorted index vs ~%zu B unordered_set (est.) — %.1fx smaller\n",
      kN, parents.size(), now_bytes, before_bytes,
      static_cast<double>(before_bytes) / static_cast<double>(now_bytes));
  hammerhead::bench::JsonReport::instance().row(
      "parent_index_memory_n100",
      {{"parents", static_cast<double>(parents.size())},
       {"sorted_index_bytes", static_cast<double>(now_bytes)},
       {"unordered_set_bytes_est", static_cast<double>(before_bytes)}});
}

// ---- digest resolution: guarded map vs epoch-snapshot reader ---------------
//
// The read-mostly resolution layer's headline numbers: shard workers
// resolving digests against the published snapshot (plain loads under an
// epoch::Guard, zero atomic RMW) versus the prior design's mutex-guarded
// unordered_map, at 1..8 reader threads; plus the single-thread floor, where
// the open-addressed writer probe must not lose to the plain map it
// replaced. Hand-rolled rather than google-benchmark because the comparison
// needs matched custom thread counts and one JSON row per thread count
// (rows gate in tools/bench_compare.py, which skips speedup rows whose
// thread count exceeds the host's cores).

static constexpr std::size_t kResolveEntries = 1 << 16;
static constexpr std::size_t kResolveLookups = 1 << 18;  // per thread

static std::vector<Digest> resolve_digests() {
  std::vector<Digest> out;
  out.reserve(kResolveEntries);
  for (std::size_t i = 0; i < kResolveEntries; ++i) {
    const std::uint64_t key = 0x9e3779b97f4a7c15ull * (i + 1);
    out.push_back(Digest::of_bytes(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(&key), sizeof(key))));
  }
  return out;
}

static std::size_t resolve_index(std::size_t thread_id, std::size_t i) {
  return (i * 0x9e3779b9ull + thread_id * 0x85ebca6bull) &
         (kResolveEntries - 1);
}

/// Wall seconds for `t` threads running fn(thread_id) to completion,
/// released together; fn's return values are summed into *checksum so the
/// lookup loops cannot be optimized away (and so both structures can be
/// checked to give identical answers).
template <typename Fn>
static double resolve_timed(std::size_t t, std::uint64_t* checksum, Fn fn) {
  std::atomic<bool> go{false};
  std::atomic<std::uint64_t> sink{0};
  std::vector<std::thread> threads;
  threads.reserve(t);
  for (std::size_t id = 0; id < t; ++id)
    threads.emplace_back([&, id] {
      while (!go.load(std::memory_order_acquire)) {
      }
      sink.fetch_add(fn(id), std::memory_order_relaxed);
    });
  const auto t0 = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();
  const auto t1 = std::chrono::steady_clock::now();
  *checksum = sink.load(std::memory_order_relaxed);
  return std::chrono::duration<double>(t1 - t0).count();
}

static void report_resolution_bench() {
  const std::vector<Digest> digests = resolve_digests();

  // Pre-snapshot shape: one digest map, one lock around it.
  std::mutex map_mu;
  std::unordered_map<Digest, dag::VertexId> map;
  map.reserve(kResolveEntries);
  // Snapshot resolver, published once — steady state, where lookups within
  // a batch vastly outnumber publishes.
  epoch::Domain domain;
  dag::DigestResolver resolver;
  for (std::size_t i = 0; i < kResolveEntries; ++i) {
    map.emplace(digests[i], static_cast<dag::VertexId>(i));
    resolver.insert(digests[i], static_cast<dag::VertexId>(i));
  }
  resolver.publish(domain);

  for (const std::size_t t : {1u, 2u, 4u, 8u}) {
    std::uint64_t check_guarded = 0;
    const double guarded_s =
        resolve_timed(t, &check_guarded, [&](std::size_t id) {
          std::uint64_t acc = 0;
          for (std::size_t i = 0; i < kResolveLookups; ++i) {
            const Digest& d = digests[resolve_index(id, i)];
            std::lock_guard<std::mutex> lock(map_mu);
            const auto it = map.find(d);
            acc += it == map.end() ? 0 : it->second;
          }
          return acc;
        });
    std::uint64_t check_snapshot = 0;
    const double snapshot_s =
        resolve_timed(t, &check_snapshot, [&](std::size_t id) {
          epoch::Reader reader(domain);
          epoch::Guard guard(reader);
          std::uint64_t acc = 0;
          for (std::size_t i = 0; i < kResolveLookups; ++i)
            acc += resolver.find_published(digests[resolve_index(id, i)]);
          return acc;
        });
    if (check_guarded != check_snapshot) {
      std::fprintf(stderr, "resolution checksum mismatch: %llu vs %llu\n",
                   static_cast<unsigned long long>(check_guarded),
                   static_cast<unsigned long long>(check_snapshot));
      std::abort();
    }
    const double ops = static_cast<double>(t) * kResolveLookups;
    const double guarded_ns = guarded_s / ops * 1e9;
    const double snapshot_ns = snapshot_s / ops * 1e9;
    const double speedup = guarded_ns / snapshot_ns;
    std::printf(
        "resolve t=%zu: guarded map %.1f ns/op, snapshot %.1f ns/op "
        "(%.2fx)\n",
        t, guarded_ns, snapshot_ns, speedup);
    hammerhead::bench::JsonReport::instance().row(
        "resolve_n65536_t" + std::to_string(t),
        {{"threads", static_cast<double>(t)},
         {"entries", static_cast<double>(kResolveEntries)},
         {"guarded_ns_per_op", guarded_ns},
         {"snapshot_ns_per_op", snapshot_ns},
         {"speedup_vs_guarded", speedup}});
  }

  // Single-thread floor: the owner-side open-addressed probe (Arena::find's
  // new implementation) against the unguarded unordered_map it replaced.
  std::uint64_t check_map = 0;
  const double map_s = resolve_timed(1, &check_map, [&](std::size_t id) {
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < kResolveLookups; ++i) {
      const auto it = map.find(digests[resolve_index(id, i)]);
      acc += it == map.end() ? 0 : it->second;
    }
    return acc;
  });
  std::uint64_t check_writer = 0;
  const double writer_s = resolve_timed(1, &check_writer, [&](std::size_t id) {
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < kResolveLookups; ++i)
      acc += resolver.find(digests[resolve_index(id, i)]);
    return acc;
  });
  if (check_map != check_writer) {
    std::fprintf(stderr, "single-thread checksum mismatch\n");
    std::abort();
  }
  const double map_ns = map_s / kResolveLookups * 1e9;
  const double writer_ns = writer_s / kResolveLookups * 1e9;
  std::printf(
      "resolve single-thread: unordered_map %.1f ns/op, "
      "open-addressed %.1f ns/op (%.2fx)\n",
      map_ns, writer_ns, map_ns / writer_ns);
  hammerhead::bench::JsonReport::instance().row(
      "resolve_single", {{"map_ns_per_op", map_ns},
                         {"writer_ns_per_op", writer_ns},
                         {"writer_vs_map", map_ns / writer_ns}});
}

int main(int argc, char** argv) {
  hammerhead::bench::JsonReport::instance().init("micro_dag");
  report_parent_index_memory();
  report_resolution_bench();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// Microbenchmarks: DAG insertion, support counting and path queries at the
// committee sizes of the paper's evaluation.
#include <benchmark/benchmark.h>

#include "hammerhead/dag/dag.h"

using namespace hammerhead;

namespace {

struct Builder {
  explicit Builder(std::size_t n)
      : committee(crypto::Committee::make_equal_stake(n, 1)) {
    for (ValidatorIndex v = 0; v < n; ++v)
      keys.push_back(crypto::Keypair::derive(1, v));
  }

  dag::CertPtr cert(Round r, ValidatorIndex a, std::vector<Digest> parents) {
    auto header = std::make_shared<dag::Header>();
    header->author = a;
    header->round = r;
    header->parents = std::move(parents);
    header->payload = std::make_shared<dag::BlockPayload>();
    header->finalize(keys[a]);
    std::vector<ValidatorIndex> signers;
    for (ValidatorIndex v = 0;
         v < committee.size() - committee.max_faulty_count(); ++v)
      signers.push_back(v);
    return dag::Certificate::make(std::move(header), std::move(signers));
  }

  /// Fill rounds 0..last fully; returns last-round digests.
  std::vector<Digest> fill(dag::Dag& d, Round last) {
    std::vector<Digest> prev;
    for (Round r = 0; r <= last; ++r) {
      std::vector<Digest> cur;
      for (ValidatorIndex a = 0; a < committee.size(); ++a) {
        auto c = cert(r, a, prev);
        d.insert(c);
        cur.push_back(c->digest());
      }
      prev = std::move(cur);
    }
    return prev;
  }

  crypto::Committee committee;
  std::vector<crypto::Keypair> keys;
};

}  // namespace

static void BM_DagInsertRound(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Builder b(n);
  for (auto _ : state) {
    state.PauseTiming();
    dag::Dag d(b.committee);
    std::vector<Digest> parents;
    std::vector<dag::CertPtr> round0, round1;
    for (ValidatorIndex a = 0; a < n; ++a) round0.push_back(b.cert(0, a, {}));
    for (const auto& c : round0) parents.push_back(c->digest());
    for (ValidatorIndex a = 0; a < n; ++a)
      round1.push_back(b.cert(1, a, parents));
    state.ResumeTiming();
    for (auto& c : round0) d.insert(c);
    for (auto& c : round1) d.insert(c);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2 *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_DagInsertRound)->Arg(10)->Arg(50)->Arg(100);

static void BM_DagDirectSupport(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Builder b(n);
  dag::Dag d(b.committee);
  b.fill(d, 4);
  const auto anchor = d.get(2, 0);
  for (auto _ : state) benchmark::DoNotOptimize(d.direct_support(*anchor));
}
BENCHMARK(BM_DagDirectSupport)->Arg(10)->Arg(50)->Arg(100);

static void BM_DagPathQuery(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Builder b(n);
  dag::Dag d(b.committee);
  b.fill(d, 10);
  const auto from = d.get(10, 0);
  const auto to = d.get(2, n > 1 ? 1 : 0);
  for (auto _ : state) benchmark::DoNotOptimize(d.has_path(*from, *to));
}
BENCHMARK(BM_DagPathQuery)->Arg(10)->Arg(50)->Arg(100);

static void BM_DagCausalHistory(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Builder b(n);
  dag::Dag d(b.committee);
  b.fill(d, 10);
  const auto root = d.get(10, 0);
  for (auto _ : state) {
    auto h = d.causal_history(*root, [](const dag::Certificate&) {
      return true;
    });
    benchmark::DoNotOptimize(h);
  }
}
BENCHMARK(BM_DagCausalHistory)->Arg(10)->Arg(50);

BENCHMARK_MAIN();

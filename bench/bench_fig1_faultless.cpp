// Figure 1 reproduction: HammerHead vs Bullshark (round-robin) latency-
// throughput curves with 10, 50 and 100 validators, no faults.
//
// Paper reference (Section 5, "Benchmark in ideal conditions"):
//   * peak throughput ~4,000 tx/s (10 and 50 validators), ~3,500 tx/s (100);
//   * latency ~3 s for Bullshark, ~2.7 s for HammerHead before saturation;
//   * the two systems otherwise overlap — HammerHead costs nothing when
//     there are no faults (claim C1).
// Absolute values from the simulation differ from the AWS testbed; the
// sweep shape (flat latency until the knee, same peak for both systems) is
// the reproduction target. See EXPERIMENTS.md.
#include "bench_util.h"

using namespace hammerhead;
using namespace hammerhead::bench;

int main() {
  hammerhead::bench::JsonReport::instance().init("fig1_faultless");
  std::cout << "Figure 1: latency vs throughput, no faults "
            << "(paper: Fig. 1, claim C1)\n";

  const std::vector<std::size_t> committees =
      quick_mode() ? std::vector<std::size_t>{10}
                   : std::vector<std::size_t>{10, 50, 100};

  for (std::size_t n : committees) {
    const std::vector<double> loads =
        n >= 100 ? std::vector<double>{1'000, 2'500, 3'500, 4'500}
                 : std::vector<double>{500, 1'500, 2'500, 3'500, 4'500};
    for (auto policy :
         {harness::PolicyKind::HammerHead, harness::PolicyKind::RoundRobin}) {
      print_header(std::string(harness::policy_name(policy)) + " - " +
                   std::to_string(n) + " nodes");
      for (double load : loads) {
        auto cfg = paper_config(n, load, /*faults=*/0, policy);
        print_run("n=" + std::to_string(n), harness::run_experiment(cfg));
      }
    }
  }
  return 0;
}

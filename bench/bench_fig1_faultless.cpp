// Figure 1 reproduction: HammerHead vs Bullshark (round-robin) latency-
// throughput curves with 10, 50 and 100 validators, no faults.
//
// Paper reference (Section 5, "Benchmark in ideal conditions"):
//   * peak throughput ~4,000 tx/s (10 and 50 validators), ~3,500 tx/s (100);
//   * latency ~3 s for Bullshark, ~2.7 s for HammerHead before saturation;
//   * the two systems otherwise overlap — HammerHead costs nothing when
//     there are no faults (claim C1).
// Absolute values from the simulation differ from the AWS testbed; the
// sweep shape (flat latency until the knee, same peak for both systems) is
// the reproduction target. See EXPERIMENTS.md.
#include "bench_util.h"

using namespace hammerhead;
using namespace hammerhead::bench;

int main() {
  hammerhead::bench::JsonReport::instance().init("fig1_faultless");
  std::cout << "Figure 1: latency vs throughput, no faults "
            << "(paper: Fig. 1, claim C1)\n";

  const std::vector<std::size_t> committees =
      quick_mode() ? std::vector<std::size_t>{10}
                   : std::vector<std::size_t>{10, 50, 100};

  for (std::size_t n : committees) {
    const std::vector<double> loads =
        n >= 100 ? std::vector<double>{1'000, 2'500, 3'500, 4'500}
                 : std::vector<double>{500, 1'500, 2'500, 3'500, 4'500};
    for (auto policy :
         {harness::PolicyKind::HammerHead, harness::PolicyKind::RoundRobin}) {
      print_header(std::string(harness::policy_name(policy)) + " - " +
                   std::to_string(n) + " nodes");
      for (double load : loads) {
        auto cfg = paper_config(n, load, /*faults=*/0, policy);
        print_run("n=" + std::to_string(n), harness::run_experiment(cfg));
      }
    }
  }

  // Wide committees (n = 500 and 1000): the scale target of the relay-tree
  // fanout + memory-tiering work. One load point per size, fixed short
  // horizon (see wide_config) — these rows run in full mode or under
  // HH_BENCH_WIDE=1 (so the committed baseline can carry them without
  // putting a multi-minute run on the quick CI path).
  if (!quick_mode() || wide_mode()) {
    for (std::size_t n : {std::size_t{500}, std::size_t{1000}}) {
      for (auto policy : {harness::PolicyKind::HammerHead,
                          harness::PolicyKind::RoundRobin}) {
        print_header(std::string(harness::policy_name(policy)) + " - " +
                     std::to_string(n) + " nodes (wide)");
        auto cfg = wide_config(n, /*load_tps=*/1'000, policy);
        print_run("wide_n=" + std::to_string(n),
                  harness::run_experiment(cfg));
      }
    }
  }

  // Long-horizon n=1000 latency row (full mode, i.e. the nightly sweep):
  // the 8 s wide row above barely clears the commit pipeline's fill, so its
  // latency columns reflect ramp-up as much as steady state. 20 simulated
  // seconds gives p95/p99 a real steady-state commit population.
  if (!quick_mode()) {
    print_header("HammerHead - 1000 nodes (wide, long horizon)");
    auto cfg = wide_config(1000, /*load_tps=*/1'000,
                           harness::PolicyKind::HammerHead);
    cfg.duration = seconds(20);
    cfg.warmup = seconds(4);
    print_run("wide_n1000_long", harness::run_experiment(cfg));
  }
  return 0;
}

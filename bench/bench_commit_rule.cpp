// Commit-rule ablation (DESIGN.md): the paper's Algorithm 2 detects a direct
// commit from a single even-round vertex carrying >= f+1 supporting parents
// (PaperTrigger); production Bullshark counts >= f+1 supporting vertices
// across the local DAG (DirectSupport), committing strictly earlier. Both
// are safe (see safety tests); this bench quantifies the latency difference.
//
// Part 2 quantifies the incremental commit index (dag/index.h): host
// wall-clock of driving the committer over identical synthetic certificate
// streams with TriggerScan::Indexed (support-crossing events + O(1)
// queries) vs TriggerScan::Rescan (the scan-on-query reference), at the
// committee sizes of the paper's evaluation and beyond.
#include <algorithm>
#include <chrono>
#include <memory>
#include <optional>

#include "bench_dag_util.h"
#include "bench_util.h"
#include "hammerhead/consensus/committer.h"

using namespace hammerhead;
using namespace hammerhead::bench;

namespace {

struct StreamBuilder : bench::CertFactory {
  using bench::CertFactory::CertFactory;

  /// Rounds 0..last in causal order under vote withholding (the Section 7
  /// adversary): inside each `period`-round block, the anchors of the first
  /// `period - healthy_tail` even rounds receive no votes — every vertex of
  /// round a+1 omits the anchor from its parents. The anchors exist but
  /// never trigger, so the commit frontier lags the DAG frontier by up to
  /// `period` rounds: every insertion re-evaluates the whole gap of anchors
  /// (direct_support-dominated) and each commit's walk-back probes every
  /// skipped anchor with an exhaustive reachability query (has_path-
  /// dominated). This is the regime where the seed's scan-on-query design
  /// pays O(gap * n) per insertion and O(V + E) per walk-back link.
  std::vector<dag::CertPtr> withheld_votes_stream(
      Round last, const core::LeaderSchedulePolicy& policy, Round period = 60,
      Round healthy_tail = 4) {
    std::vector<dag::CertPtr> out;
    std::vector<Digest> prev;
    std::optional<Digest> withheld;  // previous round's unvoted anchor
    for (Round r = 0; r <= last; ++r) {
      std::vector<Digest> cur;
      std::vector<Digest> parents = prev;
      if (withheld)
        parents.erase(std::find(parents.begin(), parents.end(), *withheld));
      for (ValidatorIndex a = 0; a < committee.size(); ++a) {
        auto c = cert(r, a, parents);
        cur.push_back(c->digest());
        out.push_back(std::move(c));
      }
      const bool withhold = r % 2 == 0 && r % period < period - healthy_tail;
      withheld = withhold ? std::optional<Digest>(cur[policy.leader(r)])
                          : std::nullopt;
      prev = std::move(cur);
    }
    return out;
  }
};

/// Drive the committer over the stream; returns (wall seconds, commits).
/// The seed configuration disables the index entirely, so the baseline pays
/// neither index maintenance nor its queries — exactly the pre-index code.
std::pair<double, std::uint64_t> drive(const StreamBuilder& b,
                                       const std::vector<dag::CertPtr>& certs,
                                       bool indexed) {
  dag::Dag dag(b.committee, dag::IndexConfig{.enabled = indexed});
  core::RoundRobinPolicy policy(b.committee, 1);
  std::uint64_t commits = 0;
  consensus::BullsharkCommitter committer(
      b.committee, dag, policy,
      [&](const consensus::CommittedSubDag&) { ++commits; },
      consensus::CommitRule::DirectSupport, nullptr,
      indexed ? consensus::TriggerScan::Indexed
              : consensus::TriggerScan::Rescan);
  const auto start = std::chrono::steady_clock::now();
  for (const auto& cert : certs)
    if (dag.insert(cert)) committer.on_cert_inserted(cert);
  const auto stop = std::chrono::steady_clock::now();
  return {std::chrono::duration<double>(stop - start).count(), commits};
}

void index_ablation() {
  const Round rounds = quick_mode() ? 120 : 300;
  std::cout << "Incremental index ablation: committer ingest wall-clock over "
            << rounds + 1
            << " rounds with votes withheld from 28 of every 30 anchors "
               "(DirectSupport, round-robin)\n\n";
  std::printf("%6s %10s %12s %12s %9s %9s\n", "n", "certs", "scan_s",
              "indexed_s", "speedup", "commits");
  for (std::size_t n : {10u, 50u, 100u, 200u}) {
    StreamBuilder b(n);
    const core::RoundRobinPolicy policy(b.committee, 1);
    const auto certs = b.withheld_votes_stream(rounds, policy);
    const auto [scan_s, scan_commits] = drive(b, certs, /*indexed=*/false);
    const auto [indexed_s, indexed_commits] =
        drive(b, certs, /*indexed=*/true);
    if (scan_commits != indexed_commits) {
      std::cout << "DIVERGENCE at n=" << n << ": scan committed "
                << scan_commits << ", indexed " << indexed_commits << "\n";
      continue;
    }
    std::printf("%6zu %10zu %12.4f %12.4f %8.1fx %9llu\n", n, certs.size(),
                scan_s, indexed_s, scan_s / indexed_s,
                static_cast<unsigned long long>(indexed_commits));
    JsonReport::instance().row(
        "ingest_n" + std::to_string(n),
        {{"certs", static_cast<double>(certs.size())},
         {"scan_s", scan_s},
         {"indexed_s", indexed_s},
         {"scan_certs_per_s", static_cast<double>(certs.size()) / scan_s},
         {"indexed_certs_per_s",
          static_cast<double>(certs.size()) / indexed_s},
         {"speedup", scan_s / indexed_s},
         {"commits", static_cast<double>(indexed_commits)}});
  }
  std::cout << "\nExpected shape: identical commit counts; the indexed path "
               "pulls ahead super-linearly with n (the scan path pays an "
               "O(n) support rescan per gap anchor per insertion).\n\n";
}

}  // namespace

int main() {
  JsonReport::instance().init("commit_rule");
  index_ablation();

  const std::size_t n = quick_mode() ? 10 : 20;
  const SimTime duration = bench_duration(seconds(90));
  std::cout << "Commit-rule ablation: DirectSupport (production) vs "
               "PaperTrigger (Algorithm 2 verbatim), n="
            << n << "\n\n";
  std::printf("%-14s %-14s %8s %8s %8s %9s\n", "rule", "policy", "tput",
              "avg_s", "p95_s", "commits");
  for (auto rule : {consensus::CommitRule::DirectSupport,
                    consensus::CommitRule::PaperTrigger}) {
    for (auto policy :
         {harness::PolicyKind::HammerHead, harness::PolicyKind::RoundRobin}) {
      auto cfg = paper_config(n, /*load=*/500.0, /*faults=*/0, policy);
      cfg.duration = duration;
      cfg.node.commit_rule = rule;
      const auto r = harness::run_experiment(cfg);
      const std::string rule_name =
          rule == consensus::CommitRule::DirectSupport ? "direct-support"
                                                       : "paper-trigger";
      std::printf("%-14s %-14s %8.0f %8.2f %8.2f %9llu\n", rule_name.c_str(),
                  harness::policy_name(policy), r.throughput_tps,
                  r.avg_latency_s, r.p95_latency_s,
                  static_cast<unsigned long long>(r.committed_anchors));
      JsonReport::instance().row(
          rule_name + "_" + harness::policy_name(policy),
          {{"throughput_tps", r.throughput_tps},
           // Run context so the regression gate only compares like modes.
           {"duration_s", r.duration_s},
           {"offered_load_tps", r.offered_load_tps},
           {"avg_latency_s", r.avg_latency_s},
           {"p50_latency_s", r.p50_latency_s},
           {"p95_latency_s", r.p95_latency_s},
           {"p99_latency_s", r.p99_latency_s},
           {"committed_anchors",
            static_cast<double>(r.committed_anchors)}});
    }
  }
  std::cout << "\nExpected shape: identical throughput; paper-trigger adds "
               "up to one round of commit latency (it waits for an a+2 "
               "vertex to carry the quorum).\n";
  return 0;
}

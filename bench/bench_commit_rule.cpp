// Commit-rule ablation (DESIGN.md): the paper's Algorithm 2 detects a direct
// commit from a single even-round vertex carrying >= f+1 supporting parents
// (PaperTrigger); production Bullshark counts >= f+1 supporting vertices
// across the local DAG (DirectSupport), committing strictly earlier. Both
// are safe (see safety tests); this bench quantifies the latency difference.
#include "bench_util.h"

using namespace hammerhead;
using namespace hammerhead::bench;

int main() {
  const std::size_t n = quick_mode() ? 10 : 20;
  const SimTime duration = bench_duration(seconds(90));
  std::cout << "Commit-rule ablation: DirectSupport (production) vs "
               "PaperTrigger (Algorithm 2 verbatim), n="
            << n << "\n\n";
  std::printf("%-14s %-14s %8s %8s %8s %9s\n", "rule", "policy", "tput",
              "avg_s", "p95_s", "commits");
  for (auto rule : {consensus::CommitRule::DirectSupport,
                    consensus::CommitRule::PaperTrigger}) {
    for (auto policy :
         {harness::PolicyKind::HammerHead, harness::PolicyKind::RoundRobin}) {
      auto cfg = paper_config(n, /*load=*/500.0, /*faults=*/0, policy);
      cfg.duration = duration;
      cfg.node.commit_rule = rule;
      const auto r = harness::run_experiment(cfg);
      std::printf("%-14s %-14s %8.0f %8.2f %8.2f %9llu\n",
                  rule == consensus::CommitRule::DirectSupport
                      ? "direct-support"
                      : "paper-trigger",
                  harness::policy_name(policy), r.throughput_tps,
                  r.avg_latency_s, r.p95_latency_s,
                  static_cast<unsigned long long>(r.committed_anchors));
    }
  }
  std::cout << "\nExpected shape: identical throughput; paper-trigger adds "
               "up to one round of commit latency (it waits for an a+2 "
               "vertex to carry the quorum).\n";
  return 0;
}

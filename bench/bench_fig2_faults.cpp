// Figure 2 reproduction: HammerHead vs Bullshark (round-robin) with each
// committee suffering its maximum number of tolerable crash-faults
// (10 nodes / 3 faulty, 50 / 16, 100 / 33).
//
// Paper reference (Section 5, "Benchmark with faults"):
//   * Bullshark: throughput drops 25% (10, 50 nodes) to >40% (100 nodes),
//     latency increases 2-3x vs ideal conditions;
//   * HammerHead: no visible throughput degradation, at most ~0.5 s latency
//     increase — up to 2x latency reduction and 40% throughput gain over
//     Bullshark at 100 validators (claims C2, C3).
#include "bench_util.h"

using namespace hammerhead;
using namespace hammerhead::bench;

int main() {
  hammerhead::bench::JsonReport::instance().init("fig2_faults");
  std::cout << "Figure 2: performance under maximum tolerable crash-faults "
            << "(paper: Fig. 2, claims C2+C3)\n";

  struct Setting {
    std::size_t n;
    std::size_t faults;
  };
  const std::vector<Setting> settings =
      quick_mode() ? std::vector<Setting>{{10, 3}}
                   : std::vector<Setting>{{10, 3}, {50, 16}, {100, 33}};

  for (const auto& [n, faults] : settings) {
    const std::vector<double> loads =
        n >= 100 ? std::vector<double>{1'000, 2'000, 3'000}
                 : std::vector<double>{500, 1'500, 2'500, 3'500};
    for (auto policy :
         {harness::PolicyKind::HammerHead, harness::PolicyKind::RoundRobin}) {
      print_header(std::string(harness::policy_name(policy)) + " - " +
                   std::to_string(n) + " nodes (" + std::to_string(faults) +
                   " faulty)");
      for (double load : loads) {
        auto cfg = paper_config(n, load, faults, policy);
        print_run("n=" + std::to_string(n), harness::run_experiment(cfg));
      }
    }
  }
  return 0;
}

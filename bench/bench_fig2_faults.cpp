// Figure 2 reproduction: HammerHead vs Bullshark (round-robin) with each
// committee suffering its maximum number of tolerable crash-faults
// (10 nodes / 3 faulty, 50 / 16, 100 / 33).
//
// Paper reference (Section 5, "Benchmark with faults"):
//   * Bullshark: throughput drops 25% (10, 50 nodes) to >40% (100 nodes),
//     latency increases 2-3x vs ideal conditions;
//   * HammerHead: no visible throughput degradation, at most ~0.5 s latency
//     increase — up to 2x latency reduction and 40% throughput gain over
//     Bullshark at 100 validators (claims C2, C3).
//
// Beyond the paper's crash grid, this bench surfaces the scenario library:
// a healing minority partition window and validator churn (repeated
// crash/recover cycles with state-sync re-entry), at the same loads —
// plus the adaptive-adversary strategies (harness/adversary.h): leader
// equivocation, anchor vote withholding, and a composed
// withhold+delay adversary, the Section 7 shapes HammerHead's
// vote-frequency scoring is built to punish.
#include "bench_util.h"
#include "hammerhead/harness/adversary.h"
#include "hammerhead/harness/sweep.h"

using namespace hammerhead;
using namespace hammerhead::bench;

int main() {
  hammerhead::bench::JsonReport::instance().init("fig2_faults");
  std::cout << "Figure 2: performance under maximum tolerable crash-faults "
            << "(paper: Fig. 2, claims C2+C3)\n";

  struct Setting {
    std::size_t n;
    std::size_t faults;
  };
  const std::vector<Setting> settings =
      quick_mode() ? std::vector<Setting>{{10, 3}}
                   : std::vector<Setting>{{10, 3}, {50, 16}, {100, 33}};

  for (const auto& [n, faults] : settings) {
    const std::vector<double> loads =
        n >= 100 ? std::vector<double>{1'000, 2'000, 3'000}
                 : std::vector<double>{500, 1'500, 2'500, 3'500};
    for (auto policy :
         {harness::PolicyKind::HammerHead, harness::PolicyKind::RoundRobin}) {
      print_header(std::string(harness::policy_name(policy)) + " - " +
                   std::to_string(n) + " nodes (" + std::to_string(faults) +
                   " faulty)");
      for (double load : loads) {
        auto cfg = paper_config(n, load, faults, policy);
        print_run("n=" + std::to_string(n), harness::run_experiment(cfg));
      }
    }
  }

  // Scenario library: the same committees under a healing minority
  // partition and under validator churn, instead of permanent crashes —
  // and under adaptive adversaries, wrapped as scenarios through
  // scenario_adversary so they ride the same loop (strategies compose:
  // the last entry runs vote withholding AND leader link delays at once).
  const std::vector<harness::FaultScenario> scenarios = {
      harness::scenario_partition(), harness::scenario_churn(),
      harness::scenario_adversary({harness::adversary_equivocate()}),
      harness::scenario_adversary({harness::adversary_withhold_votes()}),
      harness::scenario_adversary(
          {harness::adversary_withhold_votes(), harness::adversary_delay()})};
  const std::size_t scenario_n = 10;
  const std::vector<double> scenario_loads =
      quick_mode() ? std::vector<double>{1'500}
                   : std::vector<double>{500, 1'500, 2'500};
  for (const auto& scenario : scenarios) {
    for (auto policy :
         {harness::PolicyKind::HammerHead, harness::PolicyKind::RoundRobin}) {
      print_header(std::string(harness::policy_name(policy)) + " - " +
                   std::to_string(scenario_n) + " nodes, " + scenario.name);
      for (double load : scenario_loads) {
        auto cfg = paper_config(scenario_n, load, /*faults=*/0, policy);
        scenario.apply(cfg);
        print_run("fault=" + scenario.name, harness::run_experiment(cfg));
      }
    }
  }
  return 0;
}

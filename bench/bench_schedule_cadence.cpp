// Schedule-cadence ablation (Section 5, footnote 15): the paper's evaluation
// recomputes the schedule every 10 commits and excludes the bottom 33% of
// validators; Sui mainnet runs the more conservative 300 commits / bottom
// 20%. This bench sweeps both knobs under crash-faults, plus the rounds-based
// cadence of Algorithm 2, showing the reactivity/stability trade-off: small T
// evicts crashed leaders fast (low latency), huge T behaves like round-robin
// for most of the run.
#include "bench_util.h"

using namespace hammerhead;
using namespace hammerhead::bench;

int main() {
  hammerhead::bench::JsonReport::instance().init("schedule_cadence");
  const std::size_t n = quick_mode() ? 10 : 20;
  const std::size_t faults = (n - 1) / 3;
  const SimTime duration = bench_duration(seconds(120));

  std::cout << "Schedule cadence and exclusion ablation (paper fn.15): n="
            << n << ", faults=" << faults << "\n";

  struct Case {
    const char* label;
    core::ScheduleCadence cadence;
    double exclude;
  };
  const std::vector<Case> cases = {
      {"commits(5)/33%", core::ScheduleCadence::commits(5), 1.0 / 3},
      {"commits(10)/33% (eval)", core::ScheduleCadence::commits(10), 1.0 / 3},
      {"commits(50)/33%", core::ScheduleCadence::commits(50), 1.0 / 3},
      {"commits(300)/20% (mainnet)", core::ScheduleCadence::commits(300), 0.2},
      {"rounds(20)/33% (Alg.2)", core::ScheduleCadence::rounds(20), 1.0 / 3},
  };

  std::printf("%-28s %8s %8s %8s %9s %9s\n", "cadence", "tput", "avg_s",
              "p95_s", "skipped", "epochs");
  for (const auto& c : cases) {
    auto cfg = paper_config(n, /*load=*/500.0, faults,
                            harness::PolicyKind::HammerHead);
    cfg.duration = duration;
    cfg.hh.cadence = c.cadence;
    cfg.hh.exclude_fraction = c.exclude;
    const auto r = harness::run_experiment(cfg);
    std::printf("%-28s %8.0f %8.2f %8.2f %9llu %9llu\n", c.label,
                r.throughput_tps, r.avg_latency_s, r.p95_latency_s,
                static_cast<unsigned long long>(r.skipped_anchors),
                static_cast<unsigned long long>(r.schedule_changes));
  }
  // Round-robin reference row.
  auto cfg = paper_config(n, 500.0, faults, harness::PolicyKind::RoundRobin);
  cfg.duration = duration;
  const auto r = harness::run_experiment(cfg);
  std::printf("%-28s %8.0f %8.2f %8.2f %9llu %9llu\n", "round-robin (ref)",
              r.throughput_tps, r.avg_latency_s, r.p95_latency_s,
              static_cast<unsigned long long>(r.skipped_anchors),
              static_cast<unsigned long long>(r.schedule_changes));
  std::cout << "\nExpected shape: more frequent recomputation -> faster "
               "eviction of crashed leaders -> fewer skips and lower "
               "latency; commits(300) barely reacts within the run.\n";
  return 0;
}

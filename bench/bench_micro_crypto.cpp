// Microbenchmarks: SHA-256 and the simulated signature scheme.
#include <benchmark/benchmark.h>

#include <string>

#include "bench_gbench_json.h"
#include "hammerhead/crypto/keys.h"
#include "hammerhead/crypto/sha256.h"

using namespace hammerhead;

static void BM_Sha256_64B(benchmark::State& state) {
  const std::string msg(64, 'x');
  for (auto _ : state)
    benchmark::DoNotOptimize(crypto::Sha256::hash(msg));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_Sha256_64B);

static void BM_Sha256_4KiB(benchmark::State& state) {
  const std::string msg(4096, 'x');
  for (auto _ : state)
    benchmark::DoNotOptimize(crypto::Sha256::hash(msg));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_Sha256_4KiB);

static void BM_Sha256_Streaming(benchmark::State& state) {
  const std::string chunk(256, 'y');
  for (auto _ : state) {
    crypto::Sha256 h;
    for (int i = 0; i < 16; ++i) h.update(chunk);
    benchmark::DoNotOptimize(h.finalize());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_Sha256_Streaming);

static void BM_Sign(benchmark::State& state) {
  const auto kp = crypto::Keypair::derive(1, 0);
  const Digest msg = Digest::of_string("message");
  for (auto _ : state) benchmark::DoNotOptimize(kp.sign("ctx", msg));
}
BENCHMARK(BM_Sign);

static void BM_Verify(benchmark::State& state) {
  const auto kp = crypto::Keypair::derive(1, 0);
  const Digest msg = Digest::of_string("message");
  const auto sig = kp.sign("ctx", msg);
  for (auto _ : state)
    benchmark::DoNotOptimize(crypto::verify(kp.public_key(), "ctx", msg, sig));
}
BENCHMARK(BM_Verify);

HH_BENCHMARK_MAIN_WITH_JSON("micro_crypto")

// Gated microbenchmarks for the crypto pipeline: the dispatched SHA-256
// kernels (scalar / AVX2 multi-buffer / SHA-NI), the simulated signature
// scheme, and the zero-allocation digest-serialization gauge.
//
// Hand-rolled harness-format JSON (bench_json.h), not google-benchmark: the
// per-kernel rows gate in tools/bench_compare.py. Two kinds of metric per
// row:
//   * hash_mb_s — host wall-clock throughput; gated only against baselines
//     recorded at the same host_sha capability (bench_json.h stamps it).
//   * speedup_vs_scalar — accelerated kernel vs the scalar reference
//     measured in the SAME run, so the ratio transfers across machines of
//     the same capability.
// Every dispatch level the host supports is pinned and measured; the
// BM_Sha256_* labels carry the default-dispatch numbers (continuity with
// the pre-dispatch baseline history).
//
// This binary also carries the allocation gauge for the acceptance claim
// "steady-state digest computation performs zero heap allocations": a
// global operator-new counter is sampled around a warm
// compute_digest / Vote::make / BatchHasher loop and the process exits 1
// on any allocation.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "bench_json.h"
#include "hammerhead/common/rng.h"
#include "hammerhead/crypto/batch_hasher.h"
#include "hammerhead/crypto/keys.h"
#include "hammerhead/crypto/sha256.h"
#include "hammerhead/dag/types.h"

using namespace hammerhead;

// ----------------------------------------------------- allocation counting

namespace {
std::uint64_t g_heap_allocs = 0;
}  // namespace

// The replacement operators pair new->malloc with delete->free consistently;
// GCC's heuristic cannot see that and warns on the free calls.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t size) {
  ++g_heap_allocs;
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) {
  ++g_heap_allocs;
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

// ------------------------------------------------------------------ timing

namespace {

volatile std::uint8_t g_sink = 0;

inline void consume(const Digest& d) { g_sink ^= d.bytes()[0]; }

/// Wall-clock ns per call of `fn`, measured over at least `min_seconds`
/// after one warm-up call.
template <typename Fn>
double ns_per_op(Fn&& fn, double min_seconds) {
  using clock = std::chrono::steady_clock;
  fn();
  std::size_t iters = 8;
  for (;;) {
    const auto t0 = clock::now();
    for (std::size_t i = 0; i < iters; ++i) fn();
    const double secs = std::chrono::duration<double>(clock::now() - t0).count();
    if (secs >= min_seconds) return secs * 1e9 / static_cast<double>(iters);
    const double factor = secs > 1e-9 ? 1.3 * min_seconds / secs : 8.0;
    iters = static_cast<std::size_t>(static_cast<double>(iters) *
                                     std::min(factor, 16.0)) + 1;
  }
}

double mb_per_s(double bytes_per_op, double ns) {
  return bytes_per_op * 1e9 / ns / 1e6;
}

struct ShapeResult {
  double ns = 0;
};

/// One dispatch level's measurements across the message shapes.
struct LevelResults {
  ShapeResult one_64b;      // one-shot 64 B
  ShapeResult one_4k;       // one-shot 4 KiB
  ShapeResult stream;       // 16 x 256 B streaming updates
  ShapeResult batch8;       // BatchHasher, 8 lanes x 512 B
  ShapeResult batch4;       // BatchHasher, 4 lanes x 512 B
};

LevelResults measure_level(double min_seconds) {
  LevelResults r;
  std::vector<std::uint8_t> msg64(64, 0x5a), msg4k(4096, 0x5a);
  const std::string chunk(256, 'y');

  r.one_64b.ns = ns_per_op(
      [&] { consume(crypto::Sha256::hash(msg64)); }, min_seconds);
  r.one_4k.ns = ns_per_op(
      [&] { consume(crypto::Sha256::hash(msg4k)); }, min_seconds);
  r.stream.ns = ns_per_op(
      [&] {
        crypto::Sha256 h;
        for (int i = 0; i < 16; ++i) h.update(chunk);
        consume(h.finalize());
      },
      min_seconds);

  std::vector<std::uint8_t> lanes(8 * 512);
  for (std::size_t i = 0; i < lanes.size(); ++i)
    lanes[i] = static_cast<std::uint8_t>(splitmix64(i));
  crypto::BatchHasher hasher;
  Digest out[8];
  r.batch8.ns = ns_per_op(
      [&] {
        for (int l = 0; l < 8; ++l)
          hasher.add({lanes.data() + l * 512, 512});
        hasher.run(out);
        consume(out[0]);
      },
      min_seconds);
  r.batch4.ns = ns_per_op(
      [&] {
        for (int l = 0; l < 4; ++l)
          hasher.add({lanes.data() + l * 512, 512});
        hasher.run(out);
        consume(out[0]);
      },
      min_seconds);
  return r;
}

void report_level(const char* shape, double bytes_per_op, double ns,
                  double scalar_ns, crypto::sha::Level level) {
  std::string label = std::string(shape) + "_" + crypto::sha::level_name(level);
  std::vector<std::pair<std::string, double>> metrics = {
      {"hash_mb_s", mb_per_s(bytes_per_op, ns)},
      {"ns_per_op", ns},
  };
  if (level != crypto::sha::Level::kScalar && scalar_ns > 0)
    metrics.emplace_back("speedup_vs_scalar", scalar_ns / ns);
  std::printf("  %-28s %10.0f ns  %8.1f MB/s%s\n", label.c_str(), ns,
              mb_per_s(bytes_per_op, ns),
              level != crypto::sha::Level::kScalar
                  ? ("  (" + std::to_string(scalar_ns / ns) + "x scalar)")
                        .c_str()
                  : "");
  bench::JsonReport::instance().row(label, std::move(metrics));
}

// ------------------------------------------------- zero-allocation gauge

/// Steady-state digest path must not touch the heap: compute_digest into
/// thread-local scratch, Vote::make through the splitmix PRF, BatchHasher
/// over warm member scratch. Returns allocations observed per 1k iterations
/// (must be 0).
std::uint64_t digest_alloc_gauge() {
  // Representative header: 32 parents, 128-tx payload.
  auto payload = std::make_shared<dag::BlockPayload>();
  payload->txs.resize(128);
  for (std::size_t i = 0; i < payload->txs.size(); ++i)
    payload->txs[i].id = i + 1;
  const auto kp = crypto::Keypair::derive(7, 3);
  dag::Header header;
  header.author = 3;
  header.round = 42;
  header.parents.resize(32);
  for (std::size_t i = 0; i < header.parents.size(); ++i)
    header.parents[i] = Digest::of_string("parent" + std::to_string(i));
  header.payload = payload;
  header.finalize(kp);

  // Batch scratch: 8 encoded header preimages in a reusable arena.
  std::vector<std::uint8_t> arena(8 * header.digest_preimage_size());
  crypto::BatchHasher hasher;
  Digest out[8];

  const auto iteration = [&] {
    consume(header.compute_digest());
    const dag::Vote v = dag::Vote::make(header, 1, kp);
    g_sink ^= v.signature.bytes[0];
    const std::size_t size = header.digest_preimage_size();
    for (int l = 0; l < 8; ++l) {
      ByteWriter w(std::span<std::uint8_t>(arena.data() + l * size, size));
      header.encode_for_digest(w);
      hasher.add(w.view());
    }
    hasher.run(out);
    consume(out[0]);
  };

  // Warm every lazily-grown scratch buffer (thread-local digest scratch,
  // BatchHasher members) before sampling the counter.
  for (int i = 0; i < 4; ++i) iteration();

  const std::uint64_t before = g_heap_allocs;
  for (int i = 0; i < 1000; ++i) iteration();
  return g_heap_allocs - before;
}

}  // namespace

int main() {
  bench::JsonReport::instance().init("micro_crypto");
  const bool quick = std::getenv("HH_BENCH_QUICK") != nullptr;
  const double min_seconds = quick ? 0.03 : 0.12;

  using crypto::sha::Level;
  const Level max = crypto::sha::max_level();
  std::printf("sha dispatch: max level %s\n", crypto::sha::level_name(max));

  // Scalar first: the same-run reference for every speedup_vs_scalar.
  LevelResults scalar{};
  LevelResults by_level[3] = {};
  bool have[3] = {};
  for (const Level level : {Level::kScalar, Level::kAvx2, Level::kShaNi}) {
    if (crypto::sha::set_level(level) != level) continue;  // unsupported
    const int i = static_cast<int>(level);
    by_level[i] = measure_level(min_seconds);
    have[i] = true;
    if (level == Level::kScalar) scalar = by_level[i];
  }
  crypto::sha::set_level(max);

  for (int i = 0; i < 3; ++i) {
    if (!have[i]) continue;
    const Level level = static_cast<Level>(i);
    const LevelResults& r = by_level[i];
    report_level("sha256_64B", 64, r.one_64b.ns, scalar.one_64b.ns, level);
    report_level("sha256_4KiB", 4096, r.one_4k.ns, scalar.one_4k.ns, level);
    report_level("sha256_stream16x256B", 4096, r.stream.ns, scalar.stream.ns,
                 level);
    // The batch rows are where AVX2 differs from single-stream: x8 runs the
    // 8-lane multi-buffer kernel, x4 the 4-lane one (SHA-NI and scalar run
    // the same lanes back to back).
    report_level("sha256_batch8x512B", 8 * 512, r.batch8.ns, scalar.batch8.ns,
                 level);
    report_level("sha256_batch4x512B", 4 * 512, r.batch4.ns, scalar.batch4.ns,
                 level);
  }

  // Default-dispatch rows under the historical labels: the trajectory from
  // the pre-dispatch scalar baseline stays in one place.
  {
    const LevelResults& r = by_level[static_cast<int>(max)];
    bench::JsonReport::instance().row(
        "BM_Sha256_64B", {{"hash_mb_s", mb_per_s(64, r.one_64b.ns)},
                          {"ns_per_op", r.one_64b.ns}});
    bench::JsonReport::instance().row(
        "BM_Sha256_4KiB", {{"hash_mb_s", mb_per_s(4096, r.one_4k.ns)},
                           {"ns_per_op", r.one_4k.ns}});
    bench::JsonReport::instance().row(
        "BM_Sha256_Streaming", {{"hash_mb_s", mb_per_s(4096, r.stream.ns)},
                                {"ns_per_op", r.stream.ns}});
  }

  // Simulated signature scheme (advisory: splitmix PRF, not SHA).
  {
    const auto kp = crypto::Keypair::derive(1, 0);
    const Digest msg = Digest::of_string("message");
    const auto sig = kp.sign("ctx", msg);
    const double sign_ns = ns_per_op(
        [&] { g_sink ^= kp.sign("ctx", msg).bytes[0]; }, min_seconds);
    const double verify_ns = ns_per_op(
        [&] { g_sink ^= crypto::verify(kp.public_key(), "ctx", msg, sig); },
        min_seconds);
    std::printf("  %-28s %10.0f ns\n", "BM_Sign", sign_ns);
    std::printf("  %-28s %10.0f ns\n", "BM_Verify", verify_ns);
    bench::JsonReport::instance().row("BM_Sign", {{"ns_per_op", sign_ns}});
    bench::JsonReport::instance().row("BM_Verify", {{"ns_per_op", verify_ns}});
  }

  // Zero-allocation gauge: fail the bench (and CI) on any steady-state heap
  // traffic in the digest/sign/batch path.
  const std::uint64_t allocs = digest_alloc_gauge();
  std::printf("  digest steady-state allocations per 1k iterations: %llu\n",
              static_cast<unsigned long long>(allocs));
  bench::JsonReport::instance().row(
      "digest_zero_alloc",
      {{"allocs_per_1k_iters", static_cast<double>(allocs)}});
  if (allocs != 0) {
    std::fprintf(stderr,
                 "FAIL: steady-state digest computation allocated %llu "
                 "time(s) in 1k iterations (expected 0)\n",
                 static_cast<unsigned long long>(allocs));
    return 1;
  }
  return 0;
}

// One-invocation fig1+fig2-style grid over (policy x committee size x
// fault scenario x seed), executed by the parallel sweep driver
// (harness/sweep.h). Full mode: 2 policies x {10,20,50,100} x
// {partition, churn, churn-deep, slow} x 3 seeds = 96 cells (the nightly
// baseline grid). Quick mode (CI gate) filters the grid to 36 cells that
// fit the previous time budget: every scenario at n=10, partition+churn at
// n=20 — the filter drops cells after seed derivation, so quick cells run
// the exact seeds the full grid would.
//
// Per-cell results are bit-identical at any --jobs count (deterministic
// splitmix seed derivation + one Simulator per run) and at any
// --intra-jobs count (sharded execution inside each Simulator); pass
// --verify to prove both in-process against a --jobs=1/--intra-jobs=1
// rerun.
//
// Output: BENCH_sweep_matrix.json with per-cell throughput/p50/p95/p99/
// commits plus cross-seed mean/stddev rows — the artifact the CI
// bench-regression gate (tools/bench_compare.py) diffs against
// bench/results/.
// A second, separate sweep named "adversary" (BENCH_sweep_adversary.json)
// scores the adaptive-adversary axis (harness/adversary.h): faultless grid
// x {honest, equivocate, withhold-votes, eclipse, delay}, with worst-case
// commit-latency rows ("adv/<name>") aggregated per adversary. Kept out of
// the matrix sweep so the matrix baselines stay byte-identical.
// A third mode, --checkpoint-verify, exercises the checkpoint/resume
// subsystem (harness/checkpoint.h) at bench scale: representative cells run
// straight-through with interval checkpoints, then every checkpoint index
// is resumed — at --intra-jobs workers — and the final trace hash must match
// the straight-through run (with the replayed state blob byte-compared
// against each snapshot at its cut). Exits nonzero on any divergence.
#include <cstring>
#include <filesystem>
#include <iomanip>
#include <thread>

#include "bench_util.h"
#include "hammerhead/harness/adversary.h"
#include "hammerhead/harness/checkpoint.h"
#include "hammerhead/harness/sweep.h"

using namespace hammerhead;
using namespace hammerhead::bench;

namespace {

/// Run one sweep, print per-cell rows + aggregates, write its JSON and
/// (optionally) verify determinism against a --jobs=1/--intra-jobs=1 rerun.
/// Returns nonzero on any cell error or verify mismatch so CI fails loudly.
int run_and_report(const harness::SweepSpec& spec, std::size_t jobs,
                   bool verify) {
  std::cout << std::string(44, ' ') << harness::result_header() << std::endl;

  harness::SweepOptions options;
  options.jobs = jobs;
  options.on_cell = [](const harness::SweepCell& cell,
                       const harness::ExperimentResult& r) {
    std::ostringstream tag;
    tag << std::left << std::setw(44) << cell.label;
    std::cout << tag.str() << harness::result_row(r) << std::endl;
  };
  const harness::SweepResult sweep = harness::run_sweep(spec, options);
  for (const std::string& err : sweep.errors)
    std::cout << "CELL FAILED: " << err << "\n";

  std::cout << "\n--- cross-seed aggregates ---\n";
  for (const auto& g : sweep.groups) {
    std::ostringstream line;
    line << std::left << std::setw(44) << g.label << std::right << std::fixed
         << std::setprecision(0) << std::setw(8) << g.throughput_mean
         << " +/- " << std::setw(5) << g.throughput_stddev << " tps   p95 "
         << std::setprecision(2) << g.p95_mean << " s   anchors "
         << std::setprecision(0) << g.committed_anchors_mean;
    std::cout << line.str() << std::endl;
  }
  if (!sweep.adversary_worst.empty()) {
    std::cout << "\n--- worst case per adversary ---\n";
    for (const auto& w : sweep.adversary_worst) {
      std::ostringstream line;
      line << std::left << std::setw(44) << w.label << std::right
           << std::fixed << std::setprecision(2) << "worst p95 "
           << w.worst_p95_latency_s << " s (+/- " << w.worst_p95_stddev
           << ")   min anchors " << std::setprecision(0)
           << w.committed_anchors_min << "   conflicting certs "
           << w.conflicting_certs << "   runs " << w.runs;
      std::cout << line.str() << std::endl;
    }
  }
  const double cells_per_s =
      sweep.wall_seconds > 0
          ? static_cast<double>(sweep.cells.size()) / sweep.wall_seconds
          : 0;
  std::cout << "\n" << sweep.cells.size() << " cells in " << std::fixed
            << std::setprecision(2) << sweep.wall_seconds << " s wall ("
            << cells_per_s << " cells/s, jobs=" << sweep.jobs << ")\n";

  const std::string path = harness::write_sweep_json(sweep);
  std::cout << "wrote " << path << " (" << sweep.cells.size() << " cells, "
            << sweep.groups.size() << " aggregate rows, "
            << sweep.adversary_worst.size() << " adversary rows)\n";

  std::size_t mismatches = 0;
  if (verify) {
    std::cout << "\nverify: rerunning at --jobs=1 --intra-jobs=1 ...\n";
    harness::SweepSpec ref_spec = spec;
    ref_spec.base.intra_jobs = 1;  // same slotting, fully serial engines
    harness::SweepOptions serial;
    serial.jobs = 1;
    const harness::SweepResult reference =
        harness::run_sweep(ref_spec, serial);
    for (std::size_t i = 0; i < sweep.results.size(); ++i) {
      if (harness::deterministic_signature(sweep.results[i]) !=
          harness::deterministic_signature(reference.results[i])) {
        ++mismatches;
        std::cout << "MISMATCH at " << sweep.cells[i].label << "\n";
      }
    }
    std::cout << (mismatches == 0 ? "verify OK: " : "verify FAILED: ")
              << sweep.results.size() - mismatches << "/"
              << sweep.results.size() << " cells bit-identical; speedup "
              << std::setprecision(2)
              << (sweep.wall_seconds > 0
                      ? reference.wall_seconds / sweep.wall_seconds
                      : 0)
              << "x over jobs=1\n";
  }
  return (sweep.errors.empty() && mismatches == 0) ? 0 : 1;
}

/// --checkpoint-verify: prove the resume identity
/// `trace hash(resume at t_k, jobs=J) == trace hash(straight-through,
/// jobs=1)` for EVERY checkpoint index of each representative cell, at
/// J = resume_jobs. verify_resume additionally byte-compares the replayed
/// state blob against each snapshot at its cut, so a pass certifies both
/// the trace identity and the serialized-state identity.
int run_checkpoint_verify(std::size_t resume_jobs) {
  namespace fs = std::filesystem;
  struct Cell {
    std::string label;
    harness::ExperimentConfig cfg;
  };
  std::vector<Cell> cells;
  {
    harness::ExperimentConfig base = paper_config(
        10, 1'000, /*faults=*/0, harness::PolicyKind::HammerHead);
    base.duration = bench_duration(seconds(12));
    base.warmup = base.duration / 4;
    cells.push_back({"faultless_n10", base});

    harness::ExperimentConfig churn = base;
    harness::ChurnSpec spec;
    spec.nodes = {8, 9};
    spec.start = base.duration / 6;
    spec.period = base.duration / 3;
    spec.downtime = base.duration / 8;
    churn.churn.push_back(spec);
    cells.push_back({"churn_n10", churn});

    harness::ExperimentConfig equiv = base;
    equiv.adversaries.push_back(harness::adversary_equivocate());
    cells.push_back({"adv_equivocate_n10", equiv});

    harness::ExperimentConfig eclipse = base;
    eclipse.adversaries.push_back(harness::adversary_eclipse());
    cells.push_back({"adv_eclipse_n10", eclipse});
  }

  std::size_t total_resumes = 0, mismatches = 0;
  for (Cell& cell : cells) {
    const fs::path dir =
        fs::temp_directory_path() / ("hh_ckptverify_" + cell.label);
    fs::remove_all(dir);
    cell.cfg.checkpoint.dir = dir.string();
    cell.cfg.checkpoint.interval = cell.cfg.duration / 6;
    const harness::ExperimentResult straight =
        harness::run_experiment(cell.cfg);
    std::cout << std::left << std::setw(24) << cell.label
              << " checkpoints=" << straight.checkpoints_written
              << " trace=" << std::hex << straight.trace_hash << std::dec
              << "\n";
    for (std::uint32_t k = 0; k < straight.checkpoints_written; ++k) {
      harness::ExperimentConfig resume = cell.cfg;
      resume.intra_jobs = resume_jobs;
      resume.checkpoint.resume_from =
          harness::checkpoint_path(dir.string(), k);
      ++total_resumes;
      try {
        const harness::ExperimentResult r = harness::run_experiment(resume);
        if (r.trace_hash != straight.trace_hash) {
          ++mismatches;
          std::cout << "MISMATCH " << cell.label << " checkpoint " << k
                    << ": " << std::hex << r.trace_hash
                    << " != " << straight.trace_hash << std::dec << "\n";
        }
      } catch (const std::exception& e) {
        ++mismatches;
        std::cout << "RESUME FAILED " << cell.label << " checkpoint " << k
                  << ": " << e.what() << "\n";
      }
    }
    fs::remove_all(dir);
  }
  std::cout << (mismatches == 0 ? "checkpoint-verify OK: "
                                : "checkpoint-verify FAILED: ")
            << total_resumes - mismatches << "/" << total_resumes
            << " resumes bit-identical (resume jobs=" << resume_jobs
            << ")\n";
  return mismatches == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t jobs = std::min<std::size_t>(
      8, std::max<std::size_t>(1, std::thread::hardware_concurrency()));
  std::size_t intra_jobs = 1;
  bool verify = false;
  bool checkpoint_verify = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc)
      jobs = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    else if (std::strncmp(argv[i], "--jobs=", 7) == 0)
      jobs = static_cast<std::size_t>(std::strtoul(argv[i] + 7, nullptr, 10));
    else if (std::strcmp(argv[i], "--intra-jobs") == 0 && i + 1 < argc)
      intra_jobs =
          static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    else if (std::strncmp(argv[i], "--intra-jobs=", 13) == 0)
      intra_jobs =
          static_cast<std::size_t>(std::strtoul(argv[i] + 13, nullptr, 10));
    else if (std::strcmp(argv[i], "--verify") == 0)
      verify = true;
    else if (std::strcmp(argv[i], "--checkpoint-verify") == 0)
      checkpoint_verify = true;
  }
  if (jobs == 0) jobs = 1;
  if (intra_jobs == 0) intra_jobs = 1;
  if (checkpoint_verify) return run_checkpoint_verify(intra_jobs);

  harness::SweepSpec spec;
  spec.name = "matrix";
  spec.base = paper_config(10, 2'000, /*faults=*/0,
                           harness::PolicyKind::HammerHead);
  spec.base.duration = bench_duration(seconds(30));
  spec.base.warmup = std::min<SimTime>(seconds(10), spec.base.duration / 3);
  // Intra-run parallelism: each cell's Simulator gets its own worker pool
  // (+ the execution slotting that creates sharded batches). Trades
  // inter-run for intra-run parallelism — worth it when a few large-n
  // cells dominate the grid's critical path. Results are bit-identical
  // either way; the committed baselines are generated at the defaults
  // (--jobs only, no slotting).
  spec.base.intra_jobs = intra_jobs;
  if (intra_jobs > 1) spec.base.exec_slot = 256;
  spec.policies = {harness::PolicyKind::HammerHead,
                   harness::PolicyKind::RoundRobin};
  // ONE cartesian grid for both modes — quick mode shrinks it with the
  // cell FILTER, never by truncating an axis: the filter drops cells after
  // seed derivation, so a quick cell and its same-label nightly full-grid
  // cell run the identical derived seed and stay bit-comparable.
  spec.committee_sizes = {10, 20, 50, 100};
  spec.seeds = {1, 2, 3};
  spec.scenarios = {harness::scenario_partition(), harness::scenario_churn(),
                    harness::scenario_churn_deep(),
                    harness::scenario_slow_validators()};
  if (!quick_mode()) {
    // Nightly full grid additionally carries one wide-committee cell per
    // policy: faultless n=500 under the relay-tree + memory-tiering
    // configuration (bench_util.h wide_config — fixed short horizon, so
    // the cell completes in ~1.5 min on one core). Rides the explicit-
    // config axis: the scenario grid at n=500 would multiply that cost by
    // every (scenario x seed) combination.
    for (auto policy : {harness::PolicyKind::HammerHead,
                        harness::PolicyKind::RoundRobin}) {
      harness::ExperimentConfig wide = wide_config(500, 2'000, policy);
      spec.extra.emplace_back(
          std::string("wide_n500_") + harness::policy_name(policy), wide);
    }
  }
  if (quick_mode()) {
    // Keep the CI gate inside its previous 36-cell budget: no n=50/100,
    // the new slow axis runs at n=10, paid for by dropping the two most
    // expensive n=20 combos (churn-deep forces state syncs; slow
    // stretches the incident window) — those stay covered nightly.
    spec.cell_filter = [](const harness::SweepCell& cell) {
      if (cell.num_validators > 20) return false;
      if (cell.num_validators <= 10) return true;
      return cell.scenario == "partition" || cell.scenario == "churn";
    };
  }

  std::cout << "Sweep matrix: " << spec.policies.size() << " policies x "
            << spec.committee_sizes.size() << " committee sizes x "
            << spec.scenarios.size() << " fault scenarios x "
            << spec.seeds.size() << " seeds, jobs=" << jobs << "\n";
  const int matrix_rc = run_and_report(spec, jobs, verify);

  // Adaptive-adversary sweep: its own spec and JSON (the axis default —
  // one honest sentinel — keeps the matrix grid above byte-identical to
  // pre-adversary baselines; new rows land in BENCH_sweep_adversary.json).
  // Faultless grid so the worst-case rows isolate what the ADVERSARY
  // costs; the honest entry is the in-sweep control group.
  harness::SweepSpec adv;
  adv.name = "adversary";
  adv.base = spec.base;  // same load, duration, warmup, intra_jobs
  adv.policies = {harness::PolicyKind::HammerHead,
                  harness::PolicyKind::RoundRobin};
  adv.committee_sizes = {10, 20};
  adv.seeds = {1, 2, 3};
  adv.adversaries = {harness::AdversarySpec{},  // honest control
                     harness::adversary_equivocate(),
                     harness::adversary_withhold_votes(),
                     harness::adversary_eclipse(),
                     harness::adversary_delay()};
  if (quick_mode()) {
    // CI budget: n=10 only; every adversary still runs at every seed.
    adv.cell_filter = [](const harness::SweepCell& cell) {
      return cell.num_validators <= 10;
    };
  }
  std::cout << "\nAdversary sweep: " << adv.policies.size() << " policies x "
            << adv.committee_sizes.size() << " committee sizes x "
            << adv.adversaries.size() << " adversaries x "
            << adv.seeds.size() << " seeds, jobs=" << jobs << "\n";
  const int adv_rc = run_and_report(adv, jobs, verify);

  return (matrix_rc != 0 || adv_rc != 0) ? 1 : 0;
}

// Shared helpers for the figure-reproduction benches.
//
// Scale control: set HH_BENCH_QUICK=1 for a fast smoke pass (smaller
// committees, shorter runs) or HH_BENCH_DURATION_S to override the simulated
// duration. Default parameters follow the paper's setup (Section 5) scaled to
// a single-core simulation: 13-region geo latency, schedule recomputed every
// 10 commits, bottom 33% excluded, crash faults = max tolerable.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_json.h"
#include "hammerhead/harness/experiment.h"

namespace hammerhead::bench {

inline bool quick_mode() {
  const char* q = std::getenv("HH_BENCH_QUICK");
  return q != nullptr && std::string(q) != "0";
}

inline SimTime bench_duration(SimTime fallback) {
  if (const char* d = std::getenv("HH_BENCH_DURATION_S"))
    return seconds(std::strtol(d, nullptr, 10));
  return quick_mode() ? fallback / 4 : fallback;
}

/// The paper's evaluation configuration (Section 5): geo-distributed
/// committee, schedule every 10 commits, exclude bottom 33%.
inline harness::ExperimentConfig paper_config(std::size_t n, double load_tps,
                                              std::size_t faults,
                                              harness::PolicyKind policy) {
  harness::ExperimentConfig cfg;
  cfg.num_validators = n;
  cfg.load_tps = load_tps;
  cfg.faults = faults;
  cfg.policy = policy;
  cfg.latency = harness::LatencyKind::Geo;
  cfg.hh.cadence = core::ScheduleCadence::commits(10);
  cfg.hh.exclude_fraction = 1.0 / 3.0;
  cfg.seed = 2024;
  cfg.duration = bench_duration(seconds(90));
  // The first schedule epochs (eviction of crashed leaders) complete inside
  // the warm-up; the measured window reflects steady state, like the
  // paper's 10-minute runs.
  cfg.warmup = std::min<SimTime>(seconds(25), cfg.duration / 3);
  return cfg;
}

inline bool wide_mode() {
  const char* w = std::getenv("HH_BENCH_WIDE");
  return w != nullptr && std::string(w) != "0";
}

/// Wide-committee configuration (n >= 500). Deviates from paper_config
/// where the paper's setup would not complete at interactive wall time on
/// one core: relay-tree fanout (degree 4) so a broadcast costs the origin 4
/// egress slots instead of n-1, tight memory tiering (cold after 8 rounds)
/// and a short gc horizon so the working set of 500-1000 per-validator DAGs
/// stays in cache, and a fixed short duration that deliberately IGNORES
/// HH_BENCH_DURATION_S — wide rows must be byte-comparable between quick
/// and full invocations, since they are committed in the same baseline
/// artifact the quick CI gate diffs against.
inline harness::ExperimentConfig wide_config(std::size_t n, double load_tps,
                                             harness::PolicyKind policy) {
  harness::ExperimentConfig cfg = paper_config(n, load_tps, 0, policy);
  cfg.net.fanout_degree = 4;
  cfg.node.index.cold_round_lag = 8;
  cfg.node.gc_depth = 30;
  // n=1000's commit pipeline is deep enough that the second anchor (and
  // with it the first measured commits) lands between sim-seconds 5 and 8;
  // the longer horizon buys the row a real commit-latency column.
  cfg.duration = n >= 1000 ? seconds(8) : seconds(5);
  cfg.warmup = seconds(1);
  return cfg;
}

inline void print_run(const std::string& tag,
                      const harness::ExperimentResult& r) {
  std::cout << tag << "  " << harness::result_row(r) << std::endl;
  JsonReport::instance().row(
      tag, {{"throughput_tps", r.throughput_tps},
            // Run context, so the regression gate only compares rows
            // produced under the same settings (quick vs full mode).
            {"duration_s", r.duration_s},
            {"offered_load_tps", r.offered_load_tps},
            {"avg_latency_s", r.avg_latency_s},
            {"p50_latency_s", r.p50_latency_s},
            {"p95_latency_s", r.p95_latency_s},
            {"p99_latency_s", r.p99_latency_s},
            {"committed_anchors", static_cast<double>(r.committed_anchors)},
            {"skipped_anchors", static_cast<double>(r.skipped_anchors)},
            {"sim_events", static_cast<double>(r.sim_events)},
            {"events_per_sec_wall", r.events_per_sec_wall},
            {"allocs_per_event", r.allocs_per_event},
            {"dag_bytes_per_vertex", r.dag_bytes_per_vertex}});
}

inline void print_header(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
  std::cout << std::string(18, ' ') << harness::result_header() << std::endl;
}

}  // namespace hammerhead::bench

// Shared helpers for the figure-reproduction benches.
//
// Scale control: set HH_BENCH_QUICK=1 for a fast smoke pass (smaller
// committees, shorter runs) or HH_BENCH_DURATION_S to override the simulated
// duration. Default parameters follow the paper's setup (Section 5) scaled to
// a single-core simulation: 13-region geo latency, schedule recomputed every
// 10 commits, bottom 33% excluded, crash faults = max tolerable.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_json.h"
#include "hammerhead/harness/experiment.h"

namespace hammerhead::bench {

inline bool quick_mode() {
  const char* q = std::getenv("HH_BENCH_QUICK");
  return q != nullptr && std::string(q) != "0";
}

inline SimTime bench_duration(SimTime fallback) {
  if (const char* d = std::getenv("HH_BENCH_DURATION_S"))
    return seconds(std::strtol(d, nullptr, 10));
  return quick_mode() ? fallback / 4 : fallback;
}

/// The paper's evaluation configuration (Section 5): geo-distributed
/// committee, schedule every 10 commits, exclude bottom 33%.
inline harness::ExperimentConfig paper_config(std::size_t n, double load_tps,
                                              std::size_t faults,
                                              harness::PolicyKind policy) {
  harness::ExperimentConfig cfg;
  cfg.num_validators = n;
  cfg.load_tps = load_tps;
  cfg.faults = faults;
  cfg.policy = policy;
  cfg.latency = harness::LatencyKind::Geo;
  cfg.hh.cadence = core::ScheduleCadence::commits(10);
  cfg.hh.exclude_fraction = 1.0 / 3.0;
  cfg.seed = 2024;
  cfg.duration = bench_duration(seconds(90));
  // The first schedule epochs (eviction of crashed leaders) complete inside
  // the warm-up; the measured window reflects steady state, like the
  // paper's 10-minute runs.
  cfg.warmup = std::min<SimTime>(seconds(25), cfg.duration / 3);
  return cfg;
}

inline void print_run(const std::string& tag,
                      const harness::ExperimentResult& r) {
  std::cout << tag << "  " << harness::result_row(r) << std::endl;
  JsonReport::instance().row(
      tag, {{"throughput_tps", r.throughput_tps},
            // Run context, so the regression gate only compares rows
            // produced under the same settings (quick vs full mode).
            {"duration_s", r.duration_s},
            {"offered_load_tps", r.offered_load_tps},
            {"avg_latency_s", r.avg_latency_s},
            {"p50_latency_s", r.p50_latency_s},
            {"p95_latency_s", r.p95_latency_s},
            {"p99_latency_s", r.p99_latency_s},
            {"committed_anchors", static_cast<double>(r.committed_anchors)},
            {"skipped_anchors", static_cast<double>(r.skipped_anchors)},
            {"sim_events", static_cast<double>(r.sim_events)},
            {"events_per_sec_wall", r.events_per_sec_wall},
            {"allocs_per_event", r.allocs_per_event}});
}

inline void print_header(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
  std::cout << std::string(18, ' ') << harness::result_header() << std::endl;
}

}  // namespace hammerhead::bench

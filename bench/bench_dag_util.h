// Shared certificate factory for the DAG/committer microbenchmarks: forge
// fully signed certificates and whole rounds without the networked stack
// (the bench-side sibling of tests/test_util.h's DagBuilder).
#pragma once

#include <memory>
#include <vector>

#include "hammerhead/crypto/keys.h"
#include "hammerhead/dag/dag.h"

namespace hammerhead::bench {

struct CertFactory {
  explicit CertFactory(std::size_t n)
      : committee(crypto::Committee::make_equal_stake(n, 1)) {
    for (ValidatorIndex v = 0; v < n; ++v)
      keys.push_back(crypto::Keypair::derive(1, v));
  }

  dag::CertPtr cert(Round r, ValidatorIndex a, std::vector<Digest> parents) {
    auto header = std::make_shared<dag::Header>();
    header->author = a;
    header->round = r;
    header->parents = std::move(parents);
    header->payload = std::make_shared<dag::BlockPayload>();
    header->finalize(keys[a]);
    std::vector<ValidatorIndex> signers;
    for (ValidatorIndex v = 0;
         v < committee.size() - committee.max_faulty_count(); ++v)
      signers.push_back(v);
    return dag::Certificate::make(std::move(header), std::move(signers));
  }

  /// Fill rounds 0..last fully; returns last-round digests.
  std::vector<Digest> fill(dag::Dag& d, Round last) {
    std::vector<Digest> prev;
    for (Round r = 0; r <= last; ++r) {
      std::vector<Digest> cur;
      for (ValidatorIndex a = 0; a < committee.size(); ++a) {
        auto c = cert(r, a, prev);
        d.insert(c);
        cur.push_back(c->digest());
      }
      prev = std::move(cur);
    }
    return prev;
  }

  crypto::Committee committee;
  std::vector<crypto::Keypair> keys;
};

}  // namespace hammerhead::bench

// Leader Utilization (Definition 3, Lemma 6): the number of anchor rounds in
// which no honest party commits is bounded by ~O(T * f) under HammerHead —
// each crashed leader is evicted within at most ~T commits of its crash —
// while round-robin keeps electing crashed leaders and skips a constant
// fraction of anchors forever.
//
// This bench sweeps the fault count f and reports skipped anchors plus the
// committed-anchor share authored by live validators, for both policies, at
// two schedule frequencies T.
#include "bench_util.h"

using namespace hammerhead;
using namespace hammerhead::bench;

int main() {
  hammerhead::bench::JsonReport::instance().init("leader_utilization");
  const std::size_t n = quick_mode() ? 10 : 20;
  const SimTime duration = bench_duration(seconds(120));

  std::cout << "Leader utilization (Lemma 6): skipped anchors vs fault count"
            << "\ncommittee=" << n << ", duration=" << to_seconds(duration)
            << "s, cadence=commits(T)\n\n";
  std::printf("%-14s %2s %3s  %8s %8s %9s  %s\n", "policy", "T", "f",
              "commits", "skipped", "skip/cmt", "(skips bounded ~O(T*f)?)");

  auto report = [&](harness::PolicyKind policy, std::uint64_t t,
                    std::size_t faults) {
    auto cfg = paper_config(n, /*load=*/200.0, faults, policy);
    cfg.duration = duration;
    cfg.hh.cadence = core::ScheduleCadence::commits(t);
    const auto r = harness::run_experiment(cfg);
    const double ratio =
        r.committed_anchors ? static_cast<double>(r.skipped_anchors) /
                                  static_cast<double>(r.committed_anchors)
                            : 0.0;
    std::printf("%-14s %2llu %3zu  %8llu %8llu %8.2f%%\n",
                harness::policy_name(policy),
                static_cast<unsigned long long>(t), faults,
                static_cast<unsigned long long>(r.committed_anchors),
                static_cast<unsigned long long>(r.skipped_anchors),
                100.0 * ratio);
  };

  for (std::size_t faults : {0u, 2u, 4u, 6u}) {
    if (faults > (n - 1) / 3) break;
    for (std::uint64_t t : {5ull, 10ull})
      report(harness::PolicyKind::HammerHead, t, faults);
    report(harness::PolicyKind::RoundRobin, 0, faults);  // T irrelevant
  }
  std::cout << "\nExpected shape: hammerhead's skipped count stays small and "
               "roughly proportional to T*f (one eviction transient per "
               "crashed leader); round-robin's grows with runtime (f/n of "
               "all anchor slots stay dead).\n";
  return 0;
}

// Microbenchmarks: discrete-event engine and the zero-copy multicast
// fabric — the substrate's event costs bound how large a committee the
// harness can simulate per wall-clock second.
//
// This binary also carries the allocation gauge for the acceptance claim
// "zero per-event heap allocations on the steady-state deliver path": a
// global operator-new counter is sampled around the timed sections and
// reported as the allocs_per_event counter.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <new>

#include "bench_gbench_json.h"
#include "hammerhead/net/network.h"
#include "hammerhead/sim/simulator.h"

using namespace hammerhead;

// ----------------------------------------------------- allocation counting

namespace {
std::uint64_t g_heap_allocs = 0;
}  // namespace

// The replacement operators pair new->malloc with delete->free consistently;
// GCC's heuristic cannot see that and warns on the free calls.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t size) {
  ++g_heap_allocs;
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) {
  ++g_heap_allocs;
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

// ------------------------------------------------------------------ engine

static void BM_SimScheduleAndRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim(1);
    for (int i = 0; i < 10'000; ++i)
      sim.schedule_after(static_cast<SimTime>(i % 997), [] {});
    sim.run_to_completion();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 10'000);
}
BENCHMARK(BM_SimScheduleAndRun);

static void BM_SimTimerCascade(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim(1);
    int depth = 0;
    std::function<void()> tick = [&] {
      if (++depth < 10'000) sim.schedule_after(1, tick);
    };
    sim.schedule_after(1, tick);
    sim.run_to_completion();
    benchmark::DoNotOptimize(depth);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 10'000);
}
BENCHMARK(BM_SimTimerCascade);

namespace {
struct NoopRaw {
  static void fire(void*, std::uint64_t) {}
};
}  // namespace

/// Raw (pooled, allocation-free) events: the path network deliveries ride.
static void BM_SimRawEvents(benchmark::State& state) {
  sim::Simulator sim(1);
  // Warm the slab and wheel so the timed section is steady state.
  for (int i = 0; i < 10'000; ++i)
    sim.schedule_raw_at(sim.now() + 1 + (i % 997), &NoopRaw::fire, nullptr, 0);
  sim.run_to_completion();
  std::uint64_t allocs_before = 0, events_before = 0;
  for (auto _ : state) {
    state.PauseTiming();
    allocs_before = g_heap_allocs;
    events_before = sim.executed_events();
    state.ResumeTiming();
    for (int i = 0; i < 10'000; ++i)
      sim.schedule_raw_at(sim.now() + 1 + (i % 997), &NoopRaw::fire, nullptr,
                          0);
    sim.run_to_completion();
  }
  const double events =
      static_cast<double>(sim.executed_events() - events_before);
  state.counters["allocs_per_event"] = benchmark::Counter(
      events > 0 ? static_cast<double>(g_heap_allocs - allocs_before) / events
                 : 0);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 10'000);
}
BENCHMARK(BM_SimRawEvents);

/// Schedule/cancel churn: cancel is a generation bump (O(1), no hash sets),
/// and the compaction sweep keeps stale refs bounded — the storm runs in
/// O(live) memory (see sim_engine_test.cpp for the 1M-timer assertion).
static void BM_SimCancelStorm(benchmark::State& state) {
  sim::Simulator sim(1);
  for (auto _ : state) {
    for (int i = 0; i < 10'000; ++i) {
      const auto id = sim.schedule_after(
          seconds(1) + (i % 9973), [] {});
      sim.cancel(id);
    }
  }
  benchmark::DoNotOptimize(sim.cancelled_pending());
  state.counters["slab_slots"] =
      benchmark::Counter(static_cast<double>(sim.slab_slots()));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 10'000);
}
BENCHMARK(BM_SimCancelStorm);

// ------------------------------------------------------------------ fabric

namespace {
struct NoopMsg final : net::Message {
  std::size_t wire_size() const override { return 100; }
  const char* type_name() const override { return "noop"; }
};

struct CountingSink final : net::MsgSink {
  std::uint64_t received = 0;
  void deliver(ValidatorIndex, const net::MessagePtr&) override {
    ++received;
  }
};
}  // namespace

static void BM_NetworkBroadcast(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulator sim(1);
    net::Network network(
        sim, std::make_unique<net::UniformLatencyModel>(millis(5), millis(20)),
        net::NetConfig{}, n);
    std::vector<CountingSink> sinks(n);
    for (ValidatorIndex v = 0; v < n; ++v)
      network.register_sink(v, &sinks[v]);
    auto msg = std::make_shared<NoopMsg>();
    state.ResumeTiming();
    for (int round = 0; round < 10; ++round)
      for (ValidatorIndex v = 0; v < n; ++v) network.multicast(v, msg);
    sim.run_to_completion();
    benchmark::DoNotOptimize(sinks[0].received);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 10 *
                          static_cast<int64_t>(state.range(0)) *
                          (state.range(0) - 1));
}
BENCHMARK(BM_NetworkBroadcast)->Arg(10)->Arg(50)->Arg(100);

/// Steady-state multicast delivery with a pre-built message: every delivery
/// is a pooled fanout re-key + sink dispatch. allocs_per_event must be ~0 —
/// this is the acceptance gauge for the zero-copy fabric.
static void BM_NetworkMulticastSteadyState(benchmark::State& state) {
  const std::size_t n = 100;
  sim::Simulator sim(1);
  net::Network network(
      sim, std::make_unique<net::UniformLatencyModel>(millis(5), millis(20)),
      net::NetConfig{}, n);
  std::vector<CountingSink> sinks(n);
  for (ValidatorIndex v = 0; v < n; ++v) network.register_sink(v, &sinks[v]);
  auto msg = std::make_shared<NoopMsg>();
  // Warm-up: grow the fanout pool and slab, and push enough simulated time
  // through the wheel to wrap it several times so every bucket has settled
  // its capacity (first touch of a bucket is an allocation by design).
  for (int burst = 0; burst < 100; ++burst) {
    for (int round = 0; round < 10; ++round)
      for (ValidatorIndex v = 0; v < n; ++v) network.multicast(v, msg);
    sim.run_to_completion();
  }

  std::uint64_t allocs_before = 0, events_before = 0;
  const std::uint64_t engine_allocs_before = sim.engine_allocs();
  for (auto _ : state) {
    state.PauseTiming();
    allocs_before = g_heap_allocs;
    events_before = sim.executed_events();
    state.ResumeTiming();
    for (int round = 0; round < 10; ++round)
      for (ValidatorIndex v = 0; v < n; ++v) network.multicast(v, msg);
    sim.run_to_completion();
  }
  const double events =
      static_cast<double>(sim.executed_events() - events_before);
  state.counters["allocs_per_event"] = benchmark::Counter(
      events > 0 ? static_cast<double>(g_heap_allocs - allocs_before) / events
                 : 0);
  state.counters["engine_allocs_delta"] = benchmark::Counter(
      static_cast<double>(sim.engine_allocs() - engine_allocs_before));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 10 *
                          static_cast<int64_t>(n) *
                          static_cast<int64_t>(n - 1));
}
BENCHMARK(BM_NetworkMulticastSteadyState);

HH_BENCHMARK_MAIN_WITH_JSON("micro_sim")

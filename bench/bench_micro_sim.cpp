// Microbenchmarks: discrete-event engine and network fan-out — the
// substrate's event costs bound how large a committee the harness can
// simulate per wall-clock second.
#include <benchmark/benchmark.h>

#include "hammerhead/net/network.h"
#include "hammerhead/sim/simulator.h"

using namespace hammerhead;

static void BM_SimScheduleAndRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim(1);
    for (int i = 0; i < 10'000; ++i)
      sim.schedule_after(static_cast<SimTime>(i % 997), [] {});
    sim.run_to_completion();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 10'000);
}
BENCHMARK(BM_SimScheduleAndRun);

static void BM_SimTimerCascade(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim(1);
    int depth = 0;
    std::function<void()> tick = [&] {
      if (++depth < 10'000) sim.schedule_after(1, tick);
    };
    sim.schedule_after(1, tick);
    sim.run_to_completion();
    benchmark::DoNotOptimize(depth);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 10'000);
}
BENCHMARK(BM_SimTimerCascade);

namespace {
struct NoopMsg final : net::Message {
  std::size_t wire_size() const override { return 100; }
  const char* type_name() const override { return "noop"; }
};
}  // namespace

static void BM_NetworkBroadcast(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulator sim(1);
    net::Network network(
        sim, std::make_unique<net::UniformLatencyModel>(millis(5), millis(20)),
        net::NetConfig{}, n);
    std::uint64_t received = 0;
    for (ValidatorIndex v = 0; v < n; ++v)
      network.register_handler(
          v, [&](ValidatorIndex, const net::MessagePtr&) { ++received; });
    auto msg = std::make_shared<NoopMsg>();
    state.ResumeTiming();
    for (int round = 0; round < 10; ++round)
      for (ValidatorIndex v = 0; v < n; ++v) network.broadcast(v, msg);
    sim.run_to_completion();
    benchmark::DoNotOptimize(received);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 10 *
                          static_cast<int64_t>(state.range(0)) *
                          (state.range(0) - 1));
}
BENCHMARK(BM_NetworkBroadcast)->Arg(10)->Arg(50)->Arg(100);

BENCHMARK_MAIN();

// Microbenchmark: Bullshark ordering throughput — how fast the committer
// digests fully-linked DAG rounds (certificates/second of ordering work),
// with round-robin and with HammerHead's scoring in the loop.
#include <benchmark/benchmark.h>

#include "bench_gbench_json.h"
#include "hammerhead/consensus/committer.h"
#include "hammerhead/core/policies.h"

using namespace hammerhead;

namespace {

struct Setup {
  explicit Setup(std::size_t n)
      : committee(crypto::Committee::make_equal_stake(n, 1)) {
    for (ValidatorIndex v = 0; v < n; ++v)
      keys.push_back(crypto::Keypair::derive(1, v));
  }

  dag::CertPtr cert(Round r, ValidatorIndex a,
                    const std::vector<Digest>& parents) {
    auto header = std::make_shared<dag::Header>();
    header->author = a;
    header->round = r;
    header->parents = parents;
    header->payload = std::make_shared<dag::BlockPayload>();
    header->finalize(keys[a]);
    std::vector<ValidatorIndex> signers;
    for (ValidatorIndex v = 0;
         v < committee.size() - committee.max_faulty_count(); ++v)
      signers.push_back(v);
    return dag::Certificate::make(std::move(header), std::move(signers));
  }

  /// Pre-build `rounds` fully-linked rounds of certificates.
  std::vector<dag::CertPtr> build(Round rounds) {
    std::vector<dag::CertPtr> all;
    std::vector<Digest> prev;
    for (Round r = 0; r < rounds; ++r) {
      std::vector<Digest> cur;
      for (ValidatorIndex a = 0; a < committee.size(); ++a) {
        auto c = cert(r, a, prev);
        cur.push_back(c->digest());
        all.push_back(std::move(c));
      }
      prev = std::move(cur);
    }
    return all;
  }

  crypto::Committee committee;
  std::vector<crypto::Keypair> keys;
};

}  // namespace

static void BM_CommitterOrdering(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const bool hammerhead = state.range(1) != 0;
  Setup s(n);
  const Round rounds = 40;
  const auto certs = s.build(rounds);

  for (auto _ : state) {
    state.PauseTiming();
    dag::Dag dag(s.committee);
    std::unique_ptr<core::LeaderSchedulePolicy> policy;
    if (hammerhead)
      policy = std::make_unique<core::HammerHeadPolicy>(s.committee, 1);
    else
      policy = std::make_unique<core::RoundRobinPolicy>(s.committee, 1);
    std::uint64_t delivered = 0;
    consensus::BullsharkCommitter committer(
        s.committee, dag, *policy,
        [&](const consensus::CommittedSubDag& sd) {
          delivered += sd.vertices.size();
        });
    state.ResumeTiming();
    for (const auto& c : certs) {
      dag.insert(c);
      committer.on_cert_inserted(c);
    }
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(certs.size()));
}
BENCHMARK(BM_CommitterOrdering)
    ->Args({10, 0})
    ->Args({10, 1})
    ->Args({50, 0})
    ->Args({50, 1})
    ->Args({100, 1});

HH_BENCHMARK_MAIN_WITH_JSON("micro_committer")

// Bridges the google-benchmark micro benches into the repo's BENCH_*.json
// artifact convention: a forwarding reporter mirrors every run into
// bench_json.h's JsonReport (console output stays untouched), so CI uploads
// one uniform artifact shape for figure benches and micro benches alike.
//
// Usage: replace BENCHMARK_MAIN() with HH_BENCHMARK_MAIN_WITH_JSON("name").
#pragma once

#include <benchmark/benchmark.h>

#include <string>
#include <utility>
#include <vector>

#include "bench_json.h"

namespace hammerhead::bench {

class JsonForwardingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred) continue;
      std::vector<std::pair<std::string, double>> metrics;
      metrics.emplace_back("real_time", run.GetAdjustedRealTime());
      metrics.emplace_back("cpu_time", run.GetAdjustedCPUTime());
      metrics.emplace_back("iterations",
                           static_cast<double>(run.iterations));
      for (const auto& [name, counter] : run.counters)
        metrics.emplace_back(name, counter.value);
      JsonReport::instance().row(run.benchmark_name(), std::move(metrics));
    }
    ConsoleReporter::ReportRuns(reports);
  }
};

inline int run_benchmarks_with_json(int argc, char** argv, const char* name) {
  JsonReport::instance().init(name);
  benchmark::Initialize(&argc, &argv[0]);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonForwardingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}

}  // namespace hammerhead::bench

#define HH_BENCHMARK_MAIN_WITH_JSON(name)                              \
  int main(int argc, char** argv) {                                    \
    return hammerhead::bench::run_benchmarks_with_json(argc, argv, name); \
  }

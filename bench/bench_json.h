// Machine-readable sibling of the benches' stdout tables: rows of named
// numeric metrics collected during a run and written as BENCH_<name>.json in
// the working directory when the process exits. CI uploads these as
// artifacts so the perf trajectory is tracked across commits; the
// google-benchmark micro benches use their native --benchmark_out instead.
#pragma once

#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "hammerhead/common/json_writer.h"
#include "hammerhead/crypto/sha256.h"

namespace hammerhead::bench {

class JsonReport {
 public:
  static JsonReport& instance() {
    static JsonReport report;
    return report;
  }

  /// Enable output as BENCH_<name>.json. Rows recorded without init() are
  /// dropped (benches that never opt in write nothing).
  void init(std::string name) { name_ = std::move(name); }

  void row(const std::string& label,
           std::vector<std::pair<std::string, double>> metrics) {
    // Every row records the host's core count: rows measuring thread
    // scaling are only comparable against a baseline captured on a machine
    // with at least that many cores, and the regression gate
    // (tools/bench_compare.py) skips speedup gating when threads > cores.
    metrics.emplace_back(
        "host_cores",
        static_cast<double>(std::thread::hardware_concurrency()));
    // Likewise the SHA dispatch capability (0 scalar, 1 AVX2, 2 SHA-NI):
    // hash-throughput rows only gate against baselines captured at the same
    // level — a scalar-only runner cannot reproduce SHA-NI numbers.
    metrics.emplace_back(
        "host_sha", static_cast<double>(crypto::sha::max_level()));
    rows_.push_back(Row{label, std::move(metrics)});
  }

  ~JsonReport() {
    if (name_.empty() || rows_.empty()) return;
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return;
    std::fprintf(f, "{\"bench\": \"%s\", \"rows\": [", name_.c_str());
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      std::fprintf(f, "%s\n  {\"label\": \"%s\", \"metrics\": {",
                   i == 0 ? "" : ",", hammerhead::json_escape(r.label).c_str());
      for (std::size_t m = 0; m < r.metrics.size(); ++m)
        hammerhead::write_json_metric(f, m == 0,
                                      r.metrics[m].first.c_str(),
                                      r.metrics[m].second);
      std::fprintf(f, "}}");
    }
    std::fprintf(f, "\n]}\n");
    std::fclose(f);
    std::printf("wrote %s (%zu rows)\n", path.c_str(), rows_.size());
  }

 private:
  struct Row {
    std::string label;
    std::vector<std::pair<std::string, double>> metrics;
  };

  std::string name_;
  std::vector<Row> rows_;
};

}  // namespace hammerhead::bench

// End-to-end event-engine throughput: the Figure-1 faultless workload at
// n=100, measured in engine events per wall-clock second. This is the
// acceptance gauge for the batched event engine + multicast fabric and for
// the sharded (intra-run parallel) executor — compare rows across commits
// in bench/results/BENCH_engine_e2e.json.
//
// Rows:
//   fig1_n<N>                  legacy config (no slotting, serial) — the
//                              long-lived baseline series.
//   fig1_n<N>_slot256_jobs1    delivery/dispatch slotting on, serial: the
//                              reference row every sharded row compares
//                              against (same simulated schedule).
//   fig1_n<N>_slot256_jobsK    same schedule on K workers. Simulated
//                              metrics and the trace hash are bit-identical
//                              to jobs1 by construction; only the wall
//                              gauges differ. speedup_vs_serial is
//                              host-dependent (1-core hosts show <= 1).
//
// --verify: fail (exit 1) unless every sharded row's trace hash equals the
// serial reference — the engine-level determinism acceptance check.
#include <cstring>

#include "bench_util.h"

using namespace hammerhead;
using namespace hammerhead::bench;

int main(int argc, char** argv) {
  bool verify = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--verify") == 0) verify = true;

  JsonReport::instance().init("engine_e2e");
  std::cout << "Event-engine end-to-end throughput (fig1 workload)\n";

  const std::size_t n = quick_mode() ? 10 : 100;
  auto cfg = paper_config(n, /*load_tps=*/3'500, /*faults=*/0,
                          harness::PolicyKind::HammerHead);
  cfg.duration = bench_duration(seconds(30));
  cfg.warmup = std::min<SimTime>(seconds(10), cfg.duration / 3);

  const auto emit = [&](const std::string& label,
                        const harness::ExperimentResult& r,
                        double speedup_vs_serial) {
    std::cout << label << "  events=" << r.sim_events
              << "  wall_s=" << r.wall_seconds << "  events/s="
              << static_cast<std::uint64_t>(r.events_per_sec_wall)
              << "  par_frac="
              << (r.sim_events > 0 ? static_cast<double>(r.parallel_events) /
                                         static_cast<double>(r.sim_events)
                                   : 0)
              << "  tput=" << r.throughput_tps << " tx/s"
              << "  commits=" << r.committed_anchors
              << (speedup_vs_serial > 0
                      ? "  speedup=" + std::to_string(speedup_vs_serial)
                      : std::string())
              << "\n";
    JsonReport::instance().row(
        label,
        {{"sim_events", static_cast<double>(r.sim_events)},
         {"wall_seconds", r.wall_seconds},
         {"events_per_sec_wall", r.events_per_sec_wall},
         {"allocs_per_event", r.allocs_per_event},
         {"throughput_tps", r.throughput_tps},
         {"intra_jobs", static_cast<double>(r.intra_jobs)},
         {"parallel_event_frac",
          r.sim_events > 0 ? static_cast<double>(r.parallel_events) /
                                 static_cast<double>(r.sim_events)
                           : 0.0},
         {"speedup_vs_serial", speedup_vs_serial},
         // Run context for the regression gate (quick vs full mode).
         {"duration_s", r.duration_s},
         {"offered_load_tps", r.offered_load_tps},
         {"committed_anchors", static_cast<double>(r.committed_anchors)}});
  };

  // Long-lived baseline series: legacy schedule, serial.
  const auto legacy = harness::run_experiment(cfg);
  emit("fig1_n" + std::to_string(n), legacy, 0.0);

  // Sharded comparison at a fixed 256 us execution slot: serial reference
  // first, then worker counts. Same seed + slot => same simulated schedule.
  cfg.exec_slot = 256;
  cfg.intra_jobs = 1;
  const auto serial = harness::run_experiment(cfg);
  const std::string base = "fig1_n" + std::to_string(n) + "_slot256_jobs";
  emit(base + "1", serial, 1.0);

  bool hashes_ok = true;
  for (const std::size_t jobs : {2ul, 4ul}) {
    cfg.intra_jobs = jobs;
    const auto r = harness::run_experiment(cfg);
    emit(base + std::to_string(jobs), r,
         r.wall_seconds > 0 ? serial.wall_seconds / r.wall_seconds : 0.0);
    if (r.trace_hash != serial.trace_hash) {
      hashes_ok = false;
      std::cout << "TRACE HASH MISMATCH at jobs=" << jobs << ": "
                << r.trace_hash << " != serial " << serial.trace_hash
                << "\n";
    }
  }
  std::cout << (hashes_ok ? "trace hashes: jobs{2,4} == jobs1\n"
                          : "trace hashes: MISMATCH\n");

  if (!quick_mode()) {
    // Fixed reference: the PR 2 engine (single priority_queue + hash-set
    // cancel bookkeeping, per-recipient broadcast pushes) measured on the
    // same workload/seed before the engine swap. The swap reproduced the
    // event count, throughput and commit sequence bit-identically, so the
    // events/sec ratio is apples to apples on any host of similar class.
    JsonReport::instance().row(
        "pr2_baseline_reference_n100",
        {{"sim_events", 3051654.0},
         {"wall_seconds", 8.90856},
         {"events_per_sec_wall", 342552.0},
         {"throughput_tps", 3069.0},
         {"committed_anchors", 24.0}});
  }
  if (verify && !hashes_ok) return 1;
  return 0;
}

// End-to-end event-engine throughput: the Figure-1 faultless workload at
// n=100, measured in engine events per wall-clock second. This is the
// acceptance gauge for the batched event engine + multicast fabric —
// compare rows across commits in bench/results/BENCH_engine_e2e.json.
#include "bench_util.h"

using namespace hammerhead;
using namespace hammerhead::bench;

int main() {
  JsonReport::instance().init("engine_e2e");
  std::cout << "Event-engine end-to-end throughput (fig1 workload)\n";

  const std::size_t n = quick_mode() ? 10 : 100;
  auto cfg = paper_config(n, /*load_tps=*/3'500, /*faults=*/0,
                          harness::PolicyKind::HammerHead);
  cfg.duration = bench_duration(seconds(30));
  cfg.warmup = std::min<SimTime>(seconds(10), cfg.duration / 3);

  const auto r = harness::run_experiment(cfg);
  std::cout << "n=" << n << "  events=" << r.sim_events
            << "  wall_s=" << r.wall_seconds
            << "  events/s="
            << static_cast<std::uint64_t>(r.events_per_sec_wall)
            << "  allocs/event=" << r.allocs_per_event
            << "  tput=" << r.throughput_tps << " tx/s"
            << "  commits=" << r.committed_anchors << "\n";
  JsonReport::instance().row(
      "fig1_n" + std::to_string(n),
      {{"sim_events", static_cast<double>(r.sim_events)},
       {"wall_seconds", r.wall_seconds},
       {"events_per_sec_wall", r.events_per_sec_wall},
       {"allocs_per_event", r.allocs_per_event},
       {"throughput_tps", r.throughput_tps},
       // Run context for the regression gate (quick vs full mode).
       {"duration_s", r.duration_s},
       {"offered_load_tps", r.offered_load_tps},
       {"committed_anchors", static_cast<double>(r.committed_anchors)}});

  if (!quick_mode()) {
    // Fixed reference: the PR 2 engine (single priority_queue + hash-set
    // cancel bookkeeping, per-recipient broadcast pushes) measured on the
    // same workload/seed before the engine swap. The swap reproduced the
    // event count, throughput and commit sequence bit-identically, so the
    // events/sec ratio is apples to apples on any host of similar class.
    JsonReport::instance().row(
        "pr2_baseline_reference_n100",
        {{"sim_events", 3051654.0},
         {"wall_seconds", 8.90856},
         {"events_per_sec_wall", 342552.0},
         {"throughput_tps", 3069.0},
         {"committed_anchors", 24.0}});
  }
  return 0;
}

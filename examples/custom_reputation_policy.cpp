// Extending the library with a custom reputation rule.
//
// Section 3.1: "our solution is not specific to the calculation of the
// schedule and could work with any deterministic schedule-change rule."
// This example implements that extension point: a policy that scores
// validators by *vertex production* (one point per ordered vertex they
// authored) instead of HammerHead's vote-frequency rule, reusing the
// library's BaseSchedule / LeaderSwapTable / ScheduleHistory machinery.
// Any deterministic function of the ordered prefix preserves agreement.
//
// The example then races the custom rule against stock HammerHead and
// round-robin on a committee with crash faults.
#include <iostream>
#include <memory>

#include "hammerhead/harness/experiment.h"

using namespace hammerhead;

namespace {

/// One reputation point per ordered vertex authored; epochs every K commits.
class ProductionRatePolicy final : public core::LeaderSchedulePolicy {
 public:
  ProductionRatePolicy(const crypto::Committee& committee, std::uint64_t seed,
                       std::uint64_t commits_per_epoch)
      : committee_(committee),
        commits_per_epoch_(commits_per_epoch),
        history_(core::BaseSchedule::make(committee, seed)),
        scores_(committee.size()) {}

  ValidatorIndex leader(Round round) const override {
    return history_.leader(round);
  }

  void on_vertex_ordered(const dag::Dag&, const dag::Certificate& v) override {
    scores_.add(v.author());  // custom deterministic rule
  }

  bool on_anchor_committed(const dag::Certificate& anchor) override {
    if (++commits_ < commits_per_epoch_) return false;
    commits_ = 0;
    history_.push_epoch(anchor.round() + 2,
                        core::LeaderSwapTable::from_scores(
                            committee_, scores_, /*exclude_fraction=*/1.0 / 3));
    scores_.reset();
    return true;  // committer re-evaluates under the new schedule
  }

  std::string name() const override { return "production-rate"; }
  const core::ScheduleHistory* history() const override { return &history_; }

 private:
  const crypto::Committee& committee_;
  std::uint64_t commits_per_epoch_;
  std::uint64_t commits_ = 0;
  core::ScheduleHistory history_;
  core::ReputationScores scores_;
};

}  // namespace

int main() {
  harness::ExperimentConfig cfg;
  cfg.num_validators = 13;  // one validator per AWS region
  cfg.faults = 4;
  cfg.load_tps = 400;
  cfg.duration = seconds(60);
  cfg.warmup = seconds(20);
  cfg.seed = 11;

  std::cout << "Custom schedule-change rule vs stock policies ("
            << cfg.num_validators << " validators, " << cfg.faults
            << " crashed)\n\n"
            << harness::result_header() << "\n";

  // The custom policy plugs in through the harness' factory extension point.
  cfg.custom_policy = [](const crypto::Committee& c) {
    return std::make_unique<ProductionRatePolicy>(c, 11,
                                                  /*commits_per_epoch=*/10);
  };
  std::cout << harness::result_row(harness::run_experiment(cfg)) << "\n";

  cfg.custom_policy = nullptr;
  cfg.policy = harness::PolicyKind::HammerHead;
  std::cout << harness::result_row(harness::run_experiment(cfg)) << "\n";
  cfg.policy = harness::PolicyKind::RoundRobin;
  std::cout << harness::result_row(harness::run_experiment(cfg)) << "\n";

  std::cout << "\nBoth adaptive rules evict the crashed leaders; HammerHead's "
               "vote-frequency rule additionally punishes vote withholding "
               "(see Section 7 of the paper and bench_scoring_rules).\n";
  return 0;
}

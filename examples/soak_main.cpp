// Crash-injection soak binary: one resumable cell of the soak harness
// (tools/soak.py). Runs a checkpointed experiment, optionally SIGKILLs
// itself right after a chosen checkpoint lands on disk (the crash-injection
// hook — a real uncatchable SIGKILL, no destructors, exactly what the
// atomic-write path must survive), and on the next invocation resumes from
// the newest valid checkpoint with byte-identity verification.
//
//   soak_main --dir /tmp/soak                 # fresh run to completion
//   soak_main --dir /tmp/soak --kill-after 0  # die after checkpoint 0
//   soak_main --dir /tmp/soak --resume        # pick up from the newest cut
//
// On clean exit writes `<dir>/final.json` with the run fingerprint
// (trace_hash, commits, conflicting_certs) for the driver to compare against
// a straight-through reference.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "hammerhead/harness/adversary.h"
#include "hammerhead/harness/experiment.h"

using namespace hammerhead;

namespace {

void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " --dir <checkpoint-dir> [options]\n"
         "  --resume               resume from the newest checkpoint in dir\n"
         "  --kill-after <k>       SIGKILL self after checkpoint k is on disk\n"
         "  --seed <s>             root seed (default 77)\n"
         "  --validators <n>       committee size (default 7)\n"
         "  --duration-s <d>       simulated run length (default 30)\n"
         "  --interval-s <i>       checkpoint cadence (default 2)\n"
         "  --load <tps>           offered load (default 500)\n"
         "  --jobs <j>             intra-run worker threads (default 1)\n"
         "  --adversary <name>     equivocate|withhold|eclipse|delay\n"
         "  --control <path>       bind the control socket at <path>\n"
         "  --final-json <path>    result sink (default <dir>/final.json)\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir, control, final_json, adversary;
  bool resume = false;
  long long kill_after = -1;
  harness::ExperimentConfig cfg;
  cfg.seed = 77;
  cfg.num_validators = 7;
  cfg.duration = seconds(30);
  cfg.warmup = seconds(2);
  cfg.load_tps = 500;
  cfg.latency = harness::LatencyKind::Uniform;
  cfg.node.model_cpu = false;
  cfg.node.min_round_delay = millis(20);
  cfg.node.leader_timeout = millis(400);
  cfg.checkpoint.interval = seconds(2);

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--dir") dir = next();
    else if (arg == "--resume") resume = true;
    else if (arg == "--kill-after") kill_after = std::atoll(next());
    else if (arg == "--seed") cfg.seed = std::strtoull(next(), nullptr, 10);
    else if (arg == "--validators")
      cfg.num_validators = std::strtoul(next(), nullptr, 10);
    else if (arg == "--duration-s")
      cfg.duration = seconds(std::atoll(next()));
    else if (arg == "--interval-s")
      cfg.checkpoint.interval = seconds(std::atoll(next()));
    else if (arg == "--load") cfg.load_tps = std::strtod(next(), nullptr);
    else if (arg == "--jobs")
      cfg.intra_jobs = std::strtoul(next(), nullptr, 10);
    else if (arg == "--adversary") adversary = next();
    else if (arg == "--control") control = next();
    else if (arg == "--final-json") final_json = next();
    else usage(argv[0]);
  }
  if (dir.empty()) usage(argv[0]);
  if (final_json.empty()) final_json = dir + "/final.json";

  cfg.checkpoint.dir = dir;
  cfg.control_socket = control;
  if (resume) cfg.checkpoint.resume_from = "latest";
  if (adversary == "equivocate")
    cfg.adversaries.push_back(harness::adversary_equivocate());
  else if (adversary == "withhold")
    cfg.adversaries.push_back(harness::adversary_withhold_votes());
  else if (adversary == "eclipse")
    cfg.adversaries.push_back(harness::adversary_eclipse());
  else if (adversary == "delay")
    cfg.adversaries.push_back(harness::adversary_delay());
  else if (!adversary.empty())
    usage(argv[0]);

  if (kill_after >= 0) {
    cfg.checkpoint.on_checkpoint = [kill_after](std::uint32_t index) {
      if (static_cast<long long>(index) >= kill_after) {
        // The checkpoint file is durably renamed into place; die the hard
        // way (uncatchable, no atexit, no destructors) like a host crash.
        std::fprintf(stderr, "soak: SIGKILL self after checkpoint %u\n",
                     index);
        std::fflush(nullptr);
        ::kill(::getpid(), SIGKILL);
      }
    };
  }

  const harness::ExperimentResult r = harness::run_experiment(cfg);

  std::FILE* f = std::fopen(final_json.c_str(), "w");
  if (f == nullptr) {
    std::cerr << "soak: cannot write " << final_json << "\n";
    return 1;
  }
  std::fprintf(
      f,
      "{\"trace_hash\": \"%016llx\", \"submitted\": %llu, \"committed\": "
      "%llu,\n \"committed_anchors\": %llu, \"conflicting_certs\": %llu, "
      "\"checkpoints_written\": %llu,\n \"resumed_from\": %lld, "
      "\"sim_events\": %llu}\n",
      static_cast<unsigned long long>(r.trace_hash),
      static_cast<unsigned long long>(r.submitted),
      static_cast<unsigned long long>(r.committed),
      static_cast<unsigned long long>(r.committed_anchors),
      static_cast<unsigned long long>(r.conflicting_certs),
      static_cast<unsigned long long>(r.checkpoints_written),
      static_cast<long long>(r.resumed_from),
      static_cast<unsigned long long>(r.sim_events));
  std::fclose(f);

  std::cout << "soak: done t=" << r.duration_s << "s committed=" << r.committed
            << " anchors=" << r.committed_anchors
            << " conflicting_certs=" << r.conflicting_certs
            << " checkpoints=" << r.checkpoints_written
            << " resumed_from=" << r.resumed_from << " trace_hash=" << std::hex
            << r.trace_hash << std::dec << "\n";
  return r.conflicting_certs == 0 ? 0 : 3;
}

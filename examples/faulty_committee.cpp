// Faulty-committee walkthrough: the paper's motivating scenario end-to-end.
//
// A 20-validator geo-distributed committee loses f = 6 validators to crashes
// two seconds into the run. We race HammerHead against round-robin Bullshark
// and print the story the paper tells in Section 1: round-robin keeps
// electing the dead leaders (timeouts, skipped anchors, 2x latency);
// HammerHead's reputation scores collapse for the crashed nodes, the next
// schedule epoch evicts them, and performance returns to faultless levels.
//
//   ./build/examples/faulty_committee [n] [faults] [load_tps]
#include <cstdlib>
#include <iostream>

#include "hammerhead/harness/experiment.h"

using namespace hammerhead;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 20;
  const std::size_t faults =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : (n - 1) / 3;
  const double load = argc > 3 ? std::strtod(argv[3], nullptr) : 500.0;

  harness::ExperimentConfig cfg;
  cfg.num_validators = n;
  cfg.faults = faults;
  cfg.crash_time = seconds(2);
  cfg.load_tps = load;
  cfg.duration = seconds(60);
  cfg.warmup = seconds(20);
  cfg.latency = harness::LatencyKind::Geo;
  cfg.hh.cadence = core::ScheduleCadence::commits(10);
  cfg.seed = 7;

  std::cout << "Committee of " << n << ", " << faults
            << " validators crash at t=2s, " << load << " tx/s offered.\n\n";

  cfg.policy = harness::PolicyKind::HammerHead;
  const auto hh = harness::run_experiment(cfg);
  cfg.policy = harness::PolicyKind::RoundRobin;
  const auto rr = harness::run_experiment(cfg);

  std::cout << harness::result_header() << "\n"
            << harness::result_row(hh) << "\n"
            << harness::result_row(rr) << "\n\n";

  std::cout << "Who authored committed anchors (leader utilization):\n";
  std::cout << "  validator   hammerhead   round-robin\n";
  for (std::size_t v = 0; v < n; ++v) {
    std::printf("  v%-3zu %s  %10llu   %11llu\n", v,
                v >= n - faults ? "(dead)" : "      ",
                static_cast<unsigned long long>(hh.anchors_by_author[v]),
                static_cast<unsigned long long>(rr.anchors_by_author[v]));
  }

  const double latency_gain =
      hh.avg_latency_s > 0 ? rr.avg_latency_s / hh.avg_latency_s : 0;
  std::cout << "\nHammerHead latency advantage under faults: "
            << latency_gain << "x (paper reports ~2x at the fault bound)\n"
            << "HammerHead skipped anchors: " << hh.skipped_anchors
            << " (transient only)  vs round-robin: " << rr.skipped_anchors
            << " (persistent)\n";
  return 0;
}

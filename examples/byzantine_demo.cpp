// Byzantine-behaviour demo: what HammerHead's reputation does to misbehaving
// validators that are NOT simply crashed.
//
//   * v(n-1) equivocates: two conflicting headers per round. Vote uniqueness
//     confines it to at most one certificate per round; honest validators
//     log refusals.
//   * v(n-2) withholds votes (the strategy Section 7 says HammerHead
//     discourages).
//   * v(n-3) is a "just slow enough" proposer (the static-leader risk).
//
// The demo prints protocol health plus each suspect's share of committed
// anchors under HammerHead vs round-robin.
#include <iostream>

#include "hammerhead/harness/experiment.h"

using namespace hammerhead;

int main() {
  const std::size_t n = 13;
  harness::ExperimentConfig cfg;
  cfg.num_validators = n;
  cfg.load_tps = 300;
  cfg.duration = seconds(60);
  cfg.warmup = seconds(20);
  cfg.seed = 3;
  cfg.hh.cadence = core::ScheduleCadence::commits(10);
  cfg.behaviors = {
      {static_cast<ValidatorIndex>(n - 1), node::Behavior::Equivocator},
      {static_cast<ValidatorIndex>(n - 2), node::Behavior::VoteWithholder},
      {static_cast<ValidatorIndex>(n - 3), node::Behavior::SlowProposer},
  };
  cfg.node.slow_proposer_delay = millis(700);
  cfg.clients_avoid_crashed = true;

  std::cout << "Committee of " << n << " with an equivocator (v" << n - 1
            << "), a vote withholder (v" << n - 2
            << ") and a slow proposer (v" << n - 3 << ").\n\n"
            << harness::result_header() << "\n";

  cfg.policy = harness::PolicyKind::HammerHead;
  const auto hh = harness::run_experiment(cfg);
  std::cout << harness::result_row(hh) << "\n";
  cfg.policy = harness::PolicyKind::RoundRobin;
  const auto rr = harness::run_experiment(cfg);
  std::cout << harness::result_row(rr) << "\n\n";

  auto share = [n](const harness::ExperimentResult& r, ValidatorIndex v) {
    std::uint64_t total = 0;
    for (auto c : r.anchors_by_author) total += c;
    return total ? 100.0 * static_cast<double>(r.anchors_by_author[v]) /
                       static_cast<double>(total)
                 : 0.0;
  };

  std::cout << "Committed-anchor share (fair share would be "
            << 100.0 / static_cast<double>(n) << "%):\n";
  std::printf("  %-18s %11s %12s\n", "suspect", "hammerhead", "round-robin");
  std::printf("  %-18s %10.1f%% %11.1f%%\n", "equivocator",
              share(hh, static_cast<ValidatorIndex>(n - 1)),
              share(rr, static_cast<ValidatorIndex>(n - 1)));
  std::printf("  %-18s %10.1f%% %11.1f%%\n", "vote withholder",
              share(hh, static_cast<ValidatorIndex>(n - 2)),
              share(rr, static_cast<ValidatorIndex>(n - 2)));
  std::printf("  %-18s %10.1f%% %11.1f%%\n", "slow proposer",
              share(hh, static_cast<ValidatorIndex>(n - 3)),
              share(rr, static_cast<ValidatorIndex>(n - 3)));

  std::cout << "\nSafety held throughout (the run would have thrown on any "
               "total-order violation); HammerHead pushes the misbehaving "
               "validators out of the leader schedule while round-robin "
               "keeps giving them slots.\n";
  return 0;
}

// Quickstart: run a 10-validator geo-distributed committee under load with
// HammerHead leader reputation, and print what the paper's dashboards show —
// throughput, end-to-end latency, committed anchors and schedule epochs.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [num_validators] [load_tps] [faults]
#include <cstdlib>
#include <iostream>

#include "hammerhead/harness/experiment.h"

using namespace hammerhead;

int main(int argc, char** argv) {
  harness::ExperimentConfig cfg;
  cfg.num_validators = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 10;
  cfg.load_tps = argc > 2 ? std::strtod(argv[2], nullptr) : 1'000.0;
  cfg.faults = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 0;

  cfg.policy = harness::PolicyKind::HammerHead;
  cfg.latency = harness::LatencyKind::Geo;  // the paper's 13 AWS regions
  cfg.duration = seconds(30);
  cfg.warmup = seconds(5);
  cfg.seed = 2024;

  std::cout << "committee=" << cfg.num_validators << " load=" << cfg.load_tps
            << "tx/s faults=" << cfg.faults << "\n";

  const harness::ExperimentResult hh = harness::run_experiment(cfg);
  cfg.policy = harness::PolicyKind::RoundRobin;
  const harness::ExperimentResult rr = harness::run_experiment(cfg);

  std::cout << harness::result_header() << "\n"
            << harness::result_row(hh) << "\n"
            << harness::result_row(rr) << "\n";

  std::cout << "\ncommitted-anchor authorship under hammerhead (leader "
               "utilization):\n";
  for (std::size_t v = 0; v < hh.anchors_by_author.size(); ++v)
    std::cout << "  v" << v
              << (v >= cfg.num_validators - cfg.faults ? " (crashed)" : "")
              << ": " << hh.anchors_by_author[v] << "\n";
  return 0;
}

#!/usr/bin/env python3
"""Documentation consistency gate.

Two checks, both grep-based (no markdown parser dependency):

1. Every intra-repo markdown link ``[text](path)`` in the repo's .md
   files must resolve to an existing file (anchors are stripped;
   external http(s)/mailto links are ignored).
2. Every ``scenario_*`` / ``adversary_*`` factory named in
   docs/scenarios.md must exist in the harness headers, and — the
   reverse direction — every factory declared in the headers must be
   documented in docs/scenarios.md. Docs that drift from the code fail
   CI, in either direction.
3. The control-socket command table in docs/checkpoint.md must match the
   ``kCommands`` registry in src/hammerhead/harness/control.cpp, again in
   both directions: an undocumented command or a documented-but-removed
   command fails.

Usage: python3 tools/check_docs.py [repo_root]
Exit 0 when everything resolves, 1 otherwise.
"""

import os
import re
import sys


DOC_FILES = (
    "ARCHITECTURE.md",
    "ROADMAP.md",
    "docs/scenarios.md",
    "docs/benchmarks.md",
    "docs/checkpoint.md",
)
FACTORY_HEADERS = (
    "src/hammerhead/harness/sweep.h",
    "src/hammerhead/harness/adversary.h",
)
CONTROL_SOURCE = "src/hammerhead/harness/control.cpp"
CONTROL_DOC = "docs/checkpoint.md"
CONTROL_DOC_SECTION = "## Control socket"

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FACTORY_USE_RE = re.compile(r"\b((?:scenario|adversary)_[a-z0-9_]+)\s*\(")
FACTORY_DECL_RE = re.compile(
    r"^(?:FaultScenario|AdversarySpec)\s+((?:scenario|adversary)_[a-z0-9_]+)\s*\(",
    re.MULTILINE)
# kCommands entries: {"name", "help ..."} at the start of a line.
CONTROL_DECL_RE = re.compile(r'^\s*\{"([a-z]+)",', re.MULTILINE)
# Doc table rows in the "Control socket" section: | `name` | effect |
CONTROL_DOC_RE = re.compile(r"^\|\s*`([a-z]+)`", re.MULTILINE)


def check_links(root):
    failures = []
    for doc in DOC_FILES:
        path = os.path.join(root, doc)
        if not os.path.isfile(path):
            failures.append(f"{doc}: file missing")
            continue
        with open(path, encoding="utf-8") as f:
            text = f.read()
        for target in LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            rel = target.split("#", 1)[0]
            resolved = os.path.normpath(
                os.path.join(root, os.path.dirname(doc), rel))
            if not os.path.exists(resolved):
                failures.append(f"{doc}: broken link -> {target}")
    return failures


def check_factories(root):
    failures = []
    declared = set()
    for header in FACTORY_HEADERS:
        path = os.path.join(root, header)
        if not os.path.isfile(path):
            failures.append(f"{header}: header missing")
            continue
        with open(path, encoding="utf-8") as f:
            declared |= set(FACTORY_DECL_RE.findall(f.read()))

    doc_path = os.path.join(root, "docs", "scenarios.md")
    if not os.path.isfile(doc_path):
        return failures + ["docs/scenarios.md: file missing"]
    with open(doc_path, encoding="utf-8") as f:
        documented = set(FACTORY_USE_RE.findall(f.read()))

    for name in sorted(documented - declared):
        failures.append(
            f"docs/scenarios.md names {name}() but no harness header "
            "declares it")
    for name in sorted(declared - documented):
        failures.append(
            f"{name}() is declared in the harness headers but "
            "docs/scenarios.md never mentions it")
    return failures


def check_control_commands(root):
    failures = []
    src_path = os.path.join(root, CONTROL_SOURCE)
    if not os.path.isfile(src_path):
        return [f"{CONTROL_SOURCE}: file missing"]
    with open(src_path, encoding="utf-8") as f:
        declared = set(CONTROL_DECL_RE.findall(f.read()))
    if not declared:
        return [f"{CONTROL_SOURCE}: no kCommands entries found "
                "(check CONTROL_DECL_RE)"]

    doc_path = os.path.join(root, CONTROL_DOC)
    if not os.path.isfile(doc_path):
        return [f"{CONTROL_DOC}: file missing"]
    with open(doc_path, encoding="utf-8") as f:
        text = f.read()
    # Only table rows inside the "Control socket" section count: the file
    # has other backtick-leading tables (the on-disk format).
    start = text.find(CONTROL_DOC_SECTION)
    if start < 0:
        return [f"{CONTROL_DOC}: missing '{CONTROL_DOC_SECTION}' section"]
    end = text.find("\n## ", start + len(CONTROL_DOC_SECTION))
    section = text[start:end if end >= 0 else len(text)]
    documented = set(CONTROL_DOC_RE.findall(section))
    if not documented:
        return [f"{CONTROL_DOC}: no command table rows found in "
                f"'{CONTROL_DOC_SECTION}' (check CONTROL_DOC_RE)"]

    for name in sorted(documented - declared):
        failures.append(
            f"{CONTROL_DOC} documents control command `{name}` but "
            f"{CONTROL_SOURCE} kCommands does not declare it")
    for name in sorted(declared - documented):
        failures.append(
            f"control command `{name}` is in {CONTROL_SOURCE} kCommands but "
            f"the {CONTROL_DOC} command table never mentions it")
    return failures


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else "."
    failures = check_links(root) + check_factories(root) \
        + check_control_commands(root)
    for failure in failures:
        print(f"check_docs: {failure}", file=sys.stderr)
    if failures:
        print(f"check_docs: {len(failures)} failure(s)", file=sys.stderr)
        return 1
    print("check_docs: all markdown links resolve, every scenario/adversary "
          "factory is documented and declared, and the control-socket "
          "command table matches kCommands")
    return 0


if __name__ == "__main__":
    sys.exit(main())

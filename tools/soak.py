#!/usr/bin/env python3
"""Crash-injection soak harness for the checkpoint/resume subsystem.

Drives examples/soak_main.cpp through repeated SIGKILL/resume cycles and
asserts the three robustness invariants of docs/checkpoint.md:

  1. progress   — each kill/resume cycle advances the newest checkpoint
                  index and never decreases committed transactions
                  (read from the ckpt_*.hhcp.json sidecars);
  2. safety     — conflicting_certs stays 0 through every cycle and in the
                  final result (the adversary soak runs with live
                  equivocation directives);
  3. determinism — the final completed run's trace_hash is byte-identical
                  to a straight-through run of the same config that was
                  never killed (and every resume already byte-compared the
                  replayed state blob against its snapshot: verify_resume).

The kill is injected by the binary itself immediately after a checkpoint
file is durably renamed into place (--kill-after): a real uncatchable
SIGKILL, deterministic in placement, so the harness needs no wall-clock
races to land kills "mid-grid".

Usage:
  tools/soak.py --binary build/soak_main [--cycles 3] [--workdir /tmp/...]
                [--seed 77] [--validators 7] [--duration-s 30]
                [--interval-s 2] [--load 500] [--adversary equivocate]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import shutil
import signal
import subprocess
import sys
import tempfile


def run(cmd: list[str]) -> subprocess.CompletedProcess:
    print("+", " ".join(cmd), flush=True)
    return subprocess.run(cmd, capture_output=True, text=True)


def read_json(path: pathlib.Path) -> dict:
    with open(path) as f:
        return json.load(f)


def latest_sidecar(ckpt_dir: pathlib.Path) -> dict | None:
    sidecars = sorted(ckpt_dir.glob("ckpt_*.hhcp.json"))
    if not sidecars:
        return None
    return read_json(sidecars[-1])


def fail(msg: str) -> None:
    print(f"soak: FAIL — {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--binary", default="build/soak_main",
                    help="path to the soak_main binary")
    ap.add_argument("--cycles", type=int, default=3,
                    help="SIGKILL/resume cycles before the final run")
    ap.add_argument("--workdir", default=None,
                    help="scratch directory (default: a fresh tempdir)")
    ap.add_argument("--seed", type=int, default=77)
    ap.add_argument("--validators", type=int, default=7)
    ap.add_argument("--duration-s", type=int, default=30)
    ap.add_argument("--interval-s", type=int, default=2)
    ap.add_argument("--load", type=int, default=500)
    ap.add_argument("--adversary", default="equivocate",
                    help="equivocate|withhold|eclipse|delay|none")
    args = ap.parse_args()

    if args.cycles * args.interval_s >= args.duration_s:
        fail(f"{args.cycles} cycles x {args.interval_s}s interval needs a "
             f"duration > {args.cycles * args.interval_s}s")

    workdir = pathlib.Path(args.workdir or tempfile.mkdtemp(prefix="hh_soak_"))
    workdir.mkdir(parents=True, exist_ok=True)
    ref_dir = workdir / "reference"
    soak_dir = workdir / "soak"
    for d in (ref_dir, soak_dir):
        shutil.rmtree(d, ignore_errors=True)
        d.mkdir(parents=True)

    base = [args.binary,
            "--seed", str(args.seed),
            "--validators", str(args.validators),
            "--duration-s", str(args.duration_s),
            "--interval-s", str(args.interval_s),
            "--load", str(args.load)]
    if args.adversary != "none":
        base += ["--adversary", args.adversary]

    # ---- straight-through reference (never killed) ----
    proc = run(base + ["--dir", str(ref_dir)])
    if proc.returncode != 0:
        fail(f"reference run failed rc={proc.returncode}\n{proc.stderr}")
    reference = read_json(ref_dir / "final.json")
    print(f"soak: reference trace_hash={reference['trace_hash']} "
          f"committed={reference['committed']}")
    if reference["conflicting_certs"] != 0:
        fail("reference run saw conflicting certificates")

    # ---- kill/resume cycles ----
    prev_index = -1
    prev_committed = 0
    for cycle in range(args.cycles):
        # Die right after the first checkpoint this cycle adds (index
        # resumes at prev+1), so every cycle both makes progress and gets
        # killed mid-run.
        kill_after = prev_index + 1
        proc = run(base + ["--dir", str(soak_dir), "--resume",
                           "--kill-after", str(kill_after)])
        if proc.returncode != -signal.SIGKILL:
            fail(f"cycle {cycle}: expected SIGKILL death, rc="
                 f"{proc.returncode}\n{proc.stdout}{proc.stderr}")
        side = latest_sidecar(soak_dir)
        if side is None:
            fail(f"cycle {cycle}: no checkpoint sidecar after kill")
        print(f"soak: cycle {cycle} killed after ckpt {side['index']} "
              f"(t_us={side['cut_time_us']}, committed={side['committed']})")
        if side["index"] <= prev_index:
            fail(f"cycle {cycle}: checkpoint index did not advance "
                 f"({prev_index} -> {side['index']})")
        if side["committed"] < prev_committed:
            fail(f"cycle {cycle}: committed regressed "
                 f"({prev_committed} -> {side['committed']})")
        if side["conflicting_certs"] != 0:
            fail(f"cycle {cycle}: conflicting_certs = "
                 f"{side['conflicting_certs']}")
        prev_index = side["index"]
        prev_committed = side["committed"]

    # ---- final resume to completion ----
    proc = run(base + ["--dir", str(soak_dir), "--resume"])
    if proc.returncode != 0:
        fail(f"final resume failed rc={proc.returncode}\n"
             f"{proc.stdout}{proc.stderr}")
    final = read_json(soak_dir / "final.json")
    print(f"soak: final trace_hash={final['trace_hash']} "
          f"committed={final['committed']} "
          f"resumed_from={final['resumed_from']}")

    if final["resumed_from"] != prev_index:
        fail(f"final run resumed from {final['resumed_from']}, "
             f"expected {prev_index}")
    if final["conflicting_certs"] != 0:
        fail(f"final conflicting_certs = {final['conflicting_certs']}")
    if final["trace_hash"] != reference["trace_hash"]:
        fail(f"trace hash diverged: {final['trace_hash']} != "
             f"{reference['trace_hash']}")
    for key in ("submitted", "committed", "committed_anchors", "sim_events"):
        if final[key] != reference[key]:
            fail(f"{key} diverged: {final[key]} != {reference[key]}")

    print(f"soak: PASS — {args.cycles} SIGKILL/resume cycles, "
          f"final state identical to the unkilled reference")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""CI bench-regression gate.

Diffs freshly produced BENCH_*.json files against the committed baselines in
bench/results/ and fails (exit 1) when a gated metric regressed:

  * throughput (throughput_tps / throughput_mean): drops by more than
    --threshold (default 25%).
  * p95 latency per sweep group (p95_mean): ONLY where the baseline row
    carries cross-seed stddev context (p95_stddev — the sweep driver's
    aggregate rows). Trips when the increase exceeds
    max(--threshold x baseline, 3 x baseline stddev), so noisy groups gate
    at 3 sigma and tight groups at the percentage floor. Rows without
    stddev context (per-cell p95_latency_s) stay advisory.

Everything else — counters, wall-clock gauges — is advisory: printed, never
gating.

Formats understood:
  * harness format (bench/bench_json.h, harness/sweep.cpp):
      {"bench": <name>, "rows": [{"label": ..., "metrics": {...}}, ...]}
  * google-benchmark --benchmark_out files ("context"/"benchmarks"): listed
    as advisory only; their wall-clock timings are too machine-dependent to
    gate.

Rows are matched by (label, occurrence index) — benches legitimately repeat a
label across load points. A row only gates when its run context matches the
baseline's (the duration_s metric, i.e. quick vs full mode); mismatched
context is reported and skipped so a settings change cannot masquerade as a
perf change.

Usage:
  tools/bench_compare.py --baseline-dir bench/results --current-dir .
  tools/bench_compare.py --self-test   # prove the gate trips and passes
"""

import argparse
import glob
import json
import os
import sys

# Metrics that gate the job: simulated-time throughput (deterministic given
# the seed, so machine-independent). Higher is better.
GATED_METRICS = ("throughput_tps", "throughput_mean")
# Latency metrics gated only with stddev context: (metric, stddev key).
# Higher is worse; trips beyond max(threshold * base, 3 * stddev). The
# figure benches' per-row p95_latency_s is listed too: it gates only when a
# baseline row carries p95_stddev (sweep aggregates do; single-seed figure
# rows stay advisory). Arming a figure row is therefore a baseline-side
# decision: bank the row WITH a measured cross-seed p95_stddev. The
# long-horizon wide_n1000_long row in BENCH_fig1_faultless.json is armed
# this way (stddev measured over seeds 2024-2026; the nightly bench emits
# the seed-2024 row) — its steady-state p95 at n=1000 is the scale-target
# latency claim, so regressions there must gate, not advise.
GATED_LATENCY_METRICS = (("p95_mean", "p95_stddev"),
                         ("p95_latency_s", "p95_stddev"),
                         # Adversary sweep "adv/<name>" rows: the worst p95
                         # any grid cell suffered under that adversary, with
                         # cross-cell stddev as the variance context.
                         ("worst_p95_latency_s", "worst_p95_stddev"))
# Commit-count metrics gated only with stddev context, mirroring the latency
# rule with the sign flipped: lower is worse, trips when the count drops
# beyond max(threshold * base, 3 * stddev).
GATED_COUNT_METRICS = (("committed_anchors_mean", "committed_anchors_stddev"),)
# Memory metrics: deterministic logical sizes (not wall-dependent), so they
# gate unconditionally where present. Higher is worse; trips when growth
# exceeds the threshold fraction.
GATED_MEMORY_METRICS = ("dag_bytes_per_vertex",)
# Thread-scaling metrics: speedup of a parallel structure over its serial /
# guarded baseline, measured on the same machine within one run (so the
# ratio is machine-comparable even though the wall times are not). Higher is
# better; trips like throughput. A row is SKIPPED — not gated — when its
# thread count exceeds the host's cores (recorded per row as host_cores):
# a 1-core runner cannot demonstrate parallel speedup, and gating its wall
# times would make the job flap with runner hardware.
GATED_SPEEDUP_METRICS = ("speedup_vs_guarded", "speedup_vs_serial",
                         "speedup_vs_scalar")
# Hash-kernel throughput (host wall-clock MB/s of the SHA-256 pipeline).
# Gated like throughput, but ONLY when the row's recorded host_sha dispatch
# capability (0 scalar, 1 AVX2, 2 SHA-NI) matches the baseline's: a
# scalar-only runner cannot reproduce SHA-NI numbers, and an NI-capable
# runner would sail past a scalar baseline — neither delta is a regression.
# speedup_vs_scalar rows (within-run, machine-comparable) carry the same
# capability skip: the ratio is only meaningful for the same kernel.
GATED_HASH_METRICS = ("hash_mb_s",)
SHA_CAPABILITY_KEY = "host_sha"
# Per-row keys naming the row's thread count, in precedence order.
THREAD_COUNT_KEYS = ("threads", "intra_jobs", "jobs")
# Context keys: rows gate only when these match between baseline and current.
CONTEXT_METRICS = ("duration_s", "offered_load_tps")


def row_threads(metrics):
    for key in THREAD_COUNT_KEYS:
        if key in metrics:
            return metrics[key]
    return 1.0


def speedup_measurable(metrics):
    """True when the row's machine had enough cores to run its threads in
    parallel. Rows without host_cores context predate the recording and are
    treated as measurable (the old behaviour)."""
    cores = metrics.get("host_cores", 0)
    return cores <= 0 or row_threads(metrics) <= cores


def sha_capability_matches(base, cur):
    """True when both rows were produced at the same SHA dispatch capability
    (or either predates the recording — the old, always-gate behaviour)."""
    if SHA_CAPABILITY_KEY not in base or SHA_CAPABILITY_KEY not in cur:
        return True
    return base[SHA_CAPABILITY_KEY] == cur[SHA_CAPABILITY_KEY]


def load_rows(path):
    """Return (kind, rows) where rows is a list of (label, metrics) pairs."""
    with open(path) as f:
        data = json.load(f)
    if "rows" in data:
        return "harness", [(r["label"], r.get("metrics", {})) for r in data["rows"]]
    if "benchmarks" in data:
        rows = []
        for b in data["benchmarks"]:
            metrics = {
                k: v for k, v in b.items() if isinstance(v, (int, float))
            }
            rows.append((b.get("name", "?"), metrics))
        return "gbench", rows
    return "unknown", []


def indexed(rows):
    """Key rows by (label, occurrence index) so repeated labels pair up."""
    seen, out = {}, {}
    for label, metrics in rows:
        n = seen.get(label, 0)
        seen[label] = n + 1
        out[(label, n)] = metrics
    return out


def context_matches(base, cur):
    for key in CONTEXT_METRICS:
        if key in base and key in cur and base[key] != cur[key]:
            return False
    return True


def compare_file(name, base_path, cur_path, threshold, report):
    base_kind, base_rows = load_rows(base_path)
    cur_kind, cur_rows = load_rows(cur_path)
    if base_kind != "harness" or cur_kind != "harness":
        report.append(f"  [advisory] {name}: {cur_kind} format, not gated")
        return []

    base_map, cur_map = indexed(base_rows), indexed(cur_rows)
    regressions = []
    for key in sorted(set(base_map) & set(cur_map)):
        base_m, cur_m = base_map[key], cur_map[key]
        label = f"{name}:{key[0]}" + (f"#{key[1]}" if key[1] else "")
        if not context_matches(base_m, cur_m):
            report.append(f"  [skip] {label}: run context differs "
                          f"(regenerate the baseline)")
            continue
        for metric in GATED_METRICS:
            if metric not in base_m or metric not in cur_m:
                continue
            base_v, cur_v = base_m[metric], cur_m[metric]
            if base_v <= 0:
                continue
            delta = (cur_v - base_v) / base_v
            line = f"{label} {metric}: {base_v:.1f} -> {cur_v:.1f} ({delta:+.1%})"
            if cur_v < base_v * (1.0 - threshold):
                regressions.append("  [FAIL] " + line)
            else:
                report.append("  [ok]   " + line)
        for metric, stddev_key in GATED_LATENCY_METRICS:
            if metric not in base_m or metric not in cur_m:
                continue
            base_v, cur_v = base_m[metric], cur_m[metric]
            if base_v <= 0:
                continue
            if stddev_key not in base_m:
                report.append(f"  [advisory] {label} {metric}: no "
                              f"{stddev_key} context, not gated")
                continue
            stddev = base_m[stddev_key]
            allowance = max(threshold * base_v, 3.0 * stddev)
            delta = cur_v - base_v
            line = (f"{label} {metric}: {base_v:.3f} -> {cur_v:.3f} s "
                    f"(+{delta:.3f}, allowance {allowance:.3f} = "
                    f"max({threshold:.0%}, 3x{stddev:.3f}))")
            if delta > allowance:
                regressions.append("  [FAIL] " + line)
            else:
                report.append("  [ok]   " + line)
        for metric, stddev_key in GATED_COUNT_METRICS:
            if metric not in base_m or metric not in cur_m:
                continue
            base_v, cur_v = base_m[metric], cur_m[metric]
            if base_v <= 0:
                continue
            if stddev_key not in base_m:
                report.append(f"  [advisory] {label} {metric}: no "
                              f"{stddev_key} context, not gated")
                continue
            stddev = base_m[stddev_key]
            allowance = max(threshold * base_v, 3.0 * stddev)
            drop = base_v - cur_v
            line = (f"{label} {metric}: {base_v:.1f} -> {cur_v:.1f} "
                    f"(-{drop:.1f}, allowance {allowance:.1f} = "
                    f"max({threshold:.0%}, 3x{stddev:.1f}))")
            if drop > allowance:
                regressions.append("  [FAIL] " + line)
            else:
                report.append("  [ok]   " + line)
        for metric in GATED_MEMORY_METRICS:
            if metric not in base_m or metric not in cur_m:
                continue
            base_v, cur_v = base_m[metric], cur_m[metric]
            if base_v <= 0:
                continue
            delta = (cur_v - base_v) / base_v
            line = (f"{label} {metric}: {base_v:.1f} -> {cur_v:.1f} B/vertex "
                    f"({delta:+.1%})")
            if cur_v > base_v * (1.0 + threshold):
                regressions.append("  [FAIL] " + line)
            else:
                report.append("  [ok]   " + line)
        for metric in GATED_HASH_METRICS:
            if metric not in base_m or metric not in cur_m:
                continue
            base_v, cur_v = base_m[metric], cur_m[metric]
            if base_v <= 0:
                continue
            if not sha_capability_matches(base_m, cur_m):
                report.append(
                    f"  [skip] {label} {metric}: host_sha "
                    f"{cur_m.get(SHA_CAPABILITY_KEY, 0):.0f} != baseline "
                    f"{base_m.get(SHA_CAPABILITY_KEY, 0):.0f}, kernel not "
                    f"reproducible on this host")
                continue
            delta = (cur_v - base_v) / base_v
            line = (f"{label} {metric}: {base_v:.1f} -> {cur_v:.1f} MB/s "
                    f"({delta:+.1%})")
            if cur_v < base_v * (1.0 - threshold):
                regressions.append("  [FAIL] " + line)
            else:
                report.append("  [ok]   " + line)
        for metric in GATED_SPEEDUP_METRICS:
            if metric not in base_m or metric not in cur_m:
                continue
            base_v, cur_v = base_m[metric], cur_m[metric]
            if base_v <= 0:
                continue
            if not (speedup_measurable(base_m) and speedup_measurable(cur_m)):
                report.append(
                    f"  [skip] {label} {metric}: {row_threads(cur_m):.0f} "
                    f"thread(s) > {cur_m.get('host_cores', 0):.0f} core(s), "
                    f"parallel speedup not measurable on this host")
                continue
            if (metric == "speedup_vs_scalar"
                    and not sha_capability_matches(base_m, cur_m)):
                report.append(
                    f"  [skip] {label} {metric}: host_sha "
                    f"{cur_m.get(SHA_CAPABILITY_KEY, 0):.0f} != baseline "
                    f"{base_m.get(SHA_CAPABILITY_KEY, 0):.0f}, kernel not "
                    f"reproducible on this host")
                continue
            delta = (cur_v - base_v) / base_v
            line = (f"{label} {metric}: {base_v:.2f}x -> {cur_v:.2f}x "
                    f"({delta:+.1%})")
            if cur_v < base_v * (1.0 - threshold):
                regressions.append("  [FAIL] " + line)
            else:
                report.append("  [ok]   " + line)
    only_base = set(base_map) - set(cur_map)
    only_cur = set(cur_map) - set(base_map)
    if only_base:
        report.append(f"  [advisory] {name}: {len(only_base)} baseline row(s) "
                      f"missing from current run")
    if only_cur:
        report.append(f"  [advisory] {name}: {len(only_cur)} new row(s) "
                      f"without a baseline")
    return regressions


def run_compare(baseline_dir, current_dir, threshold):
    current_files = sorted(glob.glob(os.path.join(current_dir, "BENCH_*.json")))
    if not current_files:
        print(f"no BENCH_*.json under {current_dir}", file=sys.stderr)
        return 2
    regressions, report, compared = [], [], 0
    for cur_path in current_files:
        name = os.path.basename(cur_path)
        base_path = os.path.join(baseline_dir, name)
        if not os.path.exists(base_path):
            report.append(f"  [advisory] {name}: no committed baseline")
            continue
        compared += 1
        regressions += compare_file(name, base_path, cur_path, threshold, report)

    print(f"bench_compare: {compared} file(s) with baselines, "
          f"threshold {threshold:.0%}")
    for line in report:
        print(line)
    if regressions:
        print(f"\n{len(regressions)} gating regression(s) "
              f"(throughput beyond {threshold:.0%}, or p95 beyond "
              f"max({threshold:.0%}, 3 sigma)):")
        for line in regressions:
            print(line)
        return 1
    print("\nno gating regressions")
    return 0


def self_test(threshold):
    """Prove the gate passes on identical data, trips on an injected
    throughput regression just past the threshold (and not on one just
    inside it), and applies the max(threshold, 3 sigma) rule to p95."""
    import tempfile

    payload = {
        "bench": "selftest",
        "rows": [
            {"label": "cell", "metrics": {"throughput_tps": 1000.0,
                                          "duration_s": 8, "p95_latency_s": 2.0}},
            {"label": "cell", "metrics": {"throughput_tps": 800.0,
                                          "duration_s": 8}},
            {"label": "agg/cell", "metrics": {"throughput_mean": 900.0}},
        ],
    }

    def scaled(factor):
        out = json.loads(json.dumps(payload))
        for row in out["rows"]:
            for key in GATED_METRICS:
                if key in row["metrics"]:
                    row["metrics"][key] *= factor
        return out

    def compare_payloads(desc, base_payload, cur_payload, expected):
        with tempfile.TemporaryDirectory() as tmp:
            base_dir = os.path.join(tmp, "base")
            cur_dir = os.path.join(tmp, "cur")
            os.makedirs(base_dir)
            os.makedirs(cur_dir)
            with open(os.path.join(base_dir, "BENCH_selftest.json"), "w") as f:
                json.dump(base_payload, f)
            with open(os.path.join(cur_dir, "BENCH_selftest.json"), "w") as f:
                json.dump(cur_payload, f)
            print(f"--- self-test: {desc} ---")
            got = run_compare(base_dir, cur_dir, threshold)
            if got != expected:
                print(f"SELF-TEST FAILURE: {desc}: exit {got}, "
                      f"expected {expected}", file=sys.stderr)
                return 1
            return 0

    failures = 0
    for desc, factor, expected in [
        ("baseline vs itself", 1.0, 0),
        ("regression inside threshold", 1.0 - threshold + 0.05, 0),
        ("regression beyond threshold", 1.0 - threshold - 0.05, 1),
        ("improvement", 1.3, 0),
    ]:
        failures += compare_payloads(f"{desc} (x{factor:.2f})", payload,
                                     scaled(factor), expected)

    # p95 gating: trips beyond max(threshold * base, 3 sigma), passes inside
    # either floor, and stays advisory without stddev context.
    def p95_payload(mean, stddev):
        metrics = {"throughput_mean": 900.0, "p95_mean": mean}
        if stddev is not None:
            metrics["p95_stddev"] = stddev
        return {"bench": "selftest",
                "rows": [{"label": "agg/cell", "metrics": metrics}]}

    base_p95 = 2.0
    floor = threshold * base_p95  # the percentage-floor allowance
    tight = floor / 6.0           # 3 sigma = floor/2: percentage dominates
    wide = floor / 2.0            # 3 sigma = 1.5 x floor: sigma dominates
    for desc, base_stddev, cur_mean, expected in [
        ("p95 inside percentage floor", tight, base_p95 + 0.5 * floor, 0),
        ("p95 beyond floor with tight stddev", tight,
         base_p95 + 1.2 * floor, 1),
        ("p95 beyond threshold but inside 3 sigma", wide,
         base_p95 + 1.2 * floor, 0),
        ("p95 beyond 3 sigma", wide, base_p95 + 1.7 * floor, 1),
        ("p95 without stddev context stays advisory", None,
         base_p95 + 3.0 * floor, 0),
    ]:
        failures += compare_payloads(
            desc, p95_payload(base_p95, base_stddev),
            p95_payload(cur_mean, base_stddev), expected)

    # Figure-bench per-row p95_latency_s: gates only when the baseline row
    # carries stddev context, stays advisory otherwise.
    def fig_p95_payload(p95, stddev):
        metrics = {"throughput_tps": 1000.0, "duration_s": 8,
                   "p95_latency_s": p95}
        if stddev is not None:
            metrics["p95_stddev"] = stddev
        return {"bench": "selftest",
                "rows": [{"label": "fig", "metrics": metrics}]}

    for desc, base_stddev, cur_p95, expected in [
        ("figure p95 with context, beyond allowance", tight,
         base_p95 + 1.2 * floor, 1),
        ("figure p95 with context, inside allowance", tight,
         base_p95 + 0.5 * floor, 0),
        ("figure p95 without context stays advisory", None,
         base_p95 + 3.0 * floor, 0),
    ]:
        failures += compare_payloads(
            desc, fig_p95_payload(base_p95, base_stddev),
            fig_p95_payload(cur_p95, base_stddev), expected)

    # Adversary worst-case rows: same latency rule over adv/<name> rows
    # (worst_p95_latency_s gated with worst_p95_stddev context).
    def adv_payload(worst, stddev):
        metrics = {"runs": 12.0, "worst_p95_latency_s": worst,
                   "conflicting_certs": 0.0}
        if stddev is not None:
            metrics["worst_p95_stddev"] = stddev
        return {"bench": "selftest",
                "rows": [{"label": "adv/delay", "metrics": metrics}]}

    for desc, base_stddev, cur_worst, expected in [
        ("adversary worst p95 beyond allowance", tight,
         base_p95 + 1.2 * floor, 1),
        ("adversary worst p95 inside allowance", tight,
         base_p95 + 0.5 * floor, 0),
        ("adversary worst p95 without context stays advisory", None,
         base_p95 + 3.0 * floor, 0),
    ]:
        failures += compare_payloads(
            desc, adv_payload(base_p95, base_stddev),
            adv_payload(cur_worst, base_stddev), expected)

    # Commit counts: lower is worse, same max(threshold, 3 sigma) rule,
    # advisory without stddev context.
    def anchors_payload(mean, stddev):
        metrics = {"committed_anchors_mean": mean}
        if stddev is not None:
            metrics["committed_anchors_stddev"] = stddev
        return {"bench": "selftest",
                "rows": [{"label": "agg/cell", "metrics": metrics}]}

    base_anchors = 40.0
    a_floor = threshold * base_anchors
    a_tight = a_floor / 6.0
    a_wide = a_floor / 2.0
    for desc, base_stddev, cur_mean, expected in [
        ("anchors inside percentage floor", a_tight,
         base_anchors - 0.5 * a_floor, 0),
        ("anchors beyond floor with tight stddev", a_tight,
         base_anchors - 1.2 * a_floor, 1),
        ("anchors beyond threshold but inside 3 sigma", a_wide,
         base_anchors - 1.2 * a_floor, 0),
        ("anchors beyond 3 sigma", a_wide, base_anchors - 1.7 * a_floor, 1),
        ("anchors INCREASE never trips", a_tight,
         base_anchors + 2.0 * a_floor, 0),
        ("anchors without stddev context stays advisory", None,
         base_anchors - 3.0 * a_floor, 0),
    ]:
        failures += compare_payloads(
            desc, anchors_payload(base_anchors, base_stddev),
            anchors_payload(cur_mean, base_stddev), expected)

    # Thread-scaling speedups: gate like throughput when the host had the
    # cores to run the row's threads in parallel; skip (never trip) when the
    # row oversubscribes the host, and treat rows without host_cores context
    # as measurable.
    def speedup_payload(speedup, threads, cores):
        metrics = {"threads": threads, "speedup_vs_guarded": speedup}
        if cores is not None:
            metrics["host_cores"] = cores
        return {"bench": "selftest",
                "rows": [{"label": f"resolve_t{threads}",
                          "metrics": metrics}]}

    base_speedup = 3.0
    for desc, threads, cores, cur_speedup, expected in [
        ("speedup regression within cores trips", 4, 8,
         base_speedup * (1.0 - threshold - 0.05), 1),
        ("speedup inside threshold passes", 4, 8,
         base_speedup * (1.0 - threshold + 0.05), 0),
        ("speedup regression with threads > cores skipped", 8, 1,
         base_speedup * 0.1, 0),
        ("speedup regression without cores context trips", 4, None,
         base_speedup * (1.0 - threshold - 0.05), 1),
    ]:
        failures += compare_payloads(
            desc, speedup_payload(base_speedup, threads, cores),
            speedup_payload(cur_speedup, threads, cores), expected)

    # Hash-kernel throughput: gates like throughput when the recorded
    # host_sha capability matches the baseline's, skips (never trips) when
    # it differs, and gates rows that predate the capability recording.
    def hash_payload(mbs, host_sha):
        metrics = {"hash_mb_s": mbs}
        if host_sha is not None:
            metrics["host_sha"] = host_sha
        return {"bench": "selftest",
                "rows": [{"label": "sha256_4KiB", "metrics": metrics}]}

    base_mbs = 800.0
    for desc, base_sha, cur_sha, cur_mbs, expected in [
        ("hash regression with matching capability trips", 2, 2,
         base_mbs * (1.0 - threshold - 0.05), 1),
        ("hash regression inside threshold passes", 2, 2,
         base_mbs * (1.0 - threshold + 0.05), 0),
        ("hash regression with differing capability skipped", 2, 0,
         base_mbs * 0.1, 0),
        ("hash regression without capability context trips", None, None,
         base_mbs * (1.0 - threshold - 0.05), 1),
    ]:
        failures += compare_payloads(
            desc, hash_payload(base_mbs, base_sha),
            hash_payload(cur_mbs, cur_sha), expected)

    # speedup_vs_scalar rides the speedup gate plus the capability skip (the
    # within-run ratio is only meaningful for the same kernel).
    def kernel_speedup_payload(speedup, host_sha):
        return {"bench": "selftest",
                "rows": [{"label": "sha256_64B_sha_ni",
                          "metrics": {"speedup_vs_scalar": speedup,
                                      "host_sha": host_sha}}]}

    base_kspeed = 5.0
    for desc, base_sha, cur_sha, cur_speed, expected in [
        ("kernel speedup regression trips", 2, 2,
         base_kspeed * (1.0 - threshold - 0.05), 1),
        ("kernel speedup inside threshold passes", 2, 2,
         base_kspeed * (1.0 - threshold + 0.05), 0),
        ("kernel speedup with differing capability skipped", 2, 1,
         base_kspeed * 0.1, 0),
    ]:
        failures += compare_payloads(
            desc, kernel_speedup_payload(base_kspeed, base_sha),
            kernel_speedup_payload(cur_speed, cur_sha), expected)

    # Memory gauge: deterministic, gates without stddev context; growth
    # beyond the threshold trips, shrinkage never does.
    def bytes_payload(bpv):
        return {"bench": "selftest",
                "rows": [{"label": "cell",
                          "metrics": {"dag_bytes_per_vertex": bpv}}]}

    base_bpv = 2000.0
    for desc, cur_bpv, expected in [
        ("bytes_per_vertex growth inside threshold",
         base_bpv * (1.0 + threshold - 0.05), 0),
        ("bytes_per_vertex growth beyond threshold",
         base_bpv * (1.0 + threshold + 0.05), 1),
        ("bytes_per_vertex shrinkage passes", base_bpv * 0.5, 0),
    ]:
        failures += compare_payloads(desc, bytes_payload(base_bpv),
                                     bytes_payload(cur_bpv), expected)

    if failures:
        return 1
    print("self-test OK: gate trips beyond thresholds, passes otherwise")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline-dir", default="bench/results")
    parser.add_argument("--current-dir", default=".")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="fractional throughput drop that fails the job")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the gate logic and exit")
    args = parser.parse_args()
    if args.self_test:
        sys.exit(self_test(args.threshold))
    sys.exit(run_compare(args.baseline_dir, args.current_dir, args.threshold))


if __name__ == "__main__":
    main()

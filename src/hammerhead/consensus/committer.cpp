#include "hammerhead/consensus/committer.h"

#include <algorithm>

#include "hammerhead/common/logging.h"

namespace hammerhead::consensus {

BullsharkCommitter::BullsharkCommitter(const crypto::Committee& committee,
                                       dag::Dag& dag,
                                       core::LeaderSchedulePolicy& policy,
                                       CommitFn on_commit, CommitRule rule,
                                       ClockFn clock, TriggerScan scan)
    : committee_(committee),
      dag_(dag),
      policy_(policy),
      on_commit_(std::move(on_commit)),
      rule_(rule),
      clock_(std::move(clock)),
      // Without an index there are no crossing events to consume.
      scan_(dag.index().enabled() ? scan : TriggerScan::Rescan) {}

void BullsharkCommitter::on_cert_inserted(const dag::CertPtr& cert) {
  if (scan_ == TriggerScan::Indexed && rule_ == CommitRule::DirectSupport) {
    // Event-driven gate: a new direct commit requires either a support
    // threshold crossing (reported by the index) or an anchor certificate
    // arriving after its support already crossed.
    const std::uint64_t crossings = dag_.index().crossings();
    const bool crossed = crossings != seen_crossings_;
    seen_crossings_ = crossings;
    if (!crossed) {
      if (static_cast<std::int64_t>(cert->round()) <= last_anchor_round_)
        return;
      if (cert->round() % 2 != 0) return;
      if (policy_.leader(cert->round()) != cert->author()) return;
      if (!dag_.index().round_supported(cert->round())) return;
    }
    process();
    return;
  }
  // Rescan mode (and PaperTrigger, whose a+2 evidence the support index
  // does not observe): only vertices at rounds above the last committed
  // anchor can change the trigger state.
  if (static_cast<std::int64_t>(cert->round()) <= last_anchor_round_) return;
  // Gate the scan (hot path at 100 validators): under DirectSupport a new
  // direct commit can only appear when a vote arrives (odd-round cert) or
  // when an anchor certificate itself shows up late.
  if (rule_ == CommitRule::DirectSupport && cert->round() % 2 == 0 &&
      policy_.leader(cert->round()) != cert->author())
    return;
  process();
}

bool BullsharkCommitter::triggered(dag::VertexId anchor) const {
  switch (rule_) {
    case CommitRule::DirectSupport:
      return (scan_ == TriggerScan::Indexed
                  ? dag_.direct_support(anchor)
                  : dag_.direct_support_scan(*dag_.cert_of(anchor))) >=
             committee_.validity_threshold();
    case CommitRule::PaperTrigger: {
      // Algorithm 2, TryCommitting(v): v at round a+2; votes are v's parents
      // (round a+1); commit if the stake of parents with a path (i.e. a
      // direct edge) to the anchor reaches f+1. Pure handle walk: v's
      // resolved parents, then each parent's resolved parents.
      const Round anchor_round = dag_.round_of(anchor);
      if (dag_.round_size(anchor_round + 2) == 0) return false;  // no votes
      // One pass over round a+1: which slots list the anchor as a parent.
      // Memoized by author so the per-vote check below is O(1) instead of a
      // scan of each parent's handle list for every vote sharing it.
      std::vector<bool> votes(committee_.size(), false);
      for (ValidatorIndex a = 0; a < committee_.size(); ++a) {
        const auto ps = dag_.parents_of(dag_.id_of(anchor_round + 1, a));
        votes[a] = std::find(ps.begin(), ps.end(), anchor) != ps.end();
      }
      for (ValidatorIndex a = 0; a < committee_.size(); ++a) {
        const dag::VertexId v = dag_.id_of(anchor_round + 2, a);
        if (v == dag::kInvalidVertex) continue;
        Stake support = 0;
        for (const dag::VertexId pid : dag_.parents_of(v)) {
          // Protocol-valid parents sit at round a+1 (memoized); anything
          // else (forged non-adjacent references) is checked directly.
          bool voted;
          if (dag_.round_of(pid) == anchor_round + 1) {
            voted = votes[dag_.author_of(pid)];
          } else {
            const auto gp = dag_.parents_of(pid);
            voted = std::find(gp.begin(), gp.end(), anchor) != gp.end();
          }
          if (voted) support += committee_.stake_of(dag_.author_of(pid));
        }
        if (support >= committee_.validity_threshold()) return true;
      }
      return false;
    }
  }
  return false;
}

void BullsharkCommitter::process() {
  const auto max_round = dag_.max_round();
  if (!max_round) return;
  if (scan_ == TriggerScan::Indexed)
    seen_crossings_ = dag_.index().crossings();

  // Whether or not a schedule change interrupts a chain, rescan while
  // progress is made: either the schedule moved or last_anchor_round_ did.
  while (scan_once(*max_round)) {
  }
}

bool BullsharkCommitter::scan_once(Round max_round) {
  if (scan_ == TriggerScan::Indexed) {
    // Only rounds with a support crossing can hold a directly committed
    // anchor — under DirectSupport by definition, and under PaperTrigger
    // because its f+1 supporting parents are themselves round a+1 votes.
    const auto& candidates = dag_.index().supported_rounds();
    const Round start = static_cast<Round>(
        std::max<std::int64_t>(0, last_anchor_round_ + 2));
    for (auto it = candidates.lower_bound(start); it != candidates.end();
         ++it) {
      const Round round = *it;
      if (round % 2 != 0) continue;  // anchors live at even rounds
      if (round + 1 > max_round) break;
      const dag::VertexId anchor = dag_.id_of(round, policy_.leader(round));
      if (anchor == dag::kInvalidVertex || !triggered(anchor)) continue;
      commit_chain(anchor);
      return true;
    }
    return false;
  }

  // Rescan mode: walk every anchor round above the last committed one.
  for (std::int64_t a = last_anchor_round_ + 2;
       a + 1 <= static_cast<std::int64_t>(max_round); a += 2) {
    const Round round = static_cast<Round>(a);
    const dag::VertexId anchor = dag_.id_of(round, policy_.leader(round));
    if (anchor == dag::kInvalidVertex || !triggered(anchor)) continue;
    commit_chain(anchor);
    return true;
  }
  return false;
}

bool BullsharkCommitter::reachable(dag::VertexId from,
                                   dag::VertexId to) const {
  return scan_ == TriggerScan::Indexed ? dag_.has_path(from, to)
                                       : dag_.has_path_scan(from, to);
}

bool BullsharkCommitter::commit_chain(dag::VertexId anchor) {
  // Walk back (Algorithm 2, orderAnchors): collect earlier anchors reachable
  // from the direct commit, newest first, then order oldest first. The walk
  // is handle-only — no certificate is touched until delivery.
  std::vector<dag::VertexId> chain;
  chain.push_back(anchor);
  dag::VertexId cur = anchor;
  for (std::int64_t r = static_cast<std::int64_t>(dag_.round_of(anchor)) - 2;
       r > last_anchor_round_; r -= 2) {
    const Round round = static_cast<Round>(r);
    const dag::VertexId prev = dag_.id_of(round, policy_.leader(round));
    if (prev != dag::kInvalidVertex && reachable(cur, prev)) {
      chain.push_back(prev);
      cur = prev;
    }
  }
  std::reverse(chain.begin(), chain.end());

  for (const dag::VertexId link : chain) {
    const Round link_round = dag_.round_of(link);
    // Schedule boundary (Algorithm 2, orderHistory lines 30-33): check
    // before ordering; on a change, drop the rest of the (now stale) chain
    // and let the caller re-evaluate under the new schedule.
    if (policy_.maybe_change_schedule(link_round)) {
      ++stats_.schedule_changes;
      HH_DEBUG("committer: schedule change at anchor round " << link_round);
      return true;
    }
    // Rounds between the previous anchor and this one had their anchors
    // skipped (not reachable / no support).
    for (std::int64_t r = last_anchor_round_ + 2;
         r < static_cast<std::int64_t>(link_round); r += 2) {
      const Round round = static_cast<Round>(r);
      policy_.on_anchor_skipped(round, policy_.leader(round));
      ++stats_.skipped_anchors;
    }
    if (order_anchor(link)) {
      ++stats_.schedule_changes;
      HH_DEBUG("committer: schedule change after anchor round " << link_round);
      return true;
    }
  }
  return false;
}

bool BullsharkCommitter::order_anchor(dag::VertexId anchor_id) {
  // Delivery boundary: materialize certificates only here.
  const dag::CertPtr anchor = dag_.cert_of(anchor_id);
  std::vector<dag::CertPtr> vertices = dag_.causal_history(
      anchor_id,
      [this](const dag::Certificate& c) { return !is_ordered(c.digest()); });
  // Deterministic delivery order within the sub-DAG (Algorithm 2 line 35:
  // "in some deterministic order").
  std::sort(vertices.begin(), vertices.end(),
            [](const dag::CertPtr& x, const dag::CertPtr& y) {
              if (x->round() != y->round()) return x->round() < y->round();
              return x->author() < y->author();
            });

  for (const dag::CertPtr& v : vertices) {
    policy_.on_vertex_ordered(dag_, *v);
    ordered_.insert(v->digest());
    ordered_by_round_[v->round()].push_back(v->digest());
  }
  stats_.ordered_vertices += vertices.size();

  last_anchor_round_ = static_cast<std::int64_t>(anchor->round());
  ++commit_index_;
  ++stats_.committed_anchors;
  const bool schedule_changed = policy_.on_anchor_committed(*anchor);

  CommittedSubDag subdag;
  subdag.anchor = anchor;
  subdag.vertices = std::move(vertices);
  subdag.commit_index = commit_index_;
  subdag.commit_time = clock_ ? clock_() : 0;
  if (on_commit_) on_commit_(subdag);
  return schedule_changed;
}

CommitterSnapshot BullsharkCommitter::snapshot(Round floor) const {
  CommitterSnapshot snap;
  snap.last_anchor_round = last_anchor_round_;
  snap.commit_index = commit_index_;
  for (const auto& [round, digests] : ordered_by_round_)
    if (round >= floor) snap.ordered_by_round.emplace_back(round, digests);
  return snap;
}

void BullsharkCommitter::install_snapshot(const CommitterSnapshot& snap) {
  HH_ASSERT_MSG(commit_index_ == 0 && ordered_.empty(),
                "snapshot install on a non-fresh committer");
  last_anchor_round_ = snap.last_anchor_round;
  commit_index_ = snap.commit_index;
  for (const auto& [round, digests] : snap.ordered_by_round) {
    for (const Digest& d : digests) {
      ordered_.insert(d);
      ordered_by_round_[round].push_back(d);
    }
  }
}

void BullsharkCommitter::prune_ordered_below(Round floor) {
  for (auto it = ordered_by_round_.begin();
       it != ordered_by_round_.end() && it->first < floor;
       it = ordered_by_round_.erase(it)) {
    for (const Digest& d : it->second) ordered_.erase(d);
  }
}

}  // namespace hammerhead::consensus

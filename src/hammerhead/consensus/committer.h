// Bullshark ordering (Algorithm 2 of the paper) with dynamic leader schedules.
//
// Anchors live at even rounds. An anchor is *directly committed* when it has
// enough support from the next round; earlier anchors reachable from it are
// committed transitively via the walk-back stack; everything else in between
// is skipped. Ordering an anchor delivers its not-yet-ordered causal history
// in a deterministic order (Byzantine Atomic Broadcast output).
//
// Schedule changes: right before ordering an anchor, the policy may declare a
// new epoch starting at that anchor's round (maybe_change_schedule). The
// committer then discards the pending walk-back chain and re-evaluates commit
// triggers from scratch under the new schedule — the paper's "retroactive
// schedule application". Because epoch boundaries are a deterministic function
// of the ordered prefix, every honest validator derives the same schedule
// sequence (Proposition 1) and hence the same total order.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_set>
#include <vector>

#include "hammerhead/core/policies.h"
#include "hammerhead/dag/dag.h"

namespace hammerhead::consensus {

/// Which rule detects a directly committed anchor.
enum class CommitRule {
  /// Production Bullshark/Sui: the anchor is supported by round a+1 vertices
  /// of cumulative stake >= f+1, counted across the whole local DAG.
  DirectSupport,
  /// Algorithm 2 verbatim: some single round a+2 vertex carries >= f+1 stake
  /// of parents that link to the anchor.
  PaperTrigger,
};

/// How the committer finds directly committed anchors.
enum class TriggerScan {
  /// Consume the DAG index's support-crossing events: re-evaluate only when
  /// a vertex's direct support crossed f+1 (or an anchor certificate arrived
  /// late), and only at rounds the index reports as trigger candidates.
  /// Structural queries go through the incremental index.
  Indexed,
  /// The original scan-on-query path: every insertion rescans all anchor
  /// rounds above the last commit with the scan-based DAG queries. Kept as
  /// the reference for the equivalence tests and benches.
  Rescan,
};

struct CommittedSubDag {
  dag::CertPtr anchor;
  /// The anchor's not-yet-ordered causal history, sorted by (round, author);
  /// includes the anchor itself (last at its round). Concatenating these
  /// vectors over commit_index yields the BAB total order.
  std::vector<dag::CertPtr> vertices;
  std::uint64_t commit_index = 0;
  SimTime commit_time = 0;
};

/// Serializable committer positioning for state sync: where the commit
/// sequence stands and which vertices at/above the horizon were already
/// delivered (so they are not re-delivered by later anchors).
struct CommitterSnapshot {
  std::int64_t last_anchor_round = -2;
  std::uint64_t commit_index = 0;
  std::vector<std::pair<Round, std::vector<Digest>>> ordered_by_round;
};

struct CommitterStats {
  std::uint64_t committed_anchors = 0;
  std::uint64_t skipped_anchors = 0;
  std::uint64_t ordered_vertices = 0;
  std::uint64_t schedule_changes = 0;
  /// Certified equivocations that reached this node's commit input: two
  /// certificates for one (round, author) slot with different digests.
  /// Safety gauge — vote uniqueness keeps this 0 while < n/3 stake is
  /// Byzantine, and the adversary tests assert exactly that.
  std::uint64_t conflicting_certs = 0;
};

class BullsharkCommitter {
 public:
  using CommitFn = std::function<void(const CommittedSubDag&)>;
  using ClockFn = std::function<SimTime()>;

  BullsharkCommitter(const crypto::Committee& committee, dag::Dag& dag,
                     core::LeaderSchedulePolicy& policy, CommitFn on_commit,
                     CommitRule rule = CommitRule::DirectSupport,
                     ClockFn clock = nullptr,
                     TriggerScan scan = TriggerScan::Indexed);

  /// Drive the commit machinery after a certificate entered the DAG.
  void on_cert_inserted(const dag::CertPtr& cert);

  /// Re-run the trigger scan unconditionally (used after recovery replay).
  void process();

  bool is_ordered(const Digest& digest) const {
    return ordered_.count(digest) > 0;
  }

  /// Round of the last committed anchor, or -2 before the first commit.
  std::int64_t last_anchor_round() const { return last_anchor_round_; }
  std::uint64_t commit_index() const { return commit_index_; }
  const CommitterStats& stats() const { return stats_; }

  /// Record a certified equivocation observed at the commit layer's input
  /// (called by the validator when DAG admission reports a Conflict).
  void note_conflicting_cert() { ++stats_.conflicting_certs; }

  /// Forget ordered-markers for rounds below `floor` (pairs with
  /// Dag::prune_below; only prune rounds well behind last_anchor_round()).
  void prune_ordered_below(Round floor);

  /// State sync: capture / install positioning (ordered markers restricted
  /// to rounds >= floor on capture).
  CommitterSnapshot snapshot(Round floor) const;
  void install_snapshot(const CommitterSnapshot& snap);

 private:
  /// True iff the anchor behind `anchor` (a resident handle) is directly
  /// committed under the configured rule.
  bool triggered(dag::VertexId anchor) const;

  /// Path query under the configured scan mode (index vs reference BFS).
  /// Both handles are resident anchors.
  bool reachable(dag::VertexId from, dag::VertexId to) const;

  /// One pass of the lowest-triggered-anchor search; returns true if an
  /// anchor was committed (the caller loops while progress is made).
  bool scan_once(Round max_round);

  /// Commit `anchor` and every earlier reachable anchor. The walk-back runs
  /// entirely over arena handles; certificates are materialized only at the
  /// delivery boundary. Returns true if a schedule change interrupted the
  /// chain (caller rescans).
  bool commit_chain(dag::VertexId anchor);

  /// Deliver one anchor's sub-DAG. Returns true if the policy began a new
  /// epoch effective from the next anchor round (commits cadence) — the
  /// caller must discard its pending chain and rescan.
  bool order_anchor(dag::VertexId anchor);

  const crypto::Committee& committee_;
  dag::Dag& dag_;
  core::LeaderSchedulePolicy& policy_;
  CommitFn on_commit_;
  CommitRule rule_;
  ClockFn clock_;
  TriggerScan scan_;
  /// Last index crossing count consumed; when unchanged, an insertion cannot
  /// have produced a new direct commit (Indexed + DirectSupport gate).
  std::uint64_t seen_crossings_ = 0;

  std::unordered_set<Digest> ordered_;
  std::map<Round, std::vector<Digest>> ordered_by_round_;  // for pruning
  std::int64_t last_anchor_round_ = -2;
  std::uint64_t commit_index_ = 0;
  CommitterStats stats_;
};

}  // namespace hammerhead::consensus

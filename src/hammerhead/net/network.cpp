#include "hammerhead/net/network.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "hammerhead/common/logging.h"

namespace hammerhead::net {

namespace {

/// Adapter so register_handler() users (tests, ad-hoc tools) ride the sink
/// fabric without implementing MsgSink themselves.
class FunctionSink final : public MsgSink {
 public:
  explicit FunctionSink(Network::Handler fn) : fn_(std::move(fn)) {}
  void deliver(ValidatorIndex from, const MessagePtr& msg) override {
    fn_(from, msg);
  }

 private:
  Network::Handler fn_;
};

}  // namespace

Network::Network(sim::Simulator& simulator,
                 std::unique_ptr<LatencyModel> latency, NetConfig config,
                 std::size_t num_nodes)
    : sim_(simulator),
      latency_(std::move(latency)),
      config_(config),
      sinks_(num_nodes, nullptr),
      owned_sinks_(num_nodes),
      crashed_(num_nodes, false),
      slowdown_(num_nodes, 1.0),
      egress_free_at_(num_nodes, 0),
      link_cut_(num_nodes * num_nodes, 0) {
  HH_ASSERT(latency_ != nullptr);
  // Pre-pool fanout records with committee-sized arrival capacity: the
  // first wide multicasts would otherwise grow the deque and reallocate
  // their arrival vectors mid-run (at n=1000 a flat record is ~24 KB of
  // arrivals — growth doubling churns hundreds of KB before steady state).
  // Visible in stats: fanouts_pooled starts at the pre-reserve count.
  constexpr std::size_t kPrepooledFanouts = 8;
  for (std::size_t i = 0; i < kPrepooledFanouts; ++i) {
    fanouts_.emplace_back();
    fanouts_.back().arrivals.reserve(num_nodes);
    free_fanouts_.push_back(static_cast<std::uint32_t>(i));
  }
  stats_.fanouts_pooled = kPrepooledFanouts;
}

void Network::register_sink(ValidatorIndex node, MsgSink* sink) {
  HH_ASSERT(node < sinks_.size());
  owned_sinks_[node].reset();
  sinks_[node] = sink;
}

void Network::register_handler(ValidatorIndex node, Handler handler) {
  HH_ASSERT(node < sinks_.size());
  owned_sinks_[node] = std::make_unique<FunctionSink>(std::move(handler));
  sinks_[node] = owned_sinks_[node].get();
}

bool Network::link_blocked(ValidatorIndex from, ValidatorIndex to) const {
  return links_cut_ != 0 && link_cut_[from * sinks_.size() + to] > 0;
}

void Network::adjust_cut(ValidatorIndex from, ValidatorIndex to, int delta) {
  if (from == to) return;
  std::uint16_t& count = link_cut_[from * sinks_.size() + to];
  if (delta > 0) {
    HH_ASSERT_MSG(count < std::numeric_limits<std::uint16_t>::max(),
                  "cut refcount overflow on link " << from << "->" << to);
    if (count++ == 0) ++links_cut_;
  } else {
    HH_ASSERT_MSG(count > 0, "restore of uncut link " << from << "->" << to);
    if (--count == 0) --links_cut_;
  }
}

void Network::cut_links(const std::vector<ValidatorIndex>& from_set,
                        const std::vector<ValidatorIndex>& to_set,
                        bool symmetric) {
  for (ValidatorIndex a : from_set) {
    HH_ASSERT(a < sinks_.size());
    for (ValidatorIndex b : to_set) {
      HH_ASSERT(b < sinks_.size());
      adjust_cut(a, b, +1);
      if (symmetric) adjust_cut(b, a, +1);
    }
  }
}

void Network::restore_links(const std::vector<ValidatorIndex>& from_set,
                            const std::vector<ValidatorIndex>& to_set,
                            bool symmetric) {
  for (ValidatorIndex a : from_set) {
    HH_ASSERT(a < sinks_.size());
    for (ValidatorIndex b : to_set) {
      HH_ASSERT(b < sinks_.size());
      adjust_cut(a, b, -1);
      if (symmetric) adjust_cut(b, a, -1);
    }
  }
  flush_unblocked_held();
}

void Network::set_link_delay(ValidatorIndex from, ValidatorIndex to,
                             SimTime extra) {
  HH_ASSERT(from < sinks_.size() && to < sinks_.size());
  if (link_delay_.empty()) {
    if (extra == 0) return;
    link_delay_.assign(sinks_.size() * sinks_.size(), 0);
  }
  SimTime& slot = link_delay_[from * sinks_.size() + to];
  if (slot == 0 && extra != 0) ++links_delayed_;
  if (slot != 0 && extra == 0) --links_delayed_;
  slot = extra;
}

void Network::clear_link_delays() {
  link_delay_.clear();
  links_delayed_ = 0;
}

SimTime Network::compute_arrival(ValidatorIndex from, ValidatorIndex to,
                                 std::size_t size) {
  const SimTime now = sim_.now();

  // Transmission delay: the sender's egress link is serialized.
  SimTime depart = now;
  if (!config_.unlimited_bandwidth) {
    const SimTime tx = static_cast<SimTime>(
        static_cast<double>(size) / config_.bandwidth_bytes_per_us);
    depart = std::max(now, egress_free_at_[from]) + tx;
    egress_free_at_[from] = depart;
  }

  // Propagation delay with slowdown factors on either endpoint.
  SimTime lat = latency_->sample(from, to, sim_.rng());
  const double factor = std::max(slowdown_[from], slowdown_[to]);
  lat = static_cast<SimTime>(static_cast<double>(lat) * factor);

  // Adaptive-delay adversary: per-link extra delay, applied before the
  // partial-synchrony cap below so it can stretch a link at most to the
  // bound, never past it.
  if (!link_delay_.empty()) lat += link_delay_[from * sinks_.size() + to];

  SimTime arrival = depart + lat;

  // Pre-GST adversarial scheduling, bounded by partial synchrony:
  // arrival <= max(GST, send_time) + delta.
  if (now < config_.gst && config_.max_adversarial_delay > 0) {
    arrival += static_cast<SimTime>(sim_.rng().next_below(
        static_cast<std::uint64_t>(config_.max_adversarial_delay)));
  }
  const SimTime bound = std::max(config_.gst, now) + config_.delta;
  arrival = std::min(arrival, bound);
  // Propagation can never be instant.
  arrival = std::max(arrival, now + 1);
  if (config_.delivery_slot > 1) {
    // Delivery slotting (sharded execution): round the arrival UP to the
    // slot grid so same-slot deliveries batch, re-capping at the partial-
    // synchrony bound so quantization can never violate it.
    const SimTime q = config_.delivery_slot;
    arrival = std::min(((arrival + q - 1) / q) * q,
                       std::max(bound, now + 1));
  }
  return arrival;
}

// ------------------------------------------------------------ fanout pool

std::uint32_t Network::acquire_fanout() {
  std::uint32_t idx;
  if (!free_fanouts_.empty()) {
    idx = free_fanouts_.back();
    free_fanouts_.pop_back();
    --stats_.fanouts_pooled;
  } else {
    fanouts_.emplace_back();
    idx = static_cast<std::uint32_t>(fanouts_.size() - 1);
  }
  ++stats_.fanouts_active;
  return idx;
}

void Network::release_fanout(std::uint32_t idx) {
  Fanout& f = fanouts_[idx];
  f.msg = nullptr;
  f.next = 0;
  f.arrivals.clear();  // keeps capacity for reuse
  if (f.tree != kNoTree) {
    const std::uint32_t tree = f.tree;
    f.tree = kNoTree;
    release_tree_ref(tree);
  }
  free_fanouts_.push_back(idx);
  --stats_.fanouts_active;
  ++stats_.fanouts_pooled;
}

std::uint32_t Network::acquire_tree() {
  std::uint32_t idx;
  if (!free_trees_.empty()) {
    idx = free_trees_.back();
    free_trees_.pop_back();
  } else {
    trees_.emplace_back();
    idx = static_cast<std::uint32_t>(trees_.size() - 1);
  }
  trees_[idx].refs = 0;
  return idx;
}

void Network::release_tree_ref(std::uint32_t idx) {
  TreeState& t = trees_[idx];
  HH_ASSERT(t.refs > 0);
  if (--t.refs > 0) return;
  t.msg = nullptr;
  t.order.clear();  // keeps capacity for reuse
  free_trees_.push_back(idx);
}

void Network::schedule_group(std::uint32_t idx) {
  Fanout& f = fanouts_[idx];
  const SimTime t = f.arrivals[f.next].time;
  std::uint32_t j = f.next;
  while (j < f.arrivals.size() && f.arrivals[j].time == t) ++j;
  for (std::uint32_t ai = f.next; ai < j; ++ai) {
    const Arrival& a = f.arrivals[ai];
    sim_.schedule_raw_keyed(a.time, a.seq, &Network::fanout_trampoline, this,
                            (static_cast<std::uint64_t>(ai) << 32) | idx,
                            /*shard=*/a.to);
  }
  f.next = j;
}

void Network::fire_fanout(std::uint32_t idx, std::uint32_t ai) {
  // fanouts_ is a deque: the reference stays valid while the sink sends
  // more traffic (which may acquire new records) reentrantly. Inside a
  // sharded wave this runs on the recipient's shard: it reads the frozen
  // record, delivers into recipient-local state, and stages the shared-
  // state bookkeeping (stats, group advance) for ordered replay.
  Fanout& f = fanouts_[idx];
  const Arrival a = f.arrivals[ai];
  bool delivered = false;
  bool dropped = false;
  if (crashed_[a.to]) {
    dropped = true;
  } else if (sinks_[a.to] != nullptr) {
    delivered = true;
    // Relayed hops still present the tree ORIGIN as the sender: the relay
    // is a transport detail (it shapes timing and egress accounting), while
    // protocol handlers key on the logical sender (e.g. headers are only
    // accepted from their author). The record's tree ref keeps the state
    // alive until its last arrival fires.
    const ValidatorIndex from =
        f.tree != kNoTree ? trees_[f.tree].origin : f.from;
    sinks_[a.to]->deliver(from, f.msg);
  }
  const std::uint64_t packed =
      (static_cast<std::uint64_t>(ai) << 32) | idx;
  const std::uint64_t flags =
      (delivered ? 1u : 0u) | (dropped ? 2u : 0u);
  if (!sim_.stage_client(&Network::fanout_advance_trampoline, this, packed,
                         flags))
    fanout_advance(idx, ai, delivered, dropped);
}

void Network::fanout_advance(std::uint32_t idx, std::uint32_t ai,
                             bool delivered, bool dropped) {
  if (delivered) ++stats_.messages_delivered;
  if (dropped) ++stats_.messages_dropped_crash;
  Fanout& f = fanouts_[idx];
  if (f.tree != kNoTree) {
    // Tree relay expansion. This runs on the driver thread in (time, seq)
    // order — directly in a serial drain, or replayed from the staged wave
    // in the identical sequence — so the relay's RNG draws, egress
    // accounting and reserved order keys match the serial schedule exactly
    // at any worker count.
    const Arrival a = f.arrivals[ai];
    const std::size_t d = config_.fanout_degree;
    if (delivered) {
      tree_send_children(f.tree, a.to, d * (a.pos + 1), d * (a.pos + 1) + d);
    } else {
      // Crashed or sink-less relay: its subtree must still be served
      // (reliable channels) — re-expand it flat from the origin.
      tree_flat_fallback(f.tree, a.pos, /*include_root=*/false);
    }
  }
  if (ai + 1 != f.next) return;  // not the last scheduled arrival
  if (f.next < f.arrivals.size())
    schedule_group(idx);
  else
    release_fanout(idx);
}

// ------------------------------------------------------------ tree fanout

void Network::start_tree(std::uint32_t idx, MessagePtr msg) {
  TreeState& t = trees_[idx];
  t.refs = 1;  // creation guard while the root hop expands
  if (t.order.empty()) {
    release_tree_ref(idx);
    return;
  }
  t.msg = std::move(msg);
  tree_send_children(idx, t.origin, 0, config_.fanout_degree);
  release_tree_ref(idx);
}

void Network::tree_send_children(std::uint32_t tidx, ValidatorIndex sender,
                                 std::size_t first, std::size_t last) {
  if (first >= trees_[tidx].order.size()) return;
  last = std::min(last, trees_[tidx].order.size());
  const std::size_t size = trees_[tidx].msg->wire_size();
  const std::uint32_t idx = acquire_fanout();
  Fanout& f = fanouts_[idx];
  f.from = sender;
  f.tree = tidx;
  ++trees_[tidx].refs;  // dropped by release_fanout
  for (std::size_t pos = first; pos < last; ++pos) {
    // trees_ is a deque (stable references), but tree_flat_fallback below
    // re-enters the record pool, so the state is re-indexed per child.
    const TreeState& t = trees_[tidx];
    const ValidatorIndex to = t.order[pos];
    if (link_blocked(sender, to)) {
      // Cut relay->child link: the child and its whole subtree fall back
      // to flat origin sends, whose held entries match flat mode's
      // (origin, recipient) bookkeeping.
      tree_flat_fallback(tidx, pos, /*include_root=*/true);
      continue;
    }
    ++stats_.messages_sent;
    stats_.bytes_sent += size;
    if (sender != t.origin) ++stats_.relay_sends;
    const SimTime arrival = compute_arrival(sender, to, size);
    f.arrivals.push_back(Arrival{arrival, sim_.reserve_seq(), to,
                                 static_cast<std::uint32_t>(pos)});
  }
  if (f.arrivals.empty()) {
    release_fanout(idx);  // also drops the tree ref taken above
    return;
  }
  f.msg = trees_[tidx].msg;
  std::sort(f.arrivals.begin(), f.arrivals.end(),
            [](const Arrival& x, const Arrival& y) {
              if (x.time != y.time) return x.time < y.time;
              return x.seq < y.seq;
            });
  f.next = 0;
  schedule_group(idx);
}

void Network::tree_flat_fallback(std::uint32_t tidx, std::size_t root_pos,
                                 bool include_root) {
  TreeState& t = trees_[tidx];
  if (crashed_[t.origin]) return;  // no retransmission source left
  const ValidatorIndex origin = t.origin;
  const std::size_t size = t.msg->wire_size();
  const std::size_t d = config_.fanout_degree;
  // Enumerate the subtree in breadth-first position order (deterministic).
  tree_scratch_.clear();
  if (include_root) {
    tree_scratch_.push_back(static_cast<std::uint32_t>(root_pos));
  } else {
    for (std::size_t j = d * (root_pos + 1);
         j < d * (root_pos + 1) + d && j < t.order.size(); ++j)
      tree_scratch_.push_back(static_cast<std::uint32_t>(j));
  }
  if (tree_scratch_.empty()) return;
  ++stats_.tree_fallbacks;
  const std::uint32_t idx = acquire_fanout();
  Fanout& f = fanouts_[idx];
  f.from = origin;  // flat record: no relaying from these recipients
  for (std::size_t head = 0; head < tree_scratch_.size(); ++head) {
    const std::size_t pos = tree_scratch_[head];
    for (std::size_t j = d * (pos + 1);
         j < d * (pos + 1) + d && j < t.order.size(); ++j)
      tree_scratch_.push_back(static_cast<std::uint32_t>(j));
    const ValidatorIndex to = t.order[pos];
    ++stats_.messages_sent;
    stats_.bytes_sent += size;
    if (link_blocked(origin, to)) {
      ++stats_.messages_held;
      held_.push_back(Held{origin, to, t.msg});
      continue;
    }
    f.arrivals.push_back(
        Arrival{compute_arrival(origin, to, size), sim_.reserve_seq(), to, 0});
  }
  if (f.arrivals.empty()) {
    release_fanout(idx);
    return;
  }
  f.msg = t.msg;
  std::sort(f.arrivals.begin(), f.arrivals.end(),
            [](const Arrival& x, const Arrival& y) {
              if (x.time != y.time) return x.time < y.time;
              return x.seq < y.seq;
            });
  f.next = 0;
  schedule_group(idx);
}

// ------------------------------------------------------------------- send

template <typename RecipientFn>
void Network::multicast_impl(ValidatorIndex from, MessagePtr msg,
                             RecipientFn&& for_each_recipient) {
  HH_ASSERT(from < sinks_.size());
  HH_ASSERT(msg != nullptr);
  if (crashed_[from]) return;

  const std::size_t size = msg->wire_size();
  const std::uint32_t idx = acquire_fanout();
  Fanout& f = fanouts_[idx];
  f.from = from;

  // Expand the fanout inline: per recipient one latency sample, one egress
  // advance and one reserved order key — the exact accounting order of the
  // legacy per-recipient send loop, so seeded runs replay bit-identically.
  for_each_recipient([&](ValidatorIndex to) {
    HH_ASSERT(to < sinks_.size());
    ++stats_.messages_sent;
    stats_.bytes_sent += size;
    if (link_blocked(from, to)) {
      ++stats_.messages_held;
      held_.push_back(Held{from, to, msg});
      return;
    }
    const SimTime arrival = compute_arrival(from, to, size);
    f.arrivals.push_back(Arrival{arrival, sim_.reserve_seq(), to, 0});
  });

  if (f.arrivals.empty()) {
    release_fanout(idx);
    return;
  }
  f.msg = std::move(msg);
  std::sort(f.arrivals.begin(), f.arrivals.end(),
            [](const Arrival& x, const Arrival& y) {
              if (x.time != y.time) return x.time < y.time;
              return x.seq < y.seq;
            });
  f.next = 0;
  schedule_group(idx);
}

void Network::send(ValidatorIndex from, ValidatorIndex to, MessagePtr msg) {
  HH_ASSERT(to < sinks_.size());
  // Sends mutate shared fabric state (egress clocks, RNG, order keys):
  // inside a sharded wave they are staged and replayed in (time, seq)
  // order, which reserves keys and draws latency samples in the exact
  // serial sequence.
  if (sim_.staging()) {
    const std::uint64_t packed =
        (static_cast<std::uint64_t>(to) << 32) | from;
    sim_.stage_client(&Network::send_trampoline, this, packed, 0,
                      std::move(msg));
    return;
  }
  multicast_impl(from, std::move(msg),
                 [to](auto&& emit) { emit(to); });
}

void Network::multicast(ValidatorIndex from, MessagePtr msg) {
  if (sim_.staging()) {
    sim_.stage_client(&Network::multicast_trampoline, this, from, 0,
                      std::move(msg));
    return;
  }
  const ValidatorIndex n = static_cast<ValidatorIndex>(sinks_.size());
  if (config_.fanout_degree > 0) {
    HH_ASSERT(from < sinks_.size());
    HH_ASSERT(msg != nullptr);
    if (crashed_[from]) return;
    const std::uint32_t tidx = acquire_tree();
    TreeState& t = trees_[tidx];
    t.origin = from;
    for (ValidatorIndex to = 0; to < n; ++to)
      if (to != from) t.order.push_back(to);
    start_tree(tidx, std::move(msg));
    return;
  }
  multicast_impl(from, std::move(msg), [from, n](auto&& emit) {
    for (ValidatorIndex to = 0; to < n; ++to)
      if (to != from) emit(to);
  });
}

void Network::multicast(ValidatorIndex from, MessagePtr msg,
                        const std::vector<ValidatorIndex>& recipients) {
  if (sim_.staging()) {
    // Rare path (Byzantine split sends): the recipient list must be copied,
    // so it rides the closure-based defer channel.
    sim_.defer([this, from, msg = std::move(msg), recipients]() mutable {
      multicast(from, std::move(msg), recipients);
    });
    return;
  }
  const ValidatorIndex n = static_cast<ValidatorIndex>(sinks_.size());
  if (config_.fanout_degree > 0) {
    HH_ASSERT(from < sinks_.size());
    HH_ASSERT(msg != nullptr);
    if (crashed_[from]) return;
    const std::uint32_t tidx = acquire_tree();
    TreeState& t = trees_[tidx];
    t.origin = from;
    for (ValidatorIndex to : recipients)
      if (to != from && to < n) t.order.push_back(to);
    start_tree(tidx, std::move(msg));
    return;
  }
  multicast_impl(from, std::move(msg), [&recipients, from, n](auto&& emit) {
    for (ValidatorIndex to : recipients)
      if (to != from && to < n) emit(to);
  });
}

// -------------------------------------------------------- fault injection

void Network::crash(ValidatorIndex node) {
  HH_ASSERT(node < crashed_.size());
  crashed_[node] = true;
}

void Network::recover(ValidatorIndex node) {
  HH_ASSERT(node < crashed_.size());
  crashed_[node] = false;
}

bool Network::is_crashed(ValidatorIndex node) const {
  HH_ASSERT(node < crashed_.size());
  return crashed_[node];
}

void Network::set_slowdown(ValidatorIndex node, double factor) {
  HH_ASSERT(node < slowdown_.size());
  HH_ASSERT_MSG(factor >= 1.0, "slowdown factor " << factor);
  slowdown_[node] = factor;
}

void Network::clear_slowdown(ValidatorIndex node) {
  HH_ASSERT(node < slowdown_.size());
  slowdown_[node] = 1.0;
}

void Network::partition(const std::vector<ValidatorIndex>& group) {
  if (partition_active_) {
    // Replace the previous grouping: lift its cuts without flushing — held
    // traffic stays buffered until heal() (or until an unrelated restore
    // unblocks its link).
    for (ValidatorIndex a : partition_group_)
      for (ValidatorIndex b : partition_rest_) {
        adjust_cut(a, b, -1);
        adjust_cut(b, a, -1);
      }
    partition_active_ = false;
  }
  std::vector<bool> in_group(sinks_.size(), false);
  for (ValidatorIndex v : group) {
    HH_ASSERT(v < sinks_.size());
    in_group[v] = true;
  }
  partition_group_.clear();
  partition_rest_.clear();
  for (ValidatorIndex v = 0; v < sinks_.size(); ++v)
    (in_group[v] ? partition_group_ : partition_rest_).push_back(v);
  cut_links(partition_group_, partition_rest_, /*symmetric=*/true);
  partition_active_ = true;
}

void Network::heal() {
  if (!partition_active_) return;
  partition_active_ = false;
  restore_links(partition_group_, partition_rest_, /*symmetric=*/true);
}

void Network::serialize_state(ByteWriter& w) const {
  // Traffic counters (all deterministic functions of the event sequence).
  w.u64(stats_.messages_sent);
  w.u64(stats_.messages_delivered);
  w.u64(stats_.messages_dropped_crash);
  w.u64(stats_.messages_held);
  w.u64(stats_.bytes_sent);
  w.u64(stats_.fanouts_active);
  w.u64(stats_.relay_sends);
  w.u64(stats_.tree_fallbacks);
  // Per-node fault and egress state.
  w.u64(sinks_.size());
  for (std::size_t v = 0; v < sinks_.size(); ++v) {
    w.u8(crashed_[v] ? 1 : 0);
    std::uint64_t slow_bits;
    std::memcpy(&slow_bits, &slowdown_[v], sizeof(slow_bits));
    w.u64(slow_bits);
    w.i64(egress_free_at_[v]);
  }
  // Link-cut refcounts and adversarial per-link delays (row-major).
  w.u64(links_cut_);
  for (const std::uint16_t c : link_cut_) w.u32(c);
  w.u64(links_delayed_);
  w.u64(link_delay_.size());
  for (const SimTime d : link_delay_) w.i64(d);
  w.u8(partition_active_ ? 1 : 0);
  // Held (cut-link) envelopes, in buffer order — the order they flush in.
  w.u64(held_.size());
  for (const Held& h : held_) {
    w.u32(h.from);
    w.u32(h.to);
    w.u64(h.msg->wire_size());
    w.u8(static_cast<std::uint8_t>(h.msg->kind()));
  }
  // In-flight fanout records: the (time, seq) arrival schedule of every live
  // record, payloads as envelopes. Free-list membership marks dead records.
  std::vector<bool> fanout_free(fanouts_.size(), false);
  for (const std::uint32_t idx : free_fanouts_) fanout_free[idx] = true;
  std::uint64_t live_fanouts = 0;
  for (std::size_t i = 0; i < fanouts_.size(); ++i)
    if (!fanout_free[i] && fanouts_[i].msg) ++live_fanouts;
  w.u64(live_fanouts);
  for (std::size_t i = 0; i < fanouts_.size(); ++i) {
    if (fanout_free[i] || !fanouts_[i].msg) continue;
    const Fanout& f = fanouts_[i];
    w.u32(f.from);
    w.u32(f.next);
    w.u64(f.msg->wire_size());
    w.u8(static_cast<std::uint8_t>(f.msg->kind()));
    w.u64(f.arrivals.size());
    for (const Arrival& a : f.arrivals) {
      w.i64(a.time);
      w.u64(a.seq);
      w.u32(a.to);
      w.u32(a.pos);
    }
  }
  // Live tree-multicast states: origin, refcount and recipient permutation.
  std::vector<bool> tree_free(trees_.size(), false);
  for (const std::uint32_t idx : free_trees_) tree_free[idx] = true;
  std::uint64_t live_trees = 0;
  for (std::size_t i = 0; i < trees_.size(); ++i)
    if (!tree_free[i] && trees_[i].refs > 0) ++live_trees;
  w.u64(live_trees);
  for (std::size_t i = 0; i < trees_.size(); ++i) {
    if (tree_free[i] || trees_[i].refs == 0) continue;
    const TreeState& t = trees_[i];
    w.u32(t.origin);
    w.u32(t.refs);
    w.u64(t.order.size());
    for (const ValidatorIndex v : t.order) w.u32(v);
  }
}

void Network::flush_unblocked_held() {
  // Flush buffered traffic whose link is connected again, with fresh latency
  // samples (reliable channels deliver once connectivity returns). Each held
  // message becomes a single-arrival fanout record; messages still behind
  // another active cut stay buffered.
  std::vector<Held> held;
  held.swap(held_);
  for (auto& h : held) {
    if (link_blocked(h.from, h.to)) {
      held_.push_back(std::move(h));
      continue;
    }
    if (crashed_[h.from]) continue;
    const SimTime arrival = compute_arrival(h.from, h.to, h.msg->wire_size());
    const std::uint32_t idx = acquire_fanout();
    Fanout& f = fanouts_[idx];
    f.from = h.from;
    f.msg = std::move(h.msg);
    f.arrivals.push_back(Arrival{arrival, sim_.reserve_seq(), h.to, 0});
    f.next = 0;
    schedule_group(idx);
  }
}

}  // namespace hammerhead::net

#include "hammerhead/net/network.h"

#include <algorithm>

#include "hammerhead/common/logging.h"

namespace hammerhead::net {

Network::Network(sim::Simulator& simulator,
                 std::unique_ptr<LatencyModel> latency, NetConfig config,
                 std::size_t num_nodes)
    : sim_(simulator),
      latency_(std::move(latency)),
      config_(config),
      handlers_(num_nodes),
      crashed_(num_nodes, false),
      slowdown_(num_nodes, 1.0),
      egress_free_at_(num_nodes, 0),
      in_partition_group_(num_nodes, false) {
  HH_ASSERT(latency_ != nullptr);
}

void Network::register_handler(ValidatorIndex node, Handler handler) {
  HH_ASSERT(node < handlers_.size());
  handlers_[node] = std::move(handler);
}

bool Network::crosses_partition(ValidatorIndex a, ValidatorIndex b) const {
  return partition_active_ &&
         in_partition_group_[a] != in_partition_group_[b];
}

SimTime Network::compute_arrival(ValidatorIndex from, ValidatorIndex to,
                                 std::size_t size) {
  const SimTime now = sim_.now();

  // Transmission delay: the sender's egress link is serialized.
  SimTime depart = now;
  if (!config_.unlimited_bandwidth) {
    const SimTime tx = static_cast<SimTime>(
        static_cast<double>(size) / config_.bandwidth_bytes_per_us);
    depart = std::max(now, egress_free_at_[from]) + tx;
    egress_free_at_[from] = depart;
  }

  // Propagation delay with slowdown factors on either endpoint.
  SimTime lat = latency_->sample(from, to, sim_.rng());
  const double factor = std::max(slowdown_[from], slowdown_[to]);
  lat = static_cast<SimTime>(static_cast<double>(lat) * factor);

  SimTime arrival = depart + lat;

  // Pre-GST adversarial scheduling, bounded by partial synchrony:
  // arrival <= max(GST, send_time) + delta.
  if (now < config_.gst && config_.max_adversarial_delay > 0) {
    arrival += static_cast<SimTime>(sim_.rng().next_below(
        static_cast<std::uint64_t>(config_.max_adversarial_delay)));
  }
  const SimTime bound = std::max(config_.gst, now) + config_.delta;
  arrival = std::min(arrival, bound);
  // Propagation can never be instant.
  return std::max(arrival, now + 1);
}

void Network::send(ValidatorIndex from, ValidatorIndex to, MessagePtr msg) {
  HH_ASSERT(from < handlers_.size() && to < handlers_.size());
  HH_ASSERT(msg != nullptr);
  if (crashed_[from]) return;

  ++stats_.messages_sent;
  stats_.bytes_sent += msg->wire_size();

  if (crosses_partition(from, to)) {
    held_.push_back(Held{from, to, std::move(msg)});
    return;
  }

  const SimTime arrival = compute_arrival(from, to, msg->wire_size());
  sim_.schedule_at(arrival, [this, from, to, msg = std::move(msg)]() {
    if (crashed_[to]) {
      ++stats_.messages_dropped_crash;
      return;
    }
    if (!handlers_[to]) return;
    ++stats_.messages_delivered;
    handlers_[to](from, msg);
  });
}

void Network::broadcast(ValidatorIndex from, const MessagePtr& msg) {
  for (ValidatorIndex to = 0; to < handlers_.size(); ++to) {
    if (to == from) continue;
    send(from, to, msg);
  }
}

void Network::crash(ValidatorIndex node) {
  HH_ASSERT(node < crashed_.size());
  crashed_[node] = true;
}

void Network::recover(ValidatorIndex node) {
  HH_ASSERT(node < crashed_.size());
  crashed_[node] = false;
}

bool Network::is_crashed(ValidatorIndex node) const {
  HH_ASSERT(node < crashed_.size());
  return crashed_[node];
}

void Network::set_slowdown(ValidatorIndex node, double factor) {
  HH_ASSERT(node < slowdown_.size());
  HH_ASSERT_MSG(factor >= 1.0, "slowdown factor " << factor);
  slowdown_[node] = factor;
}

void Network::clear_slowdown(ValidatorIndex node) {
  HH_ASSERT(node < slowdown_.size());
  slowdown_[node] = 1.0;
}

void Network::partition(const std::vector<ValidatorIndex>& group) {
  std::fill(in_partition_group_.begin(), in_partition_group_.end(), false);
  for (ValidatorIndex v : group) {
    HH_ASSERT(v < in_partition_group_.size());
    in_partition_group_[v] = true;
  }
  partition_active_ = true;
}

void Network::heal() {
  partition_active_ = false;
  // Flush buffered cross-partition traffic with fresh latency samples
  // (reliable channels deliver once connectivity returns).
  std::vector<Held> held;
  held.swap(held_);
  for (auto& h : held) {
    if (crashed_[h.from]) continue;
    const SimTime arrival =
        compute_arrival(h.from, h.to, h.msg->wire_size());
    ValidatorIndex from = h.from, to = h.to;
    sim_.schedule_at(arrival, [this, from, to, msg = std::move(h.msg)]() {
      if (crashed_[to]) {
        ++stats_.messages_dropped_crash;
        return;
      }
      if (!handlers_[to]) return;
      ++stats_.messages_delivered;
      handlers_[to](from, msg);
    });
  }
}

}  // namespace hammerhead::net

#include "hammerhead/net/latency.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "hammerhead/common/assert.h"

namespace hammerhead::net {

UniformLatencyModel::UniformLatencyModel(SimTime min, SimTime max)
    : min_(min), max_(max) {
  HH_ASSERT(min > 0 && max >= min);
}

SimTime UniformLatencyModel::sample(ValidatorIndex, ValidatorIndex, Rng& rng) {
  return rng.next_in(min_, max_);
}

SimTime UniformLatencyModel::expected(ValidatorIndex, ValidatorIndex) const {
  return (min_ + max_) / 2;
}

const std::vector<Region>& aws_regions() {
  // Section 5 of the paper: 13 regions. Coordinates are the approximate
  // datacenter locations.
  static const std::vector<Region> regions = {
      {"us-east-1", 38.9, -77.0},       // N. Virginia
      {"us-west-2", 45.8, -119.7},      // Oregon
      {"ca-central-1", 45.5, -73.6},    // Montreal
      {"eu-central-1", 50.1, 8.7},      // Frankfurt
      {"eu-west-1", 53.3, -6.3},        // Ireland
      {"eu-west-2", 51.5, -0.1},        // London
      {"eu-west-3", 48.9, 2.4},         // Paris
      {"eu-north-1", 59.3, 18.1},       // Stockholm
      {"ap-south-1", 19.1, 72.9},       // Mumbai
      {"ap-southeast-1", 1.3, 103.8},   // Singapore
      {"ap-southeast-2", -33.9, 151.2}, // Sydney
      {"ap-northeast-1", 35.7, 139.7},  // Tokyo
      {"ap-northeast-2", 37.6, 127.0},  // Seoul
  };
  return regions;
}

namespace {
double great_circle_km(const Region& a, const Region& b) {
  constexpr double kEarthRadiusKm = 6371.0;
  constexpr double kDegToRad = M_PI / 180.0;
  const double la1 = a.latitude * kDegToRad, lo1 = a.longitude * kDegToRad;
  const double la2 = b.latitude * kDegToRad, lo2 = b.longitude * kDegToRad;
  const double dlat = la2 - la1, dlon = lo2 - lo1;
  const double h = std::sin(dlat / 2) * std::sin(dlat / 2) +
                   std::cos(la1) * std::cos(la2) * std::sin(dlon / 2) *
                       std::sin(dlon / 2);
  return 2 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
}
}  // namespace

SimTime GeoLatencyModel::region_rtt(std::size_t a, std::size_t b) {
  const auto& regions = aws_regions();
  HH_ASSERT(a < regions.size() && b < regions.size());
  if (a == b) return millis(1);  // intra-region RTT ~1 ms
  const double km = great_circle_km(regions[a], regions[b]);
  // Fiber paths are ~40% longer than great circle; light in fiber ~200 km/ms
  // one way => RTT ms ~ 2 * 1.4 * km / 200 = km / 71.4; plus ~4 ms overhead.
  const double rtt_ms = km / 71.4 + 4.0;
  return static_cast<SimTime>(rtt_ms * 1000.0);
}

GeoLatencyModel::GeoLatencyModel(std::size_t num_validators, double jitter_frac)
    : n_(num_validators), jitter_frac_(jitter_frac) {
  const std::size_t r = aws_regions().size();
  one_way_.assign(r, std::vector<SimTime>(r, 0));
  for (std::size_t a = 0; a < r; ++a)
    for (std::size_t b = 0; b < r; ++b)
      one_way_[a][b] = region_rtt(a, b) / 2;
}

std::size_t GeoLatencyModel::region_of(ValidatorIndex v) const {
  return v % aws_regions().size();
}

SimTime GeoLatencyModel::expected(ValidatorIndex from,
                                  ValidatorIndex to) const {
  return one_way_[region_of(from)][region_of(to)];
}

SimTime GeoLatencyModel::sample(ValidatorIndex from, ValidatorIndex to,
                                Rng& rng) {
  const SimTime base = expected(from, to);
  // Multiplicative jitter, always >= 60% of base, unbounded-ish tail kept
  // small. Normal in log space approximated by clamped normal.
  const double mult =
      std::max(0.6, rng.next_normal(1.0, jitter_frac_));
  return static_cast<SimTime>(static_cast<double>(base) * mult);
}

LatencyMatrix parse_latency_matrix(const std::string& text) {
  LatencyMatrix m;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (const auto hash = line.find('#'); hash != std::string::npos)
      line.erase(hash);
    for (char& c : line)
      if (c == ',') c = ' ';
    std::istringstream fields(line);
    std::vector<SimTime> row;
    double ms = 0.0;
    while (fields >> ms) {
      HH_ASSERT(ms >= 0.0);
      row.push_back(static_cast<SimTime>(ms * 1000.0));
    }
    HH_ASSERT(fields.eof());  // a non-numeric token is a malformed row
    if (!row.empty()) m.one_way_us.push_back(std::move(row));
  }
  HH_ASSERT(!m.one_way_us.empty());
  for (const auto& row : m.one_way_us)
    HH_ASSERT(row.size() == m.one_way_us.size());
  return m;
}

LatencyMatrix load_latency_matrix(const std::string& path) {
  std::ifstream in(path);
  HH_ASSERT(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_latency_matrix(buf.str());
}

MatrixLatencyModel::MatrixLatencyModel(LatencyMatrix matrix, double jitter_frac)
    : matrix_(std::move(matrix)), jitter_frac_(jitter_frac) {
  HH_ASSERT(matrix_.sites() > 0);
}

std::size_t MatrixLatencyModel::site_of(ValidatorIndex v) const {
  return v % matrix_.sites();
}

SimTime MatrixLatencyModel::expected(ValidatorIndex from,
                                     ValidatorIndex to) const {
  // Floor at 1 us: a zero-delay link would violate the simulator's
  // strictly-forward delivery invariant.
  return std::max<SimTime>(1, matrix_.one_way_us[site_of(from)][site_of(to)]);
}

SimTime MatrixLatencyModel::sample(ValidatorIndex from, ValidatorIndex to,
                                   Rng& rng) {
  const SimTime base = expected(from, to);
  const double mult = std::max(0.6, rng.next_normal(1.0, jitter_frac_));
  return static_cast<SimTime>(static_cast<double>(base) * mult);
}

}  // namespace hammerhead::net

// Partially synchronous simulated network (Section 2.1 of the paper).
//
// Model:
//  * Reliable authenticated point-to-point channels (the paper uses QUIC):
//    messages between live honest nodes are never lost, only delayed.
//  * Partial synchrony: before GST the adversary may add up to
//    `max_adversarial_delay` to any message; after GST every message arrives
//    within Delta. A message sent at time x arrives by Delta + max(GST, x).
//  * Fault injection: crash (messages to/from dropped — the process is down),
//    recovery, slowdown (multiplies link latency; models degraded validators
//    like the Sui mainnet incident in Section 1), and link cuts: any directed
//    (from-set x to-set) bundle of links can be severed and later restored.
//    Cut-link traffic is buffered and delivered at restore time, preserving
//    reliability; group partitions are a special case of the cut matrix.
//  * Bandwidth: each node has finite egress; consecutive sends queue behind
//    one another (transmission delay = size / bandwidth).
//
// Fabric: every transmission — unicast or multicast — is one pooled fanout
// record holding ONE MessagePtr and the per-recipient (arrival, order-key)
// schedule, expanded inline at send time (latency sample + egress queue per
// recipient, exactly the legacy per-send order, so seeded runs replay
// bit-identically). The engine carries a single live raw event per record
// that re-keys itself through the sorted arrival schedule: an n-recipient
// broadcast costs one slab slot instead of n heap pushes, n std::function
// allocations and n MessagePtr refcount bumps. Delivery dispatches to a
// MsgSink (devirtualized per node, MsgKind-switched by the receiver) rather
// than a per-node std::function.
#pragma once

#include <cstdint>
#include <functional>
#include <deque>
#include <memory>
#include <vector>

#include "hammerhead/common/types.h"
#include "hammerhead/net/latency.h"
#include "hammerhead/sim/simulator.h"

namespace hammerhead::net {

/// Discriminator for fast dispatch without dynamic_cast chains (the delivery
/// path runs tens of thousands of times per simulated round).
enum class MsgKind : std::uint8_t {
  Header,
  Vote,
  Cert,
  FetchReq,
  FetchResp,
  StateSyncReq,
  StateSyncResp,
  Rbc,
  Other,
};

/// Base class for everything that travels on the wire. Concrete message types
/// live in higher layers (dag, rbc, node); the network only needs a size for
/// the bandwidth model and a name for tracing.
class Message {
 public:
  virtual ~Message() = default;
  virtual std::size_t wire_size() const = 0;
  virtual const char* type_name() const = 0;
  virtual MsgKind kind() const { return MsgKind::Other; }
};

using MessagePtr = std::shared_ptr<const Message>;

/// Delivery endpoint of a node. deliver() receives every message addressed
/// to the node; implementations switch on msg->kind() to their typed
/// handlers (see node::Validator::dispatch, rbc::BrachaBroadcaster).
class MsgSink {
 public:
  virtual ~MsgSink() = default;
  virtual void deliver(ValidatorIndex from, const MessagePtr& msg) = 0;
};

struct NetConfig {
  /// Global Stabilization Time. 0 = synchronous from the start.
  SimTime gst = 0;
  /// Post-GST delivery bound Delta. Every message arrives by
  /// max(GST, send_time) + delta.
  SimTime delta = seconds(2);
  /// Max extra delay the adversary may add to a message sent before GST.
  SimTime max_adversarial_delay = 0;
  /// Egress bandwidth in bytes per microsecond (10 Gbps ~ 1250 B/us).
  double bandwidth_bytes_per_us = 1250.0;
  /// If true, bandwidth is ignored (unit tests).
  bool unlimited_bandwidth = false;
  /// Delivery slotting for sharded execution (0 = off): arrival timestamps
  /// are rounded UP to this grid, the simulation analogue of NIC interrupt
  /// coalescing. Same-slot arrivals form dense same-timestamp batches the
  /// sharded Simulator can spread across workers. Deterministic by
  /// construction (the grid does not depend on the worker count) and still
  /// within the partial-synchrony bound: quantized arrivals are re-capped
  /// at max(GST, send) + delta.
  SimTime delivery_slot = 0;
  /// Hierarchical multicast dissemination degree (0 = off): with degree
  /// d > 0 a multicast forms a d-ary relay forest over the ordered
  /// recipient permutation — the origin transmits to the first d
  /// recipients, and each recipient forwards to its d subtree children on
  /// delivery. Per-hop records shrink from n-1 arrivals to d, and the
  /// origin's egress serializes d transmissions instead of n-1 (the flat
  /// expansion is the n=1000 worst case both in record size and in sender
  /// bandwidth). 0 keeps the flat sender-expands-all path byte-for-byte
  /// (every historical trace hash reproduces). Determinism at any degree:
  /// relay expansion runs in the driver-ordered advance step, so RNG
  /// draws, egress accounting and order keys stay in the exact serial
  /// sequence and trace hash(jobs=1) == hash(jobs=K) still holds.
  /// Reliability matches the flat model: a crashed (or unreachable) relay's
  /// subtree is re-expanded flat from the origin, and a cut relay->child
  /// link falls back to flat origin sends for that subtree, so held-message
  /// bookkeeping degenerates to the flat (origin, recipient) entries.
  std::uint32_t fanout_degree = 0;
};

struct NetStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped_crash = 0;
  /// Messages buffered behind a cut link (delivered after restore).
  std::uint64_t messages_held = 0;
  std::uint64_t bytes_sent = 0;
  /// Fanout records in flight + pooled (gauge for the zero-alloc claim).
  std::uint64_t fanouts_active = 0;
  std::uint64_t fanouts_pooled = 0;
  /// Tree-fanout gauges: transmissions performed by relay (non-origin)
  /// nodes, and subtree fallback re-expansions from the origin (crashed,
  /// sink-less or link-cut relays).
  std::uint64_t relay_sends = 0;
  std::uint64_t tree_fallbacks = 0;
};

class Network {
 public:
  /// Legacy delivery callback; tests and ad-hoc tools may still use it.
  /// Protocol nodes implement MsgSink instead (no std::function dispatch).
  using Handler =
      std::function<void(ValidatorIndex from, const MessagePtr& msg)>;

  Network(sim::Simulator& simulator, std::unique_ptr<LatencyModel> latency,
          NetConfig config, std::size_t num_nodes);

  /// Install the delivery sink for a node. Must be called before the node
  /// receives anything. The pointer must outlive the network (nodes own
  /// their sinks; the network never deletes them).
  void register_sink(ValidatorIndex node, MsgSink* sink);

  /// Legacy: wrap a std::function handler in an owned sink.
  void register_handler(ValidatorIndex node, Handler handler);

  /// Point-to-point send. No-op if the sender is crashed. Delivery is dropped
  /// if the receiver is crashed at arrival time.
  void send(ValidatorIndex from, ValidatorIndex to, MessagePtr msg);

  /// Multicast `msg` to every node except `from` (the caller handles its own
  /// message locally, mirroring a loopback fast path). One fanout record,
  /// one live engine event.
  void multicast(ValidatorIndex from, MessagePtr msg);

  /// Multicast to an explicit recipient list (Byzantine split sends, targeted
  /// gossip). Entries equal to `from` or out of range are skipped.
  void multicast(ValidatorIndex from, MessagePtr msg,
                 const std::vector<ValidatorIndex>& recipients);

  /// Synonym for multicast(from, msg) — kept for readability at call sites
  /// that broadcast to the whole committee.
  void broadcast(ValidatorIndex from, const MessagePtr& msg) {
    multicast(from, msg);
  }

  // --- fault injection -----------------------------------------------------
  void crash(ValidatorIndex node);
  void recover(ValidatorIndex node);
  bool is_crashed(ValidatorIndex node) const;

  /// Multiply latency of links touching `node` by `factor` (>= 1).
  void set_slowdown(ValidatorIndex node, double factor);
  void clear_slowdown(ValidatorIndex node);

  /// Add a fixed extra one-way delay to the directed link from -> to
  /// (adaptive-delay adversary). The extra delay is applied before the
  /// partial-synchrony cap, so post-GST delivery still lands within
  /// max(GST, send) + delta — an adversary can stretch a link only up to
  /// the synchrony bound, never past it. `extra` = 0 clears the link.
  void set_link_delay(ValidatorIndex from, ValidatorIndex to, SimTime extra);
  /// Drop every per-link extra delay.
  void clear_link_delays();
  /// Directed links with a nonzero adversarial delay (gauge).
  std::size_t links_delayed() const { return links_delayed_; }

  /// Sever every link from a node in `from_set` to a node in `to_set`
  /// (both directions when `symmetric`). Cuts are reference-counted per
  /// directed pair, so overlapping windows compose; self-links are ignored.
  /// Messages on a cut link are buffered (reliable channels: delayed, not
  /// lost) and flushed with fresh latency samples once the link is restored.
  void cut_links(const std::vector<ValidatorIndex>& from_set,
                 const std::vector<ValidatorIndex>& to_set,
                 bool symmetric = true);
  void restore_links(const std::vector<ValidatorIndex>& from_set,
                     const std::vector<ValidatorIndex>& to_set,
                     bool symmetric = true);
  bool link_blocked(ValidatorIndex from, ValidatorIndex to) const;
  /// Directed pairs currently severed (gauge).
  std::size_t links_cut() const { return links_cut_; }

  /// Partition the network into {group} vs {everyone else} until heal() —
  /// sugar over the cut matrix. Calling partition() again replaces the
  /// previous grouping; heal() restores it and flushes buffered traffic.
  void partition(const std::vector<ValidatorIndex>& group);
  void heal();
  bool partitioned() const { return partition_active_; }

  const NetStats& stats() const { return stats_; }

  /// Checkpoint support: serialize the fabric's deterministic state — the
  /// traffic counters, crash/slowdown vectors, egress clocks, the refcounted
  /// link-cut and per-link delay matrices, held (cut-link) message
  /// envelopes, and the (time, seq) arrival schedules of every in-flight
  /// fanout record and tree-multicast state. Message *payloads* are shared
  /// process-local objects and are represented by their (from, to/origin,
  /// wire_size, kind) envelope only; the checkpoint subsystem restores them
  /// by deterministic replay and uses this encoding to verify the replayed
  /// fabric is byte-identical (docs/checkpoint.md).
  void serialize_state(ByteWriter& w) const;

  std::size_t num_nodes() const { return sinks_.size(); }
  const LatencyModel& latency_model() const { return *latency_; }
  const NetConfig& config() const { return config_; }

 private:
  /// Per-recipient delivery slot inside a fanout record. `pos` is the
  /// recipient's position in the owning tree's recipient permutation (tree
  /// records only; 0 and unused on flat records).
  struct Arrival {
    SimTime time;
    std::uint64_t seq;  // order key reserved at send time
    ValidatorIndex to;
    std::uint32_t pos;
  };
  /// One transmission (unicast or multicast): the message plus its sorted
  /// arrival schedule. Pooled; lives in a deque so references stay stable
  /// while sinks send more traffic reentrantly. `next` (the first
  /// unscheduled arrival index) is only mutated on the driver thread —
  /// workers read arrivals/msg, which are frozen while any arrival event
  /// is in flight. `tree` links relay-hop records to their TreeState
  /// (kNoTree on flat records).
  struct Fanout {
    MessagePtr msg;
    ValidatorIndex from = 0;
    std::uint32_t next = 0;
    std::uint32_t tree = kNoTree;
    std::vector<Arrival> arrivals;
  };
  /// Shared state of one tree multicast (fanout_degree > 0): the origin,
  /// the ordered recipient permutation (positions form a d-ary forest:
  /// children of position i are d*(i+1) .. d*(i+1)+d-1), and the message
  /// for fallback re-sends. Pooled; ref-counted by the records of its relay
  /// hops, released when the last hop completes.
  struct TreeState {
    MessagePtr msg;
    ValidatorIndex origin = 0;
    std::uint32_t refs = 0;
    std::vector<ValidatorIndex> order;
  };
  static constexpr std::uint32_t kNoTree = 0xffffffffu;

  template <typename RecipientFn>
  void multicast_impl(ValidatorIndex from, MessagePtr msg,
                      RecipientFn&& for_each_recipient);
  std::uint32_t acquire_fanout();
  void release_fanout(std::uint32_t idx);
  std::uint32_t acquire_tree();
  void release_tree_ref(std::uint32_t idx);
  /// Root hop of a tree multicast: trees_[idx].order is populated, msg not
  /// yet installed. Consumes (or releases) the tree.
  void start_tree(std::uint32_t idx, MessagePtr msg);
  /// One relay hop: `sender` transmits to positions [first, last) of the
  /// tree's permutation as a single pooled record. Runs on the driver
  /// thread only (send path or ordered advance replay).
  void tree_send_children(std::uint32_t tidx, ValidatorIndex sender,
                          std::size_t first, std::size_t last);
  /// Reliability fallback: serve position `root_pos`'s subtree (optionally
  /// including the root) with flat sends from the tree's origin.
  void tree_flat_fallback(std::uint32_t tidx, std::size_t root_pos,
                          bool include_root);
  /// Schedule every arrival sharing the next pending timestamp as its own
  /// engine event (shard = recipient), so same-slot deliveries of one
  /// broadcast execute in a single wave instead of re-keying one by one.
  void schedule_group(std::uint32_t idx);
  static void fanout_trampoline(void* ctx, std::uint64_t arg) {
    static_cast<Network*>(ctx)->fire_fanout(
        static_cast<std::uint32_t>(arg),
        static_cast<std::uint32_t>(arg >> 32));
  }
  void fire_fanout(std::uint32_t idx, std::uint32_t ai);
  /// Post-delivery bookkeeping of one arrival: stats, next-group schedule
  /// or record release. Runs on the driver thread (directly, or replayed
  /// from a staged wave in (time, seq) order).
  void fanout_advance(std::uint32_t idx, std::uint32_t ai, bool delivered,
                      bool dropped);
  static void fanout_advance_trampoline(
      void* ctx, std::uint64_t a, std::uint64_t b,
      const std::shared_ptr<const void>&) {
    static_cast<Network*>(ctx)->fanout_advance(
        static_cast<std::uint32_t>(a), static_cast<std::uint32_t>(a >> 32),
        (b & 1) != 0, (b & 2) != 0);
  }
  static void send_trampoline(void* ctx, std::uint64_t a, std::uint64_t,
                              const std::shared_ptr<const void>& pin) {
    static_cast<Network*>(ctx)->send(
        static_cast<ValidatorIndex>(a),
        static_cast<ValidatorIndex>(a >> 32),
        std::static_pointer_cast<const Message>(pin));
  }
  static void multicast_trampoline(void* ctx, std::uint64_t a, std::uint64_t,
                                   const std::shared_ptr<const void>& pin) {
    static_cast<Network*>(ctx)->multicast(
        static_cast<ValidatorIndex>(a),
        std::static_pointer_cast<const Message>(pin));
  }

  SimTime compute_arrival(ValidatorIndex from, ValidatorIndex to,
                          std::size_t size);
  void adjust_cut(ValidatorIndex from, ValidatorIndex to, int delta);
  /// Deliver every held message whose link is no longer blocked.
  void flush_unblocked_held();

  sim::Simulator& sim_;
  std::unique_ptr<LatencyModel> latency_;
  NetConfig config_;
  std::vector<MsgSink*> sinks_;
  /// Owned adapter sinks for register_handler() users.
  std::vector<std::unique_ptr<MsgSink>> owned_sinks_;
  std::vector<bool> crashed_;
  std::vector<double> slowdown_;
  std::vector<SimTime> egress_free_at_;
  /// Reference-counted directional cut matrix, row-major [from * n + to].
  std::vector<std::uint16_t> link_cut_;
  std::size_t links_cut_ = 0;
  /// Per-link adversarial extra delay, row-major [from * n + to]. Allocated
  /// lazily on the first set_link_delay() so runs without a delay adversary
  /// pay nothing.
  std::vector<SimTime> link_delay_;
  std::size_t links_delayed_ = 0;
  /// Group-partition sugar state (partition()/heal()).
  std::vector<ValidatorIndex> partition_group_;
  std::vector<ValidatorIndex> partition_rest_;
  bool partition_active_ = false;
  // Messages held back by a cut link: (from, to, msg).
  struct Held {
    ValidatorIndex from;
    ValidatorIndex to;
    MessagePtr msg;
  };
  std::vector<Held> held_;

  std::deque<Fanout> fanouts_;
  std::vector<std::uint32_t> free_fanouts_;
  std::deque<TreeState> trees_;
  std::vector<std::uint32_t> free_trees_;
  /// Reused BFS scratch for subtree enumeration (driver thread only).
  std::vector<std::uint32_t> tree_scratch_;
  NetStats stats_;
};

}  // namespace hammerhead::net

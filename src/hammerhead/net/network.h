// Partially synchronous simulated network (Section 2.1 of the paper).
//
// Model:
//  * Reliable authenticated point-to-point channels (the paper uses QUIC):
//    messages between live honest nodes are never lost, only delayed.
//  * Partial synchrony: before GST the adversary may add up to
//    `max_adversarial_delay` to any message; after GST every message arrives
//    within Delta. A message sent at time x arrives by Delta + max(GST, x).
//  * Fault injection: crash (messages to/from dropped — the process is down),
//    recovery, slowdown (multiplies link latency; models degraded validators
//    like the Sui mainnet incident in Section 1), and partitions (cross-
//    partition traffic is buffered and delivered at heal time, preserving
//    reliability).
//  * Bandwidth: each node has finite egress; consecutive sends queue behind
//    one another (transmission delay = size / bandwidth).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_set>
#include <vector>

#include "hammerhead/common/types.h"
#include "hammerhead/net/latency.h"
#include "hammerhead/sim/simulator.h"

namespace hammerhead::net {

/// Discriminator for fast dispatch without dynamic_cast chains (the delivery
/// path runs tens of thousands of times per simulated round).
enum class MsgKind : std::uint8_t {
  Header,
  Vote,
  Cert,
  FetchReq,
  FetchResp,
  StateSyncReq,
  StateSyncResp,
  Rbc,
  Other,
};

/// Base class for everything that travels on the wire. Concrete message types
/// live in higher layers (dag, rbc, node); the network only needs a size for
/// the bandwidth model and a name for tracing.
class Message {
 public:
  virtual ~Message() = default;
  virtual std::size_t wire_size() const = 0;
  virtual const char* type_name() const = 0;
  virtual MsgKind kind() const { return MsgKind::Other; }
};

using MessagePtr = std::shared_ptr<const Message>;

struct NetConfig {
  /// Global Stabilization Time. 0 = synchronous from the start.
  SimTime gst = 0;
  /// Post-GST delivery bound Delta. Every message arrives by
  /// max(GST, send_time) + delta.
  SimTime delta = seconds(2);
  /// Max extra delay the adversary may add to a message sent before GST.
  SimTime max_adversarial_delay = 0;
  /// Egress bandwidth in bytes per microsecond (10 Gbps ~ 1250 B/us).
  double bandwidth_bytes_per_us = 1250.0;
  /// If true, bandwidth is ignored (unit tests).
  bool unlimited_bandwidth = false;
};

struct NetStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped_crash = 0;
  std::uint64_t bytes_sent = 0;
};

class Network {
 public:
  using Handler =
      std::function<void(ValidatorIndex from, const MessagePtr& msg)>;

  Network(sim::Simulator& simulator, std::unique_ptr<LatencyModel> latency,
          NetConfig config, std::size_t num_nodes);

  /// Install the delivery callback for a node. Must be called before the node
  /// receives anything.
  void register_handler(ValidatorIndex node, Handler handler);

  /// Point-to-point send. No-op if the sender is crashed. Delivery is dropped
  /// if the receiver is crashed at arrival time.
  void send(ValidatorIndex from, ValidatorIndex to, MessagePtr msg);

  /// Send to every node except `from` (the caller handles its own message
  /// locally, mirroring a loopback fast path).
  void broadcast(ValidatorIndex from, const MessagePtr& msg);

  // --- fault injection -----------------------------------------------------
  void crash(ValidatorIndex node);
  void recover(ValidatorIndex node);
  bool is_crashed(ValidatorIndex node) const;

  /// Multiply latency of links touching `node` by `factor` (>= 1).
  void set_slowdown(ValidatorIndex node, double factor);
  void clear_slowdown(ValidatorIndex node);

  /// Partition the network into {group} vs {everyone else} until heal().
  /// Cross-partition messages are buffered and delivered shortly after heal
  /// (reliable channels: delayed, not lost).
  void partition(const std::vector<ValidatorIndex>& group);
  void heal();
  bool partitioned() const { return partition_active_; }

  const NetStats& stats() const { return stats_; }
  std::size_t num_nodes() const { return handlers_.size(); }
  const LatencyModel& latency_model() const { return *latency_; }

 private:
  SimTime compute_arrival(ValidatorIndex from, ValidatorIndex to,
                          std::size_t size);
  bool crosses_partition(ValidatorIndex a, ValidatorIndex b) const;

  sim::Simulator& sim_;
  std::unique_ptr<LatencyModel> latency_;
  NetConfig config_;
  std::vector<Handler> handlers_;
  std::vector<bool> crashed_;
  std::vector<double> slowdown_;
  std::vector<SimTime> egress_free_at_;
  std::vector<bool> in_partition_group_;
  bool partition_active_ = false;
  SimTime partition_heal_hint_ = 0;
  // Messages held back by an active partition: (from, to, msg).
  struct Held {
    ValidatorIndex from;
    ValidatorIndex to;
    MessagePtr msg;
  };
  std::vector<Held> held_;
  NetStats stats_;
};

}  // namespace hammerhead::net

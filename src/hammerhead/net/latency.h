// Link latency models.
//
// The paper's testbed spreads validators over 13 AWS regions; the dominant
// latency component is the WAN RTT between regions. GeoLatencyModel embeds
// approximate coordinates for those 13 regions and derives one-way latency
// from great-circle distance over fiber (~200 km/ms round trip -> we use
// 100 km per RTT-millisecond) plus a fixed processing overhead and lognormal
// jitter. Absolute values need not match AWS exactly; the *structure*
// (nearby regions fast, trans-pacific slow) is what shapes the results.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hammerhead/common/rng.h"
#include "hammerhead/common/types.h"

namespace hammerhead::net {

class LatencyModel {
 public:
  virtual ~LatencyModel() = default;

  /// One-way delay for a message from `from` to `to` (>= some positive floor).
  virtual SimTime sample(ValidatorIndex from, ValidatorIndex to, Rng& rng) = 0;

  /// Expected (jitter-free) one-way delay; used by tests and for calibrating
  /// timeouts.
  virtual SimTime expected(ValidatorIndex from, ValidatorIndex to) const = 0;
};

/// Uniform latency in [min, max] between any pair; good for unit tests.
class UniformLatencyModel final : public LatencyModel {
 public:
  UniformLatencyModel(SimTime min, SimTime max);
  SimTime sample(ValidatorIndex, ValidatorIndex, Rng& rng) override;
  SimTime expected(ValidatorIndex, ValidatorIndex) const override;

 private:
  SimTime min_;
  SimTime max_;
};

/// The 13 AWS regions of the paper's evaluation (Section 5).
struct Region {
  std::string name;
  double latitude;
  double longitude;
};

const std::vector<Region>& aws_regions();

/// Geo-distributed latency: validator i lives in region i % 13 (matching the
/// paper's "distributed across those regions as equally as possible").
class GeoLatencyModel final : public LatencyModel {
 public:
  /// jitter_frac: lognormal-ish multiplicative jitter, e.g. 0.05 = ±~5%.
  explicit GeoLatencyModel(std::size_t num_validators,
                           double jitter_frac = 0.05);

  SimTime sample(ValidatorIndex from, ValidatorIndex to, Rng& rng) override;
  SimTime expected(ValidatorIndex from, ValidatorIndex to) const override;

  std::size_t region_of(ValidatorIndex v) const;
  static SimTime region_rtt(std::size_t a, std::size_t b);

 private:
  std::size_t n_;
  double jitter_frac_;
  // Precomputed one-way expected latency per region pair, microseconds.
  std::vector<std::vector<SimTime>> one_way_;
};

/// A square matrix of one-way site-to-site latencies, e.g. parsed from a
/// real-world WAN measurement trace (cloudping-style RTT dumps divided by 2).
struct LatencyMatrix {
  /// one_way_us[a][b] = expected one-way delay from site a to site b, in
  /// microseconds. Square; diagonal entries are the intra-site delay.
  std::vector<std::vector<SimTime>> one_way_us;

  std::size_t sites() const { return one_way_us.size(); }
};

/// Parse a latency matrix from text. Format: one row per line, entries in
/// *milliseconds* (fractions allowed), separated by whitespace and/or commas;
/// `#` starts a comment; blank lines ignored. The matrix must be square and
/// every entry non-negative. Throws InvariantViolation on malformed input.
LatencyMatrix parse_latency_matrix(const std::string& text);

/// Read `path` and parse_latency_matrix() its contents. Throws
/// InvariantViolation if the file cannot be read.
LatencyMatrix load_latency_matrix(const std::string& path);

/// Trace-driven latency: validator i lives at site i % matrix.sites(), with
/// the same clamped-normal multiplicative jitter as GeoLatencyModel. Use with
/// load_latency_matrix() to replay measured WAN conditions.
class MatrixLatencyModel final : public LatencyModel {
 public:
  explicit MatrixLatencyModel(LatencyMatrix matrix, double jitter_frac = 0.05);

  SimTime sample(ValidatorIndex from, ValidatorIndex to, Rng& rng) override;
  SimTime expected(ValidatorIndex from, ValidatorIndex to) const override;

  std::size_t site_of(ValidatorIndex v) const;

 private:
  LatencyMatrix matrix_;
  double jitter_frac_;
};

}  // namespace hammerhead::net

#include "hammerhead/dag/dag.h"

#include <algorithm>

#include "hammerhead/common/assert.h"

namespace hammerhead::dag {

Dag::Dag(const crypto::Committee& committee, IndexConfig index)
    : committee_(committee),
      arena_(committee.size()),
      index_(committee, index) {
  // One knob drives both tiers: the arena compresses cold parent slabs on
  // the same round lag the index uses for its bitmap slabs.
  arena_.set_cold_lag(index.cold_round_lag);
}

double Dag::bytes_per_vertex() const {
  const std::size_t certs = arena_.size();
  if (certs == 0) return 0.0;
  const Arena::MemoryStats& m = arena_.memory_stats();
  const std::uint64_t bytes =
      m.hot_parent_bytes + m.cold_parent_bytes +
      index_.bitmap_words() * sizeof(std::uint64_t) +
      index_.cold_bitmap_bytes();
  return static_cast<double>(bytes) / static_cast<double>(certs);
}

void Dag::serialize_content(ByteWriter& w) const {
  w.u64(static_cast<std::uint64_t>(gc_floor_));
  w.u64(arena_.size());
  if (!max_round_) return;
  // Walk [gc_floor, max_round] in round order; for_each_round_cert visits a
  // round's slots in author order, so the byte stream is a canonical
  // (round, author)-sorted encoding regardless of insertion or tiering
  // history. Cold rounds rehydrate transparently under round_slab().
  for (Round r = gc_floor_; r <= *max_round_; ++r) {
    for_each_round_cert(r, [&](const CertPtr& cert) {
      w.u64(static_cast<std::uint64_t>(cert->round()));
      w.u32(cert->author());
      w.bytes(cert->digest().bytes());
      w.u64(cert->parents().size());
      for (const Digest& p : cert->parents()) w.bytes(p.bytes());
    });
  }
}

bool Dag::parents_present(const Certificate& cert) const {
  if (cert.round() == 0) return true;
  if (cert.round() <= gc_floor_) return true;  // history pruned; accept
  for (const auto& p : cert.parents())
    if (arena_.find(p) == kInvalidVertex) return false;
  return true;
}

std::vector<Digest> Dag::missing_parents(const Certificate& cert) const {
  std::vector<Digest> missing;
  if (cert.round() == 0 || cert.round() <= gc_floor_) return missing;
  for (const auto& p : cert.parents())
    if (arena_.find(p) == kInvalidVertex) missing.push_back(p);
  return missing;
}

bool Dag::insert(CertPtr cert) {
  HH_ASSERT(cert != nullptr);
  const Round round = cert->round();
  const ValidatorIndex author = cert->author();
  const InsertOutcome outcome = try_insert(std::move(cert), nullptr);
  HH_ASSERT_MSG(outcome != InsertOutcome::Missing,
                "insert of causally incomplete vertex r" << round << " by "
                                                         << author);
  return outcome == InsertOutcome::Inserted;
}

Dag::InsertOutcome Dag::try_insert(CertPtr cert,
                                   std::vector<Digest>* missing_out) {
  HH_ASSERT(cert != nullptr);
  const Round round = cert->round();
  const ValidatorIndex author = cert->author();
  if (round < gc_floor_) return InsertOutcome::Invalid;  // pruned history
  if (author >= committee_.size()) return InsertOutcome::Invalid;
  if (arena_.find(cert->digest()) != kInvalidVertex)
    return InsertOutcome::Duplicate;
  const VertexId v = arena_.id(round, author);
  if (arena_.resolve(v) != nullptr)
    // Same digest was caught above, so an occupied slot here means a
    // conflicting certificate for this (round, author): equivocation.
    return InsertOutcome::Conflict;

  // One pass over the parent digests doubles as the causal-completeness
  // check and the once-only resolution of parent digests to handles
  // (parents may be absent only at or below the gc floor, where history
  // was pruned).
  const std::vector<Digest>& pds = cert->parents();
  std::vector<VertexId>& parents = parent_scratch_;  // reused; moved nowhere
  parents.clear();
  parents.reserve(pds.size());
  const bool allow_missing = round == 0 || round <= gc_floor_;
  bool missing = false;
  if (!pds.empty()) {
    if (cert->parent_handle_memo() != nullptr)
      ++memo_stats_.parent_memo_hits;
    else
      ++memo_stats_.parent_memo_misses;
  }
  if (const std::vector<VertexId>* memo = cert->parent_handle_memo()) {
    // Another validator already resolved these parents; handles are
    // committee-geometry and thus arena-independent. Residency + digest are
    // re-verified locally — only the digest hashing is skipped. Parents
    // overwhelmingly share one round, so the slab lookup is hoisted across
    // same-round handles.
    const VertexId n = arena_.slots_per_round();
    VertexId row_base = kInvalidVertex;
    const Arena::Slot* slab = nullptr;
    for (std::size_t i = 0; i < pds.size(); ++i) {
      const VertexId p = (*memo)[i];
      if (p < row_base || p - row_base >= n) {
        const Round pr = arena_.round_of(p);
        row_base = static_cast<VertexId>(pr) * n;
        slab = arena_.round_slab(pr);
      }
      const Arena::Slot* s = slab == nullptr ? nullptr : &slab[p - row_base];
      if (s != nullptr && s->cert != nullptr && s->digest == pds[i]) {
        parents.push_back(p);
      } else {
        missing = true;
        if (!allow_missing && missing_out != nullptr)
          missing_out->push_back(pds[i]);
      }
    }
  } else {
    for (const auto& pd : pds) {
      const VertexId p = arena_.find(pd);
      if (p == kInvalidVertex) {
        missing = true;
        if (!allow_missing && missing_out != nullptr)
          missing_out->push_back(pd);
      } else {
        parents.push_back(p);
      }
    }
    if (!missing && parents.size() == pds.size() && !pds.empty())
      cert->memoize_parent_handles(parents);
  }
  if (missing && !allow_missing) return InsertOutcome::Missing;

  if (index_.enabled())
    index_.on_insert(v, *cert, parents,
                     /*parents_complete=*/parents.size() == pds.size());
  arena_.insert(std::move(cert),
                std::span<const VertexId>(parents.data(), parents.size()));
  if (!max_round_ || round > *max_round_) max_round_ = round;
  return InsertOutcome::Inserted;
}

bool Dag::contains(const Digest& digest) const {
  return arena_.find(digest) != kInvalidVertex;
}

bool Dag::contains(Round round, ValidatorIndex author) const {
  return id_of(round, author) != kInvalidVertex;
}

CertPtr Dag::get(const Digest& digest) const {
  return cert_of(arena_.find(digest));
}

CertPtr Dag::get(Round round, ValidatorIndex author) const {
  return cert_of(id_of(round, author));
}

VertexId Dag::id_of(Round round, ValidatorIndex author) const {
  if (author >= committee_.size()) return kInvalidVertex;
  const VertexId v = arena_.id(round, author);
  return arena_.resolve(v) != nullptr ? v : kInvalidVertex;
}

CertPtr Dag::cert_of(VertexId v) const {
  const Arena::Slot* s = arena_.resolve(v);
  return s == nullptr ? nullptr : s->cert;
}

VertexId Dag::resolve_resident(const Certificate& cert) const {
  if (cert.author() >= committee_.size()) return kInvalidVertex;
  const VertexId v = arena_.id(cert.round(), cert.author());
  const Arena::Slot* s = arena_.resolve(v);
  return s != nullptr && s->cert->digest() == cert.digest() ? v
                                                            : kInvalidVertex;
}

std::vector<CertPtr> Dag::round_certs(Round round) const {
  std::vector<CertPtr> out;
  for_each_round_cert(round, [&](const CertPtr& c) { out.push_back(c); });
  return out;
}

std::size_t Dag::round_size(Round round) const {
  std::size_t count = 0;
  for_each_round_cert(round, [&](const CertPtr&) { ++count; });
  return count;
}

Stake Dag::round_stake(Round round) const {
  Stake sum = 0;
  for_each_round_cert(round, [&](const CertPtr& c) {
    sum += committee_.stake_of(c->author());
  });
  return sum;
}

std::optional<Round> Dag::max_round() const { return max_round_; }

Stake Dag::direct_support(const Certificate& anchor) const {
  if (auto s = index_.support(resolve_resident(anchor))) return *s;
  return direct_support_scan(anchor);  // anchor not in the DAG / no index
}

Stake Dag::direct_support(VertexId anchor) const {
  if (auto s = index_.support(anchor)) return *s;
  // Handle scan: count round+1 slots whose parent list references the
  // anchor (each supporting vertex once, like the digest scan).
  const Arena::Slot* slab = arena_.round_slab(round_of(anchor) + 1);
  if (slab == nullptr) return 0;
  Stake support = 0;
  for (std::size_t a = 0; a < arena_.slots_per_round(); ++a) {
    const Arena::Slot& s = slab[a];
    if (!s.cert) continue;
    if (std::find(s.parents.begin(), s.parents.end(), anchor) !=
        s.parents.end())
      support += committee_.stake_of(static_cast<ValidatorIndex>(a));
  }
  return support;
}

Stake Dag::direct_support_scan(const Certificate& anchor) const {
  const Arena::Slot* slab = arena_.round_slab(anchor.round() + 1);
  if (slab == nullptr) return 0;
  Stake support = 0;
  for (std::size_t a = 0; a < arena_.slots_per_round(); ++a)
    if (slab[a].cert && slab[a].cert->has_parent(anchor.digest()))
      support += committee_.stake_of(static_cast<ValidatorIndex>(a));
  return support;
}

bool Dag::has_path(const Certificate& from, const Certificate& to) const {
  if (from.digest() == to.digest()) return true;
  if (from.round() <= to.round()) return false;
  HH_ASSERT_MSG(to.round() >= gc_floor_,
                "path query below gc floor: " << to.round());
  // The bitmap identifies ancestors by (round, author) slot; that answer is
  // only about `to` if `to` actually occupies its slot in this DAG.
  const VertexId vt = resolve_resident(to);
  if (vt != kInvalidVertex) {
    switch (index_.path(resolve_resident(from), vt)) {
      case DagIndex::PathAnswer::Yes:
        return true;
      case DagIndex::PathAnswer::No:
        return false;
      case DagIndex::PathAnswer::Unknown:
        break;  // below the bitmap window; fall back to the scan
    }
  }
  return has_path_scan(from, to);
}

bool Dag::has_path(VertexId from, VertexId to) const {
  if (from == to) return true;
  if (round_of(from) <= round_of(to)) return false;
  HH_ASSERT_MSG(round_of(to) >= gc_floor_,
                "path query below gc floor: " << round_of(to));
  switch (index_.path(from, to)) {
    case DagIndex::PathAnswer::Yes:
      return true;
    case DagIndex::PathAnswer::No:
      return false;
    case DagIndex::PathAnswer::Unknown:
      break;
  }
  return has_path_scan(from, to);
}

bool Dag::scan_from(std::vector<VertexId>& frontier, VertexId to) const {
  const Round to_round = round_of(to);
  std::size_t head = 0;
  while (head < frontier.size()) {
    const Arena::Slot& s = *arena_.resolve(frontier[head++]);
    for (const VertexId p : s.parents) {
      if (p == to) return true;
      if (round_of(p) <= to_round) continue;
      // round > to_round >= gc floor, so p's round is resident: the visited
      // bit is tested before the slot is touched, and repeat edges skip the
      // slab access entirely.
      if (!arena_.mark_visited(p)) continue;
      const Arena::Slot* ps = arena_.resolve(p);
      if (ps == nullptr) continue;
      frontier.push_back(p);
    }
  }
  return false;
}

bool Dag::has_path_scan(VertexId from, VertexId to) const {
  if (from == to) return true;
  if (round_of(from) <= round_of(to)) return false;
  HH_ASSERT_MSG(round_of(to) >= gc_floor_,
                "path query below gc floor: " << round_of(to));
  HH_ASSERT(arena_.resolve(from) != nullptr);
  arena_.begin_traversal();
  arena_.mark_visited(from);
  std::vector<VertexId> frontier{from};
  return scan_from(frontier, to);
}

bool Dag::has_path_scan(const Certificate& from, const Certificate& to) const {
  if (from.digest() == to.digest()) return true;
  if (from.round() <= to.round()) return false;
  HH_ASSERT_MSG(to.round() >= gc_floor_,
                "path query below gc floor: " << to.round());

  arena_.begin_traversal();
  std::vector<VertexId> frontier;
  const VertexId vf = resolve_resident(from);
  if (vf != kInvalidVertex) {
    arena_.mark_visited(vf);
    frontier.push_back(vf);
  } else {
    // `from` never entered this DAG: seed from its wire parent digests. A
    // parent digest equal to `to`'s is a direct hit, as in the digest BFS.
    for (const Digest& pd : from.parents()) {
      if (pd == to.digest()) return true;
      const VertexId p = arena_.find(pd);
      if (p == kInvalidVertex || round_of(p) <= to.round()) continue;
      if (arena_.mark_visited(p)) frontier.push_back(p);
    }
  }

  const VertexId vt = resolve_resident(to);
  if (vt != kInvalidVertex) return scan_from(frontier, vt);

  // `to` is not resident (e.g. a slot impostor that never entered this DAG,
  // or history pruned at the floor): only a digest match in some resident
  // vertex's wire parent list can prove the edge.
  std::size_t head = 0;
  while (head < frontier.size()) {
    const Arena::Slot& s = *arena_.resolve(frontier[head++]);
    for (const Digest& pd : s.cert->parents()) {
      if (pd == to.digest()) return true;
      const VertexId p = arena_.find(pd);
      if (p == kInvalidVertex || round_of(p) <= to.round()) continue;
      if (arena_.mark_visited(p)) frontier.push_back(p);
    }
  }
  return false;
}

std::vector<CertPtr> Dag::collect_above(const std::vector<Digest>& roots,
                                        Round stop_at) const {
  std::vector<CertPtr> out;
  arena_.begin_traversal();
  std::vector<VertexId> stack;
  for (const Digest& d : roots) {
    const VertexId v = arena_.find(d);
    if (v == kInvalidVertex) continue;
    if (arena_.mark_visited(v)) stack.push_back(v);
  }
  while (!stack.empty()) {
    const VertexId v = stack.back();
    stack.pop_back();
    const Arena::Slot& s = *arena_.resolve(v);
    out.push_back(s.cert);
    if (round_of(v) == 0 || round_of(v) <= stop_at) continue;
    for (const VertexId p : s.parents) {
      // Resolve before marking: a parent can sit below the gc floor, where
      // the visited ring holds no row.
      const Arena::Slot* ps = arena_.resolve(p);
      if (ps == nullptr) continue;
      if (arena_.mark_visited(p)) stack.push_back(p);
    }
  }
  return out;
}

void Dag::prune_below(Round floor) {
  if (floor <= gc_floor_) return;
  arena_.prune_below(floor);
  index_.prune_below(floor);
  gc_floor_ = floor;
}

}  // namespace hammerhead::dag

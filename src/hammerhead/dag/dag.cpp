#include "hammerhead/dag/dag.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "hammerhead/common/assert.h"

namespace hammerhead::dag {

Dag::Dag(const crypto::Committee& committee, IndexConfig index)
    : committee_(committee), index_(committee, index) {}

bool Dag::parents_present(const Certificate& cert) const {
  if (cert.round() == 0) return true;
  if (cert.round() <= gc_floor_) return true;  // history pruned; accept
  for (const auto& p : cert.parents())
    if (by_digest_.count(p) == 0) return false;
  return true;
}

std::vector<Digest> Dag::missing_parents(const Certificate& cert) const {
  std::vector<Digest> missing;
  if (cert.round() == 0 || cert.round() <= gc_floor_) return missing;
  for (const auto& p : cert.parents())
    if (by_digest_.count(p) == 0) missing.push_back(p);
  return missing;
}

bool Dag::insert(CertPtr cert) {
  HH_ASSERT(cert != nullptr);
  if (cert->round() < gc_floor_) return false;  // below pruned history
  if (by_digest_.count(cert->digest()) > 0) return false;
  auto& round_map = rounds_[cert->round()];
  if (round_map.count(cert->author()) > 0) return false;  // duplicate slot

  // One pass over the parent digests doubles as the causal-completeness
  // check and, with the index enabled, the parent resolution for it
  // (parents may be absent only at or below the gc floor, where history
  // was pruned).
  std::vector<const Certificate*> parents;
  if (index_.enabled()) parents.reserve(cert->parents().size());
  bool missing = false;
  for (const auto& pd : cert->parents()) {
    auto it = by_digest_.find(pd);
    if (it == by_digest_.end())
      missing = true;
    else if (index_.enabled())
      parents.push_back(it->second.get());
  }
  HH_ASSERT_MSG(!missing || cert->round() == 0 || cert->round() <= gc_floor_,
                "insert of causally incomplete vertex r" << cert->round()
                                                         << " by "
                                                         << cert->author());

  by_digest_.emplace(cert->digest(), cert);
  round_map.emplace(cert->author(), cert);
  if (!max_round_ || cert->round() > *max_round_) max_round_ = cert->round();
  if (index_.enabled()) index_.on_insert(*cert, parents);
  return true;
}

bool Dag::contains(const Digest& digest) const {
  return by_digest_.count(digest) > 0;
}

bool Dag::contains(Round round, ValidatorIndex author) const {
  auto it = rounds_.find(round);
  return it != rounds_.end() && it->second.count(author) > 0;
}

CertPtr Dag::get(const Digest& digest) const {
  auto it = by_digest_.find(digest);
  return it == by_digest_.end() ? nullptr : it->second;
}

CertPtr Dag::get(Round round, ValidatorIndex author) const {
  auto it = rounds_.find(round);
  if (it == rounds_.end()) return nullptr;
  auto jt = it->second.find(author);
  return jt == it->second.end() ? nullptr : jt->second;
}

std::vector<CertPtr> Dag::round_certs(Round round) const {
  std::vector<CertPtr> out;
  auto it = rounds_.find(round);
  if (it == rounds_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& [author, cert] : it->second) out.push_back(cert);
  return out;
}

std::size_t Dag::round_size(Round round) const {
  auto it = rounds_.find(round);
  return it == rounds_.end() ? 0 : it->second.size();
}

Stake Dag::round_stake(Round round) const {
  auto it = rounds_.find(round);
  if (it == rounds_.end()) return 0;
  Stake sum = 0;
  for (const auto& [author, cert] : it->second)
    sum += committee_.stake_of(author);
  return sum;
}

std::optional<Round> Dag::max_round() const { return max_round_; }

Stake Dag::direct_support(const Certificate& anchor) const {
  if (auto s = index_.support(anchor)) return *s;
  return direct_support_scan(anchor);  // anchor not in the DAG / no index
}

Stake Dag::direct_support_scan(const Certificate& anchor) const {
  auto it = rounds_.find(anchor.round() + 1);
  if (it == rounds_.end()) return 0;
  Stake support = 0;
  for (const auto& [author, cert] : it->second)
    if (cert->has_parent(anchor.digest()))
      support += committee_.stake_of(author);
  return support;
}

bool Dag::has_path(const Certificate& from, const Certificate& to) const {
  if (from.digest() == to.digest()) return true;
  if (from.round() <= to.round()) return false;
  HH_ASSERT_MSG(to.round() >= gc_floor_,
                "path query below gc floor: " << to.round());
  // The bitmap identifies ancestors by (round, author) slot; that answer is
  // only about `to` if `to` actually occupies its slot in this DAG.
  auto rit = rounds_.find(to.round());
  if (rit != rounds_.end()) {
    auto ait = rit->second.find(to.author());
    if (ait != rit->second.end() && ait->second->digest() == to.digest()) {
      switch (index_.path(from, to)) {
        case DagIndex::PathAnswer::Yes:
          return true;
        case DagIndex::PathAnswer::No:
          return false;
        case DagIndex::PathAnswer::Unknown:
          break;  // below the bitmap window; fall back to the scan
      }
    }
  }
  return has_path_scan(from, to);
}

bool Dag::has_path_scan(const Certificate& from, const Certificate& to) const {
  if (from.digest() == to.digest()) return true;
  if (from.round() <= to.round()) return false;
  HH_ASSERT_MSG(to.round() >= gc_floor_,
                "path query below gc floor: " << to.round());

  // BFS following parent edges, pruned at to.round().
  std::unordered_set<Digest> visited;
  std::deque<const Certificate*> frontier;
  frontier.push_back(&from);
  visited.insert(from.digest());
  while (!frontier.empty()) {
    const Certificate* cur = frontier.front();
    frontier.pop_front();
    for (const auto& parent_digest : cur->parents()) {
      if (parent_digest == to.digest()) return true;
      if (!visited.insert(parent_digest).second) continue;
      auto it = by_digest_.find(parent_digest);
      if (it == by_digest_.end()) continue;  // pruned
      const Certificate& parent = *it->second;
      if (parent.round() > to.round()) frontier.push_back(it->second.get());
    }
  }
  return false;
}

std::vector<CertPtr> Dag::causal_history(
    const Certificate& root,
    const std::function<bool(const Certificate&)>& keep) const {
  std::vector<CertPtr> out;
  if (!keep(root)) return out;
  CertPtr root_ptr = get(root.digest());
  HH_ASSERT(root_ptr != nullptr);

  std::unordered_set<Digest> visited;
  std::deque<CertPtr> frontier;
  frontier.push_back(root_ptr);
  visited.insert(root.digest());
  while (!frontier.empty()) {
    CertPtr cur = frontier.front();
    frontier.pop_front();
    out.push_back(cur);
    for (const auto& parent_digest : cur->parents()) {
      if (!visited.insert(parent_digest).second) continue;
      auto it = by_digest_.find(parent_digest);
      if (it == by_digest_.end()) continue;  // pruned below gc floor
      if (!keep(*it->second)) continue;
      frontier.push_back(it->second);
    }
  }
  return out;
}

void Dag::prune_below(Round floor) {
  if (floor <= gc_floor_) return;
  for (Round r = gc_floor_; r < floor; ++r) {
    auto it = rounds_.find(r);
    if (it == rounds_.end()) continue;
    for (const auto& [author, cert] : it->second)
      by_digest_.erase(cert->digest());
    rounds_.erase(it);
  }
  index_.prune_below(floor);
  gc_floor_ = floor;
}

}  // namespace hammerhead::dag

#include "hammerhead/dag/types.h"

#include <algorithm>
#include <utility>

#include "hammerhead/common/assert.h"
#include "hammerhead/common/epoch.h"
#include "hammerhead/common/serde.h"
#include "hammerhead/crypto/batch_hasher.h"
#include "hammerhead/crypto/sha256.h"

namespace hammerhead::dag {

namespace {

/// Reusable digest-preimage scratch: compute_digest runs on every header
/// admission, so its serialization buffer must not hit the heap per call.
/// Thread-local because sharded execution verifies headers from worker
/// threads. Grows to the high-water preimage size and stays there.
std::span<std::uint8_t> digest_scratch(std::size_t size) {
  thread_local std::vector<std::uint8_t> scratch;
  if (scratch.size() < size) scratch.resize(size);
  return {scratch.data(), size};
}

}  // namespace

void Header::encode_for_digest(ByteWriter& w) const {
  w.str("header");
  w.u32(author);
  w.u64(round);
  w.u64(parents.size());
  for (const auto& p : parents) w.bytes(p.bytes());
  // The payload is committed by its transaction ids; enough for an injective
  // encoding in the simulation.
  if (payload) {
    w.u64(payload->txs.size());
    for (const auto& tx : payload->txs) w.u64(tx.id);
  } else {
    w.u64(0);
  }
}

std::size_t Header::digest_preimage_size() const {
  return (8 + 6)                              // str("header")
         + 4 + 8                              // author, round
         + 8 + parents.size() * (8 + Digest::kSize)
         + 8 + (payload ? payload->txs.size() * 8 : 0);
}

Digest Header::compute_digest() const {
  ByteWriter w(digest_scratch(digest_preimage_size()));
  encode_for_digest(w);
  return crypto::Sha256::hash(w.view());
}

void Header::finalize(const crypto::Keypair& author_key) {
  digest = compute_digest();
  signature = author_key.sign(kHeaderSigContext, digest);
}

bool Header::verify_content(const crypto::Committee& committee) const {
  // Relaxed atomics: concurrent verifiers compute the same value from
  // immutable fields; the atomic only removes the racing flag write.
  const std::uint8_t state = verify_state_.load(std::memory_order_relaxed);
  if (state != 0) return state == 1;
  const bool ok =
      author < committee.size() && compute_digest() == digest &&
      crypto::verify(committee.validator(author).key, kHeaderSigContext,
                     digest, signature);
  verify_state_.store(ok ? 1 : 2, std::memory_order_relaxed);
  return ok;
}

Vote Vote::make(const Header& header, ValidatorIndex voter,
                const crypto::Keypair& voter_key) {
  Vote v;
  v.header_digest = header.digest;
  v.round = header.round;
  v.header_author = header.author;
  v.voter = voter;
  v.signature = voter_key.sign(kVoteSigContext, header.digest);
  return v;
}

bool Vote::verify(const crypto::Committee& committee) const {
  if (voter >= committee.size()) return false;
  return crypto::verify(committee.validator(voter).key, kVoteSigContext,
                        header_digest, signature);
}

Stake Certificate::signer_stake(const crypto::Committee& committee) const {
  Stake sum = 0;
  for (ValidatorIndex v : signers) sum += committee.stake_of(v);
  return sum;
}

bool Certificate::verify(const crypto::Committee& committee) const {
  const std::uint8_t state = verify_state_.load(std::memory_order_relaxed);
  if (state != 0) return state == 1;
  const bool ok = [&] {
    if (!header) return false;
    if (!header->verify_content(committee)) return false;
    // Signers must be sorted, unique, and reach quorum by stake.
    if (!std::is_sorted(signers.begin(), signers.end())) return false;
    if (std::adjacent_find(signers.begin(), signers.end()) != signers.end())
      return false;
    for (ValidatorIndex v : signers)
      if (v >= committee.size()) return false;
    return signer_stake(committee) >= committee.quorum_threshold();
  }();
  verify_state_.store(ok ? 1 : 2, std::memory_order_relaxed);
  return ok;
}

void Certificate::publish_parent_memo(
    const std::vector<std::uint64_t>& ids) const {
  if (parent_memo_state_.load(std::memory_order_relaxed) != 0)
    return;  // an earlier (identical, value-canonical) publication won
  parent_memo_ = ids;
  parent_memo_state_.store(2, std::memory_order_release);
}

void Certificate::memoize_parent_handles(
    const std::vector<std::uint64_t>& ids) const {
  if (parent_memo_state_.load(std::memory_order_relaxed) != 0) return;
  if (epoch::Domain* d = epoch::current()) {
    // Inside a sharded wave: another shard may be reading this certificate
    // right now, so route the write through the domain — the driver
    // publishes it at the next batch boundary, single-threaded. The
    // shared_ptr pins the certificate across the deferral; certificates
    // not owned by a shared_ptr (stack clones in tests) cannot be shared
    // cross-thread and publish directly.
    if (CertPtr self = weak_from_this().lock()) {
      d->defer(
          [self = std::move(self), ids]() { self->publish_parent_memo(ids); });
      return;
    }
  }
  publish_parent_memo(ids);
}

void Certificate::publish_ancestor_memo(
    std::uint64_t lo, std::uint32_t words_per_round,
    const std::vector<std::uint64_t>& words) const {
  if (ancestor_memo_state_.load(std::memory_order_relaxed) != 0) return;
  ancestor_memo_lo_ = lo;
  ancestor_memo_wpr_ = words_per_round;
  ancestor_memo_ = words;
  ancestor_memo_state_.store(2, std::memory_order_release);
}

void Certificate::memoize_ancestor_bitmap(
    std::uint64_t lo, std::uint32_t words_per_round,
    const std::vector<std::uint64_t>& words) const {
  if (ancestor_memo_state_.load(std::memory_order_relaxed) != 0) return;
  if (epoch::Domain* d = epoch::current()) {
    if (CertPtr self = weak_from_this().lock()) {
      d->defer([self = std::move(self), lo, words_per_round, words]() {
        self->publish_ancestor_memo(lo, words_per_round, words);
      });
      return;
    }
  }
  publish_ancestor_memo(lo, words_per_round, words);
}

bool Certificate::has_parent(const Digest& d) const {
  const auto& parents = header->parents;
  const auto it = std::lower_bound(
      parent_order_.begin(), parent_order_.end(), d,
      [&](std::uint16_t i, const Digest& key) { return parents[i] < key; });
  return it != parent_order_.end() && parents[*it] == d;
}

CertPtr Certificate::make(HeaderPtr header,
                          std::vector<ValidatorIndex> signers) {
  HH_ASSERT(header != nullptr);
  auto cert = std::make_shared<Certificate>();
  std::sort(signers.begin(), signers.end());
  signers.erase(std::unique(signers.begin(), signers.end()), signers.end());
  cert->header = std::move(header);
  cert->signers = std::move(signers);
  const auto& parents = cert->header->parents;
  HH_ASSERT_MSG(parents.size() <= UINT16_MAX, "parent list too long");
  cert->parent_order_.resize(parents.size());
  for (std::size_t i = 0; i < parents.size(); ++i)
    cert->parent_order_[i] = static_cast<std::uint16_t>(i);
  std::sort(cert->parent_order_.begin(), cert->parent_order_.end(),
            [&](std::uint16_t a, std::uint16_t b) {
              return parents[a] < parents[b];
            });
  return cert;
}

std::size_t batch_verify(std::span<const CertPtr> certs,
                         const crypto::Committee& committee) {
  // Reused across calls (and thread-local for sharded workers): in steady
  // state the batch pass allocates nothing.
  struct Scratch {
    crypto::BatchHasher hasher;
    std::vector<std::uint8_t> arena;
    std::vector<const Header*> pending;
    std::vector<Digest> digests;
  };
  thread_local Scratch s;

  // Collect headers whose content memo is still cold; the common catch-up
  // case is "all of them", the common steady-state case is "none" (already
  // seen via broadcast).
  s.pending.clear();
  std::size_t preimage_bytes = 0;
  for (const CertPtr& cert : certs) {
    if (!cert || !cert->header) continue;
    const Header& h = *cert->header;
    if (!h.content_check_pending()) continue;
    s.pending.push_back(&h);
    preimage_bytes += h.digest_preimage_size();
  }

  if (!s.pending.empty()) {
    // Serialize every preimage into one arena, then hash all lanes per
    // dispatch (8-wide under AVX2 multi-buffer, per-lane SHA-NI otherwise).
    if (s.arena.size() < preimage_bytes) s.arena.resize(preimage_bytes);
    std::size_t offset = 0;
    for (const Header* h : s.pending) {
      const std::size_t size = h->digest_preimage_size();
      ByteWriter w(std::span<std::uint8_t>(s.arena.data() + offset, size));
      h->encode_for_digest(w);
      s.hasher.add(w.view());
      offset += size;
    }
    if (s.digests.size() < s.pending.size())
      s.digests.resize(s.pending.size());
    s.hasher.run(s.digests.data());

    for (std::size_t i = 0; i < s.pending.size(); ++i) {
      const Header& h = *s.pending[i];
      const bool ok =
          h.author < committee.size() && s.digests[i] == h.digest &&
          crypto::verify(committee.validator(h.author).key, kHeaderSigContext,
                         h.digest, h.signature);
      h.note_content_check(ok);
    }
  }

  // The per-cert verify() calls are now header-memo hits; they still run the
  // signer-set checks (sortedness, quorum stake) and warm the certificate
  // memo itself.
  std::size_t valid = 0;
  for (const CertPtr& cert : certs)
    if (cert && cert->verify(committee)) ++valid;
  return valid;
}

}  // namespace hammerhead::dag

#include "hammerhead/dag/types.h"

#include <algorithm>

#include "hammerhead/common/assert.h"
#include "hammerhead/common/serde.h"
#include "hammerhead/crypto/sha256.h"

namespace hammerhead::dag {

Digest Header::compute_digest() const {
  ByteWriter w;
  w.str("header");
  w.u32(author);
  w.u64(round);
  w.u64(parents.size());
  for (const auto& p : parents) w.bytes(p.bytes());
  // The payload is committed by its transaction ids; enough for an injective
  // encoding in the simulation.
  if (payload) {
    w.u64(payload->txs.size());
    for (const auto& tx : payload->txs) w.u64(tx.id);
  } else {
    w.u64(0);
  }
  return crypto::Sha256::hash(w.data());
}

void Header::finalize(const crypto::Keypair& author_key) {
  digest = compute_digest();
  signature = author_key.sign(kHeaderSigContext, digest);
}

bool Header::verify_content(const crypto::Committee& committee) const {
  // Relaxed atomics: concurrent verifiers compute the same value from
  // immutable fields; the atomic only removes the racing flag write.
  const std::uint8_t state = verify_state_.load(std::memory_order_relaxed);
  if (state != 0) return state == 1;
  const bool ok =
      author < committee.size() && compute_digest() == digest &&
      crypto::verify(committee.validator(author).key, kHeaderSigContext,
                     digest, signature);
  verify_state_.store(ok ? 1 : 2, std::memory_order_relaxed);
  return ok;
}

Vote Vote::make(const Header& header, ValidatorIndex voter,
                const crypto::Keypair& voter_key) {
  Vote v;
  v.header_digest = header.digest;
  v.round = header.round;
  v.header_author = header.author;
  v.voter = voter;
  v.signature = voter_key.sign(kVoteSigContext, header.digest);
  return v;
}

bool Vote::verify(const crypto::Committee& committee) const {
  if (voter >= committee.size()) return false;
  return crypto::verify(committee.validator(voter).key, kVoteSigContext,
                        header_digest, signature);
}

Stake Certificate::signer_stake(const crypto::Committee& committee) const {
  Stake sum = 0;
  for (ValidatorIndex v : signers) sum += committee.stake_of(v);
  return sum;
}

bool Certificate::verify(const crypto::Committee& committee) const {
  const std::uint8_t state = verify_state_.load(std::memory_order_relaxed);
  if (state != 0) return state == 1;
  const bool ok = [&] {
    if (!header) return false;
    if (!header->verify_content(committee)) return false;
    // Signers must be sorted, unique, and reach quorum by stake.
    if (!std::is_sorted(signers.begin(), signers.end())) return false;
    if (std::adjacent_find(signers.begin(), signers.end()) != signers.end())
      return false;
    for (ValidatorIndex v : signers)
      if (v >= committee.size()) return false;
    return signer_stake(committee) >= committee.quorum_threshold();
  }();
  verify_state_.store(ok ? 1 : 2, std::memory_order_relaxed);
  return ok;
}

bool Certificate::has_parent(const Digest& d) const {
  const auto& parents = header->parents;
  const auto it = std::lower_bound(
      parent_order_.begin(), parent_order_.end(), d,
      [&](std::uint16_t i, const Digest& key) { return parents[i] < key; });
  return it != parent_order_.end() && parents[*it] == d;
}

CertPtr Certificate::make(HeaderPtr header,
                          std::vector<ValidatorIndex> signers) {
  HH_ASSERT(header != nullptr);
  auto cert = std::make_shared<Certificate>();
  std::sort(signers.begin(), signers.end());
  signers.erase(std::unique(signers.begin(), signers.end()), signers.end());
  cert->header = std::move(header);
  cert->signers = std::move(signers);
  const auto& parents = cert->header->parents;
  HH_ASSERT_MSG(parents.size() <= UINT16_MAX, "parent list too long");
  cert->parent_order_.resize(parents.size());
  for (std::size_t i = 0; i < parents.size(); ++i)
    cert->parent_order_[i] = static_cast<std::uint16_t>(i);
  std::sort(cert->parent_order_.begin(), cert->parent_order_.end(),
            [&](std::uint16_t a, std::uint16_t b) {
              return parents[a] < parents[b];
            });
  return cert;
}

}  // namespace hammerhead::dag

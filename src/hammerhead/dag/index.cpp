#include "hammerhead/dag/index.h"

#include <algorithm>
#include <cstring>

#include "hammerhead/common/assert.h"
#include "hammerhead/common/simd.h"
#include "hammerhead/common/varint.h"

namespace hammerhead::dag {

DagIndex::DagIndex(const crypto::Committee& committee, IndexConfig config)
    : committee_(committee),
      config_(config),
      n_(committee.size()),
      words_per_round_((committee.size() + 63) / 64),
      entries_(n_),
      referenced_(words_per_round_) {
  HH_ASSERT_MSG(config_.ancestor_window >= 1, "ancestor_window must be >= 1");
}

const DagIndex::Entry* DagIndex::find(VertexId v) const {
  if (v == kInvalidVertex) return nullptr;
  const Round r = round_of(v);
  if (r < tier_cursor_) maybe_rehydrate(r);
  const Entry* row = entries_.find_round(r);
  if (row == nullptr) return nullptr;
  const Entry& e = row[author_of(v)];
  return e.present ? &e : nullptr;
}

void DagIndex::on_insert(VertexId id, const Certificate& cert,
                         const std::vector<VertexId>& parents,
                         bool parents_complete) {
  if (!config_.enabled) return;
  ++insert_seq_;
  const Round round = cert.round();
  // Straggler into a cold round: restore it so the round stays wholly hot.
  if (round < tier_cursor_) maybe_rehydrate(round);
  Entry& e = entries_.ensure_round(round)[author_of(id)];
  HH_ASSERT_MSG(!e.present, "slot (" << round << ", " << author_of(id)
                                     << ") indexed twice");
  e.present = true;
  e.lo = round > config_.ancestor_window ? round - config_.ancestor_window
                                         : 0;

  if (round > 0) {
    // Cross-validator bitmap sharing: with complete parents and the same
    // window geometry, this vertex's ancestor bitmap is identical in every
    // index, so the first computation is memoized on the (shared) cert.
    // Consuming is gated like publishing: complete parents and a gc floor
    // at/below the window base, so the canonical bitmap applies here too.
    const std::vector<std::uint64_t>* shared =
        parents_complete && floor_ <= e.lo
            ? cert.ancestor_bitmap_memo(e.lo, words_per_round_)
            : nullptr;
    if (shared != nullptr)
      ++stats_.ancestor_memo_hits;
    else
      ++stats_.ancestor_memo_misses;
    if (e.words.capacity() == 0 && !words_pool_.empty()) {
      e.words = std::move(words_pool_.back());  // recycled buffer
      words_pool_.pop_back();
    }
    if (shared != nullptr)
      e.words.assign(shared->begin(), shared->end());
    else
      e.words.assign((round - e.lo) * words_per_round_, 0);

    // Pass 1, per parent: direct edge bit, referenced-slot mark and
    // direct-support accumulation. Parents overwhelmingly sit in one round
    // (round - 1); hoist the row pointers across same-round parents instead
    // of a ring lookup per edge bit (tens of millions of calls).
    parent_entries_.clear();
    Round edge_round = Round(-1);
    // edge_round * n_: decodes authors by subtraction (no div per edge).
    // Starts at kInvalidVertex so the first parent always resolves its row.
    VertexId row_base = kInvalidVertex;
    std::uint64_t* ref_row = nullptr;
    std::uint64_t* dst_row = nullptr;
    Entry* parent_row = nullptr;
    for (const VertexId pid : parents) {
      if (pid < row_base || pid - row_base >= n_) {
        const Round pr = round_of(pid);
        edge_round = pr;
        row_base = static_cast<VertexId>(pr) * n_;
        const bool in_window = pr >= e.lo && pr < round;
        ref_row = in_window ? referenced_.ensure_round(pr) : nullptr;
        dst_row =
            in_window ? &e.words[(pr - e.lo) * words_per_round_] : nullptr;
        if (pr < tier_cursor_) maybe_rehydrate(pr);  // straggler's parents
        parent_row = entries_.find_round(pr);
      }
      const Round pr = edge_round;
      const ValidatorIndex pa = static_cast<ValidatorIndex>(pid - row_base);
      // Direct edge: the parent's own slot bit (clamped to the window).
      if (dst_row != nullptr) {
        const std::uint64_t bit = std::uint64_t{1} << (pa % 64);
        dst_row[pa / 64] |= bit;
        ref_row[pa / 64] |= bit;
      }

      if (parent_row == nullptr) continue;
      Entry& pe = parent_row[pa];
      if (!pe.present) continue;
      // The union pass only runs on a shared-bitmap miss.
      if (pr > 0 && shared == nullptr) parent_entries_.emplace_back(pr, &pe);

      // Direct-support accumulation: a round r+1 vertex listing the parent
      // is a "vote" for it in Bullshark's commit rule. Non-adjacent parent
      // references (never produced by the protocol) are not votes, and a
      // vertex listing the same parent digest twice is one vote — the scan
      // counts supporting vertices, and the index must match it exactly.
      if (round == pr + 1 && pe.last_support_seq != insert_seq_) {
        pe.last_support_seq = insert_seq_;
        pe.support += committee_.stake_of(cert.author());
        if (!pe.crossed && pe.support >= committee_.validity_threshold()) {
          pe.crossed = true;
          ++crossings_;
          supported_rounds_.insert(pr);
        }
      }
    }

    // Pass 2, per round bottom-up: union the parents' ancestor rows into
    // ours, stopping a round as soon as it saturates its referenced-slot
    // mask (every parent row is a subset of the mask, so nothing further
    // can change it). In a well-connected DAG one or two parents saturate a
    // round, so this does O(window) row unions instead of
    // O(window x parents). Skipped entirely on a shared-bitmap hit.
    // Row ops run through the dispatched SIMD kernels (common/simd.h): the
    // saturation test is one bitmap_equals sweep and each parent union is a
    // fused or+equals pass, so a 16-word n=1000 row is four 256-bit lane
    // operations instead of sixteen scalar word loops.
    for (Round r = e.lo; shared == nullptr && r + 1 < round; ++r) {
      std::uint64_t* mine = &e.words[(r - e.lo) * words_per_round_];
      const std::uint64_t* ref = referenced_.find_round(r);
      if (ref != nullptr && simd::bitmap_equals(mine, ref, words_per_round_))
        continue;  // direct edges alone already cover it
      for (const auto& [pr, pe] : parent_entries_) {
        if (r >= pr || r < pe->lo) continue;  // outside the parent's window
        const std::uint64_t* src =
            &pe->words[(r - pe->lo) * words_per_round_];
        if (ref != nullptr) {
          if (simd::bitmap_or_into_equals(mine, src, ref, words_per_round_))
            break;  // saturated the referenced-slot mask
        } else {
          simd::bitmap_or_into(mine, src, words_per_round_);
        }
      }
    }
    // Share the freshly computed bitmap when it is canonical: every parent
    // resolved, and our gc floor at/below the window base (a truncated
    // ancestry near the floor must not be published).
    if (shared == nullptr && parents_complete && floor_ <= e.lo)
      cert.memoize_ancestor_bitmap(e.lo, words_per_round_, e.words);
  }
  ++entry_count_;
  total_words_ += e.words.size();
  if (config_.cold_round_lag != 0 && round > max_round_seen_) {
    max_round_seen_ = round;
    while (tier_cursor_ + config_.cold_round_lag < round)
      compress_round(tier_cursor_++);
  }
}

void DagIndex::compress_round(Round r) {
  Entry* row = entries_.find_round(r);
  if (row == nullptr) return;
  std::uint64_t occupied = 0;
  for (std::size_t a = 0; a < n_; ++a)
    if (row[a].present && !row[a].words.empty()) ++occupied;
  if (occupied == 0) return;
  // Per entry: author, word count, then u64 RLE runs (varint run length +
  // raw value). Ancestor rows of settled rounds are dominated by all-ones
  // and all-zeros words, which collapse to a few bytes each.
  std::vector<std::uint8_t> blob;
  put_varint(blob, occupied);
  for (std::size_t a = 0; a < n_; ++a) {
    Entry& e = row[a];
    if (!e.present || e.words.empty()) continue;
    put_varint(blob, a);
    put_varint(blob, e.words.size());
    for (std::size_t w = 0; w < e.words.size();) {
      const std::uint64_t value = e.words[w];
      std::size_t run = 1;
      while (w + run < e.words.size() && e.words[w + run] == value) ++run;
      put_varint(blob, run);
      std::uint8_t raw[sizeof(value)];
      std::memcpy(raw, &value, sizeof(value));
      blob.insert(blob.end(), raw, raw + sizeof(value));
      w += run;
    }
    total_words_ -= e.words.size();
    if (e.words.capacity() > 0 && words_pool_.size() < 16384) {
      words_pool_.push_back(std::move(e.words));
      e.words = std::vector<std::uint64_t>{};
    } else {
      e.words.clear();
      e.words.shrink_to_fit();
    }
  }
  blob.shrink_to_fit();
  cold_bitmap_bytes_ += blob.size();
  cold_rounds_.emplace(r, std::move(blob));
}

void DagIndex::maybe_rehydrate(Round r) const {
  const auto it = cold_rounds_.find(r);
  if (it == cold_rounds_.end()) return;
  // Representation-only mutation (see Arena::maybe_rehydrate).
  const_cast<DagIndex*>(this)->rehydrate_round(r, it->second);
  cold_bitmap_bytes_ -= it->second.size();
  cold_rounds_.erase(it);
}

void DagIndex::rehydrate_round(Round r, const std::vector<std::uint8_t>& blob) {
  Entry* row = entries_.find_round(r);
  HH_ASSERT_MSG(row != nullptr, "compressed index round " << r
                                                          << " not resident");
  const std::uint8_t* p = blob.data();
  std::uint64_t occupied = 0;
  p = get_varint(p, occupied);
  for (std::uint64_t i = 0; i < occupied; ++i) {
    std::uint64_t author = 0;
    std::uint64_t count = 0;
    p = get_varint(p, author);
    p = get_varint(p, count);
    Entry& e = row[author];
    if (e.words.capacity() == 0 && !words_pool_.empty()) {
      e.words = std::move(words_pool_.back());
      words_pool_.pop_back();
    }
    e.words.clear();
    e.words.reserve(count);
    while (e.words.size() < count) {
      std::uint64_t run = 0;
      p = get_varint(p, run);
      std::uint64_t value = 0;
      std::memcpy(&value, p, sizeof(value));
      p += sizeof(value);
      e.words.insert(e.words.end(), run, value);
    }
    total_words_ += count;
  }
  HH_ASSERT(p == blob.data() + blob.size());
}

void DagIndex::prune_below(Round floor) {
  floor_ = std::max(floor_, floor);
  entries_.prune_below(floor, [this](Round, Entry* row) {
    for (std::size_t a = 0; a < n_; ++a) {
      if (!row[a].present) continue;
      --entry_count_;
      total_words_ -= row[a].words.size();
      // Donate the bitmap buffer back before the ring destroys the entry.
      if (row[a].words.capacity() > 0 && words_pool_.size() < 16384)
        words_pool_.push_back(std::move(row[a].words));
    }
  });
  referenced_.prune_below(floor, [](Round, std::uint64_t*) {});
  for (auto it = cold_rounds_.begin(); it != cold_rounds_.end();) {
    if (it->first < floor) {
      cold_bitmap_bytes_ -= it->second.size();
      it = cold_rounds_.erase(it);
    } else {
      ++it;
    }
  }
  tier_cursor_ = std::max(tier_cursor_, floor);
  supported_rounds_.erase(supported_rounds_.begin(),
                          supported_rounds_.lower_bound(floor));
}

DagIndex::PathAnswer DagIndex::path(VertexId from, VertexId to) const {
  const Entry* e = find(from);
  if (e == nullptr) {
    ++stats_.path_fallbacks;
    return PathAnswer::Unknown;
  }
  const Round from_round = round_of(from);
  const Round to_round = round_of(to);
  if (to_round >= from_round) return PathAnswer::No;  // edges point down only
  if (to_round < e->lo) {
    ++stats_.path_fallbacks;
    return PathAnswer::Unknown;  // below the bitmap window
  }
  ++stats_.path_hits;
  const ValidatorIndex ta = author_of(to);
  const std::size_t idx =
      (to_round - e->lo) * words_per_round_ + ta / 64;
  const bool bit = (e->words[idx] >> (ta % 64)) & 1;
  return bit ? PathAnswer::Yes : PathAnswer::No;
}

std::optional<Stake> DagIndex::support(VertexId vertex) const {
  const Entry* e = find(vertex);
  if (e == nullptr) {
    ++stats_.support_fallbacks;
    return std::nullopt;
  }
  ++stats_.support_hits;
  return e->support;
}

}  // namespace hammerhead::dag

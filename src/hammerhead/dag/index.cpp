#include "hammerhead/dag/index.h"

#include <algorithm>

#include "hammerhead/common/assert.h"

namespace hammerhead::dag {

DagIndex::DagIndex(const crypto::Committee& committee, IndexConfig config)
    : committee_(committee),
      config_(config),
      n_(committee.size()),
      words_per_round_((committee.size() + 63) / 64),
      entries_(n_),
      referenced_(words_per_round_) {
  HH_ASSERT_MSG(config_.ancestor_window >= 1, "ancestor_window must be >= 1");
}

const DagIndex::Entry* DagIndex::find(VertexId v) const {
  if (v == kInvalidVertex) return nullptr;
  const Entry* row = entries_.find_round(round_of(v));
  if (row == nullptr) return nullptr;
  const Entry& e = row[author_of(v)];
  return e.present ? &e : nullptr;
}

void DagIndex::on_insert(VertexId id, const Certificate& cert,
                         const std::vector<VertexId>& parents,
                         bool parents_complete) {
  if (!config_.enabled) return;
  ++insert_seq_;
  const Round round = cert.round();
  Entry& e = entries_.ensure_round(round)[author_of(id)];
  HH_ASSERT_MSG(!e.present, "slot (" << round << ", " << author_of(id)
                                     << ") indexed twice");
  e.present = true;
  e.lo = round > config_.ancestor_window ? round - config_.ancestor_window
                                         : 0;

  if (round > 0) {
    // Cross-validator bitmap sharing: with complete parents and the same
    // window geometry, this vertex's ancestor bitmap is identical in every
    // index, so the first computation is memoized on the (shared) cert.
    // Consuming is gated like publishing: complete parents and a gc floor
    // at/below the window base, so the canonical bitmap applies here too.
    const std::vector<std::uint64_t>* shared =
        parents_complete && floor_ <= e.lo
            ? cert.ancestor_bitmap_memo(e.lo, words_per_round_)
            : nullptr;
    if (e.words.capacity() == 0 && !words_pool_.empty()) {
      e.words = std::move(words_pool_.back());  // recycled buffer
      words_pool_.pop_back();
    }
    if (shared != nullptr)
      e.words.assign(shared->begin(), shared->end());
    else
      e.words.assign((round - e.lo) * words_per_round_, 0);

    // Pass 1, per parent: direct edge bit, referenced-slot mark and
    // direct-support accumulation. Parents overwhelmingly sit in one round
    // (round - 1); hoist the row pointers across same-round parents instead
    // of a ring lookup per edge bit (tens of millions of calls).
    parent_entries_.clear();
    Round edge_round = Round(-1);
    // edge_round * n_: decodes authors by subtraction (no div per edge).
    // Starts at kInvalidVertex so the first parent always resolves its row.
    VertexId row_base = kInvalidVertex;
    std::uint64_t* ref_row = nullptr;
    std::uint64_t* dst_row = nullptr;
    Entry* parent_row = nullptr;
    for (const VertexId pid : parents) {
      if (pid < row_base || pid - row_base >= n_) {
        const Round pr = round_of(pid);
        edge_round = pr;
        row_base = static_cast<VertexId>(pr) * n_;
        const bool in_window = pr >= e.lo && pr < round;
        ref_row = in_window ? referenced_.ensure_round(pr) : nullptr;
        dst_row =
            in_window ? &e.words[(pr - e.lo) * words_per_round_] : nullptr;
        parent_row = entries_.find_round(pr);
      }
      const Round pr = edge_round;
      const ValidatorIndex pa = static_cast<ValidatorIndex>(pid - row_base);
      // Direct edge: the parent's own slot bit (clamped to the window).
      if (dst_row != nullptr) {
        const std::uint64_t bit = std::uint64_t{1} << (pa % 64);
        dst_row[pa / 64] |= bit;
        ref_row[pa / 64] |= bit;
      }

      if (parent_row == nullptr) continue;
      Entry& pe = parent_row[pa];
      if (!pe.present) continue;
      // The union pass only runs on a shared-bitmap miss.
      if (pr > 0 && shared == nullptr) parent_entries_.emplace_back(pr, &pe);

      // Direct-support accumulation: a round r+1 vertex listing the parent
      // is a "vote" for it in Bullshark's commit rule. Non-adjacent parent
      // references (never produced by the protocol) are not votes, and a
      // vertex listing the same parent digest twice is one vote — the scan
      // counts supporting vertices, and the index must match it exactly.
      if (round == pr + 1 && pe.last_support_seq != insert_seq_) {
        pe.last_support_seq = insert_seq_;
        pe.support += committee_.stake_of(cert.author());
        if (!pe.crossed && pe.support >= committee_.validity_threshold()) {
          pe.crossed = true;
          ++crossings_;
          supported_rounds_.insert(pr);
        }
      }
    }

    // Pass 2, per round bottom-up: union the parents' ancestor rows into
    // ours, stopping a round as soon as it saturates its referenced-slot
    // mask (every parent row is a subset of the mask, so nothing further
    // can change it). In a well-connected DAG one or two parents saturate a
    // round, so this does O(window) row unions instead of
    // O(window x parents). Skipped entirely on a shared-bitmap hit.
    for (Round r = e.lo; shared == nullptr && r + 1 < round; ++r) {
      std::uint64_t* mine = &e.words[(r - e.lo) * words_per_round_];
      const std::uint64_t* ref = referenced_.find_round(r);
      const auto saturated = [&] {
        if (ref == nullptr) return false;
        for (std::size_t w = 0; w < words_per_round_; ++w)
          if (mine[w] != ref[w]) return false;
        return true;
      };
      if (saturated()) continue;  // direct edges alone already cover it
      for (const auto& [pr, pe] : parent_entries_) {
        if (r >= pr || r < pe->lo) continue;  // outside the parent's window
        const std::uint64_t* src =
            &pe->words[(r - pe->lo) * words_per_round_];
        for (std::size_t w = 0; w < words_per_round_; ++w) mine[w] |= src[w];
        if (saturated()) break;
      }
    }
    // Share the freshly computed bitmap when it is canonical: every parent
    // resolved, and our gc floor at/below the window base (a truncated
    // ancestry near the floor must not be published).
    if (shared == nullptr && parents_complete && floor_ <= e.lo)
      cert.memoize_ancestor_bitmap(e.lo, words_per_round_, e.words);
  }
  ++entry_count_;
  total_words_ += e.words.size();
}

void DagIndex::prune_below(Round floor) {
  floor_ = std::max(floor_, floor);
  entries_.prune_below(floor, [this](Round, Entry* row) {
    for (std::size_t a = 0; a < n_; ++a) {
      if (!row[a].present) continue;
      --entry_count_;
      total_words_ -= row[a].words.size();
      // Donate the bitmap buffer back before the ring destroys the entry.
      if (row[a].words.capacity() > 0 && words_pool_.size() < 16384)
        words_pool_.push_back(std::move(row[a].words));
    }
  });
  referenced_.prune_below(floor, [](Round, std::uint64_t*) {});
  supported_rounds_.erase(supported_rounds_.begin(),
                          supported_rounds_.lower_bound(floor));
}

DagIndex::PathAnswer DagIndex::path(VertexId from, VertexId to) const {
  const Entry* e = find(from);
  if (e == nullptr) {
    ++stats_.path_fallbacks;
    return PathAnswer::Unknown;
  }
  const Round from_round = round_of(from);
  const Round to_round = round_of(to);
  if (to_round >= from_round) return PathAnswer::No;  // edges point down only
  if (to_round < e->lo) {
    ++stats_.path_fallbacks;
    return PathAnswer::Unknown;  // below the bitmap window
  }
  ++stats_.path_hits;
  const ValidatorIndex ta = author_of(to);
  const std::size_t idx =
      (to_round - e->lo) * words_per_round_ + ta / 64;
  const bool bit = (e->words[idx] >> (ta % 64)) & 1;
  return bit ? PathAnswer::Yes : PathAnswer::No;
}

std::optional<Stake> DagIndex::support(VertexId vertex) const {
  const Entry* e = find(vertex);
  if (e == nullptr) {
    ++stats_.support_fallbacks;
    return std::nullopt;
  }
  ++stats_.support_hits;
  return e->support;
}

}  // namespace hammerhead::dag

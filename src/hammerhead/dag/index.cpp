#include "hammerhead/dag/index.h"

#include <algorithm>

#include "hammerhead/common/assert.h"

namespace hammerhead::dag {

DagIndex::DagIndex(const crypto::Committee& committee, IndexConfig config)
    : committee_(committee),
      config_(config),
      words_per_round_((committee.size() + 63) / 64) {
  HH_ASSERT_MSG(config_.ancestor_window >= 1, "ancestor_window must be >= 1");
}

const DagIndex::Entry* DagIndex::find(const Certificate& cert) const {
  if (cert.author() >= committee_.size()) return nullptr;  // malformed query
  auto it = rounds_.find(cert.round());
  if (it == rounds_.end()) return nullptr;
  const Entry& e = it->second[cert.author()];
  if (!e.present || e.digest != cert.digest()) return nullptr;
  return &e;
}

void DagIndex::set_edge_bit(Entry& e, Round round, ValidatorIndex author) {
  if (round < e.lo || round >= e.round) return;  // outside the window
  const std::size_t idx =
      (round - e.lo) * words_per_round_ + author / 64;
  const std::uint64_t bit = std::uint64_t{1} << (author % 64);
  e.words[idx] |= bit;
  // Parents overwhelmingly share one round; avoid a hash lookup per edge.
  if (round != ref_cache_round_ || ref_cache_ == nullptr) {
    auto [rit, fresh] = referenced_.try_emplace(round);
    if (fresh) rit->second.assign(words_per_round_, 0);
    ref_cache_round_ = round;
    ref_cache_ = rit->second.data();
  }
  ref_cache_[author / 64] |= bit;
}

void DagIndex::on_insert(const Certificate& cert,
                         const std::vector<const Certificate*>& parents) {
  if (!config_.enabled) return;
  ++insert_seq_;
  auto [rit, fresh] = rounds_.try_emplace(cert.round());
  if (fresh) rit->second.resize(committee_.size());
  HH_ASSERT_MSG(cert.author() < committee_.size(),
                "author out of range: " << cert.author());
  Entry& e = rit->second[cert.author()];
  HH_ASSERT_MSG(!e.present, "slot (" << cert.round() << ", " << cert.author()
                                     << ") indexed twice");
  e.present = true;
  e.digest = cert.digest();
  e.round = cert.round();
  e.lo = cert.round() > config_.ancestor_window
             ? cert.round() - config_.ancestor_window
             : 0;

  // Per-parent slot lookup cache (parents overwhelmingly share one round).
  Round parent_round = 0;
  std::vector<Entry>* parent_slots = nullptr;

  if (cert.round() > 0) {
    e.words.assign((cert.round() - e.lo) * words_per_round_, 0);
    // Rounds in [e.lo, sat) already equal their referenced-slot mask —
    // saturated: no parent can contribute there (a parent's ancestors at
    // that round all carry recorded child edges). The sweep walks
    // consecutive rounds, so keep a persistent iterator into the ordered
    // mask map (std::map inserts never invalidate it).
    Round sat = e.lo;
    auto ref_it = referenced_.lower_bound(e.lo);
    const auto saturated = [&](Round r) {
      while (ref_it != referenced_.end() && ref_it->first < r) ++ref_it;
      if (ref_it == referenced_.end() || ref_it->first != r) return false;
      const std::uint64_t* ref = ref_it->second.data();
      const std::uint64_t* mine = &e.words[(r - e.lo) * words_per_round_];
      for (std::size_t w = 0; w < words_per_round_; ++w)
        if (mine[w] != ref[w]) return false;
      return true;
    };
    for (const Certificate* p : parents) {
      // Direct edge: the parent's own slot bit.
      set_edge_bit(e, p->round(), p->author());

      if (parent_slots == nullptr || p->round() != parent_round) {
        auto pit = rounds_.find(p->round());
        parent_slots = pit == rounds_.end() ? nullptr : &pit->second;
        parent_round = p->round();
      }
      if (parent_slots == nullptr) continue;
      Entry& pe = (*parent_slots)[p->author()];
      if (!pe.present || pe.digest != p->digest()) continue;

      // Union the parent's ancestors over the still-unsaturated part of
      // the overlapping window. Parents sit at lower rounds, so their
      // window reaches at least as far down as ours: the child's bitmap
      // stays complete within [e.lo, round-1].
      if (pe.round > 0) {
        const Round lo = std::max(sat, pe.lo);
        const Round hi = std::min(e.round, pe.round);  // exclusive
        for (Round r = lo; r < hi; ++r) {
          std::uint64_t* dst = &e.words[(r - e.lo) * words_per_round_];
          const std::uint64_t* src = &pe.words[(r - pe.lo) * words_per_round_];
          for (std::size_t w = 0; w < words_per_round_; ++w) dst[w] |= src[w];
        }
        while (sat + 1 < e.round && saturated(sat)) ++sat;
      }
      // Direct-support accumulation: a round r+1 vertex listing the parent
      // is a "vote" for it in Bullshark's commit rule. Non-adjacent parent
      // references (never produced by the protocol) are not votes, and a
      // vertex listing the same parent digest twice is one vote — the scan
      // counts supporting vertices, and the index must match it exactly.
      if (cert.round() == pe.round + 1 && pe.last_support_seq != insert_seq_) {
        pe.last_support_seq = insert_seq_;
        pe.support += committee_.stake_of(cert.author());
        if (!pe.crossed && pe.support >= committee_.validity_threshold()) {
          pe.crossed = true;
          ++crossings_;
          supported_rounds_.insert(pe.round);
        }
      }
    }
  }
  ++entry_count_;
  total_words_ += e.words.size();
}

void DagIndex::prune_below(Round floor) {
  for (auto it = rounds_.begin(); it != rounds_.end();) {
    if (it->first >= floor) {
      ++it;
      continue;
    }
    for (const Entry& e : it->second) {
      if (!e.present) continue;
      --entry_count_;
      total_words_ -= e.words.size();
    }
    it = rounds_.erase(it);
  }
  supported_rounds_.erase(supported_rounds_.begin(),
                          supported_rounds_.lower_bound(floor));
  for (auto it = referenced_.begin(); it != referenced_.end();)
    it = it->first < floor ? referenced_.erase(it) : std::next(it);
  ref_cache_ = nullptr;  // may point into an erased round
}

DagIndex::PathAnswer DagIndex::path(const Certificate& from,
                                    const Certificate& to) const {
  const Entry* e = find(from);
  if (e == nullptr) {
    ++stats_.path_fallbacks;
    return PathAnswer::Unknown;
  }
  if (to.round() >= e->round) return PathAnswer::No;  // edges point down only
  if (to.round() < e->lo || to.author() >= committee_.size()) {
    ++stats_.path_fallbacks;
    return PathAnswer::Unknown;  // below the bitmap window
  }
  ++stats_.path_hits;
  const std::size_t idx =
      (to.round() - e->lo) * words_per_round_ + to.author() / 64;
  const bool bit = (e->words[idx] >> (to.author() % 64)) & 1;
  return bit ? PathAnswer::Yes : PathAnswer::No;
}

std::optional<Stake> DagIndex::support(const Certificate& vertex) const {
  const Entry* e = find(vertex);
  if (e == nullptr) {
    ++stats_.support_fallbacks;
    return std::nullopt;
  }
  ++stats_.support_hits;
  return e->support;
}

}  // namespace hammerhead::dag

#include "hammerhead/dag/index.h"

#include <algorithm>

#include "hammerhead/common/assert.h"

namespace hammerhead::dag {

DagIndex::DagIndex(const crypto::Committee& committee, IndexConfig config)
    : committee_(committee),
      config_(config),
      n_(committee.size()),
      words_per_round_((committee.size() + 63) / 64),
      entries_(n_),
      referenced_(words_per_round_) {
  HH_ASSERT_MSG(config_.ancestor_window >= 1, "ancestor_window must be >= 1");
}

const DagIndex::Entry* DagIndex::find(VertexId v) const {
  if (v == kInvalidVertex) return nullptr;
  const Entry* row = entries_.find_round(round_of(v));
  if (row == nullptr) return nullptr;
  const Entry& e = row[author_of(v)];
  return e.present ? &e : nullptr;
}

void DagIndex::set_edge_bit(Entry& e, Round child_round, Round parent_round,
                            ValidatorIndex parent_author) {
  if (parent_round < e.lo || parent_round >= child_round) return;  // clamped
  const std::uint64_t bit = std::uint64_t{1} << (parent_author % 64);
  e.words[(parent_round - e.lo) * words_per_round_ + parent_author / 64] |=
      bit;
  referenced_.ensure_round(parent_round)[parent_author / 64] |= bit;
}

void DagIndex::on_insert(VertexId id, const Certificate& cert,
                         const std::vector<VertexId>& parents) {
  if (!config_.enabled) return;
  ++insert_seq_;
  const Round round = cert.round();
  Entry& e = entries_.ensure_round(round)[author_of(id)];
  HH_ASSERT_MSG(!e.present, "slot (" << round << ", " << author_of(id)
                                     << ") indexed twice");
  e.present = true;
  e.lo = round > config_.ancestor_window ? round - config_.ancestor_window
                                         : 0;

  if (round > 0) {
    e.words.assign((round - e.lo) * words_per_round_, 0);
    // Rounds in [e.lo, sat) already equal their referenced-slot mask —
    // saturated: no parent can contribute there (a parent's ancestors at
    // that round all carry recorded child edges).
    Round sat = e.lo;
    const auto saturated = [&](Round r) {
      const std::uint64_t* ref = referenced_.find_round(r);
      if (ref == nullptr) return false;
      const std::uint64_t* mine = &e.words[(r - e.lo) * words_per_round_];
      for (std::size_t w = 0; w < words_per_round_; ++w)
        if (mine[w] != ref[w]) return false;
      return true;
    };
    for (const VertexId pid : parents) {
      const Round pr = round_of(pid);
      const ValidatorIndex pa = author_of(pid);
      // Direct edge: the parent's own slot bit.
      set_edge_bit(e, round, pr, pa);

      Entry* prow = entries_.find_round(pr);
      if (prow == nullptr) continue;
      Entry& pe = prow[pa];
      if (!pe.present) continue;

      // Union the parent's ancestors over the still-unsaturated part of
      // the overlapping window. Parents sit at lower rounds, so their
      // window reaches at least as far down as ours: the child's bitmap
      // stays complete within [e.lo, round-1].
      if (pr > 0) {
        const Round lo = std::max(sat, pe.lo);
        const Round hi = std::min(round, pr);  // exclusive
        for (Round r = lo; r < hi; ++r) {
          std::uint64_t* dst = &e.words[(r - e.lo) * words_per_round_];
          const std::uint64_t* src = &pe.words[(r - pe.lo) * words_per_round_];
          for (std::size_t w = 0; w < words_per_round_; ++w) dst[w] |= src[w];
        }
        while (sat + 1 < round && saturated(sat)) ++sat;
      }
      // Direct-support accumulation: a round r+1 vertex listing the parent
      // is a "vote" for it in Bullshark's commit rule. Non-adjacent parent
      // references (never produced by the protocol) are not votes, and a
      // vertex listing the same parent digest twice is one vote — the scan
      // counts supporting vertices, and the index must match it exactly.
      if (round == pr + 1 && pe.last_support_seq != insert_seq_) {
        pe.last_support_seq = insert_seq_;
        pe.support += committee_.stake_of(cert.author());
        if (!pe.crossed && pe.support >= committee_.validity_threshold()) {
          pe.crossed = true;
          ++crossings_;
          supported_rounds_.insert(pr);
        }
      }
    }
  }
  ++entry_count_;
  total_words_ += e.words.size();
}

void DagIndex::prune_below(Round floor) {
  entries_.prune_below(floor, [this](Round, Entry* row) {
    for (std::size_t a = 0; a < n_; ++a) {
      if (!row[a].present) continue;
      --entry_count_;
      total_words_ -= row[a].words.size();
    }
  });
  referenced_.prune_below(floor, [](Round, std::uint64_t*) {});
  supported_rounds_.erase(supported_rounds_.begin(),
                          supported_rounds_.lower_bound(floor));
}

DagIndex::PathAnswer DagIndex::path(VertexId from, VertexId to) const {
  const Entry* e = find(from);
  if (e == nullptr) {
    ++stats_.path_fallbacks;
    return PathAnswer::Unknown;
  }
  const Round from_round = round_of(from);
  const Round to_round = round_of(to);
  if (to_round >= from_round) return PathAnswer::No;  // edges point down only
  if (to_round < e->lo) {
    ++stats_.path_fallbacks;
    return PathAnswer::Unknown;  // below the bitmap window
  }
  ++stats_.path_hits;
  const ValidatorIndex ta = author_of(to);
  const std::size_t idx =
      (to_round - e->lo) * words_per_round_ + ta / 64;
  const bool bit = (e->words[idx] >> (ta % 64)) & 1;
  return bit ? PathAnswer::Yes : PathAnswer::No;
}

std::optional<Stake> DagIndex::support(VertexId vertex) const {
  const Entry* e = find(vertex);
  if (e == nullptr) {
    ++stats_.support_fallbacks;
    return std::nullopt;
  }
  ++stats_.support_hits;
  return e->support;
}

}  // namespace hammerhead::dag

#include "hammerhead/dag/arena.h"

namespace hammerhead::dag {

Arena::Arena(std::size_t n, std::size_t initial_depth)
    : n_(n), ring_(n, initial_depth) {
  HH_ASSERT_MSG(n_ > 0, "arena needs at least one slot per round");
}

VertexId Arena::insert(CertPtr cert, std::vector<VertexId> parents) {
  HH_ASSERT(cert != nullptr);
  HH_ASSERT_MSG(cert->author() < n_,
                "author out of range: " << cert->author());
  Slot* row = ring_.ensure_round(cert->round());
  Slot& slot = row[cert->author()];
  HH_ASSERT_MSG(slot.cert == nullptr, "slot (" << cert->round() << ", "
                                               << cert->author()
                                               << ") occupied twice");
  const VertexId v = id(cert->round(), cert->author());
  by_digest_.emplace(cert->digest(), v);
  slot.parents = std::move(parents);
  slot.mark = 0;
  slot.cert = std::move(cert);
  return v;
}

void Arena::prune_below(Round floor) {
  ring_.prune_below(floor, [this](Round, Slot* slots) {
    for (std::size_t a = 0; a < n_; ++a)
      if (slots[a].cert) by_digest_.erase(slots[a].cert->digest());
  });
}

}  // namespace hammerhead::dag

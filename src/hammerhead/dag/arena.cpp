#include "hammerhead/dag/arena.h"

namespace hammerhead::dag {

Arena::Arena(std::size_t n, std::size_t initial_depth)
    : n_(n), ring_(n, initial_depth) {
  HH_ASSERT_MSG(n_ > 0, "arena needs at least one slot per round");
}

VertexId Arena::insert(CertPtr cert, std::span<const VertexId> parents) {
  HH_ASSERT(cert != nullptr);
  HH_ASSERT_MSG(cert->author() < n_,
                "author out of range: " << cert->author());
  Slot* row = ring_.ensure_round(cert->round());
  Slot& slot = row[cert->author()];
  HH_ASSERT_MSG(slot.cert == nullptr, "slot (" << cert->round() << ", "
                                               << cert->author()
                                               << ") occupied twice");
  const VertexId v = id(cert->round(), cert->author());
  by_digest_.emplace(cert->digest(), v);
  if (slot.parents.capacity() == 0 && !parents_pool_.empty()) {
    slot.parents = std::move(parents_pool_.back());
    parents_pool_.pop_back();
  }
  slot.parents.assign(parents.begin(), parents.end());
  slot.mark = 0;
  slot.digest = cert->digest();
  slot.cert = std::move(cert);
  return v;
}

void Arena::prune_below(Round floor) {
  ring_.prune_below(floor, [this](Round, Slot* slots) {
    for (std::size_t a = 0; a < n_; ++a) {
      if (!slots[a].cert) continue;
      by_digest_.erase(slots[a].digest);
      // Donate the parent buffer back before the ring destroys the slot.
      if (slots[a].parents.capacity() > 0 && parents_pool_.size() < 4096)
        parents_pool_.push_back(std::move(slots[a].parents));
    }
  });
}

}  // namespace hammerhead::dag

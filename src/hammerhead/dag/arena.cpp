#include "hammerhead/dag/arena.h"

#include <algorithm>

#include "hammerhead/common/varint.h"

namespace hammerhead::dag {

Arena::Arena(std::size_t n, std::size_t initial_depth)
    : n_(n), ring_(n, initial_depth), visit_words_((n + 63) / 64) {
  HH_ASSERT_MSG(n_ > 0, "arena needs at least one slot per round");
}

VertexId Arena::insert(CertPtr cert, std::span<const VertexId> parents) {
  HH_ASSERT(cert != nullptr);
  HH_ASSERT_MSG(cert->author() < n_,
                "author out of range: " << cert->author());
  const Round round = cert->round();
  // Straggler into a cold round (fetch / state-sync backfill): restore the
  // round first so it is wholly hot again — compression never holds a
  // partial round.
  if (round < tier_cursor_) maybe_rehydrate(round);
  Slot* row = ring_.ensure_round(round);
  Slot& slot = row[cert->author()];
  HH_ASSERT_MSG(slot.cert == nullptr, "slot (" << round << ", "
                                               << cert->author()
                                               << ") occupied twice");
  const VertexId v = id(round, cert->author());
  resolver_.insert(cert->digest(), v);
  if (slot.parents.capacity() == 0 && !parents_pool_.empty()) {
    slot.parents = std::move(parents_pool_.back());
    parents_pool_.pop_back();
  }
  slot.parents.assign(parents.begin(), parents.end());
  slot.digest = cert->digest();
  slot.cert = std::move(cert);
  mem_.hot_parent_bytes += slot.parents.size() * sizeof(VertexId);
  if (cold_lag_ != 0 && round > max_round_seen_) {
    max_round_seen_ = round;
    while (tier_cursor_ + cold_lag_ < round) compress_round(tier_cursor_++);
  }
  return v;
}

void Arena::prune_below(Round floor) {
  ring_.prune_below(floor, [this](Round, Slot* slots) {
    for (std::size_t a = 0; a < n_; ++a) {
      if (!slots[a].cert) continue;
      resolver_.erase(slots[a].digest);
      mem_.hot_parent_bytes -= slots[a].parents.size() * sizeof(VertexId);
      // Donate the parent buffer back before the ring destroys the slot.
      if (slots[a].parents.capacity() > 0 && parents_pool_.size() < 4096)
        parents_pool_.push_back(std::move(slots[a].parents));
    }
  });
  for (auto it = cold_rounds_.begin(); it != cold_rounds_.end();) {
    if (it->first < floor) {
      mem_.cold_parent_bytes -= it->second.size();
      it = cold_rounds_.erase(it);
    } else {
      ++it;
    }
  }
  tier_cursor_ = std::max(tier_cursor_, floor);
}

void Arena::donate_parents(std::vector<VertexId>& parents) {
  if (parents.capacity() > 0 && parents_pool_.size() < 4096) {
    parents_pool_.push_back(std::move(parents));
    parents = std::vector<VertexId>{};
  } else {
    parents.clear();
    parents.shrink_to_fit();  // actually release the cold memory
  }
}

void Arena::compress_round(Round r) {
  Slot* slab = ring_.find_round(r);
  if (slab == nullptr) return;
  std::uint64_t occupied = 0;
  for (std::size_t a = 0; a < n_; ++a)
    if (slab[a].cert) ++occupied;
  if (occupied == 0) return;
  // Per occupied slot: author, parent count, then parents as zigzag deltas
  // (first from the previous round's slab base, then consecutive — handle
  // lists cluster tightly around (r-1)*n, so most deltas fit one byte).
  std::vector<std::uint8_t> blob;
  put_varint(blob, occupied);
  const std::int64_t base =
      static_cast<std::int64_t>((r == 0 ? 0 : r - 1) * n_);
  for (std::size_t a = 0; a < n_; ++a) {
    Slot& s = slab[a];
    if (!s.cert) continue;
    put_varint(blob, a);
    put_varint(blob, s.parents.size());
    std::int64_t prev = base;
    for (const VertexId p : s.parents) {
      put_varint(blob, zigzag_encode(static_cast<std::int64_t>(p) - prev));
      prev = static_cast<std::int64_t>(p);
    }
    mem_.hot_parent_bytes -= s.parents.size() * sizeof(VertexId);
    donate_parents(s.parents);
  }
  blob.shrink_to_fit();
  mem_.cold_parent_bytes += blob.size();
  ++mem_.rounds_compressed;
  cold_rounds_.emplace(r, std::move(blob));
}

void Arena::maybe_rehydrate(Round r) const {
  const auto it = cold_rounds_.find(r);
  if (it == cold_rounds_.end()) return;
  // Representation-only mutation: the decoded state is exactly what
  // compress_round consumed, so const readers observe identical answers.
  const_cast<Arena*>(this)->rehydrate_round(r, it->second);
  mem_.cold_parent_bytes -= it->second.size();
  ++mem_.rounds_rehydrated;
  cold_rounds_.erase(it);
}

void Arena::rehydrate_round(Round r, const std::vector<std::uint8_t>& blob) {
  Slot* slab = ring_.find_round(r);
  HH_ASSERT_MSG(slab != nullptr, "compressed round " << r << " not resident");
  const std::uint8_t* p = blob.data();
  std::uint64_t occupied = 0;
  p = get_varint(p, occupied);
  const std::int64_t base =
      static_cast<std::int64_t>((r == 0 ? 0 : r - 1) * n_);
  for (std::uint64_t i = 0; i < occupied; ++i) {
    std::uint64_t author = 0;
    std::uint64_t count = 0;
    p = get_varint(p, author);
    p = get_varint(p, count);
    Slot& s = slab[author];
    if (s.parents.capacity() == 0 && !parents_pool_.empty()) {
      s.parents = std::move(parents_pool_.back());
      parents_pool_.pop_back();
    }
    s.parents.clear();
    s.parents.reserve(count);
    std::int64_t prev = base;
    for (std::uint64_t j = 0; j < count; ++j) {
      std::uint64_t d = 0;
      p = get_varint(p, d);
      prev += zigzag_decode(d);
      s.parents.push_back(static_cast<VertexId>(prev));
    }
    mem_.hot_parent_bytes += count * sizeof(VertexId);
  }
  HH_ASSERT(p == blob.data() + blob.size());
}

}  // namespace hammerhead::dag

// Slot-addressed arena: the DAG's canonical vertex storage.
//
// Every vertex occupies a unique (round, author) slot — vote uniqueness makes
// the DAG equivocation-free — so a vertex is identified by an integer handle
// (VertexId = round * n + author) instead of a 32-byte digest. Storage is a
// ring of per-round slabs of `n` slots each: a round's slab lives at ring
// position (round % depth), the ring grows (power-of-two depths, slabs
// rehomed) when the live round span exceeds it, and pruning clears slabs and
// advances the floor so their positions are reused by later rounds
// (wraparound). With garbage collection on, the live span is bounded by the
// gc window and the ring reaches a steady state: slabs and slot vectors are
// recycled, so inserts stop allocating slab storage (the per-insert
// allocation that remains is the resolved parent list; the digest side
// table is open-addressed and reuses tombstoned slots).
//
// Handle contract: a VertexId is *stable until its round is pruned* — it
// encodes (round, author) exactly, never aliases across ring reuse (the slab
// stores its round and resolution checks it), and resolves to the same
// certificate for the arena's whole lifetime because at most one certificate
// per slot can ever exist. Parent edges are resolved to handles ONCE, at
// insert, so traversals (committer walk-back, causal history, fetch serving)
// follow integer handles through contiguous slabs instead of re-hashing
// digests into node-based maps.
//
// Memory tiering (set_cold_lag): rounds more than `lag` rounds behind the
// highest inserted round are *cold* — their resolved-parent slabs are
// packed into one zigzag-varint delta blob per round (parents cluster
// around `(round-1) * n`, so deltas are 1-2 bytes against 8-byte handles)
// and the slot vectors are released. Cold rounds rehydrate transparently on
// first touch (resolve / round_slab / a straggler insert), stay hot until
// pruned, and pruning drops blobs directly. Tiering changes only the
// storage representation: every query answers identically with it on or
// off, and the hot/cold byte split is visible in memory_stats().
//
// Traversals use dense per-round visited bitmaps (one bit per author slot),
// lazily refreshed per traversal: bumping one counter starts a new traversal
// and a round's row is SIMD-cleared on its first touch, so no per-call
// visited set is allocated. The marks used to live as epoch stamps inside
// the slots themselves; at wide committees that touched one scattered
// ~100-byte Slot per *edge* just to reject a repeat, while the dense rows
// reject repeats with a bit test on two cache lines per round (n=1000) and
// only first visits touch slab memory. A digest -> handle side table
// (dag/resolve.h, a left-right snapshot structure) serves the ingress path
// (dedup, parent resolution, digest-keyed lookups at the protocol boundary)
// and doubles as the wait-free published view for cross-thread readers.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "hammerhead/common/assert.h"
#include "hammerhead/common/digest.h"
#include "hammerhead/common/epoch.h"
#include "hammerhead/common/simd.h"
#include "hammerhead/common/types.h"
#include "hammerhead/dag/resolve.h"
#include "hammerhead/dag/types.h"

namespace hammerhead::dag {

/// A ring of per-round slabs, `slots_per_round` value-initialized `T`s per
/// round. Rounds map to ring position (round % depth); depth is a power of
/// two that grows on demand and slabs are rehomed on growth. Shared by the
/// arena (certificate slots) and the commit index (per-vertex entries,
/// referenced-slot masks) so all three stay keyed by the same geometry.
template <typename T>
class RoundRing {
 public:
  explicit RoundRing(std::size_t slots_per_round,
                     std::size_t initial_depth = 16)
      : spr_(slots_per_round) {
    std::size_t d = 1;
    while (d < initial_depth) d <<= 1;
    slabs_.resize(d);
  }

  std::size_t slots_per_round() const { return spr_; }
  std::size_t depth() const { return slabs_.size(); }
  Round floor() const { return floor_; }

  /// Slab of `round`, creating (value-initialized) storage on first touch
  /// and growing the ring when the round lies beyond it. round >= floor().
  T* ensure_round(Round round) {
    HH_ASSERT_MSG(round >= floor_, "ring access below floor: " << round);
    if (round - floor_ >= slabs_.size()) grow(round);
    Slab& s = slabs_[pos(round)];
    if (!s.live) {
      s.live = true;
      s.round = round;
      s.slots.assign(spr_, T{});  // reuses a pruned slab's capacity
    }
    return s.slots.data();
  }

  T* find_round(Round round) {
    return const_cast<T*>(std::as_const(*this).find_round(round));
  }
  const T* find_round(Round round) const {
    if (round < floor_ || round - floor_ >= slabs_.size()) return nullptr;
    const Slab& s = slabs_[pos(round)];
    return s.live && s.round == round ? s.slots.data() : nullptr;
  }

  /// Drop all rounds below `new_floor`; `on_drop(round, slots)` runs for
  /// each live slab before its slots are destroyed. Positions of dropped
  /// slabs become reusable by later rounds (ring wraparound).
  template <typename Fn>
  void prune_below(Round new_floor, Fn&& on_drop) {
    if (new_floor <= floor_) return;
    const Round scan_end =
        new_floor - floor_ < slabs_.size() ? new_floor
                                           : floor_ + slabs_.size();
    for (Round r = floor_; r < scan_end; ++r) {
      Slab& s = slabs_[pos(r)];
      if (!s.live || s.round != r) continue;
      on_drop(r, s.slots.data());
      s.live = false;
      s.slots.clear();  // destroy contents, keep capacity for reuse
    }
    floor_ = new_floor;
  }

 private:
  struct Slab {
    Round round = 0;
    bool live = false;
    std::vector<T> slots;
  };

  std::size_t pos(Round r) const {
    return static_cast<std::size_t>(r & (slabs_.size() - 1));  // depth is 2^k
  }

  void grow(Round round) {
    const std::size_t need = static_cast<std::size_t>(round - floor_) + 1;
    std::size_t nd = slabs_.size();
    while (nd < need) nd <<= 1;
    std::vector<Slab> fresh(nd);
    for (Slab& s : slabs_)
      if (s.live) fresh[s.round & (nd - 1)] = std::move(s);
    slabs_ = std::move(fresh);
  }

  std::size_t spr_;
  Round floor_ = 0;
  std::vector<Slab> slabs_;
};

class Arena {
 public:
  struct Slot {
    CertPtr cert;  ///< null -> slot empty
    /// Parent handles resolved at insert: one entry per digest in
    /// header->parents that was resident at insert time (duplicates kept, so
    /// reference-counting consumers see exactly the wire parent list).
    /// Parents missing at insert (possible only at/below the gc floor) are
    /// simply absent — identical to the digest lookup failing.
    std::vector<VertexId> parents;
    /// Copy of cert->digest(), kept inline so residency checks (e.g. the
    /// memoized parent-handle fast path) compare against slab memory
    /// instead of chasing cert -> header -> digest.
    Digest digest;
  };

  /// Hot/cold storage split of the vertex store (see "Memory tiering"
  /// above). Byte figures are logical sizes — deterministic across runs —
  /// not allocator capacities.
  struct MemoryStats {
    std::uint64_t hot_parent_bytes = 0;   ///< resident resolved-parent lists
    std::uint64_t cold_parent_bytes = 0;  ///< compressed cold-round blobs
    std::uint64_t rounds_compressed = 0;  ///< cumulative compress events
    std::uint64_t rounds_rehydrated = 0;  ///< cumulative rehydrate events
  };

  Arena(std::size_t n, std::size_t initial_depth = 16);

  /// Enable cold-round tiering: rounds more than `lag` behind the highest
  /// inserted round compress their parent slabs. 0 (default) disables.
  void set_cold_lag(Round lag) { cold_lag_ = lag; }
  Round cold_lag() const { return cold_lag_; }
  const MemoryStats& memory_stats() const { return mem_; }

  std::size_t slots_per_round() const { return n_; }
  std::size_t size() const { return resolver_.size(); }
  Round ring_floor() const { return ring_.floor(); }
  std::size_t ring_depth() const { return ring_.depth(); }

  VertexId id(Round round, ValidatorIndex author) const {
    return static_cast<VertexId>(round) * n_ + author;
  }
  Round round_of(VertexId v) const { return static_cast<Round>(v / n_); }
  ValidatorIndex author_of(VertexId v) const {
    return static_cast<ValidatorIndex>(v % n_);
  }

  /// Handle of the resident vertex with this digest; kInvalidVertex if none.
  /// Owner-thread view (read-your-writes): a digest inserted earlier in the
  /// same batch resolves immediately.
  VertexId find(const Digest& digest) const { return resolver_.find(digest); }

  /// Snapshot view of the same mapping for concurrent readers: wait-free,
  /// zero locks/RMW, call under an epoch::Guard. At most one batch stale —
  /// kInvalidVertex for digests inserted since the last publish.
  VertexId find_published(const Digest& digest) const {
    return resolver_.find_published(digest);
  }

  /// Driver, at a quiescent point: make this batch's insertions/prunes
  /// visible to snapshot readers (DigestResolver::publish).
  void publish_resolution(epoch::Domain& domain) { resolver_.publish(domain); }

  const DigestResolver& resolver() const { return resolver_; }

  /// Slot of a handle, or null if the slot is empty / the round not resident.
  const Slot* resolve(VertexId v) const {
    if (v == kInvalidVertex) return nullptr;
    const Round r = round_of(v);
    if (r < tier_cursor_) maybe_rehydrate(r);
    const Slot* row = ring_.find_round(r);
    if (row == nullptr) return nullptr;
    const Slot& s = row[author_of(v)];
    return s.cert ? &s : nullptr;
  }

  /// The n slots of `round` (author-indexed; empty slots have null cert), or
  /// null when the round holds no slab.
  const Slot* round_slab(Round round) const {
    if (round < tier_cursor_) maybe_rehydrate(round);
    return ring_.find_round(round);
  }

  /// Occupy slot (cert->round(), cert->author()). The slot must be empty —
  /// callers dedup via find() first. Returns the new vertex's handle.
  /// The span overload copies into a recycled buffer (pruned slots donate
  /// their parent vectors back to a pool — no allocation in steady state).
  VertexId insert(CertPtr cert, std::span<const VertexId> parents);
  VertexId insert(CertPtr cert, std::vector<VertexId> parents) {
    return insert(std::move(cert),
                  std::span<const VertexId>(parents.data(), parents.size()));
  }

  /// Drop all rounds strictly below `floor` (and their side-table entries).
  void prune_below(Round floor);

  /// Start a traversal: visited rows refresh lazily against the new epoch.
  /// Returns the epoch (diagnostic only; marking uses the current epoch).
  std::uint64_t begin_traversal() const {
    // Ring growth happens on insert, never mid-traversal, so syncing the
    // visited ring here keeps resident rounds collision-free below.
    if (visit_rows_.size() != ring_.depth())
      visit_rows_.assign(ring_.depth(), VisitRow{});
    return ++epoch_;
  }

  /// Visited-bit row of `round` for the current traversal, SIMD-cleared on
  /// its first touch after begin_traversal(). `round` must be resident
  /// (hold a live slab): resident rounds occupy distinct ring positions, so
  /// their rows never collide within a traversal. Callers hoist the row
  /// across same-round edges and test bits with mark_row.
  std::uint64_t* visited_row(Round round) const {
    VisitRow& row = visit_rows_[round & (visit_rows_.size() - 1)];
    if (row.stamp != epoch_ || row.round != round) {
      row.round = round;
      row.stamp = epoch_;
      if (row.bits.size() != visit_words_)
        row.bits.assign(visit_words_, 0);
      else
        simd::bitmap_clear(row.bits.data(), visit_words_);
    }
    return row.bits.data();
  }

  /// Mark `author` in a row from visited_row; true if not yet visited.
  static bool mark_row(std::uint64_t* row, ValidatorIndex author) {
    const std::uint64_t bit = std::uint64_t{1} << (author & 63);
    std::uint64_t& word = row[author >> 6];
    if (word & bit) return false;
    word |= bit;
    return true;
  }

  /// Convenience form for call sites without a hoisted row.
  bool mark_visited(VertexId v) const {
    return mark_row(visited_row(round_of(v)), author_of(v));
  }

 private:
  struct VisitRow {
    Round round = 0;
    std::uint64_t stamp = 0;
    std::vector<std::uint64_t> bits;
  };

  /// Pack round `r`'s parent lists into a blob and release the slot vectors.
  void compress_round(Round r);
  /// Restore round `r`'s parent lists if it is compressed. Logically const:
  /// only the storage representation changes, never query answers.
  void maybe_rehydrate(Round r) const;
  void rehydrate_round(Round r, const std::vector<std::uint8_t>& blob);
  /// Recycle or free one slot's parent vector (compression / pruning).
  void donate_parents(std::vector<VertexId>& parents);

  std::size_t n_;
  RoundRing<Slot> ring_;
  /// Digest-keyed lookups at the protocol boundary (ingress/dedup) plus the
  /// published snapshot for cross-thread readers (dag/resolve.h).
  DigestResolver resolver_;
  /// Parent-vector buffers recycled from pruned slots (bounded).
  std::vector<std::vector<VertexId>> parents_pool_;
  /// Dense visited rows, ring-positioned like the slabs ((n+63)/64 words
  /// per round); row contents are meaningful only within one traversal.
  std::size_t visit_words_;
  mutable std::vector<VisitRow> visit_rows_;
  mutable std::uint64_t epoch_ = 0;
  /// Cold-round tiering state. Rounds below tier_cursor_ are compressed,
  /// rehydrated or pruned; the cursor never retreats, so the hot-path guard
  /// is one comparison. A round is always wholly hot or wholly compressed.
  Round cold_lag_ = 0;
  Round tier_cursor_ = 0;
  Round max_round_seen_ = 0;
  mutable std::unordered_map<Round, std::vector<std::uint8_t>> cold_rounds_;
  mutable MemoryStats mem_;
};

}  // namespace hammerhead::dag

// The local DAG of one validator: certificate storage plus the structural
// queries Bullshark/HammerHead need (path existence, causal history, anchor
// support). Algorithm 1 in the paper.
//
// Causal completeness is an invariant: insert() rejects a certificate whose
// parents are not all present (Claim 1 — "when an honest party adds a vertex,
// the entire causal history is already in its DAG"). Buffering of early
// arrivals is the synchronizer's job (node layer).
//
// Storage is the slot-addressed arena (dag/arena.h): vertices live in
// contiguous per-round slabs addressed by integer handles (VertexId =
// round * n + author), parent digests are resolved to handles ONCE at
// insert, and every traversal (path scan, causal history, fetch serving)
// follows handle lists with dense per-round visited bitmaps — no digest
// hashing, no shared_ptr chasing, no per-call visited sets. The digest-keyed side
// table is consulted only at the protocol boundary (dedup, missing-parent
// resolution, digest lookups). Handles are stable until their round is
// pruned and never alias across slab-ring reuse.
//
// Structural queries are answered from an incremental index maintained on
// the insert path (dag/index.h): has_path is a word test against the
// vertex's ancestor bitmap and direct_support an O(1) accumulator lookup.
// The scan-based implementations remain available as has_path_scan /
// direct_support_scan — they are the fallback when the index cannot decide
// (query below the bitmap window) and the reference for equivalence tests.
//
// Certificate-taking and handle-taking overloads answer identically; the
// certificate forms also accept non-resident certificates (answers then come
// from digest-level scans, e.g. for slot impostors that never entered this
// DAG).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "hammerhead/common/serde.h"
#include "hammerhead/crypto/committee.h"
#include "hammerhead/dag/arena.h"
#include "hammerhead/dag/index.h"
#include "hammerhead/dag/types.h"

namespace hammerhead::dag {

class Dag {
 public:
  explicit Dag(const crypto::Committee& committee, IndexConfig index = {});

  /// Insert a certificate. Returns false if a certificate with the same
  /// (author, round) or digest is already present (duplicate, not an error).
  /// Throws InvariantViolation if parents are missing (round > gc floor) —
  /// callers must only insert causally complete vertices.
  bool insert(CertPtr cert);

  /// Single-pass admission: resolve the parents once and either insert (all
  /// present) or report the missing digests into `missing_out` (may be
  /// nullptr). The ingestion hot path uses this instead of the
  /// missing_parents() + insert() pair, which resolved every parent digest
  /// twice.
  /// Conflict = the (round, author) slot is occupied by a certificate with
  /// a DIFFERENT digest: a *certified* equivocation reached this node (two
  /// quorums countersigned conflicting headers — impossible while < n/3
  /// stake is Byzantine; see Validator::ingest_cert's safety counter).
  /// Same-digest re-delivery stays Duplicate.
  enum class InsertOutcome { Inserted, Duplicate, Conflict, Missing, Invalid };
  InsertOutcome try_insert(CertPtr cert, std::vector<Digest>* missing_out);

  /// True iff every parent of `cert` is present (always true at the gc
  /// floor or below, where history has been pruned).
  bool parents_present(const Certificate& cert) const;

  /// Digests from `cert.parents()` that are not in the DAG.
  std::vector<Digest> missing_parents(const Certificate& cert) const;

  bool contains(const Digest& digest) const;
  bool contains(Round round, ValidatorIndex author) const;

  CertPtr get(const Digest& digest) const;
  CertPtr get(Round round, ValidatorIndex author) const;

  // ---------------------------------------------------------------- handles

  /// Handle of the resident vertex with this digest / slot; kInvalidVertex
  /// if absent.
  VertexId id_of(const Digest& digest) const { return arena_.find(digest); }
  VertexId id_of(Round round, ValidatorIndex author) const;

  /// Wait-free digest lookup against the last published resolution snapshot
  /// — for readers on OTHER threads, under an epoch::Guard. At most one
  /// batch stale relative to id_of(). See Arena::find_published.
  VertexId id_of_published(const Digest& digest) const {
    return arena_.find_published(digest);
  }

  /// Driver thread, at a quiescent point (epoch quiescent hook): publish the
  /// resolver's pending mutations as a fresh snapshot for id_of_published.
  void publish_resolution(epoch::Domain& domain) {
    arena_.publish_resolution(domain);
  }

  /// Certificate behind a handle; nullptr if the handle is invalid or its
  /// round was pruned.
  CertPtr cert_of(VertexId v) const;

  Round round_of(VertexId v) const { return arena_.round_of(v); }
  ValidatorIndex author_of(VertexId v) const { return arena_.author_of(v); }

  /// The slot-addressed store itself (slab views, parent handle lists) —
  /// for tests and benches; protocol layers use the accessors below.
  const Arena& arena() const { return arena_; }

  /// Resolved parent handles of a resident vertex (empty if the handle is
  /// stale). Present-at-insert parents only; wire duplicates preserved.
  std::span<const VertexId> parents_of(VertexId v) const {
    const Arena::Slot* s = arena_.resolve(v);
    return s == nullptr ? std::span<const VertexId>{}
                        : std::span<const VertexId>{s->parents};
  }

  /// Visit every certificate of `round` in author order without
  /// materializing a vector of shared_ptr copies. fn(const CertPtr&).
  template <typename Fn>
  void for_each_round_cert(Round round, Fn&& fn) const {
    const Arena::Slot* slab = arena_.round_slab(round);
    if (slab == nullptr) return;
    for (std::size_t a = 0; a < arena_.slots_per_round(); ++a)
      if (slab[a].cert) fn(slab[a].cert);
  }

  // ----------------------------------------------------------------- rounds

  /// All certificates of a round (author-ascending; empty if none).
  std::vector<CertPtr> round_certs(Round round) const;

  /// Number of certificates in a round.
  std::size_t round_size(Round round) const;

  /// Total stake of the authors with a certificate in `round`.
  Stake round_stake(Round round) const;

  /// Highest round with at least one certificate; nullopt if empty.
  std::optional<Round> max_round() const;

  // ---------------------------------------------------------------- queries

  /// Total stake of round `anchor.round()+1` certificates that reference the
  /// anchor as a parent ("votes" in Bullshark's commit rule). O(1) via the
  /// index for vertices in the DAG; scans otherwise.
  Stake direct_support(const Certificate& anchor) const;
  Stake direct_support(VertexId anchor) const;

  /// Scan-based reference implementation (rescans round anchor.round()+1).
  Stake direct_support_scan(const Certificate& anchor) const;

  /// True iff a (directed, parent-following) path exists from `from` down to
  /// `to`. Requires from.round() >= to.round(); equal rounds only when same
  /// vertex. Answered from the ancestor bitmap when the target round is
  /// inside `from`'s index window; falls back to the handle BFS otherwise.
  bool has_path(const Certificate& from, const Certificate& to) const;
  bool has_path(VertexId from, VertexId to) const;

  /// Scan-based reference implementation (BFS over parent edges; handle BFS
  /// with dense visited bitmaps for resident endpoints, digest matching when
  /// `to` never entered this DAG).
  bool has_path_scan(const Certificate& from, const Certificate& to) const;
  bool has_path_scan(VertexId from, VertexId to) const;

  /// Collect the causal history of `root` (including `root`) restricted to
  /// vertices for which `keep` returns true; `keep` typically filters out
  /// already-ordered vertices. Traversal stops at vertices where keep=false
  /// (their history was already delivered) and at the gc floor. Templated
  /// on the predicate so the committer's per-vertex filter inlines (the BFS
  /// visits every sub-DAG edge on every commit).
  template <typename Keep>
  std::vector<CertPtr> causal_history(const Certificate& root,
                                      Keep&& keep) const {
    if (!keep(root)) return {};
    const VertexId v = arena_.find(root.digest());
    HH_ASSERT(v != kInvalidVertex);
    return causal_history_from(v, keep);
  }
  template <typename Keep>
  std::vector<CertPtr> causal_history(VertexId root, Keep&& keep) const {
    const Arena::Slot* rs = arena_.resolve(root);
    HH_ASSERT(rs != nullptr);
    if (!keep(*rs->cert)) return {};
    return causal_history_from(root, keep);
  }

  /// Fetch-serving closure: the resident certificates among `roots` plus
  /// their causal history, descending while round > stop_at (round-0
  /// vertices never descend). Unordered; callers sort for the wire.
  std::vector<CertPtr> collect_above(const std::vector<Digest>& roots,
                                     Round stop_at) const;

  /// Prune all rounds strictly below `floor`. Path queries must not be asked
  /// to descend below the floor afterwards. Handles of pruned rounds stop
  /// resolving; their ring slots are reused by later rounds.
  void prune_below(Round floor);
  Round gc_floor() const { return gc_floor_; }

  std::size_t total_certs() const { return arena_.size(); }

  /// Structural memory per resident vertex: resolved-parent storage (hot +
  /// compressed cold blobs) plus index ancestor-bitmap words (hot +
  /// compressed). Excludes the certificates themselves. Logical sizes, so
  /// the figure is deterministic and benchable across runs.
  double bytes_per_vertex() const;

  /// Checkpoint support: serialize the DAG's logical content — every
  /// resident vertex in (round, author) order with its digest and wire
  /// parent digests, plus the gc floor. Representation-independent by
  /// construction: hot and cold-tiered rounds encode to identical bytes
  /// (cold rounds rehydrate transparently on the walk), which is exactly
  /// what the rehydrate-after-restore checkpoint tests assert.
  void serialize_content(ByteWriter& w) const;

  /// The incremental commit index (support accumulators, ancestor bitmaps,
  /// trigger-candidate rounds). The committer consumes its crossing events.
  const DagIndex& index() const { return index_; }

  /// Shared-certificate memo telemetry for the parent-handle memo on the
  /// try_insert path. A hit skips hashing every parent digest; rates feed
  /// the monitoring gauges.
  struct MemoStats {
    std::uint64_t parent_memo_hits = 0;
    std::uint64_t parent_memo_misses = 0;  ///< resolutions that hashed digests
  };
  const MemoStats& memo_stats() const { return memo_stats_; }

 private:
  /// Handle of `cert` iff its slot is occupied by exactly this certificate
  /// (digest checked); kInvalidVertex otherwise.
  VertexId resolve_resident(const Certificate& cert) const;

  /// Handle BFS from the resident slots of `frontier` (already marked in
  /// the current traversal), pruned at to_round, looking for `to`.
  bool scan_from(std::vector<VertexId>& frontier, VertexId to) const;

  /// causal_history body once the root has passed `keep` (so stateful
  /// predicates see the root exactly once across both public overloads).
  template <typename Keep>
  std::vector<CertPtr> causal_history_from(VertexId root, Keep&& keep) const {
    std::vector<CertPtr> out;
    arena_.begin_traversal();
    arena_.mark_visited(root);
    std::vector<VertexId> queue{root};
    // A vertex's parents share one round, so the slab lookup and the visited
    // row are hoisted across the edge loop, and authors decode by
    // subtraction from the cached row base instead of a 64-bit division per
    // edge (the BFS touches every sub-DAG edge on every commit). Repeat
    // edges — the overwhelming majority at wide committees, where a round
    // has ~n^2 edges onto n vertices — are rejected by one visited-bit test
    // without touching the slot slab at all.
    const VertexId n = arena_.slots_per_round();
    VertexId row_base = kInvalidVertex;
    const Arena::Slot* slab = nullptr;
    std::uint64_t* vrow = nullptr;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const Arena::Slot& s = *arena_.resolve(queue[head]);
      out.push_back(s.cert);
      for (const VertexId p : s.parents) {
        if (p < row_base || p - row_base >= n) {
          const Round pr = arena_.round_of(p);
          row_base = static_cast<VertexId>(pr) * n;
          slab = arena_.round_slab(pr);
          vrow = slab == nullptr ? nullptr : arena_.visited_row(pr);
        }
        if (slab == nullptr) continue;  // pruned below gc floor
        const ValidatorIndex pa = static_cast<ValidatorIndex>(p - row_base);
        if (!Arena::mark_row(vrow, pa)) continue;
        const Arena::Slot& ps = slab[pa];
        if (!ps.cert) continue;
        if (!keep(*ps.cert)) continue;
        queue.push_back(p);
      }
    }
    return out;
  }

  const crypto::Committee& committee_;
  Arena arena_;
  Round gc_floor_ = 0;
  std::optional<Round> max_round_;
  DagIndex index_;
  MemoStats memo_stats_;
  /// Reused parent-handle scratch for try_insert (not reentrant).
  std::vector<VertexId> parent_scratch_;
};

}  // namespace hammerhead::dag

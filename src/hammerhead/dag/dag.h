// The local DAG of one validator: certificate storage plus the structural
// queries Bullshark/HammerHead need (path existence, causal history, anchor
// support). Algorithm 1 in the paper.
//
// Causal completeness is an invariant: insert() rejects a certificate whose
// parents are not all present (Claim 1 — "when an honest party adds a vertex,
// the entire causal history is already in its DAG"). Buffering of early
// arrivals is the synchronizer's job (node layer).
//
// Structural queries are answered from an incremental index maintained on
// the insert path (dag/index.h): has_path is a word test against the
// vertex's ancestor bitmap and direct_support an O(1) accumulator lookup.
// The scan-based implementations remain available as has_path_scan /
// direct_support_scan — they are the fallback when the index cannot decide
// (query below the bitmap window) and the reference for equivalence tests.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "hammerhead/crypto/committee.h"
#include "hammerhead/dag/index.h"
#include "hammerhead/dag/types.h"

namespace hammerhead::dag {

class Dag {
 public:
  explicit Dag(const crypto::Committee& committee, IndexConfig index = {});

  /// Insert a certificate. Returns false if a certificate with the same
  /// (author, round) or digest is already present (duplicate, not an error).
  /// Throws InvariantViolation if parents are missing (round > gc floor) —
  /// callers must only insert causally complete vertices.
  bool insert(CertPtr cert);

  /// True iff every parent of `cert` is present (always true at the gc
  /// floor or below, where history has been pruned).
  bool parents_present(const Certificate& cert) const;

  /// Digests from `cert.parents()` that are not in the DAG.
  std::vector<Digest> missing_parents(const Certificate& cert) const;

  bool contains(const Digest& digest) const;
  bool contains(Round round, ValidatorIndex author) const;

  CertPtr get(const Digest& digest) const;
  CertPtr get(Round round, ValidatorIndex author) const;

  /// All certificates of a round (unspecified order; empty if none).
  std::vector<CertPtr> round_certs(Round round) const;

  /// Number of certificates in a round.
  std::size_t round_size(Round round) const;

  /// Total stake of the authors with a certificate in `round`.
  Stake round_stake(Round round) const;

  /// Highest round with at least one certificate; nullopt if empty.
  std::optional<Round> max_round() const;

  /// Total stake of round `anchor.round()+1` certificates that reference the
  /// anchor as a parent ("votes" in Bullshark's commit rule). O(1) via the
  /// index for vertices in the DAG; scans otherwise.
  Stake direct_support(const Certificate& anchor) const;

  /// Scan-based reference implementation (rescans round anchor.round()+1).
  Stake direct_support_scan(const Certificate& anchor) const;

  /// True iff a (directed, parent-following) path exists from `from` down to
  /// `to`. Requires from.round() >= to.round(); equal rounds only when same
  /// vertex. Answered from the ancestor bitmap when the target round is
  /// inside `from`'s index window; falls back to the BFS scan otherwise.
  bool has_path(const Certificate& from, const Certificate& to) const;

  /// Scan-based reference implementation (BFS over parent edges).
  bool has_path_scan(const Certificate& from, const Certificate& to) const;

  /// Collect the causal history of `root` (including `root`) restricted to
  /// vertices for which `keep` returns true; `keep` typically filters out
  /// already-ordered vertices. Traversal stops at vertices where keep=false
  /// (their history was already delivered) and at the gc floor.
  std::vector<CertPtr> causal_history(
      const Certificate& root,
      const std::function<bool(const Certificate&)>& keep) const;

  /// Prune all rounds strictly below `floor`. Path queries must not be asked
  /// to descend below the floor afterwards.
  void prune_below(Round floor);
  Round gc_floor() const { return gc_floor_; }

  std::size_t total_certs() const { return by_digest_.size(); }

  /// The incremental commit index (support accumulators, ancestor bitmaps,
  /// trigger-candidate rounds). The committer consumes its crossing events.
  const DagIndex& index() const { return index_; }

 private:
  const crypto::Committee& committee_;
  // round -> author -> cert
  std::unordered_map<Round, std::unordered_map<ValidatorIndex, CertPtr>>
      rounds_;
  std::unordered_map<Digest, CertPtr> by_digest_;
  Round gc_floor_ = 0;
  std::optional<Round> max_round_;
  DagIndex index_;
};

}  // namespace hammerhead::dag

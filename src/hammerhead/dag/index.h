// Incremental commit index: structure maintained on the DAG *ingest* path so
// the commit rule's structural queries become O(1)/O(words) lookups instead
// of per-query scans.
//
// Two indices, both updated inside Dag::insert:
//
//  1. Ancestor bitmaps. Every vertex occupies a unique (round, author) slot
//     (vote uniqueness makes the DAG equivocation-free), so the causal
//     history of a vertex can be represented as one bit per slot: for each
//     covered round, one std::uint64_t word per 64 validators. On insert the
//     child's bitmap is the OR of its parents' bitmaps plus the parents' own
//     slot bits — after that, Dag::has_path(from, to) is a single word test.
//     Bitmaps cover a sliding window of `ancestor_window` rounds below the
//     vertex (the committer's walk-back only spans the gap back to the last
//     committed anchor); queries below a vertex's window fall back to the
//     scan-based BFS, so answers are always exact. Propagation is
//     short-circuited per round once the child's bits reach the round's
//     referenced-slot mask (sibling parents share almost their whole
//     ancestry, so most of the OR work is provably redundant).
//
//  2. Direct-support accumulators. When a vertex at round r+1 lists an
//     anchor at round r among its parents, the anchor's running support
//     stake is bumped at insert time; Dag::direct_support becomes a lookup.
//     The first time a vertex's support reaches the committee's validity
//     threshold (f+1) the index records a *crossing*: its round joins
//     `supported_rounds()` and a monotone crossing counter advances. The
//     Bullshark committer consumes these as its trigger events — it only
//     rescans when a crossing happened (or an anchor certificate arrived
//     late) and only looks at supported rounds.
//
// Storage is slot-keyed (round -> author -> entry, with the certificate
// digest stored for confirmation), so the ingest path performs array
// indexing instead of per-parent digest hashing.
//
// Invariants (see ARCHITECTURE.md):
//  * Within a vertex's covered window the bitmap is complete: every ancestor
//    slot at a covered round has its bit set. Guaranteed inductively because
//    parents sit at lower rounds, so a parent's window always reaches at
//    least as far down as the child's.
//  * Index state is a pure function of the set of inserted certificates —
//    insertion order, pruning history and snapshot installs do not change
//    query answers. Rebuilding a DAG from any causally ordered replay
//    reproduces the index (the recovery and state-sync paths rely on this).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "hammerhead/crypto/committee.h"
#include "hammerhead/dag/types.h"

namespace hammerhead::dag {

struct IndexConfig {
  /// When false, no index state is maintained at all: every query falls back
  /// to the scans and the committer degrades to TriggerScan::Rescan — the
  /// exact seed behaviour, kept for memory-constrained configs and honest
  /// before/after benchmarking.
  bool enabled = true;
  /// Rounds of ancestor bitmap kept per vertex. Queries reaching further
  /// below a vertex fall back to the BFS scan (still exact, just slower).
  /// The committer's walk-back spans the distance between consecutive
  /// committed anchors, which garbage collection keeps well inside the
  /// default window.
  Round ancestor_window = 64;
};

struct IndexStats {
  std::uint64_t path_hits = 0;        ///< has_path answered from a bitmap
  std::uint64_t path_fallbacks = 0;   ///< has_path fell back to the BFS scan
  std::uint64_t support_hits = 0;     ///< direct_support answered O(1)
  std::uint64_t support_fallbacks = 0;///< direct_support fell back to a scan
};

class DagIndex {
 public:
  DagIndex(const crypto::Committee& committee, IndexConfig config);

  /// Three-valued answer for path queries: Unknown means the index cannot
  /// decide (vertex not indexed, or target below the bitmap window) and the
  /// caller must fall back to the scan.
  enum class PathAnswer { Yes, No, Unknown };

  /// Called by Dag::insert once the certificate is in the DAG maps.
  /// `parents` are the parent certificates present in the DAG (absent only
  /// when history below the gc floor was pruned).
  void on_insert(const Certificate& cert,
                 const std::vector<const Certificate*>& parents);

  /// Called by Dag::prune_below: drop all index state below `floor`.
  void prune_below(Round floor);

  /// Word-test path answer; exact for Yes/No (the slot digests are checked,
  /// so certificates that never entered this DAG yield Unknown).
  PathAnswer path(const Certificate& from, const Certificate& to) const;

  /// Running direct-support stake of the vertex, or nullopt if the vertex is
  /// not indexed (then the caller falls back to the scan).
  std::optional<Stake> support(const Certificate& vertex) const;

  /// Rounds containing at least one vertex whose direct support reached the
  /// validity threshold (f+1) — the committer's trigger candidates.
  const std::set<Round>& supported_rounds() const { return supported_rounds_; }
  bool round_supported(Round round) const {
    return supported_rounds_.count(round) > 0;
  }

  /// Monotone count of threshold crossings; the committer caches this to
  /// skip trigger re-evaluation when nothing crossed.
  std::uint64_t crossings() const { return crossings_; }

  bool enabled() const { return config_.enabled; }
  std::size_t entries() const { return entry_count_; }
  std::size_t bitmap_words() const { return total_words_; }
  const IndexStats& stats() const { return stats_; }

 private:
  struct Entry {
    bool present = false;
    bool crossed = false;
    Round round = 0;
    /// Lowest round covered by `words`; the bitmap covers [lo, round - 1].
    Round lo = 0;
    Stake support = 0;
    /// Insert sequence of the last child that bumped `support` — a voter
    /// listing the same parent digest twice must count once, like the scan.
    std::uint64_t last_support_seq = 0;
    Digest digest;  ///< slot-occupancy confirmation
    std::vector<std::uint64_t> words;
  };

  /// Entry of the slot if it is occupied by exactly this certificate.
  const Entry* find(const Certificate& cert) const;
  Entry* find(const Certificate& cert) {
    return const_cast<Entry*>(std::as_const(*this).find(cert));
  }

  /// Record a direct parent edge in `e` (window-clamped) and in the round's
  /// referenced-slot mask.
  void set_edge_bit(Entry& e, Round round, ValidatorIndex author);

  const crypto::Committee& committee_;
  IndexConfig config_;
  std::size_t words_per_round_;

  /// round -> author -> entry (slot-keyed; see file comment).
  std::unordered_map<Round, std::vector<Entry>> rounds_;
  /// Referenced-slot mask per round: authors whose vertex has at least one
  /// recorded child edge. Every bit in any entry's bitmap at round r
  /// originates from a direct edge, so referenced_[r] is a superset of any
  /// parent's bits there — which makes it a sound saturation bound for
  /// short-circuiting propagation: once a child's bits for a round equal
  /// the mask, no further parent can add anything. Ordered so the
  /// saturation sweep walks consecutive rounds with an iterator instead of
  /// one hash lookup per round.
  std::map<Round, std::vector<std::uint64_t>> referenced_;
  /// One-slot lookup cache into referenced_ (parents share one round).
  /// Reset whenever referenced_ erases elements.
  Round ref_cache_round_ = 0;
  std::uint64_t* ref_cache_ = nullptr;

  std::set<Round> supported_rounds_;
  std::uint64_t insert_seq_ = 0;
  std::uint64_t crossings_ = 0;
  std::size_t entry_count_ = 0;
  std::size_t total_words_ = 0;
  mutable IndexStats stats_;
};

}  // namespace hammerhead::dag

// Incremental commit index: structure maintained on the DAG *ingest* path so
// the commit rule's structural queries become O(1)/O(words) lookups instead
// of per-query scans.
//
// Since PR 2 the index is keyed by the arena's integer vertex handles
// (dag/arena.h): entries live in a RoundRing<Entry> with the same
// (round % depth) * slab geometry as the certificate slots, so a handle
// resolves to its entry with two array indexings and no digest hashing.
// The digest-confirmation field the map-keyed version carried is gone — a
// VertexId names one certificate for the arena's whole lifetime, and the Dag
// verifies slot occupancy before consulting the index.
//
// Two indices, both updated inside Dag::insert:
//
//  1. Ancestor bitmaps. Every vertex occupies a unique (round, author) slot,
//     so the causal history of a vertex is one bit per slot: per covered
//     round, one std::uint64_t word per 64 validators. On insert the child's
//     bitmap is the OR of its parents' bitmaps plus the parents' own slot
//     bits — after that, Dag::has_path(from, to) is a single word test.
//     Bitmaps cover a sliding window of `ancestor_window` rounds below the
//     vertex; queries below the window fall back to the handle BFS, so
//     answers are always exact. Propagation is short-circuited per round
//     once the child's bits reach the round's referenced-slot mask (sibling
//     parents share almost their whole ancestry, so most of the OR work is
//     provably redundant).
//
//  2. Direct-support accumulators. When a vertex at round r+1 lists an
//     anchor at round r among its parents, the anchor's running support
//     stake is bumped at insert time; Dag::direct_support becomes a lookup.
//     The first time a vertex's support reaches the committee's validity
//     threshold (f+1) the index records a *crossing*: its round joins
//     `supported_rounds()` and a monotone crossing counter advances. The
//     Bullshark committer consumes these as its trigger events.
//
// Invariants (see ARCHITECTURE.md):
//  * Within a vertex's covered window the bitmap is complete: every ancestor
//    slot at a covered round has its bit set. Guaranteed inductively because
//    parents sit at lower rounds, so a parent's window always reaches at
//    least as far down as the child's.
//  * Index state is a pure function of the set of inserted certificates —
//    insertion order, pruning history and snapshot installs do not change
//    query answers. Rebuilding a DAG from any causally ordered replay
//    reproduces the index (the recovery and state-sync paths rely on this).
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "hammerhead/crypto/committee.h"
#include "hammerhead/dag/arena.h"
#include "hammerhead/dag/types.h"

namespace hammerhead::dag {

struct IndexConfig {
  /// When false, no index state is maintained at all: every query falls back
  /// to the scans and the committer degrades to TriggerScan::Rescan — the
  /// exact seed behaviour, kept for memory-constrained configs and honest
  /// before/after benchmarking.
  bool enabled = true;
  /// Rounds of ancestor bitmap kept per vertex. Queries reaching further
  /// below a vertex fall back to the BFS scan (still exact, just slower).
  /// The committer's walk-back spans the distance between consecutive
  /// committed anchors, which garbage collection keeps well inside the
  /// default window. 16 rounds (= 8 anchor slots) covers every observed
  /// anchor gap in the fig1/fig2 workloads while keeping the per-vertex
  /// bitmap inside a few cache lines — the former 64-round window made
  /// DagIndex::on_insert the single hottest function end-to-end (1 KB of
  /// cold bitmap touched per insert at n=100).
  Round ancestor_window = 16;
  /// Memory tiering: rounds more than this many rounds behind the highest
  /// inserted round go cold — the arena packs their resolved-parent slabs
  /// into zigzag-varint delta blobs and the index RLE-compresses their
  /// ancestor-bitmap words; both rehydrate transparently on first touch.
  /// Purely a storage-representation change (query answers and simulated
  /// traces are identical either way); sized so the committer's walk-back
  /// and the ancestor window never leave the hot tier. 0 disables.
  Round cold_round_lag = 64;
};

struct IndexStats {
  std::uint64_t path_hits = 0;        ///< has_path answered from a bitmap
  std::uint64_t path_fallbacks = 0;   ///< has_path fell back to the BFS scan
  std::uint64_t support_hits = 0;     ///< direct_support answered O(1)
  std::uint64_t support_fallbacks = 0;///< direct_support fell back to a scan
  /// Shared ancestor-bitmap memo (dag/types.h): a hit copies the canonical
  /// bitmap another validator already computed and skips the union pass.
  std::uint64_t ancestor_memo_hits = 0;
  std::uint64_t ancestor_memo_misses = 0;
};

class DagIndex {
 public:
  DagIndex(const crypto::Committee& committee, IndexConfig config);

  /// Three-valued answer for path queries: Unknown means the index cannot
  /// decide (vertex not indexed, or target below the bitmap window) and the
  /// caller must fall back to the scan.
  enum class PathAnswer { Yes, No, Unknown };

  /// Called by Dag::insert once the certificate occupies its arena slot.
  /// `parents` are the handles resolved at insert (present parents only;
  /// duplicates preserved as on the wire).
  void on_insert(VertexId id, const Certificate& cert,
                 const std::vector<VertexId>& parents, bool parents_complete);

  /// Called by Dag::prune_below: drop all index state below `floor`.
  void prune_below(Round floor);

  /// Word-test path answer for two handles. Exact for Yes/No; Unknown when
  /// `from` is not indexed (kInvalidVertex or pruned) or `to` lies below
  /// `from`'s bitmap window.
  PathAnswer path(VertexId from, VertexId to) const;

  /// Running direct-support stake of the vertex, or nullopt if the handle is
  /// not indexed (then the caller falls back to the scan).
  std::optional<Stake> support(VertexId vertex) const;

  /// Rounds containing at least one vertex whose direct support reached the
  /// validity threshold (f+1) — the committer's trigger candidates.
  const std::set<Round>& supported_rounds() const { return supported_rounds_; }
  bool round_supported(Round round) const {
    return supported_rounds_.count(round) > 0;
  }

  /// Monotone count of threshold crossings; the committer caches this to
  /// skip trigger re-evaluation when nothing crossed.
  std::uint64_t crossings() const { return crossings_; }

  bool enabled() const { return config_.enabled; }
  std::size_t entries() const { return entry_count_; }
  std::size_t bitmap_words() const { return total_words_; }
  /// Bytes held by RLE-compressed cold-round bitmap slabs (their words are
  /// excluded from bitmap_words() while compressed).
  std::size_t cold_bitmap_bytes() const { return cold_bitmap_bytes_; }
  const IndexStats& stats() const { return stats_; }

 private:
  struct Entry {
    bool present = false;
    bool crossed = false;
    /// Lowest round covered by `words`; the bitmap covers [lo, round - 1].
    Round lo = 0;
    Stake support = 0;
    /// Insert sequence of the last child that bumped `support` — a voter
    /// listing the same parent digest twice must count once, like the scan.
    std::uint64_t last_support_seq = 0;
    std::vector<std::uint64_t> words;
  };

  Round round_of(VertexId v) const { return static_cast<Round>(v / n_); }
  ValidatorIndex author_of(VertexId v) const {
    return static_cast<ValidatorIndex>(v % n_);
  }

  /// Entry of an occupied handle; null for kInvalidVertex / pruned / absent.
  const Entry* find(VertexId v) const;

  /// Cold-round tiering (IndexConfig::cold_round_lag): RLE-compress /
  /// restore the ancestor-bitmap words of one round's entries. Mirrors the
  /// arena's parent-slab tiering; a round is always wholly hot or cold.
  void compress_round(Round r);
  void maybe_rehydrate(Round r) const;
  void rehydrate_round(Round r, const std::vector<std::uint8_t>& blob);

  const crypto::Committee& committee_;
  IndexConfig config_;
  std::size_t n_;
  std::size_t words_per_round_;

  /// Per-vertex entries, slab-ring keyed exactly like the arena.
  RoundRing<Entry> entries_;
  /// Referenced-slot mask per round (words_per_round_ slots): authors whose
  /// vertex has at least one recorded child edge. Every bit in any entry's
  /// bitmap at round r originates from a direct edge, so the mask is a
  /// superset of any parent's bits there — a sound saturation bound for
  /// short-circuiting propagation.
  RoundRing<std::uint64_t> referenced_;

  std::set<Round> supported_rounds_;
  /// Reused scratch for on_insert's union pass (present parents only).
  std::vector<std::pair<Round, const Entry*>> parent_entries_;
  /// Gc floor as of the last prune; gates sharing ancestor bitmaps.
  Round floor_ = 0;
  /// Bitmap buffers recycled from pruned entries (bounded).
  std::vector<std::vector<std::uint64_t>> words_pool_;
  std::uint64_t insert_seq_ = 0;
  std::uint64_t crossings_ = 0;
  std::size_t entry_count_ = 0;
  std::size_t total_words_ = 0;
  /// Tiering state: rounds below tier_cursor_ are compressed, rehydrated or
  /// pruned (one comparison guards the hot lookup path).
  Round tier_cursor_ = 0;
  Round max_round_seen_ = 0;
  mutable std::unordered_map<Round, std::vector<std::uint8_t>> cold_rounds_;
  mutable std::size_t cold_bitmap_bytes_ = 0;
  mutable IndexStats stats_;
};

}  // namespace hammerhead::dag

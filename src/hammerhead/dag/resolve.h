// Digest -> VertexId resolution as a read-mostly snapshot structure.
//
// The arena's digest side table used to be a plain unordered_map: correct
// for the single-threaded owner path, but anything cross-thread would have
// needed a lock around every probe. DigestResolver replaces it with a
// left-right pair of open-addressed tables keyed by the digest's first
// 8 bytes (Digest::prefix64() — SHA-256 output, so the prefix is already a
// full-strength hash; no re-hashing on any path):
//
//   * The OWNER (the validator's shard thread, or the driver) mutates the
//     writer table directly: insert/erase/find are plain code with
//     read-your-writes — a certificate inserted earlier in the same wave
//     resolves immediately, which the deterministic-trace invariant
//     requires.
//   * publish(domain) — driver-only, at a batch boundary — release-stores
//     the writer table as the published snapshot and rebuilds the offstage
//     instance: same-capacity publishes wait one (free, at the wave
//     barrier) grace period and replay the op log; capacity changes copy
//     the live set and hand the superseded arrays to epoch::Domain::retire,
//     reclaimed after grace (the gauge-visible EBR path).
//   * READERS on any thread call find_published() under an epoch::Guard:
//     one acquire load of the snapshot pointer, then plain probes. Zero
//     locks, zero atomic RMW — asserted per call in debug builds via
//     epoch::rmw_op_count(). Snapshots are immutable once published, so a
//     reader sees a consistent (at most one batch stale) view.
//
// Erase uses tombstones so published probe chains stay intact; publish
// compacts the offstage table when tombstones dominate. See
// ARCHITECTURE.md "Read-mostly concurrency".
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "hammerhead/common/digest.h"
#include "hammerhead/common/epoch.h"

namespace hammerhead::dag {

/// Integer vertex handle: round * n + author. Unique forever (not just while
/// resident); resolution fails cleanly after the round is pruned.
using VertexId = std::uint64_t;
inline constexpr VertexId kInvalidVertex = ~VertexId{0};

class DigestResolver {
 public:
  struct Stats {
    std::uint64_t publishes = 0;      ///< snapshots made visible to readers
    std::uint64_t rebuilds = 0;       ///< grow/compact table rebuilds
    std::uint64_t retired_tables = 0; ///< superseded arrays handed to EBR
    std::uint64_t retired_bytes = 0;  ///< cumulative bytes of those arrays
    std::size_t entries = 0;          ///< live digests (writer view)
    std::size_t tombstones = 0;
    std::size_t capacity = 0;         ///< writer-table slots
    std::size_t bytes = 0;            ///< both instances, logical size
  };

  explicit DigestResolver(std::size_t initial_capacity = 64);
  DigestResolver(const DigestResolver&) = delete;
  DigestResolver& operator=(const DigestResolver&) = delete;
  ~DigestResolver();

  // ------------------------------------------------- owner (single thread)

  /// Map `d` to `v`. False if the digest is already present (unchanged).
  bool insert(const Digest& d, VertexId v);

  /// Remove `d`. False if absent.
  bool erase(const Digest& d);

  /// Read-your-writes lookup against the writer table.
  VertexId find(const Digest& d) const;

  std::size_t size() const { return size_; }

  // ----------------------------------------------------- driver (publisher)

  /// Make every mutation since the last publish visible to readers and
  /// bring the offstage instance up to date (see file comment). No-op when
  /// nothing changed. Driver thread only, at a quiescent point.
  void publish(epoch::Domain& domain);

  // ------------------------------------------------- readers (any thread)

  /// Wait-free snapshot lookup; call under an epoch::Guard. Returns the
  /// handle in the latest published snapshot, kInvalidVertex if absent (or
  /// nothing was published yet). At most one batch stale by construction.
  VertexId find_published(const Digest& d) const;

  Stats stats() const;

 private:
  /// Slot ids: kEmpty terminates probe chains, kTomb keeps them alive
  /// through erases. Both unreachable as real handles (kInvalidVertex and
  /// its predecessor; real ids are round * n + author with sane bounds).
  static constexpr VertexId kEmpty = kInvalidVertex;
  static constexpr VertexId kTomb = kInvalidVertex - 1;

  struct Entry {
    Digest digest;
    VertexId id = kEmpty;
  };

  struct Table {
    std::uint64_t mask = 0;  ///< capacity - 1 (capacity is a power of two)
    Entry* slots = nullptr;
    /// Occupied slots (live + tombstones) — bounds probe-chain length and
    /// proves replay onto this instance cannot fill it solid.
    std::size_t used = 0;

    std::size_t capacity() const { return mask + 1; }
    std::size_t bytes() const { return capacity() * sizeof(Entry); }
  };

  struct Op {
    Digest digest;
    VertexId id;  ///< kTomb encodes an erase
  };

  static Table make_table(std::size_t capacity);
  static VertexId probe_find(const Table& t, const Digest& d);
  /// Insert into `t` without duplicate checking (rebuild path).
  static void probe_insert_new(Table& t, const Digest& d, VertexId v);

  /// Grow/compact the writer table to `capacity`, rehashing live entries.
  void rebuild_writer(std::size_t capacity);
  std::size_t needed_capacity() const;

  /// The mutable instance. Never the published one: publish() hands this
  /// header to readers and installs a different one (the previous snapshot
  /// after grace + replay, or a fresh copy) as the next writer, so owner
  /// mutations — including mid-batch rebuilds — touch memory no reader
  /// can reach.
  Table* writer_;
  std::atomic<Table*> published_{nullptr};
  /// Mutations since the last publish, replayed onto the previous snapshot
  /// when it comes back as the writer.
  std::vector<Op> log_;
  /// Live digest count (content-level, table-independent; a table's
  /// tombstone count is its `used` minus this).
  std::size_t size_ = 0;
  std::uint64_t publishes_ = 0;
  std::uint64_t rebuilds_ = 0;
  std::uint64_t retired_tables_ = 0;
  std::uint64_t retired_bytes_ = 0;
};

}  // namespace hammerhead::dag

// DAG vertex types: transactions, headers, votes, certificates.
//
// This mirrors Narwhal's data model (the substrate Bullshark and HammerHead
// run on): each validator proposes one *header* per round referencing >= 2f+1
// certificates of the previous round; validators countersign at most one
// header per (author, round); 2f+1 votes form a *certificate*, the DAG vertex.
// Certificates are transferable proof of reliable broadcast: at most one can
// exist per (author, round), so the DAG is equivocation-free by construction.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "hammerhead/common/digest.h"
#include "hammerhead/common/serde.h"
#include "hammerhead/common/types.h"
#include "hammerhead/crypto/committee.h"
#include "hammerhead/crypto/keys.h"

namespace hammerhead::dag {

/// A client transaction. The paper's workload is "simple increments of a
/// shared counter"; what matters for the benchmarks is the submission time
/// (for latency) and identity (for counting distinct committed transactions).
struct Transaction {
  TxId id = 0;
  ValidatorIndex submitted_to = 0;
  SimTime submit_time = 0;

  /// Wire size of one transaction in bytes (shared-counter increment tx,
  /// including signature and envelope — matches the order of magnitude of the
  /// paper's benchmark transactions).
  static constexpr std::size_t kWireSize = 512;
};

struct BlockPayload {
  std::vector<Transaction> txs;
  std::size_t wire_size() const { return txs.size() * Transaction::kWireSize; }
};

using PayloadPtr = std::shared_ptr<const BlockPayload>;

struct Header {
  Header() = default;
  /// Copyable despite the atomic memo flag (tests clone-and-tamper
  /// headers); the copy re-verifies from scratch.
  Header(const Header& other)
      : author(other.author),
        round(other.round),
        parents(other.parents),
        payload(other.payload),
        created_at(other.created_at),
        digest(other.digest),
        signature(other.signature) {}
  Header& operator=(const Header&) = delete;

  ValidatorIndex author = 0;
  Round round = 0;
  /// Digests of parent certificates at `round - 1`. Empty only for round 0.
  std::vector<Digest> parents;
  PayloadPtr payload;
  SimTime created_at = 0;

  // Filled by finalize():
  Digest digest;
  crypto::Signature signature;

  /// Compute the content digest and author signature. Must be called once,
  /// after all other fields are set.
  void finalize(const crypto::Keypair& author_key);

  /// Recompute the digest from content (verification side). Serializes into
  /// reusable thread-local scratch — zero heap allocations in steady state
  /// (asserted by the operator-new gauge in bench_micro_crypto).
  Digest compute_digest() const;

  /// The digest preimage, byte-for-byte (the injective content encoding).
  void encode_for_digest(ByteWriter& w) const;
  /// Exact size of that encoding; lets batch_verify and compute_digest size
  /// their scratch without a trial pass (drift from encode_for_digest is
  /// caught by the span-mode overflow assert).
  std::size_t digest_preimage_size() const;

  /// Digest + author-signature check, memoized per object: headers are
  /// immutable and shared by pointer inside the simulation, so checking the
  /// same object on every delivery would only burn host CPU. The simulated
  /// CPU cost of verification is charged by the node's cost model regardless.
  bool verify_content(const crypto::Committee& committee) const;

  /// Batch-verification hooks (dag::batch_verify): the memo is
  /// value-canonical — every verifier computes the same verdict from
  /// immutable fields — so a batch pass may warm it for many headers at
  /// once and later verify_content calls become memo hits. Racing writers
  /// store the same value (see verify_state_).
  bool content_check_pending() const {
    return verify_state_.load(std::memory_order_relaxed) == 0;
  }
  void note_content_check(bool ok) const {
    verify_state_.store(ok ? 1 : 2, std::memory_order_relaxed);
  }

  std::size_t wire_size() const {
    return 128 + parents.size() * Digest::kSize +
           (payload ? payload->wire_size() : 0);
  }

 private:
  /// 0 unknown, 1 ok, 2 bad. Atomic: under sharded execution two
  /// validators may verify the same shared header concurrently; both
  /// compute the same value from immutable fields, so relaxed ordering
  /// suffices — the atomic only removes the write/write race on the flag.
  mutable std::atomic<std::uint8_t> verify_state_{0};
};

using HeaderPtr = std::shared_ptr<const Header>;

/// A validator's signature over somebody's header.
struct Vote {
  Digest header_digest;
  Round round = 0;
  ValidatorIndex header_author = 0;
  ValidatorIndex voter = 0;
  crypto::Signature signature;

  static Vote make(const Header& header, ValidatorIndex voter,
                   const crypto::Keypair& voter_key);
  bool verify(const crypto::Committee& committee) const;
};

/// The DAG vertex: a header plus a quorum of votes. In the simulation the
/// certificate carries the full header (and payload) by shared pointer.
/// enable_shared_from_this: deferred memo publication (below) pins the
/// certificate through the epoch domain's queue; Certificate::make always
/// allocates via make_shared, so weak_from_this is well-formed there.
struct Certificate : std::enable_shared_from_this<Certificate> {
  Certificate() = default;
  /// Copyable for clone-and-tamper tests: the copy starts with every memo
  /// and verification cache cleared (one place — reset_memos — so a new
  /// cache cannot be forgotten here) and must re-verify from scratch.
  Certificate(const Certificate& other)
      : std::enable_shared_from_this<Certificate>(),  // fresh control block
        header(other.header),
        signers(other.signers),
        parent_order_(other.parent_order_) {
    reset_memos();
  }
  Certificate& operator=(const Certificate&) = delete;

  /// Clear the verification flag and both shared memos. Used by the copy
  /// constructor and any path that tampers with a certificate's fields and
  /// needs recomputation (tests). Not for shared certificates inside a
  /// running simulation — concurrent readers assume memos are write-once.
  void reset_memos() {
    verify_state_.store(0, std::memory_order_relaxed);
    parent_memo_state_.store(0, std::memory_order_relaxed);
    parent_memo_.clear();
    ancestor_memo_state_.store(0, std::memory_order_relaxed);
    ancestor_memo_.clear();
    ancestor_memo_lo_ = 0;
    ancestor_memo_wpr_ = 0;
  }

  HeaderPtr header;
  /// Sorted, deduplicated voter indices whose combined stake reaches the
  /// quorum threshold (includes the author's own signature).
  std::vector<ValidatorIndex> signers;

  ValidatorIndex author() const { return header->author; }
  Round round() const { return header->round; }
  /// A certificate is uniquely identified by its header digest (at most one
  /// certificate can form per (author, round) thanks to vote uniqueness).
  const Digest& digest() const { return header->digest; }
  const std::vector<Digest>& parents() const { return header->parents; }

  /// True iff `d` is among this certificate's parent digests. Binary search
  /// over a digest-sorted permutation of header->parents — no duplicated
  /// digest storage (the permutation costs 2 bytes per parent vs ~56 bytes
  /// per unordered_set node; see ARCHITECTURE.md for the n=100 delta).
  bool has_parent(const Digest& d) const;

  /// Bytes of per-certificate parent-lookup state (the sorted permutation).
  std::size_t parent_index_bytes() const {
    return parent_order_.capacity() * sizeof(std::uint16_t);
  }

  /// Total stake of the signers.
  Stake signer_stake(const crypto::Committee& committee) const;

  /// Structural validity: quorum of distinct valid signers over this header.
  bool verify(const crypto::Committee& committee) const;

  std::size_t wire_size() const {
    return header->wire_size() + signers.size() * 40;
  }

  static std::shared_ptr<const Certificate> make(
      HeaderPtr header, std::vector<ValidatorIndex> signers);

  /// Memoized parent handles (see Dag::try_insert): the arena's vertex-id
  /// geometry (round * n + author) is committee-wide, so the first validator
  /// to fully resolve this certificate's parents caches the handles for the
  /// other n-1 — they re-verify residency + digest against their own arena
  /// instead of hashing every parent digest. nullptr until memoized;
  /// entry[i] corresponds to parents()[i].
  ///
  /// Publication protocol (write-once-per-epoch, read-wait-free): the memo
  /// value is canonical — every validator would compute the identical
  /// vector — so publication needs a single writer, never a winner
  /// election. A shard worker that computed the handles inside an
  /// epoch::Guard hands a publication closure to epoch::Domain::defer();
  /// the driver runs all deferred publications at the next batch boundary,
  /// where the first fills the vector with plain stores and release-stores
  /// `ready` (later duplicates see state != 0 and drop out).
  /// Single-threaded execution, with no guard active, publishes directly.
  /// Readers acquire-load `ready` — no lock, no atomic RMW — before
  /// touching the vector. Whether a reader hits or misses the memo is
  /// timing-dependent, but the outcome of either path is identical, so
  /// traces stay bit-identical.
  const std::vector<std::uint64_t>* parent_handle_memo() const {
    return parent_memo_state_.load(std::memory_order_acquire) == 2
               ? &parent_memo_
               : nullptr;
  }
  void memoize_parent_handles(const std::vector<std::uint64_t>& ids) const;

  /// Memoized ancestor bitmap (see DagIndex::on_insert): with identical
  /// window geometry and causally complete parents, the window-clamped
  /// ancestor bitmap of this vertex is the same in every validator's index,
  /// so the first computation is shared. Only stored when the producer's gc
  /// floor sat at/below the window base, making the rows canonical for any
  /// consumer whose floor is higher. Same deferred single-writer
  /// publication as the parent-handle memo.
  const std::vector<std::uint64_t>* ancestor_bitmap_memo(
      std::uint64_t lo, std::uint32_t words_per_round) const {
    return ancestor_memo_state_.load(std::memory_order_acquire) == 2 &&
                   ancestor_memo_lo_ == lo &&
                   ancestor_memo_wpr_ == words_per_round
               ? &ancestor_memo_
               : nullptr;
  }
  void memoize_ancestor_bitmap(std::uint64_t lo, std::uint32_t words_per_round,
                               const std::vector<std::uint64_t>& words) const;

 private:
  /// Single-writer publication bodies (driver thread, or any thread when no
  /// guard is active — then provably unshared). First writer wins; see
  /// memoize_parent_handles.
  void publish_parent_memo(const std::vector<std::uint64_t>& ids) const;
  void publish_ancestor_memo(std::uint64_t lo, std::uint32_t words_per_round,
                             const std::vector<std::uint64_t>& words) const;

  /// Indices into header->parents, ordered by digest (for has_parent).
  std::vector<std::uint16_t> parent_order_;
  /// Memoized verify(); see Header::verify_state_.
  mutable std::atomic<std::uint8_t> verify_state_{0};
  mutable std::vector<std::uint64_t> parent_memo_;
  /// 0 empty, 2 ready. (No "being written" state: publication is
  /// single-writer, at a point where no concurrent reader exists.)
  mutable std::atomic<std::uint8_t> parent_memo_state_{0};
  mutable std::vector<std::uint64_t> ancestor_memo_;
  mutable std::uint64_t ancestor_memo_lo_ = 0;
  mutable std::uint32_t ancestor_memo_wpr_ = 0;
  mutable std::atomic<std::uint8_t> ancestor_memo_state_{0};
};

using CertPtr = std::shared_ptr<const Certificate>;

/// Domain-separation contexts for signatures.
inline constexpr const char* kHeaderSigContext = "narwhal-header";
inline constexpr const char* kVoteSigContext = "narwhal-vote";

/// Verify a batch of certificates, hashing their header preimages in
/// lockstep lanes (crypto::BatchHasher) instead of one digest per cert.
/// Semantically identical to calling cert->verify(committee) on each —
/// the batch pass only *warms* the value-canonical per-object memos, so
/// callers keep their per-cert loops (and early-exit behavior) and traces
/// stay bit-identical whichever kernel ran. Null entries are ignored.
/// Returns the number of certificates that verified.
std::size_t batch_verify(std::span<const CertPtr> certs,
                         const crypto::Committee& committee);

}  // namespace hammerhead::dag

#include "hammerhead/dag/resolve.h"

#include "hammerhead/common/assert.h"

namespace hammerhead::dag {

DigestResolver::DigestResolver(std::size_t initial_capacity) {
  std::size_t cap = 64;
  while (cap < initial_capacity) cap <<= 1;
  writer_ = new Table(make_table(cap));
}

DigestResolver::~DigestResolver() {
  Table* pub = published_.load(std::memory_order_relaxed);
  if (pub != nullptr && pub != writer_) {
    delete[] pub->slots;
    delete pub;
  }
  delete[] writer_->slots;
  delete writer_;
}

DigestResolver::Table DigestResolver::make_table(std::size_t capacity) {
  Table t;
  t.mask = capacity - 1;
  t.slots = new Entry[capacity];  // Entry default-inits id to kEmpty
  return t;
}

VertexId DigestResolver::probe_find(const Table& t, const Digest& d) {
  std::uint64_t i = d.prefix64() & t.mask;
  for (;;) {
    const Entry& e = t.slots[i];
    if (e.id == kEmpty) return kInvalidVertex;
    if (e.id != kTomb && e.digest == d) return e.id;
    i = (i + 1) & t.mask;
  }
}

void DigestResolver::probe_insert_new(Table& t, const Digest& d, VertexId v) {
  std::uint64_t i = d.prefix64() & t.mask;
  while (t.slots[i].id != kEmpty && t.slots[i].id != kTomb)
    i = (i + 1) & t.mask;
  if (t.slots[i].id == kEmpty) ++t.used;
  t.slots[i].digest = d;
  t.slots[i].id = v;
}

std::size_t DigestResolver::needed_capacity() const {
  std::size_t cap = 64;
  while (cap * 7 < (size_ + 1) * 10) cap <<= 1;
  return cap;
}

void DigestResolver::rebuild_writer(std::size_t capacity) {
  Table fresh = make_table(capacity);
  const std::size_t old_cap = writer_->capacity();
  for (std::size_t i = 0; i < old_cap; ++i) {
    const Entry& e = writer_->slots[i];
    if (e.id != kEmpty && e.id != kTomb)
      probe_insert_new(fresh, e.digest, e.id);
  }
  // The writer table is by construction unreachable from readers (see the
  // writer_ field comment), so the superseded array dies immediately — no
  // grace period needed.
  delete[] writer_->slots;
  *writer_ = fresh;
  ++rebuilds_;
}

bool DigestResolver::insert(const Digest& d, VertexId v) {
  HH_ASSERT(v < kTomb);
  // Keep (live + tombstone) occupancy under 70% so probe chains stay short
  // and the probe loops terminate.
  if ((writer_->used + 1) * 10 >= writer_->capacity() * 7)
    rebuild_writer(needed_capacity());
  std::uint64_t i = d.prefix64() & writer_->mask;
  std::uint64_t place = kInvalidVertex;  // first tombstone seen, if any
  for (;;) {
    Entry& e = writer_->slots[i];
    if (e.id == kEmpty) break;
    if (e.id == kTomb) {
      if (place == kInvalidVertex) place = i;
    } else if (e.digest == d) {
      return false;
    }
    i = (i + 1) & writer_->mask;
  }
  if (place != kInvalidVertex)
    i = place;
  else
    ++writer_->used;
  writer_->slots[i].digest = d;
  writer_->slots[i].id = v;
  ++size_;
  log_.push_back(Op{d, v});
  return true;
}

bool DigestResolver::erase(const Digest& d) {
  std::uint64_t i = d.prefix64() & writer_->mask;
  for (;;) {
    Entry& e = writer_->slots[i];
    if (e.id == kEmpty) return false;
    if (e.id != kTomb && e.digest == d) {
      e.id = kTomb;  // keeps published-twin probe chains replayable
      --size_;
      log_.push_back(Op{d, kTomb});
      return true;
    }
    i = (i + 1) & writer_->mask;
  }
}

VertexId DigestResolver::find(const Digest& d) const {
  return probe_find(*writer_, d);
}

VertexId DigestResolver::find_published(const Digest& d) const {
#ifndef NDEBUG
  HH_ASSERT_MSG(epoch::current() != nullptr,
                "find_published outside an epoch::Guard");
  const std::uint64_t rmw_before = epoch::rmw_op_count();
#endif
  const Table* t = published_.load(std::memory_order_acquire);
  const VertexId v = t == nullptr ? kInvalidVertex : probe_find(*t, d);
#ifndef NDEBUG
  // The acceptance invariant: the reader lookup path performs zero atomic
  // read-modify-writes — one acquire load plus plain probes.
  HH_ASSERT(epoch::rmw_op_count() == rmw_before);
#endif
  return v;
}

void DigestResolver::publish(epoch::Domain& domain) {
  Table* old_pub = published_.load(std::memory_order_relaxed);
  if (log_.empty() && old_pub != nullptr) return;  // snapshot already current
  // From here readers resolve against what was the writer table. The
  // store also publishes the slot contents (release pairs with the
  // acquire in find_published).
  published_.store(writer_, std::memory_order_release);
  ++publishes_;

  // Replaying is only sound when the twin has the same geometry, few
  // enough tombstones that it is not due for compaction, and headroom for
  // this batch's net inserts (log_.size() over-counts, conservatively).
  const bool geometry_kept =
      old_pub != nullptr && old_pub->mask == writer_->mask &&
      (writer_->used - size_) * 2 <= size_ + 1 &&
      (old_pub->used + log_.size()) * 10 < old_pub->capacity() * 9;
  if (geometry_kept) {
    // Reuse the previous snapshot as the next writer: wait out readers
    // still probing it (free at the wave barrier — every worker is
    // parked), then bring it up to date by replaying this batch's ops.
    // The twin holds the same live set (same op history), so every erase
    // finds its target and no insert duplicates; layouts may differ after
    // a past compaction, which replay tolerates by probing normally.
    domain.synchronize();
    for (const Op& op : log_) {
      if (op.id == kTomb) {
        std::uint64_t i = op.digest.prefix64() & old_pub->mask;
        for (;;) {
          Entry& e = old_pub->slots[i];
          if (e.id != kEmpty && e.id != kTomb && e.digest == op.digest) {
            e.id = kTomb;
            break;
          }
          HH_ASSERT(e.id != kEmpty);  // erase replay must find its target
          i = (i + 1) & old_pub->mask;
        }
      } else {
        std::uint64_t i = op.digest.prefix64() & old_pub->mask;
        std::uint64_t place = kInvalidVertex;
        for (;;) {
          Entry& e = old_pub->slots[i];
          if (e.id == kEmpty) break;
          if (e.id == kTomb && place == kInvalidVertex) place = i;
          i = (i + 1) & old_pub->mask;
        }
        if (place != kInvalidVertex)
          i = place;
        else
          ++old_pub->used;
        old_pub->slots[i].digest = op.digest;
        old_pub->slots[i].id = op.id;
      }
    }
    writer_ = old_pub;
  } else {
    // Geometry changed (growth / tombstone compaction / first publish):
    // build a fresh writer from the just-published table — immutable now,
    // so reading it races with nobody — and retire the superseded
    // snapshot through the domain. Its arrays stay probeable by already-
    // pinned readers until grace passes; reclaim happens at a later
    // advance(). This is the EBR path the retired-bytes gauge watches.
    const Table* src = published_.load(std::memory_order_relaxed);
    Table* fresh = new Table(make_table(needed_capacity()));
    const std::size_t cap = src->capacity();
    for (std::size_t i = 0; i < cap; ++i) {
      const Entry& e = src->slots[i];
      if (e.id != kEmpty && e.id != kTomb)
        probe_insert_new(*fresh, e.digest, e.id);
    }
    if (old_pub != nullptr) {
      retired_bytes_ += old_pub->bytes();
      ++retired_tables_;
      domain.retire(old_pub->slots,
                    [](void* p) { delete[] static_cast<Entry*>(p); },
                    old_pub->bytes());
      domain.retire(
          old_pub, [](void* p) { delete static_cast<Table*>(p); },
          sizeof(Table));
    }
    writer_ = fresh;
    ++rebuilds_;
  }
  log_.clear();
}

DigestResolver::Stats DigestResolver::stats() const {
  Stats st;
  st.publishes = publishes_;
  st.rebuilds = rebuilds_;
  st.retired_tables = retired_tables_;
  st.retired_bytes = retired_bytes_;
  st.entries = size_;
  st.tombstones = writer_->used - size_;
  st.capacity = writer_->capacity();
  st.bytes = writer_->bytes();
  const Table* pub = published_.load(std::memory_order_relaxed);
  if (pub != nullptr && pub != writer_) st.bytes += pub->bytes();
  return st;
}

}  // namespace hammerhead::dag

// LEB128 varints and zigzag signed mapping, used by the cold-round memory
// tier (dag/arena.h, dag/index.h) to pack parent-handle and bitmap slabs.
// Not a wire format: blobs never leave the process and are decoded by the
// same build that encoded them.
#pragma once

#include <cstdint>
#include <vector>

namespace hammerhead {

inline void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

/// Decodes from `p` (must point at a valid encoding); returns one past the
/// last consumed byte.
inline const std::uint8_t* get_varint(const std::uint8_t* p,
                                      std::uint64_t& v) {
  v = 0;
  unsigned shift = 0;
  while (*p & 0x80) {
    v |= static_cast<std::uint64_t>(*p++ & 0x7f) << shift;
    shift += 7;
  }
  v |= static_cast<std::uint64_t>(*p++) << shift;
  return p;
}

/// Zigzag: small-magnitude signed deltas map to small unsigned varints.
inline std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t zigzag_decode(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

}  // namespace hammerhead

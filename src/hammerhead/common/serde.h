// Deterministic byte serialization used to compute content digests.
//
// This is not a wire format (the simulator passes shared immutable objects);
// it only needs to be an injective encoding so that digests commit to every
// field. Integers are encoded little-endian fixed-width; containers are
// length-prefixed.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string_view>
#include <vector>

#include "hammerhead/common/assert.h"

namespace hammerhead {

/// Two storage modes, one encoding:
///   * owned (default) — appends into an internal vector; the convenient
///     mode for cold paths (key derivation, state digests).
///   * span — writes into caller-provided fixed-capacity storage, zero heap
///     traffic; the hot-path mode for Header::compute_digest, whose callers
///     precompute the exact preimage size into reusable scratch. Overflow is
///     a programming error (the size precomputation drifted from the
///     encoding), asserted loudly rather than grown silently.
/// The bytes produced are identical in both modes — digests and committed
/// trace hashes depend on that.
class ByteWriter {
 public:
  ByteWriter() = default;

  /// Span mode over `scratch`; the writer does not own the storage and must
  /// not outlive it.
  explicit ByteWriter(std::span<std::uint8_t> scratch)
      : ext_(scratch.data()), ext_cap_(scratch.size()) {}

  void u8(std::uint8_t v) { append(&v, 1); }

  void u32(std::uint32_t v) { append_le(v); }

  void u64(std::uint64_t v) { append_le(v); }

  void i64(std::int64_t v) { append_le(static_cast<std::uint64_t>(v)); }

  void bytes(std::span<const std::uint8_t> data) {
    u64(data.size());
    append(data.data(), data.size());
  }

  void str(std::string_view s) {
    bytes({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
  }

  /// Everything written so far; valid in both modes (invalidated by further
  /// writes in owned mode).
  std::span<const std::uint8_t> view() const {
    return ext_ != nullptr ? std::span<const std::uint8_t>(ext_, ext_len_)
                           : std::span<const std::uint8_t>(buf_);
  }

  /// Owned-mode accessor (kept for existing callers that hand the vector
  /// to hashing or storage helpers).
  const std::vector<std::uint8_t>& data() const {
    HH_ASSERT(ext_ == nullptr);
    return buf_;
  }

 private:
  void append(const std::uint8_t* p, std::size_t n) {
    if (n == 0) return;  // empty spans may carry a null data pointer
    if (ext_ != nullptr) {
      HH_ASSERT_MSG(ext_len_ + n <= ext_cap_,
                    "ByteWriter span overflow: cap " << ext_cap_);
      std::memcpy(ext_ + ext_len_, p, n);
      ext_len_ += n;
    } else {
      buf_.insert(buf_.end(), p, p + n);
    }
  }

  template <typename T>
  void append_le(T v) {
    std::uint8_t tmp[sizeof(T)];
    std::memcpy(tmp, &v, sizeof(T));  // host is little-endian on all targets
    append(tmp, sizeof(T));
  }

  std::vector<std::uint8_t> buf_;
  std::uint8_t* ext_ = nullptr;
  std::size_t ext_cap_ = 0;
  std::size_t ext_len_ = 0;
};

}  // namespace hammerhead

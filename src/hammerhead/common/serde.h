// Deterministic byte serialization used to compute content digests — and,
// since the checkpoint subsystem, to persist run state.
//
// ByteWriter is not a wire format between nodes (the simulator passes shared
// immutable objects); it only needs to be an injective encoding so that
// digests commit to every field. Integers are encoded little-endian
// fixed-width; containers are length-prefixed. ByteReader is the exact
// inverse decoder, used by harness/checkpoint.{h,cpp} to read versioned
// snapshot files back; every read is bounds-checked so a truncated or
// corrupted snapshot fails loudly instead of reading garbage.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "hammerhead/common/assert.h"

namespace hammerhead {

/// Two storage modes, one encoding:
///   * owned (default) — appends into an internal vector; the convenient
///     mode for cold paths (key derivation, state digests).
///   * span — writes into caller-provided fixed-capacity storage, zero heap
///     traffic; the hot-path mode for Header::compute_digest, whose callers
///     precompute the exact preimage size into reusable scratch. Overflow is
///     a programming error (the size precomputation drifted from the
///     encoding), asserted loudly rather than grown silently.
/// The bytes produced are identical in both modes — digests and committed
/// trace hashes depend on that.
class ByteWriter {
 public:
  ByteWriter() = default;

  /// Span mode over `scratch`; the writer does not own the storage and must
  /// not outlive it.
  explicit ByteWriter(std::span<std::uint8_t> scratch)
      : ext_(scratch.data()), ext_cap_(scratch.size()) {}

  void u8(std::uint8_t v) { append(&v, 1); }

  void u32(std::uint32_t v) { append_le(v); }

  void u64(std::uint64_t v) { append_le(v); }

  void i64(std::int64_t v) { append_le(static_cast<std::uint64_t>(v)); }

  void bytes(std::span<const std::uint8_t> data) {
    u64(data.size());
    append(data.data(), data.size());
  }

  void str(std::string_view s) {
    bytes({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
  }

  /// Everything written so far; valid in both modes (invalidated by further
  /// writes in owned mode).
  std::span<const std::uint8_t> view() const {
    return ext_ != nullptr ? std::span<const std::uint8_t>(ext_, ext_len_)
                           : std::span<const std::uint8_t>(buf_);
  }

  /// Owned-mode accessor (kept for existing callers that hand the vector
  /// to hashing or storage helpers).
  const std::vector<std::uint8_t>& data() const {
    HH_ASSERT(ext_ == nullptr);
    return buf_;
  }

 private:
  void append(const std::uint8_t* p, std::size_t n) {
    if (n == 0) return;  // empty spans may carry a null data pointer
    if (ext_ != nullptr) {
      HH_ASSERT_MSG(ext_len_ + n <= ext_cap_,
                    "ByteWriter span overflow: cap " << ext_cap_);
      std::memcpy(ext_ + ext_len_, p, n);
      ext_len_ += n;
    } else {
      buf_.insert(buf_.end(), p, p + n);
    }
  }

  template <typename T>
  void append_le(T v) {
    std::uint8_t tmp[sizeof(T)];
    std::memcpy(tmp, &v, sizeof(T));  // host is little-endian on all targets
    append(tmp, sizeof(T));
  }

  std::vector<std::uint8_t> buf_;
  std::uint8_t* ext_ = nullptr;
  std::size_t ext_cap_ = 0;
  std::size_t ext_len_ = 0;
};

/// Decoding error for externally supplied bytes (checkpoint files). Unlike
/// HH_ASSERT — which flags programming errors — a SerdeError is an expected
/// runtime condition (torn write after SIGKILL, stale format) that callers
/// catch and recover from (e.g. fall back to the previous checkpoint).
class SerdeError : public std::runtime_error {
 public:
  explicit SerdeError(const std::string& what) : std::runtime_error(what) {}
};

/// Bounds-checked decoder over a byte span; the exact inverse of ByteWriter.
/// Does not own the storage. Every accessor throws SerdeError on underflow,
/// never reads past the span, and remaining() lets callers assert that a
/// record consumed exactly its payload.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() {
    std::uint8_t v;
    take(&v, 1);
    return v;
  }

  std::uint32_t u32() { return take_le<std::uint32_t>(); }

  std::uint64_t u64() { return take_le<std::uint64_t>(); }

  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  /// Length-prefixed byte string (inverse of ByteWriter::bytes). The
  /// returned span aliases the underlying storage.
  std::span<const std::uint8_t> bytes() {
    const std::uint64_t n = u64();
    if (n > remaining())
      throw SerdeError("ByteReader: byte-string length " + std::to_string(n) +
                       " exceeds remaining " + std::to_string(remaining()));
    std::span<const std::uint8_t> out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  /// Length-prefixed string (inverse of ByteWriter::str).
  std::string str() {
    std::span<const std::uint8_t> b = bytes();
    return std::string(reinterpret_cast<const char*>(b.data()), b.size());
  }

  std::size_t remaining() const { return data_.size() - pos_; }
  std::size_t position() const { return pos_; }
  bool exhausted() const { return pos_ == data_.size(); }

 private:
  void take(std::uint8_t* out, std::size_t n) {
    if (n > remaining())
      throw SerdeError("ByteReader: underflow reading " + std::to_string(n) +
                       " byte(s) at offset " + std::to_string(pos_));
    std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
  }

  template <typename T>
  T take_le() {
    std::uint8_t tmp[sizeof(T)];
    take(tmp, sizeof(T));
    T v;
    std::memcpy(&v, tmp, sizeof(T));  // host is little-endian on all targets
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace hammerhead

// Deterministic byte serialization used to compute content digests.
//
// This is not a wire format (the simulator passes shared immutable objects);
// it only needs to be an injective encoding so that digests commit to every
// field. Integers are encoded little-endian fixed-width; containers are
// length-prefixed.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace hammerhead {

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }

  void u32(std::uint32_t v) { append_le(v); }

  void u64(std::uint64_t v) { append_le(v); }

  void i64(std::int64_t v) { append_le(static_cast<std::uint64_t>(v)); }

  void bytes(std::span<const std::uint8_t> data) {
    u64(data.size());
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  void str(const std::string& s) {
    bytes({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
  }

  const std::vector<std::uint8_t>& data() const { return buf_; }

 private:
  template <typename T>
  void append_le(T v) {
    std::uint8_t tmp[sizeof(T)];
    std::memcpy(tmp, &v, sizeof(T));  // host is little-endian on all targets
    buf_.insert(buf_.end(), tmp, tmp + sizeof(T));
  }

  std::vector<std::uint8_t> buf_;
};

}  // namespace hammerhead

#include "hammerhead/common/epoch.h"

#include <limits>
#include <thread>

namespace hammerhead::epoch {

Domain::~Domain() {
  // No readers may outlive the domain; run whatever publication work is
  // still queued, then free every retiree unconditionally.
  drain_deferred();
  for (Retiree& r : retired_) r.deleter(r.ptr);
  retired_.clear();
}

void Domain::retire(void* p, void (*deleter)(void*), std::size_t bytes) {
  retired_.push_back(Retiree{p, deleter, bytes, epoch()});
  ++retired_objects_;
  retired_bytes_ += bytes;
  pending_bytes_ += bytes;
}

std::uint64_t Domain::min_pinned() const {
  std::uint64_t min = std::numeric_limits<std::uint64_t>::max();
  const std::size_t hwm = slot_hwm_.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < hwm; ++i) {
    const Slot& s = slots_[i];
    if (!s.used.load(std::memory_order_acquire)) continue;
    const std::uint64_t p = s.pinned.load(std::memory_order_acquire);
    if (p != kIdle && p < min) min = p;
  }
  return min;
}

void Domain::drain_deferred() {
  // Steal each queue under its mutex, run outside. The writer only gets
  // here at a quiescent point, so the closures run single-threaded in
  // reader-slot order — a deterministic order, though the closures are
  // value-canonical and would commute anyway.
  std::vector<std::function<void()>> batch;
  const std::size_t hwm = slot_hwm_.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < hwm; ++i) {
    Slot& s = slots_[i];
    if (!s.used.load(std::memory_order_acquire)) continue;
    Reader* r = s.owner;
    if (r == nullptr) continue;
    count_rmw();  // mutex acquisition below
    std::lock_guard<std::mutex> lock(r->defer_mu_);
    if (r->deferred_.empty()) continue;
    if (batch.empty())
      batch = std::move(r->deferred_);
    else
      for (auto& fn : r->deferred_) batch.push_back(std::move(fn));
    r->deferred_.clear();
  }
  {
    count_rmw();
    std::lock_guard<std::mutex> lock(orphan_mu_);
    for (auto& fn : orphan_deferred_) batch.push_back(std::move(fn));
    orphan_deferred_.clear();
  }
  for (auto& fn : batch) {
    fn();
    ++deferred_run_;
  }
}

void Domain::reclaim(std::uint64_t min_pin) {
  if (retired_.empty()) return;
  std::size_t keep = 0;
  for (std::size_t i = 0; i < retired_.size(); ++i) {
    Retiree& r = retired_[i];
    // A reader pinned at epoch P can hold pointers unpublished at any epoch
    // >= P, so a retiree from epoch E is free only when every pin is > E.
    if (r.epoch < min_pin) {
      r.deleter(r.ptr);
      ++freed_objects_;
      freed_bytes_ += r.bytes;
      pending_bytes_ -= r.bytes;
    } else {
      retired_[keep++] = r;
    }
  }
  retired_.resize(keep);
}

void Domain::advance() {
  drain_deferred();
  for (Hook& h : hooks_) h.fn();
  // Plain store: single writer. seq_cst so the epoch bump orders against
  // the pin-slot reads in reclaim() the same way Guard's fence does.
  epoch_.store(epoch() + 1, std::memory_order_seq_cst);
  ++advances_;
  reclaim(min_pinned());
}

void Domain::synchronize() {
  const std::uint64_t target = epoch();
  epoch_.store(target + 1, std::memory_order_seq_cst);
  // At the simulator's batch boundaries every worker is parked at the wave
  // barrier, so the first pass already observes all slots idle. The yield
  // matters only off that path (stress tests, oversubscribed hosts): a
  // pinned reader that lost the CPU must get a timeslice to unpin.
  while (min_pinned() <= target) {
    std::this_thread::yield();
  }
  reclaim(min_pinned());
}

void Domain::defer(std::function<void()> fn) {
  Reader* r = detail::tls_reader;
  if (r != nullptr && r->domain_ == this) {
    count_rmw();
    std::lock_guard<std::mutex> lock(r->defer_mu_);
    r->deferred_.push_back(std::move(fn));
    return;
  }
  count_rmw();
  std::lock_guard<std::mutex> lock(orphan_mu_);
  orphan_deferred_.push_back(std::move(fn));
}

Domain::HookId Domain::add_quiescent_hook(std::function<void()> fn) {
  const HookId id = next_hook_id_++;
  hooks_.push_back(Hook{id, std::move(fn)});
  return id;
}

void Domain::remove_quiescent_hook(HookId id) {
  for (std::size_t i = 0; i < hooks_.size(); ++i) {
    if (hooks_[i].id != id) continue;
    hooks_.erase(hooks_.begin() + static_cast<std::ptrdiff_t>(i));
    return;
  }
}

Domain::Stats Domain::stats() const {
  Stats st;
  st.epoch = epoch();
  st.advances = advances_;
  st.retired_objects = retired_objects_;
  st.retired_bytes = retired_bytes_;
  st.freed_objects = freed_objects_;
  st.freed_bytes = freed_bytes_;
  st.deferred_run = deferred_run_;
  st.pending_objects = retired_.size();
  st.pending_bytes = pending_bytes_;
  const std::size_t hwm = slot_hwm_.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < hwm; ++i)
    if (slots_[i].used.load(std::memory_order_acquire)) ++st.readers;
  return st;
}

Reader::Reader(Domain& domain) : domain_(&domain), slot_(nullptr) {
  for (std::size_t i = 0; i < Domain::kMaxReaders; ++i) {
    Domain::Slot& s = domain.slots_[i];
    bool expected = false;
    count_rmw();  // registration CAS: once per thread, never per lookup
    if (s.used.compare_exchange_strong(expected, true,
                                       std::memory_order_acq_rel)) {
      s.owner = this;
      slot_ = &s;
      // Raise the scan bound (concurrent registrations race benignly).
      std::size_t hwm = domain.slot_hwm_.load(std::memory_order_relaxed);
      while (hwm < i + 1) {
        count_rmw();
        if (domain.slot_hwm_.compare_exchange_weak(hwm, i + 1,
                                                   std::memory_order_acq_rel))
          break;
      }
      return;
    }
  }
  HH_ASSERT_MSG(false, "epoch::Domain reader slots exhausted ("
                           << Domain::kMaxReaders << ")");
}

Reader::~Reader() {
  // The thread may die with publications still queued (a run torn down
  // mid-batch); hand them to the domain so no memo write is lost.
  {
    count_rmw();
    std::lock_guard<std::mutex> lock(defer_mu_);
    if (!deferred_.empty()) {
      count_rmw();
      std::lock_guard<std::mutex> olock(domain_->orphan_mu_);
      for (auto& fn : deferred_)
        domain_->orphan_deferred_.push_back(std::move(fn));
      deferred_.clear();
    }
  }
  HH_ASSERT(slot_->pinned.load(std::memory_order_relaxed) == Domain::kIdle);
  slot_->owner = nullptr;
  slot_->used.store(false, std::memory_order_release);
}

}  // namespace hammerhead::epoch

#include "hammerhead/common/digest.h"

#include "hammerhead/common/hex.h"

namespace hammerhead {

// Digest::of_bytes / of_string are defined in crypto/sha256.cpp to keep the
// hash implementation in one translation unit; this file provides the
// formatting helpers so hh_common has no dependency on hh_crypto.

std::string Digest::to_hex() const { return hammerhead::to_hex(bytes_); }

std::string Digest::brief() const { return to_hex().substr(0, 8); }

}  // namespace hammerhead

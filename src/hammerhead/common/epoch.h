// Epoch-based reclamation for the read-mostly DAG resolution layer.
//
// Execution model (matches the sharded simulator, sim/simulator.h): exactly
// ONE writer thread — the driver — mutates shared structures, and it only
// does so while every reader is quiescent (the wave join of the staged-effect
// engine is a full barrier). Shard workers are pure readers inside an
// epoch::Guard. That asymmetry buys a very cheap protocol:
//
//   * Readers pin the current epoch on Guard entry with one relaxed store,
//     a seq_cst fence and a re-check load — NO atomic read-modify-write
//     (verified in debug builds by the rmw_op_count() probe below). Inside
//     the guard they may dereference any pointer published before the pin.
//   * The writer publishes new snapshots with release stores, retires
//     superseded ones through Domain::retire(), and calls Domain::advance()
//     at every batch boundary (the natural quiescent point staged-effect
//     replay already provides). A retired object is freed once every pinned
//     reader has moved past the retire epoch.
//   * Workers that want to WRITE something shared (the write-once
//     certificate memos of dag/types.h) never touch it directly: they hand a
//     publication closure to Domain::defer(), and the driver runs all
//     deferred publications single-threaded at the next advance(). Memos are
//     thus write-once-per-epoch and read-wait-free.
//
// The idiom follows BIND9's qp-trie reader/writer split (single-writer
// transactions, lock-free readers over an immutable snapshot, RCU-style
// grace periods); see ARCHITECTURE.md "Read-mostly concurrency".
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "hammerhead/common/assert.h"

namespace hammerhead::epoch {

// ------------------------------------------------------------- debug probe
//
// Every atomic read-modify-write this layer performs goes through
// count_rmw(). Hot read paths (DigestResolver::find_published) sample the
// thread-local counter on entry and assert it unchanged on exit, turning
// "zero RMW on the lookup path" from a code-review claim into a checked
// invariant of every debug run.
#ifndef NDEBUG
namespace detail {
inline thread_local std::uint64_t rmw_ops = 0;
}
inline void count_rmw() noexcept { ++detail::rmw_ops; }
inline std::uint64_t rmw_op_count() noexcept { return detail::rmw_ops; }
#else
inline void count_rmw() noexcept {}
inline std::uint64_t rmw_op_count() noexcept { return 0; }
#endif

class Domain;
class Reader;

namespace detail {
inline thread_local Domain* tls_domain = nullptr;
inline thread_local Reader* tls_reader = nullptr;
}  // namespace detail

/// The domain a Guard on this thread is currently reading under, or null
/// when the thread is not inside a read-side critical section. The memo
/// layer uses this to decide between deferred publication (inside a sharded
/// wave) and immediate publication (single-threaded execution).
inline Domain* current() noexcept { return detail::tls_domain; }

/// One reclamation domain: a global epoch, a fixed array of per-reader pin
/// slots, the retired-object list and the deferred-publication queues. All
/// non-const methods except defer() are writer-thread-only.
class Domain {
 public:
  static constexpr std::size_t kMaxReaders = 64;
  /// Slot value while the owning reader is outside any Guard. Real epochs
  /// start at 1 and only grow, so 0 is unambiguous.
  static constexpr std::uint64_t kIdle = 0;

  struct Stats {
    std::uint64_t epoch = 0;            ///< current epoch number
    std::uint64_t advances = 0;         ///< advance() calls
    std::uint64_t retired_objects = 0;  ///< cumulative retire() calls
    std::uint64_t retired_bytes = 0;    ///< cumulative bytes retired
    std::uint64_t freed_objects = 0;    ///< retirees reclaimed after grace
    std::uint64_t freed_bytes = 0;
    std::uint64_t deferred_run = 0;  ///< deferred publications executed
    std::size_t pending_objects = 0;  ///< retirees still awaiting grace
    std::size_t pending_bytes = 0;
    std::size_t readers = 0;  ///< registered reader slots
  };

  using HookId = std::uint64_t;

  Domain() = default;
  Domain(const Domain&) = delete;
  Domain& operator=(const Domain&) = delete;
  ~Domain();

  std::uint64_t epoch() const noexcept {
    return epoch_.load(std::memory_order_relaxed);
  }

  /// Writer: hand over an object unlinked from every published structure.
  /// It is freed by a later advance()/synchronize() once no reader can still
  /// hold a pre-unlink pointer to it. `bytes` feeds the retired-bytes gauge.
  void retire(void* p, void (*deleter)(void*), std::size_t bytes);

  template <typename T>
  void retire_array(T* p, std::size_t count) {
    retire(
        p, [](void* q) { delete[] static_cast<T*>(q); }, count * sizeof(T));
  }

  /// Writer, at a batch boundary: run deferred publications, fire quiescent
  /// hooks (snapshot publication lives there), open a new epoch and reclaim
  /// every retiree whose grace period has passed. Cheap when idle: empty
  /// queues and an empty retire list reduce it to a handful of loads.
  void advance();

  /// Writer: block (spin) until every reader pinned at or before the current
  /// epoch has left its critical section. After it returns, anything
  /// unpublished before the call can be freed or reused directly. At the
  /// simulator's batch boundaries all workers are parked at the wave
  /// barrier, so this is a single pass over the pin slots.
  void synchronize();

  /// Any thread inside a Guard of this domain: queue `fn` to run on the
  /// writer thread at the next advance(). Used for write-once memo
  /// publication; the closure must pin whatever it touches (shared_ptr).
  /// This path takes a mutex (one count_rmw()) — it is the rare memoize
  /// path, never the lookup path.
  void defer(std::function<void()> fn);

  /// Writer: register/remove a callback run inside every advance(), between
  /// deferred publications and the epoch bump — the place snapshot
  /// publication (DigestResolver::publish) hangs off. Hooks must tolerate
  /// being called when there is nothing to do.
  HookId add_quiescent_hook(std::function<void()> fn);
  void remove_quiescent_hook(HookId id);

  Stats stats() const;

 private:
  friend class Reader;
  friend class Guard;

  struct alignas(64) Slot {
    /// Epoch pinned by the owning reader; kIdle outside critical sections.
    std::atomic<std::uint64_t> pinned{kIdle};
    /// Claimed by a Reader (CAS on registration, the one RMW of the
    /// reader lifecycle — per thread, not per guard or per lookup).
    std::atomic<bool> used{false};
    Reader* owner = nullptr;
  };

  struct Retiree {
    void* ptr;
    void (*deleter)(void*);
    std::size_t bytes;
    std::uint64_t epoch;  ///< epoch at retire(); freed once all pins exceed it
  };

  struct Hook {
    HookId id;
    std::function<void()> fn;
  };

  /// Smallest epoch pinned by any reader, or ~0 when all are idle.
  std::uint64_t min_pinned() const;
  void drain_deferred();
  void reclaim(std::uint64_t min_pin);

  std::atomic<std::uint64_t> epoch_{1};
  Slot slots_[kMaxReaders];
  /// One past the highest slot index ever claimed — bounds every slot scan
  /// (advance runs once per batch; scanning all 64 slots for one registered
  /// reader would waste the serial path's cycles).
  std::atomic<std::size_t> slot_hwm_{0};
  std::vector<Retiree> retired_;
  std::vector<Hook> hooks_;
  HookId next_hook_id_ = 1;
  /// Deferred closures from threads without a Reader (driver outside a
  /// guard, Reader destruction with a non-empty queue).
  std::mutex orphan_mu_;
  std::vector<std::function<void()>> orphan_deferred_;
  // Writer-side counters (gauges; driver-thread reads/writes only).
  std::uint64_t advances_ = 0;
  std::uint64_t retired_objects_ = 0;
  std::uint64_t retired_bytes_ = 0;
  std::uint64_t freed_objects_ = 0;
  std::uint64_t freed_bytes_ = 0;
  std::uint64_t deferred_run_ = 0;
  std::size_t pending_bytes_ = 0;
};

/// Per-thread registration with a Domain: claims one pin slot for the
/// thread's lifetime (the driver holds one as a member; each pool worker
/// creates one on its stack). Registration is the only RMW of the reader
/// lifecycle; Guards built on the Reader are RMW-free.
class Reader {
 public:
  explicit Reader(Domain& domain);
  Reader(const Reader&) = delete;
  Reader& operator=(const Reader&) = delete;
  ~Reader();

  Domain& domain() const { return *domain_; }

 private:
  friend class Domain;
  friend class Guard;

  Domain* domain_;
  Domain::Slot* slot_;
  /// Deferred publications queued by this thread; drained by the writer at
  /// advance() (the wave join orders the accesses, the mutex keeps the
  /// queue well-formed even off that path).
  std::mutex defer_mu_;
  std::vector<std::function<void()>> deferred_;
};

/// Read-side critical section. Entry: pin the current epoch (store + fence +
/// re-check loop, no RMW); exit: release the pin. While alive, epoch::
/// current() reports the domain, routing memo writes into defer().
class Guard {
 public:
  explicit Guard(Reader& reader) : reader_(reader) {
    Domain& d = *reader.domain_;
    std::uint64_t e = d.epoch_.load(std::memory_order_relaxed);
    for (;;) {
      reader.slot_->pinned.store(e, std::memory_order_relaxed);
      // Order the pin before the re-read: after the fence, either we see
      // the writer's new epoch (and re-pin), or the writer's reclaim pass
      // sees our pin. Fences are not read-modify-writes.
      std::atomic_thread_fence(std::memory_order_seq_cst);
      const std::uint64_t now = d.epoch_.load(std::memory_order_relaxed);
      if (now == e) break;
      e = now;
    }
    prev_domain_ = detail::tls_domain;
    prev_reader_ = detail::tls_reader;
    detail::tls_domain = &d;
    detail::tls_reader = &reader;
  }
  Guard(const Guard&) = delete;
  Guard& operator=(const Guard&) = delete;
  ~Guard() {
    reader_.slot_->pinned.store(Domain::kIdle, std::memory_order_release);
    detail::tls_domain = prev_domain_;
    detail::tls_reader = prev_reader_;
  }

 private:
  Reader& reader_;
  Domain* prev_domain_;
  Reader* prev_reader_;
};

}  // namespace hammerhead::epoch

// Epoch-stamped reusable set: a dedup structure for hot paths that would
// otherwise allocate (and rehash into) a fresh unordered_set per call.
// begin() starts a new logical set in O(1) by bumping an epoch; the bucket
// array and nodes persist across calls, so steady-state insertion does not
// allocate. Bounded: when the backing map outgrows `max_retained` entries it
// is dropped wholesale at the next begin() (stale keys from old epochs are
// garbage, not correctness state).
#pragma once

#include <cstdint>
#include <unordered_map>

namespace hammerhead {

template <typename K>
class StampedSet {
 public:
  explicit StampedSet(std::size_t max_retained = 1 << 16)
      : max_retained_(max_retained) {}

  /// Start a new (empty) logical set.
  void begin() {
    if (marks_.size() > max_retained_) marks_.clear();
    ++epoch_;
  }

  /// True iff `k` was not yet in the current logical set.
  bool insert(const K& k) {
    auto [it, fresh] = marks_.try_emplace(k, epoch_);
    if (!fresh) {
      if (it->second == epoch_) return false;
      it->second = epoch_;
    }
    return true;
  }

  bool contains(const K& k) const {
    auto it = marks_.find(k);
    return it != marks_.end() && it->second == epoch_;
  }

 private:
  std::size_t max_retained_;
  std::unordered_map<K, std::uint64_t> marks_;
  std::uint64_t epoch_ = 0;
};

}  // namespace hammerhead

// Hex encoding helpers (logging / test fixtures).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace hammerhead {

std::string to_hex(std::span<const std::uint8_t> bytes);

/// Throws std::invalid_argument on non-hex input or odd length.
std::vector<std::uint8_t> from_hex(const std::string& hex);

}  // namespace hammerhead

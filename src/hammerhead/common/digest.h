// 32-byte content digest used to identify headers, certificates and vertices.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <cstring>
#include <functional>
#include <span>
#include <string>

namespace hammerhead {

class Digest {
 public:
  static constexpr std::size_t kSize = 32;

  constexpr Digest() : bytes_{} {}
  explicit Digest(const std::array<std::uint8_t, kSize>& bytes)
      : bytes_(bytes) {}

  /// Digest of raw bytes (SHA-256; implemented in crypto/sha256.cpp).
  static Digest of_bytes(std::span<const std::uint8_t> data);
  static Digest of_string(const std::string& s);

  const std::array<std::uint8_t, kSize>& bytes() const { return bytes_; }
  std::uint8_t* data() { return bytes_.data(); }
  const std::uint8_t* data() const { return bytes_.data(); }

  bool is_zero() const {
    for (auto b : bytes_)
      if (b != 0) return false;
    return true;
  }

  /// First 8 bytes as a little-endian integer; handy for cheap hashing and
  /// deterministic tie-breaking.
  std::uint64_t prefix64() const {
    std::uint64_t v = 0;
    std::memcpy(&v, bytes_.data(), sizeof(v));
    return v;
  }

  std::string to_hex() const;
  /// Short human-readable form (first 8 hex chars) for logs.
  std::string brief() const;

  friend auto operator<=>(const Digest&, const Digest&) = default;

 private:
  std::array<std::uint8_t, kSize> bytes_;
};

}  // namespace hammerhead

template <>
struct std::hash<hammerhead::Digest> {
  std::size_t operator()(const hammerhead::Digest& d) const noexcept {
    return static_cast<std::size_t>(d.prefix64());
  }
};

// Data-parallel bitmap kernels with runtime CPU-feature dispatch.
//
// The wide-committee hot loops are all dense u64-bitmap sweeps: the commit
// index ORs parent ancestor rows into the child's row and compares rows
// against the referenced-slot mask (dag/index.cpp), and DAG traversals clear
// per-round visited rows (dag/arena.h). At n=1000 a row is 16 words — wide
// enough for 256-bit lanes to pay, small enough that dispatch must stay an
// inlined branch on a cached level, not an indirect call per row.
//
// Three variants per kernel, selected once at static-init time:
//   * scalar  — plain u64 loops, the reference semantics. Always compiled;
//     the only variant on non-x86 builds or under -DHH_SIMD=OFF.
//   * sse2    — 128-bit lanes; baseline on every x86-64, no detection needed.
//   * avx2    — 256-bit lanes; used when the CPU reports AVX2.
// The AVX2/SSE2 bodies live in simd.cpp behind `target` attributes so the
// rest of the library still compiles for the lowest common denominator; a
// host without AVX2 never executes an AVX2 instruction.
//
// `set_level` clamps to what CPU + build support and exists so differential
// tests and benches can pin each dispatch path explicitly; production code
// never calls it. All kernels are pure (no hidden state beyond the level,
// which is written only at static init or from tests), so concurrent sweep
// workers can call them freely.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#ifndef HH_SIMD
#define HH_SIMD 1
#endif

#if HH_SIMD && (defined(__x86_64__) || defined(_M_X64))
#define HH_SIMD_X86 1
#else
#define HH_SIMD_X86 0
#endif

namespace hammerhead::simd {

enum class Level : int { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

/// Reference implementations: the semantics every variant must reproduce
/// bit-exactly (the differential suite in tests/dag_index_test.cpp checks
/// them against the dispatched kernels on random rows and tail lengths).
namespace scalar {

inline void bitmap_clear(std::uint64_t* dst, std::size_t words) {
  for (std::size_t w = 0; w < words; ++w) dst[w] = 0;
}

inline void bitmap_or_into(std::uint64_t* dst, const std::uint64_t* src,
                           std::size_t words) {
  for (std::size_t w = 0; w < words; ++w) dst[w] |= src[w];
}

inline bool bitmap_equals(const std::uint64_t* a, const std::uint64_t* b,
                          std::size_t words) {
  std::uint64_t diff = 0;
  for (std::size_t w = 0; w < words; ++w) diff |= a[w] ^ b[w];
  return diff == 0;
}

/// Fused union + saturation test: dst |= src, returns dst == ref afterwards.
/// One pass instead of the or/equals pair the index would otherwise run
/// back to back on the same row.
inline bool bitmap_or_into_equals(std::uint64_t* dst,
                                  const std::uint64_t* src,
                                  const std::uint64_t* ref,
                                  std::size_t words) {
  std::uint64_t diff = 0;
  for (std::size_t w = 0; w < words; ++w) {
    dst[w] |= src[w];
    diff |= dst[w] ^ ref[w];
  }
  return diff == 0;
}

}  // namespace scalar

namespace detail {

/// Active level; written at static init (CPU detection) and by set_level.
extern std::atomic<Level> g_level;

#if HH_SIMD_X86
void bitmap_clear_sse2(std::uint64_t* dst, std::size_t words);
void bitmap_or_into_sse2(std::uint64_t* dst, const std::uint64_t* src,
                         std::size_t words);
bool bitmap_equals_sse2(const std::uint64_t* a, const std::uint64_t* b,
                        std::size_t words);
bool bitmap_or_into_equals_sse2(std::uint64_t* dst, const std::uint64_t* src,
                                const std::uint64_t* ref, std::size_t words);

void bitmap_clear_avx2(std::uint64_t* dst, std::size_t words);
void bitmap_or_into_avx2(std::uint64_t* dst, const std::uint64_t* src,
                         std::size_t words);
bool bitmap_equals_avx2(const std::uint64_t* a, const std::uint64_t* b,
                        std::size_t words);
bool bitmap_or_into_equals_avx2(std::uint64_t* dst, const std::uint64_t* src,
                                const std::uint64_t* ref, std::size_t words);
#endif

}  // namespace detail

/// Best level this CPU + build can execute (kScalar when HH_SIMD is off or
/// the target is not x86-64).
Level max_level();

inline Level active_level() {
  return detail::g_level.load(std::memory_order_relaxed);
}

/// Pin the dispatch level (clamped to max_level()); returns the level that
/// is now active. For differential tests and benches only.
Level set_level(Level level);

const char* level_name(Level level);

// ------------------------------------------------------- dispatched kernels

inline void bitmap_clear(std::uint64_t* dst, std::size_t words) {
#if HH_SIMD_X86
  const Level l = active_level();
  if (l == Level::kAvx2) return detail::bitmap_clear_avx2(dst, words);
  if (l == Level::kSse2) return detail::bitmap_clear_sse2(dst, words);
#endif
  scalar::bitmap_clear(dst, words);
}

inline void bitmap_or_into(std::uint64_t* dst, const std::uint64_t* src,
                           std::size_t words) {
#if HH_SIMD_X86
  const Level l = active_level();
  if (l == Level::kAvx2) return detail::bitmap_or_into_avx2(dst, src, words);
  if (l == Level::kSse2) return detail::bitmap_or_into_sse2(dst, src, words);
#endif
  scalar::bitmap_or_into(dst, src, words);
}

inline bool bitmap_equals(const std::uint64_t* a, const std::uint64_t* b,
                          std::size_t words) {
#if HH_SIMD_X86
  const Level l = active_level();
  if (l == Level::kAvx2) return detail::bitmap_equals_avx2(a, b, words);
  if (l == Level::kSse2) return detail::bitmap_equals_sse2(a, b, words);
#endif
  return scalar::bitmap_equals(a, b, words);
}

inline bool bitmap_or_into_equals(std::uint64_t* dst,
                                  const std::uint64_t* src,
                                  const std::uint64_t* ref,
                                  std::size_t words) {
#if HH_SIMD_X86
  const Level l = active_level();
  if (l == Level::kAvx2)
    return detail::bitmap_or_into_equals_avx2(dst, src, ref, words);
  if (l == Level::kSse2)
    return detail::bitmap_or_into_equals_sse2(dst, src, ref, words);
#endif
  return scalar::bitmap_or_into_equals(dst, src, ref, words);
}

}  // namespace hammerhead::simd

// Shared formatting for the machine-readable BENCH_*.json artifacts.
// Both writers — bench/bench_json.h (figure benches) and
// harness/sweep.cpp (sweep grids) — emit rows of named numeric metrics
// that tools/bench_compare.py parses uniformly; keeping the escaping and
// number formatting here guarantees they cannot drift apart.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>

namespace hammerhead {

/// Minimal JSON string escaping (quotes and backslashes; labels are ASCII).
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// Write one `"key": value` pair. Count-valued metrics stay exact integers
/// in the artifacts; %.17g round-trips the rest. The magnitude guard keeps
/// the long long cast defined.
inline void write_json_metric(std::FILE* f, bool first, const char* key,
                              double value) {
  std::fprintf(f, "%s\"%s\": ", first ? "" : ", ", key);
  if (std::abs(value) < 9.0e15 &&
      value == static_cast<double>(static_cast<long long>(value)))
    std::fprintf(f, "%lld", static_cast<long long>(value));
  else
    std::fprintf(f, "%.17g", value);
}

}  // namespace hammerhead

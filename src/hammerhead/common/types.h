// Fundamental scalar types shared by every subsystem.
//
// The simulator is fully deterministic, so time is a plain integer count of
// simulated microseconds rather than std::chrono time_points; helpers below
// keep call sites readable (ms(3) instead of 3'000).
#pragma once

#include <cstdint>
#include <limits>

namespace hammerhead {

/// Index of a validator inside a committee (dense, 0..n-1).
using ValidatorIndex = std::uint32_t;

/// DAG round number. Round 0 holds the genesis vertices.
using Round = std::uint64_t;

/// Voting power. The paper weighs leader slots and quorums by stake.
using Stake = std::uint64_t;

/// Simulated time in microseconds since the start of the run.
using SimTime = std::int64_t;

/// Monotonic identifier for a client transaction within a run.
using TxId = std::uint64_t;

inline constexpr SimTime kSimTimeNever = std::numeric_limits<SimTime>::max();
inline constexpr ValidatorIndex kInvalidValidator =
    std::numeric_limits<ValidatorIndex>::max();

/// Readable literals for simulated durations.
constexpr SimTime micros(std::int64_t v) { return v; }
constexpr SimTime millis(std::int64_t v) { return v * 1'000; }
constexpr SimTime seconds(std::int64_t v) { return v * 1'000'000; }
constexpr double to_seconds(SimTime t) { return static_cast<double>(t) / 1e6; }
constexpr double to_millis(SimTime t) { return static_cast<double>(t) / 1e3; }

}  // namespace hammerhead

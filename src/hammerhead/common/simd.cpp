#include "hammerhead/common/simd.h"

#if HH_SIMD_X86
#include <immintrin.h>
#endif

namespace hammerhead::simd {

namespace detail {

#if HH_SIMD_X86

// SSE2 is baseline on x86-64: no detection, no target attribute needed, but
// the bodies are kept out of line so the header stays intrinsics-free.

void bitmap_clear_sse2(std::uint64_t* dst, std::size_t words) {
  std::size_t w = 0;
  const __m128i zero = _mm_setzero_si128();
  for (; w + 2 <= words; w += 2)
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + w), zero);
  for (; w < words; ++w) dst[w] = 0;
}

void bitmap_or_into_sse2(std::uint64_t* dst, const std::uint64_t* src,
                         std::size_t words) {
  std::size_t w = 0;
  for (; w + 2 <= words; w += 2) {
    const __m128i d =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + w));
    const __m128i s =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + w));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + w),
                     _mm_or_si128(d, s));
  }
  for (; w < words; ++w) dst[w] |= src[w];
}

bool bitmap_equals_sse2(const std::uint64_t* a, const std::uint64_t* b,
                        std::size_t words) {
  std::size_t w = 0;
  __m128i acc = _mm_setzero_si128();
  for (; w + 2 <= words; w += 2) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + w));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + w));
    acc = _mm_or_si128(acc, _mm_xor_si128(va, vb));
  }
  std::uint64_t diff = 0;
  for (; w < words; ++w) diff |= a[w] ^ b[w];
  // acc == 0 iff every byte compares equal to zero.
  const __m128i zero = _mm_setzero_si128();
  return diff == 0 &&
         _mm_movemask_epi8(_mm_cmpeq_epi8(acc, zero)) == 0xFFFF;
}

bool bitmap_or_into_equals_sse2(std::uint64_t* dst, const std::uint64_t* src,
                                const std::uint64_t* ref, std::size_t words) {
  std::size_t w = 0;
  __m128i acc = _mm_setzero_si128();
  for (; w + 2 <= words; w += 2) {
    const __m128i d =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + w));
    const __m128i s =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + w));
    const __m128i r =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ref + w));
    const __m128i u = _mm_or_si128(d, s);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + w), u);
    acc = _mm_or_si128(acc, _mm_xor_si128(u, r));
  }
  std::uint64_t diff = 0;
  for (; w < words; ++w) {
    dst[w] |= src[w];
    diff |= dst[w] ^ ref[w];
  }
  const __m128i zero = _mm_setzero_si128();
  return diff == 0 &&
         _mm_movemask_epi8(_mm_cmpeq_epi8(acc, zero)) == 0xFFFF;
}

// AVX2 bodies carry the target attribute so this file builds without
// -mavx2; dispatch guarantees they only run on CPUs that report AVX2.

__attribute__((target("avx2"))) void bitmap_clear_avx2(std::uint64_t* dst,
                                                       std::size_t words) {
  std::size_t w = 0;
  const __m256i zero = _mm256_setzero_si256();
  for (; w + 4 <= words; w += 4)
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + w), zero);
  for (; w < words; ++w) dst[w] = 0;
}

__attribute__((target("avx2"))) void bitmap_or_into_avx2(
    std::uint64_t* dst, const std::uint64_t* src, std::size_t words) {
  std::size_t w = 0;
  for (; w + 4 <= words; w += 4) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + w));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + w));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + w),
                        _mm256_or_si256(d, s));
  }
  for (; w < words; ++w) dst[w] |= src[w];
}

__attribute__((target("avx2"))) bool bitmap_equals_avx2(
    const std::uint64_t* a, const std::uint64_t* b, std::size_t words) {
  std::size_t w = 0;
  __m256i acc = _mm256_setzero_si256();
  for (; w + 4 <= words; w += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w));
    acc = _mm256_or_si256(acc, _mm256_xor_si256(va, vb));
  }
  std::uint64_t diff = 0;
  for (; w < words; ++w) diff |= a[w] ^ b[w];
  return diff == 0 && _mm256_testz_si256(acc, acc) != 0;
}

__attribute__((target("avx2"))) bool bitmap_or_into_equals_avx2(
    std::uint64_t* dst, const std::uint64_t* src, const std::uint64_t* ref,
    std::size_t words) {
  std::size_t w = 0;
  __m256i acc = _mm256_setzero_si256();
  for (; w + 4 <= words; w += 4) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + w));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + w));
    const __m256i r =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ref + w));
    const __m256i u = _mm256_or_si256(d, s);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + w), u);
    acc = _mm256_or_si256(acc, _mm256_xor_si256(u, r));
  }
  std::uint64_t diff = 0;
  for (; w < words; ++w) {
    dst[w] |= src[w];
    diff |= dst[w] ^ ref[w];
  }
  return diff == 0 && _mm256_testz_si256(acc, acc) != 0;
}

#endif  // HH_SIMD_X86

std::atomic<Level> g_level{max_level()};

}  // namespace detail

Level max_level() {
#if HH_SIMD_X86
  return __builtin_cpu_supports("avx2") ? Level::kAvx2 : Level::kSse2;
#else
  return Level::kScalar;
#endif
}

Level set_level(Level level) {
  const Level cap = max_level();
  if (static_cast<int>(level) > static_cast<int>(cap)) level = cap;
  detail::g_level.store(level, std::memory_order_relaxed);
  return level;
}

const char* level_name(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kSse2:
      return "sse2";
    case Level::kAvx2:
      return "avx2";
  }
  return "?";
}

}  // namespace hammerhead::simd

// Deterministic pseudo-randomness for the simulator.
//
// xoshiro256** — small, fast, and identical across platforms, which matters
// because property tests assert on exact replays of seeded executions.
// std::mt19937 would also work but its distributions are not guaranteed to be
// reproducible across standard library implementations, so we provide our own
// uniform/exponential/normal sampling on top of the raw generator.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "hammerhead/common/assert.h"

namespace hammerhead {

/// splitmix64 (Steele et al.), the canonical 64-bit finalizing mixer: seeds
/// the xoshiro state, drives the simulated signature PRF, and derives sweep
/// run seeds. Pure and identical across platforms.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial.
  bool next_bool(double p_true);

  /// Exponential with the given mean (> 0); used for Poisson arrivals.
  double next_exponential(double mean);

  /// Normal via Box–Muller (mean, stddev).
  double next_normal(double mean, double stddev);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child generator (e.g. one per node) such that
  /// adding consumers does not perturb existing streams.
  Rng fork();

  /// The full xoshiro256** state word vector — the RNG stream position is
  /// exactly these 256 bits. The checkpoint subsystem serializes it so a
  /// resumed run can prove its generator sits at the same stream offset as
  /// the straight-through run.
  std::array<std::uint64_t, 4> state() const {
    return {state_[0], state_[1], state_[2], state_[3]};
  }

  /// Rebuild a generator at an exact stream position captured by state().
  static Rng from_state(const std::array<std::uint64_t, 4>& words) {
    Rng rng(0);
    for (int i = 0; i < 4; ++i) rng.state_[i] = words[i];
    return rng;
  }

 private:
  std::uint64_t state_[4];
};

}  // namespace hammerhead

// Minimal leveled logger.
//
// Simulations emit per-event detail at Debug level; benchmarks run at Warn to
// keep output clean. The sink is global but swappable for tests.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace hammerhead {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

using LogSink = std::function<void(LogLevel, const std::string&)>;

LogLevel log_level();
void set_log_level(LogLevel level);

/// Replace the sink (default writes to stderr). Returns the previous sink.
LogSink set_log_sink(LogSink sink);

void log_message(LogLevel level, const std::string& msg);

const char* log_level_name(LogLevel level);

}  // namespace hammerhead

#define HH_LOG(level, stream_expr)                                  \
  do {                                                               \
    if (static_cast<int>(level) >=                                   \
        static_cast<int>(::hammerhead::log_level())) {               \
      std::ostringstream hh_log_os;                                  \
      hh_log_os << stream_expr;                                      \
      ::hammerhead::log_message(level, hh_log_os.str());             \
    }                                                                \
  } while (false)

#define HH_DEBUG(s) HH_LOG(::hammerhead::LogLevel::Debug, s)
#define HH_INFO(s) HH_LOG(::hammerhead::LogLevel::Info, s)
#define HH_WARN(s) HH_LOG(::hammerhead::LogLevel::Warn, s)
#define HH_ERROR(s) HH_LOG(::hammerhead::LogLevel::Error, s)

#include "hammerhead/common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace hammerhead {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};
std::mutex g_mutex;

void default_sink(LogLevel level, const std::string& msg) {
  std::fprintf(stderr, "[%s] %s\n", log_level_name(level), msg.c_str());
}

LogSink& sink_storage() {
  static LogSink sink = default_sink;
  return sink;
}
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogSink set_log_sink(LogSink sink) {
  std::lock_guard lock(g_mutex);
  LogSink prev = sink_storage();
  sink_storage() = std::move(sink);
  return prev;
}

void log_message(LogLevel level, const std::string& msg) {
  std::lock_guard lock(g_mutex);
  if (sink_storage()) sink_storage()(level, msg);
}

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

}  // namespace hammerhead

#include "hammerhead/common/rng.h"

#include <cmath>

namespace hammerhead {

namespace {
std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  // splitmix64 stream over the seed (common/rng.h): word_i = mix(seed + i*G).
  std::uint64_t s = seed;
  for (auto& word : state_) {
    word = splitmix64(s);
    s += 0x9e3779b97f4a7c15ULL;
  }
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  HH_ASSERT(bound > 0);
  // Debiased via rejection sampling on the top of the range.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
  HH_ASSERT(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? next() : next_below(span));
}

double Rng::next_double() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p_true) { return next_double() < p_true; }

double Rng::next_exponential(double mean) {
  HH_ASSERT(mean > 0);
  double u = next_double();
  // Avoid log(0).
  if (u <= 0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::next_normal(double mean, double stddev) {
  double u1 = next_double();
  double u2 = next_double();
  if (u1 <= 0) u1 = 0x1.0p-53;
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

Rng Rng::fork() { return Rng(next()); }

}  // namespace hammerhead

// Invariant checking that stays on in release builds.
//
// A violated invariant in a consensus protocol is a safety bug; we always want
// the loud failure, including inside RelWithDebInfo benchmark runs.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace hammerhead {

/// Thrown when an internal invariant is violated. Deliberately distinct from
/// std::logic_error so tests can assert on the exact failure class.
class InvariantViolation : public std::logic_error {
 public:
  explicit InvariantViolation(const std::string& what)
      : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void invariant_failed(const char* expr, const char* file,
                                          int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantViolation(os.str());
}
}  // namespace detail

}  // namespace hammerhead

// HH_ASSERT(cond) / HH_ASSERT_MSG(cond, "context " << value)
#define HH_ASSERT(cond)                                                \
  do {                                                                 \
    if (!(cond))                                                       \
      ::hammerhead::detail::invariant_failed(#cond, __FILE__, __LINE__, \
                                             std::string{});           \
  } while (false)

#define HH_ASSERT_MSG(cond, stream_expr)                               \
  do {                                                                 \
    if (!(cond)) {                                                     \
      std::ostringstream hh_assert_os;                                 \
      hh_assert_os << stream_expr;                                     \
      ::hammerhead::detail::invariant_failed(#cond, __FILE__, __LINE__, \
                                             hh_assert_os.str());      \
    }                                                                  \
  } while (false)

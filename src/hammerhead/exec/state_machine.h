// Deterministic execution substrate.
//
// The paper's benchmark workload is "simple increments of a shared counter"
// (Section 5). This module is the state machine that consumes the BAB output:
// every committed sub-DAG's transactions are applied in delivery order, and
// the resulting state is digested so tests can assert the strongest form of
// safety — all honest validators hold identical state digests at identical
// commit indices (state-machine replication, not just log agreement).
//
// The interface is generic (StateMachine); SharedCounter is the paper's
// workload, KvStateMachine a slightly richer one used by tests to detect
// ordering bugs that a commutative counter would mask.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "hammerhead/common/digest.h"
#include "hammerhead/common/types.h"
#include "hammerhead/consensus/committer.h"

namespace hammerhead::exec {

class StateMachine {
 public:
  virtual ~StateMachine() = default;

  /// Apply one transaction. Must be deterministic.
  virtual void apply(const dag::Transaction& tx) = 0;

  /// Digest of the current state. Equal digests <=> equal state.
  virtual Digest state_digest() const = 0;

  /// Number of transactions applied so far.
  virtual std::uint64_t applied_count() const = 0;
};

/// The paper's workload: one shared counter, one increment per transaction.
/// The digest additionally folds in the order-sensitive running hash so that
/// two executions agree iff they applied the same transactions in the same
/// order (a bare counter would also match on permutations).
class SharedCounter final : public StateMachine {
 public:
  void apply(const dag::Transaction& tx) override;
  Digest state_digest() const override;
  std::uint64_t applied_count() const override { return count_; }

  std::uint64_t value() const { return count_; }

 private:
  std::uint64_t count_ = 0;
  Digest running_;  // H(running || tx.id), order-sensitive
};

/// Keyed counters: tx.id % num_keys selects a cell; each cell records an
/// order-sensitive digest chain. Collisions across cells surface reordering
/// bugs between vertices of the same round.
class KvStateMachine final : public StateMachine {
 public:
  explicit KvStateMachine(std::size_t num_keys = 16) : cells_(num_keys) {}

  void apply(const dag::Transaction& tx) override;
  Digest state_digest() const override;
  std::uint64_t applied_count() const override { return count_; }

  std::uint64_t cell_count(std::size_t key) const {
    return cells_.at(key).count;
  }

 private:
  struct Cell {
    std::uint64_t count = 0;
    Digest chain;
  };
  std::vector<Cell> cells_;
  std::uint64_t count_ = 0;
};

/// Per-validator execution engine: feed committed sub-DAGs, track a digest
/// per commit index (a "checkpoint"), and compare replicas.
class ExecutionEngine {
 public:
  explicit ExecutionEngine(std::unique_ptr<StateMachine> machine,
                           std::uint64_t checkpoint_interval = 10)
      : machine_(std::move(machine)),
        checkpoint_interval_(checkpoint_interval) {}

  /// Apply every transaction of the sub-DAG in delivery order. Commit
  /// indices must arrive consecutively (BAB output); gaps throw.
  void on_subdag_committed(const consensus::CommittedSubDag& subdag);

  const StateMachine& machine() const { return *machine_; }
  std::uint64_t last_commit_index() const { return last_commit_index_; }

  /// Digest recorded at each checkpointed commit index.
  const std::map<std::uint64_t, Digest>& checkpoints() const {
    return checkpoints_;
  }

  /// True iff the two engines agree on every common checkpoint.
  static bool checkpoints_consistent(const ExecutionEngine& a,
                                     const ExecutionEngine& b);

 private:
  std::unique_ptr<StateMachine> machine_;
  std::uint64_t checkpoint_interval_;
  std::uint64_t last_commit_index_ = 0;
  std::map<std::uint64_t, Digest> checkpoints_;
};

}  // namespace hammerhead::exec

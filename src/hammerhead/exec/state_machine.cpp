#include "hammerhead/exec/state_machine.h"

#include "hammerhead/common/assert.h"
#include "hammerhead/common/serde.h"
#include "hammerhead/crypto/sha256.h"

namespace hammerhead::exec {

namespace {
Digest chain_digest(const Digest& prev, TxId id) {
  ByteWriter w;
  w.bytes(prev.bytes());
  w.u64(id);
  return crypto::Sha256::hash(w.data());
}
}  // namespace

void SharedCounter::apply(const dag::Transaction& tx) {
  ++count_;
  running_ = chain_digest(running_, tx.id);
}

Digest SharedCounter::state_digest() const {
  ByteWriter w;
  w.str("shared-counter");
  w.u64(count_);
  w.bytes(running_.bytes());
  return crypto::Sha256::hash(w.data());
}

void KvStateMachine::apply(const dag::Transaction& tx) {
  Cell& cell = cells_[tx.id % cells_.size()];
  ++cell.count;
  cell.chain = chain_digest(cell.chain, tx.id);
  ++count_;
}

Digest KvStateMachine::state_digest() const {
  ByteWriter w;
  w.str("kv-state");
  for (const Cell& cell : cells_) {
    w.u64(cell.count);
    w.bytes(cell.chain.bytes());
  }
  return crypto::Sha256::hash(w.data());
}

void ExecutionEngine::on_subdag_committed(
    const consensus::CommittedSubDag& subdag) {
  HH_ASSERT_MSG(subdag.commit_index == last_commit_index_ + 1,
                "commit index gap: expected " << last_commit_index_ + 1
                                              << " got "
                                              << subdag.commit_index);
  for (const auto& vertex : subdag.vertices) {
    if (!vertex->header->payload) continue;
    for (const auto& tx : vertex->header->payload->txs) machine_->apply(tx);
  }
  last_commit_index_ = subdag.commit_index;
  if (checkpoint_interval_ > 0 &&
      last_commit_index_ % checkpoint_interval_ == 0) {
    checkpoints_.emplace(last_commit_index_, machine_->state_digest());
  }
}

bool ExecutionEngine::checkpoints_consistent(const ExecutionEngine& a,
                                             const ExecutionEngine& b) {
  for (const auto& [index, digest] : a.checkpoints_) {
    auto it = b.checkpoints_.find(index);
    if (it != b.checkpoints_.end() && it->second != digest) return false;
  }
  return true;
}

}  // namespace hammerhead::exec

#include "hammerhead/crypto/keys.h"

#include <cstring>

#include "hammerhead/common/hex.h"
#include "hammerhead/common/rng.h"
#include "hammerhead/common/serde.h"
#include "hammerhead/crypto/sha256.h"

namespace hammerhead::crypto {

namespace {

std::uint64_t load_le(const std::uint8_t* p, std::size_t len) {
  std::uint64_t v = 0;
  std::memcpy(&v, p, len);  // host is little-endian on all targets
  return v;
}

/// The simulated signature scheme models authentication *bookkeeping*, not
/// security: a signature is a deterministic PRF of (key, context, message),
/// and verification recomputes it — there are no secrets. Signatures are
/// only ever compared against locally recomputed values, so the mixer below
/// replaces the former full SHA-256 without any observable change, removing
/// the dominant hashing cost of the vote hot path (~hundreds of thousands
/// of sign/verify calls per simulated minute at n=100). Content digests
/// (header identity) still use real SHA-256.
Signature compute_sig(const PublicKey& key, std::string_view context,
                      const Digest& message) {
  std::uint64_t h = 0x68616d6d65726865ull;  // "hammerhe"
  for (std::size_t i = 0; i < key.bytes.size(); i += 8)
    h = splitmix64(h ^ load_le(key.bytes.data() + i, 8));
  h = splitmix64(h ^ context.size());
  const auto* ctx = reinterpret_cast<const std::uint8_t*>(context.data());
  std::size_t off = 0;
  for (; off + 8 <= context.size(); off += 8)
    h = splitmix64(h ^ load_le(ctx + off, 8));
  if (off < context.size())
    h = splitmix64(h ^ load_le(ctx + off, context.size() - off));
  const auto& msg = message.bytes();
  for (std::size_t i = 0; i < msg.size(); i += 8)
    h = splitmix64(h ^ load_le(msg.data() + i, 8));

  Signature s;
  for (std::size_t lane = 0; lane < 4; ++lane) {
    const std::uint64_t v = splitmix64(h ^ (lane + 1));
    std::memcpy(s.bytes.data() + lane * 8, &v, 8);
  }
  return s;
}

}  // namespace

std::string PublicKey::brief() const {
  return to_hex({bytes.data(), 4});
}

Keypair Keypair::derive(std::uint64_t seed, ValidatorIndex index) {
  ByteWriter w;
  w.str("hammerhead-keygen");
  w.u64(seed);
  w.u32(index);
  Keypair kp;
  kp.public_key_.bytes = Sha256::hash(w.data()).bytes();
  return kp;
}

Signature Keypair::sign(std::string_view context,
                        const Digest& message) const {
  return compute_sig(public_key_, context, message);
}

bool verify(const PublicKey& signer, std::string_view context,
            const Digest& message, const Signature& sig) {
  return compute_sig(signer, context, message) == sig;
}

}  // namespace hammerhead::crypto

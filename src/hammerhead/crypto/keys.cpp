#include "hammerhead/crypto/keys.h"

#include "hammerhead/common/hex.h"
#include "hammerhead/common/serde.h"
#include "hammerhead/crypto/sha256.h"

namespace hammerhead::crypto {

namespace {
Signature compute_sig(const PublicKey& key, const std::string& context,
                      const Digest& message) {
  ByteWriter w;
  w.bytes(key.bytes);
  w.str(context);
  w.bytes(message.bytes());
  const Digest d = Sha256::hash(w.data());
  Signature s;
  s.bytes = d.bytes();
  return s;
}
}  // namespace

std::string PublicKey::brief() const {
  return to_hex({bytes.data(), 4});
}

Keypair Keypair::derive(std::uint64_t seed, ValidatorIndex index) {
  ByteWriter w;
  w.str("hammerhead-keygen");
  w.u64(seed);
  w.u32(index);
  Keypair kp;
  kp.public_key_.bytes = Sha256::hash(w.data()).bytes();
  return kp;
}

Signature Keypair::sign(const std::string& context,
                        const Digest& message) const {
  return compute_sig(public_key_, context, message);
}

bool verify(const PublicKey& signer, const std::string& context,
            const Digest& message, const Signature& sig) {
  return compute_sig(signer, context, message) == sig;
}

}  // namespace hammerhead::crypto

#include "hammerhead/crypto/sha256.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

namespace hammerhead::crypto::sha {

namespace detail {

const std::uint32_t kK256[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

const std::array<std::uint32_t, 8> kInitState = {
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
    0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

}  // namespace detail

namespace {

inline std::uint32_t rotr(std::uint32_t x, int n) {
  return (x >> n) | (x << (32 - n));
}

inline std::uint32_t load_be32(const std::uint8_t* p) {
  return (std::uint32_t(p[0]) << 24) | (std::uint32_t(p[1]) << 16) |
         (std::uint32_t(p[2]) << 8) | std::uint32_t(p[3]);
}

#if HH_SHA_X86
bool cpu_has_sha_ni() {
  return __builtin_cpu_supports("sha") && __builtin_cpu_supports("sse4.1") &&
         __builtin_cpu_supports("ssse3");
}

bool cpu_has_avx2() { return __builtin_cpu_supports("avx2"); }
#endif

/// Initial dispatch level: the CPU probe, overridable by the HH_SHA_LEVEL
/// environment variable so CI can replay traces at a pinned level without
/// recompiling. Unknown values fall back to the probe.
Level initial_level() {
  const Level probed = max_level();
  if (const char* env = std::getenv("HH_SHA_LEVEL")) {
    if (std::strcmp(env, "scalar") == 0) return Level::kScalar;
    if (std::strcmp(env, "avx2") == 0)
      return std::min(probed, Level::kAvx2);
    if (std::strcmp(env, "sha_ni") == 0) return probed;
  }
  return probed;
}

}  // namespace

namespace scalar {

void compress(std::uint32_t state[8], const std::uint8_t* data,
              std::size_t nblocks) {
  for (std::size_t blk = 0; blk < nblocks; ++blk, data += 64) {
    std::uint32_t w[64];
    for (int i = 0; i < 16; ++i) w[i] = load_be32(data + 4 * i);
    for (int i = 16; i < 64; ++i) {
      const std::uint32_t s0 =
          rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
      const std::uint32_t s1 =
          rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }

    std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
    std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];

    for (int i = 0; i < 64; ++i) {
      const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
      const std::uint32_t ch = (e & f) ^ (~e & g);
      const std::uint32_t temp1 = h + s1 + ch + detail::kK256[i] + w[i];
      const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
      const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      const std::uint32_t temp2 = s0 + maj;
      h = g;
      g = f;
      f = e;
      e = d + temp1;
      d = c;
      c = b;
      b = a;
      a = temp1 + temp2;
    }

    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g;
    state[7] += h;
  }
}

}  // namespace scalar

namespace detail {
std::atomic<Level> g_level{initial_level()};
}  // namespace detail

Level max_level() {
#if HH_SHA_X86
  if (cpu_has_sha_ni()) return Level::kShaNi;
  if (cpu_has_avx2()) return Level::kAvx2;
#endif
  return Level::kScalar;
}

Level set_level(Level level) {
  if (static_cast<int>(level) > static_cast<int>(max_level()))
    level = max_level();
#if HH_SHA_X86
  // kShaNi does not imply AVX2 (Goldmont-class cores have SHA extensions but
  // no 256-bit lanes), so an explicit kAvx2 pin re-probes rather than
  // trusting the linear order.
  if (level == Level::kAvx2 && !cpu_has_avx2()) level = Level::kScalar;
#endif
  detail::g_level.store(level, std::memory_order_relaxed);
  return level;
}

const char* level_name(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kAvx2:
      return "avx2";
    case Level::kShaNi:
      return "sha_ni";
  }
  return "?";
}

}  // namespace hammerhead::crypto::sha

namespace hammerhead::crypto {

namespace {

inline void store_be32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

}  // namespace

Sha256::Sha256() { reset(); }

void Sha256::reset() {
  state_ = sha::detail::kInitState;
  total_len_ = 0;
  buffer_len_ = 0;
}

void Sha256::update(std::span<const std::uint8_t> data) {
  total_len_ += data.size();
  std::size_t offset = 0;

  if (buffer_len_ > 0) {
    const std::size_t take = std::min(data.size(), 64 - buffer_len_);
    std::memcpy(buffer_.data() + buffer_len_, data.data(), take);
    buffer_len_ += take;
    offset += take;
    if (buffer_len_ == 64) {
      sha::compress(state_.data(), buffer_.data(), 1);
      buffer_len_ = 0;
    }
  }

  // One dispatched call for the whole aligned run: the SHA-NI kernel keeps
  // its chaining value in registers across blocks.
  const std::size_t nblocks = (data.size() - offset) / 64;
  if (nblocks > 0) {
    sha::compress(state_.data(), data.data() + offset, nblocks);
    offset += nblocks * 64;
  }

  if (offset < data.size()) {
    buffer_len_ = data.size() - offset;
    std::memcpy(buffer_.data(), data.data() + offset, buffer_len_);
  }
}

void Sha256::update(const std::string& s) {
  update({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
}

Digest Sha256::finalize() {
  const std::uint64_t bit_len = total_len_ * 8;

  // Padding: 0x80, zeros to 56 mod 64, then the 64-bit big-endian length —
  // assembled in one buffer so update() runs at most twice.
  std::uint8_t pad[72] = {0x80};
  const std::size_t pad_len =
      (buffer_len_ < 56 ? 56 - buffer_len_ : 120 - buffer_len_);
  for (int i = 0; i < 8; ++i)
    pad[pad_len + i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  update({pad, pad_len + 8});

  std::array<std::uint8_t, Digest::kSize> out{};
  for (int i = 0; i < 8; ++i) store_be32(out.data() + 4 * i, state_[i]);
  return Digest(out);
}

Digest Sha256::hash(std::span<const std::uint8_t> data) {
  Sha256 h;
  h.update(data);
  return h.finalize();
}

Digest Sha256::hash(const std::string& s) {
  Sha256 h;
  h.update(s);
  return h.finalize();
}

}  // namespace hammerhead::crypto

namespace hammerhead {

// Digest factory functions declared in common/digest.h live here so the hash
// implementation has a single home.
Digest Digest::of_bytes(std::span<const std::uint8_t> data) {
  return crypto::Sha256::hash(data);
}

Digest Digest::of_string(const std::string& s) {
  return crypto::Sha256::hash(s);
}

}  // namespace hammerhead

#include "hammerhead/crypto/committee.h"

#include <numeric>

namespace hammerhead::crypto {

Committee::Committee(std::vector<ValidatorInfo> validators)
    : validators_(std::move(validators)) {
  HH_ASSERT_MSG(validators_.size() >= 4,
                "BFT committee needs at least 4 validators, got "
                    << validators_.size());
  for (std::size_t i = 0; i < validators_.size(); ++i) {
    HH_ASSERT(validators_[i].index == i);
    HH_ASSERT_MSG(validators_[i].stake > 0,
                  "validator " << i << " has zero stake");
    total_stake_ += validators_[i].stake;
  }
}

Committee Committee::make_equal_stake(std::size_t n, std::uint64_t seed) {
  return make_with_stakes(std::vector<Stake>(n, 1), seed);
}

Committee Committee::make_with_stakes(const std::vector<Stake>& stakes,
                                      std::uint64_t seed) {
  std::vector<ValidatorInfo> infos;
  infos.reserve(stakes.size());
  for (std::size_t i = 0; i < stakes.size(); ++i) {
    ValidatorInfo info;
    info.index = static_cast<ValidatorIndex>(i);
    info.stake = stakes[i];
    info.key = Keypair::derive(seed, info.index).public_key();
    info.name = "v" + std::to_string(i);
    infos.push_back(std::move(info));
  }
  return Committee(std::move(infos));
}

Stake Committee::stake_of_set(const std::vector<ValidatorIndex>& set) const {
  Stake sum = 0;
  for (ValidatorIndex i : set) sum += stake_of(i);
  return sum;
}

}  // namespace hammerhead::crypto

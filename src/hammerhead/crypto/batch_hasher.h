// Multi-message SHA-256: hash N independent messages per dispatch.
//
// SHA-256 rounds are serially dependent, so wide registers cannot accelerate
// a single message — but the bulk admission paths (certificate fetch
// responses, state sync) present many header preimages at once. BatchHasher
// lays those messages out in lockstep lanes for the AVX2 multi-buffer
// kernels (8 or 4 messages advance one block per instruction stream), or
// feeds them one-by-one through the SHA-NI kernel where available (NI's
// in-silicon rounds beat multi-buffer amortization), or falls back to the
// scalar reference. All three paths produce bit-identical digests
// (differential-tested), so callers never observe which kernel ran.
//
// Lockstep lanes need equal block counts; messages of differing length are
// grouped into equal-block cohorts (callers batch same-shape header
// preimages, so cohorts are usually one group). The final partial block plus
// FIPS 180-4 padding is materialised into per-lane scratch, making every
// lane a uniform sequence of 64-byte block pointers.
//
// All scratch is owned by the object and reused across run() calls: after a
// warm-up run of the same batch shape, run() performs zero heap allocations
// (asserted by the operator-new gauge in bench_micro_crypto).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "hammerhead/common/digest.h"
#include "hammerhead/crypto/sha256.h"

namespace hammerhead::crypto {

class BatchHasher {
 public:
  /// Queue a message. The span must stay valid until run() returns.
  void add(std::span<const std::uint8_t> msg);

  std::size_t size() const { return lanes_.size(); }
  bool empty() const { return lanes_.empty(); }

  /// Hash every queued message into out[i] (add() order) and clear the
  /// queue. `out` must have room for size() digests.
  void run(Digest* out);

  void clear() { lanes_.clear(); }

 private:
  struct Lane {
    const std::uint8_t* data;
    std::size_t len;
    std::uint32_t body_blocks;   // full 64-byte blocks inside `data`
    std::uint32_t total_blocks;  // body + padded tail (1 or 2)
  };

  void run_lane_range(std::size_t begin, std::size_t end);

  std::vector<Lane> lanes_;
  // Per-lane padded tail (at most two blocks: remainder + 0x80 + bit length).
  std::vector<std::array<std::uint8_t, 128>> tails_;
  std::vector<std::array<std::uint32_t, 8>> states_;
  // Lane indices sorted into equal-total_blocks cohorts.
  std::vector<std::uint32_t> order_;
  // Block-major pointer grid for one multi-buffer call.
  std::vector<const std::uint8_t*> block_ptrs_;
};

}  // namespace hammerhead::crypto

#include "hammerhead/crypto/batch_hasher.h"

#include <algorithm>
#include <cstring>
#include <numeric>

namespace hammerhead::crypto {

namespace {

inline void store_be32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

}  // namespace

void BatchHasher::add(std::span<const std::uint8_t> msg) {
  Lane l;
  l.data = msg.data();
  l.len = msg.size();
  l.body_blocks = static_cast<std::uint32_t>(msg.size() / 64);
  // FIPS 180-4 padding spills into a second block when fewer than 9 bytes
  // (0x80 + 64-bit length) remain in the last one.
  l.total_blocks = l.body_blocks + (msg.size() % 64 >= 56 ? 2 : 1);
  lanes_.push_back(l);
}

/// Single-lane fallback inside a cohort: body then padded tail through the
/// dispatched single-stream kernel (scalar at kAvx2, NI at kShaNi).
void BatchHasher::run_lane_range(std::size_t begin, std::size_t end) {
  for (std::size_t k = begin; k < end; ++k) {
    const std::uint32_t i = order_[k];
    const Lane& l = lanes_[i];
    std::uint32_t* st = states_[i].data();
    if (l.body_blocks > 0) sha::compress(st, l.data, l.body_blocks);
    sha::compress(st, tails_[i].data(), l.total_blocks - l.body_blocks);
  }
}

void BatchHasher::run(Digest* out) {
  const std::size_t n = lanes_.size();
  if (n == 0) return;

  if (tails_.size() < n) {
    tails_.resize(n);
    states_.resize(n);
  }
  for (std::size_t i = 0; i < n; ++i) {
    const Lane& l = lanes_[i];
    const std::size_t rem = l.len % 64;
    const std::size_t tail_bytes = (l.total_blocks - l.body_blocks) * 64;
    auto& tail = tails_[i];
    std::memset(tail.data(), 0, tail_bytes);
    if (rem > 0)
      std::memcpy(tail.data(), l.data + std::size_t{l.body_blocks} * 64, rem);
    tail[rem] = 0x80;
    const std::uint64_t bit_len = static_cast<std::uint64_t>(l.len) * 8;
    for (int k = 0; k < 8; ++k)
      tail[tail_bytes - 8 + k] =
          static_cast<std::uint8_t>(bit_len >> (56 - 8 * k));
    states_[i] = sha::detail::kInitState;
  }

  order_.resize(n);
  std::iota(order_.begin(), order_.end(), 0u);

  [[maybe_unused]] const sha::Level level = sha::active_level();
#if HH_SHA_X86
  if (level == sha::Level::kShaNi) {
    // NI runs rounds in silicon per lane; no lockstep layout to exploit.
    run_lane_range(0, n);
  } else if (level == sha::Level::kAvx2) {
    // Lockstep lanes need equal block counts: sort into cohorts (stable via
    // the index tie-break so run order never depends on pointer values).
    std::sort(order_.begin(), order_.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                if (lanes_[a].total_blocks != lanes_[b].total_blocks)
                  return lanes_[a].total_blocks < lanes_[b].total_blocks;
                return a < b;
              });
    std::size_t g0 = 0;
    while (g0 < n) {
      const std::uint32_t nb = lanes_[order_[g0]].total_blocks;
      std::size_t g1 = g0 + 1;
      while (g1 < n && lanes_[order_[g1]].total_blocks == nb) ++g1;

      std::size_t pos = g0;
      for (const std::size_t width : {std::size_t{8}, std::size_t{4}}) {
        while (pos + width <= g1) {
          // Block-major pointer grid: entry [b * width + j] is lane j's b-th
          // block — the message body while it lasts, then the padded tail.
          block_ptrs_.resize(std::size_t{nb} * width);
          std::uint32_t* lane_states[8];
          for (std::size_t j = 0; j < width; ++j) {
            const std::uint32_t i = order_[pos + j];
            const Lane& l = lanes_[i];
            lane_states[j] = states_[i].data();
            for (std::uint32_t b = 0; b < nb; ++b)
              block_ptrs_[std::size_t{b} * width + j] =
                  b < l.body_blocks
                      ? l.data + std::size_t{b} * 64
                      : tails_[i].data() +
                            std::size_t{b - l.body_blocks} * 64;
          }
          if (width == 8)
            sha::detail::compress_mb8_avx2(lane_states, block_ptrs_.data(),
                                           nb);
          else
            sha::detail::compress_mb4_avx2(lane_states, block_ptrs_.data(),
                                           nb);
          pos += width;
        }
      }
      run_lane_range(pos, g1);
      g0 = g1;
    }
  } else
#endif
  {
    run_lane_range(0, n);
  }

  for (std::size_t i = 0; i < n; ++i)
    for (int j = 0; j < 8; ++j)
      store_be32(out[i].data() + 4 * j, states_[i][j]);
  lanes_.clear();
}

}  // namespace hammerhead::crypto

// SHA-256 (FIPS 180-4), implemented from scratch, with runtime-dispatched
// hardware compression kernels.
//
// The paper's implementation uses fastcrypto for hashing and signatures; we
// need a real, deterministic digest function for vertex identities and for
// the simulated signature scheme (see keys.h). Streaming interface so large
// payloads can be hashed incrementally.
//
// Dispatch mirrors common/simd.h: one cached level probed at static init,
// pinnable from tests/benches, compiled out entirely under -DHH_SHA=OFF.
//   * scalar — the from-scratch reference compression. Always compiled; the
//     only variant on non-x86 builds or under -DHH_SHA=OFF.
//   * avx2   — no single-stream win (SHA-256 rounds are serially dependent),
//     but 4/8-lane *multi-buffer* transposed kernels for BatchHasher: eight
//     independent messages advance one block per instruction stream.
//   * sha_ni — SHA extensions; the fastest single-stream variant and also
//     the per-lane engine BatchHasher uses when available (NI's ~2 cycles
//     per round beats the AVX2 multi-buffer amortization).
// Every variant must produce bit-identical digests (differential-tested in
// tests/crypto_dispatch_test.cpp); content digests feed trace hashes, so a
// kernel divergence would show up as a replay mismatch, not a perf delta.
//
// The HH_SHA_LEVEL environment variable ("scalar" / "avx2" / "sha_ni"), read
// once at static init, pins the level for a whole process run — how CI
// proves committed trace hashes reproduce at every dispatch level without
// recompiling.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <span>
#include <string>

#include "hammerhead/common/digest.h"

#ifndef HH_SHA
#define HH_SHA 1
#endif

#if HH_SHA && (defined(__x86_64__) || defined(_M_X64))
#define HH_SHA_X86 1
#else
#define HH_SHA_X86 0
#endif

namespace hammerhead::crypto::sha {

enum class Level : int { kScalar = 0, kAvx2 = 1, kShaNi = 2 };

namespace scalar {

/// Reference block compression: runs `nblocks` consecutive 64-byte blocks
/// from `data` through `state`. The semantics every variant reproduces.
void compress(std::uint32_t state[8], const std::uint8_t* data,
              std::size_t nblocks);

}  // namespace scalar

namespace detail {

/// Active level; written at static init (CPU probe + HH_SHA_LEVEL env pin)
/// and by set_level.
extern std::atomic<Level> g_level;

/// Round constants, shared with the accelerated kernels.
extern const std::uint32_t kK256[64];
/// Chaining-value initialisation (H0..H7).
extern const std::array<std::uint32_t, 8> kInitState;

#if HH_SHA_X86
/// SHA-NI single-stream compression (sha256_accel.cpp).
void compress_ni(std::uint32_t state[8], const std::uint8_t* data,
                 std::size_t nblocks);
/// AVX2 multi-buffer compression: lane l advances `nblocks` blocks through
/// states[l]; blocks[b * L + l] points at lane l's b-th 64-byte block (the
/// lanes need not be contiguous messages — BatchHasher mixes message bodies
/// and per-lane padding scratch).
void compress_mb4_avx2(std::uint32_t* const states[4],
                       const std::uint8_t* const* blocks, std::size_t nblocks);
void compress_mb8_avx2(std::uint32_t* const states[8],
                       const std::uint8_t* const* blocks, std::size_t nblocks);
#endif

}  // namespace detail

/// Best level this CPU + build can execute (kScalar when HH_SHA is off or
/// the target is not x86-64). Note kShaNi does not imply AVX2: set_level
/// re-probes when pinning an intermediate level.
Level max_level();

inline Level active_level() {
  return detail::g_level.load(std::memory_order_relaxed);
}

/// Pin the dispatch level (clamped to what CPU + build support); returns the
/// level now active. For differential tests, benches, and the HH_SHA_LEVEL
/// pin; production code never calls it.
Level set_level(Level level);

const char* level_name(Level level);

/// Dispatched single-stream compression. AVX2 is not consulted here — with
/// one message there is nothing to lay out in lanes; multi-buffer dispatch
/// lives in BatchHasher.
inline void compress(std::uint32_t state[8], const std::uint8_t* data,
                     std::size_t nblocks) {
#if HH_SHA_X86
  if (active_level() == Level::kShaNi)
    return detail::compress_ni(state, data, nblocks);
#endif
  scalar::compress(state, data, nblocks);
}

}  // namespace hammerhead::crypto::sha

namespace hammerhead::crypto {

class Sha256 {
 public:
  Sha256();

  /// Feed more input.
  void update(std::span<const std::uint8_t> data);
  void update(const std::string& s);

  /// Finish and return the digest. The object must not be reused afterwards
  /// (call reset() to start a new hash).
  Digest finalize();

  void reset();

  /// One-shot convenience.
  static Digest hash(std::span<const std::uint8_t> data);
  static Digest hash(const std::string& s);

 private:
  std::array<std::uint32_t, 8> state_;
  std::uint64_t total_len_ = 0;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
};

}  // namespace hammerhead::crypto

// SHA-256 (FIPS 180-4), implemented from scratch.
//
// The paper's implementation uses fastcrypto for hashing and signatures; we
// need a real, deterministic digest function for vertex identities and for
// the simulated signature scheme (see keys.h). Streaming interface so large
// payloads can be hashed incrementally.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

#include "hammerhead/common/digest.h"

namespace hammerhead::crypto {

class Sha256 {
 public:
  Sha256();

  /// Feed more input.
  void update(std::span<const std::uint8_t> data);
  void update(const std::string& s);

  /// Finish and return the digest. The object must not be reused afterwards
  /// (call reset() to start a new hash).
  Digest finalize();

  void reset();

  /// One-shot convenience.
  static Digest hash(std::span<const std::uint8_t> data);
  static Digest hash(const std::string& s);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::uint64_t total_len_ = 0;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
};

}  // namespace hammerhead::crypto

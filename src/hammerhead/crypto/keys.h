// Simulated signature scheme.
//
// SUBSTITUTION (documented in DESIGN.md): the paper's implementation signs
// headers/votes with Ed25519 via fastcrypto. Inside a deterministic simulation
// the adversary never forges signatures, so cryptographic unforgeability buys
// nothing; what the protocol relies on is (a) binding a message to an author,
// (b) verifiability by everyone, and (c) a realistic CPU cost. We therefore
// use sig = SHA256(public_key ‖ context ‖ message): anyone holding the public
// key can recompute and check it. This is obviously NOT secure against a real
// attacker (the public key is the signing key) — it is a simulation stand-in
// with the same interface shape as Ed25519.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "hammerhead/common/digest.h"
#include "hammerhead/common/types.h"

namespace hammerhead::crypto {

struct PublicKey {
  std::array<std::uint8_t, 32> bytes{};

  friend auto operator<=>(const PublicKey&, const PublicKey&) = default;
  std::string brief() const;
};

struct Signature {
  std::array<std::uint8_t, 32> bytes{};

  friend auto operator<=>(const Signature&, const Signature&) = default;
  bool is_zero() const {
    for (auto b : bytes)
      if (b != 0) return false;
    return true;
  }
};

class Keypair {
 public:
  /// Deterministically derive the keypair of validator `index` for a run
  /// seeded with `seed`.
  static Keypair derive(std::uint64_t seed, ValidatorIndex index);

  const PublicKey& public_key() const { return public_key_; }

  /// Sign a digest under a domain-separation context string. string_view so
  /// the constexpr context constants (dag/types.h) bind without
  /// materialising a std::string per call on the vote/header hot paths.
  Signature sign(std::string_view context, const Digest& message) const;

 private:
  Keypair() = default;
  PublicKey public_key_;
};

/// Verify `sig` over (context, message) under `signer`.
bool verify(const PublicKey& signer, std::string_view context,
            const Digest& message, const Signature& sig);

}  // namespace hammerhead::crypto

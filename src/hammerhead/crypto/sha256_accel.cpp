// Hardware SHA-256 compression kernels (dispatch declared in sha256.h).
//
// Bodies carry `target` attributes so this file builds without -msha/-mavx2;
// dispatch guarantees a kernel only runs on a CPU that reports the feature.
//
// Two distinct acceleration shapes:
//   * compress_ni — the SHA extensions run the round function itself in
//     silicon (2 rounds per SHA256RNDS2). Fastest single stream; also the
//     per-lane engine for batches when available.
//   * compress_mb4/8_avx2 — SHA-256 rounds are serially dependent, so wide
//     registers cannot speed up ONE message; instead 4/8 *independent*
//     messages occupy the 32-bit lanes of XMM/YMM registers and advance one
//     block in lockstep (the classic multi-buffer layout, cf. ISA-L). Only
//     reachable through BatchHasher, which supplies per-lane block pointers.
#include "hammerhead/crypto/sha256.h"

#if HH_SHA_X86

#include <immintrin.h>

namespace hammerhead::crypto::sha::detail {

namespace {

inline std::uint32_t load_be32(const std::uint8_t* p) {
  return (std::uint32_t(p[0]) << 24) | (std::uint32_t(p[1]) << 16) |
         (std::uint32_t(p[2]) << 8) | std::uint32_t(p[3]);
}

// GCC does not propagate a function's target attribute into lambdas defined
// inside it, so the rotates are free functions with their own attributes.
__attribute__((target("avx2"), always_inline)) inline __m256i rotr8(__m256i x,
                                                                    int n) {
  return _mm256_or_si256(_mm256_srli_epi32(x, n),
                         _mm256_slli_epi32(x, 32 - n));
}

__attribute__((target("avx2"), always_inline)) inline __m128i rotr4(__m128i x,
                                                                    int n) {
  return _mm_or_si128(_mm_srli_epi32(x, n), _mm_slli_epi32(x, 32 - n));
}

}  // namespace

// ------------------------------------------------------------------ SHA-NI

__attribute__((target("sha,sse4.1,ssse3"))) void compress_ni(
    std::uint32_t state[8], const std::uint8_t* data, std::size_t nblocks) {
  // Big-endian word loads expressed as one byte shuffle per 16 bytes.
  const __m128i kBswap =
      _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);

  // The SHA instructions want the chaining value as ABEF/CDGH pairs.
  __m128i tmp =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));  // DCBA
  __m128i s1 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));  // HGFE
  tmp = _mm_shuffle_epi32(tmp, 0xB1);       // CDAB
  s1 = _mm_shuffle_epi32(s1, 0x1B);         // EFGH
  __m128i s0 = _mm_alignr_epi8(tmp, s1, 8); // ABEF
  s1 = _mm_blend_epi16(s1, tmp, 0xF0);      // CDGH

  for (std::size_t blk = 0; blk < nblocks; ++blk, data += 64) {
    const __m128i save0 = s0;
    const __m128i save1 = s1;

    // Message schedule lives in four rotating XMM registers; each loop
    // iteration g runs rounds 4g..4g+3 and advances the schedule exactly as
    // the canonical unrolled form does: the alignr/msg2 pair materialises
    // w[4(g+1)..4(g+1)+3] and msg1 pre-mixes the sigma0 term three groups
    // ahead. Reads of m[p] precede the msg1 overwrite — order matters.
    __m128i m[4];
    for (int g = 0; g < 16; ++g) {
      if (g < 4)
        m[g] = _mm_shuffle_epi8(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16 * g)),
            kBswap);
      __m128i wk = _mm_add_epi32(
          m[g & 3],
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(&kK256[4 * g])));
      s1 = _mm_sha256rnds2_epu32(s1, s0, wk);
      wk = _mm_shuffle_epi32(wk, 0x0E);
      s0 = _mm_sha256rnds2_epu32(s0, s1, wk);

      const int a = g & 3, p = (g + 3) & 3, nx = (g + 1) & 3;
      if (g >= 3 && g < 15) {
        const __m128i carry = _mm_alignr_epi8(m[a], m[p], 4);
        m[nx] = _mm_sha256msg2_epu32(_mm_add_epi32(m[nx], carry), m[a]);
      }
      if (g >= 1 && g < 13) m[p] = _mm_sha256msg1_epu32(m[p], m[a]);
    }

    s0 = _mm_add_epi32(s0, save0);
    s1 = _mm_add_epi32(s1, save1);
  }

  tmp = _mm_shuffle_epi32(s0, 0x1B);        // FEBA
  s1 = _mm_shuffle_epi32(s1, 0xB1);         // DCHG
  s0 = _mm_blend_epi16(tmp, s1, 0xF0);      // DCBA
  s1 = _mm_alignr_epi8(s1, tmp, 8);         // HGFE
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), s0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), s1);
}

// ------------------------------------------------- AVX2 multi-buffer lanes

// The 4- and 8-lane bodies are the same algorithm at two widths; a macro
// would obscure the intrinsics, so both are spelled out.

__attribute__((target("avx2"))) void compress_mb8_avx2(
    std::uint32_t* const states[8], const std::uint8_t* const* blocks,
    std::size_t nblocks) {
  // Transpose chaining values: vector j holds word j of all eight lanes.
  __m256i s[8];
  for (int j = 0; j < 8; ++j)
    s[j] = _mm256_set_epi32(
        static_cast<int>(states[7][j]), static_cast<int>(states[6][j]),
        static_cast<int>(states[5][j]), static_cast<int>(states[4][j]),
        static_cast<int>(states[3][j]), static_cast<int>(states[2][j]),
        static_cast<int>(states[1][j]), static_cast<int>(states[0][j]));

  for (std::size_t b = 0; b < nblocks; ++b) {
    const std::uint8_t* const* p = blocks + b * 8;
    // Rolling 16-entry schedule window, one vector per w index.
    __m256i w[16];
    for (int t = 0; t < 16; ++t)
      w[t] = _mm256_set_epi32(
          static_cast<int>(load_be32(p[7] + 4 * t)),
          static_cast<int>(load_be32(p[6] + 4 * t)),
          static_cast<int>(load_be32(p[5] + 4 * t)),
          static_cast<int>(load_be32(p[4] + 4 * t)),
          static_cast<int>(load_be32(p[3] + 4 * t)),
          static_cast<int>(load_be32(p[2] + 4 * t)),
          static_cast<int>(load_be32(p[1] + 4 * t)),
          static_cast<int>(load_be32(p[0] + 4 * t)));

    __m256i a = s[0], bb = s[1], c = s[2], d = s[3];
    __m256i e = s[4], f = s[5], g = s[6], h = s[7];

    for (int i = 0; i < 64; ++i) {
      __m256i wi;
      if (i < 16) {
        wi = w[i];
      } else {
        const __m256i w15 = w[(i - 15) & 15], w2 = w[(i - 2) & 15];
        const __m256i sig0 = _mm256_xor_si256(
            _mm256_xor_si256(rotr8(w15, 7), rotr8(w15, 18)),
            _mm256_srli_epi32(w15, 3));
        const __m256i sig1 = _mm256_xor_si256(
            _mm256_xor_si256(rotr8(w2, 17), rotr8(w2, 19)),
            _mm256_srli_epi32(w2, 10));
        wi = _mm256_add_epi32(_mm256_add_epi32(w[i & 15], sig0),
                              _mm256_add_epi32(w[(i - 7) & 15], sig1));
        w[i & 15] = wi;
      }
      const __m256i S1 = _mm256_xor_si256(
          _mm256_xor_si256(rotr8(e, 6), rotr8(e, 11)), rotr8(e, 25));
      const __m256i ch = _mm256_xor_si256(_mm256_and_si256(e, f),
                                          _mm256_andnot_si256(e, g));
      const __m256i t1 = _mm256_add_epi32(
          _mm256_add_epi32(_mm256_add_epi32(h, S1),
                           _mm256_add_epi32(ch, wi)),
          _mm256_set1_epi32(static_cast<int>(kK256[i])));
      const __m256i S0 = _mm256_xor_si256(
          _mm256_xor_si256(rotr8(a, 2), rotr8(a, 13)), rotr8(a, 22));
      const __m256i maj = _mm256_xor_si256(
          _mm256_xor_si256(_mm256_and_si256(a, bb), _mm256_and_si256(a, c)),
          _mm256_and_si256(bb, c));
      const __m256i t2 = _mm256_add_epi32(S0, maj);
      h = g;
      g = f;
      f = e;
      e = _mm256_add_epi32(d, t1);
      d = c;
      c = bb;
      bb = a;
      a = _mm256_add_epi32(t1, t2);
    }

    s[0] = _mm256_add_epi32(s[0], a);
    s[1] = _mm256_add_epi32(s[1], bb);
    s[2] = _mm256_add_epi32(s[2], c);
    s[3] = _mm256_add_epi32(s[3], d);
    s[4] = _mm256_add_epi32(s[4], e);
    s[5] = _mm256_add_epi32(s[5], f);
    s[6] = _mm256_add_epi32(s[6], g);
    s[7] = _mm256_add_epi32(s[7], h);
  }

  alignas(32) std::uint32_t lanes[8];
  for (int j = 0; j < 8; ++j) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), s[j]);
    for (int l = 0; l < 8; ++l) states[l][j] = lanes[l];
  }
}

__attribute__((target("avx2"))) void compress_mb4_avx2(
    std::uint32_t* const states[4], const std::uint8_t* const* blocks,
    std::size_t nblocks) {
  __m128i s[8];
  for (int j = 0; j < 8; ++j)
    s[j] = _mm_set_epi32(
        static_cast<int>(states[3][j]), static_cast<int>(states[2][j]),
        static_cast<int>(states[1][j]), static_cast<int>(states[0][j]));

  for (std::size_t b = 0; b < nblocks; ++b) {
    const std::uint8_t* const* p = blocks + b * 4;
    __m128i w[16];
    for (int t = 0; t < 16; ++t)
      w[t] = _mm_set_epi32(static_cast<int>(load_be32(p[3] + 4 * t)),
                           static_cast<int>(load_be32(p[2] + 4 * t)),
                           static_cast<int>(load_be32(p[1] + 4 * t)),
                           static_cast<int>(load_be32(p[0] + 4 * t)));

    __m128i a = s[0], bb = s[1], c = s[2], d = s[3];
    __m128i e = s[4], f = s[5], g = s[6], h = s[7];

    for (int i = 0; i < 64; ++i) {
      __m128i wi;
      if (i < 16) {
        wi = w[i];
      } else {
        const __m128i w15 = w[(i - 15) & 15], w2 = w[(i - 2) & 15];
        const __m128i sig0 =
            _mm_xor_si128(_mm_xor_si128(rotr4(w15, 7), rotr4(w15, 18)),
                          _mm_srli_epi32(w15, 3));
        const __m128i sig1 =
            _mm_xor_si128(_mm_xor_si128(rotr4(w2, 17), rotr4(w2, 19)),
                          _mm_srli_epi32(w2, 10));
        wi = _mm_add_epi32(_mm_add_epi32(w[i & 15], sig0),
                           _mm_add_epi32(w[(i - 7) & 15], sig1));
        w[i & 15] = wi;
      }
      const __m128i S1 = _mm_xor_si128(
          _mm_xor_si128(rotr4(e, 6), rotr4(e, 11)), rotr4(e, 25));
      const __m128i ch =
          _mm_xor_si128(_mm_and_si128(e, f), _mm_andnot_si128(e, g));
      const __m128i t1 = _mm_add_epi32(
          _mm_add_epi32(_mm_add_epi32(h, S1), _mm_add_epi32(ch, wi)),
          _mm_set1_epi32(static_cast<int>(kK256[i])));
      const __m128i S0 = _mm_xor_si128(
          _mm_xor_si128(rotr4(a, 2), rotr4(a, 13)), rotr4(a, 22));
      const __m128i maj = _mm_xor_si128(
          _mm_xor_si128(_mm_and_si128(a, bb), _mm_and_si128(a, c)),
          _mm_and_si128(bb, c));
      const __m128i t2 = _mm_add_epi32(S0, maj);
      h = g;
      g = f;
      f = e;
      e = _mm_add_epi32(d, t1);
      d = c;
      c = bb;
      bb = a;
      a = _mm_add_epi32(t1, t2);
    }

    s[0] = _mm_add_epi32(s[0], a);
    s[1] = _mm_add_epi32(s[1], bb);
    s[2] = _mm_add_epi32(s[2], c);
    s[3] = _mm_add_epi32(s[3], d);
    s[4] = _mm_add_epi32(s[4], e);
    s[5] = _mm_add_epi32(s[5], f);
    s[6] = _mm_add_epi32(s[6], g);
    s[7] = _mm_add_epi32(s[7], h);
  }

  alignas(16) std::uint32_t lanes[4];
  for (int j = 0; j < 8; ++j) {
    _mm_store_si128(reinterpret_cast<__m128i*>(lanes), s[j]);
    for (int l = 0; l < 4; ++l) states[l][j] = lanes[l];
  }
}

}  // namespace hammerhead::crypto::sha::detail

#endif  // HH_SHA_X86

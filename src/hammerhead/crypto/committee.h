// Committee: the validator set of an epoch with stakes, keys and thresholds.
//
// Quorum arithmetic follows the BFT convention for n = 3f + 1 by stake:
//   quorum_threshold  = 2f + 1  (certificate formation, DAG parent count)
//   validity_threshold = f + 1  (anchor direct-commit support)
// With weighted stake these become strict-majority style bounds computed from
// total stake, mirroring Sui's Committee.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hammerhead/common/assert.h"
#include "hammerhead/common/types.h"
#include "hammerhead/crypto/keys.h"

namespace hammerhead::crypto {

struct ValidatorInfo {
  ValidatorIndex index = 0;
  Stake stake = 1;
  PublicKey key;
  std::string name;  ///< human-readable label for logs/metrics
};

class Committee {
 public:
  /// Equal-stake committee of `n` validators with keys derived from `seed`.
  static Committee make_equal_stake(std::size_t n, std::uint64_t seed);

  /// Arbitrary stake distribution (stakes[i] is validator i's stake).
  static Committee make_with_stakes(const std::vector<Stake>& stakes,
                                    std::uint64_t seed);

  std::size_t size() const { return validators_.size(); }
  Stake total_stake() const { return total_stake_; }

  /// Maximum tolerated faulty stake: the largest f with total > 3f.
  Stake max_faulty_stake() const { return (total_stake_ - 1) / 3; }

  /// 2f+1 equivalent by stake (minimum stake of any quorum).
  Stake quorum_threshold() const { return total_stake_ - max_faulty_stake(); }

  /// f+1 equivalent by stake (any set this big contains an honest party).
  Stake validity_threshold() const { return max_faulty_stake() + 1; }

  const ValidatorInfo& validator(ValidatorIndex i) const {
    HH_ASSERT_MSG(i < validators_.size(), "validator index " << i);
    return validators_[i];
  }

  Stake stake_of(ValidatorIndex i) const { return validator(i).stake; }

  const std::vector<ValidatorInfo>& validators() const { return validators_; }

  /// Sum of stakes of the given validator indices.
  Stake stake_of_set(const std::vector<ValidatorIndex>& set) const;

  /// For convenience: max number of *equal-stake* faulty nodes, i.e. f for
  /// n = 3f+1-style committees. Only meaningful with equal stakes.
  std::size_t max_faulty_count() const { return (size() - 1) / 3; }

 private:
  explicit Committee(std::vector<ValidatorInfo> validators);

  std::vector<ValidatorInfo> validators_;
  Stake total_stake_ = 0;
};

}  // namespace hammerhead::crypto

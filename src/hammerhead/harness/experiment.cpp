#include "hammerhead/harness/experiment.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <iomanip>
#include <memory>
#include <sstream>
#include <unordered_set>

#include "hammerhead/common/logging.h"
#include "hammerhead/harness/adversary.h"
#include "hammerhead/sim/simulator.h"
#include "hammerhead/storage/store.h"

namespace hammerhead::harness {

const char* policy_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::RoundRobin: return "bullshark-rr";
    case PolicyKind::HammerHead: return "hammerhead";
    case PolicyKind::StaticLeader: return "static-leader";
    case PolicyKind::ShoalLike: return "shoal-like";
  }
  return "?";
}

namespace {

node::Validator::PolicyFactory make_policy_factory(
    const ExperimentConfig& config) {
  if (config.custom_policy) return config.custom_policy;
  const std::uint64_t seed = config.seed;
  switch (config.policy) {
    case PolicyKind::RoundRobin:
      return [seed](const crypto::Committee& c) {
        return std::make_unique<core::RoundRobinPolicy>(c, seed);
      };
    case PolicyKind::HammerHead: {
      const core::HammerHeadConfig hh = config.hh;
      return [seed, hh](const crypto::Committee& c) {
        return std::make_unique<core::HammerHeadPolicy>(c, seed, hh);
      };
    }
    case PolicyKind::StaticLeader: {
      const ValidatorIndex leader = config.static_leader;
      return [leader](const crypto::Committee&) {
        return std::make_unique<core::StaticLeaderPolicy>(leader);
      };
    }
    case PolicyKind::ShoalLike: {
      const core::HammerHeadConfig hh = config.hh;
      return [seed, hh](const crypto::Committee& c) {
        return std::make_unique<core::ShoalLikePolicy>(c, seed, hh);
      };
    }
  }
  HH_ASSERT(false);
  return nullptr;
}

std::unique_ptr<net::LatencyModel> make_latency_model(
    const ExperimentConfig& config) {
  switch (config.latency) {
    case LatencyKind::Geo:
      return std::make_unique<net::GeoLatencyModel>(config.num_validators);
    case LatencyKind::Uniform:
      return std::make_unique<net::UniformLatencyModel>(
          config.uniform_latency_min, config.uniform_latency_max);
    case LatencyKind::Matrix:
      HH_ASSERT_MSG(config.latency_matrix.sites() > 0,
                    "LatencyKind::Matrix requires a non-empty latency_matrix "
                    "(see net::load_latency_matrix)");
      return std::make_unique<net::MatrixLatencyModel>(config.latency_matrix);
  }
  HH_ASSERT(false);
  return nullptr;
}

/// Poisson load generator colocated with one validator. Both the arrival
/// tick and the client->validator hop ride raw engine events; in-flight
/// transactions wait in a FIFO (the hop latency is constant, so delivery
/// order equals submission order) — no per-transaction allocations.
///
/// Sharded execution: every generator event runs on its validator's shard
/// (the generator touches only its own RNG/FIFO and that validator's
/// mempool); the one cross-shard effect — the harness-global metrics
/// collector — rides the allocation-free staged-client channel so
/// submission registrations interleave in exact (time, seq) order at any
/// worker count.
class LoadGenerator {
 public:
  LoadGenerator(sim::Simulator& sim, node::Validator& validator,
                MetricsCollector& metrics, double rate_tps,
                SimTime client_latency, SimTime stop_at, Rng rng,
                TxId id_base)
      : sim_(sim),
        validator_(validator),
        metrics_(metrics),
        mean_gap_us_(1e6 / rate_tps),
        client_latency_(client_latency),
        stop_at_(stop_at),
        rng_(rng),
        next_id_(id_base) {}

  void start() { schedule_next(); }

 private:
  static void tick_trampoline(void* ctx, std::uint64_t) {
    static_cast<LoadGenerator*>(ctx)->tick();
  }
  static void hop_trampoline(void* ctx, std::uint64_t) {
    static_cast<LoadGenerator*>(ctx)->arrive();
  }
  /// Staged-replay path for the metrics registration: the transaction is
  /// rebuilt from (id, submit_time) so staging stays allocation-free.
  static void submit_trampoline(void* ctx, std::uint64_t id,
                                std::uint64_t submit_time,
                                const std::shared_ptr<const void>&) {
    auto* gen = static_cast<LoadGenerator*>(ctx);
    dag::Transaction tx;
    tx.id = id;
    tx.submitted_to = gen->validator_.index();
    tx.submit_time = static_cast<SimTime>(submit_time);
    gen->metrics_.on_tx_submitted(tx);
  }

  void schedule_next() {
    const SimTime gap = std::max<SimTime>(
        1, static_cast<SimTime>(rng_.next_exponential(mean_gap_us_)));
    sim_.schedule_raw_at(sim_.now() + gap, &LoadGenerator::tick_trampoline,
                         this, 0, /*shard=*/validator_.index());
  }

  void tick() {
    if (sim_.now() >= stop_at_) return;
    dag::Transaction tx;
    tx.id = next_id_++;
    tx.submitted_to = validator_.index();
    tx.submit_time = sim_.now();
    if (!sim_.stage_client(&LoadGenerator::submit_trampoline, this, tx.id,
                           static_cast<std::uint64_t>(tx.submit_time)))
      metrics_.on_tx_submitted(tx);
    // Client -> validator hop.
    in_flight_.push_back(tx);
    sim_.schedule_raw_at(sim_.now() + client_latency_,
                         &LoadGenerator::hop_trampoline, this, 0,
                         /*shard=*/validator_.index());
    schedule_next();
  }

  void arrive() {
    validator_.submit_tx(in_flight_.front());
    in_flight_.pop_front();
  }

  sim::Simulator& sim_;
  node::Validator& validator_;
  MetricsCollector& metrics_;
  double mean_gap_us_;
  SimTime client_latency_;
  SimTime stop_at_;
  Rng rng_;
  TxId next_id_;
  std::deque<dag::Transaction> in_flight_;
};

/// FNV-1a fingerprint over the deterministic fields of a finished run (the
/// wall-clock gauges are excluded). Identical across worker counts.
std::uint64_t compute_trace_hash(const ExperimentResult& r,
                                 std::uint64_t latency_samples_hash,
                                 bool mix_adversary) {
  Fnv1a fnv;
  fnv.mix(r.submitted);
  fnv.mix(r.committed);
  fnv.mix(r.sim_events);
  fnv.mix(r.committed_anchors);
  fnv.mix(r.skipped_anchors);
  fnv.mix(r.schedule_changes);
  fnv.mix(r.leader_timeouts);
  fnv.mix(static_cast<std::uint64_t>(r.last_anchor_round));
  fnv.mix(r.restarts);
  fnv.mix(r.state_syncs_completed);
  fnv.mix(r.messages_held);
  // Adversary counters join the fingerprint only when an adaptive adversary
  // ran: historical trace hashes of adversary-free runs must reproduce.
  if (mix_adversary) {
    fnv.mix(r.equivocations_sent);
    fnv.mix(r.equivocations_observed);
    fnv.mix(r.votes_withheld);
    fnv.mix(r.conflicting_certs);
    fnv.mix(r.adversary_ticks);
    fnv.mix(r.adversary_actions);
  }
  for (const std::uint64_t a : r.anchors_by_author) fnv.mix(a);
  fnv.mix(latency_samples_hash);
  return fnv.hash;
}

}  // namespace

ExperimentResult run_experiment(const ExperimentConfig& config) {
  HH_ASSERT(config.num_validators >= 4);
  HH_ASSERT(config.faults <= config.num_validators);

  sim::Simulator sim(config.seed, config.intra_jobs);
  const crypto::Committee committee =
      config.stakes.empty()
          ? crypto::Committee::make_equal_stake(config.num_validators,
                                                config.seed)
          : crypto::Committee::make_with_stakes(config.stakes, config.seed);

  net::NetConfig net_config = config.net;
  if (config.exec_slot > 0) net_config.delivery_slot = config.exec_slot;
  net::Network network(sim, make_latency_model(config), net_config,
                       config.num_validators);

  MetricsCollector metrics(config.warmup);
  // Leader-utilization accounting: committed-anchor authors as seen by
  // validator 0 (live in every supported fault layout — crashes target the
  // highest indices).
  std::vector<std::uint64_t> anchors_by_author(config.num_validators, 0);

  node::NodeConfig node_config = config.node;
  node_config.key_seed = config.seed;
  if (config.exec_slot > 0) node_config.dispatch_slot = config.exec_slot;

  // Which validators crash at crash_time (Figure 2 style): the highest
  // indices, which under the i % 13 region mapping still spread over regions.
  std::unordered_set<ValidatorIndex> crashed_at_start;
  for (std::size_t i = 0; i < config.faults; ++i)
    crashed_at_start.insert(
        static_cast<ValidatorIndex>(config.num_validators - 1 - i));

  std::vector<std::unique_ptr<storage::Store>> stores;
  std::vector<std::unique_ptr<node::Validator>> validators;
  stores.reserve(config.num_validators);
  validators.reserve(config.num_validators);

  auto policy_factory = make_policy_factory(config);
  const SimTime client_latency = config.client_latency;

  for (ValidatorIndex v = 0; v < config.num_validators; ++v) {
    node::NodeConfig vc = node_config;
    for (const auto& [idx, behavior] : config.behaviors)
      if (idx == v) vc.behavior = behavior;
    stores.push_back(std::make_unique<storage::Store>());
    validators.push_back(std::make_unique<node::Validator>(
        sim, network, committee, v, *stores.back(), vc, policy_factory,
        [&metrics, &anchors_by_author, client_latency](
            ValidatorIndex self, const consensus::CommittedSubDag& sd) {
          metrics.on_commit(self, sd, client_latency);
          if (self == 0) ++anchors_by_author[sd.anchor->author()];
        }));
  }

  for (auto& validator : validators) validator->start();

  // Adaptive adversary runtime: directives attach now (before any proposal),
  // strategy ticks ride serial-shard events like every fault injection below.
  std::unique_ptr<AdversaryRuntime> adversary;
  bool have_adversary = false;
  for (const AdversarySpec& spec : config.adversaries)
    if (spec.make) have_adversary = true;
  if (have_adversary) {
    std::vector<node::Validator*> validator_ptrs;
    validator_ptrs.reserve(validators.size());
    for (auto& validator : validators)
      validator_ptrs.push_back(validator.get());
    adversary = std::make_unique<AdversaryRuntime>(sim, network,
                                                   validator_ptrs, config);
    adversary->start();
  }

  // Fault injection.
  for (ValidatorIndex v : crashed_at_start) {
    node::Validator* validator = validators[v].get();
    sim.schedule_at(config.crash_time, [validator]() { validator->crash(); });
  }
  for (const CrashEvent& ev : config.crashes) {
    node::Validator* validator = validators[ev.node].get();
    sim.schedule_at(ev.at, [validator]() { validator->crash(); });
    if (ev.recover_at)
      sim.schedule_at(*ev.recover_at, [validator]() { validator->restart(); });
  }
  // Partition windows: first-class link cuts in the fabric (not a latency
  // hack). Sides are materialized up front; the cut/heal events capture them
  // by value so the config may outlive the lambdas or vice versa.
  for (const PartitionWindow& w : config.partitions) {
    std::vector<ValidatorIndex> side_a = w.side_a;
    std::vector<ValidatorIndex> side_b = w.side_b;
    if (side_b.empty()) {
      std::unordered_set<ValidatorIndex> in_a(side_a.begin(), side_a.end());
      for (ValidatorIndex v = 0; v < config.num_validators; ++v)
        if (in_a.count(v) == 0) side_b.push_back(v);
    }
    net::Network* net_ptr = &network;
    const bool symmetric = w.symmetric;
    sim.schedule_at(w.from, [net_ptr, side_a, side_b, symmetric]() {
      net_ptr->cut_links(side_a, side_b, symmetric);
    });
    if (w.until != kSimTimeNever)
      sim.schedule_at(w.until, [net_ptr, side_a, side_b, symmetric]() {
        net_ptr->restore_links(side_a, side_b, symmetric);
      });
  }

  // Validator churn: expand each spec into concrete crash/restart pairs.
  // Recovery rides the normal re-entry path (incremental fetch, or state
  // sync when the outage crossed the GC horizon).
  for (const ChurnSpec& churn : config.churn) {
    HH_ASSERT(churn.period > 0 && churn.downtime > 0);
    HH_ASSERT(churn.downtime < churn.period);
    const SimTime stagger =
        churn.stagger == ChurnSpec::kAutoStagger && !churn.nodes.empty()
            ? churn.period / static_cast<SimTime>(churn.nodes.size())
            : std::max<SimTime>(churn.stagger, 0);
    for (std::size_t k = 0; k < churn.nodes.size(); ++k) {
      HH_ASSERT(churn.nodes[k] < config.num_validators);
      node::Validator* validator = validators[churn.nodes[k]].get();
      const SimTime first = churn.start + static_cast<SimTime>(k) * stagger;
      for (std::size_t c = 0; churn.cycles == 0 || c < churn.cycles; ++c) {
        const SimTime down_at = first + static_cast<SimTime>(c) * churn.period;
        if (down_at >= config.duration) break;
        const SimTime up_at = down_at + churn.downtime;
        sim.schedule_at(down_at, [validator]() { validator->crash(); });
        if (up_at < config.duration)
          sim.schedule_at(up_at, [validator]() { validator->restart(); });
      }
    }
  }

  for (const SlowWindow& w : config.slow_windows) {
    for (ValidatorIndex v : w.nodes) {
      node::Validator* validator = validators[v].get();
      net::Network* net_ptr = &network;
      const double factor = w.factor;
      sim.schedule_at(w.from, [validator, net_ptr, v, factor]() {
        validator->set_cpu_slowdown(factor);
        net_ptr->set_slowdown(v, factor);
      });
      sim.schedule_at(w.to, [validator, net_ptr, v]() {
        validator->set_cpu_slowdown(1.0);
        net_ptr->clear_slowdown(v);
      });
    }
  }

  // Load generators: one per targeted validator.
  std::vector<ValidatorIndex> targets;
  for (ValidatorIndex v = 0; v < config.num_validators; ++v) {
    const bool avoided =
        config.clients_avoid_crashed && crashed_at_start.count(v) > 0;
    if (!avoided) targets.push_back(v);
  }
  HH_ASSERT(!targets.empty());
  std::vector<std::unique_ptr<LoadGenerator>> generators;
  if (config.load_tps > 0) {
    const double per_target =
        config.load_tps / static_cast<double>(targets.size());
    for (std::size_t i = 0; i < targets.size(); ++i) {
      generators.push_back(std::make_unique<LoadGenerator>(
          sim, *validators[targets[i]], metrics, per_target, client_latency,
          config.duration, sim.rng().fork(),
          static_cast<TxId>(i) << 40));
      generators.back()->start();
    }
  }

  const auto wall_start = std::chrono::steady_clock::now();
  sim.run_until(config.duration);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  // ---- collect results ----
  ExperimentResult result;
  result.sim_events = sim.executed_events();
  result.wall_seconds = wall_s;
  result.events_per_sec_wall =
      wall_s > 0 ? static_cast<double>(result.sim_events) / wall_s : 0;
  result.allocs_per_event =
      result.sim_events > 0
          ? static_cast<double>(sim.engine_allocs()) /
                static_cast<double>(result.sim_events)
          : 0;
  result.intra_jobs = sim.workers();
  result.parallel_events = sim.stats().parallel_events;
  result.staged_ops = sim.stats().staged_ops;
  result.policy =
      config.custom_policy ? "custom" : policy_name(config.policy);
  result.duration_s = to_seconds(config.duration);
  result.offered_load_tps = config.load_tps;
  result.submitted = metrics.submitted();
  result.committed = metrics.committed();
  const double measured_window_s =
      to_seconds(config.duration - config.warmup);
  result.throughput_tps =
      measured_window_s > 0
          ? static_cast<double>(metrics.measured_committed()) /
                measured_window_s
          : 0;
  result.avg_latency_s = metrics.latency().mean_s();
  result.p50_latency_s = metrics.latency().percentile_s(50);
  result.p95_latency_s = metrics.latency().percentile_s(95);
  result.p99_latency_s = metrics.latency().percentile_s(99);
  result.stdev_latency_s = metrics.latency().stdev_s();

  // Observer: lowest-indexed live honest validator.
  const node::Validator* observer = nullptr;
  for (const auto& validator : validators) {
    if (validator->crashed()) continue;
    observer = validator.get();
    break;
  }
  HH_ASSERT(observer != nullptr);
  const auto& cstats = observer->committer().stats();
  result.committed_anchors = cstats.committed_anchors;
  result.skipped_anchors = cstats.skipped_anchors;
  result.schedule_changes = cstats.schedule_changes;
  result.last_anchor_round = observer->committer().last_anchor_round();
  result.dag_bytes_per_vertex = observer->dag().bytes_per_vertex();
  for (const auto& validator : validators)
    if (!validator->crashed())
      result.leader_timeouts += validator->stats().leader_timeouts;
  for (const auto& validator : validators) {
    result.restarts += validator->stats().restarts;
    result.state_syncs_completed += validator->stats().state_syncs_completed;
    result.equivocations_sent += validator->stats().equivocations_sent;
    result.equivocations_observed +=
        validator->stats().equivocations_observed;
    result.votes_withheld += validator->stats().votes_withheld;
    if (!validator->crashed())
      result.conflicting_certs +=
          validator->committer().stats().conflicting_certs;
  }
  if (adversary) {
    result.adversary_ticks = adversary->stats().ticks;
    result.adversary_actions = adversary->stats().actions();
  }
  result.messages_held = network.stats().messages_held;

  result.anchors_by_author = std::move(anchors_by_author);
  // The percentile queries above already sorted the sample store, so the
  // fingerprint covers the sorted stream — every run executes this same
  // sequence, so equal traces hash equal and any divergence still differs.
  result.trace_hash = compute_trace_hash(
      result, metrics.latency().sample_hash(), have_adversary);
  return result;
}

std::string result_header() {
  std::ostringstream os;
  os << std::left << std::setw(14) << "policy" << std::right << std::setw(8)
     << "load" << std::setw(10) << "tput" << std::setw(9) << "avg_s"
     << std::setw(9) << "p50_s" << std::setw(9) << "p95_s" << std::setw(9)
     << "commits" << std::setw(9) << "skipped" << std::setw(9) << "epochs"
     << std::setw(10) << "timeouts";
  return os.str();
}

std::string result_row(const ExperimentResult& r) {
  std::ostringstream os;
  os << std::left << std::setw(14) << r.policy << std::right << std::fixed
     << std::setw(8) << std::setprecision(0) << r.offered_load_tps
     << std::setw(10) << std::setprecision(0) << r.throughput_tps
     << std::setw(9) << std::setprecision(2) << r.avg_latency_s << std::setw(9)
     << r.p50_latency_s << std::setw(9) << r.p95_latency_s << std::setw(9)
     << r.committed_anchors << std::setw(9) << r.skipped_anchors
     << std::setw(9) << r.schedule_changes << std::setw(10)
     << r.leader_timeouts;
  return os.str();
}

}  // namespace hammerhead::harness

#include "hammerhead/harness/experiment.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <iomanip>
#include <memory>
#include <sstream>
#include <unordered_set>

#include "hammerhead/common/logging.h"
#include "hammerhead/harness/adversary.h"
#include "hammerhead/harness/checkpoint.h"
#include "hammerhead/harness/control.h"
#include "hammerhead/sim/simulator.h"
#include "hammerhead/storage/store.h"

namespace hammerhead::harness {

const char* policy_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::RoundRobin: return "bullshark-rr";
    case PolicyKind::HammerHead: return "hammerhead";
    case PolicyKind::StaticLeader: return "static-leader";
    case PolicyKind::ShoalLike: return "shoal-like";
  }
  return "?";
}

namespace {

node::Validator::PolicyFactory make_policy_factory(
    const ExperimentConfig& config) {
  if (config.custom_policy) return config.custom_policy;
  const std::uint64_t seed = config.seed;
  switch (config.policy) {
    case PolicyKind::RoundRobin:
      return [seed](const crypto::Committee& c) {
        return std::make_unique<core::RoundRobinPolicy>(c, seed);
      };
    case PolicyKind::HammerHead: {
      const core::HammerHeadConfig hh = config.hh;
      return [seed, hh](const crypto::Committee& c) {
        return std::make_unique<core::HammerHeadPolicy>(c, seed, hh);
      };
    }
    case PolicyKind::StaticLeader: {
      const ValidatorIndex leader = config.static_leader;
      return [leader](const crypto::Committee&) {
        return std::make_unique<core::StaticLeaderPolicy>(leader);
      };
    }
    case PolicyKind::ShoalLike: {
      const core::HammerHeadConfig hh = config.hh;
      return [seed, hh](const crypto::Committee& c) {
        return std::make_unique<core::ShoalLikePolicy>(c, seed, hh);
      };
    }
  }
  HH_ASSERT(false);
  return nullptr;
}

std::unique_ptr<net::LatencyModel> make_latency_model(
    const ExperimentConfig& config) {
  switch (config.latency) {
    case LatencyKind::Geo:
      return std::make_unique<net::GeoLatencyModel>(config.num_validators);
    case LatencyKind::Uniform:
      return std::make_unique<net::UniformLatencyModel>(
          config.uniform_latency_min, config.uniform_latency_max);
    case LatencyKind::Matrix:
      HH_ASSERT_MSG(config.latency_matrix.sites() > 0,
                    "LatencyKind::Matrix requires a non-empty latency_matrix "
                    "(see net::load_latency_matrix)");
      return std::make_unique<net::MatrixLatencyModel>(config.latency_matrix);
  }
  HH_ASSERT(false);
  return nullptr;
}

/// Poisson load generator colocated with one validator. Both the arrival
/// tick and the client->validator hop ride raw engine events; in-flight
/// transactions wait in a FIFO (the hop latency is constant, so delivery
/// order equals submission order) — no per-transaction allocations.
///
/// Sharded execution: every generator event runs on its validator's shard
/// (the generator touches only its own RNG/FIFO and that validator's
/// mempool); the one cross-shard effect — the harness-global metrics
/// collector — rides the allocation-free staged-client channel so
/// submission registrations interleave in exact (time, seq) order at any
/// worker count.
class LoadGenerator {
 public:
  LoadGenerator(sim::Simulator& sim, node::Validator& validator,
                MetricsCollector& metrics, double rate_tps,
                SimTime client_latency, SimTime stop_at, Rng rng,
                TxId id_base)
      : sim_(sim),
        validator_(validator),
        metrics_(metrics),
        mean_gap_us_(1e6 / rate_tps),
        client_latency_(client_latency),
        stop_at_(stop_at),
        rng_(rng),
        next_id_(id_base) {}

  void start() { schedule_next(); }

 private:
  static void tick_trampoline(void* ctx, std::uint64_t) {
    static_cast<LoadGenerator*>(ctx)->tick();
  }
  static void hop_trampoline(void* ctx, std::uint64_t) {
    static_cast<LoadGenerator*>(ctx)->arrive();
  }
  /// Staged-replay path for the metrics registration: the transaction is
  /// rebuilt from (id, submit_time) so staging stays allocation-free.
  static void submit_trampoline(void* ctx, std::uint64_t id,
                                std::uint64_t submit_time,
                                const std::shared_ptr<const void>&) {
    auto* gen = static_cast<LoadGenerator*>(ctx);
    dag::Transaction tx;
    tx.id = id;
    tx.submitted_to = gen->validator_.index();
    tx.submit_time = static_cast<SimTime>(submit_time);
    gen->metrics_.on_tx_submitted(tx);
  }

  void schedule_next() {
    const SimTime gap = std::max<SimTime>(
        1, static_cast<SimTime>(rng_.next_exponential(mean_gap_us_)));
    sim_.schedule_raw_at(sim_.now() + gap, &LoadGenerator::tick_trampoline,
                         this, 0, /*shard=*/validator_.index());
  }

  void tick() {
    if (sim_.now() >= stop_at_) return;
    dag::Transaction tx;
    tx.id = next_id_++;
    tx.submitted_to = validator_.index();
    tx.submit_time = sim_.now();
    if (!sim_.stage_client(&LoadGenerator::submit_trampoline, this, tx.id,
                           static_cast<std::uint64_t>(tx.submit_time)))
      metrics_.on_tx_submitted(tx);
    // Client -> validator hop.
    in_flight_.push_back(tx);
    sim_.schedule_raw_at(sim_.now() + client_latency_,
                         &LoadGenerator::hop_trampoline, this, 0,
                         /*shard=*/validator_.index());
    schedule_next();
  }

  void arrive() {
    validator_.submit_tx(in_flight_.front());
    in_flight_.pop_front();
  }

  sim::Simulator& sim_;
  node::Validator& validator_;
  MetricsCollector& metrics_;
  double mean_gap_us_;
  SimTime client_latency_;
  SimTime stop_at_;
  Rng rng_;
  TxId next_id_;
  std::deque<dag::Transaction> in_flight_;
};

/// FNV-1a fingerprint over the deterministic fields of a finished run (the
/// wall-clock gauges are excluded). Identical across worker counts.
std::uint64_t compute_trace_hash(const ExperimentResult& r,
                                 std::uint64_t latency_samples_hash,
                                 bool mix_adversary) {
  Fnv1a fnv;
  fnv.mix(r.submitted);
  fnv.mix(r.committed);
  fnv.mix(r.sim_events);
  fnv.mix(r.committed_anchors);
  fnv.mix(r.skipped_anchors);
  fnv.mix(r.schedule_changes);
  fnv.mix(r.leader_timeouts);
  fnv.mix(static_cast<std::uint64_t>(r.last_anchor_round));
  fnv.mix(r.restarts);
  fnv.mix(r.state_syncs_completed);
  fnv.mix(r.messages_held);
  // Adversary counters join the fingerprint only when an adaptive adversary
  // ran: historical trace hashes of adversary-free runs must reproduce.
  if (mix_adversary) {
    fnv.mix(r.equivocations_sent);
    fnv.mix(r.equivocations_observed);
    fnv.mix(r.votes_withheld);
    fnv.mix(r.conflicting_certs);
    fnv.mix(r.adversary_ticks);
    fnv.mix(r.adversary_actions);
  }
  for (const std::uint64_t a : r.anchors_by_author) fnv.mix(a);
  fnv.mix(latency_samples_hash);
  return fnv.hash;
}

net::NetConfig make_net_config(const ExperimentConfig& config) {
  net::NetConfig net_config = config.net;
  if (config.exec_slot > 0) net_config.delivery_slot = config.exec_slot;
  return net_config;
}

crypto::Committee make_committee(const ExperimentConfig& config) {
  return config.stakes.empty()
             ? crypto::Committee::make_equal_stake(config.num_validators,
                                                   config.seed)
             : crypto::Committee::make_with_stakes(config.stakes,
                                                   config.seed);
}

}  // namespace

/// Everything a live run owns. Declaration order is construction order:
/// the fabric needs the engine, validators need both plus the committee.
struct ExperimentRun::Impl {
  ExperimentConfig config;  // by value: the run outlives caller temporaries
  sim::Simulator sim;
  crypto::Committee committee;
  net::Network network;
  MetricsCollector metrics;
  // Leader-utilization accounting: committed-anchor authors as seen by
  // validator 0 (live in every supported fault layout — crashes target the
  // highest indices).
  std::vector<std::uint64_t> anchors_by_author;
  std::vector<std::unique_ptr<storage::Store>> stores;
  std::vector<std::unique_ptr<node::Validator>> validators;
  std::unique_ptr<AdversaryRuntime> adversary;
  bool have_adversary = false;
  std::vector<std::unique_ptr<LoadGenerator>> generators;
  double wall_seconds = 0;  // accumulated across advance_to segments
  bool stop_requested = false;
  bool collected = false;

  explicit Impl(const ExperimentConfig& config_in)
      : config(config_in),
        sim(config.seed, config.intra_jobs),
        committee(make_committee(config)),
        network(sim, make_latency_model(config), make_net_config(config),
                config.num_validators),
        metrics(config.warmup),
        anchors_by_author(config.num_validators, 0) {
    wire();
  }

  void wire();

  /// Lowest-indexed currently-live validator (the result observer).
  const node::Validator* observer() const {
    for (const auto& validator : validators)
      if (!validator->crashed()) return validator.get();
    return nullptr;
  }

  std::uint64_t conflicting_certs_now() const {
    std::uint64_t total = 0;
    for (const auto& validator : validators)
      if (!validator->crashed())
        total += validator->committer().stats().conflicting_certs;
    return total;
  }
};

void ExperimentRun::Impl::wire() {
  HH_ASSERT(config.num_validators >= 4);
  HH_ASSERT(config.faults <= config.num_validators);

  // Which validators crash at crash_time (Figure 2 style): the highest
  // indices, which under the i % 13 region mapping still spread over regions.
  std::unordered_set<ValidatorIndex> crashed_at_start;
  for (std::size_t i = 0; i < config.faults; ++i)
    crashed_at_start.insert(
        static_cast<ValidatorIndex>(config.num_validators - 1 - i));

  node::NodeConfig node_config = config.node;
  node_config.key_seed = config.seed;
  if (config.exec_slot > 0) node_config.dispatch_slot = config.exec_slot;

  stores.reserve(config.num_validators);
  validators.reserve(config.num_validators);

  auto policy_factory = make_policy_factory(config);
  const SimTime client_latency = config.client_latency;

  for (ValidatorIndex v = 0; v < config.num_validators; ++v) {
    node::NodeConfig vc = node_config;
    for (const auto& [idx, behavior] : config.behaviors)
      if (idx == v) vc.behavior = behavior;
    stores.push_back(std::make_unique<storage::Store>());
    validators.push_back(std::make_unique<node::Validator>(
        sim, network, committee, v, *stores.back(), vc, policy_factory,
        [this, client_latency](ValidatorIndex self,
                               const consensus::CommittedSubDag& sd) {
          metrics.on_commit(self, sd, client_latency);
          if (self == 0) ++anchors_by_author[sd.anchor->author()];
        }));
  }

  for (auto& validator : validators) validator->start();

  // Adaptive adversary runtime: directives attach now (before any proposal),
  // strategy ticks ride serial-shard events like every fault injection below.
  for (const AdversarySpec& spec : config.adversaries)
    if (spec.make) have_adversary = true;
  if (have_adversary) {
    std::vector<node::Validator*> validator_ptrs;
    validator_ptrs.reserve(validators.size());
    for (auto& validator : validators)
      validator_ptrs.push_back(validator.get());
    adversary = std::make_unique<AdversaryRuntime>(sim, network,
                                                   validator_ptrs, config);
    adversary->start();
  }

  // Fault injection.
  for (ValidatorIndex v : crashed_at_start) {
    node::Validator* validator = validators[v].get();
    sim.schedule_at(config.crash_time, [validator]() { validator->crash(); });
  }
  for (const CrashEvent& ev : config.crashes) {
    node::Validator* validator = validators[ev.node].get();
    sim.schedule_at(ev.at, [validator]() { validator->crash(); });
    if (ev.recover_at)
      sim.schedule_at(*ev.recover_at, [validator]() { validator->restart(); });
  }
  // Partition windows: first-class link cuts in the fabric (not a latency
  // hack). Sides are materialized up front; the cut/heal events capture them
  // by value so the config may outlive the lambdas or vice versa.
  for (const PartitionWindow& w : config.partitions) {
    std::vector<ValidatorIndex> side_a = w.side_a;
    std::vector<ValidatorIndex> side_b = w.side_b;
    if (side_b.empty()) {
      std::unordered_set<ValidatorIndex> in_a(side_a.begin(), side_a.end());
      for (ValidatorIndex v = 0; v < config.num_validators; ++v)
        if (in_a.count(v) == 0) side_b.push_back(v);
    }
    net::Network* net_ptr = &network;
    const bool symmetric = w.symmetric;
    sim.schedule_at(w.from, [net_ptr, side_a, side_b, symmetric]() {
      net_ptr->cut_links(side_a, side_b, symmetric);
    });
    if (w.until != kSimTimeNever)
      sim.schedule_at(w.until, [net_ptr, side_a, side_b, symmetric]() {
        net_ptr->restore_links(side_a, side_b, symmetric);
      });
  }

  // Validator churn: expand each spec into concrete crash/restart pairs.
  // Recovery rides the normal re-entry path (incremental fetch, or state
  // sync when the outage crossed the GC horizon).
  for (const ChurnSpec& churn : config.churn) {
    HH_ASSERT(churn.period > 0 && churn.downtime > 0);
    HH_ASSERT(churn.downtime < churn.period);
    const SimTime stagger =
        churn.stagger == ChurnSpec::kAutoStagger && !churn.nodes.empty()
            ? churn.period / static_cast<SimTime>(churn.nodes.size())
            : std::max<SimTime>(churn.stagger, 0);
    for (std::size_t k = 0; k < churn.nodes.size(); ++k) {
      HH_ASSERT(churn.nodes[k] < config.num_validators);
      node::Validator* validator = validators[churn.nodes[k]].get();
      const SimTime first = churn.start + static_cast<SimTime>(k) * stagger;
      for (std::size_t c = 0; churn.cycles == 0 || c < churn.cycles; ++c) {
        const SimTime down_at = first + static_cast<SimTime>(c) * churn.period;
        if (down_at >= config.duration) break;
        const SimTime up_at = down_at + churn.downtime;
        sim.schedule_at(down_at, [validator]() { validator->crash(); });
        if (up_at < config.duration)
          sim.schedule_at(up_at, [validator]() { validator->restart(); });
      }
    }
  }

  for (const SlowWindow& w : config.slow_windows) {
    for (ValidatorIndex v : w.nodes) {
      node::Validator* validator = validators[v].get();
      net::Network* net_ptr = &network;
      const double factor = w.factor;
      sim.schedule_at(w.from, [validator, net_ptr, v, factor]() {
        validator->set_cpu_slowdown(factor);
        net_ptr->set_slowdown(v, factor);
      });
      sim.schedule_at(w.to, [validator, net_ptr, v]() {
        validator->set_cpu_slowdown(1.0);
        net_ptr->clear_slowdown(v);
      });
    }
  }

  // Load generators: one per targeted validator.
  std::vector<ValidatorIndex> targets;
  for (ValidatorIndex v = 0; v < config.num_validators; ++v) {
    const bool avoided =
        config.clients_avoid_crashed && crashed_at_start.count(v) > 0;
    if (!avoided) targets.push_back(v);
  }
  HH_ASSERT(!targets.empty());
  if (config.load_tps > 0) {
    const double per_target =
        config.load_tps / static_cast<double>(targets.size());
    for (std::size_t i = 0; i < targets.size(); ++i) {
      generators.push_back(std::make_unique<LoadGenerator>(
          sim, *validators[targets[i]], metrics, per_target, client_latency,
          config.duration, sim.rng().fork(),
          static_cast<TxId>(i) << 40));
      generators.back()->start();
    }
  }
}

ExperimentRun::ExperimentRun(const ExperimentConfig& config)
    : impl_(std::make_unique<Impl>(config)) {}

ExperimentRun::~ExperimentRun() = default;

SimTime ExperimentRun::now() const { return impl_->sim.now(); }

SimTime ExperimentRun::duration() const { return impl_->config.duration; }

bool ExperimentRun::finished() const {
  return impl_->stop_requested || impl_->sim.now() >= impl_->config.duration;
}

void ExperimentRun::stop() { impl_->stop_requested = true; }

void ExperimentRun::advance_to(SimTime t) {
  Impl& im = *impl_;
  t = std::min(t, im.config.duration);
  if (t <= im.sim.now()) return;
  const auto wall_start = std::chrono::steady_clock::now();
  im.sim.run_until(t);
  im.wall_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
}

std::vector<std::uint8_t> ExperimentRun::serialize_state() const {
  const Impl& im = *impl_;
  ByteWriter w;
  im.sim.serialize_state(w);
  im.network.serialize_state(w);
  w.u64(im.validators.size());
  for (const auto& validator : im.validators) validator->serialize_state(w);
  // Harness metrics: counters plus the latency sample-stream fingerprint
  // (the stream itself is not persisted — replay regenerates it — but its
  // hash pins the replayed stream to the recorded one).
  w.u64(im.metrics.submitted());
  w.u64(im.metrics.committed());
  w.u64(im.metrics.measured_committed());
  w.u64(im.metrics.latency().sample_hash());
  for (const std::uint64_t a : im.anchors_by_author) w.u64(a);
  // Adversary plane: runtime counters and the live directive book.
  w.u8(im.adversary ? 1 : 0);
  if (im.adversary) {
    const AdversaryStats& stats = im.adversary->stats();
    w.u64(stats.ticks);
    w.u64(stats.directive_flips);
    w.u64(stats.eclipse_windows);
    w.u64(stats.delay_retargets);
    const node::DirectiveBook& book = im.adversary->book();
    w.u64(book.size());
    for (ValidatorIndex v = 0; v < book.size(); ++v) {
      const node::ByzantineDirectives& d = book.directives(v);
      w.u8(d.equivocate ? 1 : 0);
      w.u32(d.withhold_votes_for);
    }
  }
  return w.data();
}

Checkpoint ExperimentRun::capture(std::uint32_t index) const {
  const Impl& im = *impl_;
  Checkpoint c;
  c.config_fingerprint = config_fingerprint(im.config);
  c.index = index;
  c.cut_time = im.sim.now();
  c.executed_events = im.sim.executed_events();
  c.seq_counter = im.sim.seq_counter();
  c.submitted = im.metrics.submitted();
  c.committed = im.metrics.committed();
  if (const node::Validator* obs = im.observer())
    c.committed_anchors = obs->committer().stats().committed_anchors;
  c.conflicting_certs = im.conflicting_certs_now();
  c.latency_sample_hash = im.metrics.latency().sample_hash();
  c.state = serialize_state();
  c.state_hash = fnv1a_bytes(c.state);
  return c;
}

std::string ExperimentRun::status_line() const {
  const Impl& im = *impl_;
  const node::Validator* obs = im.observer();
  std::ostringstream os;
  os << "t_us=" << im.sim.now() << " duration_us=" << im.config.duration
     << " events=" << im.sim.executed_events()
     << " submitted=" << im.metrics.submitted()
     << " committed=" << im.metrics.committed() << " anchors="
     << (obs ? obs->committer().stats().committed_anchors : 0)
     << " conflicting_certs=" << im.conflicting_certs_now();
  return os.str();
}

std::string ExperimentRun::gauges_text() const {
  const Impl& im = *impl_;
  const node::Validator* obs = im.observer();
  std::uint64_t leader_timeouts = 0, restarts = 0, state_syncs = 0;
  std::uint64_t equiv_sent = 0, equiv_observed = 0, withheld = 0;
  for (const auto& validator : im.validators) {
    if (!validator->crashed())
      leader_timeouts += validator->stats().leader_timeouts;
    restarts += validator->stats().restarts;
    state_syncs += validator->stats().state_syncs_completed;
    equiv_sent += validator->stats().equivocations_sent;
    equiv_observed += validator->stats().equivocations_observed;
    withheld += validator->stats().votes_withheld;
  }
  std::ostringstream os;
  os << "sim_time_us " << im.sim.now() << "\n"
     << "sim_events " << im.sim.executed_events() << "\n"
     << "submitted " << im.metrics.submitted() << "\n"
     << "committed " << im.metrics.committed() << "\n"
     << "measured_committed " << im.metrics.measured_committed() << "\n"
     << "committed_anchors "
     << (obs ? obs->committer().stats().committed_anchors : 0) << "\n"
     << "skipped_anchors "
     << (obs ? obs->committer().stats().skipped_anchors : 0) << "\n"
     << "conflicting_certs " << im.conflicting_certs_now() << "\n"
     << "leader_timeouts " << leader_timeouts << "\n"
     << "restarts " << restarts << "\n"
     << "state_syncs_completed " << state_syncs << "\n"
     << "equivocations_sent " << equiv_sent << "\n"
     << "equivocations_observed " << equiv_observed << "\n"
     << "votes_withheld " << withheld << "\n"
     << "messages_held " << im.network.stats().messages_held << "\n"
     << "adversary_ticks "
     << (im.adversary ? im.adversary->stats().ticks : 0) << "\n"
     << "adversary_actions "
     << (im.adversary ? im.adversary->stats().actions() : 0) << "\n";
  return os.str();
}

std::string ExperimentRun::inject(const std::vector<std::string>& args) {
  Impl& im = *impl_;
  auto need = [&](std::size_t n) {
    if (args.size() != n)
      throw std::runtime_error(
          "usage: inject crash <v> | recover <v> | cut <a> <b> | "
          "heal <a> <b> | delay <v> <us> | eclipse <v> <us>");
  };
  auto index_arg = [&](std::size_t i) {
    const unsigned long v = std::stoul(args.at(i));
    if (v >= im.config.num_validators)
      throw std::runtime_error("validator index " + args.at(i) +
                               " out of range (n=" +
                               std::to_string(im.config.num_validators) + ")");
    return static_cast<ValidatorIndex>(v);
  };
  auto time_arg = [&](std::size_t i) {
    return static_cast<SimTime>(std::stoll(args.at(i)));
  };
  if (args.empty()) need(1);
  const std::string& verb = args[0];
  const SimTime at = im.sim.now();
  std::ostringstream os;
  // Every injection rides a normal scheduled event at now() — the same
  // serial path the static fault schedule uses — so it executes inside the
  // next engine segment in deterministic (time, seq) order.
  if (verb == "crash" || verb == "recover") {
    need(2);
    node::Validator* validator = im.validators[index_arg(1)].get();
    if (verb == "crash")
      im.sim.schedule_at(at, [validator]() { validator->crash(); });
    else
      im.sim.schedule_at(at, [validator]() { validator->restart(); });
    os << verb << " validator " << args[1] << " at t_us=" << at;
  } else if (verb == "cut" || verb == "heal") {
    need(3);
    const std::vector<ValidatorIndex> a{index_arg(1)}, b{index_arg(2)};
    net::Network* net_ptr = &im.network;
    if (verb == "cut")
      im.sim.schedule_at(at, [net_ptr, a, b]() {
        net_ptr->cut_links(a, b, /*symmetric=*/true);
      });
    else
      im.sim.schedule_at(at, [net_ptr, a, b]() {
        net_ptr->restore_links(a, b, /*symmetric=*/true);
      });
    os << verb << " link " << args[1] << "<->" << args[2] << " at t_us=" << at;
  } else if (verb == "delay") {
    need(3);
    const ValidatorIndex v = index_arg(1);
    const SimTime extra = time_arg(2);
    net::Network* net_ptr = &im.network;
    const std::size_t n = im.config.num_validators;
    im.sim.schedule_at(at, [net_ptr, v, extra, n]() {
      for (ValidatorIndex u = 0; u < n; ++u) {
        if (u == v) continue;
        net_ptr->set_link_delay(u, v, extra);
        net_ptr->set_link_delay(v, u, extra);
      }
    });
    os << "delay links of validator " << args[1] << " by " << extra
       << "us at t_us=" << at;
  } else if (verb == "eclipse") {
    need(3);
    const ValidatorIndex v = index_arg(1);
    const SimTime window = time_arg(2);
    if (window <= 0) throw std::runtime_error("eclipse window must be > 0");
    std::vector<ValidatorIndex> victim{v}, rest;
    for (ValidatorIndex u = 0; u < im.config.num_validators; ++u)
      if (u != v) rest.push_back(u);
    net::Network* net_ptr = &im.network;
    im.sim.schedule_at(at, [net_ptr, victim, rest]() {
      net_ptr->cut_links(victim, rest, /*symmetric=*/true);
    });
    if (at + window < im.config.duration)
      im.sim.schedule_at(at + window, [net_ptr, victim, rest]() {
        net_ptr->restore_links(victim, rest, /*symmetric=*/true);
      });
    os << "eclipse validator " << args[1] << " for " << window
       << "us at t_us=" << at;
  } else {
    need(0);  // unknown verb: raise the usage error
  }
  return os.str();
}

ExperimentResult ExperimentRun::finish() {
  Impl& im = *impl_;
  HH_ASSERT_MSG(!im.collected, "ExperimentRun::finish() called twice");
  im.collected = true;
  const ExperimentConfig& config = im.config;
  sim::Simulator& sim = im.sim;
  MetricsCollector& metrics = im.metrics;
  const auto& validators = im.validators;
  const auto& adversary = im.adversary;

  ExperimentResult result;
  result.sim_events = sim.executed_events();
  result.wall_seconds = im.wall_seconds;
  result.events_per_sec_wall =
      im.wall_seconds > 0
          ? static_cast<double>(result.sim_events) / im.wall_seconds
          : 0;
  result.allocs_per_event =
      result.sim_events > 0
          ? static_cast<double>(sim.engine_allocs()) /
                static_cast<double>(result.sim_events)
          : 0;
  result.intra_jobs = sim.workers();
  result.parallel_events = sim.stats().parallel_events;
  result.staged_ops = sim.stats().staged_ops;
  result.policy =
      config.custom_policy ? "custom" : policy_name(config.policy);
  result.duration_s = to_seconds(config.duration);
  result.offered_load_tps = config.load_tps;
  result.submitted = metrics.submitted();
  result.committed = metrics.committed();
  const double measured_window_s =
      to_seconds(config.duration - config.warmup);
  result.throughput_tps =
      measured_window_s > 0
          ? static_cast<double>(metrics.measured_committed()) /
                measured_window_s
          : 0;
  result.avg_latency_s = metrics.latency().mean_s();
  result.p50_latency_s = metrics.latency().percentile_s(50);
  result.p95_latency_s = metrics.latency().percentile_s(95);
  result.p99_latency_s = metrics.latency().percentile_s(99);
  result.stdev_latency_s = metrics.latency().stdev_s();

  // Observer: lowest-indexed live honest validator.
  const node::Validator* observer = nullptr;
  for (const auto& validator : validators) {
    if (validator->crashed()) continue;
    observer = validator.get();
    break;
  }
  HH_ASSERT(observer != nullptr);
  const auto& cstats = observer->committer().stats();
  result.committed_anchors = cstats.committed_anchors;
  result.skipped_anchors = cstats.skipped_anchors;
  result.schedule_changes = cstats.schedule_changes;
  result.last_anchor_round = observer->committer().last_anchor_round();
  result.dag_bytes_per_vertex = observer->dag().bytes_per_vertex();
  for (const auto& validator : validators)
    if (!validator->crashed())
      result.leader_timeouts += validator->stats().leader_timeouts;
  for (const auto& validator : validators) {
    result.restarts += validator->stats().restarts;
    result.state_syncs_completed += validator->stats().state_syncs_completed;
    result.equivocations_sent += validator->stats().equivocations_sent;
    result.equivocations_observed +=
        validator->stats().equivocations_observed;
    result.votes_withheld += validator->stats().votes_withheld;
    if (!validator->crashed())
      result.conflicting_certs +=
          validator->committer().stats().conflicting_certs;
  }
  if (adversary) {
    result.adversary_ticks = adversary->stats().ticks;
    result.adversary_actions = adversary->stats().actions();
  }
  result.messages_held = im.network.stats().messages_held;

  result.anchors_by_author = std::move(im.anchors_by_author);
  // The percentile queries above already sorted the sample store, so the
  // fingerprint covers the sorted stream — every run executes this same
  // sequence, so equal traces hash equal and any divergence still differs.
  result.trace_hash = compute_trace_hash(
      result, metrics.latency().sample_hash(), im.have_adversary);
  return result;
}

ExperimentResult run_experiment(const ExperimentConfig& config) {
  // Resolve the resume source before constructing anything: a bad file or a
  // config mismatch must fail before we spend the replay.
  std::optional<Checkpoint> resume;
  if (!config.checkpoint.resume_from.empty()) {
    if (config.checkpoint.resume_from == "latest") {
      // Cold start when the directory has no valid checkpoint yet — the
      // soak harness's first cycle resumes from nothing.
      if (std::optional<FoundCheckpoint> found =
              find_latest_checkpoint(config.checkpoint.dir))
        resume = std::move(found->checkpoint);
    } else {
      resume = read_checkpoint_file(config.checkpoint.resume_from);
      if (!resume)
        throw std::runtime_error("cannot read checkpoint " +
                                 config.checkpoint.resume_from);
    }
    if (resume && resume->config_fingerprint != config_fingerprint(config))
      throw std::runtime_error(
          "checkpoint was written by a different config (fingerprint "
          "mismatch); refusing to resume — the replay would diverge");
  }

  ExperimentRun run(config);

  std::uint32_t next_index = 0;
  std::int64_t resumed_from = -1;
  const SimTime interval = config.checkpoint.interval;
  const bool checkpoints_on = !config.checkpoint.dir.empty() && interval > 0;
  // Next scheduled cut, on the interval grid (manual control-socket
  // checkpoints consume file indices but leave the grid alone).
  SimTime next_cut = interval;

  if (resume) {
    // Deterministic replay to the cut: the engine re-executes the identical
    // (time, seq) event sequence the original run took (PR 5 contract, which
    // holds across run_until segmentation), reconstructing every closure and
    // raw-pointer event a file could not carry.
    run.advance_to(resume->cut_time);
    if (config.checkpoint.verify_resume) {
      const std::vector<std::uint8_t> state = run.serialize_state();
      if (fnv1a_bytes(state) != resume->state_hash || state != resume->state)
        throw std::runtime_error(
            "checkpoint resume divergence at t_us=" +
            std::to_string(resume->cut_time) +
            ": replayed state is not byte-identical to the snapshot");
    }
    next_index = resume->index + 1;
    resumed_from = resume->index;
    if (checkpoints_on)
      next_cut = (resume->cut_time / interval + 1) * interval;
  }

  std::uint64_t written = 0;
  auto write_one = [&](const char* why) {
    const std::string path =
        checkpoint_path(config.checkpoint.dir, next_index);
    write_checkpoint_file(path, run.capture(next_index));
    prune_checkpoints(config.checkpoint.dir, next_index,
                      config.checkpoint.max_keep);
    HH_DEBUG("checkpoint " << next_index << " (" << why << ") at t_us="
                           << run.now() << " -> " << path);
    if (config.checkpoint.on_checkpoint)
      config.checkpoint.on_checkpoint(next_index);
    ++next_index;
    ++written;
    return path;
  };

  // Control plane binds after the replay so an operator cannot perturb the
  // deterministic prefix.
  std::optional<ControlServer> control;
  if (!config.control_socket.empty()) {
    ControlHooks hooks;
    hooks.status = [&run] { return run.status_line(); };
    hooks.gauges = [&run] { return run.gauges_text(); };
    hooks.checkpoint = [&]() -> std::string {
      if (config.checkpoint.dir.empty())
        throw std::runtime_error("no checkpoint.dir configured");
      return write_one("control");
    };
    hooks.inject = [&run](const std::vector<std::string>& args) {
      return run.inject(args);
    };
    hooks.stop = [&run] { run.stop(); };
    control.emplace(config.control_socket, std::move(hooks));
  }

  // Segment loop: run to the next cut / poll boundary, act, repeat. Cuts
  // land strictly inside the run (a cut at duration would checkpoint a
  // finished run). With neither plane configured this is one
  // run_until(duration) — the exact historical path.
  while (!run.finished()) {
    SimTime target = run.duration();
    if (checkpoints_on && next_cut < target) target = next_cut;
    if (control) {
      const SimTime poll_at = run.now() + config.control_poll_interval;
      if (poll_at < target) target = poll_at;
    }
    run.advance_to(target);
    if (checkpoints_on && run.now() == next_cut &&
        run.now() < run.duration()) {
      write_one("interval");
      next_cut += interval;
    }
    if (control) control->poll();
  }

  ExperimentResult result = run.finish();
  result.checkpoints_written = written;
  result.resumed_from = resumed_from;
  return result;
}

std::string result_header() {
  std::ostringstream os;
  os << std::left << std::setw(14) << "policy" << std::right << std::setw(8)
     << "load" << std::setw(10) << "tput" << std::setw(9) << "avg_s"
     << std::setw(9) << "p50_s" << std::setw(9) << "p95_s" << std::setw(9)
     << "commits" << std::setw(9) << "skipped" << std::setw(9) << "epochs"
     << std::setw(10) << "timeouts";
  return os.str();
}

std::string result_row(const ExperimentResult& r) {
  std::ostringstream os;
  os << std::left << std::setw(14) << r.policy << std::right << std::fixed
     << std::setw(8) << std::setprecision(0) << r.offered_load_tps
     << std::setw(10) << std::setprecision(0) << r.throughput_tps
     << std::setw(9) << std::setprecision(2) << r.avg_latency_s << std::setw(9)
     << r.p50_latency_s << std::setw(9) << r.p95_latency_s << std::setw(9)
     << r.committed_anchors << std::setw(9) << r.skipped_anchors
     << std::setw(9) << r.schedule_changes << std::setw(10)
     << r.leader_timeouts;
  return os.str();
}

}  // namespace hammerhead::harness

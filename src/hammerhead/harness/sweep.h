// Parallel experiment sweep driver: expands a SweepSpec — a cartesian grid
// over (policy x committee size x fault scenario x seed) plus an explicit
// config list — into independent ExperimentConfig runs, executes them across
// a pool of std::thread workers, and aggregates the ExperimentResults into
// one machine-readable BENCH_sweep_<name>.json.
//
// Determinism contract: every cell's run seed is derived with splitmix64
// over (salt, seed axis, grid index) at expansion time, each run owns its
// whole Simulator, and workers claim cells from an atomic counter writing
// results by cell index — so per-cell results are bit-identical at any
// --jobs count. Only the wall-clock gauges (wall_seconds,
// events_per_sec_wall, allocs_per_event under contention) vary across
// schedulings; deterministic_signature() captures exactly the invariant
// fields.
//
// This is the simulation-side stand-in for the paper's AWS sweep scripts
// (policies x fault patterns x committee sizes, Section 5) and the substrate
// future scenario PRs plug into: add a FaultScenario, list it in a spec,
// and every bench and CI gate downstream picks it up.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "hammerhead/common/rng.h"  // splitmix64, the per-cell seed PRF
#include "hammerhead/harness/experiment.h"

namespace hammerhead::harness {

/// Derive the run seed for grid cell `grid_index` carrying seed-axis value
/// `axis_seed` via splitmix64 (common/rng.h). Depends only on its
/// arguments, never on execution order — safe from any worker thread.
std::uint64_t derive_run_seed(std::uint64_t salt, std::uint64_t axis_seed,
                              std::size_t grid_index);

/// One named point on the fault-pattern axis: a mutation applied to a cell's
/// config after the policy / committee size / duration are in place.
struct FaultScenario {
  std::string name;
  std::function<void(ExperimentConfig&)> apply;
};

// --- canned scenario library ------------------------------------------------

/// No faults (the paper's Figure 1 setting).
FaultScenario scenario_faultless();

/// The `fraction` of the maximum tolerable crash faults f = (n-1)/3 crash at
/// t=0 and stay down (fraction=1 is the paper's Figure 2 setting).
FaultScenario scenario_crash_faults(double fraction = 1.0);

/// A symmetric partition isolating the top floor((n-1)/3) validators (at
/// least one) during [from_frac, until_frac) of the run, then healing. The
/// majority side keeps a 2f+1 quorum, so the committee stays live while the
/// minority is dark and catches up after the heal.
FaultScenario scenario_partition(double from_frac = 0.25,
                                 double until_frac = 0.5);

/// Asymmetric variant: the isolated minority can still hear the majority but
/// its own messages are cut (a one-way link failure).
FaultScenario scenario_partition_asymmetric(double from_frac = 0.25,
                                            double until_frac = 0.5);

/// Validator churn: `nodes` validators (highest indices, capped at the f
/// minority so quorum always survives) cycle through crash/recover for the
/// whole run, staggered across the period (cycles of adjacent nodes can
/// overlap, but never all nodes at once); recovery re-enters via fetch or
/// state sync.
FaultScenario scenario_churn(std::size_t nodes = 1);

/// Churn tuned so the outage crosses the GC horizon (small gc window, one
/// long crash): recovery MUST take the state-sync path, keeping snapshot
/// re-entry covered by the gated sweep grid, not just unit tests.
FaultScenario scenario_churn_deep();

/// Degraded validators (the Section 1 Sui-incident shape, same knobs as
/// bench_incident_slow_validators): the top minority runs with CPU and
/// links slowed by `factor` during [from_frac, to_frac) of the run.
FaultScenario scenario_slow_validators(double factor = 8.0,
                                       double from_frac = 0.25,
                                       double to_frac = 0.75);

// --- sweep specification ----------------------------------------------------

struct SweepCell;

struct SweepSpec {
  /// Output name: results land in BENCH_sweep_<name>.json.
  std::string name = "sweep";
  /// Template for every cell; the grid axes below override policy,
  /// num_validators and seed per cell. Empty axes fall back to the base
  /// config's value (a 1-wide axis).
  ExperimentConfig base;
  std::vector<PolicyKind> policies;
  std::vector<std::size_t> committee_sizes;
  /// Replicate axis: each value yields one run per grid point; cross-seed
  /// mean/stddev are aggregated per (policy, n, scenario, adversary) group.
  std::vector<std::uint64_t> seeds;
  /// Fault-pattern axis (scenario_* factories; empty = faultless only).
  std::vector<FaultScenario> scenarios;
  /// Adaptive-adversary axis (adversary_* factories in harness/adversary.h).
  /// Empty = a single honest sentinel: the grid enumerates exactly as it
  /// did before the axis existed, so historical derived seeds, labels and
  /// cell results reproduce byte-for-byte. A non-empty axis inserts between
  /// scenario and seed; entries with an empty name add no label fragment.
  /// Include AdversarySpec{} ("honest") alongside real adversaries to keep
  /// an unattacked control group in the same sweep. Worst-case commit
  /// latency is scored per adversary into SweepResult::adversary_worst.
  std::vector<AdversarySpec> adversaries;
  /// Explicit configs appended after the grid (label "extra/<name>").
  std::vector<std::pair<std::string, ExperimentConfig>> extra;
  /// Mixed into every derived run seed; two sweeps with different salts
  /// explore different randomness even over the same grid.
  std::uint64_t seed_salt = 0x48616d6d65724864ULL;
  /// When false, cells use the seed-axis value verbatim instead of the
  /// splitmix derivation (reproducing a specific single run inside a grid).
  bool derive_seeds = true;
  /// Cell filter applied at expansion (nullptr = keep everything): grid
  /// cells it rejects are dropped BEFORE execution, while grid_index — and
  /// thus every kept cell's derived seed — still counts the full cartesian
  /// grid, so a filtered quick-mode run stays bit-comparable with the same
  /// cells of the unfiltered full grid. How the quick-mode CI matrix stays
  /// inside its time budget as axes grow (see bench_sweep_matrix).
  std::function<bool(const SweepCell&)> cell_filter;
};

/// One fully materialized run: everything a worker needs, fixed at
/// expansion time on the driver thread.
struct SweepCell {
  /// Position in the FULL cartesian grid (counted before cell_filter), the
  /// input that pins this cell's derived seed.
  std::size_t grid_index = 0;
  /// "policy=<p>/n=<n>/fault=<s>[/adv=<a>]/seed=<axis>" — the /adv=
  /// fragment appears only for named adversary-axis values.
  std::string label;
  std::string policy;
  std::string scenario;
  /// Adversary-axis value name ("" = honest sentinel / no axis).
  std::string adversary;
  std::size_t num_validators = 0;
  std::uint64_t axis_seed = 0;
  ExperimentConfig config;  // config.seed holds the derived run seed
};

/// Expand the grid (policy-major, seed-minor, extras appended). Pure:
/// depends only on `spec`.
std::vector<SweepCell> expand_sweep(const SweepSpec& spec);

/// Cross-seed aggregate for one (policy, n, scenario) group.
struct SweepGroupStats {
  std::string label;  // cell label with the seed axis stripped
  std::size_t runs = 0;
  /// Run context of the group's cells (identical across seeds), carried
  /// into the JSON so the regression gate can match quick vs full modes.
  double duration_s = 0;
  double offered_load_tps = 0;
  double throughput_mean = 0;
  double throughput_stddev = 0;  // sample stddev across seeds
  double avg_latency_mean = 0;
  double p50_mean = 0;
  double p95_mean = 0;
  /// Cross-seed sample stddev of p95 latency: the variance context the
  /// regression gate needs to promote p95 from advisory to gating
  /// (tools/bench_compare.py trips when p95 grows beyond
  /// max(25%, 3 x this)).
  double p95_stddev = 0;
  double p99_mean = 0;
  double committed_anchors_mean = 0;
  /// Cross-seed sample stddev of the commit count — the context that
  /// promotes committed_anchors from advisory to gating in
  /// tools/bench_compare.py (trips when the mean drops beyond
  /// max(threshold, 3 x this)).
  double committed_anchors_stddev = 0;
  double skipped_anchors_mean = 0;
};

struct SweepOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency().
  std::size_t jobs = 0;
  /// Invoked (serialized under a mutex, from worker threads) as each cell
  /// finishes — progress reporting.
  std::function<void(const SweepCell&, const ExperimentResult&)> on_cell;
};

/// Worst-case commit-latency scoring for one adversary-axis value, pooled
/// over every cell (all policies, sizes, scenarios, seeds) that ran under
/// it. JSON label "adv/<name>"; worst_p95_latency_s is gated by
/// tools/bench_compare.py with worst_p95_stddev as variance context.
struct AdversaryWorstCase {
  std::string label;  // "adv/<adversary name>"
  std::size_t runs = 0;
  /// Run context (identical across the adversary's cells in one sweep).
  double duration_s = 0;
  double offered_load_tps = 0;
  /// Max p95 commit latency over the adversary's cells — the worst case
  /// this adversary inflicted anywhere in the grid.
  double worst_p95_latency_s = 0;
  /// Cross-cell sample stddev of p95 (the gate's variance context).
  double worst_p95_stddev = 0;
  /// Min committed anchors over the cells (worst-case liveness).
  double committed_anchors_min = 0;
  /// Summed safety counter over the cells; must be 0 (f < n/3).
  double conflicting_certs = 0;
};

struct SweepResult {
  std::string name;
  std::size_t jobs = 1;
  double wall_seconds = 0;
  std::vector<SweepCell> cells;
  std::vector<ExperimentResult> results;  // parallel to cells
  std::vector<SweepGroupStats> groups;
  /// Per-adversary worst-case rows (empty when no named adversary ran).
  std::vector<AdversaryWorstCase> adversary_worst;
  /// Cells whose run threw (e.g. an invariant violation on a bad config):
  /// "<label>: <what>" plus the cell index. The failing cell's result stays
  /// default-constructed and the rest of the grid still completes; failed
  /// cells are excluded from `groups` and from the JSON rows (callers
  /// decide whether a partial sweep is acceptable — bench_sweep_matrix
  /// exits nonzero on any error so CI fails loudly, not via skewed stats).
  std::vector<std::string> errors;
  std::vector<std::size_t> failed_cells;  // indices into cells/results
};

/// Run every cell of the expanded spec across `options.jobs` workers.
SweepResult run_sweep(const SweepSpec& spec, const SweepOptions& options = {});

/// Serialize per-cell rows plus "agg/..." group rows as
/// `<dir>/BENCH_sweep_<name>.json` (same shape as bench/bench_json.h output,
/// so tools/bench_compare.py gates it uniformly). Returns the path written.
std::string write_sweep_json(const SweepResult& sweep,
                             const std::string& dir = ".");

/// The jobs-invariant fields of a result, formatted for exact comparison
/// (everything except the wall-clock gauges).
std::string deterministic_signature(const ExperimentResult& r);

}  // namespace hammerhead::harness

#include "hammerhead/harness/control.h"

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <stdexcept>

namespace hammerhead::harness {

namespace {

/// The command surface, cross-checked against the table in
/// docs/checkpoint.md by tools/check_docs.py (both directions: every entry
/// here must be documented, every documented command must exist here).
struct CommandSpec {
  const char* name;
  const char* help;
};

constexpr CommandSpec kCommands[] = {
    {"ping", "liveness probe; replies pong"},
    {"status", "one-line progress summary (sim time, commits, events)"},
    {"gauges", "multi-line dump of the run's metric gauges"},
    {"checkpoint", "write a checkpoint at the current segment boundary"},
    {"inject", "apply a fault: crash <v> | recover <v> | cut <a> <b> | "
               "heal <a> <b> | delay <v> <us> | eclipse <v> <us>"},
    {"stop", "end the run at the current segment boundary"},
    {"help", "list commands"},
};

std::vector<std::string> split_words(const std::string& line) {
  std::vector<std::string> words;
  std::istringstream is(line);
  std::string word;
  while (is >> word) words.push_back(word);
  return words;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

ControlServer::ControlServer(std::string path, ControlHooks hooks)
    : path_(std::move(path)), hooks_(std::move(hooks)) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path_.size() >= sizeof(addr.sun_path))
    throw std::runtime_error("control socket path too long: " + path_);
  std::memcpy(addr.sun_path, path_.c_str(), path_.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0)
    throw std::runtime_error("control socket: socket() failed");
  ::unlink(path_.c_str());  // stale socket from a killed run
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, 4) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("control socket: cannot bind " + path_);
  }
  set_nonblocking(listen_fd_);
}

ControlServer::~ControlServer() {
  for (Client& c : clients_)
    if (c.fd >= 0) ::close(c.fd);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  ::unlink(path_.c_str());
}

void ControlServer::drop_client(Client& c) {
  if (c.fd >= 0) ::close(c.fd);
  c.fd = -1;
}

std::string ControlServer::handle_line(const std::string& line) {
  const std::vector<std::string> words = split_words(line);
  if (words.empty()) return "err empty command\n";
  const std::string& cmd = words[0];
  try {
    if (cmd == "ping") return "pong\nok\n";
    if (cmd == "help") {
      std::ostringstream os;
      for (const CommandSpec& spec : kCommands)
        os << spec.name << " — " << spec.help << "\n";
      os << "ok\n";
      return os.str();
    }
    if (cmd == "status")
      return hooks_.status ? hooks_.status() + "\nok\n" : "err no hook\n";
    if (cmd == "gauges")
      return hooks_.gauges ? hooks_.gauges() + "ok\n" : "err no hook\n";
    if (cmd == "checkpoint")
      return hooks_.checkpoint ? hooks_.checkpoint() + "\nok\n"
                               : "err no hook\n";
    if (cmd == "inject") {
      if (!hooks_.inject) return "err no hook\n";
      return hooks_.inject({words.begin() + 1, words.end()}) + "\nok\n";
    }
    if (cmd == "stop") {
      if (hooks_.stop) hooks_.stop();
      return "stopping\nok\n";
    }
  } catch (const std::exception& e) {
    return std::string("err ") + e.what() + "\n";
  }
  return "err unknown command " + cmd + " (try help)\n";
}

std::size_t ControlServer::poll() {
  // Accept pending operators.
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) break;
    if (clients_.size() >= kMaxClients) {
      ::close(fd);
      continue;
    }
    set_nonblocking(fd);
    clients_.push_back(Client{fd, {}});
  }

  std::size_t executed = 0;
  for (Client& c : clients_) {
    if (c.fd < 0) continue;
    char buf[1024];
    for (;;) {
      const ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
      if (n > 0) {
        c.buf.append(buf, static_cast<std::size_t>(n));
        if (c.buf.size() > kMaxLine) {
          drop_client(c);
          break;
        }
        continue;
      }
      if (n == 0) {  // orderly shutdown
        drop_client(c);
      }
      break;  // n < 0: EAGAIN (no more data) or error
    }
    if (c.fd < 0) continue;

    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = c.buf.find('\n', start);
      if (nl == std::string::npos) break;
      std::string line = c.buf.substr(start, nl - start);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      start = nl + 1;
      const std::string reply = handle_line(line);
      ++executed;
      // Short reply to a local socket; a blocked/slow reader just loses
      // the tail (MSG_NOSIGNAL: a vanished one must not kill the run).
      if (::send(c.fd, reply.data(), reply.size(), MSG_NOSIGNAL) < 0) {
        drop_client(c);
        break;
      }
    }
    if (c.fd >= 0 && start > 0) c.buf.erase(0, start);
  }
  std::erase_if(clients_, [](const Client& c) { return c.fd < 0; });
  return executed;
}

}  // namespace hammerhead::harness

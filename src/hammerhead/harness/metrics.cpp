#include "hammerhead/harness/metrics.h"

#include <algorithm>
#include <cmath>

#include "hammerhead/common/assert.h"

namespace hammerhead::harness {

void LatencyHistogram::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double LatencyHistogram::mean_s() const {
  if (samples_.empty()) return 0.0;
  double sum = 0;
  for (SimTime s : samples_) sum += to_seconds(s);
  return sum / static_cast<double>(samples_.size());
}

double LatencyHistogram::stdev_s() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean_s();
  double acc = 0;
  for (SimTime s : samples_) {
    const double d = to_seconds(s) - m;
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double LatencyHistogram::percentile_s(double p) const {
  HH_ASSERT(p >= 0.0 && p <= 100.0);
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return to_seconds(samples_[lo]) * (1.0 - frac) +
         to_seconds(samples_[hi]) * frac;
}

double LatencyHistogram::max_s() const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  return to_seconds(samples_.back());
}

std::uint64_t LatencyHistogram::sample_hash() const {
  Fnv1a fnv;
  for (const SimTime s : samples_) fnv.mix(static_cast<std::uint64_t>(s));
  fnv.mix(samples_.size());
  return fnv.hash;
}

void MetricsCollector::on_tx_submitted(const dag::Transaction& tx) {
  ++submitted_;
  in_flight_.emplace(tx.id, tx.submit_time);
}

void MetricsCollector::on_commit(ValidatorIndex reporter,
                                 const consensus::CommittedSubDag& sd,
                                 SimTime client_return_latency) {
  for (const auto& vertex : sd.vertices) {
    if (!vertex->header->payload) continue;
    for (const auto& tx : vertex->header->payload->txs) {
      if (tx.submitted_to != reporter) continue;
      auto it = in_flight_.find(tx.id);
      if (it == in_flight_.end()) continue;  // already counted
      ++committed_;
      if (it->second >= measure_from_) {
        latency_.record(sd.commit_time - it->second + client_return_latency);
      }
      in_flight_.erase(it);
    }
  }
}

}  // namespace hammerhead::harness

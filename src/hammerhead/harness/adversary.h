// Adaptive adversary framework: strategy objects that observe protocol state
// while a run executes and choose attack actions — the ICSSIM-style
// composable attack-injection layer of ROADMAP "Next directions" item 2.
//
// An AdversaryStrategy is ticked periodically on a serial-shard event (a
// barrier within same-timestamp batches, like every other fault-injection
// event), reads an AdversaryObservation snapshotted from the lowest-indexed
// live honest validator (anchor schedule, commit tallies, GC horizon) and
// mutates the run through an AdversaryActions facade:
//
//  * equivocation        — flip a ByzantineDirectives::equivocate bit; the
//                          corrupted validator proposes conflicting headers
//                          to disjoint recipient sets (recipient-list
//                          multicast, node/byzantine.cpp).
//  * vote withholding    — retarget withhold_votes_for at the upcoming
//                          anchor's author, starving its certificate of
//                          support until honest votes alone certify it.
//  * eclipse             — timed cut_links/restore_links windows isolating a
//                          victim; cuts are refcounted so windows stack with
//                          partition scenarios.
//  * adaptive delay      — per-link extra latency via Network::set_link_delay,
//                          applied before the partial-synchrony cap so links
//                          stretch at most to max(GST, send) + delta.
//
// Determinism: strategies are pure functions of the observation (no RNG),
// all mutation happens on serial-shard events, and directive reads from
// validators' sharded events never overlap a write — so the PR 5 contract
// `trace hash(jobs=1) == hash(jobs=K)` holds with adversaries active
// (proven by tests/adversary_test.cpp and bench_sweep_matrix --verify).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "hammerhead/harness/sweep.h"
#include "hammerhead/monitor/metrics_registry.h"
#include "hammerhead/net/network.h"
#include "hammerhead/node/byzantine_validator.h"
#include "hammerhead/sim/simulator.h"

namespace hammerhead::harness {

/// Protocol state visible to a strategy at one tick, snapshotted from the
/// lowest-indexed live honest validator (the same observer the result
/// collection uses). All fields are deterministic at any worker count.
struct AdversaryObservation {
  /// Simulated now and total run length (for fraction-of-run scheduling).
  SimTime now = 0;
  SimTime duration = 0;
  /// Committee size n.
  std::size_t num_validators = 0;
  /// Observer's DAG frontier (max round seen; 0 before the first cert).
  Round frontier = 0;
  /// The next even (anchor) round at or above the frontier, and the leader
  /// the observer's schedule assigns to it — the adversary sees the anchor
  /// schedule exactly as honest nodes do.
  Round next_anchor_round = 0;
  ValidatorIndex next_anchor_leader = 0;
  /// Observer's commit tallies (vote outcomes as materialized anchors).
  std::uint64_t committed_anchors = 0;
  std::uint64_t skipped_anchors = 0;
  /// Observer's GC horizon: certificates below it are pruned, so a victim
  /// eclipsed past it must re-enter via state sync.
  Round gc_floor = 0;
};

/// Mutation counters for the hh_adv_* gauges and the worst-case rows.
struct AdversaryStats {
  std::uint64_t ticks = 0;
  /// equivocate / withhold_votes_for directive changes applied.
  std::uint64_t directive_flips = 0;
  /// Eclipse windows opened (each schedules its own restore).
  std::uint64_t eclipse_windows = 0;
  /// Link-delay retargets (clear + re-aim of the delayed link set).
  std::uint64_t delay_retargets = 0;

  std::uint64_t actions() const {
    return directive_flips + eclipse_windows + delay_retargets;
  }
};

/// Mutation facade handed to strategies on each tick. All methods run on the
/// serial shard; effects are visible to every validator event scheduled
/// after the tick's timestamp.
class AdversaryActions {
 public:
  AdversaryActions(sim::Simulator& sim, net::Network& network,
                   node::DirectiveBook& book, AdversaryStats& stats)
      : sim_(sim), network_(network), book_(book), stats_(stats) {}

  /// Toggle equivocating proposals for validator `v`.
  void set_equivocate(ValidatorIndex v, bool on);
  /// Aim `v`'s vote withholding at `target` (kInvalidValidator = none).
  void set_withhold_votes_for(ValidatorIndex v, ValidatorIndex target);
  /// Sever every link touching `victim` for `window` (symmetric), then
  /// restore on a scheduled serial event. Refcounted: overlapping windows
  /// and partition scenarios compose. A restore landing past the run end
  /// never fires — the held traffic stays counted in messages_held.
  void eclipse(ValidatorIndex victim, SimTime window);
  /// Add `extra` one-way delay to every link touching `node` (both
  /// directions); 0 clears them. Capped by partial synchrony inside the
  /// fabric. Counts one delay retarget per call.
  void delay_node(ValidatorIndex node, SimTime extra);
  /// Drop every per-link delay (cheaper than delay_node(v, 0) per victim).
  void clear_link_delays();

  /// The partial-synchrony bound delta of this run's fabric (the natural
  /// unit for delay_node amounts).
  SimTime delta() const;

 private:
  sim::Simulator& sim_;
  net::Network& network_;
  node::DirectiveBook& book_;
  AdversaryStats& stats_;
};

/// One adaptive adversary. Implementations must be deterministic functions
/// of the observation stream (no RNG, no wall clock): the simulator asserts
/// no Rng draws on sharded waves, and determinism across --jobs depends on
/// it here too.
class AdversaryStrategy {
 public:
  virtual ~AdversaryStrategy() = default;
  virtual const char* name() const = 0;
  /// Observe and act. Called every tick period from run start to run end.
  virtual void on_tick(const AdversaryObservation& obs,
                       AdversaryActions& act) = 0;
};

/// Owns the strategies, the DirectiveBook and the periodic tick event of one
/// run. Constructed by run_experiment when ExperimentConfig::adversaries is
/// non-empty; lives on the stack of the run.
class AdversaryRuntime {
 public:
  /// `validators` must outlive the runtime (run_experiment owns both).
  /// Directives are attached to every validator immediately; ticking begins
  /// at start().
  AdversaryRuntime(sim::Simulator& sim, net::Network& network,
                   const std::vector<node::Validator*>& validators,
                   const ExperimentConfig& config);

  /// Schedule the periodic serial-shard tick (half the round cadence, so
  /// strategies can react within a round).
  void start();

  const AdversaryStats& stats() const { return stats_; }
  const node::DirectiveBook& book() const { return book_; }
  std::size_t num_strategies() const { return strategies_.size(); }

 private:
  void tick();
  AdversaryObservation observe() const;

  sim::Simulator& sim_;
  net::Network& network_;
  std::vector<node::Validator*> validators_;
  SimTime duration_;
  SimTime tick_period_;
  node::DirectiveBook book_;
  std::vector<std::unique_ptr<AdversaryStrategy>> strategies_;
  AdversaryStats stats_;
};

// --- canned strategy library ------------------------------------------------
//
// Every factory returns an AdversarySpec (a named per-run strategy factory)
// that plugs into ExperimentConfig::adversaries directly or into
// SweepSpec::adversaries as a sweep-axis value. The corrupted set is always
// node::corrupted_set(n, count): the highest indices, capped at the largest
// minority f = max(1, (n-1)/3), so validator 0 stays an honest observer and
// the adversary never controls a blocking quorum.

/// `count` corrupted validators (0 = the full f minority) propose
/// conflicting headers each round. With `only_when_anchor_corrupt` the
/// equivocation fires only while the upcoming anchor's leader is itself
/// corrupted — conflicting *anchor* candidates are the sharpest safety
/// stressor. Moves hh_adv_equivocations_sent / hh_equivocations_observed;
/// hh_adv_conflicting_certs must stay 0 (vote uniqueness).
AdversarySpec adversary_equivocate(std::size_t count = 0,
                                   bool only_when_anchor_corrupt = false);

/// `count` corrupted validators (0 = f) withhold their votes from the
/// upcoming anchor's author, retargeting as the schedule rotates — the
/// Section 7 strategy HammerHead's vote-frequency scoring punishes. Anchors
/// certify on honest votes alone (n - f >= 2f + 1), so commits continue but
/// anchor certification slows. Moves hh_adv_votes_withheld and
/// skipped_anchors / leader_timeouts.
AdversarySpec adversary_withhold_votes(std::size_t count = 0);

/// Periodically eclipse a victim — the next anchor's leader, or
/// `fixed_victim` when given — cutting all its links for
/// `window_frac * duration` every `period_frac * duration`. The victim's
/// traffic buffers and flushes at heal (reliable channels); a window longer
/// than the GC horizon forces state-sync re-entry. Moves messages_held,
/// hh_net_links_cut, state_syncs_completed.
AdversarySpec adversary_eclipse(double window_frac = 0.08,
                                double period_frac = 0.25,
                                ValidatorIndex fixed_victim =
                                    kInvalidValidator);

/// Stretch every link touching the upcoming anchor's leader by
/// `delta_fraction` of the fabric's partial-synchrony delta, retargeting as
/// the schedule rotates — the worst-case message-delay adversary the
/// synchrony model permits (delays cap at max(GST, send) + delta). Moves
/// hh_net_links_delayed and commit latency.
AdversarySpec adversary_delay(double delta_fraction = 0.5);

/// Compose `adversaries` into one FaultScenario (they all tick every
/// period; link cuts and directives stack). `name` defaults to the specs'
/// names joined with '+'. The scenario appends to — not replaces — any
/// adversaries already in the cell's config.
FaultScenario scenario_adversary(std::vector<AdversarySpec> adversaries,
                                 std::string name = "");

/// Runtime-level hh_adv_* gauges (ticks, actions, active directives, link
/// state); per-validator equivocation/withholding gauges ride
/// export_validator_metrics.
void export_adversary_metrics(const AdversaryRuntime& runtime,
                              monitor::MetricsRegistry& registry);

}  // namespace hammerhead::harness

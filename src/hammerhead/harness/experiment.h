// Experiment runner: builds a committee, wires validators over the simulated
// WAN, drives load generators and fault injection, and reports the metrics
// the paper's figures plot. This is the stand-in for the paper's AWS
// orchestrator (Appendix A).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "hammerhead/core/policies.h"
#include "hammerhead/harness/checkpoint.h"
#include "hammerhead/harness/metrics.h"
#include "hammerhead/net/network.h"
#include "hammerhead/node/validator.h"

namespace hammerhead::harness {

class AdversaryStrategy;  // harness/adversary.h

/// Leader-schedule policy selector for ExperimentConfig::policy.
enum class PolicyKind { RoundRobin, HammerHead, StaticLeader, ShoalLike };

const char* policy_name(PolicyKind kind);

/// Link-latency model selector:
///  * Geo     — great-circle WAN latency over the paper's 13 AWS regions
///              (validator i lives in region i % 13).
///  * Uniform — uniform in [uniform_latency_min, uniform_latency_max].
///  * Matrix  — trace-driven site-to-site matrix (latency_matrix below),
///              e.g. loaded from a cloudping-style measurement dump via
///              net::load_latency_matrix().
enum class LatencyKind { Geo, Uniform, Matrix };

/// A named adversary: a factory for one AdversaryStrategy instance per run
/// (strategies are stateful, so each run constructs its own). `name` labels
/// sweep cells (`/adv=<name>`) and aggregate rows; an empty name is the
/// honest sentinel the sweep driver uses for "no adversary".
struct AdversarySpec {
  std::string name;
  std::function<std::unique_ptr<AdversaryStrategy>()> make;
};

/// A window during which some validators run degraded (CPU and links slowed
/// by `factor`) — models the Sui mainnet incident from Section 1.
struct SlowWindow {
  std::vector<ValidatorIndex> nodes;
  double factor = 4.0;
  SimTime from = 0;
  SimTime to = 0;
};

struct CrashEvent {
  ValidatorIndex node = 0;
  SimTime at = 0;
  std::optional<SimTime> recover_at;  // nullopt = stays down
};

/// A (possibly asymmetric) network partition window: every link from a node
/// in `side_a` to a node in `side_b` — and the reverse when `symmetric` — is
/// severed during [from, until). `side_b` empty means "everyone not in
/// side_a". The fabric buffers cut-link traffic and redelivers it at heal
/// time (reliable channels); `until = kSimTimeNever` never heals.
struct PartitionWindow {
  std::vector<ValidatorIndex> side_a;
  std::vector<ValidatorIndex> side_b;
  SimTime from = 0;
  SimTime until = kSimTimeNever;
  bool symmetric = true;
};

/// Validator churn: `nodes` crash and recover in repeating cycles,
/// re-entering via incremental fetch or state sync (when the outage crossed
/// the GC horizon). Node k starts its first cycle at `start + k * stagger`;
/// each cycle crashes for `downtime` out of every `period`.
struct ChurnSpec {
  std::vector<ValidatorIndex> nodes;
  SimTime start = seconds(5);
  SimTime period = seconds(10);
  SimTime downtime = seconds(4);
  /// Offset between consecutive nodes' cycles; kAutoStagger spreads them
  /// evenly across one period so the nodes are not all down at once.
  static constexpr SimTime kAutoStagger = -1;
  SimTime stagger = kAutoStagger;
  std::size_t cycles = 0;  // 0 = as many as fit before the run ends
};

/// Checkpoint/resume knobs (tentpole of docs/checkpoint.md). With `dir`
/// set, run_experiment cuts the run at every multiple of `interval`
/// (strictly inside the run), captures a replay-cut snapshot at the batch
/// boundary and writes it atomically as `ckpt_<k>.hhcp` plus a JSON
/// progress sidecar. Checkpointing is trace-neutral: the checkpointed run's
/// trace_hash equals the unobserved run's.
struct CheckpointSettings {
  /// Directory for checkpoint files; empty = checkpointing off.
  std::string dir;
  /// Simulated-time cadence between cuts.
  SimTime interval = seconds(5);
  /// Resume source: a checkpoint file path, or "latest" to pick the
  /// newest valid checkpoint in `dir` (cold start when none exists — the
  /// soak harness's first cycle). Empty = fresh run.
  std::string resume_from;
  /// After replaying to the cut, byte-compare the recomputed state blob
  /// against the snapshot and fail the run on divergence. The determinism
  /// proof; costs one extra serialization per resume.
  bool verify_resume = true;
  /// Keep only the newest N checkpoint files (0 = keep all).
  std::size_t max_keep = 0;
  /// Invoked after each checkpoint file is durably on disk (argument: its
  /// index). The crash-injection soak harness SIGKILLs itself from here to
  /// prove mid-run kills land after an atomic write; also usable as a
  /// progress callback. Not part of the run's identity (config_fingerprint
  /// ignores it).
  std::function<void(std::uint32_t)> on_checkpoint;
};

struct ExperimentConfig {
  /// Committee size n (f = (n-1)/3 tolerated crash/Byzantine faults).
  std::size_t num_validators = 10;
  /// Root seed: keys, latency jitter, load arrivals, adversarial delays.
  /// Equal seeds reproduce bit-identical runs at any intra_jobs.
  std::uint64_t seed = 42;
  /// Per-validator stake weights; empty = equal stake.
  std::vector<Stake> stakes;

  /// Leader-schedule policy under test (ignored when custom_policy is set).
  PolicyKind policy = PolicyKind::HammerHead;
  /// HammerHead reputation knobs (schedule-change cadence, exclusion
  /// fraction) for PolicyKind::HammerHead.
  core::HammerHeadConfig hh;
  /// The fixed leader for PolicyKind::StaticLeader.
  ValidatorIndex static_leader = 0;
  /// When set, overrides `policy`: every validator's leader schedule comes
  /// from this factory. This is the extension point for user-defined
  /// reputation policies (see examples/custom_reputation_policy.cpp).
  node::Validator::PolicyFactory custom_policy;

  /// Which LatencyModel the fabric samples (see LatencyKind).
  LatencyKind latency = LatencyKind::Geo;
  /// Bounds for LatencyKind::Uniform.
  SimTime uniform_latency_min = millis(20);
  SimTime uniform_latency_max = millis(60);
  /// Site-to-site one-way matrix for LatencyKind::Matrix (validator i maps
  /// to site i % sites). Must be non-empty when latency == Matrix.
  net::LatencyMatrix latency_matrix;
  /// Fabric knobs: GST/delta, bandwidth, delivery slotting, tree fanout.
  net::NetConfig net;
  /// Per-validator protocol + CPU-cost-model knobs.
  node::NodeConfig node;

  /// Simulated run length (measurement window = duration - warmup).
  SimTime duration = seconds(30);
  /// Leading window excluded from throughput/latency metrics.
  SimTime warmup = seconds(5);
  /// Offered client load, transactions per simulated second.
  double load_tps = 1'000.0;
  /// One-way client <-> validator latency (clients are colocated with the
  /// validator they submit to, like the paper's per-instance load generators).
  SimTime client_latency = micros(500);

  /// The `faults` highest-indexed validators crash at `crash_time` and stay
  /// down (the paper's Figure 2 setting, with crash_time = 0).
  std::size_t faults = 0;
  /// When the `faults` validators go down (paper setting: 0).
  SimTime crash_time = 0;
  /// Additional explicit crash/recover events.
  std::vector<CrashEvent> crashes;
  /// Degraded-validator windows (CPU + link slowdown).
  std::vector<SlowWindow> slow_windows;
  /// Timed (possibly asymmetric) link-cut windows.
  std::vector<PartitionWindow> partitions;
  /// Repeating crash/recover cycles with staggered offsets.
  std::vector<ChurnSpec> churn;
  /// Static behaviour overrides for specific validators (fixed Byzantine
  /// injection; for runtime-adaptive corruption use `adversaries`).
  std::vector<std::pair<ValidatorIndex, node::Behavior>> behaviors;
  /// Adaptive adversaries driven while the run executes: each spec's
  /// strategy observes protocol state on a periodic serial-shard tick and
  /// steers equivocation/vote-withholding directives, eclipse link cuts and
  /// per-link delays (see harness/adversary.h). Strategies compose — all of
  /// them see every tick, and link cuts stack by refcount. Empty specs and
  /// specs with a null `make` (the sweep's honest sentinel) are skipped.
  std::vector<AdversarySpec> adversaries;

  /// Load generators only target validators that have not crashed by
  /// `crash_time` (benchmark clients connect to live nodes).
  bool clients_avoid_crashed = true;

  /// Worker threads INSIDE the one Simulator of this run (1 = serial).
  /// Orthogonal to the sweep driver's --jobs, which parallelizes across
  /// runs; cells can trade inter- for intra-run parallelism. Seeded runs
  /// are bit-identical at any value (see ARCHITECTURE.md, "Sharded
  /// execution").
  std::size_t intra_jobs = 1;
  /// Execution slot in microseconds (0 = off): sets both the fabric's
  /// delivery slotting (net.delivery_slot) and the validators' dispatch
  /// slotting (node.dispatch_slot) so same-slot events form dense batches
  /// the sharded Simulator can spread across workers. Deterministic at any
  /// worker count; a non-zero slot shifts timestamps (and thus simulated
  /// metrics) slightly, so serial and sharded rows of one comparison must
  /// use the same value.
  SimTime exec_slot = 0;

  /// Checkpoint/resume (see CheckpointSettings and docs/checkpoint.md).
  CheckpointSettings checkpoint;
  /// UNIX-socket path for the live control plane (empty = off). The socket
  /// is polled on the driver thread between engine segments — the same
  /// serial context fault-injection events run in (harness/control.h).
  std::string control_socket;
  /// Simulated-time cadence between control-socket polls.
  SimTime control_poll_interval = millis(100);
};

struct ExperimentResult {
  std::string policy;
  double duration_s = 0;
  double offered_load_tps = 0;
  std::uint64_t submitted = 0;
  std::uint64_t committed = 0;
  double throughput_tps = 0;  // measured window only
  double avg_latency_s = 0;
  double p50_latency_s = 0;
  double p95_latency_s = 0;
  double p99_latency_s = 0;
  double stdev_latency_s = 0;

  // Observer-side protocol stats (first live honest validator).
  std::uint64_t committed_anchors = 0;
  std::uint64_t skipped_anchors = 0;
  std::uint64_t schedule_changes = 0;
  std::uint64_t leader_timeouts = 0;  // summed over live validators
  /// Churn accounting, summed over all validators.
  std::uint64_t restarts = 0;
  std::uint64_t state_syncs_completed = 0;
  /// Messages the fabric buffered behind cut links (partition windows).
  std::uint64_t messages_held = 0;
  /// Adversary-framework accounting, summed over all validators (all zero
  /// unless config.adversaries or Byzantine behaviors were active).
  /// Conflicting header pairs proposed by corrupted validators.
  std::uint64_t equivocations_sent = 0;
  /// Equivocations refused at honest nodes (vote uniqueness) plus certified
  /// conflicts observed at admission.
  std::uint64_t equivocations_observed = 0;
  /// Votes refused under withhold_votes_for directives.
  std::uint64_t votes_withheld = 0;
  /// SAFETY GAUGE: certified equivocations that reached a live committer's
  /// input. Must stay 0 while < n/3 stake is corrupted (asserted by
  /// tests/adversary_test.cpp).
  std::uint64_t conflicting_certs = 0;
  /// Adversary runtime: observation ticks taken and mutations applied
  /// (directive flips, eclipse windows, link-delay retargets).
  std::uint64_t adversary_ticks = 0;
  std::uint64_t adversary_actions = 0;
  std::int64_t last_anchor_round = -2;
  /// How many committed anchors each validator authored (leader utilization
  /// per validator, from the observer's commit stream).
  std::vector<std::uint64_t> anchors_by_author;

  // Event-engine gauges: how fast the substrate chewed through the run.
  std::uint64_t sim_events = 0;        // events executed by the engine
  double wall_seconds = 0;             // host wall-clock of the sim loop
  double events_per_sec_wall = 0;      // sim_events / wall_seconds
  /// Engine-side heap allocations per executed event (slab growth, bucket
  /// and heap capacity growth, std::function storage); ~0 in steady state.
  double allocs_per_event = 0;
  /// Structural DAG memory per resident vertex at the observer at run end
  /// (hot + compressed parent storage plus index bitmap words). A storage-
  /// representation gauge: it varies with the tiering knob, so it is
  /// excluded from trace_hash like the wall gauges.
  double dag_bytes_per_vertex = 0;
  /// Sharded-execution gauges: worker count, events run inside parallel
  /// waves and effects staged for ordered replay (wall-independent but
  /// schedule-dependent; excluded from trace_hash).
  std::size_t intra_jobs = 1;
  std::uint64_t parallel_events = 0;
  std::uint64_t staged_ops = 0;

  /// Checkpoint bookkeeping. Excluded from trace_hash like the wall-clock
  /// gauges: whether a run was observed, checkpointed or resumed must not
  /// change its identity (that neutrality is what the checkpoint tests
  /// assert).
  std::uint64_t checkpoints_written = 0;
  /// Index of the checkpoint this run resumed from (-1 = fresh run).
  std::int64_t resumed_from = -1;

  /// FNV-1a over every deterministic field above plus the raw latency
  /// sample stream: the one-number replay fingerprint the sharded-engine
  /// tests compare across worker counts (hash(jobs=1) == hash(jobs=K)).
  std::uint64_t trace_hash = 0;
};

/// A live experiment, steppable in simulated-time segments — the substrate
/// run_experiment drives and the checkpoint/control planes hook into.
/// Construction wires the full run (committee, fabric, validators, fault
/// schedule, adversaries, load) exactly as run_experiment always has;
/// advance_to() executes the engine up to a boundary; finish() collects the
/// result. Splitting a run into segments is trace-neutral: repeated
/// run_until(t_k) executes the identical (time, seq) event sequence as one
/// run_until(duration) (asserted by tests/checkpoint_test.cpp).
class ExperimentRun {
 public:
  explicit ExperimentRun(const ExperimentConfig& config);
  ~ExperimentRun();
  ExperimentRun(const ExperimentRun&) = delete;
  ExperimentRun& operator=(const ExperimentRun&) = delete;

  SimTime now() const;
  SimTime duration() const;
  /// True once now() reached duration() or stop() was called.
  bool finished() const;
  /// Run the engine to min(t, duration()); no-op when t <= now().
  void advance_to(SimTime t);
  /// End the run at the current segment boundary (control-plane `stop`).
  void stop();

  /// Serialize the deterministic run state at the current batch boundary:
  /// engine schedule + RNG, fabric matrices/envelopes, every validator's
  /// durable and volatile state, DAG content, adversary directives and
  /// harness metrics. Read-only — capturing must not perturb the trace.
  std::vector<std::uint8_t> serialize_state() const;
  /// serialize_state() plus cut coordinates and progress gauges, packaged
  /// as checkpoint number `index`.
  Checkpoint capture(std::uint32_t index) const;

  /// Control-plane views (harness/control.h): one-line summary, multi-line
  /// gauge dump, and fault injection (`crash|recover|cut|heal|delay|eclipse`
  /// — scheduled as ordinary serial-shard events at now()). inject()
  /// throws std::runtime_error on bad arguments.
  std::string status_line() const;
  std::string gauges_text() const;
  std::string inject(const std::vector<std::string>& args);

  /// Collect the result (call once, after the run finished).
  ExperimentResult finish();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

ExperimentResult run_experiment(const ExperimentConfig& config);

/// Render one result as an aligned table row; `header` prints column names.
std::string result_row(const ExperimentResult& r);
std::string result_header();

}  // namespace hammerhead::harness

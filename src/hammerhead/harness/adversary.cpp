#include "hammerhead/harness/adversary.h"

#include <algorithm>

#include "hammerhead/common/assert.h"

namespace hammerhead::harness {

// --- actions ----------------------------------------------------------------

void AdversaryActions::set_equivocate(ValidatorIndex v, bool on) {
  if (book_.set_equivocate(v, on)) ++stats_.directive_flips;
}

void AdversaryActions::set_withhold_votes_for(ValidatorIndex v,
                                              ValidatorIndex target) {
  if (book_.set_withhold_votes_for(v, target)) ++stats_.directive_flips;
}

void AdversaryActions::eclipse(ValidatorIndex victim, SimTime window) {
  HH_ASSERT(victim < network_.num_nodes() && window > 0);
  std::vector<ValidatorIndex> others;
  others.reserve(network_.num_nodes() - 1);
  for (ValidatorIndex v = 0; v < network_.num_nodes(); ++v)
    if (v != victim) others.push_back(v);
  network_.cut_links({victim}, others, /*symmetric=*/true);
  ++stats_.eclipse_windows;
  net::Network* net = &network_;
  sim_.schedule_at(sim_.now() + window,
                   [net, victim, others = std::move(others)]() {
                     net->restore_links({victim}, others, /*symmetric=*/true);
                   });
}

void AdversaryActions::delay_node(ValidatorIndex node, SimTime extra) {
  HH_ASSERT(node < network_.num_nodes());
  for (ValidatorIndex v = 0; v < network_.num_nodes(); ++v) {
    if (v == node) continue;
    network_.set_link_delay(v, node, extra);
    network_.set_link_delay(node, v, extra);
  }
  ++stats_.delay_retargets;
}

void AdversaryActions::clear_link_delays() { network_.clear_link_delays(); }

SimTime AdversaryActions::delta() const { return network_.config().delta; }

// --- runtime ----------------------------------------------------------------

AdversaryRuntime::AdversaryRuntime(
    sim::Simulator& sim, net::Network& network,
    const std::vector<node::Validator*>& validators,
    const ExperimentConfig& config)
    : sim_(sim),
      network_(network),
      validators_(validators),
      duration_(config.duration),
      // Half the round cadence: a strategy can retarget within a round.
      tick_period_(std::max<SimTime>(millis(1), config.node.min_round_delay / 2)),
      book_(validators.size()) {
  for (node::Validator* v : validators_) book_.attach(*v);
  for (const AdversarySpec& spec : config.adversaries)
    if (spec.make) strategies_.push_back(spec.make());
}

void AdversaryRuntime::start() {
  if (strategies_.empty()) return;
  sim_.schedule_at(sim_.now() + tick_period_, [this]() { tick(); });
}

void AdversaryRuntime::tick() {
  if (sim_.now() >= duration_) return;
  const AdversaryObservation obs = observe();
  AdversaryActions act(sim_, network_, book_, stats_);
  for (auto& strategy : strategies_) strategy->on_tick(obs, act);
  ++stats_.ticks;
  const SimTime next = sim_.now() + tick_period_;
  if (next < duration_) sim_.schedule_at(next, [this]() { tick(); });
}

AdversaryObservation AdversaryRuntime::observe() const {
  AdversaryObservation obs;
  obs.now = sim_.now();
  obs.duration = duration_;
  obs.num_validators = validators_.size();
  const node::Validator* observer = nullptr;
  for (const node::Validator* v : validators_)
    if (!v->crashed()) {
      observer = v;
      break;
    }
  if (observer == nullptr) return obs;  // everyone down: nothing to observe
  obs.frontier = observer->dag().max_round().value_or(0);
  // The next even (anchor) round strictly above the frontier — the round
  // whose leader's certificate honest proposers will wait on next.
  obs.next_anchor_round =
      obs.frontier % 2 == 0 ? obs.frontier + 2 : obs.frontier + 1;
  obs.next_anchor_leader = observer->policy().leader(obs.next_anchor_round);
  obs.committed_anchors = observer->committer().stats().committed_anchors;
  obs.skipped_anchors = observer->committer().stats().skipped_anchors;
  obs.gc_floor = observer->dag().gc_floor();
  return obs;
}

// --- canned strategies ------------------------------------------------------

namespace {

bool contains(const std::vector<ValidatorIndex>& set, ValidatorIndex v) {
  return std::find(set.begin(), set.end(), v) != set.end();
}

class EquivocateStrategy final : public AdversaryStrategy {
 public:
  EquivocateStrategy(std::size_t count, bool anchor_only)
      : count_(count), anchor_only_(anchor_only) {}
  const char* name() const override { return "equivocate"; }
  void on_tick(const AdversaryObservation& obs,
               AdversaryActions& act) override {
    const auto corrupted = node::corrupted_set(obs.num_validators, count_);
    const bool on =
        !anchor_only_ || contains(corrupted, obs.next_anchor_leader);
    for (ValidatorIndex v : corrupted) act.set_equivocate(v, on);
  }

 private:
  std::size_t count_;
  bool anchor_only_;
};

class WithholdVotesStrategy final : public AdversaryStrategy {
 public:
  explicit WithholdVotesStrategy(std::size_t count) : count_(count) {}
  const char* name() const override { return "withhold-votes"; }
  void on_tick(const AdversaryObservation& obs,
               AdversaryActions& act) override {
    const auto corrupted = node::corrupted_set(obs.num_validators, count_);
    // Starve the next honest anchor of support; a corrupted leader keeps
    // its accomplices' votes (withholding there would only help honest
    // nodes evict it).
    const ValidatorIndex target =
        contains(corrupted, obs.next_anchor_leader) ? kInvalidValidator
                                                    : obs.next_anchor_leader;
    for (ValidatorIndex v : corrupted) act.set_withhold_votes_for(v, target);
  }

 private:
  std::size_t count_;
};

class EclipseStrategy final : public AdversaryStrategy {
 public:
  EclipseStrategy(double window_frac, double period_frac,
                  ValidatorIndex fixed_victim)
      : window_frac_(window_frac),
        period_frac_(period_frac),
        fixed_victim_(fixed_victim) {}
  const char* name() const override { return "eclipse"; }
  void on_tick(const AdversaryObservation& obs,
               AdversaryActions& act) override {
    // First window after 1/8 of the run (past warmup, schedule warm).
    if (next_at_ == 0) next_at_ = obs.duration / 8;
    if (obs.now < next_at_) return;
    const ValidatorIndex victim = fixed_victim_ != kInvalidValidator
                                      ? fixed_victim_
                                      : obs.next_anchor_leader;
    const SimTime window = std::max<SimTime>(
        1, static_cast<SimTime>(static_cast<double>(obs.duration) *
                                window_frac_));
    act.eclipse(victim, window);
    next_at_ = obs.now + std::max<SimTime>(
                             window + 1,
                             static_cast<SimTime>(
                                 static_cast<double>(obs.duration) *
                                 period_frac_));
  }

 private:
  double window_frac_;
  double period_frac_;
  ValidatorIndex fixed_victim_;
  SimTime next_at_ = 0;
};

class DelayStrategy final : public AdversaryStrategy {
 public:
  explicit DelayStrategy(double delta_fraction) : fraction_(delta_fraction) {}
  const char* name() const override { return "delay"; }
  void on_tick(const AdversaryObservation& obs,
               AdversaryActions& act) override {
    const ValidatorIndex target = obs.next_anchor_leader;
    if (target == current_target_) return;
    act.clear_link_delays();
    const SimTime extra = std::max<SimTime>(
        1, static_cast<SimTime>(static_cast<double>(act.delta()) *
                                fraction_));
    act.delay_node(target, extra);
    current_target_ = target;
  }

 private:
  double fraction_;
  ValidatorIndex current_target_ = kInvalidValidator;
};

}  // namespace

AdversarySpec adversary_equivocate(std::size_t count,
                                   bool only_when_anchor_corrupt) {
  return AdversarySpec{
      only_when_anchor_corrupt ? "equivocate-anchor" : "equivocate",
      [count, only_when_anchor_corrupt]() -> std::unique_ptr<AdversaryStrategy> {
        return std::make_unique<EquivocateStrategy>(count,
                                                    only_when_anchor_corrupt);
      }};
}

AdversarySpec adversary_withhold_votes(std::size_t count) {
  return AdversarySpec{
      "withhold-votes", [count]() -> std::unique_ptr<AdversaryStrategy> {
        return std::make_unique<WithholdVotesStrategy>(count);
      }};
}

AdversarySpec adversary_eclipse(double window_frac, double period_frac,
                                ValidatorIndex fixed_victim) {
  HH_ASSERT(window_frac > 0 && period_frac > 0);
  return AdversarySpec{
      "eclipse", [window_frac, period_frac,
                  fixed_victim]() -> std::unique_ptr<AdversaryStrategy> {
        return std::make_unique<EclipseStrategy>(window_frac, period_frac,
                                                 fixed_victim);
      }};
}

AdversarySpec adversary_delay(double delta_fraction) {
  HH_ASSERT(delta_fraction > 0 && delta_fraction <= 1.0);
  return AdversarySpec{
      "delay", [delta_fraction]() -> std::unique_ptr<AdversaryStrategy> {
        return std::make_unique<DelayStrategy>(delta_fraction);
      }};
}

FaultScenario scenario_adversary(std::vector<AdversarySpec> adversaries,
                                 std::string name) {
  HH_ASSERT(!adversaries.empty());
  if (name.empty()) {
    for (const AdversarySpec& s : adversaries) {
      if (!name.empty()) name += '+';
      name += s.name;
    }
  }
  return FaultScenario{std::move(name),
                       [specs = std::move(adversaries)](ExperimentConfig& cfg) {
                         for (const AdversarySpec& s : specs)
                           cfg.adversaries.push_back(s);
                       }};
}

void export_adversary_metrics(const AdversaryRuntime& runtime,
                              monitor::MetricsRegistry& registry) {
  const AdversaryStats& s = runtime.stats();
  auto set_gauge = [&](const char* name, double v) {
    registry.gauge(name).set(v);
  };
  set_gauge("hh_adv_strategies", static_cast<double>(runtime.num_strategies()));
  set_gauge("hh_adv_ticks", static_cast<double>(s.ticks));
  set_gauge("hh_adv_actions", static_cast<double>(s.actions()));
  set_gauge("hh_adv_directive_flips", static_cast<double>(s.directive_flips));
  set_gauge("hh_adv_eclipse_windows", static_cast<double>(s.eclipse_windows));
  set_gauge("hh_adv_delay_retargets", static_cast<double>(s.delay_retargets));
  set_gauge("hh_adv_active_directives",
            static_cast<double>(runtime.book().active_count()));
}

}  // namespace hammerhead::harness

#include "hammerhead/harness/sweep.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <mutex>
#include <thread>

#include "hammerhead/common/assert.h"
#include "hammerhead/common/json_writer.h"
#include "hammerhead/crypto/sha256.h"

namespace hammerhead::harness {

std::uint64_t derive_run_seed(std::uint64_t salt, std::uint64_t axis_seed,
                              std::size_t grid_index) {
  // Three mixing rounds decorrelate the axes: cells sharing a salt, a seed
  // or adjacent grid indices still draw unrelated run seeds.
  std::uint64_t x = splitmix64(salt ^ splitmix64(axis_seed));
  return splitmix64(x ^ (0x9E3779B97F4A7C15ULL *
                         (static_cast<std::uint64_t>(grid_index) + 1)));
}

// --- canned scenario library ------------------------------------------------

namespace {

/// The top `count` validator indices (the convention crash-fault injection
/// already uses: highest indices first).
std::vector<ValidatorIndex> top_indices(std::size_t n, std::size_t count) {
  std::vector<ValidatorIndex> out;
  for (std::size_t i = 0; i < count && i < n; ++i)
    out.push_back(static_cast<ValidatorIndex>(n - 1 - i));
  return out;
}

std::size_t minority_size(std::size_t n) {
  return std::max<std::size_t>(1, (n - 1) / 3);
}

FaultScenario make_partition_scenario(std::string name, double from_frac,
                                      double until_frac, bool symmetric) {
  HH_ASSERT(from_frac >= 0 && until_frac > from_frac && until_frac <= 1.0);
  return FaultScenario{
      std::move(name),
      [from_frac, until_frac, symmetric](ExperimentConfig& cfg) {
        PartitionWindow w;
        w.side_a = top_indices(cfg.num_validators,
                               minority_size(cfg.num_validators));
        w.from = static_cast<SimTime>(
            static_cast<double>(cfg.duration) * from_frac);
        w.until = static_cast<SimTime>(
            static_cast<double>(cfg.duration) * until_frac);
        w.symmetric = symmetric;
        cfg.partitions.push_back(std::move(w));
      }};
}

}  // namespace

FaultScenario scenario_faultless() {
  return FaultScenario{"faultless", [](ExperimentConfig&) {}};
}

FaultScenario scenario_crash_faults(double fraction) {
  HH_ASSERT(fraction >= 0 && fraction <= 1.0);
  return FaultScenario{"crash", [fraction](ExperimentConfig& cfg) {
                         const auto f_max = (cfg.num_validators - 1) / 3;
                         cfg.faults = std::min<std::size_t>(
                             f_max, static_cast<std::size_t>(
                                        std::lround(fraction * f_max)));
                       }};
}

FaultScenario scenario_partition(double from_frac, double until_frac) {
  return make_partition_scenario("partition", from_frac, until_frac,
                                 /*symmetric=*/true);
}

FaultScenario scenario_partition_asymmetric(double from_frac,
                                            double until_frac) {
  return make_partition_scenario("partition-asym", from_frac, until_frac,
                                 /*symmetric=*/false);
}

FaultScenario scenario_churn(std::size_t nodes) {
  HH_ASSERT(nodes >= 1);
  return FaultScenario{"churn", [nodes](ExperimentConfig& cfg) {
                         ChurnSpec churn;
                         churn.nodes = top_indices(
                             cfg.num_validators,
                             std::min(nodes,
                                      minority_size(cfg.num_validators)));
                         churn.start = cfg.duration / 5;
                         churn.period = cfg.duration / 4;
                         churn.downtime = churn.period * 2 / 5;
                         cfg.churn.push_back(std::move(churn));
                       }};
}

FaultScenario scenario_slow_validators(double factor, double from_frac,
                                       double to_frac) {
  HH_ASSERT(factor >= 1.0);
  HH_ASSERT(from_frac >= 0 && to_frac > from_frac && to_frac <= 1.0);
  return FaultScenario{"slow", [factor, from_frac, to_frac](
                                   ExperimentConfig& cfg) {
                         SlowWindow w;
                         w.nodes = top_indices(
                             cfg.num_validators,
                             minority_size(cfg.num_validators));
                         w.factor = factor;
                         w.from = static_cast<SimTime>(
                             static_cast<double>(cfg.duration) * from_frac);
                         w.to = static_cast<SimTime>(
                             static_cast<double>(cfg.duration) * to_frac);
                         cfg.slow_windows.push_back(std::move(w));
                       }};
}

FaultScenario scenario_churn_deep() {
  return FaultScenario{"churn-deep", [](ExperimentConfig& cfg) {
                         // Shrink the GC window, speed the round cadence
                         // and hold the node down for half the run: the
                         // live committee advances far past the horizon,
                         // so incremental fetch cannot reconnect and
                         // restart() must state-sync.
                         cfg.node.gc_depth = 5;
                         cfg.node.min_round_delay = millis(100);
                         cfg.node.leader_timeout = millis(1'000);
                         ChurnSpec churn;
                         churn.nodes =
                             top_indices(cfg.num_validators, 1);
                         churn.start = cfg.duration / 8;
                         churn.period = cfg.duration;
                         churn.downtime = cfg.duration / 2;
                         churn.cycles = 1;
                         cfg.churn.push_back(std::move(churn));
                       }};
}

// --- expansion --------------------------------------------------------------

std::vector<SweepCell> expand_sweep(const SweepSpec& spec) {
  const std::vector<PolicyKind> policies =
      spec.policies.empty() ? std::vector<PolicyKind>{spec.base.policy}
                            : spec.policies;
  const std::vector<std::size_t> sizes =
      spec.committee_sizes.empty()
          ? std::vector<std::size_t>{spec.base.num_validators}
          : spec.committee_sizes;
  const std::vector<std::uint64_t> seeds =
      spec.seeds.empty() ? std::vector<std::uint64_t>{spec.base.seed}
                         : spec.seeds;
  const std::vector<FaultScenario> scenarios =
      spec.scenarios.empty()
          ? std::vector<FaultScenario>{scenario_faultless()}
          : spec.scenarios;
  // Empty adversary axis = one honest sentinel: the grid enumerates (and
  // derives seeds) exactly as it did before the axis existed.
  const std::vector<AdversarySpec> adversaries =
      spec.adversaries.empty() ? std::vector<AdversarySpec>{AdversarySpec{}}
                               : spec.adversaries;

  std::vector<SweepCell> cells;
  cells.reserve(policies.size() * sizes.size() * scenarios.size() *
                    adversaries.size() * seeds.size() +
                spec.extra.size());
  std::size_t index = 0;
  for (PolicyKind policy : policies) {
    for (std::size_t n : sizes) {
      for (const FaultScenario& scenario : scenarios) {
        for (const AdversarySpec& adversary : adversaries) {
          for (std::uint64_t axis_seed : seeds) {
            SweepCell cell;
            cell.grid_index = index;
            cell.policy = policy_name(policy);
            cell.scenario = scenario.name;
            cell.adversary = adversary.name;
            cell.num_validators = n;
            cell.axis_seed = axis_seed;
            cell.label = "policy=" + cell.policy + "/n=" + std::to_string(n) +
                         "/fault=" + scenario.name;
            if (!adversary.name.empty()) cell.label += "/adv=" + adversary.name;
            cell.label += "/seed=" + std::to_string(axis_seed);
            cell.config = spec.base;
            cell.config.policy = policy;
            cell.config.num_validators = n;
            cell.config.seed =
                spec.derive_seeds
                    ? derive_run_seed(spec.seed_salt, axis_seed, index)
                    : axis_seed;
            if (scenario.apply) scenario.apply(cell.config);
            if (adversary.make) cell.config.adversaries.push_back(adversary);
            // The filter drops cells AFTER the seed derivation consumed this
            // grid index, so kept cells run the exact seeds the full grid
            // would (quick-mode subsets stay comparable with full mode).
            if (!spec.cell_filter || spec.cell_filter(cell))
              cells.push_back(std::move(cell));
            ++index;
          }
        }
      }
    }
  }
  for (const auto& [name, config] : spec.extra) {
    SweepCell cell;
    cell.grid_index = index++;
    cell.label = "extra/" + name;
    cell.policy = config.custom_policy ? "custom" : policy_name(config.policy);
    cell.scenario = "custom";
    cell.num_validators = config.num_validators;
    cell.axis_seed = config.seed;  // explicit configs keep their own seed
    cell.config = config;
    cells.push_back(std::move(cell));
  }
  return cells;
}

// --- execution --------------------------------------------------------------

SweepResult run_sweep(const SweepSpec& spec, const SweepOptions& options) {
  SweepResult sweep;
  sweep.name = spec.name;
  sweep.cells = expand_sweep(spec);
  sweep.results.resize(sweep.cells.size());
  if (sweep.cells.empty()) return sweep;

  std::size_t jobs =
      options.jobs != 0 ? options.jobs
                        : std::max<std::size_t>(
                              1, std::thread::hardware_concurrency());
  jobs = std::min(jobs, sweep.cells.size());
  sweep.jobs = jobs;

  // Work-stealing over an atomic cursor: cell i's result is a pure function
  // of cells[i].config (each run owns its Simulator, committee and stores),
  // so which worker claims which cell cannot change any per-cell output.
  std::atomic<std::size_t> cursor{0};
  std::mutex report_mutex;
  auto worker = [&]() {
    for (;;) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= sweep.cells.size()) return;
      // Contain per-cell failures: an invariant violation in one config must
      // not std::terminate the pool and discard every finished result.
      try {
        sweep.results[i] = run_experiment(sweep.cells[i].config);
      } catch (const std::exception& e) {
        std::lock_guard<std::mutex> lock(report_mutex);
        sweep.errors.push_back(sweep.cells[i].label + ": " + e.what());
        sweep.failed_cells.push_back(i);
        continue;
      }
      if (options.on_cell) {
        std::lock_guard<std::mutex> lock(report_mutex);
        options.on_cell(sweep.cells[i], sweep.results[i]);
      }
    }
  };

  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  pool.reserve(jobs - 1);
  for (std::size_t t = 0; t + 1 < jobs; ++t) pool.emplace_back(worker);
  worker();  // the driver thread is worker #0
  for (auto& t : pool) t.join();
  sweep.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  // Cross-seed aggregation: cells sharing a label minus the seed axis form
  // one group (seed is the innermost axis, so groups are contiguous).
  // Failed cells are excluded — averaging their all-zero default results
  // would poison the agg rows the CI regression gate diffs; a group with no
  // successful run is dropped entirely.
  std::vector<bool> failed(sweep.cells.size(), false);
  for (std::size_t i : sweep.failed_cells) failed[i] = true;
  auto group_key = [](const std::string& label) {
    const std::size_t pos = label.rfind("/seed=");
    return pos == std::string::npos ? label : label.substr(0, pos);
  };
  for (std::size_t i = 0; i < sweep.cells.size();) {
    const std::string key = group_key(sweep.cells[i].label);
    std::size_t end = i;
    while (end < sweep.cells.size() &&
           group_key(sweep.cells[end].label) == key)
      ++end;
    SweepGroupStats g;
    g.label = key;
    double sum = 0, sum_sq = 0, p95_sum = 0, p95_sum_sq = 0;
    double anchors_sum = 0, anchors_sum_sq = 0;
    for (std::size_t j = i; j < end; ++j) {
      if (failed[j]) continue;
      const ExperimentResult& r = sweep.results[j];
      if (g.runs++ == 0) {
        g.duration_s = r.duration_s;
        g.offered_load_tps = r.offered_load_tps;
      }
      sum += r.throughput_tps;
      sum_sq += r.throughput_tps * r.throughput_tps;
      p95_sum += r.p95_latency_s;
      p95_sum_sq += r.p95_latency_s * r.p95_latency_s;
      const double anchors = static_cast<double>(r.committed_anchors);
      anchors_sum += anchors;
      anchors_sum_sq += anchors * anchors;
      g.avg_latency_mean += r.avg_latency_s;
      g.p50_mean += r.p50_latency_s;
      g.p99_mean += r.p99_latency_s;
      g.skipped_anchors_mean += static_cast<double>(r.skipped_anchors);
    }
    if (g.runs == 0) {
      i = end;
      continue;
    }
    const double count = static_cast<double>(g.runs);
    g.throughput_mean = sum / count;
    g.avg_latency_mean /= count;
    g.p50_mean /= count;
    g.p95_mean = p95_sum / count;
    g.p99_mean /= count;
    g.committed_anchors_mean = anchors_sum / count;
    g.skipped_anchors_mean /= count;
    if (g.runs >= 2) {
      const double var =
          std::max(0.0, (sum_sq - sum * sum / count) / (count - 1));
      g.throughput_stddev = std::sqrt(var);
      const double p95_var = std::max(
          0.0, (p95_sum_sq - p95_sum * p95_sum / count) / (count - 1));
      g.p95_stddev = std::sqrt(p95_var);
      const double anchors_var = std::max(
          0.0, (anchors_sum_sq - anchors_sum * anchors_sum / count) /
                   (count - 1));
      g.committed_anchors_stddev = std::sqrt(anchors_var);
    }
    sweep.groups.push_back(std::move(g));
    i = end;
  }

  // Worst-case scoring per adversary-axis value: pool EVERY successful cell
  // that ran under a named adversary (across policies, sizes, scenarios and
  // seeds) and keep the worst commit latency / liveness the adversary
  // achieved anywhere in the grid. Honest-sentinel cells (empty name) carry
  // no row: their story is told by the regular agg/ groups.
  std::vector<std::string> adv_order;
  for (const SweepCell& cell : sweep.cells)
    if (!cell.adversary.empty() &&
        std::find(adv_order.begin(), adv_order.end(), cell.adversary) ==
            adv_order.end())
      adv_order.push_back(cell.adversary);
  for (const std::string& adv : adv_order) {
    AdversaryWorstCase w;
    w.label = "adv/" + adv;
    double p95_sum = 0, p95_sum_sq = 0;
    for (std::size_t j = 0; j < sweep.cells.size(); ++j) {
      if (failed[j] || sweep.cells[j].adversary != adv) continue;
      const ExperimentResult& r = sweep.results[j];
      if (w.runs++ == 0) {
        w.duration_s = r.duration_s;
        w.offered_load_tps = r.offered_load_tps;
        w.committed_anchors_min = static_cast<double>(r.committed_anchors);
      }
      w.worst_p95_latency_s = std::max(w.worst_p95_latency_s, r.p95_latency_s);
      w.committed_anchors_min = std::min(
          w.committed_anchors_min, static_cast<double>(r.committed_anchors));
      w.conflicting_certs += static_cast<double>(r.conflicting_certs);
      p95_sum += r.p95_latency_s;
      p95_sum_sq += r.p95_latency_s * r.p95_latency_s;
    }
    if (w.runs == 0) continue;
    if (w.runs >= 2) {
      const double count = static_cast<double>(w.runs);
      const double var = std::max(
          0.0, (p95_sum_sq - p95_sum * p95_sum / count) / (count - 1));
      w.worst_p95_stddev = std::sqrt(var);
    }
    sweep.adversary_worst.push_back(std::move(w));
  }
  return sweep;
}

// --- serialization ----------------------------------------------------------

using hammerhead::json_escape;
using hammerhead::write_json_metric;

std::string write_sweep_json(const SweepResult& sweep,
                             const std::string& dir) {
  const std::string path = dir + "/BENCH_sweep_" + sweep.name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  HH_ASSERT_MSG(f != nullptr, "cannot write " << path);
  std::fprintf(f,
               "{\"bench\": \"sweep_%s\", \"jobs\": %zu, \"cells\": %zu, "
               "\"failed_cells\": %zu, \"wall_seconds\": %.6f, \"rows\": [",
               json_escape(sweep.name).c_str(), sweep.jobs,
               sweep.cells.size(), sweep.failed_cells.size(),
               sweep.wall_seconds);
  std::vector<bool> failed(sweep.cells.size(), false);
  for (std::size_t i : sweep.failed_cells) failed[i] = true;
  bool first_row = true;
  auto begin_row = [&](const std::string& label) {
    std::fprintf(f, "%s\n  {\"label\": \"%s\", \"metrics\": {",
                 first_row ? "" : ",", json_escape(label).c_str());
    first_row = false;
  };
  for (std::size_t i = 0; i < sweep.cells.size(); ++i) {
    if (failed[i]) continue;  // no row: an all-zero result is not data
    const SweepCell& cell = sweep.cells[i];
    const ExperimentResult& r = sweep.results[i];
    begin_row(cell.label);
    write_json_metric(f, true, "throughput_tps", r.throughput_tps);
    write_json_metric(f, false, "avg_latency_s", r.avg_latency_s);
    write_json_metric(f, false, "p50_latency_s", r.p50_latency_s);
    write_json_metric(f, false, "p95_latency_s", r.p95_latency_s);
    write_json_metric(f, false, "p99_latency_s", r.p99_latency_s);
    write_json_metric(f, false, "committed", static_cast<double>(r.committed));
    write_json_metric(f, false, "committed_anchors",
                 static_cast<double>(r.committed_anchors));
    write_json_metric(f, false, "skipped_anchors",
                 static_cast<double>(r.skipped_anchors));
    write_json_metric(f, false, "restarts", static_cast<double>(r.restarts));
    write_json_metric(f, false, "state_syncs_completed",
                 static_cast<double>(r.state_syncs_completed));
    write_json_metric(f, false, "messages_held",
                 static_cast<double>(r.messages_held));
    write_json_metric(f, false, "sim_events",
                 static_cast<double>(r.sim_events));
    write_json_metric(f, false, "dag_bytes_per_vertex", r.dag_bytes_per_vertex);
    write_json_metric(f, false, "duration_s", r.duration_s);
    write_json_metric(f, false, "offered_load_tps", r.offered_load_tps);
    write_json_metric(f, false, "host_cores",
                 static_cast<double>(std::thread::hardware_concurrency()));
    write_json_metric(f, false, "host_sha",
                 static_cast<double>(crypto::sha::max_level()));
    // Adversary counters only on cells that ran one: rows of adversary-free
    // sweeps stay byte-identical to pre-adversary baselines.
    if (!cell.config.adversaries.empty()) {
      write_json_metric(f, false, "equivocations_sent",
                   static_cast<double>(r.equivocations_sent));
      write_json_metric(f, false, "votes_withheld",
                   static_cast<double>(r.votes_withheld));
      write_json_metric(f, false, "conflicting_certs",
                   static_cast<double>(r.conflicting_certs));
      write_json_metric(f, false, "adversary_actions",
                   static_cast<double>(r.adversary_actions));
    }
    // Exact 64-bit value, bypassing the double-valued metric writer.
    std::fprintf(f, ", \"run_seed\": %llu",
                 static_cast<unsigned long long>(cell.config.seed));
    std::fprintf(f, "}}");
  }
  for (const SweepGroupStats& g : sweep.groups) {
    begin_row("agg/" + g.label);
    write_json_metric(f, true, "runs", static_cast<double>(g.runs));
    write_json_metric(f, false, "duration_s", g.duration_s);
    write_json_metric(f, false, "offered_load_tps", g.offered_load_tps);
    write_json_metric(f, false, "throughput_mean", g.throughput_mean);
    write_json_metric(f, false, "throughput_stddev", g.throughput_stddev);
    write_json_metric(f, false, "avg_latency_mean", g.avg_latency_mean);
    write_json_metric(f, false, "p50_mean", g.p50_mean);
    write_json_metric(f, false, "p95_mean", g.p95_mean);
    write_json_metric(f, false, "p95_stddev", g.p95_stddev);
    write_json_metric(f, false, "p99_mean", g.p99_mean);
    write_json_metric(f, false, "committed_anchors_mean",
                 g.committed_anchors_mean);
    write_json_metric(f, false, "committed_anchors_stddev",
                 g.committed_anchors_stddev);
    write_json_metric(f, false, "skipped_anchors_mean", g.skipped_anchors_mean);
    std::fprintf(f, "}}");
  }
  for (const AdversaryWorstCase& w : sweep.adversary_worst) {
    begin_row(w.label);
    write_json_metric(f, true, "runs", static_cast<double>(w.runs));
    write_json_metric(f, false, "duration_s", w.duration_s);
    write_json_metric(f, false, "offered_load_tps", w.offered_load_tps);
    write_json_metric(f, false, "worst_p95_latency_s", w.worst_p95_latency_s);
    write_json_metric(f, false, "worst_p95_stddev", w.worst_p95_stddev);
    write_json_metric(f, false, "committed_anchors_min",
                 w.committed_anchors_min);
    write_json_metric(f, false, "conflicting_certs", w.conflicting_certs);
    std::fprintf(f, "}}");
  }
  std::fprintf(f, "\n]}\n");
  std::fclose(f);
  return path;
}

std::string deterministic_signature(const ExperimentResult& r) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "%s|%.17g|%.17g|%llu|%llu|%.17g|%.17g|%.17g|%.17g|%.17g|%.17g|"
      "%llu|%llu|%llu|%llu|%lld|%llu|%llu|%llu|%llu",
      r.policy.c_str(), r.duration_s, r.offered_load_tps,
      static_cast<unsigned long long>(r.submitted),
      static_cast<unsigned long long>(r.committed), r.throughput_tps,
      r.avg_latency_s, r.p50_latency_s, r.p95_latency_s, r.p99_latency_s,
      r.stdev_latency_s, static_cast<unsigned long long>(r.committed_anchors),
      static_cast<unsigned long long>(r.skipped_anchors),
      static_cast<unsigned long long>(r.schedule_changes),
      static_cast<unsigned long long>(r.leader_timeouts),
      static_cast<long long>(r.last_anchor_round),
      static_cast<unsigned long long>(r.restarts),
      static_cast<unsigned long long>(r.state_syncs_completed),
      static_cast<unsigned long long>(r.messages_held),
      static_cast<unsigned long long>(r.sim_events));
  std::string sig = buf;
  // Adversary counters: always appended (all-zero without an adversary), so
  // a directive that silently fired in an honest run would flip the
  // signature rather than hide.
  char adv[160];
  std::snprintf(adv, sizeof(adv), "|adv=%llu,%llu,%llu,%llu,%llu,%llu",
                static_cast<unsigned long long>(r.equivocations_sent),
                static_cast<unsigned long long>(r.equivocations_observed),
                static_cast<unsigned long long>(r.votes_withheld),
                static_cast<unsigned long long>(r.conflicting_certs),
                static_cast<unsigned long long>(r.adversary_ticks),
                static_cast<unsigned long long>(r.adversary_actions));
  sig += adv;
  sig += "|trace=";
  sig += std::to_string(r.trace_hash);
  sig += "|authors=";
  for (std::uint64_t a : r.anchors_by_author) {
    sig += std::to_string(a);
    sig += ',';
  }
  return sig;
}

}  // namespace hammerhead::harness

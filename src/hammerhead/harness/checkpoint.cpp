#include "hammerhead/harness/checkpoint.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <utility>

#include "hammerhead/harness/experiment.h"

namespace hammerhead::harness {

namespace fs = std::filesystem;

std::uint64_t fnv1a_bytes(std::span<const std::uint8_t> data) {
  std::uint64_t hash = 1469598103934665603ull;
  for (const std::uint8_t b : data) {
    hash ^= b;
    hash *= 1099511628211ull;
  }
  return hash;
}

namespace {

void mix_double(ByteWriter& w, double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  w.u64(bits);
}

}  // namespace

std::uint64_t config_fingerprint(const ExperimentConfig& c) {
  ByteWriter w;
  w.u64(c.num_validators);
  w.u64(c.seed);
  w.u64(c.stakes.size());
  for (const Stake s : c.stakes) w.u64(s);
  w.u32(static_cast<std::uint32_t>(c.policy));
  w.u32(static_cast<std::uint32_t>(c.hh.cadence.kind));
  w.u64(c.hh.cadence.value);
  mix_double(w, c.hh.exclude_fraction);
  w.u32(c.static_leader);
  // The custom-policy factory body is opaque; only its presence is mixed.
  // Resuming a custom-policy run with a different factory is undetectable
  // here and diverges at the replay-cut byte comparison instead.
  w.u8(c.custom_policy ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(c.latency));
  w.i64(c.uniform_latency_min);
  w.i64(c.uniform_latency_max);
  w.u64(c.latency_matrix.sites());
  for (const auto& row : c.latency_matrix.one_way_us)
    for (const SimTime t : row) w.i64(t);
  w.i64(c.net.gst);
  w.i64(c.net.delta);
  w.i64(c.net.max_adversarial_delay);
  mix_double(w, c.net.bandwidth_bytes_per_us);
  w.u8(c.net.unlimited_bandwidth ? 1 : 0);
  w.i64(c.net.delivery_slot);
  w.u32(c.net.fanout_degree);
  w.u64(c.node.max_batch_txs);
  w.i64(c.node.leader_timeout);
  w.i64(c.node.min_round_delay);
  w.u32(static_cast<std::uint32_t>(c.node.commit_rule));
  w.u32(static_cast<std::uint32_t>(c.node.trigger_scan));
  w.u8(c.node.index.enabled ? 1 : 0);
  w.u64(c.node.index.ancestor_window);
  w.u64(c.node.index.cold_round_lag);
  w.u64(c.node.gc_depth);
  w.u8(c.node.gc_enabled ? 1 : 0);
  w.i64(c.node.cost_verify_header);
  w.i64(c.node.cost_verify_vote);
  w.i64(c.node.cost_verify_cert);
  w.i64(c.node.cost_verify_cert_per_signer);
  w.i64(c.node.cost_sign);
  w.i64(c.node.cost_store_write);
  w.i64(c.node.cost_per_tx_include);
  w.i64(c.node.cost_per_tx_verify);
  w.i64(c.node.cost_per_tx_execute);
  w.u8(c.node.model_cpu ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(c.node.behavior));
  w.i64(c.node.slow_proposer_delay);
  w.u64(c.node.max_fetch_response_certs);
  w.i64(c.node.fetch_retry_delay);
  w.i64(c.node.dispatch_slot);
  w.i64(c.duration);
  w.i64(c.warmup);
  mix_double(w, c.load_tps);
  w.i64(c.client_latency);
  w.u64(c.faults);
  w.i64(c.crash_time);
  w.u64(c.crashes.size());
  for (const CrashEvent& ev : c.crashes) {
    w.u32(ev.node);
    w.i64(ev.at);
    w.i64(ev.recover_at.value_or(-1));
  }
  w.u64(c.slow_windows.size());
  for (const SlowWindow& sw : c.slow_windows) {
    w.u64(sw.nodes.size());
    for (const ValidatorIndex v : sw.nodes) w.u32(v);
    mix_double(w, sw.factor);
    w.i64(sw.from);
    w.i64(sw.to);
  }
  w.u64(c.partitions.size());
  for (const PartitionWindow& p : c.partitions) {
    w.u64(p.side_a.size());
    for (const ValidatorIndex v : p.side_a) w.u32(v);
    w.u64(p.side_b.size());
    for (const ValidatorIndex v : p.side_b) w.u32(v);
    w.i64(p.from);
    w.i64(p.until);
    w.u8(p.symmetric ? 1 : 0);
  }
  w.u64(c.churn.size());
  for (const ChurnSpec& ch : c.churn) {
    w.u64(ch.nodes.size());
    for (const ValidatorIndex v : ch.nodes) w.u32(v);
    w.i64(ch.start);
    w.i64(ch.period);
    w.i64(ch.downtime);
    w.i64(ch.stagger);
    w.u64(ch.cycles);
  }
  w.u64(c.behaviors.size());
  for (const auto& [v, b] : c.behaviors) {
    w.u32(v);
    w.u32(static_cast<std::uint32_t>(b));
  }
  // Adversary strategies are identified by name (the factory body is
  // opaque, like custom_policy); the canned library keys behaviour off the
  // spec, so equal names replay equal strategies.
  w.u64(c.adversaries.size());
  for (const AdversarySpec& spec : c.adversaries) {
    w.str(spec.name);
    w.u8(spec.make ? 1 : 0);
  }
  w.u8(c.clients_avoid_crashed ? 1 : 0);
  w.i64(c.exec_slot);
  // intra_jobs deliberately excluded: the worker count never changes the
  // trace (PR 5 contract), so a checkpoint taken at jobs=1 resumes at any
  // jobs=K. Checkpoint/control plumbing is likewise excluded — whether a
  // run was observed must not change its identity.
  return fnv1a_bytes(w.view());
}

std::vector<std::uint8_t> encode_checkpoint(const Checkpoint& c) {
  ByteWriter w;
  w.u32(kCheckpointMagic);
  w.u32(c.version);
  w.u64(c.config_fingerprint);
  w.u32(c.index);
  w.i64(c.cut_time);
  w.u64(c.executed_events);
  w.u64(c.seq_counter);
  w.u64(c.submitted);
  w.u64(c.committed);
  w.u64(c.committed_anchors);
  w.u64(c.conflicting_certs);
  w.u64(c.latency_sample_hash);
  w.bytes(c.state);
  w.u64(c.state_hash);
  w.u64(fnv1a_bytes(w.view()));
  return w.data();
}

Checkpoint decode_checkpoint(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < sizeof(std::uint64_t))
    throw SerdeError("checkpoint: file too short");
  // Whole-file checksum first: everything before the trailing u64.
  const std::span<const std::uint8_t> body =
      bytes.first(bytes.size() - sizeof(std::uint64_t));
  ByteReader tail(bytes.subspan(body.size()));
  if (tail.u64() != fnv1a_bytes(body))
    throw SerdeError("checkpoint: file checksum mismatch (torn write?)");

  ByteReader r(body);
  if (r.u32() != kCheckpointMagic)
    throw SerdeError("checkpoint: bad magic (not a checkpoint file)");
  Checkpoint c;
  c.version = r.u32();
  if (c.version != kCheckpointVersion)
    throw SerdeError("checkpoint: unsupported version " +
                     std::to_string(c.version));
  c.config_fingerprint = r.u64();
  c.index = r.u32();
  c.cut_time = static_cast<SimTime>(r.i64());
  c.executed_events = r.u64();
  c.seq_counter = r.u64();
  c.submitted = r.u64();
  c.committed = r.u64();
  c.committed_anchors = r.u64();
  c.conflicting_certs = r.u64();
  c.latency_sample_hash = r.u64();
  const std::span<const std::uint8_t> state = r.bytes();
  c.state.assign(state.begin(), state.end());
  c.state_hash = r.u64();
  if (!r.exhausted())
    throw SerdeError("checkpoint: trailing garbage after state hash");
  if (c.state_hash != fnv1a_bytes(c.state))
    throw SerdeError("checkpoint: state blob checksum mismatch");
  return c;
}

std::string checkpoint_path(const std::string& dir, std::uint32_t index) {
  char name[32];
  std::snprintf(name, sizeof(name), "ckpt_%06u", index);
  return (fs::path(dir) / (std::string(name) + kCheckpointExtension))
      .string();
}

namespace {

void write_file_atomic(const std::string& path,
                       std::span<const std::uint8_t> data) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr)
    throw std::runtime_error("checkpoint: cannot open " + tmp);
  const std::size_t written = std::fwrite(data.data(), 1, data.size(), f);
  // Flush + fsync before the rename: the rename must never become visible
  // ahead of the data (a SIGKILL between the two would otherwise leave a
  // validly named file with torn contents).
  const bool ok = written == data.size() && std::fflush(f) == 0 &&
                  ::fsync(fileno(f)) == 0;
  std::fclose(f);
  if (!ok) {
    std::remove(tmp.c_str());
    throw std::runtime_error("checkpoint: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("checkpoint: rename to " + path + " failed");
  }
}

}  // namespace

void write_checkpoint_file(const std::string& path, const Checkpoint& c) {
  fs::create_directories(fs::path(path).parent_path());
  const std::vector<std::uint8_t> encoded = encode_checkpoint(c);
  write_file_atomic(path, encoded);
  // Progress sidecar for tools/soak.py: gauges only, human-greppable.
  const std::string side = path + ".json";
  std::FILE* f = std::fopen((side + ".tmp").c_str(), "w");
  if (f == nullptr) return;  // sidecar is best-effort; the binary is durable
  std::fprintf(f,
               "{\"index\": %u, \"cut_time_us\": %lld, \"executed_events\": "
               "%llu,\n \"submitted\": %llu, \"committed\": %llu, "
               "\"committed_anchors\": %llu, \"conflicting_certs\": %llu}\n",
               c.index, static_cast<long long>(c.cut_time),
               static_cast<unsigned long long>(c.executed_events),
               static_cast<unsigned long long>(c.submitted),
               static_cast<unsigned long long>(c.committed),
               static_cast<unsigned long long>(c.committed_anchors),
               static_cast<unsigned long long>(c.conflicting_certs));
  std::fclose(f);
  std::rename((side + ".tmp").c_str(), side.c_str());
}

std::optional<Checkpoint> read_checkpoint_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  std::vector<std::uint8_t> data;
  std::uint8_t buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
    data.insert(data.end(), buf, buf + n);
  std::fclose(f);
  try {
    return decode_checkpoint(data);
  } catch (const SerdeError&) {
    return std::nullopt;
  }
}

std::optional<FoundCheckpoint> find_latest_checkpoint(const std::string& dir) {
  std::error_code ec;
  std::vector<std::pair<std::uint32_t, std::string>> candidates;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    unsigned index = 0;
    if (std::sscanf(name.c_str(), "ckpt_%06u.hhcp", &index) != 1) continue;
    if (name != fs::path(checkpoint_path(dir, index)).filename().string())
      continue;
    candidates.emplace_back(index, entry.path().string());
  }
  // Newest first; a torn newest file (SIGKILL mid-write races the atomic
  // rename only if the tmp survived — decode still rejects it) falls back
  // to the next index down.
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (const auto& [index, path] : candidates) {
    if (std::optional<Checkpoint> c = read_checkpoint_file(path))
      return FoundCheckpoint{path, std::move(*c)};
  }
  return std::nullopt;
}

void prune_checkpoints(const std::string& dir, std::uint32_t newest_index,
                       std::size_t keep) {
  if (keep == 0 || newest_index + 1 <= keep) return;
  const std::uint32_t cutoff =
      newest_index + 1 - static_cast<std::uint32_t>(keep);
  for (std::uint32_t i = 0; i < cutoff; ++i) {
    const std::string path = checkpoint_path(dir, i);
    std::remove(path.c_str());
    std::remove((path + ".json").c_str());
  }
}

}  // namespace hammerhead::harness

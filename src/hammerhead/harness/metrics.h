// Measurement utilities: latency histogram and the per-run metrics collector.
//
// Latency is defined as in the paper (Section 5): "the time elapsed from when
// the client submits the transaction to when it receives confirmation of the
// transaction's finality"; throughput is "the number of distinct transactions
// over the entire duration of the run". Each transaction is counted once, at
// the validator it was submitted to.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "hammerhead/common/types.h"
#include "hammerhead/consensus/committer.h"

namespace hammerhead::harness {

/// Incremental FNV-1a over 64-bit words, byte by byte — the one mixer
/// behind every replay fingerprint (ExperimentResult::trace_hash and
/// LatencyHistogram::sample_hash feed the same stream shape, so they must
/// never diverge).
struct Fnv1a {
  std::uint64_t hash = 1469598103934665603ull;
  void mix(std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      hash ^= (v >> (8 * b)) & 0xff;
      hash *= 1099511628211ull;
    }
  }
};

class LatencyHistogram {
 public:
  void record(SimTime latency) {
    samples_.push_back(latency);
    sorted_ = false;
  }

  std::size_t count() const { return samples_.size(); }
  double mean_s() const;
  double stdev_s() const;
  /// p in [0, 100].
  double percentile_s(double p) const;
  double max_s() const;
  /// FNV-1a over the raw integer sample stream in its current storage
  /// order (insertion order until the first percentile query sorts it) —
  /// the replay fingerprint the sharded-engine determinism tests compare.
  std::uint64_t sample_hash() const;

 private:
  void ensure_sorted() const;
  mutable std::vector<SimTime> samples_;
  mutable bool sorted_ = true;
};

/// Collects transaction latencies across the committee. Transactions
/// submitted before `measure_from` are tracked for protocol correctness but
/// excluded from the reported statistics (warm-up).
class MetricsCollector {
 public:
  explicit MetricsCollector(SimTime measure_from = 0)
      : measure_from_(measure_from) {}

  /// The load generator registers a submission.
  void on_tx_submitted(const dag::Transaction& tx);

  /// A validator reports a committed sub-DAG; the collector records latency
  /// for transactions submitted to that validator (once each).
  void on_commit(ValidatorIndex reporter, const consensus::CommittedSubDag& sd,
                 SimTime client_return_latency);

  std::uint64_t submitted() const { return submitted_; }
  std::uint64_t committed() const { return committed_; }
  std::uint64_t measured_committed() const {
    return static_cast<std::uint64_t>(latency_.count());
  }
  const LatencyHistogram& latency() const { return latency_; }

 private:
  SimTime measure_from_;
  std::uint64_t submitted_ = 0;
  std::uint64_t committed_ = 0;
  std::unordered_map<TxId, SimTime> in_flight_;  // id -> submit time
  LatencyHistogram latency_;
};

}  // namespace hammerhead::harness

// Live control plane: a line-protocol UNIX-domain socket for poking a
// running experiment — inspect progress gauges, trigger a checkpoint, inject
// a fault scenario, or stop the run early.
//
// Concurrency model: the server is strictly passive. run_experiment polls it
// between engine segments (a batch boundary on the driver thread, the same
// serial context every fault-injection event runs in), so command handlers
// mutate sim state with no locking and no racing wave in flight. Nothing is
// read from the socket while the engine is inside run_until.
//
// Protocol: newline-terminated ASCII commands, one per line; replies are one
// or more lines terminated by a final "ok" or "err <reason>" line. The
// command table lives in control.cpp (kCommands) and is cross-checked
// against docs/checkpoint.md by tools/check_docs.py in both directions.
//
// Determinism: connecting an operator makes a run wall-clock-dependent by
// nature (commands land at whatever simulated boundary the poll happens to
// hit). A run with a control socket configured but no commands sent is
// byte-identical to one without: polling happens outside the engine and
// touches no simulation state.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace hammerhead::harness {

/// Callbacks from command handlers into the live run; all invoked on the
/// driver thread between engine segments.
struct ControlHooks {
  /// One-line progress summary (`status`).
  std::function<std::string()> status;
  /// Multi-line gauge dump (`gauges`).
  std::function<std::string()> gauges;
  /// Write a checkpoint now; returns its path (`checkpoint`).
  std::function<std::string()> checkpoint;
  /// Apply a fault scenario (`inject ...` arguments after the verb);
  /// returns a description or throws std::runtime_error on bad arguments.
  std::function<std::string(const std::vector<std::string>&)> inject;
  /// End the run at this segment boundary (`stop`).
  std::function<void()> stop;
};

/// The socket server. Binds a UNIX stream socket at `path` (unlinking any
/// stale file), accepts up to kMaxClients concurrent operators, and executes
/// complete lines on poll(). Destruction closes everything and unlinks the
/// socket file.
class ControlServer {
 public:
  static constexpr std::size_t kMaxClients = 8;
  /// Hard cap on a buffered command line; longer input closes the client.
  static constexpr std::size_t kMaxLine = 4096;

  /// Throws std::runtime_error if the socket cannot be bound.
  ControlServer(std::string path, ControlHooks hooks);
  ~ControlServer();
  ControlServer(const ControlServer&) = delete;
  ControlServer& operator=(const ControlServer&) = delete;

  /// Accept pending connections, read available bytes, execute every
  /// complete line, write replies. Never blocks. Returns the number of
  /// commands executed.
  std::size_t poll();

  const std::string& path() const { return path_; }

  /// Handle one already-parsed command line (exposed for tests; poll()
  /// routes socket lines here). Returns the full reply including the
  /// trailing "ok"/"err" line.
  std::string handle_line(const std::string& line);

 private:
  struct Client {
    int fd = -1;
    std::string buf;
  };

  void drop_client(Client& c);

  std::string path_;
  ControlHooks hooks_;
  int listen_fd_ = -1;
  std::vector<Client> clients_;
};

}  // namespace hammerhead::harness

// Deterministic checkpoint/resume: versioned binary snapshots of a running
// experiment, written at sharded-batch boundaries, plus the resume contract
// that makes them trustworthy.
//
// Design — replay-cut snapshots. Live engine state contains raw function
// pointers and std::function closures (engine events, pooled fanout
// TreeStates) that cannot round-trip a file (see docs/checkpoint.md,
// "State audit"). Instead of pretending to serialize them, a checkpoint
// records every piece of *deterministic data* state — the engine's pending
// event schedule as (time, seq, shard, kind) tuples, the RNG stream words,
// the fabric's link-cut/delay matrices and held envelopes, each validator's
// durable tables and volatile protocol position, DAG content across hot and
// cold tiers, committer/reputation snapshots, adversary directive books and
// harness metrics — together with the cut coordinates (sim time, event
// seq). Resume reconstructs the run from the config, re-executes
// deterministically to the cut (bit-exact by the PR 5 contract
// `trace hash(jobs=1) == trace hash(jobs=K)`, which also holds segmented:
// run_until(t_k) then run_until(T) executes the identical event sequence),
// then verifies the recomputed state blob is byte-identical to the snapshot
// before continuing. A divergence — version skew, config drift, corrupted
// file, nondeterminism bug — fails loudly instead of silently forking the
// trace.
//
// File format (all little-endian, via common/serde.h):
//
//   u32 magic 'HHCP' | u32 version | u64 config_fingerprint
//   u32 index | u64 cut_time | u64 executed_events | u64 seq_counter
//   u64 submitted | committed | committed_anchors | conflicting_certs
//   u64 latency_sample_hash
//   bytes state (length-prefixed serialized run state)
//   u64 state_hash (FNV-1a of the state blob)
//   u64 file_checksum (FNV-1a of every byte above)
//
// Writes are atomic (tmp file + rename) so a SIGKILL mid-write can never
// leave a torn file under the final name; readers validate magic, version,
// length and both checksums and throw SerdeError on any mismatch. Each
// checkpoint also writes a `<path>.json` sidecar with the progress gauges so
// tools/soak.py can assert monotone commit progress without decoding the
// binary format.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "hammerhead/common/serde.h"
#include "hammerhead/common/types.h"

namespace hammerhead::harness {

struct ExperimentConfig;  // harness/experiment.h

inline constexpr std::uint32_t kCheckpointMagic = 0x50434848;  // "HHCP"
inline constexpr std::uint32_t kCheckpointVersion = 1;
inline constexpr const char* kCheckpointExtension = ".hhcp";

/// One decoded checkpoint: cut coordinates, progress gauges (inspectable
/// without reconstructing the run) and the full serialized state blob a
/// resumed run must reproduce byte-for-byte at the cut.
struct Checkpoint {
  std::uint32_t version = kCheckpointVersion;
  /// Fingerprint of the generating ExperimentConfig (config_fingerprint()).
  /// Resume refuses a checkpoint whose fingerprint differs from the run
  /// config's — replaying a different config to the cut would silently
  /// diverge. intra_jobs is excluded: worker count never changes the trace.
  std::uint64_t config_fingerprint = 0;
  /// k-th checkpoint of the run (cut_time = (k + 1) * interval).
  std::uint32_t index = 0;
  /// Simulated time of the cut; the engine has fully drained every event
  /// with time < cut_time (batch boundary, never mid-wave).
  SimTime cut_time = 0;
  /// Engine position at the cut: events executed and the next event seq.
  std::uint64_t executed_events = 0;
  std::uint64_t seq_counter = 0;
  /// Progress gauges at the cut, mirrored into the JSON sidecar.
  std::uint64_t submitted = 0;
  std::uint64_t committed = 0;
  std::uint64_t committed_anchors = 0;
  std::uint64_t conflicting_certs = 0;
  std::uint64_t latency_sample_hash = 0;
  /// The serialized run state (ExperimentRun::serialize_state) and its
  /// FNV-1a fingerprint.
  std::vector<std::uint8_t> state;
  std::uint64_t state_hash = 0;
};

/// FNV-1a over a byte span — the checkpoint subsystem's one checksum
/// primitive (same constants as harness::Fnv1a's word mixer).
std::uint64_t fnv1a_bytes(std::span<const std::uint8_t> data);

/// Identity of a config for resume compatibility: FNV-1a over every field
/// that shapes the trace (committee, seeds, policy, latency model, fault
/// schedule, adversaries by name, load). Excludes intra_jobs (worker count
/// is trace-neutral), checkpoint/control plumbing, and the opaque
/// custom_policy factory body (presence is mixed; callers resuming custom-
/// policy runs must supply the same factory).
std::uint64_t config_fingerprint(const ExperimentConfig& config);

/// Encode to the on-disk layout (header, gauges, state, checksums).
std::vector<std::uint8_t> encode_checkpoint(const Checkpoint& c);

/// Decode + validate; throws SerdeError on bad magic, unknown version,
/// truncation, trailing garbage or checksum mismatch.
Checkpoint decode_checkpoint(std::span<const std::uint8_t> bytes);

/// `<dir>/ckpt_<index, zero-padded><.hhcp>`.
std::string checkpoint_path(const std::string& dir, std::uint32_t index);

/// Atomic write: encode into `<path>.tmp`, fsync, rename over `path`, then
/// write the `<path>.json` progress sidecar. Throws std::runtime_error on
/// I/O failure.
void write_checkpoint_file(const std::string& path, const Checkpoint& c);

/// Read + decode; nullopt (not an exception) on missing file or any
/// validation failure — callers fall back to the previous checkpoint.
std::optional<Checkpoint> read_checkpoint_file(const std::string& path);

struct FoundCheckpoint {
  std::string path;
  Checkpoint checkpoint;
};

/// Highest-index checkpoint in `dir` that decodes cleanly (torn or corrupt
/// files are skipped — exactly the SIGKILL-mid-write recovery path).
std::optional<FoundCheckpoint> find_latest_checkpoint(const std::string& dir);

/// Delete checkpoints in `dir` with index <= `newest_index - keep` (no-op
/// when keep == 0). Bounds soak-harness disk use.
void prune_checkpoints(const std::string& dir, std::uint32_t newest_index,
                       std::size_t keep);

}  // namespace hammerhead::harness

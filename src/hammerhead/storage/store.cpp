#include "hammerhead/storage/store.h"

// Header-only implementation; this TU exists so hh_storage is a normal static
// library target and a place for future non-template code.

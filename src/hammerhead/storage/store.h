// Persistent store substrate (RocksDB stand-in).
//
// SUBSTITUTION (documented in DESIGN.md): the paper's implementation persists
// headers, votes and certificates in RocksDB so a validator can crash and
// recover without equivocating. In the simulation a "crash" destroys the
// validator's volatile state but leaves its Store object intact, exactly like
// a process restart with an intact disk. What matters for correctness is the
// schema discipline — what is written *before* the node acts — which the node
// layer enforces; the store provides typed named tables with write/read
// accounting so tests can assert on durability behaviour.
#pragma once

#include <algorithm>
#include <any>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <typeindex>
#include <unordered_map>
#include <vector>

#include "hammerhead/common/assert.h"

namespace hammerhead::storage {

struct StoreStats {
  std::uint64_t writes = 0;
  std::uint64_t reads = 0;
  std::uint64_t erases = 0;
};

/// Hash for table keys: arithmetic types, strings, and (nested) pairs of
/// them — the schema key shapes the node layer uses.
struct TableKeyHash {
  template <typename A, typename B>
  std::size_t operator()(const std::pair<A, B>& p) const {
    return (*this)(p.first) * 0x9e3779b97f4a7c15ull + (*this)(p.second);
  }
  template <typename T>
  std::size_t operator()(const T& v) const {
    return std::hash<T>{}(v);
  }
};

/// An ordered typed table (think RocksDB column family). Ordered iteration is
/// part of the contract: recovery replays certificates in round order. The
/// backing store is a hash map — put/get sit on the per-message durability
/// hot path and must stay O(1) as the table grows over a long run — and the
/// (rare: recovery, tooling) ordered scans sort a key snapshot on demand.
template <typename K, typename V>
class Table {
 public:
  explicit Table(StoreStats& stats) : stats_(stats) {}

  void put(const K& key, V value) {
    ++stats_.writes;
    map_[key] = std::move(value);
  }

  std::optional<V> get(const K& key) const {
    ++stats_.reads;
    auto it = map_.find(key);
    if (it == map_.end()) return std::nullopt;
    return it->second;
  }

  bool contains(const K& key) const { return map_.count(key) > 0; }

  void erase(const K& key) {
    ++stats_.erases;
    map_.erase(key);
  }

  std::size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }

  /// In-order scan (ascending by key).
  void for_each(const std::function<void(const K&, const V&)>& fn) const {
    std::vector<const typename Map::value_type*> entries;
    entries.reserve(map_.size());
    for (const auto& kv : map_) entries.push_back(&kv);
    std::sort(entries.begin(), entries.end(),
              [](const auto* a, const auto* b) { return a->first < b->first; });
    for (const auto* kv : entries) fn(kv->first, kv->second);
  }

  std::optional<K> last_key() const {
    if (map_.empty()) return std::nullopt;
    const K* best = nullptr;
    for (const auto& [k, v] : map_)
      if (best == nullptr || *best < k) best = &k;
    return *best;
  }

  void clear() { map_.clear(); }

 private:
  using Map = std::unordered_map<K, V, TableKeyHash>;
  Map map_;
  StoreStats& stats_;
};

/// A collection of named typed tables. Reopening a table with the same name
/// but different types is an invariant violation (schema mismatch).
class Store {
 public:
  Store() = default;
  Store(const Store&) = delete;
  Store& operator=(const Store&) = delete;

  template <typename K, typename V>
  Table<K, V>& open_table(const std::string& name) {
    auto it = tables_.find(name);
    if (it == tables_.end()) {
      auto table = std::make_shared<Table<K, V>>(stats_);
      tables_.emplace(name,
                      Entry{std::type_index(typeid(Table<K, V>)), table});
      return *table;
    }
    HH_ASSERT_MSG(it->second.type == std::type_index(typeid(Table<K, V>)),
                  "table '" << name << "' reopened with different types");
    return *std::static_pointer_cast<Table<K, V>>(it->second.table);
  }

  bool has_table(const std::string& name) const {
    return tables_.count(name) > 0;
  }

  const StoreStats& stats() const { return stats_; }

  /// Drop everything (used to model a disk wipe, NOT a crash).
  void wipe() { tables_.clear(); }

 private:
  struct Entry {
    std::type_index type;
    std::shared_ptr<void> table;
  };
  std::unordered_map<std::string, Entry> tables_;
  mutable StoreStats stats_;
};

}  // namespace hammerhead::storage

// Monitoring substrate ("production-ready and fully-featured: crash-recovery,
// monitoring tools" — Section 4; the orchestrator of Appendix A deploys
// Prometheus + Grafana).
//
// A MetricsRegistry holds named counters, gauges and histograms with label
// sets, and renders the Prometheus text exposition format. Validators export
// their protocol stats through it; the harness can scrape all validators and
// the benches can dump a dashboard-like summary.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "hammerhead/common/assert.h"
#include "hammerhead/common/types.h"

namespace hammerhead::monitor {

using Labels = std::map<std::string, std::string>;

class Counter {
 public:
  void increment(double delta = 1.0) {
    HH_ASSERT_MSG(delta >= 0, "counter decrement " << delta);
    value_ += delta;
  }
  double value() const { return value_; }

 private:
  double value_ = 0;
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double delta) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0;
};

/// Fixed-bucket histogram (Prometheus-style cumulative buckets + sum/count).
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  /// Cumulative count of observations <= upper_bounds[i].
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }
  const std::vector<double>& upper_bounds() const { return bounds_; }

  /// Approximate quantile by linear interpolation within buckets.
  double quantile(double q) const;

 private:
  std::vector<double> bounds_;          // ascending; implicit +Inf at end
  std::vector<std::uint64_t> counts_;   // per-bucket (non-cumulative)
  std::uint64_t count_ = 0;
  double sum_ = 0;
};

/// Buckets suitable for end-to-end latency in seconds (50 ms .. 30 s).
std::vector<double> latency_seconds_buckets();

class MetricsRegistry {
 public:
  /// Get-or-create. The same (name, labels) pair always returns the same
  /// instrument; using one name with two instrument kinds throws.
  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_bounds,
                       const Labels& labels = {});

  /// Prometheus text exposition (stable ordering for tests).
  std::string expose() const;

  std::size_t size() const { return instruments_.size(); }

 private:
  enum class Kind { Counter, Gauge, Histogram };
  struct Instrument {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  using Key = std::pair<std::string, std::string>;  // name, rendered labels

  static std::string render_labels(const Labels& labels);

  std::map<Key, Instrument> instruments_;
};

}  // namespace hammerhead::monitor

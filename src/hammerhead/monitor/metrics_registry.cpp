#include "hammerhead/monitor/metrics_registry.h"

#include <algorithm>
#include <sstream>

namespace hammerhead::monitor {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1, 0) {
  HH_ASSERT_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                "histogram bounds must ascend");
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += v;
}

double Histogram::quantile(double q) const {
  HH_ASSERT(q >= 0.0 && q <= 1.0);
  if (count_ == 0) return 0.0;
  const double target = q * static_cast<double>(count_);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cumulative += counts_[i];
    if (static_cast<double>(cumulative) >= target) {
      const double hi = i < bounds_.size() ? bounds_[i]
                                           : bounds_.empty()
                                                 ? 0.0
                                                 : bounds_.back() * 2;
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      const std::uint64_t in_bucket = counts_[i];
      if (in_bucket == 0) return hi;
      const double before = static_cast<double>(cumulative - in_bucket);
      const double frac =
          (target - before) / static_cast<double>(in_bucket);
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

std::vector<double> latency_seconds_buckets() {
  return {0.05, 0.1, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 2.5, 3.0,
          4.0,  5.0, 7.5,  10., 15.,  20., 30.};
}

std::string MetricsRegistry::render_labels(const Labels& labels) {
  if (labels.empty()) return "";
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) os << ",";
    first = false;
    os << k << "=\"" << v << "\"";
  }
  os << "}";
  return os.str();
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const Labels& labels) {
  auto [it, inserted] =
      instruments_.try_emplace({name, render_labels(labels)});
  if (inserted) {
    it->second.kind = Kind::Counter;
    it->second.counter = std::make_unique<Counter>();
  }
  HH_ASSERT_MSG(it->second.kind == Kind::Counter,
                "metric '" << name << "' is not a counter");
  return *it->second.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const Labels& labels) {
  auto [it, inserted] =
      instruments_.try_emplace({name, render_labels(labels)});
  if (inserted) {
    it->second.kind = Kind::Gauge;
    it->second.gauge = std::make_unique<Gauge>();
  }
  HH_ASSERT_MSG(it->second.kind == Kind::Gauge,
                "metric '" << name << "' is not a gauge");
  return *it->second.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds,
                                      const Labels& labels) {
  auto [it, inserted] =
      instruments_.try_emplace({name, render_labels(labels)});
  if (inserted) {
    it->second.kind = Kind::Histogram;
    it->second.histogram =
        std::make_unique<Histogram>(std::move(upper_bounds));
  }
  HH_ASSERT_MSG(it->second.kind == Kind::Histogram,
                "metric '" << name << "' is not a histogram");
  return *it->second.histogram;
}

std::string MetricsRegistry::expose() const {
  std::ostringstream os;
  for (const auto& [key, instrument] : instruments_) {
    const auto& [name, labels] = key;
    switch (instrument.kind) {
      case Kind::Counter:
        os << name << labels << " " << instrument.counter->value() << "\n";
        break;
      case Kind::Gauge:
        os << name << labels << " " << instrument.gauge->value() << "\n";
        break;
      case Kind::Histogram: {
        const Histogram& h = *instrument.histogram;
        std::uint64_t cumulative = 0;
        const std::string inner =
            labels.empty() ? "" : labels.substr(1, labels.size() - 2);
        for (std::size_t i = 0; i < h.upper_bounds().size(); ++i) {
          cumulative += h.bucket_counts()[i];
          os << name << "_bucket{" << (inner.empty() ? "" : inner + ",")
             << "le=\"" << h.upper_bounds()[i] << "\"} " << cumulative
             << "\n";
        }
        os << name << "_bucket{" << (inner.empty() ? "" : inner + ",")
           << "le=\"+Inf\"} " << h.count() << "\n";
        os << name << "_sum" << labels << " " << h.sum() << "\n";
        os << name << "_count" << labels << " " << h.count() << "\n";
        break;
      }
    }
  }
  return os.str();
}

}  // namespace hammerhead::monitor

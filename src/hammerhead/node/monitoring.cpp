#include "hammerhead/node/monitoring.h"

namespace hammerhead::node {

void export_engine_metrics(const sim::Simulator& sim, const net::Network& net,
                           double events_per_sec_wall,
                           monitor::MetricsRegistry& registry) {
  const sim::SimStats& s = sim.stats();
  auto set_gauge = [&](const char* name, double v) {
    registry.gauge(name).set(v);
  };
  set_gauge("hh_sim_events_executed", static_cast<double>(s.executed));
  set_gauge("hh_sim_events_raw", static_cast<double>(s.raw_events));
  set_gauge("hh_sim_events_callback", static_cast<double>(s.callback_events));
  set_gauge("hh_sim_batches", static_cast<double>(s.batches));
  set_gauge("hh_sim_workers", static_cast<double>(sim.workers()));
  set_gauge("hh_sim_parallel_segments",
            static_cast<double>(s.parallel_segments));
  set_gauge("hh_sim_parallel_events", static_cast<double>(s.parallel_events));
  set_gauge("hh_sim_staged_ops", static_cast<double>(s.staged_ops));
  set_gauge("hh_sim_engine_allocs", static_cast<double>(s.engine_allocs));
  set_gauge("hh_sim_allocs_per_event",
            s.executed > 0 ? static_cast<double>(s.engine_allocs) /
                                 static_cast<double>(s.executed)
                           : 0.0);
  set_gauge("hh_sim_events_per_sec_wall", events_per_sec_wall);
  set_gauge("hh_sim_pending_events",
            static_cast<double>(sim.pending_events()));
  set_gauge("hh_sim_cancelled_pending",
            static_cast<double>(sim.cancelled_pending()));
  set_gauge("hh_sim_slab_slots", static_cast<double>(sim.slab_slots()));

  const net::NetStats& ns = net.stats();
  set_gauge("hh_net_messages_sent", static_cast<double>(ns.messages_sent));
  set_gauge("hh_net_messages_delivered",
            static_cast<double>(ns.messages_delivered));
  set_gauge("hh_net_fanouts_active", static_cast<double>(ns.fanouts_active));
  set_gauge("hh_net_fanouts_pooled", static_cast<double>(ns.fanouts_pooled));
  set_gauge("hh_net_messages_held", static_cast<double>(ns.messages_held));
  set_gauge("hh_net_relay_sends", static_cast<double>(ns.relay_sends));
  set_gauge("hh_net_tree_fallbacks", static_cast<double>(ns.tree_fallbacks));
  set_gauge("hh_net_links_cut", static_cast<double>(net.links_cut()));
  set_gauge("hh_net_links_delayed", static_cast<double>(net.links_delayed()));

  // Read-mostly concurrency layer: epoch lifecycle and reclamation. Bytes
  // pending are snapshot tables retired but still inside a grace period.
  const epoch::Domain::Stats es = sim.epoch_domain().stats();
  set_gauge("hh_epoch_current", static_cast<double>(es.epoch));
  set_gauge("hh_epoch_advances", static_cast<double>(es.advances));
  set_gauge("hh_epoch_readers", static_cast<double>(es.readers));
  set_gauge("hh_epoch_deferred_run", static_cast<double>(es.deferred_run));
  set_gauge("hh_epoch_retired_bytes", static_cast<double>(es.retired_bytes));
  set_gauge("hh_epoch_freed_bytes", static_cast<double>(es.freed_bytes));
  set_gauge("hh_epoch_pending_bytes", static_cast<double>(es.pending_bytes));
}

void export_validator_metrics(const Validator& validator,
                              monitor::MetricsRegistry& registry) {
  const monitor::Labels labels{
      {"validator", std::to_string(validator.index())}};
  const ValidatorStats& s = validator.stats();

  auto set_gauge = [&](const char* name, double v) {
    registry.gauge(name, labels).set(v);
  };
  set_gauge("hh_headers_proposed", static_cast<double>(s.headers_proposed));
  set_gauge("hh_votes_sent", static_cast<double>(s.votes_sent));
  set_gauge("hh_certs_formed", static_cast<double>(s.certs_formed));
  set_gauge("hh_certs_received", static_cast<double>(s.certs_received));
  set_gauge("hh_leader_timeouts", static_cast<double>(s.leader_timeouts));
  set_gauge("hh_fetches_sent", static_cast<double>(s.fetches_sent));
  set_gauge("hh_equivocations_observed",
            static_cast<double>(s.equivocations_observed));
  // Adversary-framework gauges (harness/adversary.h): what this validator
  // did under Byzantine directives, and the commit-layer safety counter.
  set_gauge("hh_adv_equivocations_sent",
            static_cast<double>(s.equivocations_sent));
  set_gauge("hh_adv_votes_withheld", static_cast<double>(s.votes_withheld));
  set_gauge("hh_txs_executed", static_cast<double>(s.txs_executed));
  set_gauge("hh_restarts", static_cast<double>(s.restarts));
  set_gauge("hh_state_syncs_completed",
            static_cast<double>(s.state_syncs_completed));
  set_gauge("hh_crashed", validator.crashed() ? 1 : 0);
  set_gauge("hh_mempool_size", static_cast<double>(validator.mempool_size()));
  set_gauge("hh_buffered_certs",
            static_cast<double>(validator.buffered_certs()));

  if (!validator.crashed()) {
    set_gauge("hh_last_proposed_round",
              static_cast<double>(validator.last_proposed_round()));
    set_gauge("hh_commit_index",
              static_cast<double>(validator.committer().commit_index()));
    set_gauge("hh_last_anchor_round",
              static_cast<double>(validator.committer().last_anchor_round()));
    set_gauge(
        "hh_skipped_anchors",
        static_cast<double>(validator.committer().stats().skipped_anchors));
    set_gauge(
        "hh_adv_conflicting_certs",
        static_cast<double>(validator.committer().stats().conflicting_certs));
    set_gauge(
        "hh_schedule_epochs",
        validator.policy().history()
            ? static_cast<double>(validator.policy().history()->num_epochs())
            : 0.0);
    set_gauge("hh_dag_certs",
              static_cast<double>(validator.dag().total_certs()));
    set_gauge("hh_dag_gc_floor",
              static_cast<double>(validator.dag().gc_floor()));

    // Incremental commit index: hit/miss split of the structural queries and
    // the memory footprint of the ancestor bitmaps.
    const dag::DagIndex& index = validator.dag().index();
    const dag::IndexStats& is = index.stats();
    set_gauge("hh_index_path_hits", static_cast<double>(is.path_hits));
    set_gauge("hh_index_path_fallbacks",
              static_cast<double>(is.path_fallbacks));
    set_gauge("hh_index_support_hits", static_cast<double>(is.support_hits));
    set_gauge("hh_index_support_fallbacks",
              static_cast<double>(is.support_fallbacks));
    set_gauge("hh_index_support_crossings",
              static_cast<double>(index.crossings()));
    set_gauge("hh_index_entries", static_cast<double>(index.entries()));
    set_gauge("hh_index_bitmap_words",
              static_cast<double>(index.bitmap_words()));

    // Shared-certificate memos: cross-validator cache effectiveness. A
    // parent-memo hit skips hashing every parent digest at insert; an
    // ancestor-memo hit skips the bitmap union pass.
    const dag::Dag::MemoStats& mm = validator.dag().memo_stats();
    const double parent_total =
        static_cast<double>(mm.parent_memo_hits + mm.parent_memo_misses);
    set_gauge("hh_memo_parent_hits", static_cast<double>(mm.parent_memo_hits));
    set_gauge("hh_memo_parent_hit_rate",
              parent_total > 0
                  ? static_cast<double>(mm.parent_memo_hits) / parent_total
                  : 0.0);
    const double anc_total =
        static_cast<double>(is.ancestor_memo_hits + is.ancestor_memo_misses);
    set_gauge("hh_memo_ancestor_hits",
              static_cast<double>(is.ancestor_memo_hits));
    set_gauge("hh_memo_ancestor_hit_rate",
              anc_total > 0
                  ? static_cast<double>(is.ancestor_memo_hits) / anc_total
                  : 0.0);

    // Snapshot-published digest resolution (dag/resolve.h): publication and
    // table-geometry churn, plus the resolver's own footprint. Advisory —
    // deliberately outside bytes_per_vertex (the old digest map was never
    // counted there either).
    const dag::DigestResolver::Stats rs =
        validator.dag().arena().resolver().stats();
    set_gauge("hh_dag_resolver_publishes", static_cast<double>(rs.publishes));
    set_gauge("hh_dag_resolver_rebuilds", static_cast<double>(rs.rebuilds));
    set_gauge("hh_dag_resolver_retired_tables",
              static_cast<double>(rs.retired_tables));
    set_gauge("hh_dag_resolver_retired_bytes",
              static_cast<double>(rs.retired_bytes));
    set_gauge("hh_dag_resolver_entries", static_cast<double>(rs.entries));
    set_gauge("hh_dag_resolver_bytes", static_cast<double>(rs.bytes));

    // Memory tiering: structural bytes per resident vertex plus the
    // compress/rehydrate churn of the cold store.
    const dag::Arena::MemoryStats& ms = validator.dag().arena().memory_stats();
    set_gauge("hh_dag_bytes_per_vertex", validator.dag().bytes_per_vertex());
    set_gauge("hh_dag_rounds_compressed",
              static_cast<double>(ms.rounds_compressed));
    set_gauge("hh_dag_rounds_rehydrated",
              static_cast<double>(ms.rounds_rehydrated));
  }
}

}  // namespace hammerhead::node

#include "hammerhead/node/byzantine.h"

#include <algorithm>

namespace hammerhead::node {

NodeConfig with_behavior(NodeConfig base, Behavior behavior) {
  base.behavior = behavior;
  return base;
}

NodeConfig slow_proposer(NodeConfig base, SimTime delay) {
  base.behavior = Behavior::SlowProposer;
  base.slow_proposer_delay = delay;
  return base;
}

void Validator::propose_equivocating(Round round, std::vector<Digest> parents,
                                     std::vector<dag::Transaction> txs) {
  // Two conflicting headers for the same (author, round): header A carries
  // the real batch, header B a fabricated transaction so the digests differ
  // even at zero load.
  dag::HeaderPtr header_a = build_header(round, parents, std::move(txs));
  dag::Transaction fabricated;
  fabricated.id = (1ull << 62) | round;
  fabricated.submitted_to = self_;
  fabricated.submit_time = sim_.now();
  dag::HeaderPtr header_b =
      build_header(round, std::move(parents), {fabricated});
  HH_ASSERT(header_a->digest != header_b->digest);

  last_proposed_round_ = round;
  proposed_anything_ = true;
  last_propose_time_ = sim_.now();
  meta_table().put("last_proposed", round);
  ++stats_.headers_proposed;
  ++stats_.equivocations_sent;

  // The equivocator backs header A itself.
  voted_table().put({self_, round}, header_a->digest);
  for (const dag::HeaderPtr& h : {header_a, header_b}) {
    PendingHeader pending;
    pending.header = h;
    pending.voters.insert(self_);
    pending.voter_stake = committee_.stake_of(self_);
    our_pending_.emplace(h->digest, std::move(pending));
  }

  // One conflicting header to each half of the committee — plus both
  // headers to the lowest-indexed peer, which forces at least one honest
  // node to observe (and refuse) the equivocation. Honest vote uniqueness
  // must confine us to at most one certificate per round. Each half is one
  // fanout record on the wire (recipient-list multicast).
  auto msg_a = std::make_shared<HeaderMsg>();
  msg_a->header = header_a;
  auto msg_b = std::make_shared<HeaderMsg>();
  msg_b->header = header_b;
  std::vector<ValidatorIndex> evens, odds;
  ValidatorIndex overlap = kInvalidValidator;
  for (ValidatorIndex v = 0; v < committee_.size(); ++v) {
    if (v == self_) continue;
    if (overlap == kInvalidValidator) overlap = v;
    (v % 2 == 0 ? evens : odds).push_back(v);
  }
  // The overlap peer appears in both lists, so it sees A and B.
  if (overlap != kInvalidValidator) {
    if (overlap % 2 == 0) odds.push_back(overlap);
    else evens.push_back(overlap);
  }
  network_.multicast(self_, std::move(msg_a), evens);
  network_.multicast(self_, std::move(msg_b), odds);
}

}  // namespace hammerhead::node

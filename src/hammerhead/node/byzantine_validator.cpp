#include "hammerhead/node/byzantine_validator.h"

#include <algorithm>

namespace hammerhead::node {

void DirectiveBook::clear() {
  for (ByzantineDirectives& d : slots_) d = ByzantineDirectives{};
}

std::size_t DirectiveBook::active_count() const {
  std::size_t n = 0;
  for (const ByzantineDirectives& d : slots_)
    if (d.equivocate || d.withhold_votes_for != kInvalidValidator) ++n;
  return n;
}

std::vector<ValidatorIndex> corrupted_set(std::size_t n, std::size_t count) {
  const std::size_t f = std::max<std::size_t>(1, (n - 1) / 3);
  if (count == 0 || count > f) count = f;
  std::vector<ValidatorIndex> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    out.push_back(static_cast<ValidatorIndex>(n - 1 - i));
  return out;
}

}  // namespace hammerhead::node

// Runtime-corruptible validators: the bridge between adversary strategies
// (harness/adversary.h) and the Validator protocol hooks.
//
// A static Behavior is fixed at construction; an *adaptive* adversary instead
// flips ByzantineDirectives while the run is in flight — equivocate for a few
// rounds, retarget vote withholding at whoever the schedule picks as the next
// anchor, then go quiet. DirectiveBook owns one directives slot per validator
// at a stable address; validators read it through the const pointer installed
// by attach(), and strategies mutate it from serial-shard adversary events
// (which are barriers within a same-timestamp batch), so validator reads on
// sharded events never race a write — the PR 5 determinism contract holds
// with adversaries active.
#pragma once

#include <cstddef>
#include <vector>

#include "hammerhead/node/validator.h"

namespace hammerhead::node {

/// Per-validator ByzantineDirectives storage with aggregate counters for the
/// `hh_adv_*` gauges. Must outlive every attached validator.
class DirectiveBook {
 public:
  explicit DirectiveBook(std::size_t num_validators)
      : slots_(num_validators) {}

  std::size_t size() const { return slots_.size(); }

  /// Install slot `v` as validator v's directive source.
  void attach(Validator& validator) {
    validator.set_directives(&slots_.at(validator.index()));
  }

  const ByzantineDirectives& directives(ValidatorIndex v) const {
    return slots_.at(v);
  }

  /// Toggle equivocation for `v`. Returns true if the flag changed.
  bool set_equivocate(ValidatorIndex v, bool on) {
    ByzantineDirectives& d = slots_.at(v);
    if (d.equivocate == on) return false;
    d.equivocate = on;
    return true;
  }

  /// Point `v`'s vote withholding at `target` (kInvalidValidator = none).
  /// Returns true if the target changed.
  bool set_withhold_votes_for(ValidatorIndex v, ValidatorIndex target) {
    ByzantineDirectives& d = slots_.at(v);
    if (d.withhold_votes_for == target) return false;
    d.withhold_votes_for = target;
    return true;
  }

  /// Reset every slot to honest.
  void clear();

  /// Validators with at least one active directive (gauge).
  std::size_t active_count() const;

 private:
  std::vector<ByzantineDirectives> slots_;
};

/// The corrupted set for an adversary controlling `count` validators in a
/// committee of `n`: the highest indices, capped at the largest minority
/// f = max(1, (n-1)/3) so the adversary never controls a blocking quorum
/// (count = 0 selects exactly f). Matches the harness's crash/slow scenario
/// convention of faulting from the top so validator 0 stays a live observer.
std::vector<ValidatorIndex> corrupted_set(std::size_t n, std::size_t count);

}  // namespace hammerhead::node
